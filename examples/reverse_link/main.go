// Reverse-link burst admission demo: shows the measurement sub-layer at work
// for the interference-limited reverse link, including the SCRM-based
// protection of neighbour cells that are not in soft hand-off (paper
// equations 13-15), and then runs a short reverse-link dynamic simulation.
//
// Run with:
//
//	go run ./examples/reverse_link
package main

import (
	"context"
	"fmt"
	"log"

	"jabasd/internal/core"
	"jabasd/internal/load"
	"jabasd/internal/measurement"
	"jabasd/internal/sim"
)

func main() {
	// --- Part 1: a hand-built reverse-link admission frame --------------------
	// Three cells, interference tracked in rise-over-thermal units: the noise
	// floor contributes 1, the cap is 10 (10 dB rise over thermal).
	state := measurement.ReverseState{
		TotalReceived: []float64{4.0, 3.0, 2.5},
		MaxReceived:   10,
		GammaS:        1.25,
		ShadowMargin:  1.5,
	}

	// User 0 is in soft hand-off between cells 0 and 1. User 1 is served by
	// cell 1 only, but its SCRM reports a strong pilot from cell 2, so its
	// burst must not blow cell 2's interference budget either.
	requests := []measurement.ReverseRequest{
		{
			UserID:       0,
			HostCell:     0,
			ReversePilot: load.FromMap(map[int]float64{0: 0.015, 1: 0.009}),
			SCRM:         measurement.NewSCRM(load.FromMap(map[int]float64{0: 0.06, 1: 0.04, 2: 0.01})),
			Zeta:         4,
			Alpha:        1,
		},
		{
			UserID:       1,
			HostCell:     1,
			ReversePilot: load.FromMap(map[int]float64{1: 0.02}),
			SCRM:         measurement.NewSCRM(load.FromMap(map[int]float64{1: 0.07, 2: 0.05})),
			Zeta:         4,
			Alpha:        1,
		},
	}
	region, err := measurement.ReverseRegion(state, requests)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Reverse-link admissible region (rows = protected cells):")
	for i, cell := range region.Cells {
		fmt.Printf("  cell %d: %.3f·m0 + %.3f·m1 <= %.3f\n",
			cell, region.Coeff[i][0], region.Coeff[i][1], region.Bound[i])
	}

	problem := core.Problem{
		Requests: []core.Request{
			{UserID: 0, SizeBits: 900_000, WaitingTime: 1.0, AvgThroughput: 0.5, MaxRatio: 16},
			{UserID: 1, SizeBits: 400_000, WaitingTime: 6.0, AvgThroughput: 0.25, MaxRatio: 16},
		},
		Region:    region,
		MaxRatio:  16,
		Objective: core.DefaultObjective(),
	}
	for _, s := range []core.Scheduler{core.NewJABASD(), &core.FCFS{}} {
		a, err := s.Schedule(problem)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s grants m = %v (objective %.3f), headroom left per cell: ", s.Name(), a.Ratios, a.Objective)
		for i, h := range region.Headroom(a.Ratios) {
			fmt.Printf("cell%d=%.2f ", region.Cells[i], h)
		}
		fmt.Println()
	}

	// --- Part 2: reverse-link dynamic simulation ------------------------------
	cfg := sim.DefaultConfig()
	cfg.Direction = sim.Reverse
	cfg.Rings = 1
	cfg.SimTime = 20
	cfg.WarmupTime = 4
	cfg.DataUsersPerCell = 8
	cfg.Data.MeanReadingTimeSec = 5

	fmt.Println("\nReverse-link dynamic simulation (20 s, 7 cells):")
	for _, k := range []sim.SchedulerKind{sim.SchedulerJABASD, sim.SchedulerFCFS} {
		cfg.Scheduler = k
		m, err := sim.Run(context.Background(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s mean delay %.3f s, p90 %.3f s, completed %d/%d bursts, mean rise-over-thermal use %.2f\n",
			k, m.MeanBurstDelay(), m.P90BurstDelay(), m.BurstsCompleted, m.BurstsGenerated, m.CellLoad.Mean())
	}
}
