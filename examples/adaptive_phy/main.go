// Adaptive physical layer demo: a mobile drives away from its base station
// over a shadowed, Rayleigh-faded channel while the VTAOC coder rides the
// channel state. The example prints how the selected mode, the instantaneous
// throughput and the offered SCH bit rate degrade with distance, and the
// mode occupancy histogram over the whole drive.
//
// Run with:
//
//	go run ./examples/adaptive_phy
package main

import (
	"fmt"
	"math"

	"jabasd/internal/channel"
	"jabasd/internal/rng"
	"jabasd/internal/vtaoc"
)

func main() {
	src := rng.New(2024)
	coder := vtaoc.MustNew(vtaoc.DefaultConfig())
	plan := vtaoc.DefaultRatePlan()

	cfg := channel.DefaultLinkConfig()
	link := channel.NewLink(src, cfg)

	// Reference transmit scenario: the CSI fed to the coder is the link gain
	// re-normalised so that a user 300 m out sees roughly 25 dB of symbol
	// SNR — the same calibration role the simulator's geometry offset plays.
	refGainDB := -cfg.PathLoss.LossDB(300)
	const refCSIdB = 25.0

	occupancy := make([]int, coder.NumModes()+1)
	samples := 0

	fmt.Println("dist(m)  meanCSI(dB)  instCSI(dB)  mode  bits/sym  SCH kbit/s (m=8)")
	speed := 15.0 // m/s
	dt := 0.02
	for step := 0; step <= 4000; step++ {
		t := float64(step) * dt
		d := 300 + speed*t
		link.Update(d, speed*dt)

		meanCSI := refCSIdB + (link.LongTermGainDB() - refGainDB)
		instCSI := meanCSI + dbOrFloor(link.FastGain(t))
		mode := coder.SelectMode(instCSI)
		occupancy[mode]++
		samples++

		if step%500 == 0 {
			bp := coder.ModeThroughput(mode)
			fmt.Printf("%6.0f   %9.1f   %9.1f   %3d   %7.4f   %10.1f\n",
				d, meanCSI, instCSI, mode, bp, plan.SCHBitRate(8, coder.AverageThroughput(meanCSI))/1000)
		}
	}

	fmt.Println("\nMode occupancy over the drive (mode 0 = transmission suspended):")
	for q, c := range occupancy {
		frac := float64(c) / float64(samples)
		bar := ""
		for i := 0; i < int(frac*50); i++ {
			bar += "#"
		}
		fmt.Printf("  mode %d (%.4f bits/sym): %5.1f%% %s\n", q, coder.ModeThroughput(q), frac*100, bar)
	}
	fmt.Printf("\nConstant-BER thresholds (dB): %v\n", coder.Thresholds())
}

// dbOrFloor converts a linear power gain to dB, flooring it so deep fades do
// not produce -Inf in the printout.
func dbOrFloor(x float64) float64 {
	if x < 1e-12 {
		x = 1e-12
	}
	return 10 * math.Log10(x)
}
