// Quickstart: build one frame's multiple-burst admission problem by hand and
// compare the assignment chosen by JABA-SD with the cdma2000-style FCFS and
// the equal-sharing baselines.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"jabasd/internal/core"
	"jabasd/internal/load"
	"jabasd/internal/measurement"
	"jabasd/internal/vtaoc"
)

func main() {
	// The adaptive physical layer: a 6-mode VTAOC coder in constant-BER mode.
	coder := vtaoc.MustNew(vtaoc.DefaultConfig())
	plan := vtaoc.DefaultRatePlan()

	// Three data users ask for a burst in the same frame. Their local-mean
	// CSI differs (cell centre vs cell edge), so the channel-adaptive layer
	// offers them different average throughputs bp_j.
	meanCSIs := []float64{24.0, 18.0, 12.5} // dB
	waits := []float64{0.3, 2.5, 11.0}      // seconds in the queue
	sizes := []float64{1.2e6, 0.6e6, 0.8e6} // burst sizes in bits

	requests := make([]core.Request, 3)
	fwd := make([]measurement.ForwardRequest, 3)
	for j := range requests {
		bp := coder.AverageThroughput(meanCSIs[j])
		requests[j] = core.Request{
			UserID:        j,
			SizeBits:      sizes[j],
			WaitingTime:   waits[j],
			AvgThroughput: bp,
			MaxRatio:      plan.MaxUsefulRatio(sizes[j], bp, 0.08),
		}
		// The measurement sub-layer reports how much forward power each
		// user's fundamental channel needs at the (single) serving cell.
		fwd[j] = measurement.ForwardRequest{
			UserID:   j,
			FCHPower: load.FromMap(map[int]float64{0: 0.3 + 0.4*float64(j)}),
			Alpha:    1,
		}
	}

	// Forward-link admissible region: the cell has 20 W, 12 W already in use.
	region, err := measurement.ForwardRegion(measurement.ForwardState{
		CurrentLoad: []float64{12},
		MaxLoad:     20,
		GammaS:      plan.GammaS,
	}, fwd)
	if err != nil {
		log.Fatal(err)
	}

	problem := core.Problem{
		Requests:  requests,
		Region:    region,
		MaxRatio:  plan.MaxSpreadingRatio,
		Objective: core.DefaultObjective(),
	}

	fmt.Println("request  meanCSI  bp(bits/sym)  waited  maxRatio")
	for j, r := range requests {
		fmt.Printf("   %d      %5.1f     %7.4f     %4.1fs     %2d\n",
			j, meanCSIs[j], r.AvgThroughput, r.WaitingTime, r.MaxRatio)
	}
	fmt.Println()

	for _, s := range []core.Scheduler{core.NewJABASD(), &core.FCFS{}, &core.EqualShare{}} {
		a, err := s.Schedule(problem)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s grants m = %v  (objective %.3f, %d served)\n",
			s.Name(), a.Ratios, a.Objective, a.Served())
		for j, m := range a.Ratios {
			if m == 0 {
				continue
			}
			rate := plan.SCHBitRate(m, requests[j].AvgThroughput)
			fmt.Printf("    user %d: %d× spreading ratio → %.0f kbit/s, burst drains in %.2f s\n",
				j, m, rate/1000, plan.BurstDuration(sizes[j], m, requests[j].AvgThroughput))
		}
	}
}
