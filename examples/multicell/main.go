// Multi-cell dynamic simulation: the workload the paper's evaluation is
// built around. A 7-cell (1-ring) wideband CDMA network with mobility,
// shadowing, fast fading, voice background load and WWW-style data bursts is
// simulated once per scheduler, and the headline metrics — average burst
// delay, 90th percentile delay, per-cell data throughput and coverage — are
// compared between JABA-SD and the FCFS / equal-share baselines.
//
// Run with:
//
//	go run ./examples/multicell
package main

import (
	"context"
	"fmt"
	"log"

	"jabasd/internal/sim"
)

func main() {
	cfg := sim.DefaultConfig()
	cfg.Rings = 1 // 7 cells keeps the example fast; use 2 for the paper's 19
	cfg.SimTime = 30
	cfg.WarmupTime = 5
	cfg.DataUsersPerCell = 12
	cfg.VoiceUsersPerCell = 8
	cfg.Data.MeanReadingTimeSec = 5

	kinds := []sim.SchedulerKind{sim.SchedulerJABASD, sim.SchedulerFCFS, sim.SchedulerEqualShare}

	fmt.Printf("Simulating %d s over %d cells with %d data users/cell (%s link)\n\n",
		int(cfg.SimTime), 7, cfg.DataUsersPerCell, cfg.Direction)
	fmt.Printf("%-14s %12s %12s %16s %10s %10s\n",
		"scheduler", "mean delay", "p90 delay", "tput/cell (bps)", "coverage", "cell load")

	results, err := sim.CompareSchedulers(context.Background(), cfg, kinds, 2)
	if err != nil {
		log.Fatal(err)
	}
	var jabaDelay, fcfsDelay float64
	for _, k := range kinds {
		a := results[k]
		fmt.Printf("%-14s %10.3f s %10.3f s %16.0f %10.3f %10.3f\n",
			k, a.MeanDelay.Mean(), a.P90Delay.Mean(), a.Throughput.Mean(),
			a.Coverage.Mean(), a.CellLoad.Mean())
		switch k {
		case sim.SchedulerJABASD:
			jabaDelay = a.MeanDelay.Mean()
		case sim.SchedulerFCFS:
			fcfsDelay = a.MeanDelay.Mean()
		}
	}
	if fcfsDelay > 0 {
		fmt.Printf("\nJABA-SD mean delay is %.0f%% of the FCFS baseline's.\n", 100*jabaDelay/fcfsDelay)
	}
}
