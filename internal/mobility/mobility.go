// Package mobility implements the user mobility models driving the dynamic
// simulation: the random waypoint model (users pick a destination and speed,
// travel there, pause, repeat) and a bounded random walk. Positions are kept
// inside the service area; with wrap-around layouts the coordinates wrap on
// the torus, otherwise users reflect off the boundary.
package mobility

import (
	"math"

	"jabasd/internal/cellular"
	"jabasd/internal/rng"
)

// Model is a mobility process for one user.
type Model interface {
	// Position returns the current position.
	Position() cellular.Point
	// Advance moves the user by dt seconds and returns the distance
	// travelled during the step (used to advance the shadowing process).
	Advance(dt float64) float64
	// Speed returns the current speed in m/s.
	Speed() float64
}

// Region describes the rectangular service area [0,W) x [0,H).
type Region struct {
	Width, Height float64
	Wrap          bool
}

// RandomWaypoint implements the random waypoint mobility model.
type RandomWaypoint struct {
	region     Region
	src        *rng.Source
	pos        cellular.Point
	dest       cellular.Point
	speed      float64
	pause      float64 // remaining pause time
	minSpeed   float64
	maxSpeed   float64
	maxPause   float64
	travelling bool
}

// NewRandomWaypoint creates a random waypoint user with speeds drawn
// uniformly from [minSpeed, maxSpeed] m/s and pauses up to maxPause seconds.
func NewRandomWaypoint(src *rng.Source, region Region, minSpeed, maxSpeed, maxPause float64) *RandomWaypoint {
	if minSpeed < 0 {
		minSpeed = 0
	}
	if maxSpeed < minSpeed {
		maxSpeed = minSpeed
	}
	m := &RandomWaypoint{
		region:   region,
		src:      src,
		minSpeed: minSpeed,
		maxSpeed: maxSpeed,
		maxPause: maxPause,
	}
	m.pos = cellular.Point{X: src.Uniform(0, region.Width), Y: src.Uniform(0, region.Height)}
	m.pickDestination()
	return m
}

func (m *RandomWaypoint) pickDestination() {
	m.dest = cellular.Point{X: m.src.Uniform(0, m.region.Width), Y: m.src.Uniform(0, m.region.Height)}
	if m.maxSpeed <= 0 {
		m.speed = 0
	} else {
		m.speed = m.src.Uniform(m.minSpeed, m.maxSpeed)
		if m.speed <= 0 {
			m.speed = m.maxSpeed
		}
	}
	m.travelling = true
}

// Position returns the current position.
func (m *RandomWaypoint) Position() cellular.Point { return m.pos }

// Speed returns the current travel speed (0 while paused).
func (m *RandomWaypoint) Speed() float64 {
	if !m.travelling {
		return 0
	}
	return m.speed
}

// Advance moves the user by dt seconds and returns the distance travelled.
func (m *RandomWaypoint) Advance(dt float64) float64 {
	travelled := 0.0
	for dt > 0 {
		if !m.travelling {
			if m.pause >= dt {
				m.pause -= dt
				return travelled
			}
			dt -= m.pause
			m.pause = 0
			m.pickDestination()
			continue
		}
		if m.speed <= 0 {
			// Degenerate zero-speed user never reaches its destination.
			return travelled
		}
		toGo := m.pos.Dist(m.dest)
		stepTime := toGo / m.speed
		if stepTime > dt {
			frac := m.speed * dt / toGo
			m.pos = m.pos.Add(m.dest.Sub(m.pos).Scale(frac))
			travelled += m.speed * dt
			return travelled
		}
		// Reach the destination and start a pause.
		m.pos = m.dest
		travelled += toGo
		dt -= stepTime
		m.travelling = false
		m.pause = m.src.Uniform(0, m.maxPause)
	}
	return travelled
}

// RandomWalk implements a bounded random walk: the user keeps a heading for
// an exponentially distributed epoch, then turns to a new uniform heading.
type RandomWalk struct {
	region        Region
	src           *rng.Source
	pos           cellular.Point
	heading       float64
	speed         float64
	epochMean     float64
	epochLeft     float64
	minSpeed      float64
	maxSpeed      float64
	reflectBounce bool
}

// NewRandomWalk creates a random walk user. epochMean is the mean duration
// (seconds) between direction changes.
func NewRandomWalk(src *rng.Source, region Region, minSpeed, maxSpeed, epochMean float64) *RandomWalk {
	if epochMean <= 0 {
		epochMean = 10
	}
	if minSpeed < 0 {
		minSpeed = 0
	}
	if maxSpeed < minSpeed {
		maxSpeed = minSpeed
	}
	m := &RandomWalk{
		region:        region,
		src:           src,
		epochMean:     epochMean,
		minSpeed:      minSpeed,
		maxSpeed:      maxSpeed,
		reflectBounce: !region.Wrap,
	}
	m.pos = cellular.Point{X: src.Uniform(0, region.Width), Y: src.Uniform(0, region.Height)}
	m.newEpoch()
	return m
}

func (m *RandomWalk) newEpoch() {
	m.heading = m.src.Uniform(0, 2*math.Pi)
	if m.maxSpeed <= 0 {
		m.speed = 0
	} else {
		m.speed = m.src.Uniform(m.minSpeed, m.maxSpeed)
	}
	m.epochLeft = m.src.Exponential(m.epochMean)
}

// Position returns the current position.
func (m *RandomWalk) Position() cellular.Point { return m.pos }

// Speed returns the current speed.
func (m *RandomWalk) Speed() float64 { return m.speed }

// Advance moves the user by dt seconds and returns the distance travelled.
func (m *RandomWalk) Advance(dt float64) float64 {
	travelled := 0.0
	for dt > 0 {
		step := dt
		if m.epochLeft < step {
			step = m.epochLeft
		}
		dx := m.speed * step * math.Cos(m.heading)
		dy := m.speed * step * math.Sin(m.heading)
		m.pos.X += dx
		m.pos.Y += dy
		travelled += m.speed * step
		m.wrapOrReflect()
		m.epochLeft -= step
		dt -= step
		if m.epochLeft <= 0 {
			m.newEpoch()
		}
	}
	return travelled
}

func (m *RandomWalk) wrapOrReflect() {
	w, h := m.region.Width, m.region.Height
	if m.region.Wrap {
		m.pos.X = math.Mod(math.Mod(m.pos.X, w)+w, w)
		m.pos.Y = math.Mod(math.Mod(m.pos.Y, h)+h, h)
		return
	}
	if m.pos.X < 0 {
		m.pos.X = -m.pos.X
		m.heading = math.Pi - m.heading
	}
	if m.pos.X > w {
		m.pos.X = 2*w - m.pos.X
		m.heading = math.Pi - m.heading
	}
	if m.pos.Y < 0 {
		m.pos.Y = -m.pos.Y
		m.heading = -m.heading
	}
	if m.pos.Y > h {
		m.pos.Y = 2*h - m.pos.Y
		m.heading = -m.heading
	}
	// Guard against pathological overshoot (very large dt): clamp.
	if m.pos.X < 0 || m.pos.X > w {
		m.pos.X = math.Min(math.Max(m.pos.X, 0), w)
	}
	if m.pos.Y < 0 || m.pos.Y > h {
		m.pos.Y = math.Min(math.Max(m.pos.Y, 0), h)
	}
}

// Static is a degenerate mobility model for stationary users (useful in unit
// tests and for modelling fixed wireless terminals).
type Static struct {
	P cellular.Point
}

// Position returns the fixed position.
func (s *Static) Position() cellular.Point { return s.P }

// Advance does nothing and returns zero distance.
func (s *Static) Advance(dt float64) float64 { return 0 }

// Speed returns zero.
func (s *Static) Speed() float64 { return 0 }

var (
	_ Model = (*RandomWaypoint)(nil)
	_ Model = (*RandomWalk)(nil)
	_ Model = (*Static)(nil)
)
