package mobility

import (
	"testing"

	"jabasd/internal/race"

	"jabasd/internal/rng"
)

// TestWaypointBatchMatchesScalar pins the SoA batch bit-for-bit against
// per-user RandomWaypoint models seeded from identical substreams, across
// enough frames to cross several travel/pause/re-target transitions.
func TestWaypointBatchMatchesScalar(t *testing.T) {
	region := Region{Width: 4000, Height: 3500, Wrap: true}
	const users = 8
	parent := rng.New(31)
	scalars := make([]*RandomWaypoint, users)
	for u := 0; u < users; u++ {
		scalars[u] = NewRandomWaypoint(parent.Split(uint64(u)), region, 1, 14, 3)
	}
	parent.Reseed(31)
	batch := NewWaypointBatch(region, 1, 14, 3, users)
	for u := 0; u < users; u++ {
		batch.SeedUser(u, parent.Split(uint64(u)))
	}
	for u := 0; u < users; u++ {
		if batch.Position(u) != scalars[u].Position() {
			t.Fatalf("user %d: initial position %v != %v", u, batch.Position(u), scalars[u].Position())
		}
	}
	for f := 0; f < 20000; f++ {
		for u := 0; u < users; u++ {
			st := scalars[u].Advance(0.02)
			bt := batch.Advance(u, 0.02)
			if st != bt {
				t.Fatalf("user %d frame %d: travelled %v != %v", u, f, bt, st)
			}
			if batch.Position(u) != scalars[u].Position() {
				t.Fatalf("user %d frame %d: position %v != %v", u, f, batch.Position(u), scalars[u].Position())
			}
			if batch.Speed(u) != scalars[u].Speed() {
				t.Fatalf("user %d frame %d: speed %v != %v", u, f, batch.Speed(u), scalars[u].Speed())
			}
		}
	}
}

// TestWaypointBatchZeroSpeed mirrors the scalar model's degenerate
// zero-speed behaviour: the user never moves.
func TestWaypointBatchZeroSpeed(t *testing.T) {
	region := Region{Width: 100, Height: 100}
	b := NewWaypointBatch(region, 0, 0, 5, 1)
	b.SeedUser(0, rng.New(5))
	p0 := b.Position(0)
	for i := 0; i < 100; i++ {
		if d := b.Advance(0, 0.02); d != 0 {
			t.Fatalf("zero-speed user travelled %v", d)
		}
	}
	if b.Position(0) != p0 {
		t.Fatalf("zero-speed user moved from %v to %v", p0, b.Position(0))
	}
}

// TestWaypointBatchAdvanceAllocationFree gates the SoA mobility kernel:
// Advance mutates only the batch's flat arrays (including re-targeting
// transitions), so it must never allocate. Skips under -race, whose runtime
// allocates on its own.
func TestWaypointBatchAdvanceAllocationFree(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	region := Region{Width: 500, Height: 500}
	const users = 8
	parent := rng.New(3)
	batch := NewWaypointBatch(region, 1, 14, 0.2, users)
	for u := 0; u < users; u++ {
		batch.SeedUser(u, parent.Split(uint64(u)))
	}
	if allocs := testing.AllocsPerRun(200, func() {
		for u := 0; u < users; u++ {
			batch.Advance(u, 0.5)
		}
	}); allocs != 0 {
		t.Errorf("WaypointBatch.Advance allocated %v times per frame, want 0", allocs)
	}
}
