package mobility

import (
	"math"
	"testing"

	"jabasd/internal/cellular"
	"jabasd/internal/rng"
)

var region = Region{Width: 5000, Height: 4000}

func TestRandomWaypointStaysInRegion(t *testing.T) {
	src := rng.New(1)
	m := NewRandomWaypoint(src, region, 1, 20, 5)
	for i := 0; i < 10000; i++ {
		m.Advance(1)
		p := m.Position()
		if p.X < 0 || p.X > region.Width || p.Y < 0 || p.Y > region.Height {
			t.Fatalf("position out of region: %+v", p)
		}
	}
}

func TestRandomWaypointTravelledMatchesSpeed(t *testing.T) {
	src := rng.New(2)
	m := NewRandomWaypoint(src, region, 10, 10, 0) // fixed speed, no pause
	total := 0.0
	for i := 0; i < 1000; i++ {
		total += m.Advance(0.5)
	}
	// With no pauses and fixed speed 10 m/s over 500 s, distance = 5000 m.
	if math.Abs(total-5000) > 1 {
		t.Errorf("travelled %v m, want ~5000", total)
	}
}

func TestRandomWaypointSpeedBounds(t *testing.T) {
	src := rng.New(3)
	m := NewRandomWaypoint(src, region, 3, 14, 2)
	for i := 0; i < 5000; i++ {
		m.Advance(0.7)
		s := m.Speed()
		if s != 0 && (s < 3 || s > 14) {
			t.Fatalf("speed out of bounds: %v", s)
		}
	}
}

func TestRandomWaypointPauses(t *testing.T) {
	src := rng.New(4)
	m := NewRandomWaypoint(src, region, 5, 5, 10)
	sawPause := false
	for i := 0; i < 20000 && !sawPause; i++ {
		m.Advance(0.5)
		if m.Speed() == 0 {
			sawPause = true
		}
	}
	if !sawPause {
		t.Error("random waypoint user never paused")
	}
}

func TestRandomWaypointDegenerateSpeed(t *testing.T) {
	src := rng.New(5)
	m := NewRandomWaypoint(src, region, 0, 0, 0)
	p0 := m.Position()
	if d := m.Advance(100); d != 0 {
		t.Errorf("zero-speed user travelled %v", d)
	}
	if m.Position() != p0 {
		t.Error("zero-speed user moved")
	}
	// Negative/backwards parameter handling.
	m2 := NewRandomWaypoint(rng.New(6), region, -5, -10, 0)
	m2.Advance(1)
	if m2.Speed() < 0 {
		t.Error("speed should never be negative")
	}
}

func TestRandomWalkStaysInRegionReflect(t *testing.T) {
	src := rng.New(7)
	m := NewRandomWalk(src, region, 5, 30, 10)
	for i := 0; i < 20000; i++ {
		m.Advance(1)
		p := m.Position()
		if p.X < 0 || p.X > region.Width || p.Y < 0 || p.Y > region.Height {
			t.Fatalf("random walk escaped region: %+v", p)
		}
	}
}

func TestRandomWalkWrap(t *testing.T) {
	wrapRegion := Region{Width: 1000, Height: 1000, Wrap: true}
	src := rng.New(8)
	m := NewRandomWalk(src, wrapRegion, 20, 20, 5)
	for i := 0; i < 10000; i++ {
		m.Advance(1)
		p := m.Position()
		if p.X < 0 || p.X >= wrapRegion.Width+1e-9 || p.Y < 0 || p.Y >= wrapRegion.Height+1e-9 {
			t.Fatalf("wrapped position out of torus: %+v", p)
		}
	}
}

func TestRandomWalkTravelDistance(t *testing.T) {
	src := rng.New(9)
	m := NewRandomWalk(src, region, 10, 10, 1e9) // single epoch, fixed speed
	d := m.Advance(10)
	if math.Abs(d-100) > 1e-6 {
		t.Errorf("travelled %v, want 100", d)
	}
}

func TestRandomWalkDefaults(t *testing.T) {
	src := rng.New(10)
	m := NewRandomWalk(src, region, -1, -2, 0)
	if m.epochMean != 10 {
		t.Errorf("default epoch mean = %v", m.epochMean)
	}
	if m.Speed() < 0 {
		t.Error("speed should be non-negative")
	}
	m.Advance(5)
}

func TestRandomWalkChangesDirection(t *testing.T) {
	src := rng.New(11)
	m := NewRandomWalk(src, region, 5, 5, 1)
	h0 := m.heading
	changed := false
	for i := 0; i < 100; i++ {
		m.Advance(1)
		if m.heading != h0 {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("random walk never changed direction")
	}
}

func TestStatic(t *testing.T) {
	s := &Static{P: cellular.Point{X: 10, Y: 20}}
	if s.Advance(100) != 0 {
		t.Error("static user travelled")
	}
	if s.Position().X != 10 || s.Position().Y != 20 {
		t.Error("static position changed")
	}
	if s.Speed() != 0 {
		t.Error("static speed nonzero")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	mk := func() *RandomWaypoint {
		return NewRandomWaypoint(rng.New(77), region, 1, 20, 5)
	}
	a, b := mk(), mk()
	for i := 0; i < 1000; i++ {
		a.Advance(0.5)
		b.Advance(0.5)
		if a.Position() != b.Position() {
			t.Fatal("same seed produced different trajectories")
		}
	}
}
