package mobility

import (
	"bytes"
	"math"
	"testing"

	"jabasd/internal/checkpoint"
	"jabasd/internal/rng"
)

// snapshot round-trips enc into dec through a one-section stream.
func snapshot(t *testing.T, enc func(*checkpoint.Writer), dec func(*checkpoint.Reader)) {
	t.Helper()
	var buf bytes.Buffer
	w := checkpoint.NewWriter(&buf)
	w.Section("mob")
	enc(w)
	if err := w.Close(); err != nil {
		t.Fatalf("encode: %v", err)
	}
	r, err := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if err := r.Section("mob"); err != nil {
		t.Fatal(err)
	}
	dec(r)
	if err := r.Close(); err != nil {
		t.Fatalf("decode: %v", err)
	}
}

// TestWaypointBatchStateRoundTrip advances a batch mid-journey, snapshots
// it into a freshly constructed batch and compares every user's trajectory
// bit for bit afterwards (positions, travel distances and speeds all ride
// the restored draw streams).
func TestWaypointBatchStateRoundTrip(t *testing.T) {
	region := Region{Width: 2000, Height: 1800, Wrap: true}
	const n = 6
	parent := rng.New(77)
	orig := NewWaypointBatch(region, 1, 20, 30, n)
	for i := 0; i < n; i++ {
		orig.SeedUser(i, parent.Split(uint64(i)))
	}
	const dt = 0.5
	for step := 0; step < 200; step++ {
		for i := 0; i < n; i++ {
			orig.Advance(i, dt)
		}
	}

	restored := NewWaypointBatch(region, 1, 20, 30, n) // unseeded: decode overwrites
	snapshot(t, orig.EncodeState, restored.DecodeState)

	for step := 0; step < 2000; step++ {
		for i := 0; i < n; i++ {
			a := orig.Advance(i, dt)
			b := restored.Advance(i, dt)
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("user %d: travel diverged at step %d: %v vs %v", i, step, a, b)
			}
			pa, pb := orig.Position(i), restored.Position(i)
			if math.Float64bits(pa.X) != math.Float64bits(pb.X) || math.Float64bits(pa.Y) != math.Float64bits(pb.Y) {
				t.Fatalf("user %d: position diverged at step %d: %v vs %v", i, step, pa, pb)
			}
		}
	}
}

func TestWaypointBatchDecodeRejectsSizeMismatch(t *testing.T) {
	region := Region{Width: 100, Height: 100}
	orig := NewWaypointBatch(region, 1, 5, 10, 3)
	for i := 0; i < 3; i++ {
		orig.SeedUser(i, rng.New(uint64(i+1)))
	}
	var buf bytes.Buffer
	w := checkpoint.NewWriter(&buf)
	w.Section("mob")
	orig.EncodeState(w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	smaller := NewWaypointBatch(region, 1, 5, 10, 2)
	r, err := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Section("mob"); err != nil {
		t.Fatal(err)
	}
	smaller.DecodeState(r)
	if r.Err() == nil {
		t.Fatal("user-count mismatch not rejected")
	}
}

// TestRandomWaypointStateRoundTrip is the scalar (voice-user) counterpart.
func TestRandomWaypointStateRoundTrip(t *testing.T) {
	region := Region{Width: 1500, Height: 1500}
	orig := NewRandomWaypoint(rng.New(11), region, 0.5, 15, 30)
	const dt = 0.5
	for step := 0; step < 300; step++ {
		orig.Advance(dt)
	}

	restored := NewRandomWaypoint(rng.New(99), region, 0.5, 15, 30)
	snapshot(t, orig.EncodeState, restored.DecodeState)

	for step := 0; step < 3000; step++ {
		a := orig.Advance(dt)
		b := restored.Advance(dt)
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("travel diverged at step %d: %v vs %v", step, a, b)
		}
		pa, pb := orig.Position(), restored.Position()
		if math.Float64bits(pa.X) != math.Float64bits(pb.X) || math.Float64bits(pa.Y) != math.Float64bits(pb.Y) {
			t.Fatalf("position diverged at step %d: %v vs %v", step, pa, pb)
		}
	}
}
