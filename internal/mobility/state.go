package mobility

import "jabasd/internal/checkpoint"

// EncodeState appends every user's mutable waypoint state: position,
// destination, speed, remaining pause, travel flag and draw stream. The
// region and speed bounds are construction parameters.
func (b *WaypointBatch) EncodeState(w *checkpoint.Writer) {
	w.Int(len(b.src))
	for i := range b.src {
		b.src[i].EncodeState(w)
		w.F64(b.pos[i].X)
		w.F64(b.pos[i].Y)
		w.F64(b.dest[i].X)
		w.F64(b.dest[i].Y)
		w.F64(b.speed[i])
		w.F64(b.pause[i])
		w.Bool(b.travelling[i])
	}
}

// DecodeState restores the state written by EncodeState into the existing
// batch, which must have the same user count.
func (b *WaypointBatch) DecodeState(rd *checkpoint.Reader) {
	if n := rd.Int(); n != len(b.src) {
		rd.Fail("waypoint batch has %d users, checkpoint %d", len(b.src), n)
		return
	}
	for i := range b.src {
		b.src[i].DecodeState(rd)
		b.pos[i].X = rd.F64()
		b.pos[i].Y = rd.F64()
		b.dest[i].X = rd.F64()
		b.dest[i].Y = rd.F64()
		b.speed[i] = rd.F64()
		b.pause[i] = rd.F64()
		b.travelling[i] = rd.Bool()
	}
}

// EncodeState appends the scalar waypoint model's mutable state (the voice
// users' mobility), mirroring WaypointBatch.EncodeState per user.
func (m *RandomWaypoint) EncodeState(w *checkpoint.Writer) {
	m.src.EncodeState(w)
	w.F64(m.pos.X)
	w.F64(m.pos.Y)
	w.F64(m.dest.X)
	w.F64(m.dest.Y)
	w.F64(m.speed)
	w.F64(m.pause)
	w.Bool(m.travelling)
}

// DecodeState restores the state written by EncodeState.
func (m *RandomWaypoint) DecodeState(rd *checkpoint.Reader) {
	m.src.DecodeState(rd)
	m.pos.X = rd.F64()
	m.pos.Y = rd.F64()
	m.dest.X = rd.F64()
	m.dest.Y = rd.F64()
	m.speed = rd.F64()
	m.pause = rd.F64()
	m.travelling = rd.Bool()
}
