package mobility

import (
	"jabasd/internal/cellular"
	"jabasd/internal/rng"
)

// WaypointBatch is the structure-of-arrays form of RandomWaypoint: the
// positions, destinations, speeds and pause clocks of many users live in
// parallel slices (with one value-typed rng.Source per user) instead of one
// heap object per user. Seeded with SeedUser from the same substream a
// per-user NewRandomWaypoint would receive, every step draws and moves in
// the identical order, so trajectories are bit-for-bit the same as the
// scalar model's.
type WaypointBatch struct {
	region   Region
	minSpeed float64
	maxSpeed float64
	maxPause float64

	src        []rng.Source
	pos        []cellular.Point
	dest       []cellular.Point
	speed      []float64
	pause      []float64
	travelling []bool
}

// NewWaypointBatch allocates a batch of n random-waypoint users with speeds
// drawn uniformly from [minSpeed, maxSpeed] m/s and pauses up to maxPause
// seconds, applying the same parameter clamps as NewRandomWaypoint. Every
// user must be seeded with SeedUser before stepping.
func NewWaypointBatch(region Region, minSpeed, maxSpeed, maxPause float64, n int) *WaypointBatch {
	if minSpeed < 0 {
		minSpeed = 0
	}
	if maxSpeed < minSpeed {
		maxSpeed = minSpeed
	}
	return &WaypointBatch{
		region:     region,
		minSpeed:   minSpeed,
		maxSpeed:   maxSpeed,
		maxPause:   maxPause,
		src:        make([]rng.Source, n),
		pos:        make([]cellular.Point, n),
		dest:       make([]cellular.Point, n),
		speed:      make([]float64, n),
		pause:      make([]float64, n),
		travelling: make([]bool, n),
	}
}

// Len returns the number of users in the batch.
func (b *WaypointBatch) Len() int { return len(b.src) }

// SeedUser initialises user i from src with the same draw order as
// NewRandomWaypoint: initial position, then the first destination and speed.
// The source is copied by value into the batch.
func (b *WaypointBatch) SeedUser(i int, src *rng.Source) {
	b.src[i] = *src
	r := &b.src[i]
	b.pos[i] = cellular.Point{X: r.Uniform(0, b.region.Width), Y: r.Uniform(0, b.region.Height)}
	b.pickDestination(i)
}

// pickDestination mirrors RandomWaypoint.pickDestination.
func (b *WaypointBatch) pickDestination(i int) {
	r := &b.src[i]
	b.dest[i] = cellular.Point{X: r.Uniform(0, b.region.Width), Y: r.Uniform(0, b.region.Height)}
	if b.maxSpeed <= 0 {
		b.speed[i] = 0
	} else {
		b.speed[i] = r.Uniform(b.minSpeed, b.maxSpeed)
		if b.speed[i] <= 0 {
			b.speed[i] = b.maxSpeed
		}
	}
	b.travelling[i] = true
}

// Position returns user i's current position.
func (b *WaypointBatch) Position(i int) cellular.Point { return b.pos[i] }

// Speed returns user i's current travel speed (0 while paused).
func (b *WaypointBatch) Speed(i int) float64 {
	if !b.travelling[i] {
		return 0
	}
	return b.speed[i]
}

// Advance moves user i by dt seconds and returns the distance travelled,
// with the identical step/pause logic as RandomWaypoint.Advance.
func (b *WaypointBatch) Advance(i int, dt float64) float64 {
	travelled := 0.0
	for dt > 0 {
		if !b.travelling[i] {
			if b.pause[i] >= dt {
				b.pause[i] -= dt
				return travelled
			}
			dt -= b.pause[i]
			b.pause[i] = 0
			b.pickDestination(i)
			continue
		}
		if b.speed[i] <= 0 {
			// Degenerate zero-speed user never reaches its destination.
			return travelled
		}
		toGo := b.pos[i].Dist(b.dest[i])
		stepTime := toGo / b.speed[i]
		if stepTime > dt {
			frac := b.speed[i] * dt / toGo
			b.pos[i] = b.pos[i].Add(b.dest[i].Sub(b.pos[i]).Scale(frac))
			travelled += b.speed[i] * dt
			return travelled
		}
		// Reach the destination and start a pause.
		b.pos[i] = b.dest[i]
		travelled += toGo
		dt -= stepTime
		b.travelling[i] = false
		b.pause[i] = b.src[i].Uniform(0, b.maxPause)
	}
	return travelled
}
