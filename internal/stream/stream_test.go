package stream

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestOrderedEmitsInInputOrder(t *testing.T) {
	const n = 50
	results := make([]int, n)
	var emitted []int
	err := Ordered(n, 8,
		func(i int) error {
			// Finish in roughly reverse order to stress the reordering.
			time.Sleep(time.Duration(n-i) * 10 * time.Microsecond)
			results[i] = i * i
			return nil
		},
		func(i int) error {
			emitted = append(emitted, i)
			if results[i] != i*i {
				t.Errorf("emit %d before its result was stored", i)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != n {
		t.Fatalf("emitted %d of %d", len(emitted), n)
	}
	for i, got := range emitted {
		if got != i {
			t.Fatalf("emit order broken at %d: got %d", i, got)
		}
	}
}

func TestOrderedBoundsParallelism(t *testing.T) {
	const n, bound = 40, 3
	var inFlight, peak atomic.Int64
	err := Ordered(n, bound,
		func(i int) error {
			cur := inFlight.Add(1)
			defer inFlight.Add(-1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
			return nil
		},
		func(int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > bound {
		t.Errorf("peak in-flight %d exceeds bound %d", got, bound)
	}
}

func TestOrderedFirstErrorInInputOrder(t *testing.T) {
	boom := errors.New("boom")
	var emitted []int
	err := Ordered(10, 4,
		func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("task %d: %w", i, boom)
			}
			return nil
		},
		func(i int) error {
			emitted = append(emitted, i)
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if err.Error() != "task 3: boom" {
		t.Errorf("want the first failure in input order, got %q", err)
	}
	// Everything before the failure must have been emitted, nothing after.
	want := []int{0, 1, 2}
	if len(emitted) != len(want) {
		t.Fatalf("emitted %v, want %v", emitted, want)
	}
	for i, got := range emitted {
		if got != want[i] {
			t.Fatalf("emitted %v, want %v", emitted, want)
		}
	}
}

func TestOrderedEmitErrorStops(t *testing.T) {
	stop := errors.New("stop")
	var emitted []int
	err := Ordered(20, 1,
		func(i int) error { return nil },
		func(i int) error {
			emitted = append(emitted, i)
			if i == 2 {
				return stop
			}
			return nil
		})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want stop", err)
	}
	if len(emitted) != 3 || emitted[2] != 2 {
		t.Errorf("emitted %v, want exactly [0 1 2]", emitted)
	}
}

func TestOrderedZeroTasks(t *testing.T) {
	if err := Ordered(0, 4, func(int) error { return nil }, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestOrderedDefaultParallel(t *testing.T) {
	var mu sync.Mutex
	var order []int
	err := Ordered(5, 0,
		func(i int) error { return nil },
		func(i int) error {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 5 {
		t.Fatalf("emitted %d of 5", len(order))
	}
}

func TestPoolRunsEveryTaskExactlyOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n = 1000
	var counts [n]int32
	p.Run(n, func(worker, task int) {
		if worker < 0 || worker >= p.Workers() {
			t.Errorf("worker index %d out of range [0,%d)", worker, p.Workers())
		}
		atomic.AddInt32(&counts[task], 1)
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("task %d ran %d times", i, c)
		}
	}
}

func TestPoolPerWorkerScratchNeedsNoLocking(t *testing.T) {
	// The point of worker identity: per-worker accumulators written without
	// synchronisation must still sum to the whole workload. Run under -race
	// this also proves no two tasks share a worker slot concurrently.
	p := NewPool(3)
	defer p.Close()
	scratch := make([]int, p.Workers())
	const n = 500
	p.Run(n, func(worker, task int) {
		scratch[worker]++
	})
	total := 0
	for _, s := range scratch {
		total += s
	}
	if total != n {
		t.Fatalf("per-worker scratch sums to %d, want %d", total, n)
	}
}

func TestPoolReusableAcrossRuns(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	for round := 0; round < 50; round++ {
		var sum atomic.Int64
		p.Run(round%7, func(_, task int) { sum.Add(int64(task) + 1) })
		n := int64(round % 7)
		if got := sum.Load(); got != n*(n+1)/2 {
			t.Fatalf("round %d: sum %d, want %d", round, got, n*(n+1)/2)
		}
	}
}

func TestPoolZeroTasksAndDefaults(t *testing.T) {
	p := NewPool(0) // GOMAXPROCS
	defer p.Close()
	if p.Workers() != runtime.GOMAXPROCS(0) {
		t.Errorf("default workers = %d, want GOMAXPROCS (%d)", p.Workers(), runtime.GOMAXPROCS(0))
	}
	ran := false
	p.Run(0, func(_, _ int) { ran = true })
	p.Run(-3, func(_, _ int) { ran = true })
	if ran {
		t.Error("n <= 0 must run nothing")
	}
}

func TestPoolMoreWorkersThanTasks(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	var sum atomic.Int64
	p.Run(2, func(_, task int) { sum.Add(int64(task) + 1) })
	if sum.Load() != 3 {
		t.Errorf("sum = %d, want 3", sum.Load())
	}
}
