// Package stream provides the bounded-parallel, order-preserving task
// runner shared by the experiment suite (internal/experiments), the
// replication fan-out (internal/sim) and the parameter-sweep harness
// (internal/sweep). Tasks run concurrently on a worker pool but their
// results are emitted strictly in input order as soon as each task and all
// of its predecessors have finished, so a caller that prints or persists
// results incrementally keeps everything completed before a failure.
package stream

import "runtime"

// Ordered runs n tasks concurrently with at most parallel of them in flight
// at once (<= 0 means GOMAXPROCS) and calls emit(i) in input order as soon
// as task i and every task before it have finished.
//
// run(i) computes the i-th result and stores it somewhere the caller owns
// (typically a slice indexed by i); emit(i) consumes it. The first error in
// input order — from run or emit — is returned after the in-flight tasks
// drain; queued tasks that have not started yet are skipped, and emit is
// called for every task preceding the failure but none after it.
func Ordered(n, parallel int, run func(i int) error, emit func(i int) error) error {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	errs := make([]error, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	sem := make(chan struct{}, parallel)
	stop := make(chan struct{}) // closed on failure: queued tasks skip running
	for i := 0; i < n; i++ {
		go func(i int) {
			defer close(done[i])
			sem <- struct{}{}
			defer func() { <-sem }()
			select {
			case <-stop:
				return // a predecessor already failed; this result would be discarded
			default:
			}
			errs[i] = run(i)
		}(i)
	}
	// drainFrom is called at most once, right before returning an error: it
	// tells queued tasks not to start and waits out the in-flight ones.
	drainFrom := func(j int) {
		close(stop)
		for ; j < n; j++ {
			<-done[j]
		}
	}
	for i := 0; i < n; i++ {
		<-done[i]
		if errs[i] != nil {
			drainFrom(i + 1)
			return errs[i]
		}
		if err := emit(i); err != nil {
			drainFrom(i + 1)
			return err
		}
	}
	return nil
}
