// Package stream provides the bounded-parallel execution primitives shared
// by the experiment suite (internal/experiments), the replication fan-out
// and snapshot frame admission (internal/sim) and the parameter-sweep
// harness (internal/sweep): Ordered, a one-shot order-preserving task
// runner, and Pool, a reusable worker pool for repeated small fan-outs.
// Ordered emits results strictly in input order as soon as each task and
// all of its predecessors have finished, so a caller that prints or
// persists results incrementally keeps everything completed before a
// failure.
package stream

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Ordered runs n tasks concurrently with at most parallel of them in flight
// at once (<= 0 means GOMAXPROCS) and calls emit(i) in input order as soon
// as task i and every task before it have finished.
//
// run(i) computes the i-th result and stores it somewhere the caller owns
// (typically a slice indexed by i); emit(i) consumes it. The first error in
// input order — from run or emit — is returned after the in-flight tasks
// drain; queued tasks that have not started yet are skipped, and emit is
// called for every task preceding the failure but none after it.
func Ordered(n, parallel int, run func(i int) error, emit func(i int) error) error {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	errs := make([]error, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	sem := make(chan struct{}, parallel)
	stop := make(chan struct{}) // closed on failure: queued tasks skip running
	for i := 0; i < n; i++ {
		go func(i int) {
			defer close(done[i])
			sem <- struct{}{}
			defer func() { <-sem }()
			select {
			case <-stop:
				return // a predecessor already failed; this result would be discarded
			default:
			}
			errs[i] = run(i)
		}(i)
	}
	// drainFrom is called at most once, right before returning an error: it
	// tells queued tasks not to start and waits out the in-flight ones.
	drainFrom := func(j int) {
		close(stop)
		for ; j < n; j++ {
			<-done[j]
		}
	}
	for i := 0; i < n; i++ {
		<-done[i]
		if errs[i] != nil {
			drainFrom(i + 1)
			return errs[i]
		}
		if err := emit(i); err != nil {
			drainFrom(i + 1)
			return err
		}
	}
	return nil
}

// Pool is a fixed set of persistent workers for repeated bounded fan-outs.
// Unlike Ordered, which spawns one goroutine per task and has no notion of
// worker identity, a Pool keeps its goroutines alive across Run calls and
// passes each task the index of the worker executing it, so callers can
// maintain per-worker scratch state (buffers, solver instances) that is
// reused without synchronisation. The simulation engine runs one Pool per
// replication to fan the per-cell admission solves of every frame out
// without re-spawning goroutines 50 times a simulated second.
//
// Tasks within one Run are claimed dynamically (work stealing), so the
// task→worker assignment is NOT deterministic; callers needing reproducible
// output must make each task's result independent of which worker ran it.
// Run blocks until every task finished. A Pool is not safe for concurrent
// Run calls. Close releases the workers; the Pool is unusable afterwards.
type Pool struct {
	wake []chan *poolBatch
	cur  poolBatch // reused across Run calls so the steady state does not allocate
}

// poolBatch is one Run's shared work descriptor.
type poolBatch struct {
	n    int64
	next atomic.Int64
	fn   func(worker, task int)
	wg   sync.WaitGroup
}

// NewPool starts a pool of the given number of workers (<= 0 means
// GOMAXPROCS).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{wake: make([]chan *poolBatch, workers)}
	for w := range p.wake {
		ch := make(chan *poolBatch)
		p.wake[w] = ch
		go func(w int) {
			for b := range ch {
				for {
					i := b.next.Add(1) - 1
					if i >= b.n {
						break
					}
					b.fn(w, int(i))
				}
				b.wg.Done()
			}
		}(w)
	}
	return p
}

// Workers returns the number of workers in the pool.
func (p *Pool) Workers() int { return len(p.wake) }

// Run executes fn(worker, task) for every task in [0, n), fanning the tasks
// out over the pool's workers, and returns once all have finished. The
// worker argument identifies which worker's scratch state the task may use.
func (p *Pool) Run(n int, fn func(worker, task int)) {
	if n <= 0 {
		return
	}
	b := &p.cur
	b.n = int64(n)
	b.fn = fn
	b.next.Store(0)
	b.wg.Add(len(p.wake))
	for _, ch := range p.wake {
		ch <- b
	}
	b.wg.Wait()
	b.fn = nil
}

// Close stops the pool's workers. It must not be called while a Run is in
// flight, and the Pool must not be used afterwards.
func (p *Pool) Close() {
	for _, ch := range p.wake {
		close(ch)
	}
}
