package ilp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKnapsackExhaustive(t *testing.T) {
	// max 3x + 4y, 2x + 3y <= 6, x,y in {0..3}. Optimum: x=3,y=0 -> 9? Check:
	// x=3 => 2*3=6 <= 6, obj 9. x=0,y=2 => obj 8. x=1,y=1 -> 5<=6, obj 7.
	p := Problem{
		C:     []float64{3, 4},
		A:     [][]float64{{2, 3}},
		B:     []float64{6},
		Upper: []int{3, 3},
	}
	res, err := Exhaustive(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Objective != 9 {
		t.Errorf("Exhaustive = %+v, want objective 9", res)
	}
	if res.X[0] != 3 || res.X[1] != 0 {
		t.Errorf("X = %v", res.X)
	}
}

func TestKnapsackBranchAndBound(t *testing.T) {
	p := Problem{
		C:     []float64{3, 4},
		A:     [][]float64{{2, 3}},
		B:     []float64{6},
		Upper: []int{3, 3},
	}
	res, err := BranchAndBound(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || math.Abs(res.Objective-9) > 1e-9 {
		t.Errorf("BranchAndBound = %+v, want objective 9", res)
	}
}

func TestInfeasibleTightConstraint(t *testing.T) {
	// A row with negative rhs makes even the zero vector infeasible.
	p := Problem{
		C:     []float64{1},
		A:     [][]float64{{1}, {-1}},
		B:     []float64{5, -1}, // x >= 1 and x <= 5 is feasible; zero is not
		Upper: []int{0},         // but upper bound forces x = 0 -> infeasible
	}
	res, err := BranchAndBound(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Errorf("expected infeasible, got %+v", res)
	}
	resE, err := Exhaustive(p)
	if err != nil {
		t.Fatal(err)
	}
	if resE.Feasible {
		t.Errorf("exhaustive expected infeasible, got %+v", resE)
	}
}

func TestZeroVectorIncumbent(t *testing.T) {
	// No profitable variable: optimum is all zeros with objective 0.
	p := Problem{
		C:     []float64{-1, -2},
		A:     [][]float64{{1, 1}},
		B:     []float64{10},
		Upper: []int{5, 5},
	}
	res, err := BranchAndBound(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Objective != 0 {
		t.Errorf("want zero solution, got %+v", res)
	}
	for _, x := range res.X {
		if x != 0 {
			t.Errorf("want all zeros, got %v", res.X)
		}
	}
}

func TestEmptyProblem(t *testing.T) {
	res, err := BranchAndBound(Problem{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Objective != 0 {
		t.Errorf("empty problem: %+v", res)
	}
}

func TestBadShapes(t *testing.T) {
	cases := []Problem{
		{C: []float64{1}, Upper: []int{1, 2}},
		{C: []float64{1}, Upper: []int{1}, A: [][]float64{{1, 2}}, B: []float64{1}},
		{C: []float64{1}, Upper: []int{1}, A: [][]float64{{1}}, B: []float64{1, 2}},
		{C: []float64{1}, Upper: []int{-1}},
	}
	for i, p := range cases {
		if _, err := BranchAndBound(p); err != ErrBadShape {
			t.Errorf("case %d: expected ErrBadShape, got %v", i, err)
		}
		if _, err := Exhaustive(p); err != ErrBadShape {
			t.Errorf("case %d exhaustive: expected ErrBadShape, got %v", i, err)
		}
	}
}

func TestMultiConstraint(t *testing.T) {
	// Two resources (forward-link power in two cells), three requests.
	p := Problem{
		C:     []float64{5, 4, 3},
		A:     [][]float64{{2, 3, 1}, {4, 1, 2}},
		B:     []float64{10, 11},
		Upper: []int{4, 4, 4},
	}
	exh, err := Exhaustive(p)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := BranchAndBound(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exh.Objective-bb.Objective) > 1e-6 {
		t.Errorf("BB objective %v != exhaustive %v", bb.Objective, exh.Objective)
	}
}

// randomProblem builds a small random admission-like instance (non-negative
// constraint matrix, non-negative rhs) from a seed.
func randomProblem(seed uint64, n, m, maxUB int) Problem {
	s := seed
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>11) / (1 << 53)
	}
	p := Problem{
		C:     make([]float64, n),
		A:     make([][]float64, m),
		B:     make([]float64, m),
		Upper: make([]int, n),
	}
	for j := 0; j < n; j++ {
		p.C[j] = next()*5 - 0.5 // mostly positive utilities
		p.Upper[j] = 1 + int(next()*float64(maxUB))
	}
	for i := 0; i < m; i++ {
		p.A[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			p.A[i][j] = next() * 2
		}
		p.B[i] = next() * 8
	}
	return p
}

func TestBranchAndBoundMatchesExhaustiveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		p := randomProblem(seed, 3, 3, 3)
		exh, err1 := Exhaustive(p)
		bb, err2 := BranchAndBound(p)
		if err1 != nil || err2 != nil {
			return false
		}
		if exh.Feasible != bb.Feasible {
			return false
		}
		if !exh.Feasible {
			return true
		}
		return math.Abs(exh.Objective-bb.Objective) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBranchAndBoundSolutionFeasibleProperty(t *testing.T) {
	f := func(seed uint64) bool {
		p := randomProblem(seed^0xabcdef, 5, 4, 4)
		bb, err := BranchAndBound(p)
		if err != nil {
			return false
		}
		if !bb.Feasible {
			return true
		}
		return p.feasible(bb.X)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNodesCounted(t *testing.T) {
	p := randomProblem(12345, 6, 4, 5)
	bb, err := BranchAndBound(p)
	if err != nil {
		t.Fatal(err)
	}
	if bb.Nodes <= 0 {
		t.Errorf("expected node count > 0, got %d", bb.Nodes)
	}
}

func TestLargerInstanceRuns(t *testing.T) {
	p := randomProblem(999, 10, 6, 6)
	bb, err := BranchAndBound(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bb.Feasible {
		t.Error("expected feasible (zero vector is always checked)")
	}
	if !p.feasible(bb.X) {
		t.Error("returned solution violates constraints")
	}
}
