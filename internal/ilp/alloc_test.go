package ilp

import (
	"testing"

	"jabasd/internal/race"
)

// TestSolverSteadyStateAllocs gates the branch-and-bound hot path: with the
// node pool and the shared relaxation warm, Solve must not allocate.
func TestSolverSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	p := randomProblem(4242, 8, 4, 8)
	var solver Solver
	solve := func() {
		if _, err := solver.Solve(p); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the pool across a few differently-shaped instances first, so the
	// gate measures the steady state rather than first-touch growth.
	for seed := uint64(1); seed <= 4; seed++ {
		q := randomProblem(seed, 6, 3, 6)
		if _, err := solver.Solve(q); err != nil {
			t.Fatal(err)
		}
	}
	solve()
	if allocs := testing.AllocsPerRun(50, solve); allocs != 0 {
		t.Errorf("ilp.Solver.Solve allocates %v times per solve in the steady state, want 0", allocs)
	}
}
