package ilp

import (
	"reflect"
	"testing"
)

// TestSolverNodeBudget pins the deterministic degradation contract of
// Solver.MaxNodes: a capped search still returns a feasible incumbent,
// marks Result.Capped, and the same (problem, budget) pair always produces
// the same result — the budget is a node count, not wall-clock time.
func TestSolverNodeBudget(t *testing.T) {
	// A problem the solver needs more than one node for.
	var p Problem
	for seed := uint64(1); seed <= 200; seed++ {
		cand := randomProblem(seed*0x9e3779b97f4a7c15, 8, 4, 8)
		var probe Solver
		res, err := probe.Solve(cand)
		if err != nil {
			t.Fatal(err)
		}
		if res.Feasible && res.Nodes > 3 {
			p = cand
			break
		}
	}
	if p.C == nil {
		t.Fatal("no multi-node instance found")
	}

	var full Solver
	ref, err := full.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Capped {
		t.Fatalf("unbudgeted solve reported capped after %d nodes", ref.Nodes)
	}

	capped := Solver{MaxNodes: 1}
	got, err := capped.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Capped {
		t.Fatalf("budget 1 on a %d-node instance must cap", ref.Nodes)
	}
	if !got.Feasible || !p.feasible(got.X) {
		t.Fatalf("capped result must still be a feasible incumbent: %+v", got)
	}
	if got.Objective > ref.Objective+1e-9 {
		t.Fatalf("incumbent %v beats the optimum %v", got.Objective, ref.Objective)
	}
	x1 := append([]int(nil), got.X...)
	again, err := capped.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(x1, again.X) || again.Nodes != got.Nodes || !again.Capped {
		t.Fatalf("capped solve is not deterministic: %v/%d vs %v/%d", x1, got.Nodes, again.X, again.Nodes)
	}

	// A budget at or above the full search's node count must not cap and
	// must reproduce the optimum exactly.
	roomy := Solver{MaxNodes: ref.Nodes}
	res, err := roomy.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Capped || res.Objective != ref.Objective {
		t.Fatalf("budget %d (= full node count) changed the result: %+v vs %+v", ref.Nodes, res, ref)
	}
}
