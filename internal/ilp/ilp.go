// Package ilp solves the small bounded-integer programs produced by the burst
// admission scheduling sub-layer:
//
//	maximise    c'm  (+ constant)
//	subject to  A m <= b
//	            0 <= m_j <= ub_j,  m_j integer
//
// Three solvers are provided: the reusable Solver (LP-relaxation branch and
// bound with pooled nodes, a shared relaxation and a greedy-seeded
// incumbent — the production path, allocation-free in the steady state), the
// one-shot BranchAndBound (the original per-call implementation, kept as an
// independent reference and differential-test oracle), and an exhaustive
// enumerator (Exhaustive) for tiny instances and oracle duty.
package ilp

import (
	"errors"
	"math"

	"jabasd/internal/lp"
)

// ErrBadShape is returned when problem dimensions are inconsistent.
var ErrBadShape = errors.New("ilp: inconsistent problem dimensions")

// Problem is a bounded integer program. Upper bounds must be non-negative.
type Problem struct {
	C     []float64   // objective coefficients (maximise), length n
	A     [][]float64 // constraint rows, each length n
	B     []float64   // right-hand sides
	Upper []int       // per-variable integer upper bound, length n
}

// Result is the outcome of an integer solve.
type Result struct {
	Feasible  bool
	X         []int
	Objective float64
	Nodes     int // number of branch-and-bound nodes explored (0 for Exhaustive)
	// Capped is true when the search hit its node budget (Solver.MaxNodes,
	// or the maxNodes safety valve) and returned the incumbent instead of a
	// proven optimum. Deterministic: node counts depend only on the problem,
	// never on wall-clock time or scheduling.
	Capped bool
}

func (p Problem) validate() error {
	n := len(p.C)
	if len(p.Upper) != n {
		return ErrBadShape
	}
	if len(p.A) != len(p.B) {
		return ErrBadShape
	}
	for _, row := range p.A {
		if len(row) != n {
			return ErrBadShape
		}
	}
	for _, u := range p.Upper {
		if u < 0 {
			return ErrBadShape
		}
	}
	return nil
}

// objective evaluates c'x.
func (p Problem) objective(x []int) float64 {
	s := 0.0
	for i, c := range p.C {
		s += c * float64(x[i])
	}
	return s
}

// feasible reports whether x satisfies A x <= b and the bounds.
func (p Problem) feasible(x []int) bool {
	for i, xi := range x {
		if xi < 0 || xi > p.Upper[i] {
			return false
		}
	}
	for r, row := range p.A {
		lhs := 0.0
		for j, a := range row {
			lhs += a * float64(x[j])
		}
		if lhs > p.B[r]+1e-7 {
			return false
		}
	}
	return true
}

// Exhaustive enumerates every lattice point in the box [0,Upper] and returns
// the best feasible one. Complexity is Π(Upper_j+1); intended for n*M small
// (test oracle and tiny frames).
func Exhaustive(p Problem) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	n := len(p.C)
	x := make([]int, n)
	best := Result{Feasible: false, Objective: math.Inf(-1)}
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if p.feasible(x) {
				obj := p.objective(x)
				if !best.Feasible || obj > best.Objective {
					best.Feasible = true
					best.Objective = obj
					best.X = append([]int(nil), x...)
				}
			}
			return
		}
		for v := 0; v <= p.Upper[i]; v++ {
			x[i] = v
			rec(i + 1)
		}
		x[i] = 0
	}
	rec(0)
	if !best.Feasible {
		best.Objective = 0
	}
	return best, nil
}

// maxNodes is the branch-and-bound safety valve: searches abandon after this
// many nodes and return the incumbent.
const maxNodes = 200000

// BranchAndBound solves the problem with LP-relaxation based branch and
// bound. Variable upper bounds are encoded as extra LP rows. The search
// branches on the most fractional variable and explores the "floor" branch
// first (depth-first), using the LP bound to prune.
//
// BranchAndBound allocates its relaxation matrices per node; it is kept as
// an independent reference implementation and differential-test oracle for
// the reusable Solver, which the schedulers use on the hot path.
func BranchAndBound(p Problem) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	n := len(p.C)
	if n == 0 {
		return Result{Feasible: true, X: []int{}, Objective: 0}, nil
	}

	// The all-zero vector is feasible iff b >= 0; use it as the incumbent
	// when possible (m_j = 0 means "reject all bursts", always admissible in
	// the paper's formulation).
	best := Result{Feasible: false, Objective: math.Inf(-1), Nodes: 0}
	zero := make([]int, n)
	if p.feasible(zero) {
		best = Result{Feasible: true, X: zero, Objective: p.objective(zero)}
	}

	type node struct {
		lower, upper []int
	}
	initLower := make([]int, n)
	initUpper := append([]int(nil), p.Upper...)
	stack := []node{{lower: initLower, upper: initUpper}}
	nodes := 0

	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++
		if nodes > maxNodes {
			break // safety valve; incumbent is returned
		}

		relax := buildRelaxation(p, nd.lower, nd.upper)
		res, err := lp.Solve(relax)
		if err != nil {
			return Result{}, err
		}
		if res.Status == lp.Infeasible {
			continue
		}
		if res.Status == lp.Unbounded {
			// Bounded box => cannot happen, but guard anyway.
			continue
		}
		// Shift variables back: LP variables are y_j = x_j - lower_j.
		xFrac := make([]float64, n)
		obj := 0.0
		for j := 0; j < n; j++ {
			xFrac[j] = res.X[j] + float64(nd.lower[j])
			obj += p.C[j] * xFrac[j]
		}
		if best.Feasible && obj <= best.Objective+1e-9 {
			continue // prune by bound
		}
		// Find most fractional variable.
		branch := -1
		bestFrac := 1e-6
		for j := 0; j < n; j++ {
			f := math.Abs(xFrac[j] - math.Round(xFrac[j]))
			if f > bestFrac {
				bestFrac = f
				branch = j
			}
		}
		if branch < 0 {
			// Integral LP optimum.
			xi := make([]int, n)
			for j := 0; j < n; j++ {
				xi[j] = int(math.Round(xFrac[j]))
			}
			if p.feasible(xi) {
				o := p.objective(xi)
				if !best.Feasible || o > best.Objective {
					best = Result{Feasible: true, X: xi, Objective: o}
				}
			}
			continue
		}
		floorV := int(math.Floor(xFrac[branch]))
		// Up branch: x_branch >= floor+1.
		if floorV+1 <= nd.upper[branch] {
			lo := append([]int(nil), nd.lower...)
			up := append([]int(nil), nd.upper...)
			lo[branch] = floorV + 1
			stack = append(stack, node{lower: lo, upper: up})
		}
		// Down branch: x_branch <= floor (pushed last => explored first).
		if floorV >= nd.lower[branch] {
			lo := append([]int(nil), nd.lower...)
			up := append([]int(nil), nd.upper...)
			up[branch] = floorV
			stack = append(stack, node{lower: lo, upper: up})
		}
	}
	best.Nodes = nodes
	if !best.Feasible {
		best.Objective = 0
	}
	return best, nil
}

// buildRelaxation constructs the LP relaxation over shifted variables
// y_j = x_j - lower_j with 0 <= y_j <= upper_j - lower_j.
func buildRelaxation(p Problem, lower, upper []int) lp.Problem {
	n := len(p.C)
	m := len(p.A)
	rows := make([][]float64, 0, m+n)
	rhs := make([]float64, 0, m+n)
	for i := 0; i < m; i++ {
		row := append([]float64(nil), p.A[i]...)
		b := p.B[i]
		for j := 0; j < n; j++ {
			b -= p.A[i][j] * float64(lower[j])
		}
		rows = append(rows, row)
		rhs = append(rhs, b)
	}
	for j := 0; j < n; j++ {
		row := make([]float64, n)
		row[j] = 1
		rows = append(rows, row)
		rhs = append(rhs, float64(upper[j]-lower[j]))
	}
	return lp.Problem{C: append([]float64(nil), p.C...), A: rows, B: rhs}
}
