package ilp

import (
	"math"
	"testing"
)

// TestSolverMatchesBranchAndBound is the differential gate for the reusable
// solver: across a fuzz-style table of random admission-like instances of
// varying shape, one warm Solver (buffers deliberately reused from case to
// case) must agree with the independent one-shot BranchAndBound on
// feasibility and optimal value, and its assignment must be feasible.
func TestSolverMatchesBranchAndBound(t *testing.T) {
	shapes := []struct {
		n, m, maxUB int
	}{
		{1, 1, 3}, {2, 1, 4}, {3, 2, 3}, {4, 3, 4}, {5, 4, 4},
		{6, 4, 5}, {8, 4, 8}, {10, 6, 6}, {12, 3, 16},
	}
	var s Solver
	cases := 0
	for _, sh := range shapes {
		for seed := uint64(1); seed <= 40; seed++ {
			p := randomProblem(seed*2654435761+uint64(sh.n)<<32, sh.n, sh.m, sh.maxUB)
			ref, err := BranchAndBound(p)
			if err != nil {
				t.Fatalf("shape %+v seed %d: BranchAndBound: %v", sh, seed, err)
			}
			got, err := s.Solve(p)
			if err != nil {
				t.Fatalf("shape %+v seed %d: Solver: %v", sh, seed, err)
			}
			if got.Feasible != ref.Feasible {
				t.Fatalf("shape %+v seed %d: feasible = %v, BranchAndBound says %v", sh, seed, got.Feasible, ref.Feasible)
			}
			if !got.Feasible {
				continue
			}
			if math.Abs(got.Objective-ref.Objective) > 1e-6 {
				t.Fatalf("shape %+v seed %d: objective = %v, BranchAndBound says %v", sh, seed, got.Objective, ref.Objective)
			}
			if !p.feasible(got.X) {
				t.Fatalf("shape %+v seed %d: solver assignment %v violates constraints", sh, seed, got.X)
			}
			cases++
		}
	}
	if cases == 0 {
		t.Fatal("no feasible cases exercised")
	}
}

// TestSolverMatchesExhaustiveSmall pits the solver against the exhaustive
// enumerator on instances small enough to enumerate.
func TestSolverMatchesExhaustiveSmall(t *testing.T) {
	var s Solver
	for seed := uint64(1); seed <= 60; seed++ {
		p := randomProblem(seed^0x9e3779b97f4a7c15, 3, 3, 3)
		exh, err := Exhaustive(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := s.Solve(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got.Feasible != exh.Feasible {
			t.Fatalf("seed %d: feasible = %v, exhaustive says %v", seed, got.Feasible, exh.Feasible)
		}
		if got.Feasible && math.Abs(got.Objective-exh.Objective) > 1e-6 {
			t.Fatalf("seed %d: objective = %v, exhaustive says %v", seed, got.Objective, exh.Objective)
		}
	}
}

// TestSolverInfeasibleAndEdgeCases mirrors the BranchAndBound edge-case
// tests on the reusable solver, reusing one instance throughout.
func TestSolverInfeasibleAndEdgeCases(t *testing.T) {
	var s Solver

	res, err := s.Solve(Problem{})
	if err != nil || !res.Feasible || res.Objective != 0 {
		t.Errorf("empty problem: %+v, %v", res, err)
	}

	// Upper bound forces x = 0 but a row demands x >= 1: infeasible.
	res, err = s.Solve(Problem{
		C:     []float64{1},
		A:     [][]float64{{1}, {-1}},
		B:     []float64{5, -1},
		Upper: []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Errorf("expected infeasible, got %+v", res)
	}

	// No profitable variable: all-zero optimum straight from the seed.
	res, err = s.Solve(Problem{
		C:     []float64{-1, -2},
		A:     [][]float64{{1, 1}},
		B:     []float64{10},
		Upper: []int{5, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Objective != 0 {
		t.Errorf("want zero solution, got %+v", res)
	}
	for _, x := range res.X {
		if x != 0 {
			t.Errorf("want all zeros, got %v", res.X)
		}
	}

	// Knapsack with known optimum.
	res, err = s.Solve(Problem{
		C:     []float64{3, 4},
		A:     [][]float64{{2, 3}},
		B:     []float64{6},
		Upper: []int{3, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || math.Abs(res.Objective-9) > 1e-9 {
		t.Errorf("knapsack = %+v, want objective 9", res)
	}

	for _, bad := range []Problem{
		{C: []float64{1}, Upper: []int{1, 2}},
		{C: []float64{1}, Upper: []int{1}, A: [][]float64{{1, 2}}, B: []float64{1}},
		{C: []float64{1}, Upper: []int{1}, A: [][]float64{{1}}, B: []float64{1, 2}},
		{C: []float64{1}, Upper: []int{-1}},
	} {
		if _, err := s.Solve(bad); err != ErrBadShape {
			t.Errorf("bad shape %+v: expected ErrBadShape, got %v", bad, err)
		}
	}
}

// TestSolverGreedySeedPrunes checks the warm-incumbent claim: on an instance
// whose greedy ascent lands on the optimum, the seeded search should close
// with no more nodes than the cold reference search.
func TestSolverGreedySeedPrunes(t *testing.T) {
	p := randomProblem(999, 10, 6, 6)
	ref, err := BranchAndBound(p)
	if err != nil {
		t.Fatal(err)
	}
	var s Solver
	got, err := s.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Objective-ref.Objective) > 1e-6 {
		t.Fatalf("objective = %v, want %v", got.Objective, ref.Objective)
	}
	if got.Nodes > ref.Nodes {
		t.Errorf("seeded search used %d nodes, reference used %d", got.Nodes, ref.Nodes)
	}
}

// TestSolverResultAliasing pins the documented contract: Result.X aliases
// the solver's incumbent buffer, so a second Solve overwrites it.
func TestSolverResultAliasing(t *testing.T) {
	var s Solver
	p1 := Problem{C: []float64{3, 4}, A: [][]float64{{2, 3}}, B: []float64{6}, Upper: []int{3, 3}}
	r1, err := s.Solve(p1)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]int(nil), r1.X...)
	p2 := Problem{C: []float64{1, 1}, A: [][]float64{{1, 1}}, B: []float64{0.5}, Upper: []int{3, 3}}
	if _, err := s.Solve(p2); err != nil {
		t.Fatal(err)
	}
	same := len(want) == len(r1.X)
	if same {
		for i := range want {
			if want[i] != r1.X[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Skip("second solve happened to produce the same assignment; aliasing not observable")
	}
}
