package ilp

import (
	"math"

	"jabasd/internal/lp"
)

// Solver is a reusable branch-and-bound solver for the bounded integer
// programs of the scheduling sub-layer. It differs from the one-shot
// BranchAndBound in three ways, none of which change the returned optimum:
//
//   - Shared relaxation: the LP relaxation's constraint matrix (the problem
//     rows plus one unit row per variable upper bound) is assembled once per
//     Solve; branching only tightens variable bounds, so each node merely
//     recomputes the right-hand side vector over the shifted variables
//     y_j = x_j - lower_j instead of rebuilding matrices.
//   - Node pool: the DFS stack's per-node bound vectors come from a free
//     list that is reused across nodes and across Solve calls, and the inner
//     LP runs on an owned lp.Solver whose tableau is an arena — so
//     steady-state Solve calls do not allocate.
//   - Warm incumbent: when the all-zero assignment is admissible the
//     incumbent is seeded by a deterministic greedy ascent from it, so
//     pruning starts with a finite (and usually near-optimal) bound instead
//     of discovering one deep in the tree.
//
// Result.X returned by Solve aliases the solver's incumbent buffer and is
// only valid until the next Solve call; callers that retain it must copy.
// The zero value is ready to use. A Solver is not safe for concurrent use —
// give each goroutine its own (see core.Cloner).
type Solver struct {
	// MaxNodes, when positive, bounds the branch-and-bound search at that
	// many nodes: the search stops there and returns the incumbent with
	// Result.Capped set. It is the deterministic analogue of a wall-clock
	// budget — node counts are a pure function of the problem — so callers
	// can degrade gracefully (fall back to a cheaper heuristic) without
	// giving up byte-identical outputs. Zero keeps only the maxNodes safety
	// valve.
	MaxNodes int

	lp lp.Solver

	// Shared relaxation storage: rows holds the m problem rows (aliased, the
	// LP solver never mutates its input) followed by n unit upper-bound rows
	// carved from boundSlab; rhs is recomputed per node.
	rows      [][]float64
	boundSlab []float64
	rhs       []float64

	xf    []float64 // node LP solution shifted back to x-space
	xi    []int     // integral rounding buffer
	bestX []int     // incumbent assignment (aliased by Result.X)

	stack []node
	free  []node
}

// node is one branch-and-bound subproblem: the per-variable bound box. The
// slices are pool-owned and recycled once the node has been expanded.
type node struct {
	lo, up []int
}

// newNode takes a node from the free list (or grows the pool) with bound
// vectors of length n.
func (s *Solver) newNode(n int) node {
	if len(s.free) == 0 {
		return node{lo: make([]int, n), up: make([]int, n)}
	}
	nd := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	if cap(nd.lo) < n {
		nd.lo = make([]int, n)
		nd.up = make([]int, n)
	}
	nd.lo = nd.lo[:n]
	nd.up = nd.up[:n]
	return nd
}

// recycle returns an expanded node's storage to the pool.
func (s *Solver) recycle(nd node) {
	s.free = append(s.free, nd)
}

// Solve runs branch and bound on p. The result matches BranchAndBound's
// optimum (value and feasibility; see the Solver doc comment for the
// Result.X aliasing contract). Nodes counts may differ: the greedy-seeded
// incumbent usually prunes earlier.
func (s *Solver) Solve(p Problem) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	n := len(p.C)
	if n == 0 {
		return Result{Feasible: true, X: []int{}, Objective: 0}, nil
	}
	m := len(p.A)

	// The all-zero vector is feasible iff b >= 0 (m_j = 0 means "reject all
	// bursts", always admissible in the paper's formulation). When it is,
	// improve it by greedy ascent so pruning starts with a strong bound.
	if cap(s.bestX) < n {
		s.bestX = make([]int, n)
	}
	s.bestX = s.bestX[:n]
	for j := range s.bestX {
		s.bestX[j] = 0
	}
	best := Result{Feasible: false, Objective: math.Inf(-1)}
	if p.feasible(s.bestX) {
		s.seedIncumbent(p)
		best = Result{Feasible: true, X: s.bestX, Objective: p.objective(s.bestX)}
	}

	s.resetRelaxation(p)

	root := s.newNode(n)
	for j := range root.lo {
		root.lo[j] = 0
	}
	copy(root.up, p.Upper)
	s.stack = append(s.stack[:0], root)
	nodes := 0
	capped := false
	limit := maxNodes
	if s.MaxNodes > 0 && s.MaxNodes < limit {
		limit = s.MaxNodes
	}

	for len(s.stack) > 0 {
		nd := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		nodes++
		if nodes > limit {
			s.recycle(nd)
			capped = true
			break // budget exhausted; incumbent is returned
		}

		// Right-hand side of the shared relaxation over the shifted
		// variables y_j = x_j - lower_j with 0 <= y_j <= upper_j - lower_j.
		for i := 0; i < m; i++ {
			b := p.B[i]
			for j := 0; j < n; j++ {
				b -= p.A[i][j] * float64(nd.lo[j])
			}
			s.rhs[i] = b
		}
		for j := 0; j < n; j++ {
			s.rhs[m+j] = float64(nd.up[j] - nd.lo[j])
		}
		res, err := s.lp.Solve(lp.Problem{C: p.C, A: s.rows, B: s.rhs})
		if err != nil {
			s.recycle(nd)
			return Result{}, err
		}
		if res.Status != lp.Optimal {
			// Infeasible box, or (impossible over a bounded box) unbounded.
			s.recycle(nd)
			continue
		}
		// Shift variables back: LP variables are y_j = x_j - lower_j.
		obj := 0.0
		for j := 0; j < n; j++ {
			s.xf[j] = res.X[j] + float64(nd.lo[j])
			obj += p.C[j] * s.xf[j]
		}
		if best.Feasible && obj <= best.Objective+1e-9 {
			s.recycle(nd)
			continue // prune by bound
		}
		// Find most fractional variable.
		branch := -1
		bestFrac := 1e-6
		for j := 0; j < n; j++ {
			f := math.Abs(s.xf[j] - math.Round(s.xf[j]))
			if f > bestFrac {
				bestFrac = f
				branch = j
			}
		}
		if branch < 0 {
			// Integral LP optimum.
			for j := 0; j < n; j++ {
				s.xi[j] = int(math.Round(s.xf[j]))
			}
			if p.feasible(s.xi) {
				o := p.objective(s.xi)
				if !best.Feasible || o > best.Objective {
					copy(s.bestX, s.xi)
					best = Result{Feasible: true, X: s.bestX, Objective: o}
				}
			}
			s.recycle(nd)
			continue
		}
		floorV := int(math.Floor(s.xf[branch]))
		// Up branch: x_branch >= floor+1.
		if floorV+1 <= nd.up[branch] {
			ch := s.newNode(n)
			copy(ch.lo, nd.lo)
			copy(ch.up, nd.up)
			ch.lo[branch] = floorV + 1
			s.stack = append(s.stack, ch)
		}
		// Down branch: x_branch <= floor (pushed last => explored first).
		if floorV >= nd.lo[branch] {
			ch := s.newNode(n)
			copy(ch.lo, nd.lo)
			copy(ch.up, nd.up)
			ch.up[branch] = floorV
			s.stack = append(s.stack, ch)
		}
		s.recycle(nd)
	}
	// Abandoned stack entries (safety valve) go back to the pool.
	for _, nd := range s.stack {
		s.recycle(nd)
	}
	s.stack = s.stack[:0]
	best.Nodes = nodes
	best.Capped = capped
	if !best.Feasible {
		best.Objective = 0
	}
	return best, nil
}

// resetRelaxation assembles the shared LP relaxation matrix for p: the m
// problem rows (aliased) followed by one unit row per variable upper bound.
// Only the right-hand side changes from node to node.
func (s *Solver) resetRelaxation(p Problem) {
	n, m := len(p.C), len(p.A)
	if cap(s.rows) < m+n {
		s.rows = make([][]float64, m+n)
	}
	s.rows = s.rows[:m+n]
	copy(s.rows, p.A)
	if cap(s.boundSlab) < n*n {
		s.boundSlab = make([]float64, n*n)
	}
	slab := s.boundSlab[:n*n]
	for i := range slab {
		slab[i] = 0
	}
	for j := 0; j < n; j++ {
		row := slab[j*n : (j+1)*n]
		row[j] = 1
		s.rows[m+j] = row
	}
	if cap(s.rhs) < m+n {
		s.rhs = make([]float64, m+n)
	}
	s.rhs = s.rhs[:m+n]
	if cap(s.xf) < n {
		s.xf = make([]float64, n)
	}
	s.xf = s.xf[:n]
	if cap(s.xi) < n {
		s.xi = make([]int, n)
	}
	s.xi = s.xi[:n]
}

// seedIncumbent raises s.bestX (starting from the all-zero assignment, which
// the caller has verified is feasible) by deterministic greedy ascent: grant
// one unit at a time to the highest-utility variable whose increment keeps
// the assignment feasible, first such variable on ties. The result is a
// feasible incumbent whose objective lower-bounds the optimum, so the search
// prunes from the first node instead of rediscovering a bound in the tree.
func (s *Solver) seedIncumbent(p Problem) {
	n := len(p.C)
	for {
		bestJ := -1
		bestC := 0.0
		for j := 0; j < n; j++ {
			if p.C[j] <= 0 || s.bestX[j] >= p.Upper[j] || (bestJ >= 0 && p.C[j] <= bestC) {
				continue
			}
			s.bestX[j]++
			if p.feasible(s.bestX) {
				bestJ = j
				bestC = p.C[j]
			}
			s.bestX[j]--
		}
		if bestJ < 0 {
			return
		}
		s.bestX[bestJ]++
	}
}
