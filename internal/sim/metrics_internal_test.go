package sim

import (
	"context"
	"math"
	"strings"
	"testing"
)

// The Metrics accessors divide by observation counts; these tests pin the
// zero-observation paths (empty replications, zero admitted bursts, empty
// delay sample) to well-defined zeros instead of NaN/Inf, because the
// report tables and the sweep CSVs print them verbatim.

func TestMetricsAccessorsOnZeroValue(t *testing.T) {
	m := &Metrics{}
	for name, got := range map[string]float64{
		"MeanBurstDelay":    m.MeanBurstDelay(),
		"P90BurstDelay":     m.P90BurstDelay(),
		"ThroughputPerCell": m.ThroughputPerCell(),
		"CompletionRatio":   m.CompletionRatio(),
		"Coverage":          m.Coverage(),
	} {
		if got != 0 {
			t.Errorf("%s on the zero Metrics = %v, want 0", name, got)
		}
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%s on the zero Metrics is not finite: %v", name, got)
		}
	}
	if s := m.String(); strings.Contains(s, "NaN") || strings.Contains(s, "Inf") {
		t.Errorf("zero Metrics prints non-finite values: %s", s)
	}
}

func TestMetricsZeroCompletions(t *testing.T) {
	// Bursts were generated but none admitted or completed: ratios stay 0,
	// they do not blow up.
	m := &Metrics{BurstsGenerated: 12, Cells: 7, ObservedTime: 30}
	if got := m.CompletionRatio(); got != 0 {
		t.Errorf("CompletionRatio = %v, want 0", got)
	}
	if got := m.Coverage(); got != 0 {
		t.Errorf("Coverage with zero completed = %v, want 0", got)
	}
	if got := m.ThroughputPerCell(); got != 0 {
		t.Errorf("ThroughputPerCell with zero bits = %v, want 0", got)
	}
	if got := m.P90BurstDelay(); got != 0 {
		t.Errorf("P90BurstDelay on the empty histogram = %v, want 0", got)
	}
}

func TestMetricsThroughputGuards(t *testing.T) {
	// Zero observed time and zero cells each individually guard the division.
	m := &Metrics{BitsDelivered: 1e6, ObservedTime: 0, Cells: 7}
	if got := m.ThroughputPerCell(); got != 0 {
		t.Errorf("zero ObservedTime: ThroughputPerCell = %v, want 0", got)
	}
	m = &Metrics{BitsDelivered: 1e6, ObservedTime: 10, Cells: 0}
	if got := m.ThroughputPerCell(); got != 0 {
		t.Errorf("zero Cells: ThroughputPerCell = %v, want 0", got)
	}
}

func TestAggregateZeroReplications(t *testing.T) {
	a := &Aggregate{}
	if a.Replications != 0 {
		t.Fatal("zero value should have no replications")
	}
	for name, got := range map[string]float64{
		"MeanDelay": a.MeanDelay.Mean(),
		"CI95":      a.MeanDelay.ConfidenceInterval95(),
		"Coverage":  a.Coverage.Mean(),
	} {
		if got != 0 || math.IsNaN(got) {
			t.Errorf("%s on the empty Aggregate = %v, want 0", name, got)
		}
	}
	if s := a.String(); strings.Contains(s, "NaN") {
		t.Errorf("empty Aggregate prints NaN: %s", s)
	}
}

func TestAggregateFoldsZeroActivityReplication(t *testing.T) {
	// A replication with no admitted bursts at all (e.g. zero data users)
	// must fold into the aggregate without poisoning the means.
	a := &Aggregate{}
	a.AddReplication(&Metrics{Scheduler: "JABA-SD", Direction: "forward", Cells: 7})
	busy := &Metrics{Scheduler: "JABA-SD", Direction: "forward", Cells: 7,
		BurstsGenerated: 10, BurstsCompleted: 5, CoveredBursts: 5,
		BitsDelivered: 1e6, ObservedTime: 10}
	busy.BurstDelay.Add(1.5)
	a.AddReplication(busy)
	if a.Replications != 2 {
		t.Fatalf("Replications = %d, want 2", a.Replications)
	}
	if got := a.CompletionRate.Mean(); got != 0.25 {
		t.Errorf("CompletionRate mean = %v, want 0.25 (0 and 0.5 averaged)", got)
	}
	if got := a.MeanDelay.Mean(); math.IsNaN(got) {
		t.Error("MeanDelay poisoned by the idle replication")
	}
}

func TestRunZeroDataUsers(t *testing.T) {
	// End to end: a scenario that never generates a burst request exercises
	// every zero path inside a real replication.
	cfg := DefaultConfig()
	cfg.Rings = 1
	cfg.SimTime = 2
	cfg.WarmupTime = 0.5
	cfg.DataUsersPerCell = 0
	cfg.VoiceUsersPerCell = 2
	m, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.BurstsGenerated != 0 || m.BurstsCompleted != 0 {
		t.Fatalf("zero data users generated traffic: %+v", m)
	}
	for name, got := range map[string]float64{
		"CompletionRatio": m.CompletionRatio(),
		"Coverage":        m.Coverage(),
		"P90BurstDelay":   m.P90BurstDelay(),
	} {
		if got != 0 || math.IsNaN(got) {
			t.Errorf("%s = %v, want 0", name, got)
		}
	}
	if s := m.String(); strings.Contains(s, "NaN") {
		t.Errorf("metrics print NaN: %s", s)
	}
}
