package sim

// Versioned checkpoint/resume of the full engine state. A checkpoint is
// taken at a frame boundary (after step() returns) and records everything
// the next frame reads that is not a pure function of the configuration:
// the master and per-entity draw streams, the SoA channel state, each data
// user's measurement snapshot (paused users carry it across frames), the
// MAC machines, the traffic sources, the queue contents, the ongoing bursts
// and the accumulated metrics. Everything else — distance rows, the load
// ledger, the incremental region caches, the Jakes fading table, solver
// warm state — is per-frame scratch or static after seeding, rebuilt
// deterministically by NewEngine + the next step().
//
// Resume rebuilds the engine from the stored configuration (populate
// consumes exactly the draws it consumed originally, recreating every
// substream and alias) and then overwrites the mutable state in place, so
// slices handed out by the batches (gain rows, window slot maps) keep
// aliasing the restored storage. A run continued from a checkpoint at frame
// k is byte-identical to the uninterrupted run from frame k on — metrics
// and trace included — which TestCheckpointResumeByteIdentical gates.
//
// The stored configuration is authoritative for everything semantic; the
// caller may only change the non-semantic execution knobs (FrameParallel,
// Tiles, TraceEvery, CheckpointEvery and the sinks) before resuming. A
// semantic hash in the header refuses mismatched resumes with a precise
// error instead of silently diverging.

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"jabasd/internal/cellular"
	"jabasd/internal/checkpoint"
	"jabasd/internal/core"
	"jabasd/internal/mobility"
	"jabasd/internal/traffic"
)

// semanticConfigHash hashes the scenario-defining part of the
// configuration: the execution knobs that provably never change results
// (worker counts, tiling, telemetry and checkpoint cadence — the engine's
// determinism tests lock that in) are zeroed first, and the fields with an
// empty-means-default encoding are normalised so "" and the spelled-out
// default hash identically.
func semanticConfigHash(cfg Config) ([sha256.Size]byte, error) {
	cfg.FrameParallel = 0
	cfg.Tiles = 0
	cfg.TraceEvery = 0
	cfg.CheckpointEvery = 0
	cfg.Trace = nil
	cfg.CheckpointSink = nil
	cfg.FrameMode = cfg.FrameMode.normalize()
	if cfg.Scheduler == "" {
		cfg.Scheduler = SchedulerJABASD
	}
	b, err := json.Marshal(cfg)
	if err != nil {
		return [sha256.Size]byte{}, fmt.Errorf("sim: hashing config: %w", err)
	}
	return sha256.Sum256(b), nil
}

// Checkpoint serialises the engine's complete state to w in the versioned
// container format of internal/checkpoint. It must be called at a frame
// boundary — between Run frames via Config.CheckpointSink, or after Run
// returns — never from inside a frame.
func (e *Engine) Checkpoint(w io.Writer) error {
	hash, err := semanticConfigHash(e.cfg)
	if err != nil {
		return err
	}
	cfgJSON, err := json.Marshal(e.cfg)
	if err != nil {
		return fmt.Errorf("sim: marshaling config: %w", err)
	}
	cw := checkpoint.NewWriter(w)

	cw.Section("config")
	cw.Bytes(cfgJSON)
	cw.Bytes(hash[:])

	cw.Section("engine")
	cw.Int(e.frame)
	cw.F64(e.now)
	cw.Bool(e.loadStepDone)
	// Fault runtime: only the load-event cursor is stored — the down/derate
	// state is a pure function of simulated time, reconstructed on resume —
	// plus the pending-retry marks feeding Metrics.SolveRetries.
	if e.fault != nil {
		cw.Int(e.fault.LoadCursor())
	} else {
		cw.Int(0)
	}
	for _, p := range e.retryPend {
		cw.Bool(p)
	}
	e.src.EncodeState(cw)
	cw.Int(len(e.users))
	cw.Int(len(e.voice))
	cw.Int(e.layout.NumCells())
	if e.winB != nil {
		cw.Int(e.winB.Width())
	} else {
		cw.Int(0)
	}

	// Scheduler stream state: only the sequential-mode Random scheduler
	// carries a semantic stream across frames (snapshot/tiled workers reseed
	// per (frame, cell) via core.CellSeeder, so their clones hold none).
	cw.Section("sched")
	if r, ok := e.scheduler.(*core.Random); ok && e.cfg.FrameMode.normalize() == FrameSequential {
		cw.Bool(true)
		r.Src.EncodeState(cw)
	} else {
		cw.Bool(false)
	}

	cw.Section("mobility")
	e.mobB.EncodeState(cw)

	cw.Section("channel")
	if e.winB != nil {
		e.winB.EncodeState(cw)
	} else {
		e.chanB.EncodeState(cw)
	}

	cw.Section("users")
	for _, u := range e.users {
		cw.Int(len(u.pilots))
		for _, pm := range u.pilots {
			cw.Int(pm.Cell)
			cw.F64(pm.EcIo)
			cw.F64(pm.EcIoDB)
			cw.F64(pm.GainDB)
		}
		cw.Ints(u.active)
		cw.Ints(u.reduced)
		cw.Ints(u.prevReduced)
		cw.Int(u.hostCell)
		cw.U64(u.ver)
		cw.Int(u.bucket)
		cw.F64(u.geometry)
		cw.F64(u.meanCSIdB)
		u.fchPower.EncodeState(cw)
		u.revFCHRx.EncodeState(cw)
		cw.Int(u.queuedCell)
		cw.Bool(u.firstGrant)
		u.macM.EncodeState(cw)
		u.source.EncodeState(cw)
	}

	cw.Section("voice")
	for _, v := range e.voice {
		v.model.EncodeState(cw)
		rw, ok := v.mob.(*mobility.RandomWaypoint)
		if !ok {
			return fmt.Errorf("sim: voice mobility model %T is not checkpointable", v.mob)
		}
		rw.EncodeState(cw)
		cw.Int(v.cell)
	}

	// Queue entries are stored by value; resume re-links each to its user's
	// restored pending request, recreating the pointer sharing gatherCell's
	// staleness test depends on.
	cw.Section("queues")
	for _, q := range e.queues {
		items := q.Items()
		cw.Int(len(items))
		for _, it := range items {
			cw.Int(it.UserID)
			cw.F64(it.SizeBits)
			cw.F64(it.ArrivalTime)
			cw.F64(it.Priority)
		}
	}

	cw.Section("bursts")
	cw.Int(len(e.bursts))
	for _, b := range e.bursts {
		cw.Int(b.user.id)
		cw.Int(b.ratio)
		cw.F64(b.remaining)
		cw.F64(b.setupRemaining)
		cw.F64(b.servedBits)
		cw.F64(b.serviceTime)
		cw.F64(b.grantedAt)
		b.load.EncodeState(cw)
	}

	cw.Section("metrics")
	m := e.metrics
	m.BurstDelay.EncodeState(cw)
	m.AdmissionWait.EncodeState(cw)
	m.ServedRate.EncodeState(cw)
	m.CellLoad.EncodeState(cw)
	m.QueueLength.EncodeState(cw)
	m.AssignedRatio.EncodeState(cw)
	cw.I64(m.BurstsGenerated)
	cw.I64(m.BurstsCompleted)
	cw.I64(m.BurstsExpired)
	cw.I64(m.SkippedCells)
	cw.I64(m.SolveRetries)
	cw.I64(m.FallbackSolves)
	cw.I64(m.SpilloverHandoffs)
	cw.I64(m.OutageCellFrames)
	cw.I64(m.CoveredBursts)
	cw.F64(m.BitsDelivered)
	cw.F64(m.ObservedTime)

	return cw.Close()
}

// Checkpoint is a checkpoint opened for resuming: the configuration has
// been decoded and verified, the state sections are still pending. The
// two-phase API lets the caller adjust the non-semantic execution knobs
// (attach a trace sink, change the worker count) before Resume rebuilds
// the engine.
type Checkpoint struct {
	cfg  Config
	hash [sha256.Size]byte
	rd   *checkpoint.Reader
	used bool
}

// ReadCheckpoint opens a checkpoint stream and decodes its configuration.
// The reader must deliver the bytes Engine.Checkpoint wrote; they are
// consumed incrementally, so r should stay readable until Resume returns.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	rd, err := checkpoint.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("sim: opening checkpoint: %w", err)
	}
	if err := rd.Section("config"); err != nil {
		return nil, fmt.Errorf("sim: reading checkpoint config: %w", err)
	}
	cfgJSON := rd.Bytes()
	storedHash := rd.Bytes()
	if err := rd.Err(); err != nil {
		return nil, fmt.Errorf("sim: reading checkpoint config: %w", err)
	}
	c := &Checkpoint{rd: rd}
	if err := json.Unmarshal(cfgJSON, &c.cfg); err != nil {
		return nil, fmt.Errorf("sim: checkpoint config does not parse: %w", err)
	}
	if len(storedHash) != sha256.Size {
		return nil, fmt.Errorf("sim: checkpoint config hash is %d bytes, want %d", len(storedHash), sha256.Size)
	}
	copy(c.hash[:], storedHash)
	// The stored hash must match the stored config: a mismatch means the
	// checkpoint was produced by a build whose semantic-field set differs
	// from ours (or the file was tampered with), and resuming would not be
	// byte-faithful either way.
	want, err := semanticConfigHash(c.cfg)
	if err != nil {
		return nil, err
	}
	if want != c.hash {
		return nil, fmt.Errorf("sim: checkpoint config hash mismatch: the checkpoint was written by an incompatible build (semantic config fields differ)")
	}
	return c, nil
}

// ReadCheckpointFile opens a checkpoint file. The whole file is read into
// memory, so the file may be replaced while the resume is in flight.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sim: reading checkpoint: %w", err)
	}
	return ReadCheckpoint(bytes.NewReader(b))
}

// Config returns the configuration the checkpointed run was using. Callers
// typically take it, adjust the non-semantic execution knobs and pass it to
// Resume.
func (c *Checkpoint) Config() Config { return c.cfg }

// Compatible reports whether cfg could resume this checkpoint: it must be
// semantically identical to the stored configuration. It does not consume
// the checkpoint, so callers can validate a resume before committing to it.
func (c *Checkpoint) Compatible(cfg Config) error {
	got, err := semanticConfigHash(cfg)
	if err != nil {
		return err
	}
	if got != c.hash {
		return fmt.Errorf("sim: resume config differs from the checkpoint's scenario (only FrameParallel, Tiles, TraceEvery, CheckpointEvery and the sinks may change across a resume)")
	}
	return nil
}

// Resume rebuilds an engine from the checkpoint under cfg and restores the
// saved state into it. cfg must be semantically identical to the stored
// configuration — only FrameParallel, Tiles, TraceEvery, CheckpointEvery
// and the sinks may differ — otherwise Resume refuses with an error naming
// the mismatch. Resume consumes the checkpoint; it can be called once.
func (c *Checkpoint) Resume(cfg Config) (*Engine, error) {
	if c.used {
		return nil, fmt.Errorf("sim: checkpoint already resumed")
	}
	c.used = true
	if err := c.Compatible(cfg); err != nil {
		return nil, err
	}
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	if err := e.decodeState(c.rd); err != nil {
		e.Close()
		return nil, err
	}
	return e, nil
}

// decodeState restores every state section into the freshly built engine.
// All decoding goes through the sticky reader; structural damage surfaces
// as an error here, never as a silently diverging engine.
func (e *Engine) decodeState(rd *checkpoint.Reader) error {
	frames := int(math.Ceil(e.cfg.SimTime / e.cfg.FrameLength))

	if err := rd.Section("engine"); err != nil {
		return fmt.Errorf("sim: resuming: %w", err)
	}
	frame := rd.Int()
	now := rd.F64()
	loadStepDone := rd.Bool()
	faultLoadIdx := rd.Int()
	for k := range e.retryPend {
		e.retryPend[k] = rd.Bool()
	}
	e.src.DecodeState(rd)
	nUsers, nVoice, nCells, width := rd.Int(), rd.Int(), rd.Int(), rd.Int()
	if err := rd.Err(); err != nil {
		return fmt.Errorf("sim: resuming: %w", err)
	}
	if frame < 0 || frame > frames {
		return fmt.Errorf("sim: checkpoint frame %d outside the scenario's 0..%d", frame, frames)
	}
	if e.fault != nil {
		// Rebuild the down/derate state as of the checkpointed run's last
		// applyFaults: the mask is a pure function of simulated time, so
		// advancing to the last completed frame's time reproduces it — and
		// with it the next frame's mask-change flag — exactly. The load
		// cursor is the one piece of fault state that is not (each event
		// fires once), hence the stored index.
		if frame > 0 {
			e.fault.Advance(float64(frame-1) * e.cfg.FrameLength)
		}
		if err := e.fault.SetLoadCursor(faultLoadIdx); err != nil {
			return fmt.Errorf("sim: resuming: %w", err)
		}
	}
	wantWidth := 0
	if e.winB != nil {
		wantWidth = e.winB.Width()
	}
	if nUsers != len(e.users) || nVoice != len(e.voice) || nCells != e.layout.NumCells() || width != wantWidth {
		return fmt.Errorf("sim: checkpoint population (%d users, %d voice, %d cells, window %d) does not match the scenario (%d, %d, %d, %d)",
			nUsers, nVoice, nCells, width, len(e.users), len(e.voice), e.layout.NumCells(), wantWidth)
	}
	e.frame = frame
	e.now = now
	e.loadStepDone = loadStepDone

	if err := rd.Section("sched"); err != nil {
		return fmt.Errorf("sim: resuming: %w", err)
	}
	if rd.Bool() {
		r, ok := e.scheduler.(*core.Random)
		if !ok {
			return fmt.Errorf("sim: checkpoint carries random-scheduler state but the scenario's scheduler is %s", e.scheduler.Name())
		}
		r.Src.DecodeState(rd)
	}

	if err := rd.Section("mobility"); err != nil {
		return fmt.Errorf("sim: resuming: %w", err)
	}
	e.mobB.DecodeState(rd)

	if err := rd.Section("channel"); err != nil {
		return fmt.Errorf("sim: resuming: %w", err)
	}
	if e.winB != nil {
		e.winB.DecodeState(rd) // in place: u.gain and u.cand keep aliasing
	} else {
		e.chanB.DecodeState(rd)
	}

	if err := rd.Section("users"); err != nil {
		return fmt.Errorf("sim: resuming: %w", err)
	}
	for _, u := range e.users {
		np := rd.Int()
		if np < 0 || np > nCells {
			rd.Fail("user %d has %d pilots, cells %d", u.id, np, nCells)
			break
		}
		u.pilots = u.pilots[:0]
		for i := 0; i < np; i++ {
			// Keyed composite-literal operands evaluate in lexical order, so
			// the four reads land in the fields they were written from.
			u.pilots = append(u.pilots, cellular.PilotMeasurement{
				Cell:   rd.Int(),
				EcIo:   rd.F64(),
				EcIoDB: rd.F64(),
				GainDB: rd.F64(),
			})
		}
		u.active = append(u.active[:0], rd.Ints()...)
		u.reduced = append(u.reduced[:0], rd.Ints()...)
		u.prevReduced = append(u.prevReduced[:0], rd.Ints()...)
		u.hostCell = rd.Int()
		u.ver = rd.U64()
		u.bucket = rd.Int()
		u.geometry = rd.F64()
		u.meanCSIdB = rd.F64()
		u.fchPower.DecodeState(rd)
		u.revFCHRx.DecodeState(rd)
		u.queuedCell = rd.Int()
		u.firstGrant = rd.Bool()
		u.macM.DecodeState(rd)
		u.source.DecodeState(rd)
		u.queuedReq = u.source.Pending()
		if rd.Err() != nil {
			break
		}
	}

	if err := rd.Section("voice"); err != nil {
		return fmt.Errorf("sim: resuming: %w", err)
	}
	for _, v := range e.voice {
		v.model.DecodeState(rd)
		rw, ok := v.mob.(*mobility.RandomWaypoint)
		if !ok {
			return fmt.Errorf("sim: voice mobility model %T is not checkpointable", v.mob)
		}
		rw.DecodeState(rd)
		cell := rd.Int()
		if cell < -1 || cell >= nCells {
			rd.Fail("voice user cell %d out of range", cell)
			break
		}
		v.cell = cell
	}

	if err := rd.Section("queues"); err != nil {
		return fmt.Errorf("sim: resuming: %w", err)
	}
	linked := make([]bool, len(e.users))
	for _, q := range e.queues {
		n := rd.Int()
		if n < 0 || n > len(e.users) {
			rd.Fail("queue holds %d entries, users %d", n, len(e.users))
			break
		}
		for i := 0; i < n; i++ {
			uid := rd.Int()
			size, arr, prio := rd.F64(), rd.F64(), rd.F64()
			if rd.Err() != nil {
				break
			}
			// Re-link the entry to the user's restored pending request when
			// it IS that request; anything else was a stale entry in the
			// original queue and is recreated as one (a fresh pointer, which
			// gatherCell drops exactly like the original).
			if u := e.userByID(uid); u != nil && u.queuedReq != nil && !linked[u.id] &&
				u.queuedReq.SizeBits == size && u.queuedReq.ArrivalTime == arr && u.queuedReq.Priority == prio {
				linked[u.id] = true
				q.Push(u.queuedReq)
				continue
			}
			q.Push(&traffic.BurstRequest{UserID: uid, SizeBits: size, ArrivalTime: arr, Priority: prio})
		}
	}

	if err := rd.Section("bursts"); err != nil {
		return fmt.Errorf("sim: resuming: %w", err)
	}
	nb := rd.Int()
	if nb < 0 || nb > len(e.users) {
		rd.Fail("%d ongoing bursts, users %d", nb, len(e.users))
	}
	for i := 0; i < nb && rd.Err() == nil; i++ {
		uid := rd.Int()
		u := e.userByID(uid)
		if u == nil {
			rd.Fail("burst %d names unknown user %d", i, uid)
			break
		}
		b := &burst{
			user:           u,
			ratio:          rd.Int(),
			remaining:      rd.F64(),
			setupRemaining: rd.F64(),
			servedBits:     rd.F64(),
			serviceTime:    rd.F64(),
			grantedAt:      rd.F64(),
		}
		b.load.DecodeState(rd)
		e.bursts = append(e.bursts, b)
	}

	if err := rd.Section("metrics"); err != nil {
		return fmt.Errorf("sim: resuming: %w", err)
	}
	m := e.metrics
	m.BurstDelay.DecodeState(rd)
	m.AdmissionWait.DecodeState(rd)
	m.ServedRate.DecodeState(rd)
	m.CellLoad.DecodeState(rd)
	m.QueueLength.DecodeState(rd)
	m.AssignedRatio.DecodeState(rd)
	m.BurstsGenerated = rd.I64()
	m.BurstsCompleted = rd.I64()
	m.BurstsExpired = rd.I64()
	m.SkippedCells = rd.I64()
	m.SolveRetries = rd.I64()
	m.FallbackSolves = rd.I64()
	m.SpilloverHandoffs = rd.I64()
	m.OutageCellFrames = rd.I64()
	m.CoveredBursts = rd.I64()
	m.BitsDelivered = rd.F64()
	m.ObservedTime = rd.F64()

	if err := rd.Close(); err != nil {
		return fmt.Errorf("sim: resuming: %w", err)
	}
	return nil
}

// Frame returns the next frame the engine will run — for a fresh engine 0,
// for a resumed one the checkpoint's frame.
func (e *Engine) Frame() int { return e.frame }

// FileCheckpointSink returns a CheckpointSink that (re)writes path on every
// checkpoint, atomically: the state is serialised to path.tmp and renamed
// over path, so a crash mid-write never leaves a truncated checkpoint
// behind.
func FileCheckpointSink(path string) func(frame int, write func(io.Writer) error) error {
	return func(frame int, write func(io.Writer) error) error {
		tmp := path + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if err := f.Close(); err != nil {
			os.Remove(tmp)
			return err
		}
		return os.Rename(tmp, path)
	}
}
