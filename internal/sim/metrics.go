package sim

import (
	"fmt"

	"jabasd/internal/stats"
)

// Metrics is the result of one simulation replication.
type Metrics struct {
	Scheduler string
	Direction string

	// Burst/packet delay: time from the burst request arriving at the MAC to
	// the last bit being delivered (queueing + MAC set-up + transmission).
	BurstDelay stats.Sample
	// AdmissionWait: time from arrival to the first non-zero grant.
	AdmissionWait stats.Sample

	// Served rate of completed bursts (bits/s averaged over their service).
	ServedRate stats.Running

	// Per-frame cell loading as a fraction of the budget (power for forward,
	// interference headroom for reverse).
	CellLoad stats.Running
	// Queue length across cells, time-averaged.
	QueueLength stats.TimeWeighted

	// Assigned spreading ratios of granted bursts.
	AssignedRatio stats.Running

	BurstsGenerated int64
	BurstsCompleted int64
	BurstsExpired   int64 // requests dropped because the user left coverage entirely (rare)

	// SkippedCells counts cell-frames whose admission was abandoned because
	// the measurement sub-layer could not build the admissible region or the
	// scheduler failed. A healthy scenario keeps this at zero (warm-up
	// included); a persistently non-zero count means the configuration is
	// feeding the admission layer inconsistent measurements.
	SkippedCells int64
	// SolveRetries counts cell-frames that recovered after a skip: the queue
	// keeps a skipped cell's requests, the cell is re-solved the next frame
	// it gathers any, and the first success clears the pending-retry mark.
	// SkippedCells - SolveRetries therefore bounds the still-unrecovered
	// skips at the end of the run.
	SolveRetries int64
	// FallbackSolves counts cell-frames where the exact JABA-SD solve hit
	// its node budget (Config.SolveNodeBudget) and the grants came from the
	// deterministic greedy fallback instead. Zero when no budget is set.
	FallbackSolves int64
	// SpilloverHandoffs counts burst requests migrated from an
	// out-of-service cell's queue to their owner's surviving host cell
	// (fault schedules only; warm-up included, like the trace).
	SpilloverHandoffs int64
	// OutageCellFrames counts (cell, frame) pairs spent out of service under
	// the fault schedule — the denominator for spillover and degradation
	// rates. Zero without a schedule.
	OutageCellFrames int64

	// CoveredBursts counts completed bursts whose average served rate met the
	// coverage threshold; coverage = CoveredBursts / BurstsCompleted.
	CoveredBursts int64

	// Total data bits delivered after warm-up.
	BitsDelivered float64
	// Observation time after warm-up (seconds).
	ObservedTime float64
	// Number of cells, for per-cell normalisation.
	Cells int
}

// MeanBurstDelay returns the mean burst delay in seconds.
func (m *Metrics) MeanBurstDelay() float64 { return m.BurstDelay.Mean() }

// P90BurstDelay returns the 90th percentile burst delay in seconds.
func (m *Metrics) P90BurstDelay() float64 { return m.BurstDelay.Quantile(0.9) }

// ThroughputPerCell returns the delivered data throughput per cell in bit/s.
func (m *Metrics) ThroughputPerCell() float64 {
	if m.ObservedTime <= 0 || m.Cells == 0 {
		return 0
	}
	return m.BitsDelivered / m.ObservedTime / float64(m.Cells)
}

// CompletionRatio returns completed/generated bursts.
func (m *Metrics) CompletionRatio() float64 {
	if m.BurstsGenerated == 0 {
		return 0
	}
	return float64(m.BurstsCompleted) / float64(m.BurstsGenerated)
}

// Coverage returns the fraction of completed bursts that met the coverage
// rate threshold (the paper's coverage metric: where in the cell a user can
// actually get high-speed service).
func (m *Metrics) Coverage() float64 {
	if m.BurstsCompleted == 0 {
		return 0
	}
	return float64(m.CoveredBursts) / float64(m.BurstsCompleted)
}

// String summarises the replication.
func (m *Metrics) String() string {
	return fmt.Sprintf("%s/%s: delay=%.3fs p90=%.3fs tput/cell=%.0f bit/s load=%.2f cov=%.2f done=%d/%d",
		m.Scheduler, m.Direction, m.MeanBurstDelay(), m.P90BurstDelay(),
		m.ThroughputPerCell(), m.CellLoad.Mean(), m.Coverage(),
		m.BurstsCompleted, m.BurstsGenerated)
}

// Aggregate merges the metrics of several independent replications.
type Aggregate struct {
	Scheduler string
	Direction string

	MeanDelay      stats.Running // one observation per replication
	P90Delay       stats.Running
	Throughput     stats.Running
	Coverage       stats.Running
	CellLoad       stats.Running
	AdmissionWait  stats.Running
	AssignedRatio  stats.Running
	CompletionRate stats.Running
	// SkippedCells is the per-replication count of abandoned cell-frames
	// (see Metrics.SkippedCells); any non-zero mean deserves a look.
	SkippedCells stats.Running
	// FallbackSolves and SpilloverHandoffs mirror their Metrics counters per
	// replication: budget-capped solves degraded to greedy, and requests
	// migrated off out-of-service cells.
	FallbackSolves    stats.Running
	SpilloverHandoffs stats.Running
	Replications      int
}

// AddReplication folds one replication's metrics into the aggregate.
func (a *Aggregate) AddReplication(m *Metrics) {
	if a.Scheduler == "" {
		a.Scheduler = m.Scheduler
		a.Direction = m.Direction
	}
	a.MeanDelay.Add(m.MeanBurstDelay())
	a.P90Delay.Add(m.P90BurstDelay())
	a.Throughput.Add(m.ThroughputPerCell())
	a.Coverage.Add(m.Coverage())
	a.CellLoad.Add(m.CellLoad.Mean())
	a.AdmissionWait.Add(m.AdmissionWait.Mean())
	a.AssignedRatio.Add(m.AssignedRatio.Mean())
	a.CompletionRate.Add(m.CompletionRatio())
	a.SkippedCells.Add(float64(m.SkippedCells))
	a.FallbackSolves.Add(float64(m.FallbackSolves))
	a.SpilloverHandoffs.Add(float64(m.SpilloverHandoffs))
	a.Replications++
}

// String summarises the aggregate with 95% confidence half-widths.
func (a *Aggregate) String() string {
	return fmt.Sprintf("%s/%s (%d reps): delay=%.3f±%.3fs p90=%.3fs tput/cell=%.0f bit/s cov=%.2f load=%.2f",
		a.Scheduler, a.Direction, a.Replications,
		a.MeanDelay.Mean(), a.MeanDelay.ConfidenceInterval95(),
		a.P90Delay.Mean(), a.Throughput.Mean(), a.Coverage.Mean(), a.CellLoad.Mean())
}
