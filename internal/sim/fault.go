package sim

// Fault injection (Config.Faults != nil): cell outages, transmit-power
// derating and offered-load curves evaluated per frame from the piecewise
// schedule in internal/fault. The engine consumes the schedule through a
// handful of hooks, all on its sequential sections or on read-only state,
// so every determinism guarantee survives:
//
//   - applyFaults (start of step) advances the fault state to the frame's
//     time, drains due load events into the traffic sources, and counts
//     outage cell-frames. The down mask and derate vector are immutable for
//     the rest of the frame, so the parallel update/solve phases read them
//     freely.
//   - Out-of-service cells are excluded from the pilot search (every update
//     path filters its freshly built pilot set through filterDownPilots),
//     so users re-pilot to the surviving SCRM neighbours and their FCH load
//     and new burst requests spill onto those cells. If every measurable
//     cell is down the user keeps its stale set — a coverage hole; its cell
//     issues no grants until recovery.
//   - Paused users (the zero-travel shortcuts) re-derive their pilot sets
//     from their unchanged gains on frames where the down mask changed —
//     the channel state and every RNG stream are left exactly as the
//     shortcut leaves them, so a no-fault schedule stays bit-identical.
//   - migrateQueued (sequential, before traffic generation) moves burst
//     requests still queued at a down cell to the owner's re-piloted host
//     cell, counting each move as a spillover hand-off.
//   - Admission skips down cells entirely (no grants, no solves); degraded
//     cells solve against a derated forward power budget.
//
// Interference sums deliberately still include down cells' nominal
// transmit activity, and in-flight bursts granted before an outage run to
// completion (macro-diversity continuation): both keep the fault hooks out
// of the hot physics kernels and make a schedule with no active events
// byte-identical to no schedule at all.

import (
	"jabasd/internal/cellular"
	"jabasd/internal/fault"
)

// applyFaults advances the fault schedule to the frame's time: recomputes
// the down/derate state, flags whether the down mask changed (paused users
// and voice re-pilot on those frames), applies due load events to every
// traffic source, and counts outage cell-frames. Runs first in step so the
// whole frame sees one consistent mask.
func (e *Engine) applyFaults() {
	if e.fault == nil {
		return
	}
	e.faultDirty = e.fault.Advance(e.now)
	e.anyDown = e.fault.AnyDown()
	if e.anyDown {
		for _, down := range e.fault.Down {
			if down {
				e.metrics.OutageCellFrames++
			}
		}
	}
	for {
		ev, ok := e.fault.NextLoad(e.now)
		if !ok {
			break
		}
		for _, u := range e.users {
			u.source.SetMeanReadingTime(ev.ReadingTimeSec)
		}
	}
}

// cellDown reports whether cell k is out of service this frame.
func (e *Engine) cellDown(k int) bool {
	return e.fault != nil && e.fault.Down[k]
}

// filterDownPilots drops out-of-service cells from a freshly built pilot
// set, in place and order-preserving, before the active set is formed. When
// the filter would empty the set the original is kept: the user is in a
// coverage hole and stays camped on the dead cell, which issues no grants.
func (e *Engine) filterDownPilots(u *dataUser) {
	if e.fault == nil || !e.anyDown {
		return
	}
	down := e.fault.Down
	kept := u.pilots[:0]
	for _, pm := range u.pilots {
		if !down[pm.Cell] {
			kept = append(kept, pm)
		}
	}
	if len(kept) == 0 {
		return
	}
	u.pilots = kept
}

// refreshPausedUser re-derives a paused user's pilot, active and reduced
// sets from its unchanged gains on a frame where the down mask changed.
// Only the measurement chain runs — the mobility, fading and channel
// streams have already been advanced (or skipped) exactly as the paused
// shortcut does — so the RNG state is untouched and a fault-free run
// cannot diverge. The fast paths also re-run the version bump so the
// region cache sees the reduced-set change.
func (e *Engine) refreshPausedUser(u *dataUser) {
	if e.winB != nil {
		e.refreshPilotsWin(u)
	} else {
		e.refreshPilots(u)
	}
	if !e.cfg.ExactPHY {
		if !intSlicesEqual(u.reduced, u.prevReduced) {
			u.ver++
		}
		u.prevReduced = append(u.prevReduced[:0], u.reduced...)
	}
}

// refreshPilots is the full-scan measurement chain of updateUserExact /
// updateUserFast without the mobility and channel advance, for paused users
// on mask-change frames.
func (e *Engine) refreshPilots(u *dataUser) {
	if e.cfg.ExactPHY {
		u.pilots = cellular.PilotSetInto(u.pilots, u.gain, e.cfg.PilotFraction, e.cfg.MaxCellPowerW, e.cfg.NoiseW)
		e.filterDownPilots(u)
		u.active = cellular.ActiveSetInto(u.active, u.pilots, e.cfg.SoftHandoffAddDB, e.cfg.PilotMinEcIoDB, 3)
	} else {
		u.pilots = cellular.PilotSetLinearInto(u.pilots, u.gain, e.cfg.PilotFraction, e.cfg.MaxCellPowerW, e.cfg.NoiseW)
		e.filterDownPilots(u)
		u.active = cellular.ActiveSetLinearInto(u.active, u.pilots, e.addFactor, e.minEcIo, 3)
	}
	e.finishMeasurements(u)
}

// refreshPilotsWin is refreshPilots over the candidate window. The user is
// paused, so its bucket — and with it the window — cannot have moved; the
// slot-mapped gains are read as they stand.
func (e *Engine) refreshPilotsWin(u *dataUser) {
	if e.cfg.ExactPHY {
		u.pilots = cellular.PilotSetCellsInto(u.pilots, u.cand, u.gain, e.cfg.PilotFraction, e.cfg.MaxCellPowerW, e.cfg.NoiseW)
		e.filterDownPilots(u)
		u.active = cellular.ActiveSetInto(u.active, u.pilots, e.cfg.SoftHandoffAddDB, e.cfg.PilotMinEcIoDB, 3)
	} else {
		u.pilots = cellular.PilotSetCellsLinearInto(u.pilots, u.cand, u.gain, e.cfg.PilotFraction, e.cfg.MaxCellPowerW, e.cfg.NoiseW)
		e.filterDownPilots(u)
		u.active = cellular.ActiveSetLinearInto(u.active, u.pilots, e.addFactor, e.minEcIo, 3)
	}
	e.finishMeasurementsWin(u)
}

// migrateQueued moves burst requests still queued at an out-of-service
// cell to their owner's re-piloted host cell. Runs sequentially between
// the user updates (which moved the host cells off dead cells) and traffic
// generation, so a migrated request competes for admission at its new cell
// in the same frame. Requests whose owner has no surviving cell stay put;
// requests already granted (their burst is in flight) are not queued and
// are left alone.
func (e *Engine) migrateQueued() {
	if e.fault == nil || !e.anyDown {
		return
	}
	for _, u := range e.users {
		req := u.queuedReq
		if req == nil || !e.fault.Down[u.queuedCell] {
			continue
		}
		if u.hostCell == u.queuedCell || e.fault.Down[u.hostCell] {
			continue
		}
		if !e.queues[u.queuedCell].Remove(req) {
			continue // in-flight burst, not a queued request
		}
		e.queues[u.hostCell].Push(req)
		u.queuedCell = u.hostCell
		e.metrics.SpilloverHandoffs++
		if e.traceCells != nil {
			e.traceCells[u.hostCell].spill++
		}
	}
}

// nearestUpCell returns the in-service cell nearest to pos, or down if
// every cell is out of service. The exact reference path compares metre
// distances, the fast path squared distances, both with the lowest-index
// tie-break — mirroring the two NearestCell kernels so a voice user's
// re-homed cell is the one the unfaulted search would pick among survivors.
func (e *Engine) nearestUpCell(pos cellular.Point, down int) int {
	best, bestD := down, 0.0
	for k := 0; k < e.layout.NumCells(); k++ {
		if e.fault.Down[k] {
			continue
		}
		var d float64
		if e.cfg.ExactPHY {
			d = e.layout.Distance(pos, k)
		} else {
			d = e.layout.DistanceSq(pos, k)
		}
		if best == down || d < bestD {
			best, bestD = k, d
		}
	}
	return best
}

// newFaultState builds the engine's fault runtime for the configuration,
// nil when no schedule (or an empty one) is configured — the nil check is
// what keeps every fault hook out of the fault-free hot path.
func newFaultState(cfg Config, numCells int) *fault.State {
	if cfg.Faults == nil || cfg.Faults.Empty() {
		return nil
	}
	return fault.NewState(cfg.Faults, numCells)
}
