package sim

import (
	"bytes"
	"context"
	"testing"
)

// FuzzReadCheckpoint feeds arbitrary bytes — seeded with a real checkpoint
// and a few structurally damaged variants — through the full decode path.
// The invariant: ReadCheckpoint/Resume may reject the input with an error,
// but must never panic, and an input that decodes cleanly must produce an
// engine that runs. A forged config cannot slip through because the header
// hash is verified against the decoded config before any state is touched.
func FuzzReadCheckpoint(f *testing.F) {
	cfg := tinyConfig()
	cap := &ckCapture{}
	cfg.CheckpointEvery = 10
	cfg.CheckpointSink = cap.sink
	if _, err := Run(context.Background(), cfg); err != nil {
		f.Fatal(err)
	}
	blob := cap.blobs[10]
	if blob == nil {
		f.Fatal("no checkpoint captured")
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add(blob[:13])
	f.Add([]byte{})
	bumped := append([]byte(nil), blob...)
	bumped[8]++ // format version
	f.Add(bumped)
	flipped := append([]byte(nil), blob...)
	flipped[len(flipped)/2] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		e, err := c.Resume(c.Config())
		if err != nil {
			return
		}
		defer e.Close()
		if _, err := e.Run(context.Background()); err != nil {
			t.Fatalf("cleanly decoded checkpoint failed to run: %v", err)
		}
	})
}
