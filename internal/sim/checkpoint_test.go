package sim

import (
	"bytes"
	"context"
	"io"
	"reflect"
	"strings"
	"testing"

	"jabasd/internal/fault"
	"jabasd/internal/trace"
)

// ckCapture is an in-memory CheckpointSink: it keeps every emitted blob,
// keyed by frame.
type ckCapture struct {
	blobs map[int][]byte
}

func (c *ckCapture) sink(frame int, write func(io.Writer) error) error {
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		return err
	}
	if c.blobs == nil {
		c.blobs = make(map[int][]byte)
	}
	c.blobs[frame] = buf.Bytes()
	return nil
}

// runEngine runs cfg to completion and returns the metrics plus the
// engine's own final-state checkpoint bytes (taken after Run, a valid frame
// boundary).
func runEngine(t *testing.T, cfg Config) (*Metrics, []byte) {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	m, err := e.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var final bytes.Buffer
	if err := e.Checkpoint(&final); err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	return m, final.Bytes()
}

// tracesFrom filters the records at or after frame k — what a run resumed
// at k must reproduce.
func tracesFrom(records []trace.Record, k int) []trace.Record {
	out := []trace.Record{}
	for _, r := range records {
		if r.Frame >= k {
			out = append(out, r)
		}
	}
	return out
}

// resumeScenarios is the gate's covering set: metro (19-cell default-shaped)
// and city-style (windowed, tiled) maps, both frame modes, tiled and
// untiled, exact and fast PHY, plus the stateful corners (load step, reverse
// link, the random scheduler's stream).
func resumeScenarios() map[string]Config {
	metro := func() Config {
		cfg := DefaultConfig()
		cfg.Rings = 1
		cfg.SimTime = 3
		cfg.WarmupTime = 1
		cfg.FrameLength = 0.05
		cfg.DataUsersPerCell = 4
		cfg.VoiceUsersPerCell = 3
		cfg.Data.MeanReadingTimeSec = 2
		cfg.Data.MaxSizeBits = 400_000
		return cfg
	}
	city := func() Config {
		cfg := metro()
		cfg.Rings = 3
		cfg.SimTime = 1.5
		cfg.WarmupTime = 0.5
		cfg.DataUsersPerCell = 2
		cfg.VoiceUsersPerCell = 2
		cfg.PilotCells = 24
		cfg.FrameMode = FrameSnapshot
		cfg.Tiles = 4
		cfg.FrameParallel = 2
		return cfg
	}
	scenarios := map[string]Config{}

	cfg := metro() // sequential + fast PHY + mid-run load step
	cfg.LoadStep = &LoadStep{AtSec: 1.5, ReadingTimeSec: 1}
	scenarios["seq-fast-loadstep"] = cfg

	cfg = metro() // sequential + exact PHY + reverse link
	cfg.ExactPHY = true
	cfg.Direction = Reverse
	scenarios["seq-exact-reverse"] = cfg

	cfg = metro() // sequential + the one scheduler with a cross-frame stream
	cfg.Scheduler = SchedulerRandom
	cfg.SimTime = 2
	scenarios["seq-random-sched"] = cfg

	cfg = metro() // snapshot, untiled, parallel workers
	cfg.FrameMode = FrameSnapshot
	cfg.FrameParallel = 2
	scenarios["snap-fast"] = cfg

	cfg = metro() // snapshot, untiled, exact PHY
	cfg.FrameMode = FrameSnapshot
	cfg.ExactPHY = true
	cfg.SimTime = 2
	scenarios["snap-exact"] = cfg

	scenarios["city-tiled-fast"] = city()

	cfg = city() // tiled + windowed + exact PHY
	cfg.ExactPHY = true
	cfg.SimTime = 1
	scenarios["city-tiled-exact"] = cfg

	// Fault-bearing scenarios: the middle checkpoint (frame 30 of 60 for the
	// metro shape, t=1.5s) lands inside the outage window, so the gate proves
	// a resume mid-outage reconstructs the fault mask, the load cursor and
	// the spillover state byte-identically.
	cfg = metro() // sequential + centre-cell outage + flash-crowd load event
	cfg.Faults = &fault.Schedule{
		Cells: []fault.CellEvent{{Cell: 0, StartSec: 1.2, EndSec: 1.8}},
		Load:  []fault.LoadEvent{{AtSec: 1.0, ReadingTimeSec: 1}},
	}
	scenarios["seq-fast-outage"] = cfg

	cfg = metro() // snapshot + derated centre + neighbour outage
	cfg.FrameMode = FrameSnapshot
	cfg.FrameParallel = 2
	cfg.Faults = &fault.Schedule{
		Cells: []fault.CellEvent{
			{Cell: 0, StartSec: 0.8, EndSec: 2.2, Derate: 0.4},
			{Cell: 3, StartSec: 1.2, EndSec: 1.8},
		},
	}
	scenarios["snap-outage-derate"] = cfg

	cfg = city() // tiled + windowed + outage crossing the mid checkpoint
	cfg.Faults = &fault.Schedule{
		Cells: []fault.CellEvent{{Cell: 0, StartSec: 0.6, EndSec: 0.9}},
	}
	scenarios["city-tiled-outage"] = cfg

	return scenarios
}

// TestCheckpointResumeByteIdentical is the PR's gate: for every scenario and
// for checkpoints at the first, a middle and the last frame, a run resumed
// from the checkpoint must reproduce the uninterrupted run exactly — the
// metrics struct, every telemetry record from the resume point on, and the
// final-state checkpoint bytes. It also gates that checkpointing itself is
// non-invasive: the checkpointing run's metrics and trace equal the plain
// run's.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	for name, cfg := range resumeScenarios() {
		t.Run(name, func(t *testing.T) {
			frames := int(cfg.SimTime/cfg.FrameLength + 0.5)

			// Plain reference run. CheckpointEvery matches the checkpointing
			// run so the final-state blobs' embedded configs compare equal;
			// with no sink attached nothing is emitted.
			plain := cfg
			plain.CheckpointEvery = 1
			var t0 trace.Memory
			plain.Trace = &t0
			m0, f0 := runEngine(t, plain)

			// Checkpointing run: capture a blob at every frame boundary.
			full := cfg
			var tA trace.Memory
			full.Trace = &tA
			cap := &ckCapture{}
			full.CheckpointEvery = 1
			full.CheckpointSink = cap.sink
			mA, fA := runEngine(t, full)

			if !reflect.DeepEqual(m0, mA) {
				t.Fatalf("checkpointing perturbed the run:\nplain %+v\nwith  %+v", m0, mA)
			}
			if !reflect.DeepEqual(t0.Records, tA.Records) {
				t.Fatal("checkpointing perturbed the trace")
			}
			if !bytes.Equal(f0, fA) {
				t.Fatal("checkpointing perturbed the final state")
			}

			for _, k := range []int{1, frames / 2, frames - 1} {
				blob := cap.blobs[k]
				if blob == nil {
					t.Fatalf("no checkpoint captured at frame %d", k)
				}
				c, err := ReadCheckpoint(bytes.NewReader(blob))
				if err != nil {
					t.Fatalf("k=%d: ReadCheckpoint: %v", k, err)
				}
				rcfg := c.Config() // keeps CheckpointEvery=1; no sink => no emission
				var tB trace.Memory
				rcfg.Trace = &tB
				eB, err := c.Resume(rcfg)
				if err != nil {
					t.Fatalf("k=%d: Resume: %v", k, err)
				}
				if eB.Frame() != k {
					t.Fatalf("k=%d: resumed engine reports frame %d", k, eB.Frame())
				}
				mB, err := eB.Run(context.Background())
				if err != nil {
					t.Fatalf("k=%d: resumed Run: %v", k, err)
				}
				if !reflect.DeepEqual(mA, mB) {
					t.Errorf("k=%d: resumed metrics differ:\nfull    %+v\nresumed %+v", k, mA, mB)
				}
				if want := tracesFrom(tA.Records, k); !reflect.DeepEqual(want, tB.Records) {
					t.Errorf("k=%d: resumed trace differs (%d vs %d records)", k, len(tB.Records), len(want))
				}
				var fB bytes.Buffer
				if err := eB.Checkpoint(&fB); err != nil {
					t.Fatalf("k=%d: final checkpoint of resumed engine: %v", k, err)
				}
				if !bytes.Equal(fA, fB.Bytes()) {
					t.Errorf("k=%d: final engine state differs byte-wise", k)
				}
			}
		})
	}
}

// checkpointBlob runs a small scenario a few frames and returns one blob.
func checkpointBlob(t *testing.T, cfg Config) []byte {
	t.Helper()
	cap := &ckCapture{}
	cfg.CheckpointEvery = 10
	cfg.CheckpointSink = cap.sink
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	blob := cap.blobs[10]
	if blob == nil {
		t.Fatal("no checkpoint captured")
	}
	return blob
}

func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Rings = 1
	cfg.SimTime = 1
	cfg.WarmupTime = 0.2
	cfg.FrameLength = 0.05
	cfg.DataUsersPerCell = 2
	cfg.VoiceUsersPerCell = 2
	cfg.Data.MeanReadingTimeSec = 2
	cfg.Data.MaxSizeBits = 400_000
	return cfg
}

// TestResumeRefusesSemanticConfigChange: every scenario-shaping change must
// be refused with the hash-mismatch error; the execution knobs must pass.
func TestResumeRefusesSemanticConfigChange(t *testing.T) {
	blob := checkpointBlob(t, tinyConfig())

	semantic := map[string]func(*Config){
		"seed":      func(c *Config) { c.Seed++ },
		"simtime":   func(c *Config) { c.SimTime *= 2 },
		"users":     func(c *Config) { c.DataUsersPerCell++ },
		"direction": func(c *Config) { c.Direction = Reverse },
		"scheduler": func(c *Config) { c.Scheduler = SchedulerFCFS },
		"framemode": func(c *Config) { c.FrameMode = FrameSnapshot },
	}
	for name, mut := range semantic {
		c, err := ReadCheckpoint(bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		cfg := c.Config()
		mut(&cfg)
		if _, err := c.Resume(cfg); err == nil || !strings.Contains(err.Error(), "differs") {
			t.Errorf("%s: semantic change not refused: %v", name, err)
		}
	}

	// The execution knobs may change across a resume.
	c, err := ReadCheckpoint(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	cfg := c.Config()
	cfg.TraceEvery = 3
	cfg.CheckpointEvery = 0
	e, err := c.Resume(cfg)
	if err != nil {
		t.Fatalf("execution-knob change refused: %v", err)
	}
	if _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestResumeIsSingleShot: a checkpoint is consumed by its first Resume.
func TestResumeIsSingleShot(t *testing.T) {
	blob := checkpointBlob(t, tinyConfig())
	c, err := ReadCheckpoint(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Resume(c.Config()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Resume(c.Config()); err == nil {
		t.Fatal("second Resume should fail")
	}
}

// TestCheckpointCorruptionNeverPanicsOrMisRestores samples single-byte flips
// and truncations over a real checkpoint: each must surface as an error from
// ReadCheckpoint or Resume — never a panic, and never a silently diverging
// engine (every section is CRC-framed, so damage past the header cannot
// decode cleanly).
func TestCheckpointCorruptionNeverPanicsOrMisRestores(t *testing.T) {
	blob := checkpointBlob(t, tinyConfig())

	try := func(data []byte) (err error) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on corrupt checkpoint: %v", r)
			}
		}()
		c, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return err
		}
		_, err = c.Resume(c.Config())
		return err
	}

	step := len(blob)/400 + 1
	for off := 0; off < len(blob); off += step {
		mut := append([]byte(nil), blob...)
		mut[off] ^= 0x55
		if try(mut) == nil {
			t.Fatalf("flip at offset %d (of %d) not detected", off, len(blob))
		}
	}
	for cut := 0; cut < len(blob); cut += step {
		if try(blob[:cut]) == nil {
			t.Fatalf("truncation to %d bytes (of %d) not detected", cut, len(blob))
		}
	}
}
