package sim

// Windowed physics (Config.PilotCells > 0): instead of tracking channel
// state to every base station — O(users x cells) memory and per-frame work,
// untenable at city scale — each data user tracks only the candidate window
// of its current spatial bucket (internal/spatial), retargeting the window
// when it crosses into a bucket with a different candidate list
// (channel.Window carries the shadowing state of cells that stay). All
// downstream admission code is untouched: pilots, active and reduced sets
// carry global cell indices exactly as before; only the gain lookups here
// go through the slot map. When the window covers every cell (PilotCells >=
// the cell count) the candidate list is the identity, Retarget no-ops after
// the first frame and the arithmetic — including the order of the Io and
// interference summations — is bit-identical to the full-scan paths, which
// TestWindowedFullWidthIdentity locks in.

import (
	"math"

	"jabasd/internal/cellular"
	"jabasd/internal/mathx"
)

// retargetWindow points user u's channel window at its position's bucket
// candidates and reports whether the candidate list changed. Buckets change
// rarely relative to frames, so the common case is two integer compares.
func (e *Engine) retargetWindow(u *dataUser, pos cellular.Point) bool {
	b := e.spix.BucketOf(pos)
	if b == u.bucket {
		return false
	}
	u.bucket = b
	return e.winB.Retarget(u.id, e.spix.Candidates(b))
}

// updateUserExactWin is updateUserExact over the candidate window: metre
// distances and dB-domain pilot selection, restricted to the window's
// cells.
func (e *Engine) updateUserExactWin(u *dataUser, dt float64) {
	travelled := e.mobB.Advance(u.id, dt)
	if travelled == 0 && e.chanB.Ready(u.id) {
		e.chanB.AdvancePausedExact(u.id)
		if e.faultDirty {
			e.refreshPausedUser(u)
			return
		}
		u.macM.AdvanceTo(e.now)
		return
	}
	pos := e.mobB.Position(u.id)
	if e.retargetWindow(u, pos) {
		u.pilots = u.pilots[:0] // stale slots: next PilotSet call rebuilds
	}
	e.layout.DistancesForInto(pos, u.cand, e.chanB.DistRow(u.id))
	e.chanB.AdvanceExact(u.id, travelled)
	u.pilots = cellular.PilotSetCellsInto(u.pilots, u.cand, u.gain, e.cfg.PilotFraction, e.cfg.MaxCellPowerW, e.cfg.NoiseW)
	e.filterDownPilots(u)
	u.active = cellular.ActiveSetInto(u.active, u.pilots, e.cfg.SoftHandoffAddDB, e.cfg.PilotMinEcIoDB, 3)
	e.finishMeasurementsWin(u)
}

// updateUserFastWin is updateUserFast over the candidate window: squared
// distances, the fast channel kernel and linear-domain pilot selection. A
// retarget forces the measurement version to bump — entering slots carry an
// invalidated epsilon baseline, and the frame-coherent pilot update starts
// from a clean rebuild.
func (e *Engine) updateUserFastWin(u *dataUser, dt float64) {
	travelled := e.mobB.Advance(u.id, dt)
	if travelled == 0 && e.chanB.Ready(u.id) {
		if e.faultDirty {
			e.refreshPausedUser(u)
			return
		}
		u.macM.AdvanceTo(e.now)
		return
	}
	pos := e.mobB.Position(u.id)
	retargeted := e.retargetWindow(u, pos)
	if retargeted {
		u.pilots = u.pilots[:0]
	}
	e.layout.DistancesSqForInto(pos, u.cand, e.chanB.DistRow(u.id))
	dirty := e.chanB.AdvanceFast(u.id, travelled, e.cfg.RegionEpsilon) || retargeted
	u.pilots = cellular.PilotSetCellsLinearInto(u.pilots, u.cand, u.gain, e.cfg.PilotFraction, e.cfg.MaxCellPowerW, e.cfg.NoiseW)
	e.filterDownPilots(u)
	u.active = cellular.ActiveSetLinearInto(u.active, u.pilots, e.addFactor, e.minEcIo, 3)
	e.finishMeasurementsWin(u)
	if !dirty {
		dirty = !intSlicesEqual(u.reduced, u.prevReduced)
	}
	if dirty {
		u.ver++
	}
	u.prevReduced = append(u.prevReduced[:0], u.reduced...)
}

// finishMeasurementsWin is finishMeasurements with the gain lookups routed
// through the slot map: the interference total sums the window's cells only
// (ascending cell order, like the full scan restricted to the window) and
// each reduced-set cell's gain is found by binary search over the candidate
// list. Reduced-set cells are always in the window — they come from the
// window's own pilot set.
func (e *Engine) finishMeasurementsWin(u *dataUser) {
	u.reduced = cellular.ReducedActiveSetInto(u.reduced, u.pilots, u.active)
	if len(u.reduced) == 0 {
		// Degenerate coverage hole: fall back to the strongest cell.
		u.reduced = append(u.reduced, u.pilots[0].Cell)
	}
	u.hostCell = u.reduced[0]

	// Downlink geometry over the window: serving-cell power over other-cell
	// interference plus noise, with neighbours at nominal activity.
	host := int32(u.hostCell)
	interference := e.cfg.NoiseW
	for s, c := range u.cand {
		if c == host {
			continue
		}
		interference += nominalOtherCellActivity * e.cfg.MaxCellPowerW * u.gain[s]
	}
	hostGain := u.gain[cellular.FindCell(u.cand, host)]
	u.geometry = e.cfg.MaxCellPowerW * hostGain / interference
	u.meanCSIdB = mathx.DB(u.geometry) + schCSIOffsetDB

	cap := e.cfg.FCHTargetFraction * e.cfg.MaxCellPowerW
	u.fchPower.Reset()
	for _, k := range u.reduced {
		g := u.gain[cellular.FindCell(u.cand, int32(k))]
		req := e.ebioTarget * interference / (g * e.fchPG)
		u.fchPower.Set(k, math.Min(req, cap))
	}

	nominalL := e.cfg.NoiseW * (1 + (e.cfg.ReverseRiseLimit-1)/2)
	revTx := e.ebioTarget * nominalL / (hostGain * e.fchPG)
	u.revFCHRx.Reset()
	for _, k := range u.reduced {
		g := u.gain[cellular.FindCell(u.cand, int32(k))]
		u.revFCHRx.Set(k, revTx*g/e.cfg.NoiseW)
	}

	u.macM.AdvanceTo(e.now)
}
