package sim

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"jabasd/internal/replay"
)

// recordSolveTrace runs cfg with solve tracing on and returns the raw trace.
func recordSolveTrace(t *testing.T, cfg Config) []byte {
	t.Helper()
	var buf bytes.Buffer
	cfg.SolveTrace = &buf
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return buf.Bytes()
}

// TestSolveTraceReplayFidelity: re-solving a recorded trace with the
// header's own scheduler and objective must reproduce the recorded ratios
// exactly — the trace carries everything the scheduler saw. Covers both
// frame modes, the tiled path and the one RNG-bearing scheduler (whose
// per-(frame, cell) reseeding Resolve mirrors).
func TestSolveTraceReplayFidelity(t *testing.T) {
	scenarios := map[string]func(*Config){
		"seq-jabasd":  func(cfg *Config) {},
		"snap-jabasd": func(cfg *Config) { cfg.FrameMode = FrameSnapshot; cfg.FrameParallel = 2 },
		"snap-random": func(cfg *Config) {
			cfg.FrameMode = FrameSnapshot
			cfg.FrameParallel = 2
			cfg.Scheduler = SchedulerRandom
		},
		"tiled-greedy": func(cfg *Config) {
			cfg.FrameMode = FrameSnapshot
			cfg.Tiles = 3
			cfg.FrameParallel = 2
			cfg.Scheduler = SchedulerGreedy
		},
	}
	for name, shape := range scenarios {
		t.Run(name, func(t *testing.T) {
			cfg := tinyConfig()
			shape(&cfg)
			raw := recordSolveTrace(t, cfg)

			hdr, problems, err := replay.ReadTrace(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("ReadTrace: %v", err)
			}
			if len(problems) == 0 {
				t.Fatal("trace recorded no problems")
			}
			wantKind := cfg.Scheduler
			if wantKind == "" {
				wantKind = SchedulerJABASD
			}
			if hdr.Scheduler != string(wantKind) {
				t.Fatalf("header scheduler %q, want %q", hdr.Scheduler, wantKind)
			}

			sched, err := NewScheduler(SchedulerKind(hdr.Scheduler), hdr.Seed)
			if err != nil {
				t.Fatalf("NewScheduler: %v", err)
			}
			got, err := replay.Resolve(hdr, problems, sched, hdr.Objective)
			if err != nil {
				t.Fatalf("Resolve: %v", err)
			}
			for i, p := range problems {
				if !reflect.DeepEqual(got[i].Ratios, p.Ratios) {
					t.Fatalf("frame %d cell %d: replayed ratios %v, recorded %v",
						p.Frame, p.Cell, got[i].Ratios, p.Ratios)
				}
			}
		})
	}
}

// TestSolveTraceIndependentOfParallelism: the trace is emitted on the
// sequential commit path in ascending cell order, so its bytes must not
// depend on the worker count or the tile partition — including tiled
// versus untiled snapshot.
func TestSolveTraceIndependentOfParallelism(t *testing.T) {
	base := tinyConfig()
	base.FrameMode = FrameSnapshot

	variant := func(tiles, workers int) []byte {
		cfg := base
		cfg.Tiles = tiles
		cfg.FrameParallel = workers
		return recordSolveTrace(t, cfg)
	}

	ref := variant(0, 1)
	if len(ref) == 0 {
		t.Fatal("reference run recorded nothing")
	}
	for name, raw := range map[string][]byte{
		"untiled-4-workers": variant(0, 4),
		"2-tiles-2-workers": variant(2, 2),
		"4-tiles-3-workers": variant(4, 3),
	} {
		if !bytes.Equal(ref, raw) {
			t.Errorf("%s: solve trace differs from the untiled single-worker run", name)
		}
	}
}

// TestReplayCounterfactual: the same trace re-solved under a different
// scheduler yields a complete, line-aligned grants file — one row per
// recorded request in both the recorded and the counterfactual view, so the
// two CSVs diff row-for-row.
func TestReplayCounterfactual(t *testing.T) {
	cfg := tinyConfig()
	cfg.SimTime = 2
	raw := recordSolveTrace(t, cfg)

	hdr, problems, err := replay.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	sched, err := NewScheduler(SchedulerGreedy, hdr.Seed)
	if err != nil {
		t.Fatal(err)
	}
	counter, err := replay.Resolve(hdr, problems, sched, hdr.Objective)
	if err != nil {
		t.Fatalf("Resolve under greedy: %v", err)
	}

	rows := 1 // header line
	for _, p := range problems {
		rows += len(p.Requests)
		if len(p.Ratios) != len(p.Requests) {
			t.Fatalf("frame %d cell %d: ragged recording", p.Frame, p.Cell)
		}
	}
	var recCSV, cfCSV bytes.Buffer
	if err := replay.WriteGrantsCSV(&recCSV, problems, replay.RecordedAssignments(problems)); err != nil {
		t.Fatal(err)
	}
	if err := replay.WriteGrantsCSV(&cfCSV, problems, counter); err != nil {
		t.Fatal(err)
	}
	for name, csv := range map[string]string{"recorded": recCSV.String(), "counterfactual": cfCSV.String()} {
		if got := strings.Count(csv, "\n"); got != rows {
			t.Errorf("%s grants file has %d rows, want %d", name, got, rows)
		}
	}

	// Every counterfactual grant must respect the recorded problem's caps.
	for i, p := range problems {
		for j, m := range counter[i].Ratios {
			if m < 0 || m > hdr.MaxRatio {
				t.Fatalf("frame %d cell %d user %d: counterfactual ratio %d outside [0, %d]",
					p.Frame, p.Cell, p.Requests[j].UserID, m, hdr.MaxRatio)
			}
		}
	}
}

// TestSolveTraceRejectsDamage: format bumps, ragged lines and garbage must
// surface as errors from ReadTrace, never as silently empty traces.
func TestSolveTraceRejectsDamage(t *testing.T) {
	raw := recordSolveTrace(t, tinyConfig())
	lines := bytes.SplitAfter(raw, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("trace too short to damage (%d lines)", len(lines))
	}

	damaged := map[string][]byte{
		"empty":       nil,
		"bad-header":  []byte("{\"format\":\"bogus/v9\"}\n"),
		"not-json":    append(append([]byte{}, lines[0]...), []byte("not json\n")...),
		"ragged-line": append(append([]byte{}, lines[0]...), []byte(`{"frame":0,"cell":0,"requests":[{"user_id":1}],"ratios":[]}`+"\n")...),
	}
	for name, data := range damaged {
		if _, _, err := replay.ReadTrace(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: damage not rejected", name)
		}
	}
}
