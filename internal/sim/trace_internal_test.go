package sim

import (
	"context"
	"reflect"
	"testing"

	"jabasd/internal/trace"
)

// traceTestConfig is a small, fast scenario that still generates enough
// traffic for admission activity to show up in the telemetry.
func traceTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Rings = 1
	cfg.SimTime = 6
	cfg.WarmupTime = 1
	cfg.DataUsersPerCell = 6
	cfg.VoiceUsersPerCell = 4
	cfg.Data.MeanReadingTimeSec = 2
	return cfg
}

func TestTraceDoesNotPerturbSimulation(t *testing.T) {
	cfg := traceTestConfig()
	plain, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = &trace.Memory{}
	traced, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != traced.String() {
		t.Fatalf("tracing changed the simulation:\nplain:  %s\ntraced: %s", plain, traced)
	}
	if plain.BurstsGenerated != traced.BurstsGenerated || plain.BitsDelivered != traced.BitsDelivered {
		t.Fatalf("tracing changed the counters: %+v vs %+v", plain, traced)
	}
}

func TestTraceRecordConsistency(t *testing.T) {
	cfg := traceTestConfig()
	cfg.WarmupTime = 0 // align trace completions with the metrics counters
	mem := &trace.Memory{}
	cfg.Trace = mem
	m, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	frames := int(cfg.SimTime / cfg.FrameLength)
	cells := m.Cells
	if want := frames * cells; len(mem.Records) != want {
		t.Fatalf("got %d records, want %d (frames %d x cells %d)", len(mem.Records), want, frames, cells)
	}
	var offered, admitted, completed int
	var delaySum float64
	for i, r := range mem.Records {
		wantFrame, wantCell := i/cells, i%cells
		if r.Frame != wantFrame || r.Cell != wantCell {
			t.Fatalf("record %d is (frame %d, cell %d), want (%d, %d)", i, r.Frame, r.Cell, wantFrame, wantCell)
		}
		if r.Admitted > r.Offered {
			t.Fatalf("record %d admitted %d > offered %d", i, r.Admitted, r.Offered)
		}
		if r.Admitted > 0 && r.GrantedRatio < r.Admitted {
			t.Fatalf("record %d granted ratio %d below admitted count %d", i, r.GrantedRatio, r.Admitted)
		}
		switch r.Solve {
		case trace.SolveIdle:
			if r.Offered != 0 {
				t.Fatalf("record %d idle with offered %d", i, r.Offered)
			}
		case trace.SolveOK, trace.SolveSkipped:
		default:
			t.Fatalf("record %d has unknown solve status %q", i, r.Solve)
		}
		if r.Load < 0 {
			t.Fatalf("record %d has negative load %g", i, r.Load)
		}
		offered += r.Offered
		admitted += r.Admitted
		completed += r.Completed
		delaySum += r.DelaySumS
	}
	if int64(completed) != m.BurstsCompleted {
		t.Fatalf("trace completions %d != metrics BurstsCompleted %d", completed, m.BurstsCompleted)
	}
	if completed > 0 && delaySum <= 0 {
		t.Fatal("completions recorded but no delay mass")
	}
	if admitted == 0 || offered == 0 {
		t.Fatal("trace saw no admission activity; scenario too light to test anything")
	}
}

func TestTraceEverySamples(t *testing.T) {
	cfg := traceTestConfig()
	mem := &trace.Memory{}
	cfg.Trace = mem
	cfg.TraceEvery = 25
	m, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	frames := int(cfg.SimTime / cfg.FrameLength)
	sampled := (frames + cfg.TraceEvery - 1) / cfg.TraceEvery
	if want := sampled * m.Cells; len(mem.Records) != want {
		t.Fatalf("got %d records, want %d", len(mem.Records), want)
	}
	for _, r := range mem.Records {
		if r.Frame%cfg.TraceEvery != 0 {
			t.Fatalf("unsampled frame %d recorded", r.Frame)
		}
	}
}

func TestTraceIdenticalAcrossFrameParallel(t *testing.T) {
	run := func(workers int) []trace.Record {
		cfg := traceTestConfig()
		cfg.FrameMode = FrameSnapshot
		cfg.FrameParallel = workers
		mem := &trace.Memory{}
		cfg.Trace = mem
		if _, err := Run(context.Background(), cfg); err != nil {
			t.Fatal(err)
		}
		return mem.Records
	}
	one, eight := run(1), run(8)
	if len(one) == 0 {
		t.Fatal("no records")
	}
	if !reflect.DeepEqual(one, eight) {
		t.Fatal("snapshot trace differs between -frameparallel 1 and 8")
	}
}

func TestRunReplicationsTracesOnlyReplicationZero(t *testing.T) {
	cfg := traceTestConfig()
	mem := &trace.Memory{}
	cfg.Trace = mem
	if _, err := RunReplications(context.Background(), cfg, 3); err != nil {
		t.Fatal(err)
	}
	// Exactly one engine wrote: every (frame, cell) pair appears once.
	seen := map[[2]int]bool{}
	for _, r := range mem.Records {
		key := [2]int{r.Frame, r.Cell}
		if seen[key] {
			t.Fatalf("(frame %d, cell %d) recorded twice: more than one replication traced", r.Frame, r.Cell)
		}
		seen[key] = true
	}
	// And it was replication 0: identical to a single traced run.
	single := &trace.Memory{}
	cfg.Trace = single
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mem.Records, single.Records) {
		t.Fatal("replication-0 trace differs from a single run with the same seed")
	}
}

func TestLoadStepRaisesOfferedLoad(t *testing.T) {
	cfg := traceTestConfig()
	cfg.SimTime = 12
	cfg.WarmupTime = 0
	cfg.Data.MeanReadingTimeSec = 12 // light before the step
	cfg.LoadStep = &LoadStep{AtSec: 6, ReadingTimeSec: 0.5}
	mem := &trace.Memory{}
	cfg.Trace = mem
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	var before, after int
	for _, r := range mem.Records {
		if r.TimeS < cfg.LoadStep.AtSec {
			before += r.Offered
		} else {
			after += r.Offered
		}
	}
	if after <= before {
		t.Fatalf("offered load did not rise after the step: before=%d after=%d", before, after)
	}
}

func TestLoadStepValidation(t *testing.T) {
	cfg := traceTestConfig()
	cfg.LoadStep = &LoadStep{AtSec: cfg.SimTime + 1, ReadingTimeSec: 1}
	if err := cfg.Validate(); err == nil {
		t.Fatal("LoadStep.AtSec past SimTime validated")
	}
	cfg.LoadStep = &LoadStep{AtSec: 1, ReadingTimeSec: 0}
	if err := cfg.Validate(); err == nil {
		t.Fatal("non-positive LoadStep.ReadingTimeSec validated")
	}
	cfg.TraceEvery = -1
	cfg.LoadStep = nil
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative TraceEvery validated")
	}
}
