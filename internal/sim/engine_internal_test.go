package sim

// White-box tests for the engine internals: user/channel state updates, load
// accounting, admission bookkeeping and burst service. They complement the
// black-box scenario tests in sim_test.go.

import (
	"math"
	"testing"

	"jabasd/internal/core"
	"jabasd/internal/traffic"
)

func newTestEngine(t *testing.T, mutate func(*Config)) *Engine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Rings = 1
	cfg.SimTime = 5
	cfg.WarmupTime = 0
	cfg.DataUsersPerCell = 3
	cfg.VoiceUsersPerCell = 2
	cfg.Data.MeanReadingTimeSec = 1
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestPopulateCounts(t *testing.T) {
	e := newTestEngine(t, nil)
	if len(e.users) != 7*3 {
		t.Errorf("data users = %d, want 21", len(e.users))
	}
	if len(e.voice) != 7*2 {
		t.Errorf("voice users = %d, want 14", len(e.voice))
	}
	if len(e.queues) != 7 || e.loads.NumCells() != 7 {
		t.Error("per-cell structures sized wrong")
	}
	// The SoA physics batches must cover every user, and each user's gain
	// slice must alias its row of the channel batch (one gain per cell).
	if e.mobB == nil || e.fadeB == nil || e.chanB == nil {
		t.Fatal("physics batches not initialised")
	}
	if e.mobB.Len() != len(e.users) {
		t.Fatalf("mobility batch sized for %d users, want %d", e.mobB.Len(), len(e.users))
	}
	for _, u := range e.users {
		if len(u.gain) != 7 || u.source == nil || u.macM == nil {
			t.Fatal("user substructures not initialised")
		}
		if row := e.chanB.GainRow(u.id); &u.gain[0] != &row[0] {
			t.Fatalf("user %d gain does not alias its channel batch row", u.id)
		}
	}
}

func TestUpdateUsersProducesConsistentState(t *testing.T) {
	e := newTestEngine(t, nil)
	e.now = 0
	e.updateUsers(e.cfg.FrameLength)
	for _, u := range e.users {
		// Gains must be positive and finite.
		for k, g := range u.gain {
			if g <= 0 || math.IsInf(g, 0) || math.IsNaN(g) {
				t.Fatalf("user %d gain to cell %d invalid: %v", u.id, k, g)
			}
		}
		// Reduced active set must be 1 or 2 cells, subset of the active set
		// (when the active set is non-empty), and hostCell its first entry.
		if len(u.reduced) < 1 || len(u.reduced) > 2 {
			t.Fatalf("reduced set size %d", len(u.reduced))
		}
		if u.hostCell != u.reduced[0] {
			t.Error("hostCell must be the strongest reduced-set cell")
		}
		// FCH powers exist exactly for the reduced-set cells and respect the cap.
		cap := e.cfg.FCHTargetFraction * e.cfg.MaxCellPowerW
		if u.fchPower.Len() != len(u.reduced) {
			t.Errorf("fchPower entries %d != reduced set %d", u.fchPower.Len(), len(u.reduced))
		}
		for i := 0; i < u.fchPower.Len(); i++ {
			if _, p := u.fchPower.At(i); p <= 0 || p > cap+1e-12 {
				t.Errorf("FCH power %v outside (0, %v]", p, cap)
			}
		}
		// Geometry and CSI must be finite.
		if math.IsNaN(u.meanCSIdB) || math.IsInf(u.meanCSIdB, 0) {
			t.Error("meanCSIdB not finite")
		}
		// Reverse FCH received powers (normalised) must be positive.
		for i := 0; i < u.revFCHRx.Len(); i++ {
			if _, x := u.revFCHRx.At(i); x <= 0 || math.IsNaN(x) {
				t.Errorf("reverse FCH received power invalid: %v", x)
			}
		}
	}
}

func TestAccumulateLoadsForwardIncludesOverheadAndFCH(t *testing.T) {
	e := newTestEngine(t, nil)
	e.updateVoice(e.cfg.FrameLength)
	e.updateUsers(e.cfg.FrameLength)
	e.accumulateLoads()
	minOverhead := e.cfg.CommonOverheadFrac * e.cfg.MaxCellPowerW
	for k, load := range e.loads.Values() {
		if load < minOverhead {
			t.Errorf("cell %d load %v below the common-channel overhead %v", k, load, minOverhead)
		}
	}
	// Total FCH power across cells must be accounted: the sum of loads must
	// exceed overhead*K by at least the sum of all users' FCH powers.
	sumLoad, sumFCH := 0.0, 0.0
	for _, l := range e.loads.Values() {
		sumLoad += l
	}
	for _, u := range e.users {
		sumFCH += u.fchPower.Sum()
	}
	if sumLoad < minOverhead*float64(e.loads.NumCells())+sumFCH-1e-9 {
		t.Error("per-cell loads do not account for all FCH power")
	}
}

func TestAccumulateLoadsReverseStartsAtNoiseFloor(t *testing.T) {
	e := newTestEngine(t, func(c *Config) { c.Direction = Reverse })
	e.updateVoice(e.cfg.FrameLength)
	e.updateUsers(e.cfg.FrameLength)
	e.accumulateLoads()
	for k, load := range e.loads.Values() {
		if load < 1 {
			t.Errorf("cell %d reverse load %v below the normalised noise floor", k, load)
		}
		if load > e.cfg.ReverseRiseLimit*3 {
			t.Errorf("cell %d reverse load %v implausibly high before any burst", k, load)
		}
	}
}

func TestAdmitGrantsAndAccountsLoad(t *testing.T) {
	e := newTestEngine(t, func(c *Config) {
		c.Data.MeanReadingTimeSec = 0.2 // requests appear almost immediately
	})
	// Drive a few frames manually until a burst is granted.
	granted := false
	for f := 0; f < 200 && !granted; f++ {
		e.now = float64(f) * e.cfg.FrameLength
		e.step()
		granted = len(e.bursts) > 0
	}
	if !granted {
		t.Fatal("no burst was ever granted")
	}
	for _, b := range e.bursts {
		if b.ratio < 1 || b.ratio > e.cfg.RatePlan.MaxSpreadingRatio {
			t.Errorf("granted ratio %d out of range", b.ratio)
		}
		if b.remaining <= 0 {
			t.Error("active burst has nothing left to send")
		}
		if b.load.Len() == 0 {
			t.Error("active burst holds no resources")
		}
		for i := 0; i < b.load.Len(); i++ {
			if cell, p := b.load.At(i); p <= 0 {
				t.Errorf("burst load at cell %d is %v", cell, p)
			}
		}
		// The user that owns the burst must not be queued anywhere.
		for _, q := range e.queues {
			for _, item := range q.Items() {
				if item == b.user.queuedReq && b.user.queuedReq != nil {
					t.Error("granted request still sits in a queue")
				}
			}
		}
	}
}

func TestServeBurstsCompletesAndReleasesUser(t *testing.T) {
	e := newTestEngine(t, func(c *Config) {
		c.Data.MeanReadingTimeSec = 0.2
		c.Data.MinSizeBits = 20_000
		c.Data.MaxSizeBits = 20_000 // tiny bursts finish quickly
	})
	completedBefore := e.metrics.BurstsCompleted
	for f := 0; f < 600; f++ {
		e.now = float64(f) * e.cfg.FrameLength
		e.step()
	}
	if e.metrics.BurstsCompleted <= completedBefore {
		t.Fatal("no burst completed")
	}
	// Completed users must be back in the thinking state (pending nil).
	busy := 0
	for _, u := range e.users {
		if u.queuedReq != nil {
			busy++
		}
	}
	if busy == len(e.users) {
		t.Error("every user is still busy; BurstDone propagation suspect")
	}
	if e.metrics.BitsDelivered <= 0 {
		t.Error("no bits were accounted as delivered")
	}
}

// TestFrameHotPathStaysAllocationFree pins the point of the dense cell-load
// ledgers: once the per-user buffers have reached steady state, the
// measurement side of the frame loop (channel state, pilot sets, FCH
// ledgers, load accumulation) performs no allocations at all.
func TestFrameHotPathStaysAllocationFree(t *testing.T) {
	e := newTestEngine(t, nil)
	// Warm up: the first frames grow the per-user buffers to capacity.
	for f := 0; f < 10; f++ {
		e.now = float64(f) * e.cfg.FrameLength
		e.step()
	}
	dt := e.cfg.FrameLength
	allocs := testing.AllocsPerRun(20, func() {
		e.updateVoice(dt)
		e.updateUsers(dt)
		e.accumulateLoads()
	})
	if allocs != 0 {
		t.Errorf("steady-state frame measurement path allocated %v times per frame, want 0", allocs)
	}
}

func TestUserByID(t *testing.T) {
	e := newTestEngine(t, nil)
	for _, u := range e.users {
		if got := e.userByID(u.id); got != u {
			t.Fatalf("userByID(%d) returned the wrong user", u.id)
		}
	}
	if e.userByID(-1) != nil || e.userByID(10_000) != nil {
		t.Error("unknown ids should return nil")
	}
}

func TestCollectRespectsWarmup(t *testing.T) {
	e := newTestEngine(t, func(c *Config) { c.WarmupTime = 2 })
	e.now = 1 // before warm-up
	e.accumulateLoads()
	e.collect()
	if e.metrics.CellLoad.Count() != 0 {
		t.Error("statistics must not be collected during warm-up")
	}
	e.now = 3
	e.collect()
	if e.metrics.CellLoad.Count() == 0 {
		t.Error("statistics must be collected after warm-up")
	}
}

// queueTestRequest manufactures a queued burst request for user u, as
// generateTraffic would have, and returns it. The engine must have run at
// least one step so the user's channel state exists.
func queueTestRequest(e *Engine, u *dataUser, sizeBits float64) *traffic.BurstRequest {
	req := &traffic.BurstRequest{UserID: u.id, SizeBits: sizeBits, ArrivalTime: e.now, Priority: 1}
	u.queuedReq = req
	u.queuedCell = u.hostCell
	u.firstGrant = false
	e.queues[u.hostCell].Push(req)
	return req
}

// admitModes runs the sub-test once per frame mode so the edge cases cover
// both the sequential and the snapshot admission paths.
func admitModes(t *testing.T, mutate func(*Config), fn func(t *testing.T, e *Engine)) {
	t.Helper()
	for _, mode := range []FrameMode{FrameSequential, FrameSnapshot} {
		t.Run(string(mode), func(t *testing.T) {
			e := newTestEngine(t, func(c *Config) {
				c.FrameMode = mode
				c.FrameParallel = 2
				if mutate != nil {
					mutate(c)
				}
			})
			defer e.Close()
			// One step gives every user valid channel state and pilot sets.
			e.now = 0
			e.step()
			e.now = e.cfg.FrameLength
			// Quiesce: drop the organic traffic the step produced, so the
			// probe request injected by the sub-test is the only one in play.
			for _, q := range e.queues {
				for _, item := range append([]*traffic.BurstRequest(nil), q.Items()...) {
					q.Remove(item)
				}
			}
			for _, u := range e.users {
				u.queuedReq = nil
			}
			e.bursts = e.bursts[:0]
			fn(t, e)
		})
	}
}

// TestAdmitDropsStaleQueueEntries: a queue entry whose user no longer backs
// it (the request pointer was superseded or cleared) must be removed during
// gathering without producing a grant.
func TestAdmitDropsStaleQueueEntries(t *testing.T) {
	admitModes(t, nil, func(t *testing.T, e *Engine) {
		u := e.users[0]
		stale := queueTestRequest(e, u, 100_000)
		u.queuedReq = nil // supersede: the queue entry is now stale
		k := u.queuedCell
		before := len(e.bursts)
		e.admit()
		if got := e.queues[k].Len(); got != 0 {
			t.Errorf("stale entry still queued (len=%d)", got)
		}
		if len(e.bursts) != before {
			t.Error("stale entry produced a burst")
		}
		if e.metrics.SkippedCells != 0 {
			t.Error("a stale entry is not a skipped cell")
		}
		_ = stale
	})
}

// TestAdmitCountsSkippedCellsOnRegionError: when the measurement sub-layer
// cannot build the admissible region, the cell is skipped for the frame and
// the failure is counted instead of silently swallowed.
func TestAdmitCountsSkippedCellsOnRegionError(t *testing.T) {
	admitModes(t, nil, func(t *testing.T, e *Engine) {
		u := e.users[0]
		queueTestRequest(e, u, 100_000)
		e.cfg.RatePlan.GammaS = 0 // invalid measurement input => region error
		before := len(e.bursts)
		e.admit()
		if e.metrics.SkippedCells == 0 {
			t.Fatal("region error did not count a skipped cell")
		}
		if e.queues[u.queuedCell].Len() != 1 {
			t.Error("skipped cell should leave the queue untouched")
		}
		if len(e.bursts) != before {
			t.Error("skipped cell must not grant")
		}
	})
}

// TestAdmitZeroRatioAssignmentLeavesQueue: an over-budget cell yields the
// all-zero assignment — requests stay queued for the next frame and no
// burst, load or skip is recorded.
func TestAdmitZeroRatioAssignmentLeavesQueue(t *testing.T) {
	admitModes(t, nil, func(t *testing.T, e *Engine) {
		u := e.users[0]
		queueTestRequest(e, u, 100_000)
		// Saturate the ledger: every cell far beyond the power budget makes
		// every region bound negative, forcing m = 0 for all requests.
		e.loads.Fill(10 * e.cfg.MaxCellPowerW)
		bursts := len(e.bursts)
		ratios := e.metrics.AssignedRatio.Count()
		e.admit()
		if e.queues[u.queuedCell].Len() != 1 {
			t.Error("zero-ratio assignment must keep the request queued")
		}
		if len(e.bursts) != bursts {
			t.Error("zero-ratio assignment must not start a burst")
		}
		if e.metrics.SkippedCells != 0 {
			t.Error("an infeasible frame is a valid zero assignment, not a skipped cell")
		}
		if e.metrics.AssignedRatio.Count() != ratios {
			t.Error("zero grants must not be recorded as assigned ratios")
		}
	})
}

// TestSnapshotSolvePhaseLeavesLedgerUntouched pins the snapshot invariant
// the parallel solve phase relies on: gathering and solving must not write
// the shared ledger; only the commit phase may.
func TestSnapshotSolvePhaseLeavesLedgerUntouched(t *testing.T) {
	e := newTestEngine(t, func(c *Config) {
		c.FrameMode = FrameSnapshot
		c.FrameParallel = 1
	})
	defer e.Close()
	e.now = 0
	e.step()
	e.now = e.cfg.FrameLength
	u := e.users[0]
	queueTestRequest(e, u, 100_000)
	before := append([]float64(nil), e.loads.Values()...)
	s := &e.workers[0].scratch
	if !e.gatherCell(u.queuedCell, s, e.loads.Values()) {
		t.Fatal("gather found nothing to schedule")
	}
	if _, err := e.solveCell(u.queuedCell, s, &e.workers[0].regionB, e.workers[0].sched, e.incr, e.loads.Values()); err != nil {
		t.Fatal(err)
	}
	for k, v := range e.loads.Values() {
		if v != before[k] {
			t.Fatalf("solve phase mutated the ledger at cell %d: %v -> %v", k, before[k], v)
		}
	}
}

// TestSnapshotWorkersOwnDisjointSchedulers pins the per-worker-scratch
// contract the warm solvers lean on: every snapshot worker must hold its own
// scheduler clone (distinct from the engine's and from every other
// worker's), because a JABA-SD instance now carries mutable ILP solver
// arenas that would race if shared across the solve fan-out.
func TestSnapshotWorkersOwnDisjointSchedulers(t *testing.T) {
	e := newTestEngine(t, func(cfg *Config) {
		cfg.FrameMode = FrameSnapshot
		cfg.FrameParallel = 4
	})
	defer e.Close()
	if len(e.workers) < 2 {
		t.Fatalf("expected multiple workers, got %d", len(e.workers))
	}
	seen := map[core.Scheduler]bool{e.scheduler: true}
	for i, w := range e.workers {
		if w.sched == nil {
			t.Fatalf("worker %d has no scheduler", i)
		}
		if seen[w.sched] {
			t.Fatalf("worker %d shares a scheduler instance with the engine or another worker", i)
		}
		seen[w.sched] = true
	}
}
