package sim

// Tests for the fault-injection layer's engine contracts: outage frames are
// byte-identical across frame modes, worker counts and tile counts; the
// outage actually silences the cell (no grants, only down-marked trace
// rows); and the counters reconcile with the schedule.

import (
	"context"
	"reflect"
	"testing"

	"jabasd/internal/fault"
	"jabasd/internal/trace"
)

// faultyConfig is quickConfig plus a schedule exercising all three event
// kinds: a centre-cell outage over the middle of the run, a derated
// neighbour and a flash-crowd load step with recovery.
func faultyConfig() Config {
	cfg := quickConfig()
	cfg.SimTime = 4
	cfg.DataUsersPerCell = 8 // enough contention that grants matter
	cfg.Faults = &fault.Schedule{
		Cells: []fault.CellEvent{
			{Cell: 0, StartSec: 1.5, EndSec: 2.5},
			{Cell: 2, StartSec: 1.0, EndSec: 3.0, Derate: 0.5},
		},
		Load: []fault.LoadEvent{
			{AtSec: 1.0, ReadingTimeSec: 0.5},
			{AtSec: 3.0, ReadingTimeSec: 2},
		},
	}
	return cfg
}

// TestFaultDeterminismAcrossModes extends the engine's determinism contract
// to fault frames: with an outage, a derate and load events in flight, the
// metrics and every telemetry record are exactly identical for any
// -frameparallel and -tiles, and between the untiled and tiled snapshot
// paths. The fault mask is applied on the sequential section of the frame
// and the derate flows through the frame-start ledger, so no parallel
// schedule can observe a different network.
func TestFaultDeterminismAcrossModes(t *testing.T) {
	base := faultyConfig()
	base.FrameMode = FrameSnapshot
	var wantFP [6]float64
	var wantTrace []trace.Record
	first := true
	for _, par := range []int{1, 2} {
		for _, tiles := range []int{0, 1, 3, 7} {
			cfg := base
			cfg.FrameParallel = par
			cfg.Tiles = tiles
			fp, rec := runTraced(t, cfg)
			if first {
				wantFP, wantTrace = fp, rec
				first = false
				if fp[1] == 0 {
					t.Fatal("no bursts completed; scenario too light to test determinism")
				}
				continue
			}
			if fp != wantFP {
				t.Errorf("tiles=%d par=%d: metrics diverged under faults: %v vs %v", tiles, par, fp, wantFP)
			}
			if !reflect.DeepEqual(rec, wantTrace) {
				t.Errorf("tiles=%d par=%d: trace diverged under faults", tiles, par)
			}
		}
	}
}

// TestFaultDeterminismExact runs the same gate on the bit-exact reference
// physics, where the paused-user refresh must not touch the Gaussian
// channel stream.
func TestFaultDeterminismExact(t *testing.T) {
	base := faultyConfig()
	base.SimTime = 3
	base.Faults = &fault.Schedule{
		Cells: []fault.CellEvent{
			{Cell: 0, StartSec: 1.0, EndSec: 2.0},
			{Cell: 2, StartSec: 0.8, EndSec: 2.4, Derate: 0.5},
		},
		Load: []fault.LoadEvent{{AtSec: 0.9, ReadingTimeSec: 0.5}},
	}
	base.FrameMode = FrameSnapshot
	base.ExactPHY = true
	var want [6]float64
	var wantTrace []trace.Record
	for i, tiles := range []int{0, 1, 4} {
		cfg := base
		cfg.FrameParallel = 2
		cfg.Tiles = tiles
		fp, rec := runTraced(t, cfg)
		if i == 0 {
			want, wantTrace = fp, rec
			continue
		}
		if fp != want {
			t.Errorf("exact tiles=%d: metrics diverged under faults: %v vs %v", tiles, fp, want)
		}
		if !reflect.DeepEqual(rec, wantTrace) {
			t.Errorf("exact tiles=%d: trace diverged under faults", tiles)
		}
	}
}

// TestEmptyScheduleIsBitIdentical pins the zero-cost property: an empty
// (but non-nil) schedule and a nil one produce byte-for-byte the same run,
// because the engine drops an empty schedule at construction and every
// fault hook nil-checks before doing any work.
func TestEmptyScheduleIsBitIdentical(t *testing.T) {
	plain := quickConfig()
	plain.SimTime = 3
	fpPlain, recPlain := runTraced(t, plain)

	empty := plain
	empty.Faults = &fault.Schedule{}
	fpEmpty, recEmpty := runTraced(t, empty)

	if fpPlain != fpEmpty {
		t.Errorf("empty schedule perturbed the metrics: %v vs %v", fpEmpty, fpPlain)
	}
	if !reflect.DeepEqual(recPlain, recEmpty) {
		t.Error("empty schedule perturbed the trace")
	}
}

// TestOutageSilencesCell checks the outage semantics end to end through the
// telemetry: during the outage window the down cell admits nothing, every
// one of its rows is down-marked, and the OutageCellFrames counter equals
// the scheduled (cell, frame) count.
func TestOutageSilencesCell(t *testing.T) {
	cfg := quickConfig()
	cfg.SimTime = 4
	cfg.DataUsersPerCell = 8
	start, end := 1.5, 3.0
	cfg.Faults = &fault.Schedule{Cells: []fault.CellEvent{{Cell: 0, StartSec: start, EndSec: end}}}
	mem := &trace.Memory{}
	cfg.Trace = mem
	m, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	downRows := 0
	for _, r := range mem.Records {
		inWindow := r.Cell == 0 && r.TimeS >= start && r.TimeS < end
		if inWindow != (r.Down == 1) {
			t.Fatalf("frame %d cell %d t=%.2f: down=%d does not match the schedule", r.Frame, r.Cell, r.TimeS, r.Down)
		}
		if r.Down == 1 {
			downRows++
			if r.Admitted != 0 {
				t.Errorf("frame %d: down cell admitted %d bursts", r.Frame, r.Admitted)
			}
			if r.Solve == trace.SolveOK {
				t.Errorf("frame %d: down cell reports a solve", r.Frame)
			}
		}
	}
	wantFrames := int((end-start)/cfg.FrameLength + 0.5)
	if downRows != wantFrames {
		t.Errorf("down-marked rows = %d, want %d", downRows, wantFrames)
	}
	if m.OutageCellFrames != int64(wantFrames) {
		t.Errorf("OutageCellFrames = %d, want %d", m.OutageCellFrames, wantFrames)
	}
	if m.BurstsCompleted == 0 {
		t.Error("nothing completed; the network did not survive the outage")
	}
}

// TestNodeBudgetFallbackDeterminism pins that the exact→greedy degradation
// is itself deterministic and observable: a tight budget yields the same
// FallbackSolves count and the same trace under any tile count, and the
// "fallback" solve status appears in the telemetry.
func TestNodeBudgetFallbackDeterminism(t *testing.T) {
	base := quickConfig()
	base.SimTime = 3
	base.DataUsersPerCell = 16
	base.SolveNodeBudget = 1
	base.FrameMode = FrameSnapshot
	var want *Metrics
	var wantTrace []trace.Record
	for i, tiles := range []int{0, 3} {
		cfg := base
		cfg.FrameParallel = 2
		cfg.Tiles = tiles
		mem := &trace.Memory{}
		cfg.Trace = mem
		m, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want, wantTrace = m, mem.Records
			if m.FallbackSolves == 0 {
				t.Fatal("budget of 1 node triggered no fallbacks; the scenario is too light")
			}
			seen := false
			for _, r := range mem.Records {
				if r.Solve == trace.SolveFallback {
					seen = true
					break
				}
			}
			if !seen {
				t.Error("no fallback status in the trace despite FallbackSolves > 0")
			}
			continue
		}
		if !reflect.DeepEqual(want, m) {
			t.Errorf("tiles=%d: metrics diverged under the node budget", tiles)
		}
		if !reflect.DeepEqual(wantTrace, mem.Records) {
			t.Errorf("tiles=%d: trace diverged under the node budget", tiles)
		}
	}
}
