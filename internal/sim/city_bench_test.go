package sim

import (
	"fmt"
	"testing"
)

// cityConfig mirrors the scenario "city" preset (scenario imports sim, so
// the preset cannot be looked up from here): an 18-ring wrap-around grid —
// 1027 cells of 500 m radius — with 100 data and 20 voice users per cell,
// windowed physics and the tiled snapshot frame mode.
func cityConfig() Config {
	cfg := DefaultConfig()
	cfg.Rings = 18
	cfg.CellRadius = 500
	cfg.DataUsersPerCell = 100
	cfg.VoiceUsersPerCell = 20
	cfg.FrameMode = FrameSnapshot
	cfg.PilotCells = 24
	return cfg
}

// BenchmarkCityTiles measures the city-scale frame loop — 1027 cells,
// 102,700 data users — at increasing tile counts, reporting frames/sec.
// FrameParallel tracks the tile count, so tiles-1 is the single-core
// baseline and tiles-8 is the eight-way fan-out of the same byte-identical
// computation: the ratio of the two frames/sec numbers is the multicore
// scaling the tile/halo decomposition exists for. Engine construction
// (populating ~123k users) happens outside the timer; the loop drives
// whole frames through the same step() the Run loop calls.
func BenchmarkCityTiles(b *testing.B) {
	for _, tiles := range []int{1, 8} {
		b.Run(fmt.Sprintf("tiles-%d", tiles), func(b *testing.B) {
			cfg := cityConfig()
			cfg.Tiles = tiles
			cfg.FrameParallel = tiles
			e, err := NewEngine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			// One untimed frame settles the per-user buffers and first-frame
			// draws, so the timed frames are steady state.
			e.now = 0
			e.step()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.now = float64(e.frame) * cfg.FrameLength
				e.step()
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/sec")
		})
	}
}
