package sim

import (
	"context"
	"fmt"

	"jabasd/internal/stream"
)

// RunReplications runs n independent replications of the scenario in
// parallel (bounded by GOMAXPROCS) and merges their metrics. Replication i
// uses seed cfg.Seed + i, so results are reproducible for a given base seed
// regardless of scheduling. Cancelling the context stops every in-flight
// replication promptly (each engine checks it once per frame) and returns
// the context's error.
func RunReplications(ctx context.Context, cfg Config, n int) (*Aggregate, error) {
	return runReplications(ctx, cfg, n, Run)
}

// runReplications is RunReplications with the per-replication runner
// injectable, so tests can exercise the failure path without needing a
// configuration that validates but crashes mid-simulation.
func runReplications(ctx context.Context, cfg Config, n int, runOne func(context.Context, Config) (*Metrics, error)) (*Aggregate, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sim: need at least one replication, got %d", n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	ms := make([]*Metrics, n)
	agg := &Aggregate{}
	err := stream.Ordered(n, 0,
		func(i int) error {
			// A replication that has not started yet fails fast on a
			// cancelled context instead of simulating a doomed run.
			if err := ctx.Err(); err != nil {
				return err
			}
			repCfg := cfg
			repCfg.Seed = cfg.Seed + uint64(i)
			repCfg.FrameParallel = ResolveFrameParallel(cfg, n)
			if i != 0 {
				// Replications run concurrently but a trace.Sink is
				// single-writer; replication 0 keeps the telemetry, the
				// rest run untraced.
				repCfg.Trace = nil
			}
			m, err := runOne(ctx, repCfg)
			if err != nil {
				if ctx.Err() != nil {
					return err // the cancellation, not a simulation failure
				}
				return fmt.Errorf("sim: replication %d failed: %w", i, err)
			}
			ms[i] = m
			return nil
		},
		func(i int) error {
			agg.AddReplication(ms[i])
			return nil
		})
	if err != nil {
		return nil, err
	}
	return agg, nil
}

// ResolveFrameParallel resolves a run's FrameParallel under an outer
// fan-out of the given width: a snapshot config on the auto setting (0)
// runs its frames inline when fanout > 1 rather than stacking a second
// GOMAXPROCS-wide pool per engine onto already-saturated CPUs, and keeps
// the auto pool for a single run. Explicit worker counts are always
// honoured, and the choice never affects the results (snapshot output is
// byte-identical for any worker count). RunReplications and sweep.Stream
// both apply this.
func ResolveFrameParallel(cfg Config, fanout int) int {
	if fanout > 1 && cfg.FrameMode.normalize() == FrameSnapshot && cfg.FrameParallel == 0 {
		return 1
	}
	return cfg.FrameParallel
}

// CompareSchedulers runs the same scenario (same seeds, so common random
// numbers) once per scheduler kind and returns the aggregates keyed by the
// scheduler kind, preserving the requested order.
func CompareSchedulers(ctx context.Context, cfg Config, kinds []SchedulerKind, reps int) (map[SchedulerKind]*Aggregate, error) {
	out := make(map[SchedulerKind]*Aggregate, len(kinds))
	for _, k := range kinds {
		c := cfg
		c.Scheduler = k
		agg, err := RunReplications(ctx, c, reps)
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			return nil, fmt.Errorf("sim: scheduler %s: %w", k, err)
		}
		out[k] = agg
	}
	return out, nil
}
