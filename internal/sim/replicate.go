package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// RunReplications runs n independent replications of the scenario in
// parallel (bounded by GOMAXPROCS) and merges their metrics. Replication i
// uses seed cfg.Seed + i, so results are reproducible for a given base seed
// regardless of scheduling.
func RunReplications(cfg Config, n int) (*Aggregate, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sim: need at least one replication, got %d", n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	type result struct {
		idx int
		m   *Metrics
		err error
	}
	results := make([]result, n)
	sem := make(chan struct{}, maxParallel())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			repCfg := cfg
			repCfg.Seed = cfg.Seed + uint64(i)
			m, err := Run(repCfg)
			results[i] = result{idx: i, m: m, err: err}
		}(i)
	}
	wg.Wait()

	agg := &Aggregate{}
	for _, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("sim: replication %d failed: %w", r.idx, r.err)
		}
		agg.AddReplication(r.m)
	}
	return agg, nil
}

// maxParallel bounds the replication fan-out.
func maxParallel() int {
	p := runtime.GOMAXPROCS(0)
	if p < 1 {
		p = 1
	}
	return p
}

// CompareSchedulers runs the same scenario (same seeds, so common random
// numbers) once per scheduler kind and returns the aggregates keyed by the
// scheduler kind, preserving the requested order.
func CompareSchedulers(cfg Config, kinds []SchedulerKind, reps int) (map[SchedulerKind]*Aggregate, error) {
	out := make(map[SchedulerKind]*Aggregate, len(kinds))
	for _, k := range kinds {
		c := cfg
		c.Scheduler = k
		agg, err := RunReplications(c, reps)
		if err != nil {
			return nil, fmt.Errorf("sim: scheduler %s: %w", k, err)
		}
		out[k] = agg
	}
	return out, nil
}
