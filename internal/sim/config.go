// Package sim is the dynamic system-level simulator used to evaluate the
// burst admission algorithms, following the methodology the paper describes:
// a multi-cell wideband CDMA network with user mobility, per-frame power
// control effects, soft hand-off (reduced active set), lognormal shadowing,
// Rayleigh fast fading, an adaptive (VTAOC) physical layer and a burst
// admission layer run every frame. Independent replications run in parallel
// across goroutines.
package sim

import (
	"errors"
	"fmt"
	"io"

	"jabasd/internal/channel"
	"jabasd/internal/core"
	"jabasd/internal/fault"
	"jabasd/internal/mac"
	"jabasd/internal/trace"
	"jabasd/internal/traffic"
	"jabasd/internal/vtaoc"
)

// LoadStep describes a mid-run step change in the offered load: at
// simulated time AtSec every data source switches its mean reading (think)
// time to ReadingTimeSec — a shorter time means more frequent downloads, so
// stepping it down models a flash crowd arriving. The current reading
// period's remaining time is rescaled proportionally, so the step takes
// effect immediately instead of one think-time later. The transient
// experiment E12 uses this to measure the admission layer's step response.
type LoadStep struct {
	// AtSec is the simulated time the step applies (>= 0).
	AtSec float64
	// ReadingTimeSec is the new mean reading time in seconds (> 0).
	ReadingTimeSec float64
}

// Direction selects which link the burst traffic uses.
type Direction int

const (
	// Forward simulates forward-link (base-to-mobile) data bursts, limited by
	// the cells' transmit power budget.
	Forward Direction = iota
	// Reverse simulates reverse-link (mobile-to-base) data bursts, limited by
	// the cells' received interference budget.
	Reverse
)

// String names the direction.
func (d Direction) String() string {
	if d == Reverse {
		return "reverse"
	}
	return "forward"
}

// MarshalJSON encodes the direction by name ("forward"/"reverse") so
// configuration files and API payloads stay readable.
func (d Direction) MarshalJSON() ([]byte, error) {
	return []byte(`"` + d.String() + `"`), nil
}

// UnmarshalJSON accepts the names and, for configuration files written
// before the string encoding, the raw ordinals 0 and 1.
func (d *Direction) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"forward"`, `0`:
		*d = Forward
	case `"reverse"`, `1`:
		*d = Reverse
	default:
		return fmt.Errorf("sim: unknown direction %s (want \"forward\" or \"reverse\")", data)
	}
	return nil
}

// FrameMode selects how the per-frame burst admission fans out over cells.
type FrameMode string

const (
	// FrameSequential is the legacy mode: cells run their measurement and
	// scheduling sub-layers one after another in cell-index order, each cell
	// seeing the load the grants of lower-numbered cells added earlier in
	// the same frame. The empty string means FrameSequential.
	FrameSequential FrameMode = "sequential"
	// FrameSnapshot is the paper-faithful mode: every cell builds its
	// admissible region and solves its scheduler ILP against the immutable
	// frame-start load ledger (the previous frame's measurements), and the
	// resulting grants are committed in cell-index order afterwards. The
	// solve phase fans out over FrameParallel workers; because no cell's
	// solution depends on another cell's grant within the frame, the output
	// is byte-identical for any worker count.
	FrameSnapshot FrameMode = "snapshot"
)

// normalize maps the empty mode to FrameSequential.
func (m FrameMode) normalize() FrameMode {
	if m == "" {
		return FrameSequential
	}
	return m
}

// SchedulerKind selects the scheduling sub-layer algorithm.
type SchedulerKind string

// Available scheduler kinds.
const (
	SchedulerJABASD     SchedulerKind = "jaba-sd"
	SchedulerGreedy     SchedulerKind = "jaba-sd-greedy"
	SchedulerFCFS       SchedulerKind = "fcfs"
	SchedulerEqualShare SchedulerKind = "equal-share"
	SchedulerRandom     SchedulerKind = "random"
)

// NewScheduler instantiates the named scheduler.
func NewScheduler(kind SchedulerKind, seed uint64) (core.Scheduler, error) {
	switch kind {
	case SchedulerJABASD, "":
		return core.NewJABASD(), nil
	case SchedulerGreedy:
		return &core.GreedyJABASD{}, nil
	case SchedulerFCFS:
		return &core.FCFS{}, nil
	case SchedulerEqualShare:
		return &core.EqualShare{}, nil
	case SchedulerRandom:
		return core.NewRandom(seed), nil
	default:
		return nil, fmt.Errorf("sim: unknown scheduler %q", kind)
	}
}

// Config holds every parameter of one simulation scenario.
type Config struct {
	// Randomness and duration.
	Seed        uint64
	SimTime     float64 // simulated seconds
	WarmupTime  float64 // statistics discarded before this time
	FrameLength float64 // admission frame, seconds (cdma2000: 20 ms)

	// Topology.
	Rings      int     // hexagonal rings around the centre cell (2 => 19 cells)
	CellRadius float64 // metres
	WrapAround bool

	// Population.
	DataUsersPerCell  int
	VoiceUsersPerCell int

	// Mobility.
	MinSpeed float64 // m/s
	MaxSpeed float64 // m/s

	// Radio / channel.
	PathLoss           channel.PathLossModel
	ShadowSigmaDB      float64
	ShadowDecorrM      float64
	DopplerHz          float64
	NoiseW             float64 // thermal noise power at a receiver, watts
	MaxCellPowerW      float64 // P_max, forward-link power budget per cell
	CommonOverheadFrac float64 // fraction of P_max always spent on pilot/common channels
	VoiceChannelW      float64 // forward power of one active voice channel at cell edge reference
	FCHTargetFraction  float64 // cap on one user's FCH power as a fraction of P_max
	FCHEbIoTargetDB    float64 // forward FCH Eb/Io target
	ReverseRiseLimit   float64 // L_max / thermal-noise (rise over thermal) cap, linear
	SoftHandoffAddDB   float64 // active set add threshold
	PilotMinEcIoDB     float64 // minimum usable pilot
	PilotFraction      float64 // fraction of cell power on the pilot
	ShadowMargin       float64 // κ margin for projected neighbour interference

	// Physical layer.
	VTAOC           vtaoc.Config
	RatePlan        vtaoc.RatePlan
	UseFixedRatePHY bool // ablation: replace the adaptive coder with one fixed mode
	FixedRateMode   int

	// ExactPHY selects the bit-exact reference physics: the scalar-equivalent
	// channel/pilot kernels (math.Pow, dB-domain pilot comparisons), the exact
	// VTAOC integral instead of its lookup table, and full per-frame region
	// rebuilds. It exists to keep golden outputs byte-identical to the
	// pre-batching engine; the default (false) runs the fast SoA kernels —
	// gains within ~1e-12 relative, VTAOC within 5e-7 absolute, statistically
	// equivalent shadowing draws — for a several-fold frame-rate gain.
	ExactPHY bool
	// RegionEpsilon is the relative drift tolerance of the fast path's
	// incremental admissible-region cache: a user's measurements count as
	// changed when a gain moved by more than this fraction since its last
	// region build (0, the default, re-marks every moving user each frame so
	// cached regions are reused only when bitwise unchanged). Ignored when
	// ExactPHY is set.
	RegionEpsilon float64

	// Traffic.
	Data traffic.DataModelConfig

	// Admission layer.
	Scheduler        SchedulerKind
	Objective        core.Objective
	MAC              mac.Config
	MinBurstDuration float64 // T_l of equation (24), seconds

	// FrameMode selects sequential (legacy, intra-frame coupled) or
	// snapshot (paper-faithful, intra-frame independent) admission; empty
	// means sequential.
	FrameMode FrameMode
	// FrameParallel bounds the snapshot-mode solve-phase workers: 1 runs
	// the phase inline without a pool, larger values size the pool, and 0
	// means auto — GOMAXPROCS for a single run, but inline when an outer
	// replication/sweep fan-out already saturates the CPUs (see
	// ResolveFrameParallel). It never affects the results and is ignored
	// in sequential mode.
	FrameParallel int
	// Tiles shards the hex grid into that many contiguous tiles (see
	// internal/shard): each tile owns its cells' queues, warm solver clone,
	// region cache and grant buffers, and the snapshot measure+solve phase
	// fans out one task per tile instead of one per active cell. Values
	// above the cell count are clamped; 0 (the default) keeps the untiled
	// per-cell fan-out. Requires the snapshot frame mode. Like
	// FrameParallel it never affects the results: metrics and traces are
	// byte-identical for any tile count, including 0.
	Tiles int
	// PilotCells bounds each user's measurement window to the nearest
	// PilotCells cells of its spatial-grid bucket (see internal/spatial):
	// pilot sets, shadowing state and interference sums then cost O(window)
	// instead of O(cells) per user per frame, which is what makes 1000-cell
	// maps tractable. 0 (the default) keeps the full per-cell scan and its
	// bit-exact goldens; positive values are a (deterministic) modelling
	// approximation — cells outside the window are treated as negligible —
	// so they change results relative to 0. Must be at least 4 (the active
	// set plus slack) and at most channel.MaxWindowWidth; >= 19 (a two-ring
	// neighbourhood) is recommended.
	PilotCells int

	// Trace, when non-nil, receives per-frame per-cell telemetry records
	// (offered/admitted bursts, cell load, queue length, solve status,
	// burst-delay samples — see trace.Record). The engine wraps it in a
	// trace.Recorder and emits only from its sequential sections, so the
	// stream is byte-identical for any FrameParallel. Warm-up frames are
	// included: transient analysis is what the trace is for. The sink is
	// not part of the scenario (never serialised); RunReplications attaches
	// it to replication 0 only, so a sink never sees interleaved engines.
	Trace trace.Sink `json:"-"`
	// TraceEvery samples every N-th frame into Trace (0 or 1 = every
	// frame). Counters reset each frame, so a sampled row is that frame's
	// activity, not an aggregate since the last sample.
	TraceEvery int

	// SolveTrace, when non-nil, receives the JSONL solve trace: every
	// (frame, cell) scheduling problem the admission layer solves —
	// requests, admissible region and assigned ratios — in commit order
	// (see internal/replay). The stream is byte-identical for any
	// FrameParallel/Tiles. Never serialised; like Trace it is attached to
	// replication 0 only by RunReplications.
	SolveTrace io.Writer `json:"-"`

	// CheckpointEvery, when positive with CheckpointSink set, serialises
	// the full engine state to the sink after every N-th frame (see
	// Engine.Checkpoint). Like the trace it is an execution knob, not part
	// of the scenario: a checkpointing run's outputs are byte-identical to
	// a plain one.
	CheckpointEvery int
	// CheckpointSink receives the periodic checkpoints: it is called with
	// the just-completed frame index and a callback that serialises the
	// engine into the writer it is given (see FileCheckpointSink for the
	// atomic-file implementation). A sink error aborts the run. Never
	// serialised.
	CheckpointSink func(frame int, write func(io.Writer) error) error `json:"-"`

	// LoadStep, when non-nil, applies a mid-run offered-load step change
	// (see LoadStep); nil leaves the traffic stationary.
	LoadStep *LoadStep

	// Faults, when non-nil, injects the piecewise fault schedule (cell
	// outages, transmit-power derating, offered-load curves — see
	// internal/fault) into the run. Semantic: it changes results, is part
	// of the checkpoint's scenario hash, and its effects stay byte-identical
	// for any FrameParallel/Tiles. A nil or empty schedule leaves every
	// output bit-identical to a fault-free build.
	Faults *fault.Schedule
	// SolveNodeBudget, when positive, bounds each exact JABA-SD solve at
	// that many branch-and-bound nodes; a capped solve degrades to the
	// greedy schedule deterministically (counted in Metrics.FallbackSolves,
	// traced as "fallback"). Node counts are a pure function of the
	// problem, so this is the deterministic analogue of a per-frame solver
	// time budget. 0 means unbounded; other schedulers ignore it.
	SolveNodeBudget int

	// Coverage accounting: a completed burst counts as "covered" when its
	// average served rate meets this fraction of the FCH rate.
	CoverageRateFraction float64

	// Direction of the data bursts.
	Direction Direction
}

// DefaultConfig returns the baseline scenario used throughout the
// experiments: 19 wrap-around cells of 1 km radius, 10 data and 8 voice
// users per cell, vehicular mobility, JABA-SD with the delay-aware objective.
func DefaultConfig() Config {
	return Config{
		Seed:        1,
		SimTime:     60,
		WarmupTime:  5,
		FrameLength: 0.02,

		Rings:      2,
		CellRadius: 1000,
		WrapAround: true,

		DataUsersPerCell:  10,
		VoiceUsersPerCell: 8,

		MinSpeed: 1,
		MaxSpeed: 14, // ~3.6 .. 50 km/h

		PathLoss:           channel.DefaultPathLoss(),
		ShadowSigmaDB:      8,
		ShadowDecorrM:      50,
		DopplerHz:          55,
		NoiseW:             4e-15, // ≈ -114 dBm in 3.75 MHz
		MaxCellPowerW:      20,
		CommonOverheadFrac: 0.2,
		VoiceChannelW:      0.25,
		FCHTargetFraction:  0.05,
		FCHEbIoTargetDB:    7,
		ReverseRiseLimit:   10, // 10 dB rise over thermal
		SoftHandoffAddDB:   5,
		PilotMinEcIoDB:     -16,
		PilotFraction:      0.2,
		ShadowMargin:       1.5,

		VTAOC:         vtaoc.DefaultConfig(),
		RatePlan:      vtaoc.DefaultRatePlan(),
		FixedRateMode: 3,

		Data: traffic.DefaultDataModelConfig(),

		Scheduler:        SchedulerJABASD,
		Objective:        core.DefaultObjective(),
		MAC:              mac.DefaultConfig(),
		MinBurstDuration: 0.08,

		CoverageRateFraction: 1.0,
		Direction:            Forward,
	}
}

// Validate checks the configuration for inconsistencies. Every violation is
// reported, joined into one error (errors.Join), so a hand-written scenario
// file or API payload with several mistakes surfaces them all in one round
// trip instead of one per submission.
func (c Config) Validate() error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("sim: "+format, args...))
	}
	if c.SimTime <= 0 || c.FrameLength <= 0 {
		fail("SimTime and FrameLength must be positive")
	}
	if c.WarmupTime < 0 || c.WarmupTime >= c.SimTime {
		fail("WarmupTime must be in [0, SimTime)")
	}
	if c.Rings < 0 || c.CellRadius <= 0 {
		fail("invalid topology")
	}
	if c.DataUsersPerCell < 0 || c.VoiceUsersPerCell < 0 {
		fail("negative user counts")
	}
	if c.MaxCellPowerW <= 0 || c.NoiseW <= 0 {
		fail("power budget and noise must be positive")
	}
	if c.CommonOverheadFrac < 0 || c.CommonOverheadFrac >= 1 {
		fail("CommonOverheadFrac must be in [0,1)")
	}
	if c.ReverseRiseLimit <= 1 {
		fail("ReverseRiseLimit must exceed 1")
	}
	if err := c.VTAOC.Validate(); err != nil {
		errs = append(errs, err)
	}
	if err := c.RatePlan.Validate(); err != nil {
		errs = append(errs, err)
	}
	if err := c.MAC.Validate(); err != nil {
		errs = append(errs, err)
	}
	if err := c.Objective.Validate(); err != nil {
		errs = append(errs, err)
	}
	if _, err := NewScheduler(c.Scheduler, c.Seed); err != nil {
		errs = append(errs, err)
	}
	switch c.FrameMode.normalize() {
	case FrameSequential, FrameSnapshot:
	default:
		fail("unknown frame mode %q (want %q or %q)",
			c.FrameMode, FrameSequential, FrameSnapshot)
	}
	if c.FrameParallel < 0 {
		fail("FrameParallel must be >= 0")
	}
	if c.Tiles < 0 {
		fail("Tiles must be >= 0")
	}
	if c.Tiles > 0 && c.FrameMode.normalize() != FrameSnapshot {
		fail("Tiles requires the snapshot frame mode")
	}
	if c.PilotCells != 0 && (c.PilotCells < 4 || c.PilotCells > channel.MaxWindowWidth) {
		fail("PilotCells must be 0 (full scan) or in [4, %d]", channel.MaxWindowWidth)
	}
	if c.TraceEvery < 0 {
		fail("TraceEvery must be >= 0")
	}
	if c.CheckpointEvery < 0 {
		fail("CheckpointEvery must be >= 0")
	}
	if ls := c.LoadStep; ls != nil {
		if ls.AtSec < 0 || ls.AtSec >= c.SimTime {
			fail("LoadStep.AtSec must be in [0, SimTime)")
		}
		if ls.ReadingTimeSec <= 0 {
			fail("LoadStep.ReadingTimeSec must be positive")
		}
	}
	if c.SolveNodeBudget < 0 {
		fail("SolveNodeBudget must be >= 0")
	}
	if c.Faults != nil {
		cells := 1 + 3*c.Rings*(c.Rings+1)
		if err := c.Faults.Validate(cells, c.SimTime); err != nil {
			errs = append(errs, err)
		}
	}
	if c.UseFixedRatePHY && (c.FixedRateMode < 1 || c.FixedRateMode > c.VTAOC.NumModes) {
		fail("FixedRateMode out of range")
	}
	if c.RegionEpsilon < 0 {
		fail("RegionEpsilon must be >= 0")
	}
	return errors.Join(errs...)
}
