package sim

// Tiled snapshot mode (Config.Tiles > 0): the hex grid is partitioned into
// contiguous cell spans (shard.NewPlan) and each tile exclusively owns the
// admission-side mutable state of its cells — the scheduler clone, the
// region builder, the incremental region cache and the per-frame
// active-cell and grant buffers. The solve phase then fans out one task per
// TILE (instead of one per queued cell), so a worker streams through its
// tile's cells with warm scratch and a private region cache, touching
// nothing another tile writes. The only cross-tile data a tile consumes is
// the frame-start load ledger of cells outside its span — the interference
// halo its users' SCRM reports name (shard.Halo bounds it when the windowed
// physics cap measurement reach). The ledger is immutable during the solve
// phase, so in shared memory the halo exchange degenerates to read-only
// access; a distributed port would ship exactly those halo entries at the
// frame boundary.
//
// Determinism: a cell is solved by exactly one tile, its scheduler RNG is
// reseeded per (frame, cell) via core.CellSeeder, its region-cache entry
// sees the same call sequence whether it lives in the engine-wide cache or
// a tile's private one, and the commit phase walks tiles and cells in
// ascending global order. Metrics and traces are therefore byte-identical
// for ANY tile count — including tiles=1 versus the untiled snapshot path —
// which TestTileCountDeterminism locks in.

import (
	"math"

	"jabasd/internal/core"
	"jabasd/internal/measurement"
	"jabasd/internal/replay"
	"jabasd/internal/shard"
	"jabasd/internal/stream"
)

// simTile owns one contiguous cell span's admission state. Everything a
// solve task mutates lives here, so concurrent tiles share no mutable
// state.
type simTile struct {
	span shard.Span
	// halo lists the cells outside the span whose frame-start loads the
	// tile's solves may read (ascending). Diagnostic: the shared-memory
	// engine reads them straight from the immutable ledger; the list sizes
	// what a distributed port would exchange per frame.
	halo   []int
	worker frameWorker
	// incr is the tile-private admissible-region cache (fast path only).
	// Only the span's cells are ever touched, so per-cell entries evolve
	// exactly as they would in the engine-wide cache.
	incr   *measurement.IncrementalRegions
	active []int        // span cells with queued requests this frame
	grants []cellGrants // one slot per active cell, parallel to active
}

// initTiles sets up the tiled snapshot mode: the cell partition, the halo
// map and one simTile per span, each with its own scheduler clone and (fast
// path) region cache. FrameParallel == 1 keeps the solve phase inline, like
// initFrameWorkers.
func (e *Engine) initTiles(cl core.Cloner) {
	if e.cfg.FrameParallel != 1 {
		e.pool = stream.NewPool(e.cfg.FrameParallel)
	}
	e.plan = shard.NewPlan(e.layout.NumCells(), e.cfg.Tiles)
	// Halo radius: a user queued at a span cell sits within the cell's
	// service area (≤ CellRadius from the site) and measures cells within
	// CandidateRadius + BucketDiagonal of itself (windowed physics). Without
	// a window every cell is measurable, so the halo is the whole map.
	radius := math.Inf(1)
	if e.spix != nil {
		radius = e.layout.CellRadius + e.spix.CandidateRadius() + e.spix.BucketDiagonal()
	}
	halos := shard.Halo(e.plan, e.layout, radius)
	e.tiles = make([]*simTile, e.plan.Tiles())
	for t := range e.tiles {
		tile := &simTile{
			span:   e.plan.Span(t),
			halo:   halos[t],
			worker: frameWorker{sched: cl.Clone()},
		}
		tile.active = make([]int, 0, tile.span.Len())
		tile.grants = make([]cellGrants, tile.span.Len())
		if !e.cfg.ExactPHY {
			tile.incr = measurement.NewIncrementalRegions(e.layout.NumCells(), e.cfg.RegionEpsilon)
		}
		e.tiles[t] = tile
	}
}

// admitTiled is admitSnapshot with tile-grained fan-out: each tile solves
// its own queued cells in ascending order against the immutable frame-start
// ledger, then a sequential commit phase applies the grants in global cell
// order (tiles ascending, active cells ascending within each tile — the
// spans are contiguous, so that IS ascending cell order).
func (e *Engine) admitTiled() {
	any := false
	for _, t := range e.tiles {
		t.active = t.active[:0]
		for k := t.span.Lo; k < t.span.Hi; k++ {
			if e.queues[k].Len() > 0 && !e.cellDown(k) {
				t.active = append(t.active, k)
			}
		}
		if len(t.active) > 0 {
			any = true
		}
	}
	if !any {
		return
	}
	loads := e.loads.Values() // immutable until the commit phase
	solve := func(_, ti int) {
		t := e.tiles[ti]
		for i, k := range t.active {
			g := &t.grants[i]
			g.cell = k
			g.skipped = false
			g.fallback = false
			g.offered = 0
			g.users = g.users[:0]
			g.ratios = g.ratios[:0]
			g.prob = nil
			if !e.gatherCell(k, &t.worker.scratch, loads) {
				continue
			}
			g.offered = len(t.worker.scratch.reqs)
			if cs, ok := t.worker.sched.(core.CellSeeder); ok {
				cs.SeedCell(uint64(e.frame), uint64(k))
			}
			assignment, err := e.solveCell(k, &t.worker.scratch, &t.worker.regionB, t.worker.sched, t.incr, loads)
			if err != nil {
				g.skipped = true
				continue
			}
			g.fallback = assignment.Fallback
			if e.solveRec != nil {
				g.prob = replay.CopyProblem(e.frame, e.now, k, t.worker.scratch.reqs, t.worker.scratch.region, assignment.Ratios)
			}
			for j, m := range assignment.Ratios {
				if m > 0 {
					g.users = append(g.users, t.worker.scratch.users[j])
					g.ratios = append(g.ratios, m)
				}
			}
		}
	}
	if e.pool != nil {
		e.pool.Run(len(e.tiles), solve)
	} else {
		for ti := range e.tiles {
			solve(0, ti)
		}
	}
	for _, t := range e.tiles {
		for i := range t.active {
			g := &t.grants[i]
			e.traceSolve(g.cell, g.offered, g.skipped, g.fallback)
			if g.skipped {
				e.noteSolve(g.cell, true, false)
				continue
			}
			if g.offered > 0 {
				e.noteSolve(g.cell, false, g.fallback)
			}
			if g.prob != nil {
				e.solveRec.Emit(g.prob)
				g.prob = nil
			}
			e.commitCell(g.cell, e.queues[g.cell], g.users, g.ratios)
		}
	}
}
