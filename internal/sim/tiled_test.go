package sim

// Tests for the tiled snapshot mode and the windowed (city-scale) physics:
// the tile-count determinism gate mirroring the FrameParallel gate, the
// full-width identity of the windowed path, and the halo containment bound
// the tile decomposition documents.

import (
	"context"
	"reflect"
	"testing"

	"jabasd/internal/cellular"
	"jabasd/internal/trace"
)

// runTraced runs cfg with an in-memory trace attached and returns the
// metrics fingerprint plus the raw records.
func runTraced(t *testing.T, cfg Config) ([6]float64, []trace.Record) {
	t.Helper()
	mem := &trace.Memory{}
	cfg.Trace = mem
	m, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fingerprint(m), mem.Records
}

// TestTileCountDeterminism is the determinism contract of the tiled engine,
// mirroring TestSnapshotModeIdenticalAcrossWorkerCounts: every cell is
// solved against the immutable frame-start ledger by exactly one tile, its
// scheduler RNG is reseeded per (frame, cell) and grants commit in global
// cell order, so metrics AND traces are exactly identical for any tile
// count — including tiles=1 versus the untiled snapshot path — at any
// solve-phase parallelism.
func TestTileCountDeterminism(t *testing.T) {
	for _, dir := range []Direction{Forward, Reverse} {
		base := quickConfig()
		base.SimTime = 4
		base.Direction = dir
		base.FrameMode = FrameSnapshot
		base.DataUsersPerCell = 8 // enough contention that grants matter
		var wantFP [6]float64
		var wantTrace []trace.Record
		first := true
		for _, par := range []int{1, 2} {
			for _, tiles := range []int{0, 1, 3, 7, 19} {
				cfg := base
				cfg.FrameParallel = par
				cfg.Tiles = tiles
				fp, rec := runTraced(t, cfg)
				if first {
					wantFP, wantTrace = fp, rec
					first = false
					if fp[1] == 0 {
						t.Fatalf("%s: no bursts completed; scenario too light to test determinism", dir)
					}
					continue
				}
				if fp != wantFP {
					t.Errorf("%s tiles=%d par=%d: metrics diverged: %v vs %v", dir, tiles, par, fp, wantFP)
				}
				if !reflect.DeepEqual(rec, wantTrace) {
					t.Errorf("%s tiles=%d par=%d: trace diverged from the untiled snapshot trace", dir, tiles, par)
				}
			}
		}
	}
}

// TestTileCountDeterminismExact covers the exact reference path (no region
// cache, dB-domain kernels) with the same gate.
func TestTileCountDeterminismExact(t *testing.T) {
	base := quickConfig()
	base.SimTime = 3
	base.FrameMode = FrameSnapshot
	base.ExactPHY = true
	var want [6]float64
	var wantTrace []trace.Record
	for i, tiles := range []int{0, 1, 4} {
		cfg := base
		cfg.FrameParallel = 2
		cfg.Tiles = tiles
		fp, rec := runTraced(t, cfg)
		if i == 0 {
			want, wantTrace = fp, rec
			continue
		}
		if fp != want {
			t.Errorf("exact tiles=%d: metrics diverged: %v vs %v", tiles, fp, want)
		}
		if !reflect.DeepEqual(rec, wantTrace) {
			t.Errorf("exact tiles=%d: trace diverged", tiles)
		}
	}
}

// TestWindowedFullWidthIdentity pins the key property the windowed physics
// is built on: when PilotCells covers every cell of the layout, the
// candidate list is the identity, the window retargets are no-ops after the
// first frame, and every summation runs in the same order as the full scan
// — so the windowed engine reproduces the full-scan engine exactly, on both
// the fast and the exact kernels, tiled or not.
func TestWindowedFullWidthIdentity(t *testing.T) {
	for _, exact := range []bool{false, true} {
		for _, dir := range []Direction{Forward, Reverse} {
			base := quickConfig()
			base.SimTime = 4
			base.Direction = dir
			base.ExactPHY = exact
			full, fullTrace := runTraced(t, base)
			win := base
			win.PilotCells = 19 // >= 7 cells: the window is the whole layout
			got, gotTrace := runTraced(t, win)
			if got != full {
				t.Errorf("exact=%v %s: full-width windowed run diverged: %v vs %v", exact, dir, got, full)
			}
			if !reflect.DeepEqual(gotTrace, fullTrace) {
				t.Errorf("exact=%v %s: full-width windowed trace diverged", exact, dir)
			}
			tiled := win
			tiled.FrameMode = FrameSnapshot
			tiled.FrameParallel = 2
			tiled.Tiles = 3
			ref := win
			ref.FrameMode = FrameSnapshot
			ref.FrameParallel = 2
			wantFP, wantTrace := runTraced(t, ref)
			gotFP, gotTrace2 := runTraced(t, tiled)
			if gotFP != wantFP {
				t.Errorf("exact=%v %s: tiled windowed run diverged from untiled snapshot: %v vs %v", exact, dir, gotFP, wantFP)
			}
			if !reflect.DeepEqual(gotTrace2, wantTrace) {
				t.Errorf("exact=%v %s: tiled windowed trace diverged", exact, dir)
			}
		}
	}
}

// TestWindowedNarrowRunCompletes exercises a genuinely restricted window (a
// 4-ring map with a 19-cell window, so retargets actually happen) end to
// end: the run must stay healthy — traffic served, every user's reduced set
// inside its window — while using O(users x window) instead of O(users x
// cells) channel state.
func TestWindowedNarrowRunCompletes(t *testing.T) {
	cfg := quickConfig()
	cfg.Rings = 4 // 61 cells, window covers less than a third
	cfg.SimTime = 4
	cfg.DataUsersPerCell = 2
	cfg.VoiceUsersPerCell = 1
	cfg.PilotCells = 19
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.winB == nil || e.spix == nil {
		t.Fatal("PilotCells did not enable the windowed physics")
	}
	if e.winB.Width() != 19 {
		t.Fatalf("window width = %d, want 19", e.winB.Width())
	}
	m, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.BurstsCompleted == 0 {
		t.Error("windowed run completed no bursts")
	}
	for _, u := range e.users {
		for _, k := range u.reduced {
			if cellular.FindCell(u.cand, int32(k)) < 0 {
				t.Fatalf("user %d reduced-set cell %d outside its candidate window %v", u.id, k, u.cand)
			}
		}
	}
}

// TestTiledHaloContainment verifies the bound initTiles sizes the halos
// with: every cell a user's measurements can name (its candidate window)
// lies inside the span-plus-halo of the tile owning the user's host cell.
// That is the guarantee that lets a distributed port exchange only the halo
// loads at frame boundaries.
func TestTiledHaloContainment(t *testing.T) {
	cfg := quickConfig()
	cfg.Rings = 4
	cfg.SimTime = 2
	cfg.DataUsersPerCell = 2
	cfg.VoiceUsersPerCell = 1
	cfg.PilotCells = 19
	cfg.FrameMode = FrameSnapshot
	cfg.FrameParallel = 1
	cfg.Tiles = 5
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if len(e.tiles) != 5 {
		t.Fatalf("built %d tiles, want 5", len(e.tiles))
	}
	inHalo := make([]map[int]bool, len(e.tiles))
	for ti, tile := range e.tiles {
		inHalo[ti] = make(map[int]bool, len(tile.halo))
		for _, k := range tile.halo {
			inHalo[ti][k] = true
		}
	}
	frames := int(cfg.SimTime / cfg.FrameLength)
	for f := 0; f < frames; f++ {
		e.now = float64(f) * cfg.FrameLength
		e.step()
		for _, u := range e.users {
			ti := e.plan.TileOf(u.hostCell)
			span := e.plan.Span(ti)
			for _, c := range u.cand {
				if !span.Contains(int(c)) && !inHalo[ti][int(c)] {
					t.Fatalf("frame %d: user %d (host %d, tile %d) window cell %d outside span %+v + halo",
						f, u.id, u.hostCell, ti, c, span)
				}
			}
		}
	}
}
