package sim

import (
	"context"
	"fmt"
	"math"

	"jabasd/internal/cellular"
	"jabasd/internal/channel"
	"jabasd/internal/core"
	"jabasd/internal/fault"
	"jabasd/internal/load"
	"jabasd/internal/mac"
	"jabasd/internal/mathx"
	"jabasd/internal/measurement"
	"jabasd/internal/mobility"
	"jabasd/internal/replay"
	"jabasd/internal/rng"
	"jabasd/internal/shard"
	"jabasd/internal/spatial"
	"jabasd/internal/stream"
	"jabasd/internal/trace"
	"jabasd/internal/traffic"
	"jabasd/internal/vtaoc"
)

// schCSIOffsetDB calibrates the supplemental-channel symbol Es/Io from the
// user's downlink geometry (serving-cell power over other-cell interference
// plus noise): the SCH enjoys the spreading/coding gain of the orthogonal
// coder on top of the raw geometry. The exact value only shifts where users
// sit on the VTAOC mode ladder; 12 dB places cell-centre users in the top
// modes and cell-edge users around modes 1-2, matching the qualitative
// behaviour of the adaptive physical layer papers.
const schCSIOffsetDB = 12.0

// nominalOtherCellActivity is the fraction of P_max neighbouring cells are
// assumed to transmit at when computing a user's interference (used for FCH
// power budgeting and geometry; the admission accounting itself uses the
// actual tracked loads).
const nominalOtherCellActivity = 0.75

// phy abstracts the adaptive coder vs the fixed-rate ablation.
type phy interface {
	AverageThroughput(meanCSIDB float64) float64
	Throughput(csiDB float64) float64
}

// burst is an ongoing (granted) data burst.
type burst struct {
	user      *dataUser
	ratio     int
	remaining float64
	// load is the resource this burst consumes per cell while active:
	// forward -> watts of base-station power, reverse -> watts of received
	// interference, fixed at grant time.
	load load.Vec
	// setupRemaining is the MAC set-up delay still to elapse before bits flow.
	setupRemaining float64
	servedBits     float64
	serviceTime    float64
	grantedAt      float64
}

// dataUser is one packet-data mobile. Its physics state — position, fast
// fading and per-cell shadowing/gain — lives in the engine's SoA batches
// (mobB, fadeB, chanB), indexed by id; gain aliases the user's row of the
// channel batch so the admission code reads it exactly as before.
type dataUser struct {
	id       int
	gain     []float64 // aliases chanB.GainRow(id): long-term linear gain to every cell
	pilots   []cellular.PilotMeasurement
	active   []int
	reduced  []int
	hostCell int
	source   *traffic.DataModel
	macM     *mac.Machine

	// ver counts measurement changes (fast path): it is bumped whenever the
	// user's gains moved beyond RegionEpsilon or its reduced set changed, and
	// the incremental region cache keys on it. prevReduced is the previous
	// frame's reduced set for the change test.
	ver         uint64
	prevReduced []int

	// Windowed physics state (PilotCells > 0): cand aliases the user's
	// slot-to-cell row of the channel window (global cell indices,
	// ascending) and bucket is the spatial-grid bucket the window was last
	// targeted at (-1 before the first frame).
	cand   []int32
	bucket int

	queuedReq  *traffic.BurstRequest
	queuedCell int
	firstGrant bool

	fchPower  load.Vec // forward FCH power per reduced-set cell (W), rebuilt per frame
	revFCHRx  load.Vec // reverse FCH received power per cell (W), rebuilt per frame
	revPilot  load.Vec // scratch: reverse pilot report attached to a burst request
	scrm      load.Vec // scratch: SCRM forward pilot report (strongest-first)
	meanCSIdB float64  // local-mean SCH Es/Io (dB)
	geometry  float64  // linear serving-power / (other + noise)
}

// voiceUser is one circuit voice mobile (background load only).
type voiceUser struct {
	model *traffic.VoiceModel
	mob   mobility.Model
	cell  int // serving cell, re-evaluated each frame from position only
}

// Engine runs one replication.
type Engine struct {
	cfg       Config
	layout    *cellular.Layout
	region    mobility.Region
	coder     *vtaoc.Coder
	phy       phy
	scheduler core.Scheduler
	src       *rng.Source

	users  []*dataUser
	voice  []*voiceUser
	queues []*traffic.Queue // per cell
	bursts []*burst

	// Structure-of-arrays physics state for the data users, indexed by user
	// id: waypoint mobility, Jakes fast fading and the long-term channel
	// (path loss x shadowing). Each user's rows are touched only by the
	// goroutine updating that user, so the chunked update fan-out is
	// race-free.
	mobB  *mobility.WaypointBatch
	fadeB *rng.JakesBatch
	chanB *channel.Batch

	// Windowed physics (PilotCells > 0): the spatial bucket index and the
	// windowed channel state. winB embeds the Batch chanB points at (with
	// cells == window width), so the advance kernels and gain rows are
	// shared; spix additionally serves the voice users' nearest-cell
	// queries, replacing their O(cells) scans.
	spix *spatial.Index
	winB *channel.Window

	// incr caches per-cell admissible regions across frames (fast path
	// only; the exact reference path always rebuilds). Safe to share across
	// snapshot workers: a cell is solved by exactly one worker per frame.
	incr *measurement.IncrementalRegions

	// Per-run constants hoisted out of the per-user frame loop. The exact
	// path computes identical values to the per-call originals; the linear
	// pilot thresholds serve the fast path only.
	fchPG      float64 // W/Rb of the FCH
	ebioTarget float64 // linear FCH Eb/Io target
	addFactor  float64 // 10^(-SoftHandoffAddDB/10)
	minEcIo    float64 // 10^(PilotMinEcIoDB/10)

	// loads is the per-cell resource ledger for this frame: forward-link
	// transmit power (W) or reverse-link received power (W) depending on
	// the configured direction. Allocated once, refilled every frame.
	loads *load.Ledger

	// regionB reuses the admissible-region row storage across frames
	// (sequential mode; snapshot workers carry their own builders).
	regionB measurement.RegionBuilder

	// admitScratch holds the per-cell admission working set, reused across
	// cells and frames so the admission loop does not allocate.
	admitScratch admitScratch

	// Snapshot frame mode state, nil/empty in sequential mode: the solve
	// phase's worker pool (nil when FrameParallel == 1), the per-worker
	// scratch, and the per-frame active-cell and grant buffers.
	pool    *stream.Pool
	workers []*frameWorker
	active  []int
	grants  []cellGrants

	// Tiled snapshot mode (Tiles > 0): the contiguous cell partition and
	// the per-tile ownership state replacing workers/active/grants — see
	// tiled.go. The solve phase then fans out one task per tile.
	plan  shard.Plan
	tiles []*simTile

	// Telemetry, nil/empty when cfg.Trace is unset: the recorder wrapping
	// the configured sink and the per-cell frame counters, reset every
	// frame. All writes happen on the engine's sequential sections (gather
	// results are copied out of the per-cell grant slots), so the trace is
	// byte-identical for any FrameParallel.
	rec        *trace.Recorder
	traceCells []traceCell

	// solveRec, non-nil when cfg.SolveTrace is set, streams the solve
	// trace (see internal/replay). Emission happens only on the engine's
	// sequential sections; the parallel solve phases capture deep copies
	// into their grant slots first.
	solveRec *replay.Recorder

	// loadStepDone latches cfg.LoadStep so the step applies exactly once.
	loadStepDone bool

	// fault, non-nil when cfg.Faults carries events, is the per-frame fault
	// state (down mask, derate vector, load-event cursor — see fault.go).
	// faultDirty and anyDown are its per-frame digests, recomputed by
	// applyFaults and read-only for the rest of the frame.
	fault      *fault.State
	faultDirty bool
	anyDown    bool

	// retryPend marks cells whose last attempted solve was skipped (region
	// build or scheduler failure); a subsequent successful solve counts as a
	// recovered retry in Metrics.SolveRetries. The queue keeps the requests
	// either way — the admission layer retries a failed cell next frame by
	// construction — this makes the recovery observable.
	retryPend []bool

	metrics *Metrics
	now     float64
	frame   int
}

// traceCell accumulates one cell's telemetry counters for the current
// frame; see trace.Record for the field semantics.
type traceCell struct {
	offered      int
	admitted     int
	grantedRatio int
	completed    int
	delaySum     float64
	active       int
	spill        int
	solve        string
}

// admitScratch is one admission worker's per-cell working set: the queue
// snapshot, the scheduler requests and the direction-specific measurement
// attachments. It is reused across cells and frames.
type admitScratch struct {
	items []*traffic.BurstRequest
	reqs  []core.Request
	users []*dataUser
	fwd   []measurement.ForwardRequest
	rev   []measurement.ReverseRequest
	csi   []float64 // live users' mean CSI, input to the batched PHY eval
	bp    []float64 // per-user average throughput, batch output
	vers  []uint64  // live users' measurement versions, for the region cache
	// region is the admissible region the last solveCell call built (or
	// fetched from the incremental cache) — kept for the solve trace, which
	// deep-copies it out of this reused scratch.
	region measurement.Region
}

// frameWorker owns the mutable state one snapshot-phase worker needs so the
// concurrent solves never share anything: scratch buffers, a region builder
// and a scheduler instance cloned from the engine's (see core.Cloner).
type frameWorker struct {
	scratch admitScratch
	regionB measurement.RegionBuilder
	sched   core.Scheduler
}

// cellGrants is the outcome of one cell's solve phase, held until the
// commit phase applies it in cell-index order. The slices are reused
// buffers; only entries with a positive ratio are recorded.
type cellGrants struct {
	cell     int
	skipped  bool // region build or scheduler failed; counted, not granted
	fallback bool // exact solve hit its node budget; grants are greedy's
	offered  int  // live requests gathered, for the telemetry trace
	users    []*dataUser
	ratios   []int
	// prob is the deep-copied solve-trace record (nil unless tracing):
	// captured by the worker, emitted by the sequential commit phase so the
	// stream order never depends on worker scheduling.
	prob *replay.Problem
}

// NewEngine builds a ready-to-run engine for the configuration.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	coder, err := vtaoc.New(cfg.VTAOC)
	if err != nil {
		return nil, err
	}
	if !cfg.ExactPHY {
		// Fast path: evaluate the VTAOC ladder through the PR 5 lookup table
		// (documented <= 5e-7 absolute of the exact integral). The exact
		// reference mode keeps the integral so golden outputs stay
		// byte-identical.
		coder.Tabulate()
	}
	var p phy = coder
	if cfg.UseFixedRatePHY {
		fr, err := vtaoc.NewFixedRate(coder, cfg.FixedRateMode)
		if err != nil {
			return nil, err
		}
		p = fr
	}
	sched, err := NewScheduler(cfg.Scheduler, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if j, ok := sched.(*core.JABASD); ok {
		// Graceful degradation: bound the exact solve's node count; a capped
		// solve falls back to the greedy schedule (see core.JABASD.NodeBudget).
		// Clone() carries the budget, so snapshot/tiled workers degrade at
		// exactly the same point.
		j.NodeBudget = cfg.SolveNodeBudget
	}
	layout := cellular.NewHexLayout(cfg.Rings, cfg.CellRadius, cfg.WrapAround)
	w, h := layout.Bounds()
	e := &Engine{
		cfg:       cfg,
		layout:    layout,
		region:    mobility.Region{Width: w, Height: h, Wrap: cfg.WrapAround},
		coder:     coder,
		phy:       p,
		scheduler: sched,
		src:       rng.New(cfg.Seed),
		metrics: &Metrics{
			Scheduler: sched.Name(),
			Direction: cfg.Direction.String(),
			Cells:     layout.NumCells(),
		},
	}
	e.fchPG = cfg.RatePlan.FCHSpreadingGain / cfg.RatePlan.FCHThroughput
	e.ebioTarget = mathx.Linear(cfg.FCHEbIoTargetDB)
	e.addFactor = math.Pow(10, -cfg.SoftHandoffAddDB/10)
	e.minEcIo = math.Pow(10, cfg.PilotMinEcIoDB/10)
	if !cfg.ExactPHY && cfg.Tiles == 0 {
		// Tiled engines skip the shared cache: each tile owns a private
		// IncrementalRegions for its cell span (see initTiles).
		e.incr = measurement.NewIncrementalRegions(layout.NumCells(), cfg.RegionEpsilon)
	}
	if cfg.PilotCells > 0 {
		e.spix = spatial.New(layout, cfg.PilotCells)
	}
	e.queues = make([]*traffic.Queue, layout.NumCells())
	for k := range e.queues {
		e.queues[k] = traffic.NewQueue()
	}
	e.fault = newFaultState(cfg, layout.NumCells())
	e.retryPend = make([]bool, layout.NumCells())
	e.loads = load.NewLedger(layout.NumCells())
	if cfg.Trace != nil {
		e.rec = trace.NewRecorder(cfg.Trace, cfg.TraceEvery)
		e.traceCells = make([]traceCell, layout.NumCells())
	}
	if cfg.SolveTrace != nil {
		kind := cfg.Scheduler
		if kind == "" {
			kind = SchedulerJABASD
		}
		e.solveRec = replay.NewRecorder(cfg.SolveTrace, replay.Header{
			Scheduler:    string(kind),
			Objective:    cfg.Objective,
			MaxRatio:     cfg.RatePlan.MaxSpreadingRatio,
			MAC:          cfg.MAC,
			FrameLengthS: cfg.FrameLength,
			Seed:         cfg.Seed,
		})
	}
	if cfg.FrameMode.normalize() == FrameSnapshot {
		cl, ok := sched.(core.Cloner)
		if !ok {
			return nil, fmt.Errorf("sim: scheduler %s does not implement core.Cloner, required by the snapshot frame mode (one independent instance per worker)", sched.Name())
		}
		if cfg.Tiles > 0 {
			e.initTiles(cl)
		} else {
			e.initFrameWorkers(cl)
		}
	}
	e.populate()
	return e, nil
}

// initFrameWorkers sets up the snapshot mode's worker pool and per-worker
// state. FrameParallel == 1 keeps the solve phase inline (no pool, no
// goroutines) but still runs the snapshot semantics through worker 0, so
// the output is identical to any other worker count.
func (e *Engine) initFrameWorkers(cl core.Cloner) {
	n := 1
	if e.cfg.FrameParallel != 1 {
		e.pool = stream.NewPool(e.cfg.FrameParallel)
		n = e.pool.Workers()
	}
	e.workers = make([]*frameWorker, n)
	for i := range e.workers {
		e.workers[i] = &frameWorker{sched: cl.Clone()}
	}
	e.active = make([]int, 0, e.layout.NumCells())
	e.grants = make([]cellGrants, e.layout.NumCells())
}

// Close releases the snapshot-mode worker pool, if any. Run closes the
// engine when it finishes; tests that drive step() directly on a
// snapshot-mode engine should defer Close themselves. Closing is idempotent
// and a closed engine falls back to the inline solve path.
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.Close()
		e.pool = nil
	}
}

// populate creates the data and voice users. The data users' physics state
// is seeded into the SoA batches from exactly the substreams the former
// per-user objects received (mobility from userSrc.Split(1), fading from
// Split(2), per-cell shadowing from Split(10+k)), so the batch kernels
// reproduce the per-object trajectories bit for bit.
func (e *Engine) populate() {
	nCells := e.layout.NumCells()
	nData := nCells * e.cfg.DataUsersPerCell
	e.mobB = mobility.NewWaypointBatch(e.region, e.cfg.MinSpeed, e.cfg.MaxSpeed, 30, nData)
	e.fadeB = rng.NewJakesBatch(nData, 16, e.cfg.DopplerHz)
	if e.spix != nil {
		// Windowed physics: per-user channel state spans only the candidate
		// window. chanB aliases the window's embedded Batch (cells == window
		// width), so the shared advance/paused/ready plumbing is untouched.
		e.winB = channel.NewWindow(nData, e.spix.Window(), e.cfg.PathLoss, e.cfg.ShadowSigmaDB, e.cfg.ShadowDecorrM)
		e.chanB = e.winB.Batch
	} else {
		e.chanB = channel.NewBatch(nData, nCells, e.cfg.PathLoss, e.cfg.ShadowSigmaDB, e.cfg.ShadowDecorrM)
	}
	uid := 0
	for c := 0; c < nCells; c++ {
		for i := 0; i < e.cfg.DataUsersPerCell; i++ {
			// Split consumes one parent draw per call, so the split order
			// below (1, 2, 3, then 10..10+cells) must match the scalar
			// engine's exactly to keep every substream — and with it the
			// golden outputs — bit-identical.
			userSrc := e.src.Split(uint64(1000 + uid))
			e.mobB.SeedUser(uid, userSrc.Split(1))
			e.fadeB.SeedUser(uid, userSrc.Split(2))
			dataSrc := userSrc.Split(3)
			e.chanB.SeedUser(uid, userSrc, 10)
			u := &dataUser{
				id:       uid,
				gain:     e.chanB.GainRow(uid),
				bucket:   -1,
				source:   traffic.NewDataModel(dataSrc, uid, e.cfg.Data),
				macM:     mac.MustNewMachine(e.cfg.MAC),
				fchPower: load.MakeVec(3),
				revFCHRx: load.MakeVec(3),
				revPilot: load.MakeVec(3),
				scrm:     load.MakeVec(measurement.SCRMMaxPilots),
			}
			if e.winB != nil {
				u.cand = e.winB.CellRow(uid)
			}
			e.users = append(e.users, u)
			uid++
		}
		for i := 0; i < e.cfg.VoiceUsersPerCell; i++ {
			vsrc := e.src.Split(uint64(500000 + c*1000 + i))
			e.voice = append(e.voice, &voiceUser{
				model: traffic.NewVoiceModel(vsrc.Split(1), 1.0, 1.35),
				mob:   mobility.NewRandomWaypoint(vsrc.Split(2), e.region, e.cfg.MinSpeed, e.cfg.MaxSpeed, 30),
				cell:  -1,
			})
		}
	}
}

// Run executes the replication and returns its metrics. Cancelling the
// context stops the frame loop promptly (the context is checked once per
// admission frame, tens of microseconds of work) and returns the context's
// error; the partially accumulated metrics are discarded. A resumed engine
// (Checkpoint.Resume) continues from its checkpointed frame; a fresh one
// starts at 0.
func (e *Engine) Run(ctx context.Context) (*Metrics, error) {
	defer e.Close()
	frames := int(math.Ceil(e.cfg.SimTime / e.cfg.FrameLength))
	for f := e.frame; f < frames; f++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		e.now = float64(f) * e.cfg.FrameLength
		e.step()
		// step advanced e.frame to f+1; a checkpoint is always of a frame
		// boundary, after the frame's trace records were emitted.
		if e.cfg.CheckpointEvery > 0 && e.cfg.CheckpointSink != nil && e.frame%e.cfg.CheckpointEvery == 0 {
			if err := e.cfg.CheckpointSink(e.frame, e.Checkpoint); err != nil {
				return nil, fmt.Errorf("sim: checkpoint at frame %d: %w", e.frame, err)
			}
		}
	}
	e.metrics.QueueLength.Finish(e.now)
	e.metrics.ObservedTime = e.cfg.SimTime - e.cfg.WarmupTime
	if e.rec != nil {
		if err := e.rec.Flush(); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	if e.solveRec != nil {
		if err := e.solveRec.Err(); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	return e.metrics, nil
}

// step advances the system by one frame.
func (e *Engine) step() {
	dt := e.cfg.FrameLength
	if e.traceCells != nil {
		clear(e.traceCells)
	}
	e.applyFaults()
	e.applyLoadStep()
	e.updateVoice(dt)
	e.updateUsers(dt)
	e.migrateQueued()
	e.generateTraffic(dt)
	e.accumulateLoads()
	e.serveBursts(dt)
	e.admit()
	e.collect()
	e.emitTrace()
	e.frame++
}

// applyLoadStep switches every data source to the stepped reading time the
// first frame at or after LoadStep.AtSec. It runs before traffic generation
// so the step's first frame already offers load at the new rate.
func (e *Engine) applyLoadStep() {
	ls := e.cfg.LoadStep
	if ls == nil || e.loadStepDone || e.now < ls.AtSec {
		return
	}
	for _, u := range e.users {
		u.source.SetMeanReadingTime(ls.ReadingTimeSec)
	}
	e.loadStepDone = true
}

// updateVoice advances voice activity and positions. Each voice user's new
// state is a pure function of its own previous state, so the tiled engine
// fans the loop over the worker pool in chunks (a city preset carries tens
// of thousands of voice users and the per-user scan would otherwise be a
// serial Amdahl residue); elsewhere the loop stays sequential, preserving
// the legacy paths bit for bit.
func (e *Engine) updateVoice(dt float64) {
	if e.tiles != nil && e.pool != nil {
		const chunk = 64
		n := (len(e.voice) + chunk - 1) / chunk
		e.pool.Run(n, func(_, task int) {
			lo := task * chunk
			hi := min(lo+chunk, len(e.voice))
			for _, v := range e.voice[lo:hi] {
				e.advanceVoice(v, dt)
			}
		})
		return
	}
	for _, v := range e.voice {
		e.advanceVoice(v, dt)
	}
}

// advanceVoice advances one voice user. The serving cell is a pure function
// of the position, so a paused user (zero travel) keeps its cell without
// the nearest-cell search; the -1 sentinel from populate forces the first
// evaluation. The fast path compares squared distances (saving one sqrt per
// candidate); the exact reference path keeps the metre-domain comparison so
// goldens cannot shift on sqrt-rounding ties. With a spatial index present
// (PilotCells > 0) the search expands bucket rings instead of scanning all
// cells — the index is exhaustively tested to return the very cell the
// linear scans would, tie-breaks included, so the choice of search is
// invisible in the results.
// Under a fault schedule a voice user on an out-of-service cell hands off
// to the nearest surviving cell; paused users re-run the search on frames
// where the down mask changed, so recovery hands them cleanly back.
func (e *Engine) advanceVoice(v *voiceUser, dt float64) {
	v.model.Advance(dt)
	travelled := v.mob.Advance(dt)
	if travelled <= 0 && v.cell >= 0 && !e.faultDirty {
		return
	}
	pos := v.mob.Position()
	switch {
	case e.spix != nil && e.cfg.ExactPHY:
		v.cell = e.spix.NearestCell(pos)
	case e.spix != nil:
		v.cell = e.spix.NearestCellSq(pos)
	case e.cfg.ExactPHY:
		v.cell = e.layout.NearestCell(pos)
	default:
		v.cell = e.layout.NearestCellSq(pos)
	}
	if e.anyDown && e.fault.Down[v.cell] {
		v.cell = e.nearestUpCell(pos, v.cell)
	}
}

// updateUsers advances mobility, channel state, pilot sets and MAC state for
// every data user. Each user's new state is a pure function of its own
// previous state (own mobility model, own fading and shadowing streams), so
// in snapshot mode the updates fan out in chunks over the worker pool and
// the result is identical to the sequential loop.
func (e *Engine) updateUsers(dt float64) {
	if e.pool == nil {
		for _, u := range e.users {
			e.updateUser(u, dt)
		}
		return
	}
	const chunk = 32
	n := (len(e.users) + chunk - 1) / chunk
	e.pool.Run(n, func(_, task int) {
		lo := task * chunk
		hi := min(lo+chunk, len(e.users))
		for _, u := range e.users[lo:hi] {
			e.updateUser(u, dt)
		}
	})
}

// updateUser advances one data user by one frame: position, per-cell gain,
// pilot/active/reduced sets, geometry, FCH ledgers and MAC state. The exact
// reference path (ExactPHY) reproduces the original scalar chain bit for
// bit; the default fast path evaluates the same model through the batched
// fast kernels.
func (e *Engine) updateUser(u *dataUser, dt float64) {
	switch {
	case e.winB != nil && e.cfg.ExactPHY:
		e.updateUserExactWin(u, dt)
	case e.winB != nil:
		e.updateUserFastWin(u, dt)
	case e.cfg.ExactPHY:
		e.updateUserExact(u, dt)
	default:
		e.updateUserFast(u, dt)
	}
}

// updateUserExact is the bit-exact reference frame update. A zero-travel
// frame leaves the shadowing state — and with it every derived quantity,
// down to the FCH ledgers — bitwise unchanged, so after consuming the
// Gaussian draws the reference stream takes anyway, the whole recompute is
// skipped.
func (e *Engine) updateUserExact(u *dataUser, dt float64) {
	travelled := e.mobB.Advance(u.id, dt)
	if travelled == 0 && e.chanB.Ready(u.id) {
		e.chanB.AdvancePausedExact(u.id)
		if e.faultDirty {
			e.refreshPausedUser(u)
			return
		}
		u.macM.AdvanceTo(e.now)
		return
	}
	pos := e.mobB.Position(u.id)
	e.layout.DistancesInto(pos, e.chanB.DistRow(u.id))
	e.chanB.AdvanceExact(u.id, travelled)
	u.pilots = cellular.PilotSetInto(u.pilots, u.gain, e.cfg.PilotFraction, e.cfg.MaxCellPowerW, e.cfg.NoiseW)
	e.filterDownPilots(u)
	u.active = cellular.ActiveSetInto(u.active, u.pilots, e.cfg.SoftHandoffAddDB, e.cfg.PilotMinEcIoDB, 3)
	e.finishMeasurements(u)
}

// updateUserFast is the default frame update: squared distances feed the
// fast channel kernel (FastLog10/FastExp10, ziggurat shadowing draws), the
// pilot and active sets are decided in the linear domain, and a paused user
// skips the frame entirely — its measurements cannot change. The user's
// measurement version is bumped whenever the gains moved beyond
// RegionEpsilon or the reduced set changed, keying the incremental region
// cache.
func (e *Engine) updateUserFast(u *dataUser, dt float64) {
	travelled := e.mobB.Advance(u.id, dt)
	if travelled == 0 && e.chanB.Ready(u.id) {
		if e.faultDirty {
			e.refreshPausedUser(u)
			return
		}
		u.macM.AdvanceTo(e.now)
		return
	}
	pos := e.mobB.Position(u.id)
	e.layout.DistancesSqInto(pos, e.chanB.DistRow(u.id))
	dirty := e.chanB.AdvanceFast(u.id, travelled, e.cfg.RegionEpsilon)
	u.pilots = cellular.PilotSetLinearInto(u.pilots, u.gain, e.cfg.PilotFraction, e.cfg.MaxCellPowerW, e.cfg.NoiseW)
	e.filterDownPilots(u)
	u.active = cellular.ActiveSetLinearInto(u.active, u.pilots, e.addFactor, e.minEcIo, 3)
	e.finishMeasurements(u)
	if !dirty {
		dirty = !intSlicesEqual(u.reduced, u.prevReduced)
	}
	if dirty {
		u.ver++
	}
	u.prevReduced = append(u.prevReduced[:0], u.reduced...)
}

// finishMeasurements derives the admission-facing quantities from the
// freshly updated gains and active set: reduced set, host cell, geometry,
// mean CSI and the FCH ledgers. Identical arithmetic on both the exact and
// the fast path (the inputs differ only by the kernel tolerances).
func (e *Engine) finishMeasurements(u *dataUser) {
	nCells := e.layout.NumCells()
	u.reduced = cellular.ReducedActiveSetInto(u.reduced, u.pilots, u.active)
	if len(u.reduced) == 0 {
		// Degenerate coverage hole: fall back to the strongest cell.
		u.reduced = append(u.reduced, u.pilots[0].Cell)
	}
	u.hostCell = u.reduced[0]

	// Downlink geometry: serving-cell power over other-cell interference
	// plus noise, with neighbours at nominal activity.
	interference := e.cfg.NoiseW
	for k := 0; k < nCells; k++ {
		if k == u.hostCell {
			continue
		}
		interference += nominalOtherCellActivity * e.cfg.MaxCellPowerW * u.gain[k]
	}
	u.geometry = e.cfg.MaxCellPowerW * u.gain[u.hostCell] / interference
	u.meanCSIdB = mathx.DB(u.geometry) + schCSIOffsetDB

	// Forward FCH power needed at each reduced-active-set cell (equation 6
	// inputs): P = EbIo_target * I / (gain * processing gain), capped.
	cap := e.cfg.FCHTargetFraction * e.cfg.MaxCellPowerW
	u.fchPower.Reset()
	for _, k := range u.reduced {
		req := e.ebioTarget * interference / (u.gain[k] * e.fchPG)
		u.fchPower.Set(k, math.Min(req, cap))
	}

	// Reverse FCH received power at every cell, assuming the mobile's
	// reverse power control holds the target at its best cell against a
	// nominal half-limit interference level. Stored normalised by the
	// thermal noise power (rise-over-thermal units) so that the admission
	// arithmetic works on O(1) quantities.
	nominalL := e.cfg.NoiseW * (1 + (e.cfg.ReverseRiseLimit-1)/2)
	bestGain := u.gain[u.hostCell]
	revTx := e.ebioTarget * nominalL / (bestGain * e.fchPG)
	u.revFCHRx.Reset()
	for _, k := range u.reduced {
		u.revFCHRx.Set(k, revTx*u.gain[k]/e.cfg.NoiseW)
	}

	u.macM.AdvanceTo(e.now)
}

// intSlicesEqual reports a == b elementwise.
func intSlicesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// generateTraffic advances the data sources and enqueues new burst requests.
func (e *Engine) generateTraffic(dt float64) {
	for _, u := range e.users {
		req := u.source.Advance(dt, e.now)
		if req == nil {
			continue
		}
		u.queuedReq = req
		u.queuedCell = u.hostCell
		u.firstGrant = false
		e.queues[u.hostCell].Push(req)
		if e.now >= e.cfg.WarmupTime {
			e.metrics.BurstsGenerated++
		}
	}
}

// accumulateLoads recomputes the per-cell resource ledger for this frame
// from the background (voice + FCH) channels and the ongoing bursts.
func (e *Engine) accumulateLoads() {
	switch e.cfg.Direction {
	case Forward:
		e.loads.Fill(e.cfg.CommonOverheadFrac * e.cfg.MaxCellPowerW)
		for _, v := range e.voice {
			// cell < 0 is the pre-first-frame sentinel; step() always runs
			// updateVoice before the loads are accumulated.
			if v.model.Active() && v.cell >= 0 {
				e.loads.Add(v.cell, e.cfg.VoiceChannelW)
			}
		}
		for _, u := range e.users {
			e.loads.AddVec(u.fchPower)
		}
	case Reverse:
		// Reverse-link quantities are tracked in rise-over-thermal units:
		// the noise floor contributes 1 and the budget is ReverseRiseLimit.
		e.loads.Fill(1)
		// Voice users raise the reverse interference of their serving cell by
		// a fixed per-user share of the budget while talking.
		voiceShare := (e.cfg.ReverseRiseLimit - 1) / 40
		for _, v := range e.voice {
			if v.model.Active() && v.cell >= 0 {
				e.loads.Add(v.cell, voiceShare)
			}
		}
		for _, u := range e.users {
			e.loads.AddVec(u.revFCHRx)
		}
	}
	// Ongoing bursts occupy the resource they were granted.
	for _, b := range e.bursts {
		e.loads.AddVec(b.load)
	}
}

// serveBursts delivers bits on the active bursts and retires completed ones.
func (e *Engine) serveBursts(dt float64) {
	remaining := e.bursts[:0]
	for _, b := range e.bursts {
		u := b.user
		if b.setupRemaining > 0 {
			b.setupRemaining -= dt
			b.serviceTime += dt
			remaining = append(remaining, b)
			continue
		}
		// Instantaneous VTAOC throughput rides the fast fading.
		instCSI := u.meanCSIdB + mathx.DB(math.Max(e.fadeB.PowerAt(u.id, e.now), 1e-12))
		bp := e.phy.Throughput(instCSI)
		rate := e.cfg.RatePlan.SCHBitRate(b.ratio, bp)
		delivered := rate * dt
		if delivered > b.remaining {
			delivered = b.remaining
		}
		b.remaining -= delivered
		b.servedBits += delivered
		b.serviceTime += dt
		if e.now >= e.cfg.WarmupTime {
			e.metrics.BitsDelivered += delivered
		}
		u.macM.Touch(e.now)
		if b.remaining <= 0 {
			e.completeBurst(b)
			continue
		}
		remaining = append(remaining, b)
	}
	e.bursts = remaining
}

// completeBurst records statistics for a finished burst and releases the user.
func (e *Engine) completeBurst(b *burst) {
	u := b.user
	req := u.queuedReq
	if req != nil {
		delay := e.now + e.cfg.FrameLength - req.ArrivalTime
		if e.traceCells != nil {
			// The trace keeps warm-up samples: transients are its purpose.
			tc := &e.traceCells[u.queuedCell]
			tc.completed++
			tc.delaySum += delay
		}
		if e.now >= e.cfg.WarmupTime {
			e.metrics.BurstDelay.Add(delay)
			e.metrics.BurstsCompleted++
			if b.serviceTime > 0 {
				avgRate := b.servedBits / b.serviceTime
				e.metrics.ServedRate.Add(avgRate)
				if avgRate >= e.cfg.CoverageRateFraction*e.cfg.RatePlan.FCHBitRate() {
					e.metrics.CoveredBursts++
				}
			}
		}
	}
	u.queuedReq = nil
	u.source.BurstDone()
	u.macM.Touch(e.now)
}

// admit runs the measurement and scheduling sub-layers for every cell, in
// the configured frame mode. All per-cell working storage lives in the
// admission scratch sets and region builders, and the JABA-SD schedulers
// carry their own warm ilp.Solver/greedy scratch (cloned per worker in
// snapshot mode), so the steady-state admission loop is allocation-free
// through the integer programme up to the returned per-cell assignment.
func (e *Engine) admit() {
	if e.tiles != nil {
		e.admitTiled()
		return
	}
	if e.cfg.FrameMode.normalize() == FrameSnapshot {
		e.admitSnapshot()
		return
	}
	e.admitSequential()
}

// admitSequential is the legacy intra-frame-coupled mode: cells admit in
// index order against the live ledger, so cell k's admissible region
// already reflects the grants cells 0..k-1 made earlier in the same frame.
func (e *Engine) admitSequential() {
	loads := e.loads.Values() // live: commits below mutate it in place
	for k := 0; k < e.layout.NumCells(); k++ {
		queue := e.queues[k]
		if queue.Len() == 0 || e.cellDown(k) {
			continue
		}
		if !e.gatherCell(k, &e.admitScratch, loads) {
			continue
		}
		assignment, err := e.solveCell(k, &e.admitScratch, &e.regionB, e.scheduler, e.incr, loads)
		if err != nil {
			// Skip this cell this frame rather than abort the run, but leave
			// a trace: the queue keeps the requests, so the cell is retried
			// next frame (noteSolve counts the recovery when it lands).
			e.noteSolve(k, true, false)
			e.traceSolve(k, len(e.admitScratch.reqs), true, false)
			continue
		}
		e.noteSolve(k, false, assignment.Fallback)
		e.traceSolve(k, len(e.admitScratch.reqs), false, assignment.Fallback)
		if e.solveRec != nil {
			e.solveRec.Emit(replay.CopyProblem(e.frame, e.now, k, e.admitScratch.reqs, e.admitScratch.region, assignment.Ratios))
		}
		e.commitCell(k, queue, e.admitScratch.users, assignment.Ratios)
	}
}

// noteSolve folds one attempted cell-solve's outcome into the robustness
// counters: a skip marks the cell pending retry, a success after a skip is
// a recovered retry, and a budget-capped exact solve that degraded to the
// greedy schedule counts as a fallback. Called only from the sequential
// commit sections, so the counters are deterministic for any worker count.
func (e *Engine) noteSolve(k int, skipped, fallback bool) {
	if skipped {
		e.metrics.SkippedCells++
		e.retryPend[k] = true
		return
	}
	if e.retryPend[k] {
		e.retryPend[k] = false
		e.metrics.SolveRetries++
	}
	if fallback {
		e.metrics.FallbackSolves++
	}
}

// traceSolve records one cell's admission outcome for the telemetry trace:
// the number of live requests gathered and whether the solve was abandoned
// or degraded to the greedy fallback. Cells that never gathered a live
// request stay at trace.SolveIdle.
func (e *Engine) traceSolve(cell, offered int, skipped, fallback bool) {
	if e.traceCells == nil {
		return
	}
	tc := &e.traceCells[cell]
	tc.offered = offered
	switch {
	case skipped:
		tc.solve = trace.SolveSkipped
	case fallback:
		tc.solve = trace.SolveFallback
	case offered > 0:
		tc.solve = trace.SolveOK
	}
}

// admitSnapshot is the paper-faithful mode: a measure+solve phase builds
// every queued cell's admissible region and solves its scheduler ILP
// against the immutable frame-start ledger (the previous frame's
// measurements), fanned out over the worker pool; a commit phase then
// applies the grants in cell-index order. No cell's solution reads another
// cell's grant, so the solves are independent and the output does not
// depend on the worker count; the fixed commit order makes it
// byte-identical as well. Cells may jointly overshoot a shared budget
// within the frame — exactly the paper's semantics, absorbed next frame
// when the ledger is rebuilt from the granted bursts.
func (e *Engine) admitSnapshot() {
	e.active = e.active[:0]
	for k := 0; k < e.layout.NumCells(); k++ {
		if e.queues[k].Len() > 0 && !e.cellDown(k) {
			e.active = append(e.active, k)
		}
	}
	if len(e.active) == 0 {
		return
	}
	loads := e.loads.Values() // immutable until the commit phase
	solve := func(w, i int) {
		fw := e.workers[w]
		k := e.active[i]
		g := &e.grants[i]
		g.cell = k
		g.skipped = false
		g.fallback = false
		g.offered = 0
		g.users = g.users[:0]
		g.ratios = g.ratios[:0]
		g.prob = nil
		if !e.gatherCell(k, &fw.scratch, loads) {
			return
		}
		g.offered = len(fw.scratch.reqs)
		if cs, ok := fw.sched.(core.CellSeeder); ok {
			cs.SeedCell(uint64(e.frame), uint64(k))
		}
		assignment, err := e.solveCell(k, &fw.scratch, &fw.regionB, fw.sched, e.incr, loads)
		if err != nil {
			g.skipped = true
			return
		}
		g.fallback = assignment.Fallback
		if e.solveRec != nil {
			g.prob = replay.CopyProblem(e.frame, e.now, k, fw.scratch.reqs, fw.scratch.region, assignment.Ratios)
		}
		for j, m := range assignment.Ratios {
			if m > 0 {
				g.users = append(g.users, fw.scratch.users[j])
				g.ratios = append(g.ratios, m)
			}
		}
	}
	if e.pool != nil {
		e.pool.Run(len(e.active), solve)
	} else {
		for i := range e.active {
			solve(0, i)
		}
	}
	for i := range e.active {
		g := &e.grants[i]
		e.traceSolve(g.cell, g.offered, g.skipped, g.fallback)
		if g.skipped {
			e.noteSolve(g.cell, true, false)
			continue
		}
		if g.offered > 0 {
			e.noteSolve(g.cell, false, g.fallback)
		}
		if g.prob != nil {
			e.solveRec.Emit(g.prob)
			g.prob = nil
		}
		e.commitCell(g.cell, e.queues[g.cell], g.users, g.ratios)
	}
}

// gatherCell drains cell k's queue into the scratch working set: stale
// entries are dropped from the queue, live requests become core.Requests
// plus their direction-specific measurement attachments. loads is the
// per-cell ledger the reverse-link pilot reports normalise against — the
// live ledger in sequential mode, the frame-start ledger in snapshot mode
// (identical storage; snapshot mode simply defers the mutations). The
// per-user revPilot/scrm scratch is safe to fill concurrently because a
// user has at most one outstanding request, queued in exactly one cell.
// Reports whether anything is left to schedule.
func (e *Engine) gatherCell(k int, s *admitScratch, loads []float64) bool {
	queue := e.queues[k]
	s.items = append(s.items[:0], queue.Items()...)
	s.reqs = s.reqs[:0]
	s.users = s.users[:0]
	s.fwd = s.fwd[:0]
	s.rev = s.rev[:0]
	s.csi = s.csi[:0]
	s.vers = s.vers[:0]
	// First pass: drop stale entries and collect the live users' CSI, so the
	// physical layer evaluates the whole cell in one batched call over the
	// (tabulated) mode ladder. AverageThroughput is a pure function, so the
	// two-pass shape returns exactly the per-item values the interleaved
	// loop produced.
	for _, item := range s.items {
		u := e.userByID(item.UserID)
		if u == nil || u.queuedReq != item {
			queue.Remove(item) // stale entry
			continue
		}
		s.users = append(s.users, u)
		s.csi = append(s.csi, u.meanCSIdB)
	}
	if len(s.users) == 0 {
		return false
	}
	s.bp = e.avgThroughputBatch(s.bp, s.csi)
	for i, u := range s.users {
		item := u.queuedReq
		bp := s.bp[i]
		wait := e.now - item.ArrivalTime
		s.vers = append(s.vers, u.ver)
		s.reqs = append(s.reqs, core.Request{
			UserID:        u.id,
			SizeBits:      item.SizeBits,
			WaitingTime:   wait,
			SetupDelay:    u.macM.SetupDelayNow(e.now),
			Priority:      item.Priority,
			AvgThroughput: bp,
			MaxRatio:      e.cfg.RatePlan.MaxUsefulRatio(item.SizeBits, bp, e.cfg.MinBurstDuration),
		})
		switch e.cfg.Direction {
		case Forward:
			// The request shares the user's FCH ledger: the region builder
			// only reads it, and the region is consumed within this frame.
			s.fwd = append(s.fwd, measurement.ForwardRequest{UserID: u.id, FCHPower: u.fchPower, Alpha: 1})
		case Reverse:
			zeta := 4.0
			u.revPilot.Reset()
			for i := 0; i < u.revFCHRx.Len(); i++ {
				c, x := u.revFCHRx.At(i)
				u.revPilot.Set(c, x/(zeta*math.Max(loads[c], 1)))
			}
			// The pilots are sorted strongest-first, so the first
			// SCRMMaxPilots entries are exactly the SCRM payload.
			u.scrm.Reset()
			for i, pm := range u.pilots {
				if i >= measurement.SCRMMaxPilots {
					break
				}
				u.scrm.Set(pm.Cell, pm.EcIo)
			}
			s.rev = append(s.rev, measurement.ReverseRequest{
				UserID:       u.id,
				HostCell:     u.hostCell,
				ReversePilot: u.revPilot,
				SCRM:         measurement.SCRM{Pilots: u.scrm},
				Zeta:         zeta,
				Alpha:        1,
			})
		}
	}
	return len(s.reqs) > 0
}

// avgThroughputBatch fills dst with the physical layer's average throughput
// for each CSI value. The adaptive coder evaluates the whole vector in one
// batched pass over the (tabulated) ladder; other phy implementations (the
// fixed-rate ablation) fall back to the scalar call per element. Either way
// every element equals e.phy.AverageThroughput of its input.
func (e *Engine) avgThroughputBatch(dst, csi []float64) []float64 {
	if c, ok := e.phy.(*vtaoc.Coder); ok {
		return c.AverageThroughputBatch(dst, csi)
	}
	if cap(dst) < len(csi) {
		dst = make([]float64, len(csi))
	}
	dst = dst[:len(csi)]
	for i, v := range csi {
		dst[i] = e.phy.AverageThroughput(v)
	}
	return dst
}

// solveCell builds cell k's admissible region for the gathered requests
// against the given ledger and solves the scheduling problem with the given
// scheduler and region builder. On the fast path the region comes from the
// given incremental cache (the engine-wide one in sequential/snapshot mode,
// the owning tile's in tiled mode; rebuilt through rb only when the cell's
// request set, measurement versions or — reverse link — involved-cell loads
// changed); the exact reference path passes nil and always rebuilds. The
// returned assignment indexes s.users.
func (e *Engine) solveCell(k int, s *admitScratch, rb *measurement.RegionBuilder, sched core.Scheduler, incr *measurement.IncrementalRegions, loads []float64) (core.Assignment, error) {
	var region measurement.Region
	var err error
	switch e.cfg.Direction {
	case Forward:
		maxLoad := e.cfg.MaxCellPowerW
		if e.fault != nil {
			// Degraded cell: the forward budget is the derated transmit
			// power. Derate is 1 for healthy cells (exact multiply by 1, no
			// bit drift) and the incremental cache recomputes its bounds
			// from MaxLoad on every reuse, so no invalidation is needed.
			maxLoad *= e.fault.Derate[k]
		}
		state := measurement.ForwardState{
			CurrentLoad: loads,
			MaxLoad:     maxLoad,
			GammaS:      e.cfg.RatePlan.GammaS,
		}
		if incr != nil {
			region, _, err = incr.ForwardCell(k, rb, state, s.fwd, s.vers)
		} else {
			region, err = rb.Forward(state, s.fwd)
		}
	case Reverse:
		state := measurement.ReverseState{
			TotalReceived: loads,
			MaxReceived:   e.cfg.ReverseRiseLimit,
			GammaS:        e.cfg.RatePlan.GammaS,
			ShadowMargin:  e.cfg.ShadowMargin,
		}
		if incr != nil {
			region, _, err = incr.ReverseCell(k, rb, state, s.rev, s.vers)
		} else {
			region, err = rb.Reverse(state, s.rev)
		}
	}
	if err != nil {
		return core.Assignment{}, err
	}
	s.region = region
	return sched.Schedule(core.Problem{
		Requests:  s.reqs,
		Region:    region,
		MaxRatio:  e.cfg.RatePlan.MaxSpreadingRatio,
		Objective: e.cfg.Objective,
		MAC:       &e.cfg.MAC,
	})
}

// commitCell applies cell k's grants: granted requests leave the queue,
// bursts start with their per-cell footprint frozen, and the live ledger
// and admission statistics are updated. users[j] receives ratios[j]; zero
// ratios are no-ops.
func (e *Engine) commitCell(k int, queue *traffic.Queue, users []*dataUser, ratios []int) {
	for j, m := range ratios {
		if m <= 0 {
			continue
		}
		if e.traceCells != nil {
			e.traceCells[k].admitted++
			e.traceCells[k].grantedRatio += m
		}
		u := users[j]
		item := u.queuedReq
		queue.Remove(item)
		// Freeze the burst's per-cell footprint at grant time: the user's
		// ledgers are rebuilt every frame, so the burst needs its own copy.
		var granted load.Vec
		switch e.cfg.Direction {
		case Forward:
			granted = u.fchPower.CloneScaled(e.cfg.RatePlan.GammaS * float64(m))
		case Reverse:
			granted = u.revFCHRx.CloneScaled(e.cfg.RatePlan.GammaS * float64(m))
		}
		b := &burst{
			user:           u,
			ratio:          m,
			remaining:      item.SizeBits,
			load:           granted,
			setupRemaining: u.macM.SetupDelayNow(e.now),
			grantedAt:      e.now,
		}
		e.bursts = append(e.bursts, b)
		e.loads.AddVec(granted)
		if e.now >= e.cfg.WarmupTime {
			e.metrics.AssignedRatio.Add(float64(m))
			if !u.firstGrant {
				e.metrics.AdmissionWait.Add(e.now - item.ArrivalTime)
			}
		}
		u.firstGrant = true
	}
}

// collect records per-frame statistics.
func (e *Engine) collect() {
	if e.now < e.cfg.WarmupTime {
		return
	}
	budget := e.cfg.MaxCellPowerW
	if e.cfg.Direction == Reverse {
		budget = e.cfg.ReverseRiseLimit
	}
	for k := 0; k < e.layout.NumCells(); k++ {
		e.metrics.CellLoad.Add(mathx.Clamp(e.loads.Get(k)/budget, 0, 2))
	}
	total := 0
	for _, q := range e.queues {
		total += q.Len()
	}
	e.metrics.QueueLength.Observe(e.now, float64(total))
}

// emitTrace appends one telemetry record per cell for a sampled frame. It
// runs at the end of step, after serve/admit/collect, so the records see
// the frame's completed bursts, the committed grants and the end-of-frame
// queue lengths and loads.
func (e *Engine) emitTrace() {
	if e.rec == nil || !e.rec.Sampled(e.frame) {
		return
	}
	for _, b := range e.bursts {
		e.traceCells[b.user.queuedCell].active++
	}
	budget := e.cfg.MaxCellPowerW
	if e.cfg.Direction == Reverse {
		budget = e.cfg.ReverseRiseLimit
	}
	for k := range e.traceCells {
		tc := &e.traceCells[k]
		solve := tc.solve
		if solve == "" {
			solve = trace.SolveIdle
		}
		down := 0
		if e.cellDown(k) {
			down = 1
		}
		e.rec.Emit(trace.Record{
			Frame:        e.frame,
			TimeS:        e.now,
			Cell:         k,
			Offered:      tc.offered,
			Admitted:     tc.admitted,
			GrantedRatio: tc.grantedRatio,
			Completed:    tc.completed,
			DelaySumS:    tc.delaySum,
			QueueLen:     e.queues[k].Len(),
			ActiveBursts: tc.active,
			Load:         e.loads.Get(k) / budget,
			Down:         down,
			Spill:        tc.spill,
			Solve:        solve,
		})
	}
}

// userByID finds a data user by identifier.
func (e *Engine) userByID(id int) *dataUser {
	if id >= 0 && id < len(e.users) && e.users[id].id == id {
		return e.users[id]
	}
	for _, u := range e.users {
		if u.id == id {
			return u
		}
	}
	return nil
}

// Run executes a single replication of the scenario described by cfg. The
// context cancels the run mid-flight (checked every frame).
func Run(ctx context.Context, cfg Config) (*Metrics, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return e.Run(ctx)
}

// String describes the engine.
func (e *Engine) String() string {
	return fmt.Sprintf("Engine(%s, %d cells, %d data users, %s link)",
		e.scheduler.Name(), e.layout.NumCells(), len(e.users), e.cfg.Direction)
}
