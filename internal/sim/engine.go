package sim

import (
	"fmt"
	"math"

	"jabasd/internal/cellular"
	"jabasd/internal/channel"
	"jabasd/internal/core"
	"jabasd/internal/load"
	"jabasd/internal/mac"
	"jabasd/internal/mathx"
	"jabasd/internal/measurement"
	"jabasd/internal/mobility"
	"jabasd/internal/rng"
	"jabasd/internal/traffic"
	"jabasd/internal/vtaoc"
)

// schCSIOffsetDB calibrates the supplemental-channel symbol Es/Io from the
// user's downlink geometry (serving-cell power over other-cell interference
// plus noise): the SCH enjoys the spreading/coding gain of the orthogonal
// coder on top of the raw geometry. The exact value only shifts where users
// sit on the VTAOC mode ladder; 12 dB places cell-centre users in the top
// modes and cell-edge users around modes 1-2, matching the qualitative
// behaviour of the adaptive physical layer papers.
const schCSIOffsetDB = 12.0

// nominalOtherCellActivity is the fraction of P_max neighbouring cells are
// assumed to transmit at when computing a user's interference (used for FCH
// power budgeting and geometry; the admission accounting itself uses the
// actual tracked loads).
const nominalOtherCellActivity = 0.75

// phy abstracts the adaptive coder vs the fixed-rate ablation.
type phy interface {
	AverageThroughput(meanCSIDB float64) float64
	Throughput(csiDB float64) float64
}

// burst is an ongoing (granted) data burst.
type burst struct {
	user      *dataUser
	ratio     int
	remaining float64
	// load is the resource this burst consumes per cell while active:
	// forward -> watts of base-station power, reverse -> watts of received
	// interference, fixed at grant time.
	load load.Vec
	// setupRemaining is the MAC set-up delay still to elapse before bits flow.
	setupRemaining float64
	servedBits     float64
	serviceTime    float64
	grantedAt      float64
}

// dataUser is one packet-data mobile.
type dataUser struct {
	id       int
	mob      mobility.Model
	fade     *rng.Jakes
	shadow   []*channel.Shadowing
	gain     []float64 // long-term linear power gain to every cell
	pilots   []cellular.PilotMeasurement
	active   []int
	reduced  []int
	hostCell int
	source   *traffic.DataModel
	macM     *mac.Machine

	queuedReq  *traffic.BurstRequest
	queuedCell int
	firstGrant bool

	fchPower  load.Vec // forward FCH power per reduced-set cell (W), rebuilt per frame
	revFCHRx  load.Vec // reverse FCH received power per cell (W), rebuilt per frame
	revPilot  load.Vec // scratch: reverse pilot report attached to a burst request
	scrm      load.Vec // scratch: SCRM forward pilot report (strongest-first)
	meanCSIdB float64  // local-mean SCH Es/Io (dB)
	geometry  float64  // linear serving-power / (other + noise)
}

// voiceUser is one circuit voice mobile (background load only).
type voiceUser struct {
	model *traffic.VoiceModel
	mob   mobility.Model
	cell  int // serving cell, re-evaluated each frame from position only
}

// Engine runs one replication.
type Engine struct {
	cfg       Config
	layout    *cellular.Layout
	region    mobility.Region
	coder     *vtaoc.Coder
	phy       phy
	scheduler core.Scheduler
	src       *rng.Source

	users  []*dataUser
	voice  []*voiceUser
	queues []*traffic.Queue // per cell
	bursts []*burst

	// loads is the per-cell resource ledger for this frame: forward-link
	// transmit power (W) or reverse-link received power (W) depending on
	// the configured direction. Allocated once, refilled every frame.
	loads *load.Ledger

	// regionB reuses the admissible-region row storage across frames.
	regionB measurement.RegionBuilder

	// admitScratch holds the per-cell admission working set, reused across
	// cells and frames so the admission loop does not allocate.
	admitScratch struct {
		items []*traffic.BurstRequest
		reqs  []core.Request
		users []*dataUser
		fwd   []measurement.ForwardRequest
		rev   []measurement.ReverseRequest
	}

	metrics *Metrics
	now     float64
}

// NewEngine builds a ready-to-run engine for the configuration.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	coder, err := vtaoc.New(cfg.VTAOC)
	if err != nil {
		return nil, err
	}
	var p phy = coder
	if cfg.UseFixedRatePHY {
		fr, err := vtaoc.NewFixedRate(coder, cfg.FixedRateMode)
		if err != nil {
			return nil, err
		}
		p = fr
	}
	sched, err := NewScheduler(cfg.Scheduler, cfg.Seed)
	if err != nil {
		return nil, err
	}
	layout := cellular.NewHexLayout(cfg.Rings, cfg.CellRadius, cfg.WrapAround)
	w, h := layout.Bounds()
	e := &Engine{
		cfg:       cfg,
		layout:    layout,
		region:    mobility.Region{Width: w, Height: h, Wrap: cfg.WrapAround},
		coder:     coder,
		phy:       p,
		scheduler: sched,
		src:       rng.New(cfg.Seed),
		metrics: &Metrics{
			Scheduler: sched.Name(),
			Direction: cfg.Direction.String(),
			Cells:     layout.NumCells(),
		},
	}
	e.queues = make([]*traffic.Queue, layout.NumCells())
	for k := range e.queues {
		e.queues[k] = traffic.NewQueue()
	}
	e.loads = load.NewLedger(layout.NumCells())
	e.populate()
	return e, nil
}

// populate creates the data and voice users.
func (e *Engine) populate() {
	nCells := e.layout.NumCells()
	uid := 0
	for c := 0; c < nCells; c++ {
		for i := 0; i < e.cfg.DataUsersPerCell; i++ {
			userSrc := e.src.Split(uint64(1000 + uid))
			u := &dataUser{
				id:       uid,
				mob:      mobility.NewRandomWaypoint(userSrc.Split(1), e.region, e.cfg.MinSpeed, e.cfg.MaxSpeed, 30),
				fade:     rng.NewJakes(userSrc.Split(2), 16, e.cfg.DopplerHz),
				source:   traffic.NewDataModel(userSrc.Split(3), uid, e.cfg.Data),
				macM:     mac.MustNewMachine(e.cfg.MAC),
				gain:     make([]float64, nCells),
				shadow:   make([]*channel.Shadowing, nCells),
				fchPower: load.MakeVec(3),
				revFCHRx: load.MakeVec(3),
				revPilot: load.MakeVec(3),
				scrm:     load.MakeVec(measurement.SCRMMaxPilots),
			}
			for k := 0; k < nCells; k++ {
				u.shadow[k] = channel.NewShadowing(userSrc.Split(uint64(10+k)), e.cfg.ShadowSigmaDB, e.cfg.ShadowDecorrM)
			}
			e.users = append(e.users, u)
			uid++
		}
		for i := 0; i < e.cfg.VoiceUsersPerCell; i++ {
			vsrc := e.src.Split(uint64(500000 + c*1000 + i))
			e.voice = append(e.voice, &voiceUser{
				model: traffic.NewVoiceModel(vsrc.Split(1), 1.0, 1.35),
				mob:   mobility.NewRandomWaypoint(vsrc.Split(2), e.region, e.cfg.MinSpeed, e.cfg.MaxSpeed, 30),
			})
		}
	}
}

// Run executes the replication and returns its metrics.
func (e *Engine) Run() (*Metrics, error) {
	frames := int(math.Ceil(e.cfg.SimTime / e.cfg.FrameLength))
	for f := 0; f < frames; f++ {
		e.now = float64(f) * e.cfg.FrameLength
		e.step()
	}
	e.metrics.QueueLength.Finish(e.now)
	e.metrics.ObservedTime = e.cfg.SimTime - e.cfg.WarmupTime
	return e.metrics, nil
}

// step advances the system by one frame.
func (e *Engine) step() {
	dt := e.cfg.FrameLength
	e.updateVoice(dt)
	e.updateUsers(dt)
	e.generateTraffic(dt)
	e.accumulateLoads()
	e.serveBursts(dt)
	e.admit()
	e.collect()
}

// updateVoice advances voice activity and positions.
func (e *Engine) updateVoice(dt float64) {
	for _, v := range e.voice {
		v.model.Advance(dt)
		v.mob.Advance(dt)
		v.cell = e.layout.NearestCell(v.mob.Position())
	}
}

// updateUsers advances mobility, channel state, pilot sets and MAC state for
// every data user.
func (e *Engine) updateUsers(dt float64) {
	nCells := e.layout.NumCells()
	fchPG := e.cfg.RatePlan.FCHSpreadingGain / e.cfg.RatePlan.FCHThroughput // W/Rb for the FCH
	ebioTarget := mathx.Linear(e.cfg.FCHEbIoTargetDB)
	for _, u := range e.users {
		travelled := u.mob.Advance(dt)
		pos := u.mob.Position()
		for k := 0; k < nCells; k++ {
			u.shadow[k].Advance(travelled)
			lossDB := e.cfg.PathLoss.LossDB(e.layout.Distance(pos, k))
			u.gain[k] = math.Pow(10, (-lossDB+u.shadow[k].CurrentDB())/10)
		}
		u.pilots = cellular.PilotSetInto(u.pilots, u.gain, e.cfg.PilotFraction, e.cfg.MaxCellPowerW, e.cfg.NoiseW)
		u.active = cellular.ActiveSetInto(u.active, u.pilots, e.cfg.SoftHandoffAddDB, e.cfg.PilotMinEcIoDB, 3)
		u.reduced = cellular.ReducedActiveSetInto(u.reduced, u.pilots, u.active)
		if len(u.reduced) == 0 {
			// Degenerate coverage hole: fall back to the strongest cell.
			u.reduced = append(u.reduced, u.pilots[0].Cell)
		}
		u.hostCell = u.reduced[0]

		// Downlink geometry: serving-cell power over other-cell interference
		// plus noise, with neighbours at nominal activity.
		interference := e.cfg.NoiseW
		for k := 0; k < nCells; k++ {
			if k == u.hostCell {
				continue
			}
			interference += nominalOtherCellActivity * e.cfg.MaxCellPowerW * u.gain[k]
		}
		u.geometry = e.cfg.MaxCellPowerW * u.gain[u.hostCell] / interference
		u.meanCSIdB = mathx.DB(u.geometry) + schCSIOffsetDB

		// Forward FCH power needed at each reduced-active-set cell (equation 6
		// inputs): P = EbIo_target * I / (gain * processing gain), capped.
		cap := e.cfg.FCHTargetFraction * e.cfg.MaxCellPowerW
		u.fchPower.Reset()
		for _, k := range u.reduced {
			req := ebioTarget * interference / (u.gain[k] * fchPG)
			u.fchPower.Set(k, math.Min(req, cap))
		}

		// Reverse FCH received power at every cell, assuming the mobile's
		// reverse power control holds the target at its best cell against a
		// nominal half-limit interference level. Stored normalised by the
		// thermal noise power (rise-over-thermal units) so that the admission
		// arithmetic works on O(1) quantities.
		nominalL := e.cfg.NoiseW * (1 + (e.cfg.ReverseRiseLimit-1)/2)
		bestGain := u.gain[u.hostCell]
		revTx := ebioTarget * nominalL / (bestGain * fchPG)
		u.revFCHRx.Reset()
		for _, k := range u.reduced {
			u.revFCHRx.Set(k, revTx*u.gain[k]/e.cfg.NoiseW)
		}

		u.macM.AdvanceTo(e.now)
	}
}

// generateTraffic advances the data sources and enqueues new burst requests.
func (e *Engine) generateTraffic(dt float64) {
	for _, u := range e.users {
		req := u.source.Advance(dt, e.now)
		if req == nil {
			continue
		}
		u.queuedReq = req
		u.queuedCell = u.hostCell
		u.firstGrant = false
		e.queues[u.hostCell].Push(req)
		if e.now >= e.cfg.WarmupTime {
			e.metrics.BurstsGenerated++
		}
	}
}

// accumulateLoads recomputes the per-cell resource ledger for this frame
// from the background (voice + FCH) channels and the ongoing bursts.
func (e *Engine) accumulateLoads() {
	switch e.cfg.Direction {
	case Forward:
		e.loads.Fill(e.cfg.CommonOverheadFrac * e.cfg.MaxCellPowerW)
		for _, v := range e.voice {
			if v.model.Active() {
				e.loads.Add(v.cell, e.cfg.VoiceChannelW)
			}
		}
		for _, u := range e.users {
			e.loads.AddVec(u.fchPower)
		}
	case Reverse:
		// Reverse-link quantities are tracked in rise-over-thermal units:
		// the noise floor contributes 1 and the budget is ReverseRiseLimit.
		e.loads.Fill(1)
		// Voice users raise the reverse interference of their serving cell by
		// a fixed per-user share of the budget while talking.
		voiceShare := (e.cfg.ReverseRiseLimit - 1) / 40
		for _, v := range e.voice {
			if v.model.Active() {
				e.loads.Add(v.cell, voiceShare)
			}
		}
		for _, u := range e.users {
			e.loads.AddVec(u.revFCHRx)
		}
	}
	// Ongoing bursts occupy the resource they were granted.
	for _, b := range e.bursts {
		e.loads.AddVec(b.load)
	}
}

// serveBursts delivers bits on the active bursts and retires completed ones.
func (e *Engine) serveBursts(dt float64) {
	remaining := e.bursts[:0]
	for _, b := range e.bursts {
		u := b.user
		if b.setupRemaining > 0 {
			b.setupRemaining -= dt
			b.serviceTime += dt
			remaining = append(remaining, b)
			continue
		}
		// Instantaneous VTAOC throughput rides the fast fading.
		instCSI := u.meanCSIdB + mathx.DB(math.Max(u.fade.PowerAt(e.now), 1e-12))
		bp := e.phy.Throughput(instCSI)
		rate := e.cfg.RatePlan.SCHBitRate(b.ratio, bp)
		delivered := rate * dt
		if delivered > b.remaining {
			delivered = b.remaining
		}
		b.remaining -= delivered
		b.servedBits += delivered
		b.serviceTime += dt
		if e.now >= e.cfg.WarmupTime {
			e.metrics.BitsDelivered += delivered
		}
		u.macM.Touch(e.now)
		if b.remaining <= 0 {
			e.completeBurst(b)
			continue
		}
		remaining = append(remaining, b)
	}
	e.bursts = remaining
}

// completeBurst records statistics for a finished burst and releases the user.
func (e *Engine) completeBurst(b *burst) {
	u := b.user
	req := u.queuedReq
	if e.now >= e.cfg.WarmupTime && req != nil {
		delay := e.now + e.cfg.FrameLength - req.ArrivalTime
		e.metrics.BurstDelay.Add(delay)
		e.metrics.BurstsCompleted++
		if b.serviceTime > 0 {
			avgRate := b.servedBits / b.serviceTime
			e.metrics.ServedRate.Add(avgRate)
			if avgRate >= e.cfg.CoverageRateFraction*e.cfg.RatePlan.FCHBitRate() {
				e.metrics.CoveredBursts++
			}
		}
	}
	u.queuedReq = nil
	u.source.BurstDone()
	u.macM.Touch(e.now)
}

// admit runs the measurement and scheduling sub-layers for every cell. All
// per-cell working storage lives in e.admitScratch and the engine's region
// builder, so the steady-state admission loop is allocation-free up to the
// scheduler's integer programme.
func (e *Engine) admit() {
	s := &e.admitScratch
	for k := 0; k < e.layout.NumCells(); k++ {
		queue := e.queues[k]
		if queue.Len() == 0 {
			continue
		}
		s.items = append(s.items[:0], queue.Items()...)
		s.reqs = s.reqs[:0]
		s.users = s.users[:0]
		s.fwd = s.fwd[:0]
		s.rev = s.rev[:0]
		for _, item := range s.items {
			u := e.userByID(item.UserID)
			if u == nil || u.queuedReq != item {
				queue.Remove(item) // stale entry
				continue
			}
			bp := e.phy.AverageThroughput(u.meanCSIdB)
			wait := e.now - item.ArrivalTime
			s.reqs = append(s.reqs, core.Request{
				UserID:        u.id,
				SizeBits:      item.SizeBits,
				WaitingTime:   wait,
				SetupDelay:    u.macM.SetupDelayNow(e.now),
				Priority:      item.Priority,
				AvgThroughput: bp,
				MaxRatio:      e.cfg.RatePlan.MaxUsefulRatio(item.SizeBits, bp, e.cfg.MinBurstDuration),
			})
			s.users = append(s.users, u)
			switch e.cfg.Direction {
			case Forward:
				// The request shares the user's FCH ledger: the region builder
				// only reads it, and the region is consumed within this frame.
				s.fwd = append(s.fwd, measurement.ForwardRequest{UserID: u.id, FCHPower: u.fchPower, Alpha: 1})
			case Reverse:
				zeta := 4.0
				u.revPilot.Reset()
				for i := 0; i < u.revFCHRx.Len(); i++ {
					c, x := u.revFCHRx.At(i)
					u.revPilot.Set(c, x/(zeta*math.Max(e.loads.Get(c), 1)))
				}
				// The pilots are sorted strongest-first, so the first
				// SCRMMaxPilots entries are exactly the SCRM payload.
				u.scrm.Reset()
				for i, pm := range u.pilots {
					if i >= measurement.SCRMMaxPilots {
						break
					}
					u.scrm.Set(pm.Cell, pm.EcIo)
				}
				s.rev = append(s.rev, measurement.ReverseRequest{
					UserID:       u.id,
					HostCell:     u.hostCell,
					ReversePilot: u.revPilot,
					SCRM:         measurement.SCRM{Pilots: u.scrm},
					Zeta:         zeta,
					Alpha:        1,
				})
			}
		}
		if len(s.reqs) == 0 {
			continue
		}

		var region measurement.Region
		var err error
		switch e.cfg.Direction {
		case Forward:
			region, err = e.regionB.Forward(measurement.ForwardState{
				CurrentLoad: e.loads.Values(),
				MaxLoad:     e.cfg.MaxCellPowerW,
				GammaS:      e.cfg.RatePlan.GammaS,
			}, s.fwd)
		case Reverse:
			region, err = e.regionB.Reverse(measurement.ReverseState{
				TotalReceived: e.loads.Values(),
				MaxReceived:   e.cfg.ReverseRiseLimit,
				GammaS:        e.cfg.RatePlan.GammaS,
				ShadowMargin:  e.cfg.ShadowMargin,
			}, s.rev)
		}
		if err != nil {
			continue // skip this cell this frame rather than abort the run
		}

		problem := core.Problem{
			Requests:  s.reqs,
			Region:    region,
			MaxRatio:  e.cfg.RatePlan.MaxSpreadingRatio,
			Objective: e.cfg.Objective,
			MAC:       &e.cfg.MAC,
		}
		assignment, err := e.scheduler.Schedule(problem)
		if err != nil {
			continue
		}
		for j, m := range assignment.Ratios {
			if m <= 0 {
				continue
			}
			u := s.users[j]
			item := u.queuedReq
			queue.Remove(item)
			// Freeze the burst's per-cell footprint at grant time: the user's
			// ledgers are rebuilt every frame, so the burst needs its own copy.
			var granted load.Vec
			switch e.cfg.Direction {
			case Forward:
				granted = u.fchPower.CloneScaled(e.cfg.RatePlan.GammaS * float64(m))
			case Reverse:
				granted = u.revFCHRx.CloneScaled(e.cfg.RatePlan.GammaS * float64(m))
			}
			b := &burst{
				user:           u,
				ratio:          m,
				remaining:      item.SizeBits,
				load:           granted,
				setupRemaining: u.macM.SetupDelayNow(e.now),
				grantedAt:      e.now,
			}
			e.bursts = append(e.bursts, b)
			e.loads.AddVec(granted)
			if e.now >= e.cfg.WarmupTime {
				e.metrics.AssignedRatio.Add(float64(m))
				if !u.firstGrant {
					e.metrics.AdmissionWait.Add(e.now - item.ArrivalTime)
				}
			}
			u.firstGrant = true
		}
	}
}

// collect records per-frame statistics.
func (e *Engine) collect() {
	if e.now < e.cfg.WarmupTime {
		return
	}
	budget := e.cfg.MaxCellPowerW
	if e.cfg.Direction == Reverse {
		budget = e.cfg.ReverseRiseLimit
	}
	for k := 0; k < e.layout.NumCells(); k++ {
		e.metrics.CellLoad.Add(mathx.Clamp(e.loads.Get(k)/budget, 0, 2))
	}
	total := 0
	for _, q := range e.queues {
		total += q.Len()
	}
	e.metrics.QueueLength.Observe(e.now, float64(total))
}

// userByID finds a data user by identifier.
func (e *Engine) userByID(id int) *dataUser {
	if id >= 0 && id < len(e.users) && e.users[id].id == id {
		return e.users[id]
	}
	for _, u := range e.users {
		if u.id == id {
			return u
		}
	}
	return nil
}

// Run executes a single replication of the scenario described by cfg.
func Run(cfg Config) (*Metrics, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return e.Run()
}

// String describes the engine.
func (e *Engine) String() string {
	return fmt.Sprintf("Engine(%s, %d cells, %d data users, %s link)",
		e.scheduler.Name(), e.layout.NumCells(), len(e.users), e.cfg.Direction)
}
