package sim

import (
	"context"
	"math"
	"testing"

	"jabasd/internal/core"
)

// quickConfig returns a small, fast scenario for unit tests: 7 cells, short
// simulated time, aggressive traffic so bursts actually happen.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Rings = 1
	cfg.SimTime = 8
	cfg.WarmupTime = 1
	cfg.FrameLength = 0.05
	cfg.DataUsersPerCell = 4
	cfg.VoiceUsersPerCell = 4
	cfg.Data.MeanReadingTimeSec = 2
	cfg.Data.MaxSizeBits = 400_000
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.SimTime = 0 },
		func(c *Config) { c.FrameLength = 0 },
		func(c *Config) { c.WarmupTime = c.SimTime + 1 },
		func(c *Config) { c.Rings = -1 },
		func(c *Config) { c.CellRadius = 0 },
		func(c *Config) { c.DataUsersPerCell = -1 },
		func(c *Config) { c.MaxCellPowerW = 0 },
		func(c *Config) { c.NoiseW = 0 },
		func(c *Config) { c.CommonOverheadFrac = 1 },
		func(c *Config) { c.ReverseRiseLimit = 1 },
		func(c *Config) { c.VTAOC.NumModes = 0 },
		func(c *Config) { c.RatePlan.GammaS = 0 },
		func(c *Config) { c.MAC.T3 = c.MAC.T2 - 1 },
		func(c *Config) { c.Objective.RateScale = 0 },
		func(c *Config) { c.Scheduler = "bogus" },
		func(c *Config) { c.UseFixedRatePHY = true; c.FixedRateMode = 99 },
	}
	for i, mut := range mutations {
		c := DefaultConfig()
		mut(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d should invalidate the config", i)
		}
	}
}

func TestDirectionString(t *testing.T) {
	if Forward.String() != "forward" || Reverse.String() != "reverse" {
		t.Error("Direction.String broken")
	}
}

func TestNewSchedulerKinds(t *testing.T) {
	kinds := []SchedulerKind{SchedulerJABASD, SchedulerGreedy, SchedulerFCFS, SchedulerEqualShare, SchedulerRandom, ""}
	for _, k := range kinds {
		if _, err := NewScheduler(k, 1); err != nil {
			t.Errorf("NewScheduler(%q) failed: %v", k, err)
		}
	}
	if _, err := NewScheduler("nope", 1); err == nil {
		t.Error("unknown scheduler should fail")
	}
}

func TestRunForwardProducesTraffic(t *testing.T) {
	cfg := quickConfig()
	m, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.BurstsGenerated == 0 {
		t.Fatal("no bursts generated; traffic model or warm-up is broken")
	}
	if m.BurstsCompleted == 0 {
		t.Fatal("no bursts completed; admission or service is broken")
	}
	if m.BurstDelay.Len() == 0 {
		t.Error("no delay samples recorded")
	}
	if m.MeanBurstDelay() <= 0 {
		t.Error("mean delay should be positive")
	}
	if m.ThroughputPerCell() <= 0 {
		t.Error("throughput should be positive")
	}
	if m.CellLoad.Mean() <= 0 || m.CellLoad.Mean() > 1.5 {
		t.Errorf("mean cell load = %v, expected (0, 1.5]", m.CellLoad.Mean())
	}
	if m.Cells != 7 {
		t.Errorf("cells = %d, want 7", m.Cells)
	}
	// The ratio counts completions and generations inside the observed
	// window independently, so a burst generated just before the warm-up
	// cutoff that completes just after it can push the ratio slightly above
	// 1 on a short run; anything well beyond that means double counting.
	if m.CompletionRatio() <= 0 || m.CompletionRatio() > 1.1 {
		t.Errorf("completion ratio = %v", m.CompletionRatio())
	}
	if m.Coverage() < 0 || m.Coverage() > 1 {
		t.Errorf("coverage = %v", m.Coverage())
	}
	if m.String() == "" {
		t.Error("metrics String empty")
	}
}

func TestRunReverseLink(t *testing.T) {
	cfg := quickConfig()
	cfg.Direction = Reverse
	m, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Direction != "reverse" {
		t.Errorf("direction = %q", m.Direction)
	}
	if m.BurstsGenerated == 0 || m.BurstsCompleted == 0 {
		t.Fatalf("reverse-link run served nothing: %d/%d", m.BurstsCompleted, m.BurstsGenerated)
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	cfg := quickConfig()
	cfg.SimTime = 4
	a, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.BurstsGenerated != b.BurstsGenerated || a.BurstsCompleted != b.BurstsCompleted {
		t.Errorf("same seed produced different burst counts: %d/%d vs %d/%d",
			a.BurstsCompleted, a.BurstsGenerated, b.BurstsCompleted, b.BurstsGenerated)
	}
	if math.Abs(a.MeanBurstDelay()-b.MeanBurstDelay()) > 1e-12 {
		t.Error("same seed produced different delays")
	}
	if math.Abs(a.BitsDelivered-b.BitsDelivered) > 1e-6 {
		t.Error("same seed produced different delivered bits")
	}
}

func TestRunDifferentSeedsDiffer(t *testing.T) {
	cfg := quickConfig()
	cfg.SimTime = 4
	a, _ := Run(context.Background(), cfg)
	cfg.Seed = 999
	b, _ := Run(context.Background(), cfg)
	if a.BitsDelivered == b.BitsDelivered && a.BurstsGenerated == b.BurstsGenerated &&
		a.MeanBurstDelay() == b.MeanBurstDelay() {
		t.Error("different seeds produced identical results; randomisation suspect")
	}
}

func TestRunAllSchedulers(t *testing.T) {
	for _, k := range []SchedulerKind{SchedulerJABASD, SchedulerGreedy, SchedulerFCFS, SchedulerEqualShare, SchedulerRandom} {
		cfg := quickConfig()
		cfg.SimTime = 5
		cfg.Scheduler = k
		m, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if m.BurstsCompleted == 0 {
			t.Errorf("%s completed no bursts", k)
		}
	}
}

func TestRunFixedRatePHYAblation(t *testing.T) {
	cfg := quickConfig()
	cfg.SimTime = 5
	cfg.UseFixedRatePHY = true
	cfg.FixedRateMode = 2
	m, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.BurstsGenerated == 0 {
		t.Error("fixed-rate ablation generated no traffic")
	}
}

func TestInvalidConfigRejectedByRun(t *testing.T) {
	cfg := quickConfig()
	cfg.SimTime = 0
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Error("Run should reject invalid config")
	}
	if _, err := NewEngine(cfg); err == nil {
		t.Error("NewEngine should reject invalid config")
	}
}

func TestEngineString(t *testing.T) {
	e, err := NewEngine(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if e.String() == "" {
		t.Error("engine String empty")
	}
}

func TestRunReplicationsParallelMerge(t *testing.T) {
	cfg := quickConfig()
	cfg.SimTime = 4
	agg, err := RunReplications(context.Background(), cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Replications != 3 {
		t.Errorf("replications = %d", agg.Replications)
	}
	if agg.MeanDelay.Count() != 3 || agg.Throughput.Count() != 3 {
		t.Error("aggregate should hold one observation per replication")
	}
	if agg.MeanDelay.Mean() <= 0 {
		t.Error("aggregate delay should be positive")
	}
	if agg.String() == "" {
		t.Error("aggregate String empty")
	}
	if _, err := RunReplications(context.Background(), cfg, 0); err == nil {
		t.Error("zero replications should fail")
	}
	bad := cfg
	bad.SimTime = 0
	if _, err := RunReplications(context.Background(), bad, 2); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestRunReplicationsReproducible(t *testing.T) {
	cfg := quickConfig()
	cfg.SimTime = 3
	a, err := RunReplications(context.Background(), cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunReplications(context.Background(), cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.MeanDelay.Mean()-b.MeanDelay.Mean()) > 1e-12 {
		t.Error("replication aggregate not reproducible for fixed seed")
	}
}

func TestCompareSchedulers(t *testing.T) {
	cfg := quickConfig()
	cfg.SimTime = 4
	kinds := []SchedulerKind{SchedulerJABASD, SchedulerFCFS}
	out, err := CompareSchedulers(context.Background(), cfg, kinds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("expected 2 aggregates, got %d", len(out))
	}
	for _, k := range kinds {
		if out[k] == nil || out[k].Replications != 1 {
			t.Errorf("missing aggregate for %s", k)
		}
	}
	bad := cfg
	bad.SimTime = 0
	if _, err := CompareSchedulers(context.Background(), bad, kinds, 1); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestHigherLoadIncreasesDelay(t *testing.T) {
	// Doubling the data population should not reduce the mean burst delay:
	// the headline qualitative behaviour every admission scheme must show.
	light := quickConfig()
	light.SimTime = 10
	light.DataUsersPerCell = 2
	heavy := light
	heavy.DataUsersPerCell = 14
	lm, err := Run(context.Background(), light)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := Run(context.Background(), heavy)
	if err != nil {
		t.Fatal(err)
	}
	if lm.BurstsCompleted == 0 || hm.BurstsCompleted == 0 {
		t.Skip("not enough completions in the short test run to compare")
	}
	if hm.MeanBurstDelay()+1e-9 < lm.MeanBurstDelay()*0.5 {
		t.Errorf("heavy load delay (%v) implausibly below light load delay (%v)",
			hm.MeanBurstDelay(), lm.MeanBurstDelay())
	}
}

func TestObjectiveJ1VersusJ2RunsBoth(t *testing.T) {
	cfg := quickConfig()
	cfg.SimTime = 5
	cfg.Objective = core.Objective{Kind: core.ObjectiveThroughput}
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatalf("J1 run failed: %v", err)
	}
	cfg.Objective = core.DefaultObjective()
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatalf("J2 run failed: %v", err)
	}
}

// fingerprint collapses a replication's metrics into exact values that any
// semantic change to the frame loop would perturb.
func fingerprint(m *Metrics) [6]float64 {
	return [6]float64{
		float64(m.BurstsGenerated),
		float64(m.BurstsCompleted),
		m.BitsDelivered,
		m.BurstDelay.Mean(),
		m.CellLoad.Mean(),
		m.AssignedRatio.Mean(),
	}
}

// TestSnapshotModeIdenticalAcrossWorkerCounts is the determinism contract of
// the snapshot frame mode: because every cell solves against the immutable
// frame-start ledger and grants commit in fixed cell order, the output is
// exactly identical whether the solve phase runs inline, on one pooled
// worker, or on many.
func TestSnapshotModeIdenticalAcrossWorkerCounts(t *testing.T) {
	base := quickConfig()
	base.SimTime = 4
	base.FrameMode = FrameSnapshot
	var want [6]float64
	for i, par := range []int{1, 2, 8, 0} {
		cfg := base
		cfg.FrameParallel = par
		m, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("FrameParallel=%d: %v", par, err)
		}
		got := fingerprint(m)
		if i == 0 {
			want = got
			if m.BurstsCompleted == 0 {
				t.Fatal("snapshot run completed no bursts; scenario too light to test determinism")
			}
			continue
		}
		if got != want {
			t.Errorf("FrameParallel=%d diverged: %v vs %v", par, got, want)
		}
	}
}

// TestSnapshotModeIdenticalAcrossWorkerCountsRandomScheduler covers the
// stateful-scheduler path: the Random scheduler's permutations are reseeded
// per (frame, cell) in snapshot mode, so its output too must not depend on
// the worker count or the cell→worker assignment.
func TestSnapshotModeIdenticalAcrossWorkerCountsRandomScheduler(t *testing.T) {
	base := quickConfig()
	base.SimTime = 4
	base.Scheduler = SchedulerRandom
	base.FrameMode = FrameSnapshot
	var want [6]float64
	for i, par := range []int{1, 4} {
		cfg := base
		cfg.FrameParallel = par
		m, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("FrameParallel=%d: %v", par, err)
		}
		if got := fingerprint(m); i == 0 {
			want = got
		} else if got != want {
			t.Errorf("random scheduler diverged across worker counts: %v vs %v", got, want)
		}
	}
}

// TestFrameModesAgreeOnSingleCell pins down where sequential and snapshot
// admission are allowed to diverge: within one frame, sequential mode lets
// cell k see the grants of cells < k, snapshot mode does not. With a single
// cell there are no other cells to couple to, so the two modes must be
// exactly identical — any difference here would mean the snapshot refactor
// changed the per-cell admission itself.
func TestFrameModesAgreeOnSingleCell(t *testing.T) {
	for _, dir := range []Direction{Forward, Reverse} {
		cfg := quickConfig()
		cfg.SimTime = 5
		cfg.Rings = 0 // one cell
		cfg.DataUsersPerCell = 8
		cfg.Direction = dir
		seq, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.FrameMode = FrameSnapshot
		cfg.FrameParallel = 2
		snap, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if seq.BurstsCompleted == 0 {
			t.Fatalf("%s: no bursts completed; scenario too light", dir)
		}
		if fingerprint(seq) != fingerprint(snap) {
			t.Errorf("%s: single-cell run diverged between frame modes: %v vs %v",
				dir, fingerprint(seq), fingerprint(snap))
		}
	}
}

// TestFrameModesDivergeUnderMultiCellLoad is the counterpart: with many
// loaded cells, sequential mode's intra-frame coupling (later cells see
// earlier cells' grants in the shared ledger) must eventually produce a
// different trajectory than the snapshot semantics. If this test ever
// fails, the two modes have collapsed into one and the FrameMode knob is
// dead code.
func TestFrameModesDivergeUnderMultiCellLoad(t *testing.T) {
	cfg := quickConfig()
	cfg.SimTime = 8
	cfg.DataUsersPerCell = 14 // enough contention for cross-cell coupling
	seq, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FrameMode = FrameSnapshot
	snap, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.BurstsCompleted == 0 || snap.BurstsCompleted == 0 {
		t.Fatal("no bursts completed; scenario too light to couple cells")
	}
	if fingerprint(seq) == fingerprint(snap) {
		t.Error("sequential and snapshot modes produced identical output under multi-cell load; intra-frame coupling lost")
	}
}

// TestSnapshotModeRequiresClonableScheduler documents the enforcement path:
// the snapshot mode hands every worker its own scheduler instance, so a
// scheduler that cannot clone itself is rejected at engine construction.
func TestSnapshotModeRequiresClonableScheduler(t *testing.T) {
	cfg := quickConfig()
	cfg.FrameMode = FrameSnapshot
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("built-in schedulers all implement core.Cloner: %v", err)
	}
	e.Close()
	cfg.FrameMode = "warp"
	if _, err := NewEngine(cfg); err == nil {
		t.Error("unknown frame mode should be rejected")
	}
	cfg.FrameMode = FrameSnapshot
	cfg.FrameParallel = -1
	if _, err := NewEngine(cfg); err == nil {
		t.Error("negative FrameParallel should be rejected")
	}
}

// TestIncrementalRegionsMatchFullRebuild is the correctness contract of the
// incremental region cache: with RegionEpsilon = 0 a cached region is reused
// only when its inputs are bitwise unchanged, so for every frame mode and
// worker count the cache-enabled engine must produce exactly the output of
// the same engine rebuilding every region from scratch (ForceFull). The
// static-user scenario pins that the equality is not vacuous — paused users
// keep their measurement versions, so the cache actually serves hits there.
func TestIncrementalRegionsMatchFullRebuild(t *testing.T) {
	run := func(cfg Config, forceFull bool) (*Metrics, uint64) {
		t.Helper()
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if e.incr == nil {
			t.Fatal("fast path engine has no incremental region cache")
		}
		e.incr.ForceFull = forceFull
		m, err := e.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		hits, _ := e.incr.Stats()
		return m, hits
	}
	scenarios := []struct {
		name     string
		mutate   func(*Config)
		wantHits bool
	}{
		// Static users pause forever after placement: measurement versions
		// freeze, so stable request queues reuse their cached regions.
		{"static", func(c *Config) { c.MinSpeed, c.MaxSpeed = 0, 0 }, true},
		// Moving users re-mark dirty every frame at epsilon 0; the cache
		// degenerates to full rebuilds and must still match exactly.
		{"moving", func(c *Config) {}, false},
	}
	modes := []struct {
		mode FrameMode
		par  int
	}{
		{FrameSequential, 0},
		{FrameSnapshot, 1},
		{FrameSnapshot, 2},
		{FrameSnapshot, 8},
	}
	for _, sc := range scenarios {
		for _, dir := range []Direction{Forward, Reverse} {
			base := quickConfig()
			base.SimTime = 4
			base.Direction = dir
			// Enough contention that requests wait in queue across frames —
			// a cache hit needs the same request set in consecutive builds.
			base.DataUsersPerCell = 14
			sc.mutate(&base)
			for _, mc := range modes {
				cfg := base
				cfg.FrameMode = mc.mode
				cfg.FrameParallel = mc.par
				full, _ := run(cfg, true)
				incr, hits := run(cfg, false)
				if fingerprint(full) != fingerprint(incr) {
					t.Errorf("%s %s %s/par=%d: incremental diverged from full rebuild: %v vs %v",
						sc.name, dir, mc.mode, mc.par, fingerprint(incr), fingerprint(full))
				}
				// Reverse-link reuse additionally requires the involved
				// cells' ledger loads to match bitwise at epsilon 0, and
				// voice activity perturbs them every frame — so only the
				// forward link is required to actually serve hits here.
				if sc.wantHits && dir == Forward && hits == 0 {
					t.Errorf("%s %s %s/par=%d: incremental cache never hit", sc.name, dir, mc.mode, mc.par)
				}
			}
		}
	}
}

// TestRegionEpsilonReuse covers the drift-tolerant cache mode: with a
// positive RegionEpsilon slowly moving users stay below the dirty threshold
// for stretches of frames, so the cache serves hits even though everyone is
// in motion, and the run still completes bursts. (Outputs may differ from a
// full rebuild by design — the reused rows are up to epsilon stale.)
func TestRegionEpsilonReuse(t *testing.T) {
	cfg := quickConfig()
	cfg.SimTime = 4
	cfg.MaxSpeed = 2          // slow walkers
	cfg.ShadowDecorrM = 500   // long decorrelation: shadowing drifts gently
	cfg.DataUsersPerCell = 14 // enough contention that requests wait in queue
	cfg.RegionEpsilon = 0.05
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := e.incr.Stats()
	if hits == 0 {
		t.Errorf("no cache hits with RegionEpsilon=%g (misses=%d)", cfg.RegionEpsilon, misses)
	}
	if m.BurstsCompleted == 0 {
		t.Error("epsilon run completed no bursts")
	}
}
