package sim

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunReplicationsSameAggregateAcrossGOMAXPROCS pins the determinism
// contract: the merged aggregate is bit-identical whether the replications
// run one at a time or fully in parallel, because seeds derive from the
// replication index and the merge happens in input order.
func TestRunReplicationsSameAggregateAcrossGOMAXPROCS(t *testing.T) {
	cfg := quickConfig()
	cfg.SimTime = 3

	old := runtime.GOMAXPROCS(1)
	serial, serialErr := RunReplications(context.Background(), cfg, 3)
	runtime.GOMAXPROCS(old)
	if serialErr != nil {
		t.Fatal(serialErr)
	}

	parallel, err := RunReplications(context.Background(), cfg, 3)
	if err != nil {
		t.Fatal(err)
	}

	type probe struct {
		name string
		from func(*Aggregate) float64
	}
	probes := []probe{
		{"mean delay", func(a *Aggregate) float64 { return a.MeanDelay.Mean() }},
		{"p90 delay", func(a *Aggregate) float64 { return a.P90Delay.Mean() }},
		{"throughput", func(a *Aggregate) float64 { return a.Throughput.Mean() }},
		{"coverage", func(a *Aggregate) float64 { return a.Coverage.Mean() }},
		{"cell load", func(a *Aggregate) float64 { return a.CellLoad.Mean() }},
		{"completion", func(a *Aggregate) float64 { return a.CompletionRate.Mean() }},
		{"delay CI", func(a *Aggregate) float64 { return a.MeanDelay.ConfidenceInterval95() }},
	}
	for _, p := range probes {
		if a, b := p.from(serial), p.from(parallel); a != b {
			t.Errorf("%s differs across GOMAXPROCS: %v vs %v", p.name, a, b)
		}
	}
	if serial.Replications != parallel.Replications {
		t.Errorf("replication counts differ: %d vs %d", serial.Replications, parallel.Replications)
	}
}

// TestRunReplicationsFailurePath exercises the replication-failure branch
// with an injected runner, which a valid configuration cannot reach.
func TestRunReplicationsFailurePath(t *testing.T) {
	cfg := quickConfig()
	boom := errors.New("boom")

	var mu sync.Mutex
	var seeds []uint64
	failing := func(_ context.Context, c Config) (*Metrics, error) {
		mu.Lock()
		seeds = append(seeds, c.Seed)
		mu.Unlock()
		if c.Seed == cfg.Seed+1 { // replication 1
			return nil, boom
		}
		m := &Metrics{Scheduler: "stub", Direction: "forward"}
		return m, nil
	}

	agg, err := runReplications(context.Background(), cfg, 3, failing)
	if agg != nil {
		t.Error("failed run should not return an aggregate")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "replication 1") {
		t.Errorf("error should name the failing replication: %q", err)
	}

	// The per-replication seeds follow cfg.Seed + i regardless of order.
	want := map[uint64]bool{cfg.Seed: true, cfg.Seed + 1: true, cfg.Seed + 2: true}
	for _, s := range seeds {
		if !want[s] {
			t.Errorf("unexpected replication seed %d", s)
		}
	}
}

func TestRunReplicationsStubAggregation(t *testing.T) {
	cfg := quickConfig()
	var calls atomic.Int32
	stub := func(_ context.Context, c Config) (*Metrics, error) {
		calls.Add(1)
		return &Metrics{Scheduler: "stub", Direction: "forward", BitsDelivered: 1}, nil
	}
	agg, err := runReplications(context.Background(), cfg, 4, stub)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 || agg.Replications != 4 {
		t.Errorf("calls=%d replications=%d, want 4/4", calls.Load(), agg.Replications)
	}
	if agg.Scheduler != "stub" {
		t.Errorf("aggregate scheduler = %q", agg.Scheduler)
	}
}

func TestResolveFrameParallelAvoidsNestedPools(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FrameMode = FrameSnapshot
	// Auto (0) under a parallel replication fan-out resolves to inline.
	if got := ResolveFrameParallel(cfg, 4); got != 1 {
		t.Errorf("auto under n=4 -> %d, want 1 (inline)", got)
	}
	// A single replication keeps the auto pool.
	if got := ResolveFrameParallel(cfg, 1); got != 0 {
		t.Errorf("auto under n=1 -> %d, want 0 (GOMAXPROCS)", got)
	}
	// Explicit worker counts are always honoured.
	cfg.FrameParallel = 8
	if got := ResolveFrameParallel(cfg, 4); got != 8 {
		t.Errorf("explicit 8 under n=4 -> %d, want 8", got)
	}
	// Sequential mode is untouched.
	cfg = DefaultConfig()
	if got := ResolveFrameParallel(cfg, 4); got != 0 {
		t.Errorf("sequential config -> %d, want 0 (unused)", got)
	}
}
