package sim

import (
	"encoding/json"
	"reflect"
	"sort"
	"strings"
	"testing"

	"jabasd/internal/fault"
)

// TestConfigJSONRoundTripEveryField walks the Config type with reflection,
// perturbs every serialisable leaf field one at a time and requires the
// perturbed configuration to survive marshal → unmarshal exactly. A field
// added without a JSON round trip (or accidentally tagged json:"-") fails
// here by construction, so the checkpoint header — which stores the config
// as JSON — can never silently drop scenario state.
func TestConfigJSONRoundTripEveryField(t *testing.T) {
	base := DefaultConfig()
	// Give the optional pointers values so their leaves are walkable.
	base.LoadStep = &LoadStep{AtSec: 1.5, ReadingTimeSec: 3}
	base.Faults = &fault.Schedule{
		Cells: []fault.CellEvent{{Cell: 1, StartSec: 5, EndSec: 10, Derate: 0.5}},
		Load:  []fault.LoadEvent{{AtSec: 2, ReadingTimeSec: 6}},
	}

	var leaves []string
	var excluded []string
	var collect func(rt reflect.Type, prefix string)
	collect = func(rt reflect.Type, prefix string) {
		for i := 0; i < rt.NumField(); i++ {
			f := rt.Field(i)
			name := prefix + f.Name
			if !f.IsExported() {
				t.Fatalf("unexported config field %s cannot round-trip", name)
			}
			if f.Tag.Get("json") == "-" {
				excluded = append(excluded, name)
				continue
			}
			ft := f.Type
			if ft.Kind() == reflect.Ptr {
				ft = ft.Elem()
			}
			if ft.Kind() == reflect.Struct {
				collect(ft, name+".")
				continue
			}
			leaves = append(leaves, name)
		}
	}
	collect(reflect.TypeOf(Config{}), "")

	// The only fields allowed to skip serialisation are the runtime sinks.
	sort.Strings(excluded)
	if want := []string{"CheckpointSink", "SolveTrace", "Trace"}; !reflect.DeepEqual(excluded, want) {
		t.Fatalf("json:\"-\" fields are %v, want exactly %v", excluded, want)
	}
	if len(leaves) < 40 {
		t.Fatalf("walked only %d leaves — the reflection walk is broken", len(leaves))
	}

	for _, path := range leaves {
		cfg := base
		// The pointers are shared with base; give this copy its own so the
		// perturbation does not leak across cases.
		ls := *base.LoadStep
		cfg.LoadStep = &ls
		fs := fault.Schedule{
			Cells: append([]fault.CellEvent(nil), base.Faults.Cells...),
			Load:  append([]fault.LoadEvent(nil), base.Faults.Load...),
		}
		cfg.Faults = &fs
		perturbConfigLeaf(t, &cfg, path)
		if reflect.DeepEqual(cfg, base) {
			t.Fatalf("%s: perturbation was a no-op", path)
		}

		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("%s: marshal: %v", path, err)
		}
		var back Config
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", path, err)
		}
		if !reflect.DeepEqual(cfg, back) {
			t.Errorf("%s: did not survive the JSON round trip:\nbefore %+v\nafter  %+v", path, cfg, back)
		}
	}
}

// perturbConfigLeaf changes the leaf at path to a different, decodable
// value. Enum-like fields with constrained decoders toggle between their
// valid values; everything else gets a simple offset.
func perturbConfigLeaf(t *testing.T, cfg *Config, path string) {
	t.Helper()
	v := reflect.ValueOf(cfg).Elem()
	for _, part := range strings.Split(path, ".") {
		if v.Kind() == reflect.Ptr {
			v = v.Elem()
		}
		v = v.FieldByName(part)
		if !v.IsValid() {
			t.Fatalf("%s: field not found", path)
		}
	}
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.Float64:
		v.SetFloat(v.Float() + 0.375)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		switch v.Type().Name() {
		case "Direction", "ObjectiveKind":
			v.SetInt(1 - v.Int()) // both decoders accept exactly {0, 1}
		default:
			v.SetInt(v.Int() + 3)
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 5)
	case reflect.Slice:
		v.Set(reflect.Append(v, reflect.Zero(v.Type().Elem())))
	case reflect.String:
		switch v.Type().Name() {
		case "FrameMode":
			if FrameMode(v.String()).normalize() == FrameSnapshot {
				v.SetString(string(FrameSequential))
			} else {
				v.SetString(string(FrameSnapshot))
			}
		case "SchedulerKind":
			v.SetString(string(SchedulerFCFS))
		default:
			v.SetString(v.String() + "x")
		}
	default:
		t.Fatalf("%s: unhandled kind %s — teach the perturber about it", path, v.Kind())
	}
}
