package sim

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestConfigJSONRoundTripIdenticalRunOutput is the API-redesign acceptance
// check for the configuration layer: marshal → unmarshal must reproduce the
// scenario exactly, demonstrated the strongest way available — running both
// configurations and requiring identical output, not just equal structs.
func TestConfigJSONRoundTripIdenticalRunOutput(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rings = 1
	cfg.SimTime = 4
	cfg.WarmupTime = 1
	cfg.DataUsersPerCell = 3
	cfg.VoiceUsersPerCell = 2
	cfg.Direction = Reverse
	cfg.FrameMode = FrameSnapshot
	cfg.LoadStep = &LoadStep{AtSec: 2, ReadingTimeSec: 6}

	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg, back) {
		t.Fatalf("round trip changed the config:\nbefore %+v\nafter  %+v", cfg, back)
	}

	ctx := context.Background()
	want, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(ctx, back)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("round-tripped config produced different run output")
	}
}

// TestConfigJSONEnumsEncodeAsStrings pins the readable JSON forms: the
// direction and objective kind marshal by name and accept both names and
// the pre-string ordinals on the way in.
func TestConfigJSONEnumsEncodeAsStrings(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Direction = Reverse
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"Direction":"reverse"`, `"Kind":"j2"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("encoded config missing %s", want)
		}
	}
	var back Config
	if err := json.Unmarshal([]byte(`{"Direction": 1, "Objective": {"Kind": 0}}`), &back); err != nil {
		t.Fatalf("legacy ordinal encoding rejected: %v", err)
	}
	if back.Direction != Reverse {
		t.Error("legacy Direction ordinal not decoded")
	}
	if err := json.Unmarshal([]byte(`{"Direction": "sideways"}`), &back); err == nil {
		t.Error("unknown direction should be rejected")
	}
}

// TestValidateReportsAllErrorsAtOnce checks that a configuration with many
// independent mistakes surfaces every one of them in a single Validate call.
func TestValidateReportsAllErrorsAtOnce(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SimTime = -1
	cfg.CellRadius = 0
	cfg.DataUsersPerCell = -2
	cfg.CommonOverheadFrac = 1.5
	cfg.Scheduler = "bogus"
	cfg.FrameMode = "warp"
	cfg.TraceEvery = -1
	err := cfg.Validate()
	if err == nil {
		t.Fatal("expected errors")
	}
	for _, want := range []string{
		"SimTime", "topology", "user counts", "CommonOverheadFrac",
		"bogus", "frame mode", "TraceEvery",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Validate should report %q in one call, got:\n%v", want, err)
		}
	}
}
