package channel_test

import (
	"testing"

	"jabasd/internal/channel"
	"jabasd/internal/race"
	"jabasd/internal/rng"
)

// TestBatchAdvanceAllocationFree is the allocation-regression gate for the
// SoA channel kernels: both advance kernels operate entirely inside the
// batch's flat arrays, so after seeding they must never allocate. It skips
// itself under -race, whose runtime allocates on its own.
func TestBatchAdvanceAllocationFree(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	const users, cells = 4, 7
	pl := channel.DefaultPathLoss()
	batch := channel.NewBatch(users, cells, pl, 8, 50)
	parent := rng.New(7)
	for u := 0; u < users; u++ {
		batch.SeedUser(u, parent.Split(uint64(1000+u)), 10)
		row := batch.DistRow(u)
		for k := range row {
			row[k] = 100 + float64(50*k)
		}
		batch.AdvanceExact(u, 1) // initial draw
	}
	if allocs := testing.AllocsPerRun(50, func() {
		for u := 0; u < users; u++ {
			batch.AdvanceExact(u, 0.5)
		}
	}); allocs != 0 {
		t.Errorf("AdvanceExact allocated %v times per frame, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		for u := 0; u < users; u++ {
			batch.AdvanceFast(u, 0.5, 0.01)
		}
	}); allocs != 0 {
		t.Errorf("AdvanceFast allocated %v times per frame, want 0", allocs)
	}
}
