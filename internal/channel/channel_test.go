package channel

import (
	"math"
	"testing"
	"testing/quick"

	"jabasd/internal/rng"
)

func TestPathLossMonotone(t *testing.T) {
	pl := DefaultPathLoss()
	prev := pl.LossDB(20)
	for d := 50.0; d <= 5000; d += 50 {
		cur := pl.LossDB(d)
		if cur <= prev {
			t.Fatalf("path loss not increasing at d=%v: %v <= %v", d, cur, prev)
		}
		prev = cur
	}
}

func TestPathLossReferencePoint(t *testing.T) {
	pl := DefaultPathLoss()
	if math.Abs(pl.LossDB(1000)-128.1) > 1e-9 {
		t.Errorf("loss at reference distance = %v, want 128.1", pl.LossDB(1000))
	}
	// One decade further: +10*n dB.
	if math.Abs(pl.LossDB(10000)-(128.1+37)) > 1e-9 {
		t.Errorf("loss at 10 km = %v", pl.LossDB(10000))
	}
}

func TestPathLossClampsNearField(t *testing.T) {
	pl := DefaultPathLoss()
	if pl.LossDB(0.001) != pl.LossDB(pl.MinDistance) {
		t.Error("near-field distances should be clamped")
	}
	if pl.Gain(100) <= 0 || pl.Gain(100) >= 1 {
		t.Errorf("gain at 100 m = %v, want in (0,1)", pl.Gain(100))
	}
}

func TestPathLossGainConsistent(t *testing.T) {
	pl := DefaultPathLoss()
	f := func(d float64) bool {
		d = math.Abs(d)
		if d > 1e7 || math.IsNaN(d) {
			return true
		}
		g := pl.Gain(d)
		back := -10 * math.Log10(g)
		return math.Abs(back-pl.LossDB(d)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestShadowingStatistics(t *testing.T) {
	src := rng.New(5)
	s := NewShadowing(src, 8, 50)
	n := 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		// Move far each step so samples are nearly independent.
		v := s.Advance(500)
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sumsq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.3 {
		t.Errorf("shadowing mean = %v, want ~0", mean)
	}
	if math.Abs(sd-8) > 0.5 {
		t.Errorf("shadowing std = %v, want ~8", sd)
	}
}

func TestShadowingCorrelation(t *testing.T) {
	src := rng.New(7)
	s := NewShadowing(src, 8, 50)
	v0 := s.Advance(0)
	v1 := s.Advance(1) // 1 m travelled => rho = exp(-1/50) ~ 0.98
	if math.Abs(v1-v0) > 8 {
		t.Errorf("shadowing jumped too far over 1 m: %v -> %v", v0, v1)
	}
	// Negative distances are treated as zero travel (perfect correlation in mean).
	v2 := s.Advance(-10)
	if math.IsNaN(v2) {
		t.Error("Advance(-10) produced NaN")
	}
	if s.CurrentDB() != v2 {
		t.Error("CurrentDB should track last Advance")
	}
	if math.Abs(s.CurrentGain()-math.Pow(10, v2/10)) > 1e-12 {
		t.Error("CurrentGain inconsistent with CurrentDB")
	}
}

func TestLinkLongTermGain(t *testing.T) {
	src := rng.New(11)
	cfg := DefaultLinkConfig()
	cfg.ShadowSigmaDB = 0 // isolate path loss
	l := NewLink(src, cfg)
	l.Update(1000, 0)
	if math.Abs(l.LongTermGainDB()-(-128.1)) > 1e-9 {
		t.Errorf("long-term gain = %v dB, want -128.1", l.LongTermGainDB())
	}
	if l.Distance() != 1000 {
		t.Errorf("Distance = %v", l.Distance())
	}
	l.Update(2000, 1000)
	if l.LongTermGainDB() >= -128.1 {
		t.Error("gain should decrease with distance")
	}
}

func TestLinkInstantGainPositive(t *testing.T) {
	src := rng.New(13)
	l := NewLink(src, DefaultLinkConfig())
	l.Update(800, 0)
	for i := 0; i < 100; i++ {
		g := l.InstantGain(float64(i) * 0.01)
		if g <= 0 || math.IsNaN(g) {
			t.Fatalf("InstantGain must be positive, got %v", g)
		}
	}
}

func TestLinkFastFadingUnitMean(t *testing.T) {
	src := rng.New(17)
	l := NewLink(src, DefaultLinkConfig())
	l.Update(500, 0)
	n := 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += l.FastGain(float64(i) * 0.013)
	}
	mean := sum / float64(n)
	if mean < 0.6 || mean > 1.4 {
		t.Errorf("fast fading mean power = %v, want ~1", mean)
	}
}

func TestEstimatedCSITracksTrueGain(t *testing.T) {
	src := rng.New(19)
	cfg := DefaultLinkConfig()
	cfg.EstimationErrorDB = 0
	cfg.FeedbackDelayS = 0
	l := NewLink(src, cfg)
	l.Update(600, 0)
	for i := 0; i < 50; i++ {
		tm := float64(i) * 0.02
		if math.Abs(l.EstimatedCSIDB(tm)-l.InstantGainDB(tm)) > 1e-9 {
			t.Fatal("with no error/delay the CSI must equal the true gain")
		}
	}
}

func TestEstimatedCSIWithErrorDiffers(t *testing.T) {
	src := rng.New(23)
	cfg := DefaultLinkConfig()
	cfg.EstimationErrorDB = 2
	l := NewLink(src, cfg)
	l.Update(600, 0)
	same := 0
	for i := 0; i < 100; i++ {
		tm := float64(i) * 0.02
		if l.EstimatedCSIDB(tm) == l.InstantGainDB(tm) {
			same++
		}
	}
	if same > 5 {
		t.Errorf("CSI with estimation error equals true gain too often: %d/100", same)
	}
}

func TestEstimatedCSINegativeTimeClamped(t *testing.T) {
	src := rng.New(29)
	cfg := DefaultLinkConfig()
	cfg.FeedbackDelayS = 1.0
	cfg.EstimationErrorDB = 0
	l := NewLink(src, cfg)
	l.Update(600, 0)
	// t < delay: effective time clamps to zero, must not panic or NaN.
	v := l.EstimatedCSIDB(0.5)
	if math.IsNaN(v) {
		t.Error("CSI at clamped time is NaN")
	}
}

func TestInstantGainDBFloor(t *testing.T) {
	// Even for an absurd distance the dB conversion must not return -Inf.
	src := rng.New(31)
	l := NewLink(src, DefaultLinkConfig())
	l.Update(1e7, 0)
	if math.IsInf(l.InstantGainDB(0), 0) || math.IsNaN(l.InstantGainDB(0)) {
		t.Error("InstantGainDB should be finite")
	}
}
