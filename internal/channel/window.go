package channel

import "fmt"

// MaxWindowWidth bounds a Window's per-user slot count. Retarget carries
// the old slot state across the merge in fixed stack arrays of this size so
// the concurrent per-user update fan-out needs no per-goroutine scratch.
const MaxWindowWidth = 256

// Window is the windowed form of Batch for city-size maps: instead of one
// channel column per (user, cell) pair — O(users x cells) memory and
// per-frame work — each user tracks only `width` slots, one per candidate
// cell of its current spatial bucket (see internal/spatial). The embedded
// Batch holds the per-slot shadowing state, gains, distances and RNG
// substreams with cells == width, so the AdvanceExact / AdvanceFast /
// AdvancePausedExact kernels run unchanged over the window; Window adds the
// slot-to-cell mapping and the Retarget merge that migrates slot state when
// a user crosses into a bucket with a different candidate list.
//
// Determinism: slot i of user u always draws from the same substream
// (parent.Split(base+i)), and the number of draws a stream takes per frame
// depends only on the user's own trajectory (entering slots draw once at
// retarget time). The state is therefore independent of any worker or tile
// partition, exactly like Batch.
type Window struct {
	*Batch
	width int
	cells []int32 // users x width slot-to-cell map; -1 = not yet targeted
}

// NewWindow allocates windowed channel state for users, each tracking
// width candidate cells. Width must be in [1, MaxWindowWidth]. Every user
// must be seeded with SeedUser and given an initial Retarget before
// advancing.
func NewWindow(users, width int, pl PathLossModel, sigmaDB, decorrM float64) *Window {
	if width < 1 || width > MaxWindowWidth {
		panic(fmt.Sprintf("channel: window width %d out of range [1, %d]", width, MaxWindowWidth))
	}
	w := &Window{
		Batch: NewBatch(users, width, pl, sigmaDB, decorrM),
		width: width,
		cells: make([]int32, users*width),
	}
	for i := range w.cells {
		w.cells[i] = -1
	}
	return w
}

// Width returns the per-user slot count.
func (w *Window) Width() int { return w.width }

// CellRow returns user u's slot-to-cell map: global cell indices, ascending.
// Callers may alias it for the lifetime of the window; Retarget updates it
// in place.
func (w *Window) CellRow(u int) []int32 {
	return w.cells[u*w.width : (u+1)*w.width]
}

// Retarget points user u's window at a new candidate list (global cell
// indices, ascending, exactly width long — as internal/spatial produces per
// bucket) and reports whether the window changed. Slots whose cell stays in
// the window carry their shadowing state (and fast-path epsilon baseline)
// across the move; entering cells take a fresh initial shadowing draw from
// their slot's substream, and their baseline is invalidated so the next
// AdvanceFast reports them dirty. Before the user's first advance the list
// is recorded without any draws — AdvanceExact/AdvanceFast take the initial
// draws for the whole window.
func (w *Window) Retarget(u int, cand []int32) bool {
	if len(cand) != w.width {
		panic(fmt.Sprintf("channel: retarget with %d candidates, window width is %d", len(cand), w.width))
	}
	off := u * w.width
	row := w.cells[off : off+w.width]
	same := true
	for i := range row {
		if row[i] != cand[i] {
			same = false
			break
		}
	}
	if same {
		return false
	}
	b := w.Batch
	if !b.ready[u] {
		copy(row, cand)
		return true
	}
	shadow := b.shadowDB[off : off+w.width]
	ref := b.ref[off : off+w.width]
	var oldC [MaxWindowWidth]int32
	var oldS, oldR [MaxWindowWidth]float64
	copy(oldC[:w.width], row)
	copy(oldS[:w.width], shadow)
	copy(oldR[:w.width], ref)
	j := 0
	for i, c := range cand {
		for j < w.width && oldC[j] < c {
			j++
		}
		if j < w.width && oldC[j] == c {
			shadow[i] = oldS[j]
			ref[i] = oldR[j]
		} else {
			// A cell entering the window starts a fresh shadowing process on
			// the slot's own substream. ref = -1 guarantees the epsilon test
			// |gain - ref| > eps*ref fires for the slot, so the first
			// AdvanceFast after a retarget always reports dirty and refreshes
			// the baseline row.
			shadow[i] = b.src[off+i].Normal(0, b.sigmaDB)
			ref[i] = -1
		}
		row[i] = c
	}
	return true
}
