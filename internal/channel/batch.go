package channel

import (
	"math"

	"jabasd/internal/mathx"
	"jabasd/internal/rng"
)

// Batch is the structure-of-arrays form of the long-term channel (path loss
// x correlated shadowing) for many users against many cells: the per-(user,
// cell) shadowing state, linear gains and distance scratch live in flat
// users x cells slices, and one value-typed rng.Source per pair replaces the
// per-pair heap objects. Two advance kernels share this state:
//
//   - AdvanceExact reproduces the scalar reference — Shadowing.Advance
//     followed by PathLossModel.LossDB and math.Pow — operation for
//     operation, so its gains are bit-identical to a per-user Link.Update
//     chain seeded from the same substreams. The engine's -exact-vtaoc
//     reference path uses it to keep golden outputs byte-identical.
//   - AdvanceFast evaluates the same model through mathx.FastExp10 and
//     FastLog10 on squared distances and draws the shadowing innovations
//     with the ziggurat sampler. Results deviate from the reference only at
//     ~1e-12 relative in the gains (plus the statistically equivalent but
//     different shadowing sample path), for a several-fold speedup.
//
// Both kernels hoist the AR(1) correlation rho = exp(-travelled/decorr) and
// its complement out of the per-cell loop — the travelled distance is the
// user's, identical for all cells — which is exact, not an approximation.
type Batch struct {
	users int
	cells int

	pathLoss PathLossModel
	sigmaDB  float64
	decorrM  float64

	// Flattened users x cells state; user u owns [u*cells, (u+1)*cells).
	shadowDB []float64    // AR(1) shadowing state, dB
	gain     []float64    // long-term linear power gain
	ref      []float64    // gains at the last dirty mark (epsilon baseline)
	dist     []float64    // distance scratch: metres (exact) or m^2 (fast)
	src      []rng.Source // per-(user,cell) shadowing substreams
	ready    []bool       // per user: initial shadowing draw done
}

// NewBatch allocates the SoA channel state for users x cells links. Every
// user must be seeded with SeedUser before advancing.
func NewBatch(users, cells int, pl PathLossModel, sigmaDB, decorrM float64) *Batch {
	return &Batch{
		users:    users,
		cells:    cells,
		pathLoss: pl,
		sigmaDB:  sigmaDB,
		decorrM:  decorrM,
		shadowDB: make([]float64, users*cells),
		gain:     make([]float64, users*cells),
		ref:      make([]float64, users*cells),
		dist:     make([]float64, users*cells),
		src:      make([]rng.Source, users*cells),
		ready:    make([]bool, users),
	}
}

// Cells returns the number of cells per user.
func (b *Batch) Cells() int { return b.cells }

// SeedUser derives user u's per-cell shadowing substreams as parent.Split(
// base+k) for k = 0..cells-1, the same order the scalar engine splits its
// per-cell Shadowing sources, and copies them into the batch by value.
func (b *Batch) SeedUser(u int, parent *rng.Source, base uint64) {
	off := u * b.cells
	for k := 0; k < b.cells; k++ {
		b.src[off+k] = *parent.Split(base + uint64(k))
	}
}

// Ready reports whether user u has taken its initial shadowing draw.
func (b *Batch) Ready(u int) bool { return b.ready[u] }

// DistRow returns user u's distance scratch row. Callers fill it (metres
// for AdvanceExact, squared metres for AdvanceFast) before advancing.
func (b *Batch) DistRow(u int) []float64 {
	return b.dist[u*b.cells : (u+1)*b.cells]
}

// GainRow returns user u's linear long-term gain row, updated in place by
// the advance kernels; callers may alias it for the lifetime of the batch.
func (b *Batch) GainRow(u int) []float64 {
	return b.gain[u*b.cells : (u+1)*b.cells]
}

// ShadowRow returns user u's shadowing state row in dB.
func (b *Batch) ShadowRow(u int) []float64 {
	return b.shadowDB[u*b.cells : (u+1)*b.cells]
}

// AdvanceExact advances user u's shadowing by travelled metres and
// recomputes the per-cell gains from the metre distances in DistRow,
// reproducing the scalar Shadowing.Advance + LossDB + math.Pow chain
// bit for bit.
func (b *Batch) AdvanceExact(u int, travelled float64) {
	off := u * b.cells
	shadow := b.shadowDB[off : off+b.cells]
	gain := b.gain[off : off+b.cells]
	dist := b.dist[off : off+b.cells]
	src := b.src[off : off+b.cells]
	if !b.ready[u] {
		for k := range shadow {
			shadow[k] = src[k].Normal(0, b.sigmaDB)
		}
		b.ready[u] = true
	} else {
		if travelled < 0 {
			travelled = 0
		}
		rho := math.Exp(-travelled / math.Max(b.decorrM, 1e-9))
		q := math.Sqrt(1 - rho*rho)
		for k := range shadow {
			shadow[k] = rho*shadow[k] + q*src[k].Normal(0, b.sigmaDB)
		}
	}
	for k := range gain {
		lossDB := b.pathLoss.LossDB(dist[k])
		gain[k] = math.Pow(10, (-lossDB+shadow[k])/10)
	}
}

// AdvancePausedExact advances user u through a zero-travel frame on the
// exact path: the AR(1) update with rho = 1 leaves the shadowing state — and
// therefore every downstream gain — bitwise unchanged, but the scalar
// reference still consumes one Gaussian per cell, so the draws are taken and
// discarded to keep the streams aligned. Callers may skip every downstream
// recompute for the user afterwards.
func (b *Batch) AdvancePausedExact(u int) {
	off := u * b.cells
	src := b.src[off : off+b.cells]
	for k := range src {
		src[k].Normal(0, b.sigmaDB)
	}
}

// AdvanceFast advances user u by travelled metres using the fast kernels,
// reading SQUARED distances from DistRow (saving the square roots: the
// path loss needs only log10(d)). It reports whether the gain row moved by
// more than eps relative to the row captured at the last dirty mark —
// with eps = 0 a moving user is always dirty — and refreshes that baseline
// when it does. A zero-travel frame on an initialised user skips the
// Gaussian draws entirely and reports clean.
func (b *Batch) AdvanceFast(u int, travelled float64, eps float64) bool {
	off := u * b.cells
	shadow := b.shadowDB[off : off+b.cells]
	gain := b.gain[off : off+b.cells]
	ref := b.ref[off : off+b.cells]
	dist := b.dist[off : off+b.cells]
	src := b.src[off : off+b.cells]

	pl := b.pathLoss
	// Exponent of the gain: (shadow - refDB)/10 - (n/2)*log10(d^2/refM^2).
	halfExp := pl.Exponent / 2
	invRefM2 := 1 / (pl.ReferenceM * pl.ReferenceM)
	minD2 := pl.MinDistance * pl.MinDistance

	if !b.ready[u] {
		for k := range shadow {
			shadow[k] = b.sigmaDB * src[k].StdNormalFast()
		}
		b.ready[u] = true
	} else if travelled > 0 {
		// One frame of travel is a tiny fraction of the decorrelation
		// distance, so exp(-ratio) is evaluated by a degree-4 Taylor
		// polynomial when ratio < 1/32 (error < 3e-10 relative, invisible
		// next to the sampled innovations) instead of libm Exp.
		ratio := travelled / math.Max(b.decorrM, 1e-9)
		var rho float64
		if ratio < 0.03125 {
			rho = 1 - ratio*(1-ratio*(0.5-ratio*(1.0/6-ratio*(1.0/24))))
		} else {
			rho = math.Exp(-ratio)
		}
		q := math.Sqrt(1-rho*rho) * b.sigmaDB
		for k := range shadow {
			shadow[k] = rho*shadow[k] + q*src[k].StdNormalFast()
		}
	} else {
		// Paused and initialised: rho = 1 leaves the state unchanged, so
		// unlike the exact path there is nothing to draw and the caller can
		// reuse every downstream quantity.
		return false
	}

	mathx.GainRowFast(gain, shadow, dist, pl.ReferenceDB, halfExp, invRefM2, minD2)
	dirty := eps <= 0
	if !dirty {
		for k := range gain {
			diff := gain[k] - ref[k]
			if diff < 0 {
				diff = -diff
			}
			if diff > eps*ref[k] {
				dirty = true
				break
			}
		}
		if dirty {
			// The epsilon baseline is only consulted on this branch, so a
			// caller running with eps <= 0 never pays the row copy.
			copy(ref, gain)
		}
	}
	return dirty
}
