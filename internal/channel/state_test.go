package channel

import (
	"bytes"
	"math"
	"testing"

	"jabasd/internal/checkpoint"
	"jabasd/internal/rng"
)

// snapshotState round-trips enc into dec through a one-section stream.
func snapshotState(t *testing.T, enc func(*checkpoint.Writer), dec func(*checkpoint.Reader)) {
	t.Helper()
	var buf bytes.Buffer
	w := checkpoint.NewWriter(&buf)
	w.Section("chan")
	enc(w)
	if err := w.Close(); err != nil {
		t.Fatalf("encode: %v", err)
	}
	r, err := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if err := r.Section("chan"); err != nil {
		t.Fatal(err)
	}
	dec(r)
	if err := r.Close(); err != nil {
		t.Fatalf("decode: %v", err)
	}
}

// seedBatch seeds every user the way the engine does.
func seedBatch(b *Batch, users int, seed uint64) {
	parent := rng.New(seed)
	for u := 0; u < users; u++ {
		b.SeedUser(u, parent.Split(uint64(1000+u)), 10)
	}
}

// rowsEqual compares two float64 rows bit for bit.
func rowsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestBatchStateRoundTrip advances a batch several frames (including paused
// ones), snapshots it into a freshly built batch and checks both copies
// produce bitwise-identical gains and dirty flags ever after, on the exact
// and the fast kernels.
func TestBatchStateRoundTrip(t *testing.T) {
	const users, cells = 3, 5
	for _, exact := range []bool{true, false} {
		orig := NewBatch(users, cells, DefaultPathLoss(), 8, 50)
		seedBatch(orig, users, 4242)

		advance := func(b *Batch, step int) []bool {
			dirty := make([]bool, users)
			for u := 0; u < users; u++ {
				travelled := float64((step+u)%4) * 2.5 // includes zero-travel frames
				dist := b.DistRow(u)
				for k := range dist {
					d := 120 + 35*float64(u) + 11*float64(k) + 3*float64(step%7)
					if exact {
						dist[k] = d
					} else {
						dist[k] = d * d
					}
				}
				switch {
				case exact && travelled == 0 && b.Ready(u):
					b.AdvancePausedExact(u)
				case exact:
					b.AdvanceExact(u, travelled)
				default:
					dirty[u] = b.AdvanceFast(u, travelled, 0.05)
				}
			}
			return dirty
		}

		for step := 0; step < 6; step++ {
			advance(orig, step)
		}

		restored := NewBatch(users, cells, DefaultPathLoss(), 8, 50) // unseeded: decode overwrites
		snapshotState(t, orig.EncodeState, restored.DecodeState)

		for u := 0; u < users; u++ {
			if !rowsEqual(orig.GainRow(u), restored.GainRow(u)) {
				t.Fatalf("exact=%v: user %d gain row differs right after restore", exact, u)
			}
		}
		for step := 6; step < 40; step++ {
			da := advance(orig, step)
			db := advance(restored, step)
			for u := 0; u < users; u++ {
				if da[u] != db[u] {
					t.Fatalf("exact=%v: user %d dirty flag diverged at step %d", exact, u, step)
				}
				if !rowsEqual(orig.GainRow(u), restored.GainRow(u)) {
					t.Fatalf("exact=%v: user %d gain row diverged at step %d", exact, u, step)
				}
				if !rowsEqual(orig.ShadowRow(u), restored.ShadowRow(u)) {
					t.Fatalf("exact=%v: user %d shadow row diverged at step %d", exact, u, step)
				}
			}
		}
	}
}

func TestBatchDecodeRejectsSizeMismatch(t *testing.T) {
	orig := NewBatch(2, 3, DefaultPathLoss(), 8, 50)
	seedBatch(orig, 2, 1)
	var buf bytes.Buffer
	w := checkpoint.NewWriter(&buf)
	w.Section("chan")
	orig.EncodeState(w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	other := NewBatch(2, 4, DefaultPathLoss(), 8, 50)
	r, err := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Section("chan"); err != nil {
		t.Fatal(err)
	}
	other.DecodeState(r)
	if r.Err() == nil {
		t.Fatal("dimension mismatch not rejected")
	}
}

// TestWindowStateRoundTrip exercises the windowed state: retargets before
// and after the snapshot, with the slot-to-cell map and the per-slot
// shadowing carried across the restore, on both kernels.
func TestWindowStateRoundTrip(t *testing.T) {
	const users, width = 2, 3
	for _, exact := range []bool{true, false} {
		orig := NewWindow(users, width, DefaultPathLoss(), 8, 50)
		seedBatch(orig.Batch, users, 777)

		advance := func(wd *Window, u, step int, travelled float64) bool {
			dist := wd.DistRow(u)
			for k := range dist {
				d := 150 + 40*float64(u) + 9*float64(k) + 2*float64(step%5)
				if exact {
					dist[k] = d
				} else {
					dist[k] = d * d
				}
			}
			if exact {
				wd.AdvanceExact(u, travelled)
				return true
			}
			return wd.AdvanceFast(u, travelled, 0.05)
		}

		for u := 0; u < users; u++ {
			orig.Retarget(u, []int32{0, 1, 2})
		}
		for step := 0; step < 4; step++ {
			for u := 0; u < users; u++ {
				advance(orig, u, step, 3)
			}
		}
		orig.Retarget(0, []int32{1, 2, 5}) // user 0 crosses into a new bucket
		advance(orig, 0, 4, 3)

		restored := NewWindow(users, width, DefaultPathLoss(), 8, 50)
		snapshotState(t, orig.EncodeState, restored.DecodeState)

		for u := 0; u < users; u++ {
			ca, cb := orig.CellRow(u), restored.CellRow(u)
			for i := range ca {
				if ca[i] != cb[i] {
					t.Fatalf("exact=%v: user %d slot map differs after restore: %v vs %v", exact, u, cb, ca)
				}
			}
		}

		// Both copies now retarget user 1 and keep advancing; the entering
		// slots' fresh draws come from the restored substreams.
		orig.Retarget(1, []int32{2, 3, 4})
		restored.Retarget(1, []int32{2, 3, 4})
		for step := 5; step < 30; step++ {
			for u := 0; u < users; u++ {
				da := advance(orig, u, step, float64((step+u)%3))
				db := advance(restored, u, step, float64((step+u)%3))
				if da != db {
					t.Fatalf("exact=%v: user %d dirty flag diverged at step %d", exact, u, step)
				}
				if !rowsEqual(orig.GainRow(u), restored.GainRow(u)) {
					t.Fatalf("exact=%v: user %d gain row diverged at step %d", exact, u, step)
				}
			}
		}
	}
}
