// Package channel models the wireless link of the paper's Section 2.1:
// the combined channel gain X(t) = X_l(t) * X_f(t), where X_l is the
// long-term component (distance path loss multiplied by correlated lognormal
// shadowing, coherence on the order of seconds) and X_f is the fast Rayleigh
// fading component (coherence on the order of milliseconds), plus the CSI
// estimator that feeds the adaptive physical layer through a low-capacity,
// possibly delayed and noisy feedback channel.
package channel

import (
	"math"

	"jabasd/internal/rng"
)

// PathLossModel is a log-distance path loss model:
//
//	PL(d) [dB] = PL(d0) + 10*n*log10(d/d0)
//
// with exponent n and reference loss at distance d0 (metres).
type PathLossModel struct {
	Exponent    float64 // path loss exponent (3.5 - 4 for macro cells)
	ReferenceDB float64 // loss at the reference distance, in dB
	ReferenceM  float64 // reference distance in metres
	MinDistance float64 // distances below this are clamped (antenna near field)
}

// DefaultPathLoss returns the macro-cell model used throughout the
// experiments: exponent 3.7, 128 dB at 1 km (COST-231-like), 10 m minimum.
func DefaultPathLoss() PathLossModel {
	return PathLossModel{Exponent: 3.7, ReferenceDB: 128.1, ReferenceM: 1000, MinDistance: 10}
}

// LossDB returns the path loss in dB at distance d metres.
func (p PathLossModel) LossDB(d float64) float64 {
	if d < p.MinDistance {
		d = p.MinDistance
	}
	return p.ReferenceDB + 10*p.Exponent*math.Log10(d/p.ReferenceM)
}

// Gain returns the linear power gain (<= 1 in practice) at distance d metres.
func (p PathLossModel) Gain(d float64) float64 {
	return math.Pow(10, -p.LossDB(d)/10)
}

// Shadowing is a temporally correlated lognormal shadowing process following
// the Gudmundson model: the dB value is a first-order autoregressive Gaussian
// process with standard deviation SigmaDB and decorrelation distance
// DecorrelationM. Correlation is driven by the distance travelled by the
// mobile, so the process naturally slows down for slow users.
type Shadowing struct {
	SigmaDB        float64
	DecorrelationM float64
	currentDB      float64
	src            *rng.Source
	initialised    bool
}

// NewShadowing creates a shadowing process with its own random substream.
func NewShadowing(src *rng.Source, sigmaDB, decorrelationM float64) *Shadowing {
	return &Shadowing{SigmaDB: sigmaDB, DecorrelationM: decorrelationM, src: src}
}

// Advance moves the process by the given travelled distance (metres) and
// returns the new shadowing value in dB.
func (s *Shadowing) Advance(distanceM float64) float64 {
	if !s.initialised {
		s.currentDB = s.src.Normal(0, s.SigmaDB)
		s.initialised = true
		return s.currentDB
	}
	if distanceM < 0 {
		distanceM = 0
	}
	rho := math.Exp(-distanceM / math.Max(s.DecorrelationM, 1e-9))
	s.currentDB = rho*s.currentDB + math.Sqrt(1-rho*rho)*s.src.Normal(0, s.SigmaDB)
	return s.currentDB
}

// CurrentDB returns the current shadowing value in dB (0 until first Advance).
func (s *Shadowing) CurrentDB() float64 { return s.currentDB }

// CurrentGain returns the current linear shadowing gain.
func (s *Shadowing) CurrentGain() float64 {
	return math.Pow(10, s.currentDB/10)
}

// Link models one mobile-to-base-station radio link: path loss, shadowing and
// fast fading, together with a CSI estimate made available to the transmitter
// after a feedback delay.
type Link struct {
	PathLoss PathLossModel
	Shadow   *Shadowing
	Fast     *rng.Jakes

	estimationErrorDB float64 // std dev of CSI estimation error in dB
	feedbackDelay     float64 // seconds of CSI feedback delay
	src               *rng.Source

	distance   float64 // current distance in metres
	lastLongDB float64 // cached long-term gain (path loss + shadowing) in dB
}

// LinkConfig collects the parameters needed to build a Link.
type LinkConfig struct {
	PathLoss          PathLossModel
	ShadowSigmaDB     float64
	ShadowDecorrM     float64
	DopplerHz         float64
	Oscillators       int
	EstimationErrorDB float64
	FeedbackDelayS    float64
}

// DefaultLinkConfig returns parameters representative of a vehicular
// wideband-CDMA user: 8 dB shadowing with 50 m decorrelation, Doppler from
// ~30 km/h at 2 GHz (≈ 55 Hz), 0.5 dB CSI error and 1.25 ms feedback delay
// (one power-control group).
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{
		PathLoss:          DefaultPathLoss(),
		ShadowSigmaDB:     8,
		ShadowDecorrM:     50,
		DopplerHz:         55,
		Oscillators:       16,
		EstimationErrorDB: 0.5,
		FeedbackDelayS:    0.00125,
	}
}

// NewLink builds a link with independent random substreams derived from src.
func NewLink(src *rng.Source, cfg LinkConfig) *Link {
	shadowSrc := src.Split(1)
	fadeSrc := src.Split(2)
	noiseSrc := src.Split(3)
	return &Link{
		PathLoss:          cfg.PathLoss,
		Shadow:            NewShadowing(shadowSrc, cfg.ShadowSigmaDB, cfg.ShadowDecorrM),
		Fast:              rng.NewJakes(fadeSrc, cfg.Oscillators, cfg.DopplerHz),
		estimationErrorDB: cfg.EstimationErrorDB,
		feedbackDelay:     cfg.FeedbackDelayS,
		src:               noiseSrc,
	}
}

// Update advances the link: the mobile is now at distance d metres from the
// base station, having moved `travelled` metres since the last update.
func (l *Link) Update(d, travelled float64) {
	l.distance = d
	l.Shadow.Advance(travelled)
	l.lastLongDB = -l.PathLoss.LossDB(d) + l.Shadow.CurrentDB()
}

// Distance returns the distance used by the last Update call.
func (l *Link) Distance() float64 { return l.distance }

// LongTermGainDB returns the slow component of the channel gain in dB
// (negative path loss plus shadowing). This is the "local mean CSI" that
// drives the offered SCH bit rate in the paper.
func (l *Link) LongTermGainDB() float64 { return l.lastLongDB }

// LongTermGain returns the slow component as a linear power gain.
func (l *Link) LongTermGain() float64 { return math.Pow(10, l.lastLongDB/10) }

// FastGain returns the instantaneous Rayleigh power gain (unit mean) at
// simulation time t seconds.
func (l *Link) FastGain(t float64) float64 { return l.Fast.PowerAt(t) }

// InstantGain returns the combined instantaneous power gain
// X(t) = X_l(t) * X_f(t) at time t.
func (l *Link) InstantGain(t float64) float64 {
	return l.LongTermGain() * l.FastGain(t)
}

// InstantGainDB returns the combined gain in dB.
func (l *Link) InstantGainDB(t float64) float64 {
	return 10 * math.Log10(math.Max(l.InstantGain(t), 1e-30))
}

// EstimatedCSIDB returns the channel state information available to the
// transmitter at time t: the true instantaneous gain a feedback delay ago,
// corrupted by a Gaussian estimation error in dB. This is the quantity
// compared against the VTAOC adaptation thresholds.
func (l *Link) EstimatedCSIDB(t float64) float64 {
	tEff := t - l.feedbackDelay
	if tEff < 0 {
		tEff = 0
	}
	true_ := l.LongTermGain() * l.FastGain(tEff)
	db := 10 * math.Log10(math.Max(true_, 1e-30))
	if l.estimationErrorDB > 0 {
		db += l.src.Normal(0, l.estimationErrorDB)
	}
	return db
}
