package channel_test

import (
	"math"
	"testing"

	"jabasd/internal/channel"
	"jabasd/internal/rng"
)

// seedPair builds a scalar per-(user,cell) Link array and a Batch from
// identical substreams, mirroring how the engine splits its shadowing
// sources: user u's cell-k stream is userSrc.Split(base+k).
func seedPair(t *testing.T, users, cells int, seed uint64) ([][]*channel.Link, *channel.Batch) {
	t.Helper()
	pl := channel.DefaultPathLoss()
	const sigma, decorr = 8.0, 50.0

	parent := rng.New(seed)
	links := make([][]*channel.Link, users)
	for u := 0; u < users; u++ {
		userSrc := parent.Split(uint64(1000 + u))
		links[u] = make([]*channel.Link, cells)
		for k := 0; k < cells; k++ {
			shadowSrc := userSrc.Split(uint64(10 + k))
			links[u][k] = &channel.Link{
				PathLoss: pl,
				Shadow:   channel.NewShadowing(shadowSrc, sigma, decorr),
			}
		}
	}
	parent.Reseed(seed)
	batch := channel.NewBatch(users, cells, pl, sigma, decorr)
	for u := 0; u < users; u++ {
		userSrc := parent.Split(uint64(1000 + u))
		batch.SeedUser(u, userSrc, 10)
	}
	return links, batch
}

// TestBatchAdvanceExactMatchesLink is the differential gate behind the
// engine's -exact-vtaoc mode: the batched exact kernel must reproduce the
// scalar Link.Update chain bit for bit over many frames, including
// zero-travel (paused) frames where the batch only discards draws.
func TestBatchAdvanceExactMatchesLink(t *testing.T) {
	const users, cells = 6, 7
	links, batch := seedPair(t, users, cells, 42)
	step := rng.New(5)
	for f := 0; f < 500; f++ {
		for u := 0; u < users; u++ {
			travelled := 0.0
			if step.Float64() < 0.8 {
				travelled = step.Uniform(0, 3)
			}
			row := batch.DistRow(u)
			for k := 0; k < cells; k++ {
				row[k] = step.Uniform(5, 4000)
			}
			paused := travelled == 0 && batch.Ready(u)
			var before []float64
			if paused {
				before = append(before[:0], batch.GainRow(u)...)
				batch.AdvancePausedExact(u)
			} else {
				batch.AdvanceExact(u, travelled)
			}
			for k := 0; k < cells; k++ {
				links[u][k].Update(row[k], travelled)
				var want float64
				if paused {
					// The scalar link re-derives the gain from the (changed)
					// distance even when paused; the engine only skips the
					// recompute because it reuses the previous distances too.
					// Compare against the previous gain instead.
					want = before[k]
				} else {
					want = math.Pow(10, links[u][k].LongTermGainDB()/10)
				}
				if got := batch.GainRow(u)[k]; got != want && !paused {
					t.Fatalf("frame %d user %d cell %d: batch gain %v != scalar %v", f, u, k, got, want)
				} else if paused && got != want {
					t.Fatalf("frame %d user %d cell %d: paused gain changed %v -> %v", f, u, k, want, got)
				}
			}
			if paused {
				// The stream must stay aligned: the shadow state equals the
				// scalar links', which advanced with rho = 1.
				for k := 0; k < cells; k++ {
					if batch.ShadowRow(u)[k] != links[u][k].Shadow.CurrentDB() {
						t.Fatalf("frame %d user %d cell %d: paused shadow %v != scalar %v",
							f, u, k, batch.ShadowRow(u)[k], links[u][k].Shadow.CurrentDB())
					}
				}
			}
		}
	}
}

// TestBatchAdvanceFastTracksExact pins the fast kernel's gains to the exact
// model within the documented tolerance when both run on the same shadowing
// trajectory. The fast path draws its own (ziggurat) innovations, so the
// comparison feeds the fast kernel's own shadow state through the exact gain
// formula instead of comparing sample paths.
func TestBatchAdvanceFastTracksExact(t *testing.T) {
	const users, cells = 4, 7
	pl := channel.DefaultPathLoss()
	batch := channel.NewBatch(users, cells, pl, 8, 50)
	parent := rng.New(9)
	for u := 0; u < users; u++ {
		batch.SeedUser(u, parent.Split(uint64(1000+u)), 10)
	}
	step := rng.New(11)
	for f := 0; f < 300; f++ {
		for u := 0; u < users; u++ {
			travelled := step.Uniform(0.01, 3)
			row := batch.DistRow(u)
			dists := make([]float64, cells)
			for k := 0; k < cells; k++ {
				dists[k] = step.Uniform(5, 4000)
				row[k] = dists[k] * dists[k] // fast kernel reads squared metres
			}
			if !batch.AdvanceFast(u, travelled, 0) {
				t.Fatalf("frame %d user %d: moving user reported clean at eps=0", f, u)
			}
			for k := 0; k < cells; k++ {
				want := math.Pow(10, (-pl.LossDB(dists[k])+batch.ShadowRow(u)[k])/10)
				got := batch.GainRow(u)[k]
				if rel := math.Abs(got-want) / want; rel > 1e-11 {
					t.Fatalf("frame %d user %d cell %d: fast gain off by %.3e relative", f, u, k, rel)
				}
			}
		}
	}
}

// TestBatchAdvanceFastPausedClean pins the fast path's paused shortcut: no
// draws, no state change, reported clean.
func TestBatchAdvanceFastPausedClean(t *testing.T) {
	const cells = 7
	batch := channel.NewBatch(1, cells, channel.DefaultPathLoss(), 8, 50)
	batch.SeedUser(0, rng.New(3), 10)
	row := batch.DistRow(0)
	for k := range row {
		row[k] = float64(200+100*k) * float64(200+100*k)
	}
	batch.AdvanceFast(0, 1.5, 0)
	gains := append([]float64(nil), batch.GainRow(0)...)
	shadows := append([]float64(nil), batch.ShadowRow(0)...)
	for i := 0; i < 10; i++ {
		if batch.AdvanceFast(0, 0, 0) {
			t.Fatalf("paused user reported dirty")
		}
	}
	for k := 0; k < cells; k++ {
		if batch.GainRow(0)[k] != gains[k] || batch.ShadowRow(0)[k] != shadows[k] {
			t.Fatalf("paused advance mutated state at cell %d", k)
		}
	}
}

// TestBatchAdvanceFastEpsilon checks the dirty baseline semantics: tiny
// moves stay clean under a loose epsilon, and the baseline refreshes on a
// dirty mark so drift cannot accumulate unbounded.
func TestBatchAdvanceFastEpsilon(t *testing.T) {
	const cells = 3
	batch := channel.NewBatch(1, cells, channel.DefaultPathLoss(), 8, 50)
	batch.SeedUser(0, rng.New(8), 10)
	row := batch.DistRow(0)
	set := func(d float64) {
		for k := range row {
			row[k] = d * d
		}
	}
	set(1000)
	if !batch.AdvanceFast(0, 1, 0.5) {
		t.Fatalf("first advance must be dirty")
	}
	// A micro-move under a huge epsilon stays clean...
	set(1000.01)
	if batch.AdvanceFast(0, 1e-6, 0.5) {
		t.Fatalf("micro move flagged dirty at eps=0.5")
	}
	// ...but a large move crosses it.
	set(4000)
	if !batch.AdvanceFast(0, 50, 0.5) {
		t.Fatalf("large move not flagged dirty")
	}
}
