package channel

import "jabasd/internal/checkpoint"

// EncodeState appends the batch's mutable channel state: shadowing, gains,
// the epsilon baseline, the per-user readiness flags and every shadowing
// substream. The distance rows are per-frame scratch (refilled before every
// advance that reads them) and are deliberately not part of the state.
func (b *Batch) EncodeState(w *checkpoint.Writer) {
	w.Int(b.users)
	w.Int(b.cells)
	w.F64s(b.shadowDB)
	w.F64s(b.gain)
	w.F64s(b.ref)
	w.Bools(b.ready)
	for i := range b.src {
		b.src[i].EncodeState(w)
	}
}

// DecodeState restores the state written by EncodeState into the existing
// batch in place, so rows handed out by GainRow keep aliasing the restored
// storage. The batch must have the same users x cells dimensions.
func (b *Batch) DecodeState(rd *checkpoint.Reader) {
	users, cells := rd.Int(), rd.Int()
	if users != b.users || cells != b.cells {
		rd.Fail("channel batch is %dx%d, checkpoint %dx%d", b.users, b.cells, users, cells)
		return
	}
	rd.FillF64s(b.shadowDB)
	rd.FillF64s(b.gain)
	rd.FillF64s(b.ref)
	rd.FillBools(b.ready)
	for i := range b.src {
		b.src[i].DecodeState(rd)
	}
}

// EncodeState appends the windowed state: the embedded batch (whose cell
// dimension is the window width) plus the slot-to-cell map.
func (w *Window) EncodeState(cw *checkpoint.Writer) {
	w.Batch.EncodeState(cw)
	cw.I32s(w.cells)
}

// DecodeState restores the state written by EncodeState in place, so rows
// handed out by CellRow keep aliasing the restored storage.
func (w *Window) DecodeState(rd *checkpoint.Reader) {
	w.Batch.DecodeState(rd)
	rd.FillI32s(w.cells)
}
