package channel

import (
	"testing"

	"jabasd/internal/rng"
)

// fullCells returns the ascending identity candidate list [0, n).
func fullCells(n int) []int32 {
	c := make([]int32, n)
	for i := range c {
		c[i] = int32(i)
	}
	return c
}

// TestWindowMatchesBatchFullWidth: a window as wide as the cell count,
// targeted at every cell, must reproduce the full Batch bit for bit on both
// advance kernels — the windowed path collapses to the full-scan path when
// nothing is excluded.
func TestWindowMatchesBatchFullWidth(t *testing.T) {
	const users, cells = 3, 5
	pl := DefaultPathLoss()
	for _, exact := range []bool{true, false} {
		b := NewBatch(users, cells, pl, 8, 50)
		w := NewWindow(users, cells, pl, 8, 50)
		for u := 0; u < users; u++ {
			pb := rng.New(uint64(100 + u))
			pw := rng.New(uint64(100 + u))
			b.SeedUser(u, pb, 10)
			w.SeedUser(u, pw, 10)
			if w.Retarget(u, fullCells(cells)) != true {
				t.Fatal("first Retarget must report a change")
			}
		}
		travels := []float64{5, 0, 2.5, 0, 0, 17, 1}
		for f, travelled := range travels {
			for u := 0; u < users; u++ {
				for k := 0; k < cells; k++ {
					d := 200 + 37*float64(u) + 11*float64(k) + 3*float64(f)
					if !exact {
						d *= d // fast kernel reads squared distances
					}
					b.DistRow(u)[k] = d
					w.DistRow(u)[k] = d
				}
				if exact {
					if travelled == 0 && b.Ready(u) {
						b.AdvancePausedExact(u)
						w.AdvancePausedExact(u)
					} else {
						b.AdvanceExact(u, travelled)
						w.AdvanceExact(u, travelled)
					}
				} else {
					db := b.AdvanceFast(u, travelled, 0.01)
					dw := w.AdvanceFast(u, travelled, 0.01)
					if db != dw {
						t.Fatalf("exact=%v frame %d user %d: dirty %v (batch) vs %v (window)", exact, f, u, db, dw)
					}
				}
				gb, gw := b.GainRow(u), w.GainRow(u)
				for k := range gb {
					if gb[k] != gw[k] {
						t.Fatalf("exact=%v frame %d user %d cell %d: gain %g (batch) vs %g (window)",
							exact, f, u, k, gb[k], gw[k])
					}
				}
			}
		}
	}
}

// TestRetargetCarriesState: slots whose cell survives a retarget keep their
// shadowing state; entering slots draw fresh.
func TestRetargetCarriesState(t *testing.T) {
	w := NewWindow(1, 2, DefaultPathLoss(), 8, 50)
	w.SeedUser(0, rng.New(42), 10)
	if !w.Retarget(0, []int32{1, 3}) {
		t.Fatal("initial Retarget must report a change")
	}
	w.DistRow(0)[0], w.DistRow(0)[1] = 300, 500
	w.AdvanceExact(0, 0) // initial draws
	before := append([]float64(nil), w.ShadowRow(0)...)
	if w.Retarget(0, []int32{1, 3}) {
		t.Fatal("identical candidate list must not report a change")
	}
	if !w.Retarget(0, []int32{3, 5}) {
		t.Fatal("new candidate list must report a change")
	}
	after := w.ShadowRow(0)
	if after[0] != before[1] {
		t.Fatalf("cell 3 moved slot 1 -> 0 but shadow changed: %g -> %g", before[1], after[0])
	}
	if after[1] == before[0] || after[1] == before[1] {
		t.Fatalf("entering cell 5 must draw fresh shadowing, got carried value %g", after[1])
	}
	if got := w.CellRow(0); got[0] != 3 || got[1] != 5 {
		t.Fatalf("CellRow = %v, want [3 5]", got)
	}
}

// TestRetargetDeterminism: the same seed and the same retarget/advance
// history produce bitwise identical state, regardless of anything else —
// the property the tiled engine's determinism gate rests on.
func TestRetargetDeterminism(t *testing.T) {
	mk := func() *Window {
		w := NewWindow(1, 3, DefaultPathLoss(), 8, 50)
		w.SeedUser(0, rng.New(7), 10)
		return w
	}
	run := func(w *Window) {
		lists := [][]int32{{0, 1, 2}, {1, 2, 4}, {1, 2, 4}, {2, 4, 6}, {0, 2, 6}}
		for f, cand := range lists {
			w.Retarget(0, cand)
			for s := range cand {
				w.DistRow(0)[s] = float64(100+10*f+s) * float64(100+10*f+s)
			}
			w.AdvanceFast(0, 4, 0)
		}
	}
	a, b := mk(), mk()
	run(a)
	run(b)
	ga, gb := a.GainRow(0), b.GainRow(0)
	for k := range ga {
		if ga[k] != gb[k] {
			t.Fatalf("slot %d: %g vs %g", k, ga[k], gb[k])
		}
	}
	sa, sb := a.ShadowRow(0), b.ShadowRow(0)
	for k := range sa {
		if sa[k] != sb[k] {
			t.Fatalf("shadow slot %d: %g vs %g", k, sa[k], sb[k])
		}
	}
}

func TestWindowPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero width", func() { NewWindow(1, 0, DefaultPathLoss(), 8, 50) })
	mustPanic("oversized width", func() { NewWindow(1, MaxWindowWidth+1, DefaultPathLoss(), 8, 50) })
	w := NewWindow(1, 2, DefaultPathLoss(), 8, 50)
	mustPanic("wrong candidate length", func() { w.Retarget(0, []int32{1}) })
}
