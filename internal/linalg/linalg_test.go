package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVectorDot(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestVectorDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot with mismatched lengths should panic")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestVectorAddSubScale(t *testing.T) {
	v := Vector{1, 2}
	w := Vector{3, 5}
	if got := v.Add(w); got[0] != 4 || got[1] != 7 {
		t.Errorf("Add = %v", got)
	}
	if got := w.Sub(v); got[0] != 2 || got[1] != 3 {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(3); got[0] != 3 || got[1] != 6 {
		t.Errorf("Scale = %v", got)
	}
}

func TestVectorNorms(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Norm2(); got != 5 {
		t.Errorf("Norm2 = %v", got)
	}
	if got := (Vector{-7, 2}).NormInf(); got != 7 {
		t.Errorf("NormInf = %v", got)
	}
	if got := (Vector{1, 2, 3}).Sum(); got != 6 {
		t.Errorf("Sum = %v", got)
	}
}

func TestVectorClone(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone aliases the original")
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Error("Set/At broken")
	}
	r := m.Row(1)
	if r[2] != 5 || len(r) != 3 {
		t.Error("Row broken")
	}
	c := m.Col(2)
	if c[1] != 5 || len(c) != 2 {
		t.Error("Col broken")
	}
}

func TestMatrixFromRowsAndMulVec(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	v := Vector{1, 1}
	got := m.MulVec(v)
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestMatrixMul(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestIdentityMul(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 10}})
	i3 := Identity(3)
	c := a.Mul(i3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if c.At(i, j) != a.At(i, j) {
				t.Fatal("A*I != A")
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("Transpose shape = %dx%d", at.Rows, at.Cols)
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Error("Transpose values wrong")
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{2, 1}, {1, 3}})
	b := Vector{5, 10}
	x, err := a.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	// Solution: x = 1, y = 3.
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Errorf("Solve = %v, want [1 3]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := a.Solve(Vector{1, 2}); err != ErrSingular {
		t.Errorf("expected ErrSingular, got %v", err)
	}
}

func TestSolveDimensionMismatch(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := a.Solve(Vector{1, 2, 3}); err != ErrDimension {
		t.Errorf("expected ErrDimension, got %v", err)
	}
	rect := NewMatrix(2, 3)
	if _, err := rect.Solve(Vector{1, 2}); err != ErrDimension {
		t.Errorf("expected ErrDimension for rectangular, got %v", err)
	}
}

func TestSolveResidualProperty(t *testing.T) {
	// For random diagonally dominant systems, the residual should be tiny.
	f := func(seed int64) bool {
		n := 5
		a := NewMatrix(n, n)
		s := uint64(seed)
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>11) / (1 << 53)
		}
		b := NewVector(n)
		for i := 0; i < n; i++ {
			rowsum := 0.0
			for j := 0; j < n; j++ {
				v := next() - 0.5
				a.Set(i, j, v)
				rowsum += math.Abs(v)
			}
			a.Set(i, i, rowsum+1) // diagonally dominant => nonsingular
			b[i] = next() * 10
		}
		x, err := a.Solve(b)
		if err != nil {
			return false
		}
		res := a.MulVec(x).Sub(b)
		return res.NormInf() < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMatrixClone(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Error("Clone aliases original")
	}
}

func TestMatrixString(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}})
	if a.String() == "" {
		t.Error("String should not be empty")
	}
}

func TestNewMatrixFromRowsEmpty(t *testing.T) {
	m := NewMatrixFromRows(nil)
	if m.Rows != 0 || m.Cols != 0 {
		t.Error("empty matrix shape wrong")
	}
}

func TestNewMatrixFromRowsRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged rows should panic")
		}
	}()
	NewMatrixFromRows([][]float64{{1, 2}, {1}})
}

func TestMulVecDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MulVec dimension mismatch should panic")
		}
	}()
	NewMatrix(2, 3).MulVec(Vector{1, 2})
}
