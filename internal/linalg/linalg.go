// Package linalg provides small dense vector and matrix primitives used by
// the LP/ILP solvers and the admission-control measurement sub-layer. It is
// intentionally minimal (stdlib only) and optimised for the modest problem
// sizes that arise in per-frame burst admission (tens of rows/columns).
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("linalg: singular matrix")

// ErrDimension is returned when operand shapes are incompatible.
var ErrDimension = errors.New("linalg: dimension mismatch")

// Vector is a dense column vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Dot returns the inner product of v and w. It panics on length mismatch.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(ErrDimension)
	}
	s := 0.0
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Add returns v + w as a new vector.
func (v Vector) Add(w Vector) Vector {
	if len(v) != len(w) {
		panic(ErrDimension)
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w as a new vector.
func (v Vector) Sub(w Vector) Vector {
	if len(v) != len(w) {
		panic(ErrDimension)
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns a*v as a new vector.
func (v Vector) Scale(a float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = a * v[i]
	}
	return out
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 {
	return math.Sqrt(v.Dot(v))
}

// NormInf returns the maximum absolute entry of v.
func (v Vector) NormInf() float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of the entries of v.
func (v Vector) Sum() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(ErrDimension)
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFromRows builds a matrix from row slices; all rows must have the
// same length.
func NewMatrixFromRows(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(ErrDimension)
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.Data[i*m.Cols+j] = v
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) Vector {
	out := make(Vector, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) Vector {
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec returns m * v.
func (m *Matrix) MulVec(v Vector) Vector {
	if m.Cols != len(v) {
		panic(ErrDimension)
	}
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out
}

// Mul returns the matrix product m * other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(ErrDimension)
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < other.Cols; j++ {
				out.Data[i*out.Cols+j] += a * other.At(k, j)
			}
		}
	}
	return out
}

// Transpose returns the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Solve solves the square linear system m*x = b using Gaussian elimination
// with partial pivoting. It returns ErrSingular if the matrix is (numerically)
// singular and ErrDimension on shape mismatch.
func (m *Matrix) Solve(b Vector) (Vector, error) {
	n := m.Rows
	if m.Cols != n || len(b) != n {
		return nil, ErrDimension
	}
	// Augmented working copies.
	a := m.Clone()
	x := b.Clone()
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				tmp := a.At(col, j)
				a.Set(col, j, a.At(pivot, j))
				a.Set(pivot, j, tmp)
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		// Eliminate below.
		inv := 1 / a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	out := make(Vector, n)
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= a.At(i, j) * out[j]
		}
		out[i] = s / a.At(i, i)
	}
	return out, nil
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&sb, "%10.4f ", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
