package experiments

import (
	"context"
	"fmt"

	"jabasd/internal/fault"
	"jabasd/internal/report"
)

// The fault experiments E13 and E14 exercise the engine's fault-injection
// layer (internal/fault) with the same windowed frame-level telemetry the
// transient experiments use: E13 takes a cell out of service mid-run and
// watches the load spill to its neighbours and settle back on recovery;
// E14 drives the offered load through a flash-crowd curve — the
// generalisation of E12's single step to a piecewise schedule.

// E13CellOutageSpillover runs the congested baseline with the centre cell
// out of service for the middle fifth of the run. The windowed table shows
// the outage transient: admitted rate dips when the cell goes dark, its
// queued requests and re-piloting users spill onto the first ring
// (spillover_handoffs), neighbour load rises, and after recovery the system
// settles back to the pre-outage steady state. down_cell_frames counts the
// out-of-service (cell, frame) pairs per window, so the outage span is
// visible in the table itself.
func E13CellOutageSpillover(ctx context.Context, s Scale) (*report.Table, error) {
	cfg := baseConfig(s)
	cfg.WarmupTime = 0
	cfg.DataUsersPerCell = 14
	outStart, outEnd := 0.4*cfg.SimTime, 0.6*cfg.SimTime
	cfg.Faults = &fault.Schedule{Cells: []fault.CellEvent{
		{Cell: 0, StartSec: outStart, EndSec: outEnd},
	}}
	windowSec := cfg.SimTime / transientWindows
	reps := transientReps(s)
	acc, err := runTransient(ctx, cfg, reps, windowSec)
	if err != nil {
		return nil, err
	}
	cells := cellCount(cfg)
	t := report.NewTable(
		fmt.Sprintf("E13: centre-cell outage t=%.0f..%.0f s — spillover and recovery (%s scale)", outStart, outEnd, s.Name),
		"phase", "t_start_s", "offered_per_cell_s", "admitted_per_cell_s", "completed_per_cell_s",
		"mean_cell_load", "mean_queue_len", "mean_delay_s", "down_cell_frames", "spillover_handoffs")
	for w, a := range acc {
		tStart := float64(w) * windowSec
		phase := "pre-outage"
		switch {
		case tStart >= outEnd:
			phase = "recovered"
		case tStart >= outStart:
			phase = "outage"
		}
		addFaultRow(t, a, tStart, windowSec, cells, reps, phase)
	}
	return t, nil
}

// E14FlashCrowdCurve drives the scenario through a piecewise load curve:
// lightly loaded at the start, the mean reading time quarters at 0.35
// SimTime (a flash crowd arriving) and restores at 0.7 SimTime (the crowd
// leaving). Where E12 shows the response to a single permanent step, E14
// shows both edges — the ramp into saturation and the drain back out — as
// the fault layer's load events fire in sequence.
func E14FlashCrowdCurve(ctx context.Context, s Scale) (*report.Table, error) {
	cfg := baseConfig(s)
	cfg.WarmupTime = 0
	cfg.DataUsersPerCell = 14
	cfg.Data.MeanReadingTimeSec = 12 // light offered load outside the crowd
	crowdAt, crowdEnd := 0.35*cfg.SimTime, 0.7*cfg.SimTime
	cfg.Faults = &fault.Schedule{Load: []fault.LoadEvent{
		{AtSec: crowdAt, ReadingTimeSec: cfg.Data.MeanReadingTimeSec / 4},
		{AtSec: crowdEnd, ReadingTimeSec: cfg.Data.MeanReadingTimeSec},
	}}
	windowSec := cfg.SimTime / transientWindows
	reps := transientReps(s)
	acc, err := runTransient(ctx, cfg, reps, windowSec)
	if err != nil {
		return nil, err
	}
	cells := cellCount(cfg)
	t := report.NewTable(
		fmt.Sprintf("E14: flash-crowd load curve t=%.0f..%.0f s (%s scale)", crowdAt, crowdEnd, s.Name),
		"phase", "t_start_s", "offered_per_cell_s", "admitted_per_cell_s", "completed_per_cell_s",
		"mean_cell_load", "mean_queue_len", "mean_delay_s")
	for w, a := range acc {
		tStart := float64(w) * windowSec
		phase := "pre-crowd"
		switch {
		case tStart >= crowdEnd:
			phase = "drained"
		case tStart >= crowdAt:
			phase = "crowd"
		}
		addTransientRow(t, a, tStart, windowSec, cells, reps, phase)
	}
	return t, nil
}

// addFaultRow appends one window's row with the outage counters after the
// shared transient columns.
func addFaultRow(t *report.Table, a windowAcc, tStart, windowSec float64, cells, reps int, phase string) {
	norm := float64(cells*reps) * windowSec
	meanDelay := 0.0
	if a.completed > 0 {
		meanDelay = a.delaySum / float64(a.completed)
	}
	meanLoad, meanQueue := 0.0, 0.0
	if a.samples > 0 {
		meanLoad = a.loadSum / float64(a.samples)
		meanQueue = a.queueSum / float64(a.samples)
	}
	t.AddRow(phase, tStart,
		float64(a.offered)/norm, float64(a.admitted)/norm, float64(a.completed)/norm,
		meanLoad, meanQueue, meanDelay,
		float64(a.down)/float64(reps), float64(a.spill)/float64(reps))
}
