package experiments

import (
	"context"
	"fmt"
	"strings"

	"jabasd/internal/report"
	"jabasd/internal/stream"
)

// Experiment is one entry of the registered suite: a stable id, the
// paper-facing title, and the generator that produces its results table at a
// given scale. Every generator is deterministic — the seeds are fixed inside
// (experiment-local rng sources, sim.Config.Seed per replication) — so the
// tables are identical no matter how many experiments run concurrently.
type Experiment struct {
	// ID is the stable identifier (E1..E14) used by cmd/jabaexp -only.
	ID string
	// Title summarises what the experiment reproduces.
	Title string
	// Analytic experiments compute their tables without the dynamic
	// simulator; their output is independent of the scale's simulated time
	// and replication count.
	Analytic bool
	// Run produces the results table. The context cancels the dynamic
	// simulations an experiment runs mid-flight; the analytic experiments
	// complete fast enough that they ignore it.
	Run func(context.Context, Scale) (*report.Table, error)
}

// Registry returns the ordered experiment suite E1-E14. It is the single
// source of truth consumed by both All and cmd/jabaexp, so the two can never
// drift apart.
func Registry() []Experiment {
	return []Experiment{
		{
			ID: "E1", Title: "adaptive physical layer throughput vs mean CSI", Analytic: true,
			Run: func(context.Context, Scale) (*report.Table, error) { return E1AdaptivePhyThroughput() },
		},
		{
			ID: "E2", Title: "VTAOC mode occupancy over a fading trace", Analytic: true,
			Run: func(context.Context, Scale) (*report.Table, error) { return E2ModeOccupancy(15, 200_000) },
		},
		{
			ID: "E3", Title: "forward-link admission optimality vs exhaustive optimum", Analytic: true,
			Run: func(_ context.Context, s Scale) (*report.Table, error) { return E3ForwardAdmission(scaleInstances(s)) },
		},
		{
			ID: "E4", Title: "reverse-link admission with SCRM neighbour protection", Analytic: true,
			Run: func(_ context.Context, s Scale) (*report.Table, error) { return E4ReverseAdmission(scaleInstances(s)) },
		},
		{
			ID: "E5", Title: "average burst delay vs offered load",
			Run: func(ctx context.Context, s Scale) (*report.Table, error) { return E5DelayVsLoad(ctx, s) },
		},
		{
			ID: "E6", Title: "data user capacity at a delay target",
			Run: func(ctx context.Context, s Scale) (*report.Table, error) { return E6UserCapacity(ctx, s, 2) },
		},
		{
			ID: "E7", Title: "coverage vs shadowing severity",
			Run: func(ctx context.Context, s Scale) (*report.Table, error) { return E7Coverage(ctx, s) },
		},
		{
			ID: "E8", Title: "joint design ablation (adaptive PHY x scheduler)",
			Run: func(ctx context.Context, s Scale) (*report.Table, error) { return E8JointDesignAblation(ctx, s) },
		},
		{
			ID: "E9", Title: "objective J1 vs J2 trade-off",
			Run: func(ctx context.Context, s Scale) (*report.Table, error) { return E9ObjectiveTradeoff(ctx, s) },
		},
		{
			ID: "E10", Title: "MAC state set-up penalty effect",
			Run: func(ctx context.Context, s Scale) (*report.Table, error) { return E10MacStates(ctx, s) },
		},
		{
			ID: "E11", Title: "transient warm-up and convergence (frame-level telemetry)",
			Run: func(ctx context.Context, s Scale) (*report.Table, error) { return E11WarmupConvergence(ctx, s) },
		},
		{
			ID: "E12", Title: "offered-load step response (mid-run flash crowd)",
			Run: func(ctx context.Context, s Scale) (*report.Table, error) { return E12LoadStepResponse(ctx, s) },
		},
		{
			ID: "E13", Title: "mid-run cell outage: spillover transient and recovery settling",
			Run: func(ctx context.Context, s Scale) (*report.Table, error) { return E13CellOutageSpillover(ctx, s) },
		},
		{
			ID: "E14", Title: "flash-crowd load curve (piecewise fault schedule)",
			Run: func(ctx context.Context, s Scale) (*report.Table, error) { return E14FlashCrowdCurve(ctx, s) },
		},
	}
}

// IDs returns the registered experiment ids in suite order.
func IDs() []string {
	defs := Registry()
	out := make([]string, len(defs))
	for i, d := range defs {
		out[i] = d.ID
	}
	return out
}

// ByID looks up an experiment by id, case-insensitively.
func ByID(id string) (Experiment, bool) {
	want := strings.ToUpper(strings.TrimSpace(id))
	for _, d := range Registry() {
		if d.ID == want {
			return d, true
		}
	}
	return Experiment{}, false
}

// All runs every registered experiment at the given scale — concurrently,
// bounded by GOMAXPROCS — and returns the tables in registry order. Because
// every generator carries its own deterministic seeds, the output is
// identical to running the suite sequentially.
func All(ctx context.Context, s Scale) ([]*report.Table, error) {
	return RunExperiments(ctx, Registry(), s, 0)
}

// RunExperiments runs the given experiments with at most parallel of them in
// flight at once (<= 0 means GOMAXPROCS) and returns their tables in input
// order. The first failure (in input order) is reported after all in-flight
// work drains.
func RunExperiments(ctx context.Context, defs []Experiment, s Scale, parallel int) ([]*report.Table, error) {
	out := make([]*report.Table, 0, len(defs))
	err := StreamExperiments(ctx, defs, s, parallel, func(_ int, tbl *report.Table) error {
		out = append(out, tbl)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// StreamExperiments runs the given experiments concurrently (bounded by
// parallel; <= 0 means GOMAXPROCS) and invokes emit in input order as soon
// as each experiment and all of its predecessors have finished. A caller
// that prints or persists results in emit therefore keeps everything that
// completed before a failure — important for full-scale runs where a late
// experiment dying should not discard half an hour of earlier tables. The
// first error in input order is returned after the in-flight experiments
// drain; emit is called for every experiment preceding the failure.
func StreamExperiments(ctx context.Context, defs []Experiment, s Scale, parallel int, emit func(i int, tbl *report.Table) error) error {
	tables := make([]*report.Table, len(defs))
	return stream.Ordered(len(defs), parallel,
		func(i int) error {
			if err := ctx.Err(); err != nil {
				return err // cancelled before this experiment started
			}
			tbl, err := defs[i].Run(ctx, s)
			if err != nil {
				if ctx.Err() != nil {
					return err // the cancellation, not an experiment failure
				}
				return fmt.Errorf("experiment %s failed: %w", defs[i].ID, err)
			}
			tables[i] = tbl
			return nil
		},
		func(i int) error { return emit(i, tables[i]) })
}
