package experiments

import (
	"bytes"
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"

	"jabasd/internal/report"
)

func TestRegistryIDsStableAndUnique(t *testing.T) {
	defs := Registry()
	if len(defs) != 14 {
		t.Fatalf("registry has %d experiments, want 14", len(defs))
	}
	seen := map[string]bool{}
	for i, d := range defs {
		want := "E" + itoa(i+1)
		if d.ID != want {
			t.Errorf("registry[%d].ID = %s, want %s", i, d.ID, want)
		}
		if seen[d.ID] {
			t.Errorf("duplicate id %s", d.ID)
		}
		seen[d.ID] = true
		if d.Title == "" || d.Run == nil {
			t.Errorf("%s: incomplete registration", d.ID)
		}
	}
	// E1-E4 are the analytic experiments.
	for i, d := range defs {
		if want := i < 4; d.Analytic != want {
			t.Errorf("%s.Analytic = %v, want %v", d.ID, d.Analytic, want)
		}
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

func TestByID(t *testing.T) {
	for _, id := range []string{"E1", "e1", " e10 "} {
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%q) should resolve", id)
		}
	}
	for _, id := range []string{"E99", "e1x", "", "E"} {
		if _, ok := ByID(id); ok {
			t.Errorf("ByID(%q) should fail", id)
		}
	}
	if len(IDs()) != len(Registry()) {
		t.Error("IDs and Registry disagree")
	}
}

// TestStreamExperimentsEmitsPrefixBeforeFailure checks the streaming
// contract: when an experiment fails, everything before it in suite order
// has already been emitted, and nothing at or after it is.
func TestStreamExperimentsEmitsPrefixBeforeFailure(t *testing.T) {
	ok := func(id string) Experiment {
		return Experiment{ID: id, Title: id, Run: func(context.Context, Scale) (*report.Table, error) {
			return report.NewTable(id, "col"), nil
		}}
	}
	boom := Experiment{ID: "EX", Title: "fails", Run: func(context.Context, Scale) (*report.Table, error) {
		return nil, errors.New("boom")
	}}
	defs := []Experiment{ok("A"), ok("B"), boom, ok("C")}
	var emitted []string
	err := StreamExperiments(context.Background(), defs, Quick, 4, func(i int, tbl *report.Table) error {
		emitted = append(emitted, defs[i].ID)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "EX") {
		t.Fatalf("err = %v, want the failing experiment named", err)
	}
	if got := strings.Join(emitted, ","); got != "A,B" {
		t.Errorf("emitted %q before the failure, want A,B", got)
	}
	// An emit error also stops the stream, keeping the earlier emissions.
	emitted = nil
	err = StreamExperiments(context.Background(), []Experiment{ok("A"), ok("B")}, Quick, 1, func(i int, _ *report.Table) error {
		emitted = append(emitted, defs[i].ID)
		return errors.New("sink full")
	})
	if err == nil || len(emitted) != 1 {
		t.Errorf("emit error should stop after the first table: err=%v emitted=%v", err, emitted)
	}
}

// TestAllParallelMatchesSequential is the determinism contract of the
// registry runner: running the suite with full concurrency produces tables
// byte-identical to running each generator alone, because every experiment
// carries its own fixed seeds.
func TestAllParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("dynamic simulation experiments skipped in -short mode")
	}
	small := tinyScale
	small.LoadPoints = []int{3}

	sequential, err := RunExperiments(context.Background(), Registry(), small, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := All(context.Background(), small)
	if err != nil {
		t.Fatal(err)
	}
	if len(sequential) != len(parallel) {
		t.Fatalf("table counts differ: %d vs %d", len(sequential), len(parallel))
	}
	for i := range sequential {
		var a, b bytes.Buffer
		if err := sequential[i].WriteCSV(&a); err != nil {
			t.Fatal(err)
		}
		if err := parallel[i].WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: parallel output differs from sequential:\n--- sequential\n%s\n--- parallel\n%s",
				Registry()[i].ID, a.String(), b.String())
		}
	}
}
