package experiments

import (
	"context"
	"fmt"

	"jabasd/internal/report"
	"jabasd/internal/sim"
	"jabasd/internal/trace"
)

// The transient experiments E11 and E12 look at the admission dynamics the
// end-of-replication aggregates average away: how long the system takes to
// reach steady state from its empty start (E11) and how it responds to a
// mid-run step in the offered load (E12). Both run the dynamic simulator
// with frame-level telemetry (internal/trace) from t = 0 — warm-up
// included, since warm-up is the object of study — and reduce the
// per-frame, per-cell records to fixed time windows.

// transientWindows is the number of time windows the trace is reduced to;
// the window width is SimTime/transientWindows, so the tables have the same
// shape at every scale.
const transientWindows = 10

// windowAcc accumulates the trace records falling in one time window.
type windowAcc struct {
	offered, admitted, completed int
	delaySum                     float64
	loadSum, queueSum            float64
	down, spill                  int // out-of-service cell-frames, spillover hand-offs
	samples                      int // (frame, cell) records seen
}

// accumulateWindows reduces one replication's trace to the per-window
// accumulators. Records beyond the last window boundary (there are none as
// long as windowSec divides SimTime, but guard anyway) land in the last one.
func accumulateWindows(acc []windowAcc, records []trace.Record, windowSec float64) {
	for _, r := range records {
		w := int(r.TimeS / windowSec)
		if w >= len(acc) {
			w = len(acc) - 1
		}
		a := &acc[w]
		a.offered += r.Offered
		a.admitted += r.Admitted
		a.completed += r.Completed
		a.delaySum += r.DelaySumS
		a.loadSum += r.Load
		a.queueSum += float64(r.QueueLen)
		a.down += r.Down
		a.spill += r.Spill
		a.samples++
	}
}

// transientReps normalises a scale's replication count for the transient
// experiments: both the runner and the per-row rate normalisation must use
// the same clamped value, or a zero-replication Scale would divide by zero.
func transientReps(s Scale) int {
	if s.Replications < 1 {
		return 1
	}
	return s.Replications
}

// runTransient runs reps traced replications of cfg (seeds cfg.Seed + i,
// the RunReplications scheme) and returns the across-replication window
// accumulators. The replications run sequentially: each needs its own
// in-memory sink, and the transient experiments are already parallelised
// across each other by the registry runner. reps must be >= 1
// (transientReps).
func runTransient(ctx context.Context, cfg sim.Config, reps int, windowSec float64) ([]windowAcc, error) {
	acc := make([]windowAcc, transientWindows)
	for i := 0; i < reps; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		mem := &trace.Memory{}
		c.Trace = mem
		c.TraceEvery = 1
		if _, err := sim.Run(ctx, c); err != nil {
			return nil, fmt.Errorf("transient replication %d: %w", i, err)
		}
		accumulateWindows(acc, mem.Records, windowSec)
	}
	return acc, nil
}

// addTransientRow appends one window's row: per-cell per-second rates for
// the counters, per-cell means for load and queue, and the window's mean
// burst delay.
func addTransientRow(t *report.Table, a windowAcc, tStart, windowSec float64, cells, reps int, extra ...interface{}) {
	norm := float64(cells*reps) * windowSec
	meanDelay := 0.0
	if a.completed > 0 {
		meanDelay = a.delaySum / float64(a.completed)
	}
	meanLoad, meanQueue := 0.0, 0.0
	if a.samples > 0 {
		meanLoad = a.loadSum / float64(a.samples)
		meanQueue = a.queueSum / float64(a.samples)
	}
	row := append([]interface{}{}, extra...)
	row = append(row, tStart,
		float64(a.offered)/norm, float64(a.admitted)/norm, float64(a.completed)/norm,
		meanLoad, meanQueue, meanDelay)
	t.AddRow(row...)
}

// E11WarmupConvergence starts the baseline heavy-traffic scenario from its
// empty initial state and tabulates the admission dynamics in
// transientWindows time windows: offered/admitted/completed burst rates,
// mean cell load, mean queue length and mean burst delay per window. The
// early windows show the fill-in transient (light queues, generous grants),
// the later ones the congested steady state — the picture that justifies
// discarding a warm-up period in every steady-state experiment.
func E11WarmupConvergence(ctx context.Context, s Scale) (*report.Table, error) {
	cfg := baseConfig(s)
	cfg.WarmupTime = 0
	cfg.DataUsersPerCell = 14
	windowSec := cfg.SimTime / transientWindows
	reps := transientReps(s)
	acc, err := runTransient(ctx, cfg, reps, windowSec)
	if err != nil {
		return nil, err
	}
	cells := cellCount(cfg)
	t := report.NewTable("E11: warm-up and convergence of the admission dynamics ("+s.Name+" scale)",
		"t_start_s", "offered_per_cell_s", "admitted_per_cell_s", "completed_per_cell_s",
		"mean_cell_load", "mean_queue_len", "mean_delay_s")
	for w, a := range acc {
		addTransientRow(t, a, float64(w)*windowSec, windowSec, cells, reps)
	}
	return t, nil
}

// E12LoadStepResponse starts the scenario lightly loaded (long reading
// times) and halfway through steps every data source to a 1-second mean
// reading time — a flash crowd arriving — via the engine's LoadStep hook.
// The windowed table shows the step response of the admission layer: the
// offered rate jumps at the step, the admitted rate follows until the power
// budget saturates, and the queues and delays grow toward the new, heavier
// steady state.
func E12LoadStepResponse(ctx context.Context, s Scale) (*report.Table, error) {
	cfg := baseConfig(s)
	cfg.WarmupTime = 0
	cfg.DataUsersPerCell = 14
	cfg.Data.MeanReadingTimeSec = 12 // light offered load before the step
	stepAt := cfg.SimTime / 2
	cfg.LoadStep = &sim.LoadStep{AtSec: stepAt, ReadingTimeSec: 1}
	windowSec := cfg.SimTime / transientWindows
	reps := transientReps(s)
	acc, err := runTransient(ctx, cfg, reps, windowSec)
	if err != nil {
		return nil, err
	}
	cells := cellCount(cfg)
	t := report.NewTable(
		fmt.Sprintf("E12: offered-load step response at t=%.0f s (%s scale)", stepAt, s.Name),
		"phase", "t_start_s", "offered_per_cell_s", "admitted_per_cell_s", "completed_per_cell_s",
		"mean_cell_load", "mean_queue_len", "mean_delay_s")
	for w, a := range acc {
		tStart := float64(w) * windowSec
		phase := "pre-step"
		if tStart >= stepAt {
			phase = "post-step"
		}
		addTransientRow(t, a, tStart, windowSec, cells, reps, phase)
	}
	return t, nil
}

// cellCount returns the number of cells cfg's hexagonal layout will have:
// 1 + 3r(r+1) for r rings (spelled as arithmetic rather than instantiating
// a cellular.Layout just for this).
func cellCount(cfg sim.Config) int {
	r := cfg.Rings
	return 1 + 3*r*(r+1)
}
