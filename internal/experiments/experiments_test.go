package experiments

import (
	"context"
	"strconv"
	"testing"
)

func parseFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not a number: %v", s, err)
	}
	return v
}

// tinyScale keeps the dynamic-simulation experiments fast in unit tests.
var tinyScale = Scale{
	Name:         "tiny",
	SimTime:      5,
	WarmupTime:   1,
	Rings:        1,
	Replications: 1,
	LoadPoints:   []int{3, 8},
}

func TestE1AdaptivePhyThroughput(t *testing.T) {
	tbl, err := E1AdaptivePhyThroughput()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() < 10 {
		t.Fatalf("too few rows: %d", tbl.NumRows())
	}
	if err := SanityCheckE1(tbl); err != nil {
		t.Error(err)
	}
	// The adaptive PHY must dominate both fixed modes in every row.
	for _, row := range tbl.Rows {
		adaptive := parseFloat(t, row[1])
		f2 := parseFloat(t, row[2])
		f5 := parseFloat(t, row[3])
		outage := parseFloat(t, row[4])
		if adaptive+1e-9 < f2 || adaptive+1e-9 < f5 {
			t.Errorf("adaptive %v below a fixed mode (%v, %v)", adaptive, f2, f5)
		}
		if outage < 0 || outage > 1 {
			t.Errorf("outage out of range: %v", outage)
		}
	}
}

func TestE2ModeOccupancy(t *testing.T) {
	tbl, err := E2ModeOccupancy(15, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 7 { // mode 0 (outage) + 6 modes
		t.Fatalf("rows = %d, want 7", tbl.NumRows())
	}
	// Empirical and analytic fractions must each sum to ~1 and agree within
	// a few percentage points.
	sumEmp, sumAna := 0.0, 0.0
	for _, row := range tbl.Rows {
		emp := parseFloat(t, row[2])
		ana := parseFloat(t, row[3])
		sumEmp += emp
		sumAna += ana
		if diff := emp - ana; diff > 0.03 || diff < -0.03 {
			t.Errorf("mode %s: empirical %v vs analytic %v differ too much", row[0], emp, ana)
		}
	}
	if sumEmp < 0.999 || sumEmp > 1.001 || sumAna < 0.999 || sumAna > 1.001 {
		t.Errorf("fractions do not sum to 1: %v %v", sumEmp, sumAna)
	}
	// Default sample count path.
	if _, err := E2ModeOccupancy(10, 0); err != nil {
		t.Fatal(err)
	}
}

func TestE3ForwardAdmission(t *testing.T) {
	tbl, err := E3ForwardAdmission(10)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() == 0 {
		t.Fatal("no rows")
	}
	for _, row := range tbl.Rows {
		jaba := parseFloat(t, row[1])
		fcfs := parseFloat(t, row[3])
		equal := parseFloat(t, row[4])
		if jaba < 0.999 || jaba > 1.001 {
			t.Errorf("JABA-SD should match the exhaustive optimum, got ratio %v", jaba)
		}
		if fcfs > jaba+1e-6 || equal > jaba+1e-6 {
			t.Errorf("a baseline exceeded the optimum: fcfs=%v equal=%v", fcfs, equal)
		}
	}
}

func TestE4ReverseAdmission(t *testing.T) {
	tbl, err := E4ReverseAdmission(10)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4 schedulers", tbl.NumRows())
	}
	for _, row := range tbl.Rows {
		violations := parseFloat(t, row[3])
		if violations != 0 {
			t.Errorf("%s violated the interference budget %v times", row[0], violations)
		}
		use := parseFloat(t, row[2])
		if use < 0 || use > 1.0001 {
			t.Errorf("budget use out of range: %v", use)
		}
	}
}

func TestE5DelayVsLoadQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("dynamic simulation experiment skipped in -short mode")
	}
	tbl, err := E5DelayVsLoad(context.Background(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	// 2 load points x 3 schedulers.
	if tbl.NumRows() != 6 {
		t.Fatalf("rows = %d, want 6", tbl.NumRows())
	}
	for _, row := range tbl.Rows {
		if d := parseFloat(t, row[2]); d < 0 {
			t.Errorf("negative delay %v", d)
		}
		if tput := parseFloat(t, row[5]); tput < 0 {
			t.Errorf("negative throughput %v", tput)
		}
		if comp := parseFloat(t, row[7]); comp < 0 || comp > 1 {
			t.Errorf("completion ratio out of range: %v", comp)
		}
	}
}

func TestE8JointDesignAblationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("dynamic simulation experiment skipped in -short mode")
	}
	tbl, err := E8JointDesignAblation(context.Background(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4 (2x2 design)", tbl.NumRows())
	}
}

func TestE9E10Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("dynamic simulation experiment skipped in -short mode")
	}
	small := tinyScale
	small.LoadPoints = []int{3}
	if tbl, err := E9ObjectiveTradeoff(context.Background(), small); err != nil || tbl.NumRows() != 4 {
		t.Fatalf("E9: %v rows=%v", err, tbl)
	}
	if tbl, err := E10MacStates(context.Background(), small); err != nil || tbl.NumRows() != 3 {
		t.Fatalf("E10: %v rows=%v", err, tbl)
	}
}

func TestE6E7Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("dynamic simulation experiment skipped in -short mode")
	}
	small := tinyScale
	small.LoadPoints = []int{3}
	tbl, err := E6UserCapacity(context.Background(), small, 0) // default target path
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 3 {
		t.Fatalf("E6 rows = %d", tbl.NumRows())
	}
	tbl7, err := E7Coverage(context.Background(), small)
	if err != nil {
		t.Fatal(err)
	}
	if tbl7.NumRows() != 6 {
		t.Fatalf("E7 rows = %d", tbl7.NumRows())
	}
	for _, row := range tbl7.Rows {
		cov := parseFloat(t, row[2])
		if cov < 0 || cov > 1 {
			t.Errorf("coverage out of range: %v", cov)
		}
	}
}

func TestScaleInstances(t *testing.T) {
	if scaleInstances(Full) <= scaleInstances(Quick) {
		t.Error("full scale should use more instances than quick")
	}
}
