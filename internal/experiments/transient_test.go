package experiments

import (
	"context"
	"strings"
	"testing"

	"jabasd/internal/trace"
)

func TestE11WarmupConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("dynamic simulation experiment skipped in -short mode")
	}
	tbl, err := E11WarmupConvergence(context.Background(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != transientWindows {
		t.Fatalf("rows = %d, want %d", tbl.NumRows(), transientWindows)
	}
	offeredTotal := 0.0
	for i, row := range tbl.Rows {
		tStart := parseFloat(t, row[0])
		want := float64(i) * tinyScale.SimTime / transientWindows
		if tStart != want {
			t.Errorf("row %d t_start = %v, want %v", i, tStart, want)
		}
		offered := parseFloat(t, row[1])
		admitted := parseFloat(t, row[2])
		load := parseFloat(t, row[4])
		if offered < 0 || admitted < 0 || load < 0 {
			t.Errorf("row %d has negative rates: %v", i, row)
		}
		offeredTotal += offered
	}
	if offeredTotal == 0 {
		t.Fatal("no offered load in any window; the scenario generated no traffic")
	}
	// The system starts empty, so the first window must carry strictly less
	// ongoing load than the heaviest later window (fill-in transient).
	first := parseFloat(t, tbl.Rows[0][4])
	maxLater := 0.0
	for _, row := range tbl.Rows[1:] {
		if l := parseFloat(t, row[4]); l > maxLater {
			maxLater = l
		}
	}
	if first >= maxLater {
		t.Errorf("no fill-in transient visible: first window load %v, max later %v", first, maxLater)
	}
}

func TestE12LoadStepResponse(t *testing.T) {
	if testing.Short() {
		t.Skip("dynamic simulation experiment skipped in -short mode")
	}
	tbl, err := E12LoadStepResponse(context.Background(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != transientWindows {
		t.Fatalf("rows = %d, want %d", tbl.NumRows(), transientWindows)
	}
	var pre, post float64
	var preN, postN int
	for i, row := range tbl.Rows {
		switch row[0] {
		case "pre-step":
			pre += parseFloat(t, row[2])
			preN++
		case "post-step":
			post += parseFloat(t, row[2])
			postN++
		default:
			t.Fatalf("row %d has unknown phase %q", i, row[0])
		}
	}
	if preN == 0 || postN == 0 {
		t.Fatalf("both phases must appear: pre=%d post=%d", preN, postN)
	}
	// The flash crowd must show up as a higher mean offered rate after the
	// step (column 2 is offered_per_cell_s).
	if post/float64(postN) <= pre/float64(preN) {
		t.Errorf("offered rate did not rise after the step: pre=%v post=%v",
			pre/float64(preN), post/float64(postN))
	}
}

func TestE11ZeroReplicationsScale(t *testing.T) {
	if testing.Short() {
		t.Skip("dynamic simulation experiment skipped in -short mode")
	}
	// A zero-value Replications field must clamp to one replication in both
	// the runner and the rate normalisation — not divide by zero.
	s := tinyScale
	s.Replications = 0
	tbl, err := E11WarmupConvergence(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		for _, cell := range row {
			if strings.Contains(cell, "Inf") || strings.Contains(cell, "NaN") {
				t.Fatalf("non-finite cell %q in %v", cell, row)
			}
		}
	}
}

func TestAccumulateWindowsClampsOverflow(t *testing.T) {
	acc := make([]windowAcc, 2)
	accumulateWindows(acc, []trace.Record{
		{TimeS: 0.5, Offered: 1},
		{TimeS: 1.5, Offered: 2},
		{TimeS: 99, Offered: 4}, // beyond the last boundary: clamped into it
	}, 1.0)
	if acc[0].offered != 1 || acc[1].offered != 6 {
		t.Fatalf("windows = %+v", acc)
	}
}
