// Package experiments defines the reproducible experiment suite E1-E12:
// every evaluation claim and diagram of the paper is mapped to a function
// that runs the necessary simulations or analytic computations and returns
// a results table, and the transient experiments E11/E12 extend the suite
// with the frame-level time-series view (internal/trace) the paper's
// steady-state tables leave out. The same functions back the cmd/jabaexp
// binary (full scale) and the root-level benchmarks (quick scale), so
// recorded numbers can be regenerated with either.
package experiments

import (
	"context"
	"fmt"
	"math"

	"jabasd/internal/core"
	"jabasd/internal/ilp"
	"jabasd/internal/load"
	"jabasd/internal/mathx"
	"jabasd/internal/measurement"
	"jabasd/internal/report"
	"jabasd/internal/rng"
	"jabasd/internal/sim"
	"jabasd/internal/vtaoc"
)

// Scale controls how much simulated time and how many replications the
// dynamic-simulation experiments use.
type Scale struct {
	Name         string
	SimTime      float64
	WarmupTime   float64
	Rings        int
	Replications int
	LoadPoints   []int // data users per cell for the load sweeps
	// ExactPHY runs the dynamic experiments on the engine's bit-exact
	// reference physics instead of the default fast SoA kernels — the mode
	// cmd/jabaexp's -exact-vtaoc flag selects to keep golden outputs stable.
	ExactPHY bool
}

// Quick is the scale used by unit tests and benchmarks: small but large
// enough that every code path is exercised and the qualitative orderings
// (JABA-SD vs baselines) are usually visible.
var Quick = Scale{
	Name:         "quick",
	SimTime:      20,
	WarmupTime:   4,
	Rings:        1,
	Replications: 1,
	LoadPoints:   []int{6, 14},
}

// Full is the scale used by cmd/jabaexp for the numbers in EXPERIMENTS.md.
var Full = Scale{
	Name:         "full",
	SimTime:      60,
	WarmupTime:   10,
	Rings:        2,
	Replications: 4,
	LoadPoints:   []int{6, 10, 14, 18, 22},
}

// baseConfig returns the scenario shared by the dynamic experiments. The
// traffic is deliberately heavy (short reading times, large heavy-tailed
// documents) so that the burst admission layer is the bottleneck — that is
// the regime the paper's evaluation targets; at light load every scheduler
// trivially grants every request and the algorithms are indistinguishable.
func baseConfig(s Scale) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.SimTime = s.SimTime
	cfg.WarmupTime = s.WarmupTime
	cfg.Rings = s.Rings
	cfg.Data.MeanReadingTimeSec = 3
	cfg.Data.MinSizeBits = 200_000
	cfg.Data.MaxSizeBits = 3_000_000
	// A tighter power budget and a heavier voice background make the forward
	// link power-limited, as in the paper's setting, so the admission layer
	// (not the raw link speed) is the bottleneck at the higher load points.
	cfg.VoiceUsersPerCell = 16
	cfg.VoiceChannelW = 0.4
	cfg.MaxCellPowerW = 10
	cfg.FCHEbIoTargetDB = 9
	// "Covered" means the burst was actually served at high speed: at least
	// 16x the fundamental-channel rate (~59 kbit/s with the default plan).
	cfg.CoverageRateFraction = 16
	cfg.ExactPHY = s.ExactPHY
	return cfg
}

// ---------------------------------------------------------------------------
// E1: adaptive physical layer throughput vs mean CSI (Figure 1 mechanism).
// ---------------------------------------------------------------------------

// E1AdaptivePhyThroughput tabulates the Rayleigh-averaged VTAOC throughput,
// the outage probability, and the throughput of two fixed-mode baselines as
// the local-mean CSI sweeps from -5 to +30 dB.
func E1AdaptivePhyThroughput() (*report.Table, error) {
	coder, err := vtaoc.New(vtaoc.DefaultConfig())
	if err != nil {
		return nil, err
	}
	fixedLow, err := vtaoc.NewFixedRate(coder, 2)
	if err != nil {
		return nil, err
	}
	fixedHigh, err := vtaoc.NewFixedRate(coder, 5)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("E1: VTAOC average throughput vs mean CSI (target BER 1e-3)",
		"meanCSIdB", "adaptive_bits_per_symbol", "fixed_mode2", "fixed_mode5", "outage_prob")
	for csi := -5.0; csi <= 30.0; csi += 2.5 {
		t.AddRow(csi,
			coder.AverageThroughput(csi),
			fixedLow.AverageThroughput(csi),
			fixedHigh.AverageThroughput(csi),
			coder.OutageProbability(csi))
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// E2: mode occupancy over a fading trace (Figure 1b, typical frame).
// ---------------------------------------------------------------------------

// E2ModeOccupancy simulates a Rayleigh-faded CSI trace at the given mean CSI
// and compares the empirical mode occupancy with the analytic distribution.
func E2ModeOccupancy(meanCSIdB float64, samples int) (*report.Table, error) {
	if samples <= 0 {
		samples = 100_000
	}
	coder, err := vtaoc.New(vtaoc.DefaultConfig())
	if err != nil {
		return nil, err
	}
	src := rng.New(42)
	counts := make([]int, coder.NumModes()+1)
	for i := 0; i < samples; i++ {
		instCSI := meanCSIdB + mathx.DB(src.RayleighPower())
		counts[coder.SelectMode(instCSI)]++
	}
	analytic := coder.ModeDistribution(meanCSIdB)
	t := report.NewTable(
		fmt.Sprintf("E2: VTAOC mode occupancy at mean CSI %.1f dB (%d symbols)", meanCSIdB, samples),
		"mode", "throughput", "empirical_fraction", "analytic_fraction")
	for q := 0; q <= coder.NumModes(); q++ {
		t.AddRow(q, coder.ModeThroughput(q),
			float64(counts[q])/float64(samples), analytic[q])
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// E3: forward-link multiple-burst admission optimality (eq. 7 + 19).
// ---------------------------------------------------------------------------

// E3ForwardAdmission generates random single-cell forward-link admission
// instances for increasing numbers of concurrent requests and reports the
// mean objective achieved by each scheduler relative to the exhaustive
// optimum.
func E3ForwardAdmission(instancesPerSize int) (*report.Table, error) {
	if instancesPerSize <= 0 {
		instancesPerSize = 20
	}
	t := report.NewTable("E3: scheduler objective relative to the exhaustive optimum (forward link, J1)",
		"concurrent_requests", "jaba_sd", "greedy", "fcfs", "equal_share", "random")
	src := rng.New(7)
	for nd := 1; nd <= 6; nd++ {
		sums := map[string]float64{}
		count := 0
		for inst := 0; inst < instancesPerSize; inst++ {
			p, err := randomForwardProblem(src, nd, 4)
			if err != nil {
				return nil, err
			}
			opt, err := exhaustiveOptimum(p)
			if err != nil {
				return nil, err
			}
			if opt <= 1e-9 {
				continue
			}
			count++
			for name, s := range map[string]core.Scheduler{
				"jaba_sd": core.NewJABASD(), "greedy": &core.GreedyJABASD{},
				"fcfs": &core.FCFS{}, "equal_share": &core.EqualShare{}, "random": core.NewRandom(uint64(inst)),
			} {
				a, err := s.Schedule(p)
				if err != nil {
					return nil, err
				}
				sums[name] += a.Objective / opt
			}
		}
		if count == 0 {
			continue
		}
		t.AddRow(nd, sums["jaba_sd"]/float64(count), sums["greedy"]/float64(count),
			sums["fcfs"]/float64(count), sums["equal_share"]/float64(count), sums["random"]/float64(count))
	}
	return t, nil
}

// randomForwardProblem builds a random single-cell admission instance.
func randomForwardProblem(src *rng.Source, nd, maxRatio int) (core.Problem, error) {
	reqs := make([]core.Request, nd)
	fwd := make([]measurement.ForwardRequest, nd)
	for j := 0; j < nd; j++ {
		reqs[j] = core.Request{
			UserID:        j,
			SizeBits:      src.Uniform(50_000, 2_000_000),
			WaitingTime:   src.Uniform(0, 15),
			AvgThroughput: src.Uniform(0.05, 1),
			MaxRatio:      maxRatio,
		}
		fwd[j] = measurement.ForwardRequest{
			UserID:   j,
			FCHPower: load.FromMap(map[int]float64{0: src.Uniform(0.1, 1.0)}),
			Alpha:    1,
		}
	}
	region, err := measurement.ForwardRegion(measurement.ForwardState{
		CurrentLoad: []float64{src.Uniform(5, 15)},
		MaxLoad:     20,
		GammaS:      1.25,
	}, fwd)
	if err != nil {
		return core.Problem{}, err
	}
	return core.Problem{
		Requests:  reqs,
		Region:    region,
		MaxRatio:  maxRatio,
		Objective: core.Objective{Kind: core.ObjectiveThroughput},
	}, nil
}

// exhaustiveOptimum computes the exact optimum of a small admission problem.
func exhaustiveOptimum(p core.Problem) (float64, error) {
	ub := make([]int, len(p.Requests))
	c := make([]float64, len(p.Requests))
	for j, r := range p.Requests {
		u := r.MaxRatio
		if u > p.MaxRatio {
			u = p.MaxRatio
		}
		ub[j] = u
		c[j] = r.AvgThroughput * (1 + r.Priority)
	}
	res, err := ilp.Exhaustive(ilp.Problem{C: c, A: p.Region.Coeff, B: p.Region.Bound, Upper: ub})
	if err != nil {
		return 0, err
	}
	if !res.Feasible {
		return 0, nil
	}
	return res.Objective, nil
}

// ---------------------------------------------------------------------------
// E4: reverse-link admission with SCRM neighbour protection (eq. 17).
// ---------------------------------------------------------------------------

// E4ReverseAdmission builds random multi-cell reverse-link instances and
// verifies/reports that every scheduler's assignment respects both the host
// cell and the projected neighbour-cell interference budgets, together with
// how much of the interference budget each scheduler uses.
func E4ReverseAdmission(instances int) (*report.Table, error) {
	if instances <= 0 {
		instances = 30
	}
	t := report.NewTable("E4: reverse-link admission — budget use and violations",
		"scheduler", "mean_served", "mean_budget_use", "violations")
	src := rng.New(11)
	schedulers := []core.Scheduler{core.NewJABASD(), &core.GreedyJABASD{}, &core.FCFS{}, &core.EqualShare{}}
	type acc struct {
		served, use float64
		violations  int
		n           int
	}
	results := map[string]*acc{}
	for _, s := range schedulers {
		results[s.Name()] = &acc{}
	}
	for i := 0; i < instances; i++ {
		p, err := randomReverseProblem(src, 2+src.Intn(4))
		if err != nil {
			return nil, err
		}
		for _, s := range schedulers {
			a, err := s.Schedule(p)
			if err != nil {
				return nil, err
			}
			r := results[s.Name()]
			r.n++
			r.served += float64(a.Served())
			if !p.Region.Feasible(a.Ratios) {
				r.violations++
			}
			head := p.Region.Headroom(a.Ratios)
			worst := 0.0
			for rIdx, h := range head {
				total := p.Region.Bound[rIdx]
				if total > 0 {
					used := 1 - h/total
					if used > worst {
						worst = used
					}
				}
			}
			r.use += worst
		}
	}
	for _, s := range schedulers {
		r := results[s.Name()]
		t.AddRow(s.Name(), r.served/float64(r.n), r.use/float64(r.n), r.violations)
	}
	return t, nil
}

// randomReverseProblem builds a random 3-cell reverse-link instance. All
// interference quantities are normalised by the thermal noise power (rise
// over thermal units), as in the simulator.
func randomReverseProblem(src *rng.Source, nd int) (core.Problem, error) {
	state := measurement.ReverseState{
		TotalReceived: []float64{src.Uniform(2, 6), src.Uniform(2, 6), src.Uniform(2, 6)},
		MaxReceived:   10,
		GammaS:        1.25,
		ShadowMargin:  1.5,
	}
	reqs := make([]core.Request, nd)
	rev := make([]measurement.ReverseRequest, nd)
	for j := 0; j < nd; j++ {
		host := src.Intn(3)
		neighbour := (host + 1 + src.Intn(2)) % 3
		reqs[j] = core.Request{
			UserID:        j,
			SizeBits:      src.Uniform(50_000, 2_000_000),
			WaitingTime:   src.Uniform(0, 10),
			AvgThroughput: src.Uniform(0.05, 1),
			MaxRatio:      8,
		}
		rev[j] = measurement.ReverseRequest{
			UserID:       j,
			HostCell:     host,
			ReversePilot: load.FromMap(map[int]float64{host: src.Uniform(0.001, 0.02)}),
			SCRM: measurement.NewSCRM(load.FromMap(map[int]float64{
				host:      src.Uniform(0.02, 0.1),
				neighbour: src.Uniform(0.001, 0.05),
			})),
			Zeta:  4,
			Alpha: 1,
		}
	}
	region, err := measurement.ReverseRegion(state, rev)
	if err != nil {
		return core.Problem{}, err
	}
	return core.Problem{
		Requests:  reqs,
		Region:    region,
		MaxRatio:  8,
		Objective: core.DefaultObjective(),
	}, nil
}

// ---------------------------------------------------------------------------
// E5: average packet delay vs offered load (headline dynamic-simulation claim).
// ---------------------------------------------------------------------------

// E5DelayVsLoad sweeps the number of data users per cell and reports the mean
// burst delay, 90th-percentile delay and per-cell throughput for JABA-SD,
// FCFS and equal-share under the full dynamic simulation.
func E5DelayVsLoad(ctx context.Context, s Scale) (*report.Table, error) {
	t := report.NewTable("E5: average burst delay vs offered load ("+s.Name+" scale)",
		"data_users_per_cell", "scheduler", "mean_delay_s", "p90_delay_s",
		"admission_wait_s", "throughput_per_cell_bps", "coverage", "completion")
	kinds := []sim.SchedulerKind{sim.SchedulerJABASD, sim.SchedulerFCFS, sim.SchedulerEqualShare}
	for _, load := range s.LoadPoints {
		cfg := baseConfig(s)
		cfg.DataUsersPerCell = load
		aggs, err := sim.CompareSchedulers(ctx, cfg, kinds, s.Replications)
		if err != nil {
			return nil, err
		}
		for _, k := range kinds {
			a := aggs[k]
			t.AddRow(load, string(k), a.MeanDelay.Mean(), a.P90Delay.Mean(),
				a.AdmissionWait.Mean(), a.Throughput.Mean(), a.Coverage.Mean(), a.CompletionRate.Mean())
		}
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// E6: data user capacity at a delay target.
// ---------------------------------------------------------------------------

// E6UserCapacity reports, for each scheduler, the largest load point from the
// scale's sweep whose mean burst admission wait (queueing before the first
// grant, the part of the delay the admission algorithm controls) stays below
// the target — the paper's "data user capacity" metric.
func E6UserCapacity(ctx context.Context, s Scale, waitTargetS float64) (*report.Table, error) {
	if waitTargetS <= 0 {
		waitTargetS = 2
	}
	t := report.NewTable(fmt.Sprintf("E6: data user capacity at mean admission wait target %.1f s (%s scale)", waitTargetS, s.Name),
		"scheduler", "capacity_users_per_cell", "wait_at_capacity_s")
	kinds := []sim.SchedulerKind{sim.SchedulerJABASD, sim.SchedulerFCFS, sim.SchedulerEqualShare}
	capacity := map[sim.SchedulerKind]int{}
	waitAt := map[sim.SchedulerKind]float64{}
	for _, load := range s.LoadPoints {
		cfg := baseConfig(s)
		cfg.DataUsersPerCell = load
		aggs, err := sim.CompareSchedulers(ctx, cfg, kinds, s.Replications)
		if err != nil {
			return nil, err
		}
		for _, k := range kinds {
			if aggs[k].AdmissionWait.Mean() <= waitTargetS {
				capacity[k] = load
				waitAt[k] = aggs[k].AdmissionWait.Mean()
			}
		}
	}
	for _, k := range kinds {
		t.AddRow(string(k), capacity[k], waitAt[k])
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// E7: coverage vs shadowing severity.
// ---------------------------------------------------------------------------

// E7Coverage sweeps the shadowing standard deviation and reports the coverage
// (fraction of completed bursts served at least at the FCH rate) for JABA-SD
// and FCFS.
func E7Coverage(ctx context.Context, s Scale) (*report.Table, error) {
	t := report.NewTable("E7: coverage vs shadowing sigma ("+s.Name+" scale)",
		"shadow_sigma_dB", "scheduler", "coverage", "mean_delay_s")
	kinds := []sim.SchedulerKind{sim.SchedulerJABASD, sim.SchedulerFCFS}
	for _, sigma := range []float64{4, 8, 12} {
		cfg := baseConfig(s)
		cfg.ShadowSigmaDB = sigma
		aggs, err := sim.CompareSchedulers(ctx, cfg, kinds, s.Replications)
		if err != nil {
			return nil, err
		}
		for _, k := range kinds {
			t.AddRow(sigma, string(k), aggs[k].Coverage.Mean(), aggs[k].MeanDelay.Mean())
		}
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// E8: joint design ablation (adaptive PHY x scheduler).
// ---------------------------------------------------------------------------

// E8JointDesignAblation runs the 2x2 design {adaptive, fixed-rate} PHY x
// {JABA-SD, FCFS} and reports delay and throughput, demonstrating the paper's
// synergy claim: the gain of the joint design exceeds the sum of either
// component alone.
func E8JointDesignAblation(ctx context.Context, s Scale) (*report.Table, error) {
	t := report.NewTable("E8: joint design ablation ("+s.Name+" scale)",
		"phy", "scheduler", "mean_delay_s", "throughput_per_cell_bps", "coverage")
	for _, fixed := range []bool{false, true} {
		for _, k := range []sim.SchedulerKind{sim.SchedulerJABASD, sim.SchedulerFCFS} {
			cfg := baseConfig(s)
			cfg.UseFixedRatePHY = fixed
			cfg.FixedRateMode = 3
			cfg.Scheduler = k
			agg, err := sim.RunReplications(ctx, cfg, s.Replications)
			if err != nil {
				return nil, err
			}
			phyName := "adaptive-vtaoc"
			if fixed {
				phyName = "fixed-mode3"
			}
			t.AddRow(phyName, string(k), agg.MeanDelay.Mean(), agg.Throughput.Mean(), agg.Coverage.Mean())
		}
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// E9: objective J1 vs J2 trade-off.
// ---------------------------------------------------------------------------

// E9ObjectiveTradeoff sweeps the delay-penalty weight λ of objective J2
// (λ = 0 is J1) and reports mean delay, p90 delay and throughput under
// JABA-SD, exposing the utilisation/delay trade-off of Section 3.2.
func E9ObjectiveTradeoff(ctx context.Context, s Scale) (*report.Table, error) {
	t := report.NewTable("E9: objective J1 vs J2 trade-off ("+s.Name+" scale)",
		"lambda", "mean_delay_s", "p90_delay_s", "throughput_per_cell_bps")
	for _, lambda := range []float64{0, 0.05, 0.2, 0.5} {
		cfg := baseConfig(s)
		// Run at a high load point: the delay penalty only changes decisions
		// when requests actually compete for the same frame's resources.
		cfg.DataUsersPerCell = 18
		if lambda == 0 {
			cfg.Objective = core.Objective{Kind: core.ObjectiveThroughput}
		} else {
			cfg.Objective = core.Objective{Kind: core.ObjectiveDelayAware, Lambda: lambda, RateScale: 16}
		}
		agg, err := sim.RunReplications(ctx, cfg, s.Replications)
		if err != nil {
			return nil, err
		}
		t.AddRow(lambda, agg.MeanDelay.Mean(), agg.P90Delay.Mean(), agg.Throughput.Mean())
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// E10: MAC state set-up penalty effect (Figure 3, eq. 22-23).
// ---------------------------------------------------------------------------

// E10MacStates sweeps the Suspended-state set-up penalty D2 and reports the
// resulting mean burst delay and admission wait, quantifying how much the
// MAC state machine contributes to the overall packet delay.
func E10MacStates(ctx context.Context, s Scale) (*report.Table, error) {
	t := report.NewTable("E10: MAC set-up penalty sweep ("+s.Name+" scale)",
		"D2_seconds", "mean_delay_s", "mean_admission_wait_s")
	for _, d2 := range []float64{0.2, 1.0, 3.0} {
		cfg := baseConfig(s)
		// High load so that queueing pushes users past the T2/T3 timers and
		// the Suspended-state set-up penalty actually gets charged.
		cfg.DataUsersPerCell = 18
		cfg.MAC.D2 = d2
		if cfg.MAC.D1 > d2 {
			cfg.MAC.D1 = d2
		}
		agg, err := sim.RunReplications(ctx, cfg, s.Replications)
		if err != nil {
			return nil, err
		}
		t.AddRow(d2, agg.MeanDelay.Mean(), agg.AdmissionWait.Mean())
	}
	return t, nil
}

func scaleInstances(s Scale) int {
	if s.Name == "full" {
		return 60
	}
	return 15
}

// SanityCheckE1 verifies the monotonicity property that makes E1 meaningful
// (used by tests): the adaptive throughput never decreases with the CSI and
// never falls below either fixed mode.
func SanityCheckE1(t *report.Table) error {
	prev := math.Inf(-1)
	for _, row := range t.Rows {
		var adaptive float64
		if _, err := fmt.Sscanf(row[1], "%g", &adaptive); err != nil {
			return err
		}
		if adaptive < prev-1e-9 {
			return fmt.Errorf("adaptive throughput decreased: %v after %v", adaptive, prev)
		}
		prev = adaptive
	}
	return nil
}
