package load

import (
	"bytes"
	"reflect"
	"testing"

	"jabasd/internal/checkpoint"
)

func TestVecStateRoundTrip(t *testing.T) {
	orig := MakeVec(4)
	orig.Set(7, 1.25)
	orig.Set(2, -0.5)
	orig.Set(11, 3e-9)

	var buf bytes.Buffer
	w := checkpoint.NewWriter(&buf)
	w.Section("vec")
	orig.EncodeState(w)
	var empty Vec
	empty.EncodeState(w)
	if err := w.Close(); err != nil {
		t.Fatalf("encode: %v", err)
	}

	r, err := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if err := r.Section("vec"); err != nil {
		t.Fatal(err)
	}
	var restored, restoredEmpty Vec
	restored.DecodeState(r)
	restoredEmpty.DecodeState(r)
	if err := r.Close(); err != nil {
		t.Fatalf("decode: %v", err)
	}

	if restored.Len() != orig.Len() {
		t.Fatalf("restored %d entries, want %d", restored.Len(), orig.Len())
	}
	for i := 0; i < orig.Len(); i++ {
		oc, ov := orig.At(i)
		rc, rv := restored.At(i)
		if oc != rc || ov != rv {
			t.Fatalf("entry %d: restored (%d, %v), want (%d, %v)", i, rc, rv, oc, ov)
		}
	}
	if restoredEmpty.Len() != 0 {
		t.Fatalf("restored empty vec has %d entries", restoredEmpty.Len())
	}
	// The entry order is part of the state (AddVec walks it), so the slices
	// themselves must match, not just the cell -> value mapping.
	if !reflect.DeepEqual(orig.cells, restored.cells) {
		t.Fatalf("cell order diverged: %v vs %v", restored.cells, orig.cells)
	}
}
