// Package load provides the dense, slice-backed cell-load containers used by
// the simulation hot path: a Vec holding a handful of (cell, value) pairs —
// a user's per-cell FCH power, a burst's per-cell resource footprint — and a
// Ledger accumulating the per-cell totals of a frame. Both are allocated
// once and reset in place, so the per-frame admission loop runs without the
// map allocations the engine originally paid for every user and request.
package load

import "sort"

// Vec is a small cell-indexed vector: an ordered list of (cell, value)
// pairs with unique cells. It replaces the map[int]float64 fields of the
// engine and the measurement sub-layer. A Vec is reset and refilled in
// place, so a long-lived Vec reaches a steady state where Set never
// allocates. Copying a Vec by value shares its backing storage; use Clone
// for an independent snapshot.
type Vec struct {
	cells []int
	vals  []float64
}

// MakeVec returns an empty Vec with room for capacity entries.
func MakeVec(capacity int) Vec {
	return Vec{cells: make([]int, 0, capacity), vals: make([]float64, 0, capacity)}
}

// FromMap builds a Vec from a cell -> value map, ordered by ascending cell
// index so the result is deterministic. Intended for tests and examples; the
// hot path fills Vecs with Reset + Set.
func FromMap(m map[int]float64) Vec {
	cells := make([]int, 0, len(m))
	for k := range m {
		cells = append(cells, k)
	}
	sort.Ints(cells)
	v := MakeVec(len(m))
	for _, k := range cells {
		v.Set(k, m[k])
	}
	return v
}

// Len returns the number of entries.
func (v Vec) Len() int { return len(v.cells) }

// At returns the i-th (cell, value) pair in insertion order.
func (v Vec) At(i int) (cell int, val float64) { return v.cells[i], v.vals[i] }

// Get returns the value stored for cell, if any.
func (v Vec) Get(cell int) (float64, bool) {
	for i, c := range v.cells {
		if c == cell {
			return v.vals[i], true
		}
	}
	return 0, false
}

// Reset empties the Vec, keeping its capacity.
func (v *Vec) Reset() {
	v.cells = v.cells[:0]
	v.vals = v.vals[:0]
}

// Set stores val for cell, replacing any existing entry.
func (v *Vec) Set(cell int, val float64) {
	for i, c := range v.cells {
		if c == cell {
			v.vals[i] = val
			return
		}
	}
	v.cells = append(v.cells, cell)
	v.vals = append(v.vals, val)
}

// Clone returns an independent copy.
func (v Vec) Clone() Vec {
	return Vec{
		cells: append([]int(nil), v.cells...),
		vals:  append([]float64(nil), v.vals...),
	}
}

// CloneScaled returns an independent copy with every value multiplied by s.
// The engine uses it to freeze a burst's per-cell footprint at grant time.
func (v Vec) CloneScaled(s float64) Vec {
	out := Vec{
		cells: append([]int(nil), v.cells...),
		vals:  make([]float64, len(v.vals)),
	}
	for i, x := range v.vals {
		out.vals[i] = x * s
	}
	return out
}

// AddTo accumulates the Vec into a dense per-cell slice: dst[cell] += value.
// Cells outside dst are ignored.
func (v Vec) AddTo(dst []float64) {
	for i, c := range v.cells {
		if c >= 0 && c < len(dst) {
			dst[c] += v.vals[i]
		}
	}
}

// Sum returns the total of all values.
func (v Vec) Sum() float64 {
	t := 0.0
	for _, x := range v.vals {
		t += x
	}
	return t
}

// Ledger is the dense per-cell accumulator for one frame's resource use:
// forward-link transmit power or reverse-link received power, indexed by
// cell. It is allocated once per engine and refilled every frame.
type Ledger struct {
	vals []float64
}

// NewLedger returns a Ledger for nCells cells, all zero.
func NewLedger(nCells int) *Ledger {
	return &Ledger{vals: make([]float64, nCells)}
}

// NumCells returns the number of cells tracked.
func (l *Ledger) NumCells() int { return len(l.vals) }

// Fill sets every cell to x (the per-frame reset: common-channel overhead on
// the forward link, the normalised noise floor on the reverse link).
func (l *Ledger) Fill(x float64) {
	for k := range l.vals {
		l.vals[k] = x
	}
}

// Add accumulates x into cell.
func (l *Ledger) Add(cell int, x float64) { l.vals[cell] += x }

// AddVec accumulates every entry of v.
func (l *Ledger) AddVec(v Vec) { v.AddTo(l.vals) }

// Get returns the current total for cell.
func (l *Ledger) Get(cell int) float64 { return l.vals[cell] }

// Values exposes the dense per-cell slice (shared, not a copy): this is what
// the measurement sub-layer reads as ForwardState.CurrentLoad or
// ReverseState.TotalReceived.
func (l *Ledger) Values() []float64 { return l.vals }
