package load

import (
	"math"
	"testing"
)

func TestVecSetGetReplace(t *testing.T) {
	var v Vec
	if v.Len() != 0 {
		t.Fatal("zero Vec should be empty")
	}
	v.Set(3, 1.5)
	v.Set(0, 2.0)
	v.Set(3, 4.0) // replace
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2", v.Len())
	}
	if x, ok := v.Get(3); !ok || x != 4.0 {
		t.Errorf("Get(3) = %v, %v", x, ok)
	}
	if x, ok := v.Get(0); !ok || x != 2.0 {
		t.Errorf("Get(0) = %v, %v", x, ok)
	}
	if _, ok := v.Get(7); ok {
		t.Error("Get(7) should miss")
	}
	c, x := v.At(0)
	if c != 3 || x != 4.0 {
		t.Errorf("At(0) = %d, %v (insertion order expected)", c, x)
	}
}

func TestVecResetKeepsCapacityAndAllocFree(t *testing.T) {
	v := MakeVec(4)
	allocs := testing.AllocsPerRun(100, func() {
		v.Reset()
		v.Set(0, 1)
		v.Set(5, 2)
		v.Set(2, 3)
	})
	if allocs != 0 {
		t.Errorf("Reset+Set allocated %v times per run, want 0", allocs)
	}
}

func TestVecFromMapSortedByCell(t *testing.T) {
	v := FromMap(map[int]float64{5: 0.5, 1: 0.1, 3: 0.3})
	want := []int{1, 3, 5}
	if v.Len() != 3 {
		t.Fatalf("Len = %d", v.Len())
	}
	for i, wc := range want {
		c, x := v.At(i)
		if c != wc {
			t.Errorf("At(%d) cell = %d, want %d", i, c, wc)
		}
		if math.Abs(x-float64(wc)/10) > 1e-15 {
			t.Errorf("At(%d) val = %v", i, x)
		}
	}
}

func TestVecCloneIndependence(t *testing.T) {
	var v Vec
	v.Set(1, 2)
	c := v.Clone()
	v.Set(1, 9)
	v.Set(4, 4)
	if x, _ := c.Get(1); x != 2 {
		t.Error("Clone should not share mutations")
	}
	if c.Len() != 1 {
		t.Error("Clone grew with the original")
	}
	s := v.CloneScaled(2)
	if x, _ := s.Get(1); x != 18 {
		t.Errorf("CloneScaled value = %v, want 18", x)
	}
	if x, _ := s.Get(4); x != 8 {
		t.Errorf("CloneScaled value = %v, want 8", x)
	}
}

func TestVecAddToAndSum(t *testing.T) {
	var v Vec
	v.Set(0, 1)
	v.Set(2, 3)
	v.Set(9, 100) // out of range for dst: ignored
	dst := []float64{10, 10, 10}
	v.AddTo(dst)
	if dst[0] != 11 || dst[1] != 10 || dst[2] != 13 {
		t.Errorf("AddTo -> %v", dst)
	}
	if v.Sum() != 104 {
		t.Errorf("Sum = %v", v.Sum())
	}
}

func TestLedger(t *testing.T) {
	l := NewLedger(3)
	if l.NumCells() != 3 {
		t.Fatalf("NumCells = %d", l.NumCells())
	}
	l.Fill(2)
	l.Add(1, 0.5)
	var v Vec
	v.Set(0, 1)
	v.Set(1, 1)
	l.AddVec(v)
	if l.Get(0) != 3 || l.Get(1) != 3.5 || l.Get(2) != 2 {
		t.Errorf("ledger = %v", l.Values())
	}
	// Values is a live view, not a copy.
	l.Values()[2] = 7
	if l.Get(2) != 7 {
		t.Error("Values must alias the ledger storage")
	}
	// Fill/Add are allocation free.
	allocs := testing.AllocsPerRun(100, func() {
		l.Fill(0)
		l.Add(2, 1)
	})
	if allocs != 0 {
		t.Errorf("Ledger ops allocated %v times per run", allocs)
	}
}
