package load

import "jabasd/internal/checkpoint"

// EncodeState appends the vector's entries in their stored order (Set order,
// which downstream AddVec walks, so the order is part of the state).
func (v *Vec) EncodeState(w *checkpoint.Writer) {
	w.Ints(v.cells)
	w.F64s(v.vals)
}

// DecodeState restores the state written by EncodeState.
func (v *Vec) DecodeState(rd *checkpoint.Reader) {
	v.cells = rd.Ints()
	v.vals = rd.F64s()
	if len(v.cells) != len(v.vals) {
		rd.Fail("load vector with %d cells but %d values", len(v.cells), len(v.vals))
	}
}
