// Package powerctl implements the CDMA power control loops used by the
// dynamic simulator: the fast closed-loop SIR-based control (up/down commands
// at the power-control group rate, 1.5 dB default step) that keeps the
// fundamental channel at its Eb/Io target, and the open-loop initial power
// estimate used when a link is first established.
//
// Power control matters to burst admission because the forward-link loading
// P_{j,k} and the reverse-link received power X_{j,k}(FCH) that enter the
// admissible region (paper eq. 6-12) are exactly the powers these loops
// settle at.
package powerctl

import (
	"math"

	"jabasd/internal/mathx"
)

// Loop is a closed-loop fast power control state machine for one link.
// The zero value is not usable; construct with NewLoop.
type Loop struct {
	targetSIRdB float64
	stepDB      float64
	minPowerDBm float64
	maxPowerDBm float64
	powerDBm    float64
	// error statistics
	updates  int64
	upCmds   int64
	downCmds int64
}

// Config parameterises a power control loop.
type Config struct {
	TargetSIRdB  float64 // Eb/Io (or Es/Io) target for the controlled channel
	StepDB       float64 // per-command step, cdma2000 uses 1.0 or 0.5 dB; default 1.0
	MinPowerDBm  float64 // transmitter floor
	MaxPowerDBm  float64 // transmitter ceiling
	InitialPower float64 // initial transmit power in dBm
}

// DefaultConfig returns a typical reverse-link FCH configuration: 7 dB Eb/Io
// target, 1 dB steps, -50..+23 dBm mobile transmit range.
func DefaultConfig() Config {
	return Config{
		TargetSIRdB:  7,
		StepDB:       1,
		MinPowerDBm:  -50,
		MaxPowerDBm:  23,
		InitialPower: 0,
	}
}

// NewLoop creates a power control loop.
func NewLoop(cfg Config) *Loop {
	if cfg.StepDB <= 0 {
		cfg.StepDB = 1
	}
	if cfg.MaxPowerDBm < cfg.MinPowerDBm {
		cfg.MaxPowerDBm = cfg.MinPowerDBm
	}
	return &Loop{
		targetSIRdB: cfg.TargetSIRdB,
		stepDB:      cfg.StepDB,
		minPowerDBm: cfg.MinPowerDBm,
		maxPowerDBm: cfg.MaxPowerDBm,
		powerDBm:    mathx.Clamp(cfg.InitialPower, cfg.MinPowerDBm, cfg.MaxPowerDBm),
	}
}

// PowerDBm returns the current transmit power in dBm.
func (l *Loop) PowerDBm() float64 { return l.powerDBm }

// PowerMW returns the current transmit power in milliwatts.
func (l *Loop) PowerMW() float64 { return math.Pow(10, l.powerDBm/10) }

// TargetSIRdB returns the loop's SIR target.
func (l *Loop) TargetSIRdB() float64 { return l.targetSIRdB }

// SetTargetSIRdB changes the SIR target (outer-loop power control hook).
func (l *Loop) SetTargetSIRdB(v float64) { l.targetSIRdB = v }

// Update runs one power control group: given the measured SIR in dB at the
// receiver, the receiver commands up (measured < target) or down and the
// transmitter applies one step, saturating at the power limits. It returns
// the new transmit power in dBm.
func (l *Loop) Update(measuredSIRdB float64) float64 {
	l.updates++
	if measuredSIRdB < l.targetSIRdB {
		l.powerDBm += l.stepDB
		l.upCmds++
	} else {
		l.powerDBm -= l.stepDB
		l.downCmds++
	}
	l.powerDBm = mathx.Clamp(l.powerDBm, l.minPowerDBm, l.maxPowerDBm)
	return l.powerDBm
}

// Saturated reports whether the loop is pinned at either power limit.
func (l *Loop) Saturated() bool {
	return l.powerDBm == l.minPowerDBm || l.powerDBm == l.maxPowerDBm
}

// Stats returns the number of updates, up commands and down commands.
func (l *Loop) Stats() (updates, up, down int64) {
	return l.updates, l.upCmds, l.downCmds
}

// OpenLoopPower returns the open-loop initial transmit power estimate (dBm)
// for a link with the given path gain (dB, negative) so that the receiver
// sees the target received power (dBm). The result is clamped to the
// transmitter range.
func OpenLoopPower(targetRxDBm, pathGainDB, minDBm, maxDBm float64) float64 {
	return mathx.Clamp(targetRxDBm-pathGainDB, minDBm, maxDBm)
}

// RequiredPowerForSIR computes the transmit power (linear, same unit as
// interference) needed to reach the SIR target given the link power gain and
// the total interference-plus-noise at the receiver, with a processing gain
// applied (SIR = gain * P * pg / interference). It returns +Inf when the gain
// is non-positive.
func RequiredPowerForSIR(targetSIR, linkGain, interference, processingGain float64) float64 {
	if linkGain <= 0 || processingGain <= 0 {
		return math.Inf(1)
	}
	if interference < 0 {
		interference = 0
	}
	return targetSIR * interference / (linkGain * processingGain)
}
