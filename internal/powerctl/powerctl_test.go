package powerctl

import (
	"math"
	"testing"
)

func TestLoopConvergesToTarget(t *testing.T) {
	// Simple static channel: received SIR = txPower(dB) + gain - interference.
	cfg := DefaultConfig()
	cfg.InitialPower = -20
	l := NewLoop(cfg)
	gainDB := -100.0
	interferenceDBm := -110.0
	var sir float64
	for i := 0; i < 500; i++ {
		sir = l.PowerDBm() + gainDB - interferenceDBm
		l.Update(sir)
	}
	// Converged SIR should oscillate within one step of the target.
	if math.Abs(sir-cfg.TargetSIRdB) > 2*cfg.StepDB {
		t.Errorf("converged SIR = %v, want ~%v", sir, cfg.TargetSIRdB)
	}
	up, down := int64(0), int64(0)
	var updates int64
	updates, up, down = l.Stats()
	if updates != 500 || up+down != 500 {
		t.Errorf("stats inconsistent: %d %d %d", updates, up, down)
	}
}

func TestLoopSaturatesAtMax(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitialPower = 0
	l := NewLoop(cfg)
	for i := 0; i < 1000; i++ {
		l.Update(-100) // hopeless SIR: always command up
	}
	if l.PowerDBm() != cfg.MaxPowerDBm {
		t.Errorf("power = %v, want max %v", l.PowerDBm(), cfg.MaxPowerDBm)
	}
	if !l.Saturated() {
		t.Error("loop should report saturation")
	}
}

func TestLoopSaturatesAtMin(t *testing.T) {
	cfg := DefaultConfig()
	l := NewLoop(cfg)
	for i := 0; i < 1000; i++ {
		l.Update(100) // excellent SIR: always command down
	}
	if l.PowerDBm() != cfg.MinPowerDBm {
		t.Errorf("power = %v, want min %v", l.PowerDBm(), cfg.MinPowerDBm)
	}
	if !l.Saturated() {
		t.Error("loop should report saturation")
	}
}

func TestLoopStepDirection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitialPower = 0
	l := NewLoop(cfg)
	p0 := l.PowerDBm()
	l.Update(cfg.TargetSIRdB - 5) // below target -> up
	if l.PowerDBm() != p0+cfg.StepDB {
		t.Errorf("expected up step")
	}
	l.Update(cfg.TargetSIRdB + 5) // above target -> down
	if l.PowerDBm() != p0 {
		t.Errorf("expected down step back to %v, got %v", p0, l.PowerDBm())
	}
}

func TestNewLoopDefaults(t *testing.T) {
	l := NewLoop(Config{TargetSIRdB: 5, StepDB: 0, MinPowerDBm: 10, MaxPowerDBm: -10, InitialPower: 50})
	if l.stepDB != 1 {
		t.Errorf("default step = %v", l.stepDB)
	}
	// Max below min gets clamped to min, and power clamps into range.
	if l.maxPowerDBm != l.minPowerDBm {
		t.Errorf("max should clamp to min")
	}
	if l.PowerDBm() != 10 {
		t.Errorf("initial power should clamp to %v, got %v", 10.0, l.PowerDBm())
	}
}

func TestPowerMWConsistent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitialPower = 10
	l := NewLoop(cfg)
	if math.Abs(l.PowerMW()-10) > 1e-9 {
		t.Errorf("10 dBm = %v mW, want 10", l.PowerMW())
	}
}

func TestSetTarget(t *testing.T) {
	l := NewLoop(DefaultConfig())
	l.SetTargetSIRdB(12)
	if l.TargetSIRdB() != 12 {
		t.Error("SetTargetSIRdB not applied")
	}
}

func TestOpenLoopPower(t *testing.T) {
	// Want -100 dBm received over a 120 dB loss link: transmit at +20 dBm.
	got := OpenLoopPower(-100, -120, -50, 23)
	if got != 20 {
		t.Errorf("OpenLoopPower = %v, want 20", got)
	}
	// Clamped at the ceiling.
	if got := OpenLoopPower(-80, -120, -50, 23); got != 23 {
		t.Errorf("OpenLoopPower = %v, want clamp at 23", got)
	}
	if got := OpenLoopPower(-150, -20, -50, 23); got != -50 {
		t.Errorf("OpenLoopPower = %v, want clamp at -50", got)
	}
}

func TestRequiredPowerForSIR(t *testing.T) {
	// SIR = gain*P*pg / I  =>  P = SIR*I/(gain*pg).
	p := RequiredPowerForSIR(5, 1e-10, 1e-12, 256)
	want := 5 * 1e-12 / (1e-10 * 256)
	if math.Abs(p-want)/want > 1e-12 {
		t.Errorf("RequiredPowerForSIR = %v, want %v", p, want)
	}
	if !math.IsInf(RequiredPowerForSIR(5, 0, 1e-12, 256), 1) {
		t.Error("zero gain should need infinite power")
	}
	if !math.IsInf(RequiredPowerForSIR(5, 1e-10, 1e-12, 0), 1) {
		t.Error("zero processing gain should need infinite power")
	}
	if RequiredPowerForSIR(5, 1e-10, -1, 256) != 0 {
		t.Error("negative interference should clamp to zero")
	}
}
