// Package serve is the memory-resident JABA-SD service behind cmd/jabaserve:
// a long-lived HTTP/JSON API over the same engine the CLIs drive. It keeps
// a bounded queue of simulation jobs (single runs, parameter sweeps, the
// experiment suite — the jobspec types, verbatim) drained by a fixed worker
// pool, streams sweep progress in grid order as CSV/NDJSON/SSE, and exposes
// the paper's per-frame admission ILP directly through an oracle endpoint
// backed by resident warm solvers, so scheduling a frame costs a solve
// rather than a process start.
//
// Endpoints (all under /v1):
//
//	GET    /v1/healthz          liveness
//	GET    /v1/presets          named scenario presets
//	GET    /v1/grids            built-in sweep grids
//	GET    /v1/axes             sweepable axis reference
//	POST   /v1/jobs             submit a JobSpec (202, or 429 when the queue is full)
//	GET    /v1/jobs             list jobs in submission order
//	GET    /v1/jobs/{id}        one job's status
//	DELETE /v1/jobs/{id}        cancel (idempotent; running jobs stop at the next frame)
//	GET    /v1/jobs/{id}/result finished result (409 while unfinished; ?format=json|csv)
//	GET    /v1/jobs/{id}/stream follow progress rows (CSV; NDJSON or SSE via Accept/?format)
//	POST   /v1/oracle           one frame's admission problem → the paper's grants
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"jabasd/internal/report"
	"jabasd/internal/scenario"
	"jabasd/internal/sweep"
)

// Options sizes the server. Zero values pick the documented defaults.
type Options struct {
	// QueueDepth bounds how many jobs may wait beyond the ones running;
	// submissions past it receive 429 (default 16).
	QueueDepth int
	// Workers is the number of jobs run concurrently (default 2). Each
	// job's internal fan-out defaults to GOMAXPROCS/Workers so concurrent
	// jobs share the CPUs instead of oversubscribing them.
	Workers int
	// OracleWorkers is the number of resident warm JABA-SD solver
	// instances, which bounds concurrent oracle solves (default 2).
	OracleWorkers int
	// JournalDir, when set, persists every accepted JobSpec as
	// <JournalDir>/<id>.json until the job settles, and New re-submits any
	// specs found there — so jobs that were queued or running when the
	// process died are re-run after a restart. Jobs cancelled by server
	// shutdown keep their journal entry (they did not finish); jobs
	// cancelled through the API drop it.
	JournalDir string
	// EnableChaos accepts job specs carrying a chaos clause (injected
	// worker panics and hangs). Off by default: chaos is a test-and-drill
	// facility, not something a production queue should honour.
	EnableChaos bool
	// RetryBaseDelay is the first retry's backoff; attempt n waits
	// RetryBaseDelay << n (default 500ms). Tests shrink it.
	RetryBaseDelay time.Duration
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.OracleWorkers <= 0 {
		o.OracleWorkers = 2
	}
	if o.RetryBaseDelay <= 0 {
		o.RetryBaseDelay = 500 * time.Millisecond
	}
	return o
}

// Server is the resident service: job queue, worker pool, oracle pool and
// the HTTP handler over them. Create with New, serve via Handler, stop with
// Close.
type Server struct {
	opts        Options
	mux         *http.ServeMux
	oracle      *oraclePool
	jobParallel int

	baseCtx context.Context
	stop    context.CancelFunc
	queue   chan *Job
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
	jobs   map[string]*Job
	order  []string
	nextID uint64
}

// New starts the worker pool and returns the server.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		opts:        opts,
		mux:         http.NewServeMux(),
		oracle:      newOraclePool(opts.OracleWorkers),
		jobParallel: max(1, runtime.GOMAXPROCS(0)/opts.Workers),
		baseCtx:     ctx,
		stop:        stop,
		queue:       make(chan *Job, opts.QueueDepth),
		jobs:        make(map[string]*Job),
	}
	s.routes()
	s.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	if opts.JournalDir != "" {
		s.recoverJournal()
	}
	return s
}

// recoverJournal re-submits the specs of jobs that had not settled when the
// previous process exited. Files that do not resolve (or no longer fit the
// queue) are left in place for the operator — recovery never destroys a
// spec it could not re-run.
func (s *Server) recoverJournal() {
	entries, err := os.ReadDir(s.opts.JournalDir)
	if err != nil {
		return
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(s.opts.JournalDir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		var spec JobSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			continue
		}
		j, err := s.submit(spec)
		if err != nil {
			continue
		}
		// The resubmitted job journals under its own (new) id; drop the old
		// entry unless the names happen to coincide.
		if j.journal != path {
			os.Remove(path)
		}
	}
}

// Submission failure modes the HTTP layer maps to distinct status codes.
var (
	errShuttingDown = errors.New("serve: server is shutting down")
	errQueueFull    = errors.New("serve: job queue full")
)

// submit resolves, registers, journals and enqueues one job.
func (s *Server) submit(spec JobSpec) (*Job, error) {
	if spec.DeadlineSec < 0 {
		return nil, errors.New("serve: deadline_sec must be >= 0")
	}
	if spec.Retries < 0 {
		return nil, errors.New("serve: retries must be >= 0")
	}
	if spec.Chaos != nil {
		if !s.opts.EnableChaos {
			return nil, errors.New("serve: chaos injection is disabled; start the server with -chaos")
		}
		if err := spec.Chaos.validate(); err != nil {
			return nil, err
		}
	}
	work, err := spec.resolve(s.jobParallel)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errShuttingDown
	}
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	ctx, cancel := context.WithCancel(s.baseCtx)
	j := newJob(id, spec, work, ctx, cancel)
	if s.opts.JournalDir != "" {
		// Journal before enqueueing: once a worker can see the job its
		// crash-recovery record must already exist.
		j.journal = filepath.Join(s.opts.JournalDir, id+".json")
		data, err := json.Marshal(spec)
		if err == nil {
			err = os.WriteFile(j.journal, data, 0o644)
		}
		if err != nil {
			s.nextID--
			s.mu.Unlock()
			cancel()
			return nil, fmt.Errorf("serve: journaling job: %w", err)
		}
	}
	// Registration and enqueueing happen under one lock so a full queue
	// leaves no orphaned job behind.
	select {
	case s.queue <- j:
		s.jobs[id] = j
		s.order = append(s.order, id)
		s.mu.Unlock()
		return j, nil
	default:
		s.nextID--
		s.mu.Unlock()
		cancel()
		if j.journal != "" {
			os.Remove(j.journal)
		}
		return nil, errQueueFull
	}
}

// Handler returns the HTTP handler serving the /v1 API.
func (s *Server) Handler() http.Handler { return s.mux }

// Close rejects further submissions, cancels every queued and running job
// and waits for the workers to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.stop()       // cancels every job context: running jobs stop at the next frame
	close(s.queue) // workers exit once the queue drains
	s.wg.Wait()
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		j.mu.Lock()
		if j.state != StateQueued { // cancelled while waiting
			j.mu.Unlock()
			continue
		}
		j.state = StateRunning
		j.broadcast()
		j.mu.Unlock()
		s.runJob(j)
	}
}

// runJob executes one job with the server's fault containment: a panic in
// the job fails the job (never the worker), an optional per-job deadline
// bounds its wall clock, and transient failures retry with exponential
// backoff up to the spec's retry budget. Deadline expiry and cancellation
// are terminal — retrying either would only repeat it.
func (s *Server) runJob(j *Job) {
	deadline := time.Duration(j.Spec.DeadlineSec * float64(time.Second))
	var err error
	for attempt := 0; ; attempt++ {
		j.mu.Lock()
		j.attempts = attempt + 1
		j.mu.Unlock()
		err = s.runAttempt(j, deadline)
		if err == nil {
			return // the job's work already called finish with its result
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			break
		}
		if attempt >= j.Spec.Retries {
			break
		}
		// A fresh resolve gives the retry a clean result accumulator (the
		// first attempt's runnable may hold partial rows); the original
		// resolved at submission, so a failure here is transient too.
		if work, rerr := j.Spec.resolve(s.jobParallel); rerr == nil {
			j.mu.Lock()
			j.work = work
			j.rows = nil
			j.broadcast()
			j.mu.Unlock()
		}
		select {
		case <-time.After(s.opts.RetryBaseDelay << uint(attempt)):
		case <-j.ctx.Done():
			err = j.ctx.Err()
			j.finish(err, nil)
			return
		}
	}
	if errors.Is(err, context.DeadlineExceeded) && deadline > 0 {
		err = fmt.Errorf("serve: job exceeded its %gs deadline: %w", j.Spec.DeadlineSec, err)
	}
	j.finish(err, nil)
}

// runAttempt runs one attempt under the job's context (bounded by the
// deadline when one is set), converting a panic anywhere in the job's work
// into an ordinary error.
func (s *Server) runAttempt(j *Job, deadline time.Duration) (err error) {
	ctx := j.ctx
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: job panicked: %v", r)
		}
	}()
	if c := j.Spec.Chaos; c != nil {
		if cerr := c.fire(ctx); cerr != nil {
			return cerr
		}
	}
	return j.work.run(ctx, j)
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /v1/presets", s.handlePresets)
	s.mux.HandleFunc("GET /v1/grids", s.handleGrids)
	s.mux.HandleFunc("GET /v1/axes", s.handleAxes)
	s.mux.HandleFunc("POST /v1/jobs", s.handleCreateJob)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleJobStream)
	s.mux.HandleFunc("POST /v1/oracle", s.handleOracle)
}

// writeJSON renders v with a status code; the API always answers JSON
// except for CSV/SSE streams.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// writeError renders the uniform error envelope.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 200 while the queue accepts work,
// 503 once the server is draining or the queue is saturated — the signal a
// load balancer uses to stop routing submissions here.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	queued := len(s.queue)
	body := map[string]any{"queued": queued, "queue_depth": s.opts.QueueDepth}
	switch {
	case closed:
		body["status"] = "shutting-down"
		writeJSON(w, http.StatusServiceUnavailable, body)
	case queued >= s.opts.QueueDepth:
		body["status"] = "saturated"
		writeJSON(w, http.StatusServiceUnavailable, body)
	default:
		body["status"] = "ready"
		writeJSON(w, http.StatusOK, body)
	}
}

func (s *Server) handlePresets(w http.ResponseWriter, _ *http.Request) {
	type preset struct {
		Name        string `json:"name"`
		Description string `json:"description"`
	}
	var out []preset
	for _, n := range scenario.Names() {
		out = append(out, preset{Name: n, Description: scenario.Describe(n)})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGrids(w http.ResponseWriter, _ *http.Request) {
	type grid struct {
		Name   string   `json:"name"`
		Preset string   `json:"preset"`
		Axes   []string `json:"axes"`
		Points int      `json:"points"`
	}
	var out []grid
	for _, g := range sweep.Grids() {
		points, err := g.Points()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "grid %s: %v", g.Name, err)
			return
		}
		names := make([]string, len(g.Axes))
		for i, ax := range g.Axes {
			names[i] = ax.Name
		}
		out = append(out, grid{Name: g.Name, Preset: g.Preset, Axes: names, Points: len(points)})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleAxes(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, sweep.Axes())
}

func (s *Server) handleCreateJob(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decode job spec: %v", err)
		return
	}
	j, err := s.submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, j.status())
	case errors.Is(err, errShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
	case errors.Is(err, errQueueFull):
		writeError(w, http.StatusTooManyRequests,
			"job queue full (%d queued); retry later or raise -queue-depth", s.opts.QueueDepth)
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// job resolves the {id} path value, or writes a 404.
func (s *Server) job(w http.ResponseWriter, r *http.Request) *Job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", id)
	}
	return j
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	j.userStop = true
	if j.state == StateQueued {
		// The worker will skip it; settle the state now so the cancel is
		// visible immediately.
		j.state = StateCancelled
		j.err = context.Canceled.Error()
		j.broadcast()
		j.dropJournalLocked()
	}
	j.mu.Unlock()
	j.cancel() // running jobs notice at the next frame boundary
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	state, errMsg, result := j.state, j.err, j.result
	header := j.work.header
	rows := j.rows
	j.mu.Unlock()

	switch state {
	case StateDone:
	case StateFailed:
		writeError(w, http.StatusInternalServerError, "job failed: %s", errMsg)
		return
	default:
		writeError(w, http.StatusConflict, "job is %s; result available once done", state)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		w.Write(result)
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		writeCSVRows(w, header, rows)
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want json or csv)", format)
	}
}

func writeCSVRows(w io.Writer, header []string, rows []row) {
	if header != nil {
		io.WriteString(w, report.CSVLine(header))
	}
	for _, r := range rows {
		if r.cells != nil {
			io.WriteString(w, report.CSVLine(r.cells))
		}
	}
}

// streamFormat picks the stream framing: explicit ?format first, then the
// Accept header, defaulting to CSV (the jabasweep byte-compatible form).
func streamFormat(r *http.Request) (string, error) {
	switch f := r.URL.Query().Get("format"); f {
	case "csv", "ndjson", "sse":
		return f, nil
	case "":
	default:
		return "", fmt.Errorf("unknown format %q (want csv, ndjson or sse)", f)
	}
	accept := r.Header.Get("Accept")
	switch {
	case strings.Contains(accept, "text/event-stream"):
		return "sse", nil
	case strings.Contains(accept, "application/x-ndjson"):
		return "ndjson", nil
	default:
		return "csv", nil
	}
}

func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	format, err := streamFormat(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	switch format {
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
	case "ndjson":
		w.Header().Set("Content-Type", "application/x-ndjson")
	case "sse":
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	if format == "csv" {
		j.mu.Lock()
		header := j.work.header
		j.mu.Unlock()
		if header != nil {
			io.WriteString(w, report.CSVLine(header))
			flush()
		}
	}

	// Follow the row log: emit everything new, then wait for the next
	// broadcast. Rows are append-only and each row is immutable once
	// appended, so the slice snapshot taken under the lock stays valid
	// outside it.
	sent := 0
	for {
		j.mu.Lock()
		if sent > len(j.rows) {
			// A retry reset the row log; re-follow from the start.
			sent = 0
		}
		pending := j.rows[sent:]
		state := j.state
		errMsg := j.err
		updated := j.updated
		j.mu.Unlock()

		for _, rw := range pending {
			switch format {
			case "csv":
				if rw.cells != nil {
					io.WriteString(w, report.CSVLine(rw.cells))
				}
			case "ndjson":
				w.Write(rw.event)
				io.WriteString(w, "\n")
			case "sse":
				io.WriteString(w, "event: row\ndata: ")
				w.Write(rw.event)
				io.WriteString(w, "\n\n")
			}
		}
		sent += len(pending)
		flush()

		if state.Terminal() {
			final, _ := json.Marshal(map[string]string{"state": string(state), "error": errMsg})
			switch format {
			case "ndjson":
				w.Write(final)
				io.WriteString(w, "\n")
			case "sse":
				io.WriteString(w, "event: end\ndata: ")
				w.Write(final)
				io.WriteString(w, "\n\n")
			}
			flush()
			return
		}
		select {
		case <-updated:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleOracle(w http.ResponseWriter, r *http.Request) {
	var req OracleRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode oracle request: %v", err)
		return
	}
	a, err := s.oracle.schedule(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, OracleResponse{
		Ratios:     a.Ratios,
		Objective:  a.Objective,
		Scheduler:  a.Scheduler,
		Served:     a.Served(),
		TotalRatio: a.TotalRatio(),
	})
}
