package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"jabasd/internal/experiments"
	"jabasd/internal/jobspec"
	"jabasd/internal/report"
	"jabasd/internal/sim"
	"jabasd/internal/sweep"
)

// JobState is a job's position in its lifecycle.
type JobState string

// The job lifecycle: queued → running → one of the three terminal states.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobSpec is the body of POST /v1/jobs: a kind plus exactly the matching
// spec. The specs are the same jobspec types the CLIs resolve, so a job
// body is a jabasweep/jabasim/jabaexp invocation in JSON form.
type JobSpec struct {
	// Kind is "run", "sweep" or "experiments".
	Kind string `json:"kind"`
	// Run describes a single simulation (kind "run"): scenario, overrides
	// and replication count, exactly as cmd/jabasim resolves them.
	Run *jobspec.RunSpec `json:"run,omitempty"`
	// Sweep describes a parameter sweep (kind "sweep"): a named grid or
	// ad-hoc axes over a base scenario, exactly as cmd/jabasweep resolves
	// them.
	Sweep *jobspec.SweepSpec `json:"sweep,omitempty"`
	// Experiments describes an experiment-suite run (kind "experiments"),
	// exactly as cmd/jabaexp resolves it.
	Experiments *jobspec.ExperimentsSpec `json:"experiments,omitempty"`
	// DeadlineSec bounds the job's wall-clock run time in seconds; a job
	// still running at the deadline settles as failed with a deadline
	// error (0 = no deadline).
	DeadlineSec float64 `json:"deadline_sec,omitempty"`
	// Retries re-runs a job that failed with a transient error up to this
	// many extra times, with exponential backoff between attempts.
	// Cancellations and deadline expiries are never retried.
	Retries int `json:"retries,omitempty"`
	// Chaos injects a failure into the worker running this job, for
	// resilience testing; rejected unless the server enables chaos
	// (Options.EnableChaos / jabaserve -chaos).
	Chaos *ChaosSpec `json:"chaos,omitempty"`
}

// ChaosSpec describes an injected failure. Chaos jobs exist to prove the
// server's fault containment from the outside: a panicking worker must fail
// only its job, and a hung job must be bounded by its deadline.
type ChaosSpec struct {
	// Mode is "panic" (the worker goroutine panics mid-job) or "hang"
	// (the job blocks for SleepSec — or until cancelled — before its real
	// work starts).
	Mode string `json:"mode"`
	// SleepSec is how long "hang" blocks; 0 blocks until the job is
	// cancelled or its deadline expires.
	SleepSec float64 `json:"sleep_sec,omitempty"`
}

func (c *ChaosSpec) validate() error {
	switch c.Mode {
	case "panic", "hang":
		return nil
	default:
		return fmt.Errorf(`serve: unknown chaos mode %q (want "panic" or "hang")`, c.Mode)
	}
}

// fire performs the injected failure at the start of a job attempt.
func (c *ChaosSpec) fire(ctx context.Context) error {
	switch c.Mode {
	case "panic":
		panic("chaos: injected worker panic")
	case "hang":
		var wake <-chan time.Time
		if c.SleepSec > 0 {
			t := time.NewTimer(time.Duration(c.SleepSec * float64(time.Second)))
			defer t.Stop()
			wake = t.C
		}
		select {
		case <-wake:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// JobStatus is the JSON view of a job returned by the job endpoints.
type JobStatus struct {
	// ID is the server-assigned job identifier used in the job URLs.
	ID string `json:"id"`
	// Kind echoes the submitted JobSpec.Kind.
	Kind string `json:"kind"`
	// State is the job's current lifecycle position.
	State JobState `json:"state"`
	// Error carries the failure message of a failed job.
	Error string `json:"error,omitempty"`
	// Warnings flags a finished job whose result deserves scrutiny —
	// skipped admission cell-frames, greedy fallback solves — without
	// failing it.
	Warnings []string `json:"warnings,omitempty"`
	// Attempts counts started run attempts; above 1 means the job was
	// retried after transient failures.
	Attempts int `json:"attempts,omitempty"`
	// RowsDone counts emitted progress rows (grid points for a sweep,
	// completed experiments for a suite); RowsTotal is the expected count.
	RowsDone  int `json:"rows_done"`
	RowsTotal int `json:"rows_total,omitempty"`
	// Created and Finished are RFC 3339 timestamps; Finished is empty
	// until the job reaches a terminal state.
	Created  string `json:"created,omitempty"`
	Finished string `json:"finished,omitempty"`
}

// row is one unit of streamed job progress, carried in both framings the
// stream endpoint serves: CSV cells (for a sweep, exactly the jabasweep
// row) and a self-describing JSON event for NDJSON/SSE.
type row struct {
	cells []string
	event json.RawMessage
}

// runnable is a job's resolved work, produced at submission time so a bad
// spec fails the POST with a 400 instead of failing later inside a worker.
type runnable struct {
	header []string // CSV header cells, nil when the kind has no row stream
	total  int      // expected row count
	run    func(ctx context.Context, j *Job) error
}

// Job is one queued or running unit of server work.
type Job struct {
	// ID is the server-assigned identifier (see JobStatus.ID).
	ID string
	// Spec is the submission body the job was created from, verbatim.
	Spec JobSpec

	work   runnable
	ctx    context.Context
	cancel context.CancelFunc
	// journal is the job's crash-recovery record (empty when journaling is
	// off); it is removed once the job settles — except on server shutdown,
	// where an unfinished job's record survives for the next process.
	journal string

	mu       sync.Mutex
	state    JobState
	userStop bool // cancelled through the API, not by server shutdown
	err      string
	warnings []string
	attempts int
	rows     []row
	result   json.RawMessage
	created  time.Time
	finished time.Time
	updated  chan struct{} // closed and replaced on every state/row change
}

// newJob wraps resolved work for the queue.
func newJob(id string, spec JobSpec, work runnable, ctx context.Context, cancel context.CancelFunc) *Job {
	return &Job{
		ID:      id,
		Spec:    spec,
		work:    work,
		ctx:     ctx,
		cancel:  cancel,
		state:   StateQueued,
		created: time.Now(),
		updated: make(chan struct{}),
	}
}

// broadcast wakes every stream follower. Callers hold j.mu.
func (j *Job) broadcast() {
	close(j.updated)
	j.updated = make(chan struct{})
}

// appendRow records one completed progress row and wakes followers.
func (j *Job) appendRow(r row) {
	j.mu.Lock()
	j.rows = append(j.rows, r)
	j.broadcast()
	j.mu.Unlock()
}

// setWarnings attaches result-quality warnings before the job finishes.
func (j *Job) setWarnings(w []string) {
	if len(w) == 0 {
		return
	}
	j.mu.Lock()
	j.warnings = w
	j.mu.Unlock()
}

// finish records the job's outcome: done with a result, cancelled when the
// error is the job context's cancellation, failed otherwise.
func (j *Job) finish(err error, result json.RawMessage) {
	j.mu.Lock()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = result
	case errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.err = err.Error()
	default:
		j.state = StateFailed
		j.err = err.Error()
	}
	j.finished = time.Now()
	j.broadcast()
	j.dropJournalLocked()
	j.mu.Unlock()
}

// dropJournalLocked removes the job's crash-recovery record once it settles.
// A cancellation that did not come through the API is the server shutting
// down — the job did not finish, so its record survives for the restart.
// Callers hold j.mu.
func (j *Job) dropJournalLocked() {
	if j.journal == "" {
		return
	}
	if j.state == StateCancelled && !j.userStop {
		return
	}
	os.Remove(j.journal)
}

// status snapshots the job for the JSON views.
func (j *Job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.ID,
		Kind:      j.Spec.Kind,
		State:     j.state,
		Error:     j.err,
		Warnings:  j.warnings,
		Attempts:  j.attempts,
		RowsDone:  len(j.rows),
		RowsTotal: j.work.total,
		Created:   j.created.UTC().Format(time.RFC3339Nano),
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return st
}

// resolve validates the spec and builds the job's work. The returned
// runnable closes over the resolved grid/config, so the expensive
// validation happens exactly once, at submission.
func (s JobSpec) resolve(defaultParallel int) (runnable, error) {
	specs := 0
	for _, set := range []bool{s.Run != nil, s.Sweep != nil, s.Experiments != nil} {
		if set {
			specs++
		}
	}
	if specs != 1 {
		return runnable{}, fmt.Errorf("serve: want exactly one of run/sweep/experiments, got %d", specs)
	}
	switch s.Kind {
	case "run":
		if s.Run == nil {
			return runnable{}, errors.New(`serve: kind "run" needs a "run" spec`)
		}
		return resolveRun(*s.Run)
	case "sweep":
		if s.Sweep == nil {
			return runnable{}, errors.New(`serve: kind "sweep" needs a "sweep" spec`)
		}
		return resolveSweep(*s.Sweep, defaultParallel)
	case "experiments":
		if s.Experiments == nil {
			return runnable{}, errors.New(`serve: kind "experiments" needs an "experiments" spec`)
		}
		return resolveExperiments(*s.Experiments, defaultParallel)
	default:
		return runnable{}, fmt.Errorf("serve: unknown job kind %q (want run, sweep or experiments)", s.Kind)
	}
}

func resolveRun(spec jobspec.RunSpec) (runnable, error) {
	cfg, reps, err := spec.Resolve()
	if err != nil {
		return runnable{}, err
	}
	if spec.Checkpoint != nil {
		// Checkpoint-bearing runs drive a single engine directly, so the
		// periodic sink sees the one engine there is and a resume starts it
		// from the recorded frame; the result is that run's metrics object.
		return runnable{
			run: func(ctx context.Context, j *Job) error {
				e, err := spec.Start(cfg)
				if err != nil {
					return err
				}
				m, err := e.Run(ctx)
				if err != nil {
					return err
				}
				result, err := json.Marshal(m)
				if err != nil {
					return err
				}
				j.setWarnings(metricsWarnings(float64(m.SkippedCells), float64(m.FallbackSolves)))
				j.finish(nil, result)
				return nil
			},
		}, nil
	}
	return runnable{
		run: func(ctx context.Context, j *Job) error {
			agg, err := sim.RunReplications(ctx, cfg, reps)
			if err != nil {
				return err
			}
			result, err := json.Marshal(agg)
			if err != nil {
				return err
			}
			j.setWarnings(metricsWarnings(agg.SkippedCells.Mean(), agg.FallbackSolves.Mean()))
			j.finish(nil, result)
			return nil
		},
	}, nil
}

// metricsWarnings renders the result-quality flags a finished simulation can
// carry: skipped admission cell-frames (inconsistent measurements) and
// greedy fallback solves (the exact solver hit its node budget). The same
// conditions cmd/jabasim and cmd/jabasweep warn about on stderr.
func metricsWarnings(skipped, fallback float64) []string {
	var w []string
	if skipped > 0 {
		w = append(w, fmt.Sprintf("admission skipped %g cell-frames: the scenario is feeding the admission layer inconsistent measurements", skipped))
	}
	if fallback > 0 {
		w = append(w, fmt.Sprintf("%g cell-frames hit the solve node budget and were granted by the greedy fallback", fallback))
	}
	return w
}

func resolveSweep(spec jobspec.SweepSpec, defaultParallel int) (runnable, error) {
	grid, opts, err := spec.Resolve()
	if err != nil {
		return runnable{}, err
	}
	points, err := grid.Points()
	if err != nil {
		return runnable{}, err
	}
	if opts.Parallel == 0 {
		// Concurrent jobs share the CPUs; an unbounded per-job fan-out
		// would oversubscribe them (the results are parallel-independent,
		// so this only shapes latency, never output).
		opts.Parallel = defaultParallel
	}
	tbl := sweep.NewCurveTable(grid)
	header := append([]string(nil), tbl.Columns...)
	return runnable{
		header: header,
		total:  len(points),
		run: func(ctx context.Context, j *Job) error {
			var skipped, fallback float64
			err := sweep.Stream(ctx, grid, opts, func(r sweep.Result) error {
				skipped += r.Agg.SkippedCells.Mean()
				fallback += r.Agg.FallbackSolves.Mean()
				cells := sweep.AppendCurveRow(tbl, r)
				event, err := json.Marshal(map[string]any{
					"index": r.Index,
					"label": r.Label(),
					"row":   rowMap(header, cells),
				})
				if err != nil {
					return err
				}
				j.appendRow(row{cells: append([]string(nil), cells...), event: event})
				return nil
			})
			if err != nil {
				return err
			}
			var buf bytes.Buffer
			if err := tbl.WriteJSON(&buf); err != nil {
				return err
			}
			j.setWarnings(metricsWarnings(skipped, fallback))
			j.finish(nil, buf.Bytes())
			return nil
		},
	}, nil
}

func resolveExperiments(spec jobspec.ExperimentsSpec, defaultParallel int) (runnable, error) {
	defs, scale, err := spec.Resolve()
	if err != nil {
		return runnable{}, err
	}
	parallel := spec.Parallel
	if parallel == 0 {
		parallel = defaultParallel
	}
	return runnable{
		header: []string{"experiment", "title"},
		total:  len(defs),
		run: func(ctx context.Context, j *Job) error {
			tables := make([]json.RawMessage, 0, len(defs))
			err := experiments.StreamExperiments(ctx, defs, scale, parallel, func(i int, tbl *report.Table) error {
				var buf bytes.Buffer
				if err := tbl.WriteJSON(&buf); err != nil {
					return err
				}
				tables = append(tables, json.RawMessage(buf.String()))
				event, err := json.Marshal(map[string]any{
					"experiment": defs[i].ID,
					"title":      defs[i].Title,
					"table":      json.RawMessage(buf.String()),
				})
				if err != nil {
					return err
				}
				j.appendRow(row{cells: []string{defs[i].ID, defs[i].Title}, event: event})
				return nil
			})
			if err != nil {
				return err
			}
			result, err := json.Marshal(tables)
			if err != nil {
				return err
			}
			j.finish(nil, result)
			return nil
		},
	}, nil
}

// rowMap zips header cells with row cells for the NDJSON/SSE framing.
func rowMap(header, cells []string) map[string]string {
	m := make(map[string]string, len(header))
	for i, h := range header {
		if i < len(cells) {
			m[h] = cells[i]
		}
	}
	return m
}
