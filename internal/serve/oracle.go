package serve

import (
	"fmt"

	"jabasd/internal/core"
	"jabasd/internal/mac"
	"jabasd/internal/measurement"
	"jabasd/internal/sim"
)

// OracleRequest is the body of POST /v1/oracle: one cell's measured frame
// state, exactly the scheduling sub-layer's input (a core.Problem in JSON
// form) plus the scheduler selection. This is the paper's per-frame ILP as
// a service — a base station controller can submit its live measurements
// and receive the grants JABA-SD would issue, with no simulation involved.
type OracleRequest struct {
	// Scheduler is a sim scheduler kind ("jaba-sd", "jaba-sd-greedy",
	// "fcfs", "equal-share", "random"); empty means jaba-sd.
	Scheduler string `json:"scheduler,omitempty"`
	// Seed seeds the "random" scheduler; ignored by the others.
	Seed uint64 `json:"seed,omitempty"`
	// Requests are the cell's pending burst requests (core.Request fields).
	Requests []core.Request `json:"requests"`
	// Region is the admissible region Coeff·m <= Bound from the measurement
	// sub-layer.
	Region measurement.Region `json:"region"`
	// MaxRatio is M, the global spreading-gain ratio cap.
	MaxRatio int `json:"max_ratio"`
	// Objective selects and parameterises J1/J2.
	Objective core.Objective `json:"objective"`
	// MAC, when present, recomputes each request's SetupDelay from its
	// waiting time (equation 23) before scheduling.
	MAC *mac.Config `json:"mac,omitempty"`
}

// OracleResponse is the scheduler's assignment for the submitted frame.
type OracleResponse struct {
	// Ratios is m_j per request, 0 = rejected this frame.
	Ratios []int `json:"ratios"`
	// Objective is the achieved objective value.
	Objective float64 `json:"objective"`
	// Scheduler names the algorithm that produced the grants.
	Scheduler string `json:"scheduler"`
	// Served counts non-zero grants; TotalRatio is Σ m_j.
	Served     int `json:"served"`
	TotalRatio int `json:"total_ratio"`
}

// oraclePool holds resident warm JABA-SD instances, one per concurrent
// oracle call. Each instance owns a warm ilp.Solver and scratch buffers
// (steady-state Schedule is a single allocation), so serving a frame costs
// a solve, not a solver construction — the reason the oracle lives in a
// long-running server at all. Instances are produced from one prototype via
// core.Cloner, the same per-worker cloning contract the snapshot frame mode
// uses.
type oraclePool struct {
	warm chan *core.JABASD
}

func newOraclePool(size int) *oraclePool {
	p := &oraclePool{warm: make(chan *core.JABASD, size)}
	proto := core.NewJABASD()
	for i := 0; i < size; i++ {
		p.warm <- proto.Clone().(*core.JABASD)
	}
	return p
}

// schedule answers one oracle request. JABA-SD requests borrow a warm
// instance from the pool (blocking until one is free, which bounds
// concurrent solves); the baseline schedulers are stateless and built per
// request.
func (p *oraclePool) schedule(req OracleRequest) (core.Assignment, error) {
	problem := core.Problem{
		Requests:  req.Requests,
		Region:    req.Region,
		MaxRatio:  req.MaxRatio,
		Objective: req.Objective,
		MAC:       req.MAC,
	}
	if err := problem.Validate(); err != nil {
		return core.Assignment{}, err
	}

	kind := sim.SchedulerKind(req.Scheduler)
	if kind == "" || kind == sim.SchedulerJABASD {
		s := <-p.warm
		defer func() { p.warm <- s }()
		return s.Schedule(problem)
	}
	s, err := sim.NewScheduler(kind, req.Seed)
	if err != nil {
		return core.Assignment{}, fmt.Errorf("serve: %w", err)
	}
	return s.Schedule(problem)
}
