package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"jabasd/internal/core"
	"jabasd/internal/measurement"
	"jabasd/internal/report"
	"jabasd/internal/sim"
	"jabasd/internal/sweep"
)

// newTestServer starts a Server plus an httptest front end and registers
// both for cleanup.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// submit posts a job spec and returns the accepted job's ID.
func submit(t *testing.T, ts *httptest.Server, spec string) string {
	t.Helper()
	code, body := post(t, ts.URL+"/v1/jobs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d: %s", code, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued {
		t.Fatalf("fresh job state = %s, want queued", st.State)
	}
	return st.ID
}

// jobStatus fetches one job's status document.
func jobStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	code, body := get(t, ts.URL+"/v1/jobs/"+id)
	if code != http.StatusOK {
		t.Fatalf("status returned %d: %s", code, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls until the job reaches want (terminal states also accept
// having raced past running).
func waitState(t *testing.T, ts *httptest.Server, id string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := jobStatus(t, ts, id)
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s settled at %s (error %q), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %s waiting for %s", id, st.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

const quickSweepSpec = `{"kind":"sweep","sweep":{"preset":"smoke","axes":["datausers=2,4"],"reps":2,"overrides":{"exact_phy":true}}}`

// slowSweepSpec runs long enough to observe running/queued states; the
// simulated 300 s take real-world seconds, and cancellation stops it at a
// frame boundary long before that.
const slowSweepSpec = `{"kind":"sweep","sweep":{"preset":"smoke","axes":["datausers=4"],"overrides":{"sim_time":300}}}`

func TestHealthzAndCatalogEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	if code, body := get(t, ts.URL+"/v1/healthz"); code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz: %d %s", code, body)
	}
	if code, body := get(t, ts.URL+"/v1/presets"); code != http.StatusOK || !strings.Contains(string(body), "smoke") {
		t.Errorf("presets: %d %s", code, body)
	}
	if code, body := get(t, ts.URL+"/v1/grids"); code != http.StatusOK || !strings.Contains(string(body), "paper-load-sweep") {
		t.Errorf("grids: %d %s", code, body)
	}
	if code, body := get(t, ts.URL+"/v1/axes"); code != http.StatusOK || !strings.Contains(string(body), "datausers") {
		t.Errorf("axes: %d %s", code, body)
	}
}

// expectedSweepCSV renders, in process, the exact CSV jabasweep would print
// for the quickSweepSpec grid: the byte-compatibility oracle for the
// server's stream and result endpoints.
func expectedSweepCSV(t *testing.T) string {
	t.Helper()
	grid, err := sweep.New("smoke", []string{"datausers=2,4"})
	if err != nil {
		t.Fatal(err)
	}
	tbl := sweep.NewCurveTable(grid)
	var sb strings.Builder
	sb.WriteString(report.CSVLine(tbl.Columns))
	opts := sweep.Options{Reps: 2, Mutate: func(cfg *sim.Config) { cfg.ExactPHY = true }}
	err = sweep.Stream(context.Background(), grid, opts, func(r sweep.Result) error {
		sb.WriteString(report.CSVLine(sweep.AppendCurveRow(tbl, r)))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestSweepJobStreamsCLIIdenticalCSV(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := submit(t, ts, quickSweepSpec)

	// The CSV stream follows the job live and terminates with it, so a
	// plain GET doubles as the completion wait.
	code, body := get(t, ts.URL+"/v1/jobs/"+id+"/stream")
	if code != http.StatusOK {
		t.Fatalf("stream returned %d: %s", code, body)
	}
	want := expectedSweepCSV(t)
	if string(body) != want {
		t.Errorf("streamed CSV differs from the CLI bytes:\n--- server\n%s--- direct\n%s", body, want)
	}

	st := jobStatus(t, ts, id)
	if st.State != StateDone || st.RowsDone != 2 || st.RowsTotal != 2 || st.Finished == "" {
		t.Errorf("finished status: %+v", st)
	}

	// The result endpoint re-serves the same rows after completion.
	code, body = get(t, ts.URL+"/v1/jobs/"+id+"/result?format=csv")
	if code != http.StatusOK || string(body) != want {
		t.Errorf("result csv (%d) differs from the CLI bytes:\n%s", code, body)
	}
	code, body = get(t, ts.URL+"/v1/jobs/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("result json returned %d", code)
	}
	var doc struct {
		Columns []string            `json:"columns"`
		Rows    []map[string]string `json:"rows"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("result is not a table document: %v\n%s", err, body)
	}
	if len(doc.Rows) != 2 || doc.Rows[0]["datausers"] != "2" {
		t.Errorf("result rows: %+v", doc.Rows)
	}
}

// TestSweepJobMatchesGoldenCSV drives the committed golden scenario through
// the HTTP path: the streamed bytes must equal testdata/golden exactly, the
// same gate the CLI CI job enforces.
func TestSweepJobMatchesGoldenCSV(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", "sweep-smoke-sequential.csv"))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{})
	id := submit(t, ts,
		`{"kind":"sweep","sweep":{"preset":"smoke","axes":["datausers=2,4,14"],"reps":2,"overrides":{"exact_phy":true}}}`)
	code, body := get(t, ts.URL+"/v1/jobs/"+id+"/stream")
	if code != http.StatusOK {
		t.Fatalf("stream returned %d", code)
	}
	if !bytes.Equal(body, golden) {
		t.Errorf("server sweep differs from the golden CSV:\n--- server\n%s--- golden\n%s", body, golden)
	}
}

func TestRunJobReturnsAggregate(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := submit(t, ts, `{"kind":"run","run":{"preset":"smoke","reps":2,"overrides":{"sim_time":3}}}`)
	waitState(t, ts, id, StateDone)
	code, body := get(t, ts.URL+"/v1/jobs/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("result returned %d: %s", code, body)
	}
	var agg struct {
		Replications int
		Scheduler    string
	}
	if err := json.Unmarshal(body, &agg); err != nil {
		t.Fatalf("result is not an aggregate: %v\n%s", err, body)
	}
	if agg.Replications != 2 || agg.Scheduler == "" {
		t.Errorf("aggregate %+v, want 2 replications and a scheduler name", agg)
	}
}

func TestExperimentsJobStreamsTables(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := submit(t, ts, `{"kind":"experiments","experiments":{"only":["E1"],"scale":"quick","exact_phy":true}}`)
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+id+"/stream", nil)
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 2 { // E1 row + terminal state
		t.Fatalf("expected 2 NDJSON lines, got %d:\n%s", len(lines), body)
	}
	var event struct {
		Experiment string          `json:"experiment"`
		Table      json.RawMessage `json:"table"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &event); err != nil {
		t.Fatal(err)
	}
	if event.Experiment != "E1" || len(event.Table) == 0 {
		t.Errorf("unexpected experiment event: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"state":"done"`) {
		t.Errorf("missing terminal state line: %s", lines[1])
	}
}

func TestCreateJobRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name, body string
	}{
		{"invalid json", `{"kind":`},
		{"unknown kind", `{"kind":"teleport","run":{"preset":"smoke"}}`},
		{"no spec", `{"kind":"run"}`},
		{"two specs", `{"kind":"run","run":{"preset":"smoke"},"sweep":{"preset":"smoke"}}`},
		{"kind/spec mismatch", `{"kind":"run","sweep":{"preset":"smoke"}}`},
		{"unknown preset", `{"kind":"run","run":{"preset":"nope"}}`},
		{"preset and config", `{"kind":"run","run":{"preset":"smoke","config":{"SimTime":3}}}`},
		{"override conflicts with axis", `{"kind":"sweep","sweep":{"preset":"smoke","axes":["datausers=2,4"],"overrides":{"data_users":8}}}`},
		{"bad axis", `{"kind":"sweep","sweep":{"preset":"smoke","axes":["warp=1,2"]}}`},
		{"bad override enum", `{"kind":"run","run":{"preset":"smoke","overrides":{"scheduler":"bogus"}}}`},
		{"unknown experiment", `{"kind":"experiments","experiments":{"only":["E99"]}}`},
	}
	for _, tc := range cases {
		code, body := post(t, ts.URL+"/v1/jobs", tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: got %d (%s), want 400", tc.name, code, body)
		}
		if !strings.Contains(string(body), `"error"`) {
			t.Errorf("%s: missing error envelope: %s", tc.name, body)
		}
	}
	// Nothing above should have registered a job.
	code, body := get(t, ts.URL+"/v1/jobs")
	if code != http.StatusOK || strings.TrimSpace(string(body)) != "[]" {
		t.Errorf("job list after rejected submissions: %d %s", code, body)
	}
}

func TestUnknownJobIs404(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, path := range []string{"/v1/jobs/job-999", "/v1/jobs/job-999/result", "/v1/jobs/job-999/stream"} {
		if code, _ := get(t, ts.URL+path); code != http.StatusNotFound {
			t.Errorf("%s: got %d, want 404", path, code)
		}
	}
}

func TestResultConflictAndCancel(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := submit(t, ts, slowSweepSpec)
	waitState(t, ts, id, StateRunning)

	if code, body := get(t, ts.URL+"/v1/jobs/"+id+"/result"); code != http.StatusConflict {
		t.Errorf("result of a running job: got %d (%s), want 409", code, body)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel returned %d", resp.StatusCode)
	}
	start := time.Now()
	st := waitState(t, ts, id, StateCancelled)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation took %v; the job should stop at a frame boundary", elapsed)
	}
	if st.Error == "" {
		t.Error("cancelled job should carry the cancellation error")
	}
	if code, _ := get(t, ts.URL+"/v1/jobs/"+id+"/result"); code != http.StatusConflict {
		t.Errorf("result of a cancelled job: got %d, want 409", code)
	}
}

func TestQueueBackpressure429(t *testing.T) {
	_, ts := newTestServer(t, Options{QueueDepth: 1, Workers: 1})
	running := submit(t, ts, slowSweepSpec)
	waitState(t, ts, running, StateRunning)
	queued := submit(t, ts, slowSweepSpec) // fills the single queue slot

	code, body := post(t, ts.URL+"/v1/jobs", quickSweepSpec)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow submission: got %d (%s), want 429", code, body)
	}
	if !strings.Contains(string(body), "queue full") {
		t.Errorf("429 body should explain the queue: %s", body)
	}

	// Cancelling the queued job settles it immediately — the worker never
	// picks it up.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != StateCancelled {
		t.Errorf("queued job after cancel: %s, want cancelled", st.State)
	}
	// Unblock the worker; the cancelled queued job is skipped, freeing the
	// queue slot.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+running, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
	waitState(t, ts, running, StateCancelled)
	// A rejected overflow must not leak an ID: the next accepted job gets
	// the next consecutive number, and it runs to completion now that the
	// worker is free.
	next := submit(t, ts, quickSweepSpec)
	if next != "job-3" {
		t.Errorf("post-429 job ID = %s, want job-3 (429 must not consume IDs)", next)
	}
	waitState(t, ts, next, StateDone)
}

// oracleProblem mirrors the canonical small problem from the core package
// tests: one cell, three requests, a known non-trivial optimum.
func oracleProblem() core.Problem {
	return core.Problem{
		Requests: []core.Request{
			{UserID: 1, SizeBits: 1e6, WaitingTime: 0.5, AvgThroughput: 0.5, MaxRatio: 8},
			{UserID: 2, SizeBits: 1e6, WaitingTime: 4.0, AvgThroughput: 0.25, MaxRatio: 8},
			{UserID: 3, SizeBits: 1e6, WaitingTime: 12.0, AvgThroughput: 1.0, MaxRatio: 8},
		},
		Region: measurement.Region{
			Coeff: [][]float64{{2, 3, 5}},
			Bound: []float64{10},
			Cells: []int{0},
		},
		MaxRatio:  8,
		Objective: core.Objective{Kind: core.ObjectiveDelayAware, Lambda: 0.05, RateScale: 16},
	}
}

// TestOracleMatchesDirectSolver is the oracle acceptance gate: the HTTP
// grants must be identical to calling core.JABASD.Schedule directly on the
// same problem.
func TestOracleMatchesDirectSolver(t *testing.T) {
	problem := oracleProblem()
	want, err := core.NewJABASD().Schedule(problem)
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Options{})
	body, err := json.Marshal(OracleRequest{
		Requests:  problem.Requests,
		Region:    problem.Region,
		MaxRatio:  problem.MaxRatio,
		Objective: problem.Objective,
	})
	if err != nil {
		t.Fatal(err)
	}
	code, respBody := post(t, ts.URL+"/v1/oracle", string(body))
	if code != http.StatusOK {
		t.Fatalf("oracle returned %d: %s", code, respBody)
	}
	var got OracleResponse
	if err := json.Unmarshal(respBody, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Ratios, want.Ratios) {
		t.Errorf("oracle ratios %v, direct solver %v", got.Ratios, want.Ratios)
	}
	if got.Objective != want.Objective || got.Scheduler != want.Scheduler {
		t.Errorf("oracle (%v, %s) vs direct (%v, %s)", got.Objective, got.Scheduler, want.Objective, want.Scheduler)
	}
	if got.Served != want.Served() || got.TotalRatio != want.TotalRatio() {
		t.Errorf("oracle served/total %d/%d vs direct %d/%d", got.Served, got.TotalRatio, want.Served(), want.TotalRatio())
	}
	if want.TotalRatio() == 0 {
		t.Fatal("test problem should grant something; the comparison is vacuous")
	}
}

func TestOracleBaselinesAndErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	problem := oracleProblem()
	mk := func(scheduler string) string {
		body, err := json.Marshal(OracleRequest{
			Scheduler: scheduler,
			Requests:  problem.Requests,
			Region:    problem.Region,
			MaxRatio:  problem.MaxRatio,
			Objective: problem.Objective,
		})
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	code, body := post(t, ts.URL+"/v1/oracle", mk("fcfs"))
	if code != http.StatusOK || !strings.Contains(string(body), "FCFS") {
		t.Errorf("fcfs oracle: %d %s", code, body)
	}
	if code, body := post(t, ts.URL+"/v1/oracle", mk("warp-drive")); code != http.StatusBadRequest {
		t.Errorf("unknown scheduler: got %d (%s), want 400", code, body)
	}
	if code, body := post(t, ts.URL+"/v1/oracle", `{"requests":[],"max_ratio":0}`); code != http.StatusBadRequest {
		t.Errorf("invalid problem: got %d (%s), want 400", code, body)
	}
	if code, _ := post(t, ts.URL+"/v1/oracle", `{"max_ratio":`); code != http.StatusBadRequest {
		t.Errorf("invalid JSON: got %d, want 400", code)
	}
}

func TestStreamSSEFraming(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := submit(t, ts, quickSweepSpec)
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+id+"/stream", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("SSE content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if got := strings.Count(string(body), "event: row\n"); got != 2 {
		t.Errorf("expected 2 row events, got %d:\n%s", got, body)
	}
	if !strings.Contains(string(body), "event: end\ndata: {\"error\":\"\",\"state\":\"done\"}") {
		t.Errorf("missing end event:\n%s", body)
	}
	if code, _ := get(t, ts.URL+"/v1/jobs/"+id+"/stream?format=telegraph"); code != http.StatusBadRequest {
		t.Error("unknown stream format should 400")
	}
}

// TestConcurrentJobsUnderLoad is the race-detector load gate (CI runs the
// package under -race): many clients submit, follow and poll overlapping
// jobs against a small worker pool.
func TestConcurrentJobsUnderLoad(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 3, QueueDepth: 32})
	const jobs = 6
	spec := `{"kind":"sweep","sweep":{"preset":"smoke","axes":["datausers=2"],"overrides":{"sim_time":3}}}`

	var wg sync.WaitGroup
	ids := make([]string, jobs)
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
			if err != nil {
				errs[i] = err
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				errs[i] = fmt.Errorf("submit %d: %d %s", i, resp.StatusCode, body)
				return
			}
			var st JobStatus
			if err := json.Unmarshal(body, &st); err != nil {
				errs[i] = err
				return
			}
			ids[i] = st.ID
			// Half the clients follow the stream, half poll the status and
			// job-list endpoints while the job runs.
			if i%2 == 0 {
				streamResp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/stream")
				if err != nil {
					errs[i] = err
					return
				}
				io.Copy(io.Discard, streamResp.Body)
				streamResp.Body.Close()
			} else {
				for {
					resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
					if err != nil {
						errs[i] = err
						return
					}
					data, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					var cur JobStatus
					if err := json.Unmarshal(data, &cur); err != nil {
						errs[i] = err
						return
					}
					if cur.State.Terminal() {
						return
					}
					if listResp, err := http.Get(ts.URL + "/v1/jobs"); err == nil {
						io.Copy(io.Discard, listResp.Body)
						listResp.Body.Close()
					}
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for _, id := range ids {
		st := waitState(t, ts, id, StateDone)
		if st.RowsDone != 1 {
			t.Errorf("job %s finished with %d rows, want 1", id, st.RowsDone)
		}
	}
}

// BenchmarkServerSweep and BenchmarkDirectSweep back the throughput
// acceptance: a sweep through the HTTP job path must not be slower than the
// same grid run directly (the CLI path), because both funnel into the same
// sweep.Stream fan-out and the HTTP layering is per-job, not per-frame.
func benchSweepSpec() string {
	return `{"kind":"sweep","sweep":{"preset":"smoke","axes":["datausers=2,4"],"overrides":{"sim_time":3}}}`
}

func BenchmarkServerSweep(b *testing.B) {
	s := New(Options{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(benchSweepSpec()))
		if err != nil {
			b.Fatal(err)
		}
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		stream, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/stream")
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, stream.Body)
		stream.Body.Close()
	}
}

func BenchmarkDirectSweep(b *testing.B) {
	grid, err := sweep.New("smoke", []string{"datausers=2,4"})
	if err != nil {
		b.Fatal(err)
	}
	opts := sweep.Options{Mutate: func(cfg *sim.Config) { cfg.SimTime = 3 }}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.Run(context.Background(), grid, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// quickRunSpec is a single run that finishes in well under a second.
const quickRunSpec = `{"kind":"run","run":{"preset":"smoke","overrides":{"sim_time":3,"data_users":2}}}`

// listJobs fetches the job list.
func listJobs(t *testing.T, ts *httptest.Server) []JobStatus {
	t.Helper()
	code, body := get(t, ts.URL+"/v1/jobs")
	if code != http.StatusOK {
		t.Fatalf("list returned %d: %s", code, body)
	}
	var out []JobStatus
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestJobJournalLifecycle: an accepted job's spec is journaled until the job
// settles, and a settled job leaves nothing behind.
func TestJobJournalLifecycle(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Options{Workers: 1, JournalDir: dir})
	id := submit(t, ts, quickRunSpec)
	waitState(t, ts, id, StateDone)
	// The journal entry is removed under the same lock that publishes the
	// terminal state, so observing done means the file is already gone.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("journal not drained after completion: %d entries left", len(entries))
	}
}

// TestJobJournalRecovery: a spec left behind by a dead process is re-submitted
// on start, runs to completion and drains the journal.
func TestJobJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "job-7.json"), []byte(quickRunSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Workers: 1, JournalDir: dir})
	jobs := listJobs(t, ts)
	if len(jobs) != 1 {
		t.Fatalf("recovered %d jobs, want 1", len(jobs))
	}
	waitState(t, ts, jobs[0].ID, StateDone)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("journal not drained after recovery: %d entries left", len(entries))
	}
}

// TestJobJournalSkipsBadSpec: an unresolvable journal entry is left in place
// for the operator, never deleted or turned into a job.
func TestJobJournalSkipsBadSpec(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "job-1.json")
	if err := os.WriteFile(bad, []byte(`{"kind":"run","run":{"preset":"no-such-preset"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Workers: 1, JournalDir: dir})
	if jobs := listJobs(t, ts); len(jobs) != 0 {
		t.Fatalf("bad journal entry produced %d jobs", len(jobs))
	}
	if _, err := os.Stat(bad); err != nil {
		t.Fatalf("bad journal entry was deleted: %v", err)
	}
}

// TestRunJobCheckpointResume drives the checkpoint/resume cycle through the
// HTTP API: a run that checkpoints, a resumed run picking the scenario up
// from the file, and a semantically incompatible resume refused at
// submission with a 400.
func TestRunJobCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "state.ckpt")
	_, ts := newTestServer(t, Options{Workers: 1})

	spec := fmt.Sprintf(`{"kind":"run","run":{"preset":"smoke","overrides":{"sim_time":3,"data_users":2},"checkpoint":{"path":%q,"every":25}}}`, ck)
	waitState(t, ts, submit(t, ts, spec), StateDone)
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}

	resume := fmt.Sprintf(`{"kind":"run","run":{"checkpoint":{"resume":%q}}}`, ck)
	waitState(t, ts, submit(t, ts, resume), StateDone)

	for name, body := range map[string]string{
		"semantic-override":    fmt.Sprintf(`{"kind":"run","run":{"overrides":{"seed":99},"checkpoint":{"resume":%q}}}`, ck),
		"resume-plus-preset":   fmt.Sprintf(`{"kind":"run","run":{"preset":"smoke","checkpoint":{"resume":%q}}}`, ck),
		"reps-with-checkpoint": fmt.Sprintf(`{"kind":"run","run":{"preset":"smoke","reps":2,"checkpoint":{"path":%q,"every":10}}}`, ck),
		"path-without-every":   fmt.Sprintf(`{"kind":"run","run":{"preset":"smoke","checkpoint":{"path":%q}}}`, ck),
	} {
		if code, resp := post(t, ts.URL+"/v1/jobs", body); code != http.StatusBadRequest {
			t.Errorf("%s: got %d (%s), want 400", name, code, resp)
		}
	}
}

func TestReadyz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	code, body := get(t, ts.URL+"/v1/readyz")
	if code != http.StatusOK {
		t.Fatalf("readyz = %d: %s", code, body)
	}
	var st struct {
		Status     string `json:"status"`
		QueueDepth int    `json:"queue_depth"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "ready" || st.QueueDepth != 16 {
		t.Fatalf("readyz body = %s", body)
	}
}

func TestReadyzAfterClose(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Close()
	code, body := get(t, ts.URL+"/v1/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "shutting-down") {
		t.Fatalf("readyz after Close = %d: %s", code, body)
	}
	// Liveness stays green while draining: the process is still serving.
	if code, _ := get(t, ts.URL+"/v1/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after Close = %d", code)
	}
}

// TestChaosPanicFailsJobNotServer injects a worker panic and checks the
// containment contract: the job settles as failed with the panic message,
// and the server keeps serving — the next job on the same (single) worker
// completes normally.
func TestChaosPanicFailsJobNotServer(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, EnableChaos: true})
	id := submit(t, ts, `{"kind":"run","run":{"preset":"smoke","overrides":{"sim_time":3,"data_users":2}},"chaos":{"mode":"panic"}}`)
	st := waitTerminal(t, ts, id)
	if st.State != StateFailed || !strings.Contains(st.Error, "panicked") {
		t.Fatalf("chaos job settled as %s (error %q), want failed with a panic message", st.State, st.Error)
	}
	if code, _ := get(t, ts.URL+"/v1/healthz"); code != http.StatusOK {
		t.Fatal("server unhealthy after a worker panic")
	}
	next := submit(t, ts, quickRunSpec)
	if st := waitTerminal(t, ts, next); st.State != StateDone {
		t.Fatalf("job after the panic settled as %s (error %q), want done", st.State, st.Error)
	}
}

// TestChaosHangHitsDeadline submits a job that blocks forever under a short
// deadline: it must settle as failed with a deadline error, not hang the
// worker or count as cancelled.
func TestChaosHangHitsDeadline(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, EnableChaos: true})
	id := submit(t, ts, `{"kind":"run","run":{"preset":"smoke"},"chaos":{"mode":"hang"},"deadline_sec":0.2}`)
	st := waitTerminal(t, ts, id)
	if st.State != StateFailed || !strings.Contains(st.Error, "deadline") {
		t.Fatalf("hung job settled as %s (error %q), want failed with a deadline error", st.State, st.Error)
	}
	// The worker is free again.
	next := submit(t, ts, quickRunSpec)
	if st := waitTerminal(t, ts, next); st.State != StateDone {
		t.Fatalf("job after the hang settled as %s, want done", st.State)
	}
}

func TestChaosRejectedWhenDisabled(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	code, body := post(t, ts.URL+"/v1/jobs", `{"kind":"run","run":{"preset":"smoke"},"chaos":{"mode":"panic"}}`)
	if code != http.StatusBadRequest || !strings.Contains(string(body), "chaos injection is disabled") {
		t.Fatalf("chaos on a chaos-disabled server = %d: %s", code, body)
	}
	_, ts2 := newTestServer(t, Options{EnableChaos: true})
	code, body = post(t, ts2.URL+"/v1/jobs", `{"kind":"run","run":{"preset":"smoke"},"chaos":{"mode":"frob"}}`)
	if code != http.StatusBadRequest || !strings.Contains(string(body), "unknown chaos mode") {
		t.Fatalf("bad chaos mode = %d: %s", code, body)
	}
}

// TestRetriesExhaustAndCount drives the retry loop through a always-failing
// job (a panic fires on every attempt) and checks the attempt accounting
// and that the backoff is bounded.
func TestRetriesExhaustAndCount(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, EnableChaos: true, RetryBaseDelay: time.Millisecond})
	id := submit(t, ts, `{"kind":"run","run":{"preset":"smoke"},"chaos":{"mode":"panic"},"retries":2}`)
	st := waitTerminal(t, ts, id)
	if st.State != StateFailed {
		t.Fatalf("job settled as %s, want failed", st.State)
	}
	if st.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", st.Attempts)
	}
}

// TestDeadlineNotRetried checks that a deadline expiry consumes no retry
// budget: retrying a job that ran out of time would only run out of time
// again.
func TestDeadlineNotRetried(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, EnableChaos: true, RetryBaseDelay: time.Millisecond})
	id := submit(t, ts, `{"kind":"run","run":{"preset":"smoke"},"chaos":{"mode":"hang"},"deadline_sec":0.1,"retries":5}`)
	st := waitTerminal(t, ts, id)
	if st.State != StateFailed || !strings.Contains(st.Error, "deadline") {
		t.Fatalf("job settled as %s (error %q), want a deadline failure", st.State, st.Error)
	}
	if st.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (deadlines are not retried)", st.Attempts)
	}
}

func TestSubmitRejectsBadHardeningFields(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for name, spec := range map[string]string{
		"negative deadline": `{"kind":"run","run":{"preset":"smoke"},"deadline_sec":-1}`,
		"negative retries":  `{"kind":"run","run":{"preset":"smoke"},"retries":-2}`,
	} {
		if code, body := post(t, ts.URL+"/v1/jobs", spec); code != http.StatusBadRequest {
			t.Errorf("%s: got %d: %s", name, code, body)
		}
	}
}

// TestRunJobSurfacesFallbackWarning runs a scenario whose per-cell problems
// blow a one-node solve budget and checks the job result carries the
// greedy-fallback warning.
func TestRunJobSurfacesFallbackWarning(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := submit(t, ts, `{"kind":"run","run":{"preset":"smoke","overrides":{"sim_time":4,"data_users":30,"node_budget":1}}}`)
	st := waitTerminal(t, ts, id)
	if st.State != StateDone {
		t.Fatalf("job settled as %s (error %q), want done", st.State, st.Error)
	}
	found := false
	for _, w := range st.Warnings {
		if strings.Contains(w, "greedy fallback") {
			found = true
		}
	}
	if !found {
		t.Fatalf("warnings = %v, want a greedy-fallback warning", st.Warnings)
	}
}

// waitTerminal polls until the job settles, whatever the outcome.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := jobStatus(t, ts, id)
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
