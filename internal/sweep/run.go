package sweep

import (
	"context"
	"fmt"

	"jabasd/internal/sim"
	"jabasd/internal/stream"
	"jabasd/internal/trace"
)

// Options controls a sweep run.
type Options struct {
	// Reps is the number of independent replications per grid point
	// (default 1). Replication r of point p uses seed
	// base + p*Reps + r, the sim.RunReplications scheme extended with a
	// per-point offset, so results depend only on the indices.
	Reps int
	// Parallel bounds the number of (point × replication) work items in
	// flight at once; <= 0 means GOMAXPROCS. It never affects the results.
	Parallel int
	// BaseSeed overrides the preset's base seed when non-zero.
	BaseSeed uint64
	// Mutate, when set, is applied to every point's configuration before
	// seeding and running — CI and tests use it to shrink simulated time.
	Mutate func(*sim.Config)
	// Trace, when set, is called once per expanded point (in grid order,
	// before any point runs) and returns the telemetry sink that point's
	// replication 0 writes to, or nil for no trace. Each point needs its
	// own sink — points run concurrently and a trace.Sink is
	// single-writer; a point's sink is complete once Stream emits the
	// point. TraceEvery is the sampling period in frames (0/1 = every
	// frame) for every traced point.
	Trace      func(p Point) trace.Sink
	TraceEvery int
}

// Result is one completed grid point: the point plus the across-replication
// aggregate (one observation per replication, CIs via internal/stats).
type Result struct {
	Point
	Agg *sim.Aggregate
}

// Run expands the grid and runs every point, returning the results in grid
// order. See Stream for the execution model.
func Run(ctx context.Context, g Grid, opts Options) ([]Result, error) {
	var out []Result
	err := Stream(ctx, g, opts, func(r Result) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Stream expands the grid into points, fans the (point × replication) work
// items out over a worker pool of size opts.Parallel and calls emit once per
// point, in grid order, as soon as the point's replications and every
// earlier point have finished. Emitting incrementally means a failure late
// in a long sweep keeps everything completed before it. For a fixed base
// seed the emitted results are identical regardless of opts.Parallel.
//
// Cancelling the context stops the sweep promptly: in-flight replications
// notice it at their next frame boundary, queued work items never start,
// and Stream returns the context's error after the workers drain. Points
// already emitted stay emitted.
func Stream(ctx context.Context, g Grid, opts Options, emit func(Result) error) error {
	points, err := g.Points()
	if err != nil {
		return err
	}
	reps := opts.Reps
	if reps <= 0 {
		reps = 1
	}

	// Freeze every point's final configuration (mutation + seed) up front so
	// the work items are pure functions of their indices.
	cfgs := make([]sim.Config, len(points))
	var sinks []trace.Sink
	if opts.Trace != nil {
		sinks = make([]trace.Sink, len(points))
	}
	for i, p := range points {
		cfg := p.Config
		if opts.Mutate != nil {
			opts.Mutate(&cfg)
		}
		if opts.BaseSeed != 0 {
			cfg.Seed = opts.BaseSeed
		}
		cfg.Seed += uint64(i) * uint64(reps)
		// The (point × replication) fan-out already saturates the CPUs, so
		// snapshot points on the auto frame-worker setting run their frames
		// inline instead of stacking a second pool per engine (output is
		// byte-identical either way). A -parallel 1 sweep is effectively a
		// single run at a time, so it keeps the auto pool.
		fanout := len(points) * reps
		if opts.Parallel == 1 {
			fanout = 1
		}
		cfg.FrameParallel = sim.ResolveFrameParallel(cfg, fanout)
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("sweep: point %d (%s): %w", i, p.Label(), err)
		}
		cfgs[i] = cfg
		points[i].Config = cfg
		if sinks != nil {
			sinks[i] = opts.Trace(points[i])
		}
	}

	n := len(points) * reps
	metrics := make([]*sim.Metrics, n)
	aggs := make([]*sim.Aggregate, len(points))
	return stream.Ordered(n, opts.Parallel,
		func(item int) error {
			// Work items not yet started fail fast once the sweep is
			// cancelled instead of running a doomed replication each.
			if err := ctx.Err(); err != nil {
				return err
			}
			p, r := item/reps, item%reps
			cfg := cfgs[p]
			cfg.Seed += uint64(r)
			if r != 0 {
				// Replications of a point run concurrently; only
				// replication 0 carries the point's telemetry sink.
				cfg.Trace = nil
			} else if sinks != nil && sinks[p] != nil {
				cfg.Trace = sinks[p]
				cfg.TraceEvery = opts.TraceEvery
			}
			m, err := sim.Run(ctx, cfg)
			if err != nil {
				if ctx.Err() != nil {
					return err // the cancellation, not a simulation failure
				}
				return fmt.Errorf("sweep: point %d (%s) replication %d: %w",
					p, points[p].Label(), r, err)
			}
			metrics[item] = m
			return nil
		},
		func(item int) error {
			p, r := item/reps, item%reps
			if aggs[p] == nil {
				aggs[p] = &sim.Aggregate{}
			}
			aggs[p].AddReplication(metrics[item])
			metrics[item] = nil // release the replication's samples
			if r == reps-1 {
				return emit(Result{Point: points[p], Agg: aggs[p]})
			}
			return nil
		})
}
