package sweep

import "jabasd/internal/report"

// NewCurveTable creates the empty paper-style curve table for a grid: the
// axis values as leading columns, then the headline metrics with their
// across-replication 95% confidence half-widths. Admission probability is
// the completed/generated burst ratio, outage is one minus the coverage
// fraction (bursts whose served rate met the coverage target).
func NewCurveTable(g Grid) *report.Table {
	title := "parameter sweep"
	if g.Name != "" {
		title = "sweep " + g.Name
	}
	preset := g.Preset
	if preset == "" {
		preset = "baseline"
	}
	title += " (preset " + preset + ")"

	cols := make([]string, 0, len(g.Axes)+11)
	for _, ax := range g.Axes {
		cols = append(cols, ax.Name)
	}
	cols = append(cols,
		"reps",
		"admission_prob", "admission_ci95",
		"tput_cell_bps", "tput_ci95",
		"outage", "outage_ci95",
		"mean_delay_s", "delay_ci95",
		"p90_delay_s", "cell_load",
	)
	return report.NewTable(title, cols...)
}

// AppendCurveRow appends one result's row to a table made by NewCurveTable
// and returns the formatted cells, so streaming callers can emit the row as
// soon as its point completes.
func AppendCurveRow(tbl *report.Table, r Result) []string {
	row := make([]interface{}, 0, len(tbl.Columns))
	for _, v := range r.Values {
		row = append(row, v.Value)
	}
	row = append(row,
		r.Agg.Replications,
		r.Agg.CompletionRate.Mean(), r.Agg.CompletionRate.ConfidenceInterval95(),
		r.Agg.Throughput.Mean(), r.Agg.Throughput.ConfidenceInterval95(),
		1-r.Agg.Coverage.Mean(), r.Agg.Coverage.ConfidenceInterval95(),
		r.Agg.MeanDelay.Mean(), r.Agg.MeanDelay.ConfidenceInterval95(),
		r.Agg.P90Delay.Mean(), r.Agg.CellLoad.Mean(),
	)
	tbl.AddRow(row...)
	return tbl.Rows[len(tbl.Rows)-1]
}

// CurveTable renders sweep results as a complete curve table, one row per
// grid point.
func CurveTable(g Grid, results []Result) *report.Table {
	tbl := NewCurveTable(g)
	for _, r := range results {
		AppendCurveRow(tbl, r)
	}
	return tbl
}
