package sweep

import (
	"fmt"

	"jabasd/internal/scenario"
	"jabasd/internal/sim"
)

// Grids returns the built-in named grids, in display order.
func Grids() []Grid {
	return []Grid{
		{
			// paper-load-sweep reproduces the paper's headline load axis:
			// admission probability / throughput / outage versus offered load
			// (4 → 24 data users per cell) for all five scheduler kinds on
			// both links — 60 points anchored on the baseline scenario.
			Name:   "paper-load-sweep",
			Preset: scenario.PresetBaseline,
			Axes: []Axis{
				{Name: "datausers", Values: []string{"4", "8", "12", "16", "20", "24"}},
				{Name: "scheduler", Values: []string{
					string(sim.SchedulerJABASD),
					string(sim.SchedulerGreedy),
					string(sim.SchedulerFCFS),
					string(sim.SchedulerEqualShare),
					string(sim.SchedulerRandom),
				}},
				{Name: "direction", Values: []string{"forward", "reverse"}},
			},
		},
		{
			// mobility-sweep crosses pedestrian-to-vehicular speeds with the
			// exact and greedy schedulers on the baseline load.
			Name:   "mobility-sweep",
			Preset: scenario.PresetBaseline,
			Axes: []Axis{
				{Name: "speed", Values: []string{"0.5:1.5", "1:14", "14:28"}},
				{Name: "scheduler", Values: []string{
					string(sim.SchedulerJABASD),
					string(sim.SchedulerGreedy),
				}},
			},
		},
	}
}

// GridNames returns the built-in grid names in display order.
func GridNames() []string {
	defs := Grids()
	out := make([]string, len(defs))
	for i, g := range defs {
		out[i] = g.Name
	}
	return out
}

// LookupGrid finds a built-in grid by name.
func LookupGrid(name string) (Grid, error) {
	for _, g := range Grids() {
		if g.Name == name {
			return g, nil
		}
	}
	return Grid{}, fmt.Errorf("sweep: unknown grid %q (available: %v)", name, GridNames())
}
