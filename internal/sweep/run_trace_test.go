package sweep

import (
	"context"
	"reflect"
	"testing"

	"jabasd/internal/sim"
	"jabasd/internal/trace"
)

// TestStreamTracesReplicationZeroPerPoint pins the sweep trace contract:
// every point gets its own sink, only replication 0 writes to it, and the
// records are independent of the worker count.
func TestStreamTracesReplicationZeroPerPoint(t *testing.T) {
	g, err := New("smoke", []string{"datausers=2,4"})
	if err != nil {
		t.Fatal(err)
	}
	collect := func(parallel int) []*trace.Memory {
		var sinks []*trace.Memory
		opts := Options{
			Reps:     2,
			Parallel: parallel,
			Mutate:   func(c *sim.Config) { c.SimTime, c.WarmupTime = 2, 0.5 },
			Trace: func(p Point) trace.Sink {
				for len(sinks) <= p.Index {
					sinks = append(sinks, &trace.Memory{})
				}
				return sinks[p.Index]
			},
			TraceEvery: 10,
		}
		if err := Stream(context.Background(), g, opts, func(Result) error { return nil }); err != nil {
			t.Fatal(err)
		}
		return sinks
	}
	sinks := collect(1)
	if len(sinks) != 2 {
		t.Fatalf("got %d sinks, want one per point", len(sinks))
	}
	for i, mem := range sinks {
		if len(mem.Records) == 0 {
			t.Fatalf("point %d traced no records", i)
		}
		seen := map[[2]int]bool{}
		for _, r := range mem.Records {
			key := [2]int{r.Frame, r.Cell}
			if seen[key] {
				t.Fatalf("point %d: (frame %d, cell %d) twice — a second replication wrote the sink", i, r.Frame, r.Cell)
			}
			seen[key] = true
			if r.Frame%10 != 0 {
				t.Fatalf("point %d recorded unsampled frame %d", i, r.Frame)
			}
		}
	}
	parallel := collect(8)
	for i := range sinks {
		if !reflect.DeepEqual(sinks[i].Records, parallel[i].Records) {
			t.Fatalf("point %d trace depends on Parallel", i)
		}
	}
}
