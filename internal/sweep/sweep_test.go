package sweep

import (
	"context"
	"strings"
	"testing"

	"jabasd/internal/core"
	"jabasd/internal/scenario"
	"jabasd/internal/sim"
)

// shrink makes every point cheap enough for unit tests: one ring, short
// simulated time, light voice background.
func shrink(cfg *sim.Config) {
	cfg.Rings = 1
	cfg.SimTime = 2
	cfg.WarmupTime = 0.5
	cfg.VoiceUsersPerCell = 2
	cfg.Data.MeanReadingTimeSec = 2
}

func TestParseAxis(t *testing.T) {
	ax, err := ParseAxis("datausers=4, 8 ,12")
	if err != nil {
		t.Fatal(err)
	}
	if ax.Name != "datausers" || len(ax.Values) != 3 || ax.Values[1] != "8" {
		t.Errorf("parsed %+v", ax)
	}
	for _, spec := range []string{"", "datausers", "=4", "nope=1,2", "datausers="} {
		if _, err := ParseAxis(spec); err == nil {
			t.Errorf("spec %q should fail", spec)
		}
	}
}

func TestPointsGridOrderAndDedup(t *testing.T) {
	g, err := New(scenario.PresetSmoke, []string{
		"datausers=4,4,8", // the repeated 4 must collapse
		"direction=forward,reverse",
	})
	if err != nil {
		t.Fatal(err)
	}
	points, err := g.Points()
	if err != nil {
		t.Fatal(err)
	}
	wantLabels := []string{
		"datausers=4 direction=forward",
		"datausers=4 direction=reverse",
		"datausers=8 direction=forward",
		"datausers=8 direction=reverse",
	}
	if len(points) != len(wantLabels) {
		t.Fatalf("got %d points, want %d (dedup broken)", len(points), len(wantLabels))
	}
	for i, p := range points {
		if p.Index != i {
			t.Errorf("point %d has index %d", i, p.Index)
		}
		if p.Label() != wantLabels[i] {
			t.Errorf("point %d label %q, want %q (grid order broken)", i, p.Label(), wantLabels[i])
		}
	}
	if points[1].Config.Direction != sim.Reverse || points[2].Config.DataUsersPerCell != 8 {
		t.Error("axis values not applied to the configs")
	}
}

func TestPointsNoAxesIsThePreset(t *testing.T) {
	g := Grid{Preset: scenario.PresetSmoke}
	points, err := g.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].Label() != "(preset)" {
		t.Fatalf("expected the bare preset point, got %+v", points)
	}
	want, _ := scenario.Lookup(scenario.PresetSmoke)
	if points[0].Config.DataUsersPerCell != want.DataUsersPerCell {
		t.Error("bare point should equal the preset config")
	}
}

func TestSpeedAndObjectiveAxes(t *testing.T) {
	g, err := New(scenario.PresetSmoke, []string{"speed=1:5,3", "objective=j1,j2"})
	if err != nil {
		t.Fatal(err)
	}
	points, err := g.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	if points[0].Config.MinSpeed != 1 || points[0].Config.MaxSpeed != 5 {
		t.Errorf("speed range not applied: %+v", points[0].Config)
	}
	if points[2].Config.MinSpeed != 3 || points[2].Config.MaxSpeed != 3 {
		t.Errorf("constant speed not applied: %+v", points[2].Config)
	}
	if points[0].Config.Objective.Kind != core.ObjectiveThroughput {
		t.Error("j1 should select the throughput objective")
	}
	if points[1].Config.Objective.Kind != core.ObjectiveDelayAware {
		t.Error("j2 should select the delay-aware objective")
	}
}

func TestPointsRejectsBadValues(t *testing.T) {
	cases := [][]string{
		{"datausers=-1"},
		{"datausers=four"},
		{"speed=5:1"},
		{"speed=-2"},
		{"direction=sideways"},
		{"scheduler=bogus"},
		{"objective=j3"},
	}
	for _, specs := range cases {
		g, err := New(scenario.PresetSmoke, specs)
		if err != nil {
			continue // rejected at parse time is fine too
		}
		if _, err := g.Points(); err == nil {
			t.Errorf("specs %v should fail", specs)
		}
	}
	if _, err := (Grid{Preset: "no-such-preset"}).Points(); err == nil {
		t.Error("unknown preset should fail")
	}
	if _, err := (Grid{Axes: []Axis{{Name: "nope", Values: []string{"1"}}}}).Points(); err == nil {
		t.Error("unknown axis should fail")
	}
	if _, err := (Grid{Axes: []Axis{{Name: "datausers"}}}).Points(); err == nil {
		t.Error("empty axis should fail")
	}
	dup := Grid{Axes: []Axis{
		{Name: "datausers", Values: []string{"2", "4"}},
		{Name: "datausers", Values: []string{"8"}},
	}}
	if _, err := dup.Points(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate axis should fail, got %v", err)
	}
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	g, err := New(scenario.PresetSmoke, []string{"datausers=2,4"})
	if err != nil {
		t.Fatal(err)
	}
	render := func(parallel int) string {
		results, err := Run(context.Background(), g, Options{Reps: 2, Parallel: parallel, Mutate: shrink})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := CurveTable(g, results).WriteCSV(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("sweep output depends on -parallel:\n--- parallel=1\n%s--- parallel=8\n%s", serial, parallel)
	}
	if strings.Count(serial, "\n") != 3 { // header + 2 points
		t.Errorf("expected 2 data rows, got:\n%s", serial)
	}
}

func TestStreamEmitsInGridOrder(t *testing.T) {
	g, err := New(scenario.PresetSmoke, []string{"datausers=1,2,3"})
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	err = Stream(context.Background(), g, Options{Parallel: 4, Mutate: shrink}, func(r Result) error {
		got = append(got, r.Index)
		if r.Agg == nil || r.Agg.Replications != 1 {
			t.Errorf("point %d has no aggregate", r.Index)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, idx := range got {
		if idx != i {
			t.Fatalf("emit order %v not grid order", got)
		}
	}
	if len(got) != 3 {
		t.Fatalf("emitted %d of 3 points", len(got))
	}
}

func TestStreamRejectsInvalidMutatedConfig(t *testing.T) {
	g, err := New(scenario.PresetSmoke, []string{"datausers=2"})
	if err != nil {
		t.Fatal(err)
	}
	err = Stream(context.Background(), g, Options{Mutate: func(c *sim.Config) { c.SimTime = -1 }}, func(Result) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "point 0") {
		t.Errorf("invalid mutated config should fail naming the point, got %v", err)
	}
}

func TestBaseSeedOverrideIsDeterministic(t *testing.T) {
	g, err := New(scenario.PresetSmoke, []string{"datausers=2"})
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed uint64) []Result {
		out, err := Run(context.Background(), g, Options{BaseSeed: seed, Mutate: shrink})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(42), run(42)
	if a[0].Agg.MeanDelay.Mean() != b[0].Agg.MeanDelay.Mean() {
		t.Error("same BaseSeed should reproduce results")
	}
	c := run(43)
	if a[0].Config.Seed == c[0].Config.Seed {
		t.Error("BaseSeed override not applied")
	}
}

func TestLookupGrid(t *testing.T) {
	g, err := LookupGrid("paper-load-sweep")
	if err != nil {
		t.Fatal(err)
	}
	if g.Preset != scenario.PresetBaseline || len(g.Axes) != 3 {
		t.Errorf("unexpected grid %+v", g)
	}
	if _, err := LookupGrid("nope"); err == nil {
		t.Error("unknown grid should fail")
	}
	names := GridNames()
	if len(names) == 0 || names[0] != "paper-load-sweep" {
		t.Errorf("grid names %v", names)
	}
	for _, bg := range Grids() {
		if _, err := bg.Points(); err != nil {
			t.Errorf("built-in grid %s does not expand: %v", bg.Name, err)
		}
	}
}

// TestPaperLoadSweepEndToEnd runs the paper's headline grid — the 4→24 data
// users/cell load axis for all five schedulers on both links — end to end
// (at a shrunk per-point cost) and checks one curve row per (load,
// scheduler, direction) point comes out.
func TestPaperLoadSweepEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("60-point sweep skipped in -short mode")
	}
	g, err := LookupGrid("paper-load-sweep")
	if err != nil {
		t.Fatal(err)
	}
	points, err := g.Points()
	if err != nil {
		t.Fatal(err)
	}
	const want = 6 * 5 * 2
	if len(points) != want {
		t.Fatalf("paper-load-sweep has %d points, want %d", len(points), want)
	}

	results, err := Run(context.Background(), g, Options{Reps: 1, Mutate: func(c *sim.Config) {
		shrink(c)
		c.SimTime = 1.5
		c.WarmupTime = 0.3
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != want {
		t.Fatalf("got %d results, want %d", len(results), want)
	}
	tbl := CurveTable(g, results)
	if tbl.NumRows() != want {
		t.Fatalf("curve table has %d rows, want %d", tbl.NumRows(), want)
	}
	// Every (load, scheduler, direction) combination must appear exactly once.
	seen := map[string]bool{}
	for _, r := range results {
		key := r.Label()
		if seen[key] {
			t.Errorf("duplicate point %s", key)
		}
		seen[key] = true
	}
	for _, load := range []string{"4", "8", "12", "16", "20", "24"} {
		for _, sched := range []string{"jaba-sd", "fcfs", "random"} {
			for _, dir := range []string{"forward", "reverse"} {
				key := "datausers=" + load + " scheduler=" + sched + " direction=" + dir
				if !seen[key] {
					t.Errorf("missing point %s", key)
				}
			}
		}
	}
}

func TestAxesListing(t *testing.T) {
	names := AxisNames()
	if len(names) != 8 {
		t.Errorf("axis names %v", names)
	}
	lines := Axes()
	if len(lines) != len(names) {
		t.Fatalf("Axes() and AxisNames() disagree: %d vs %d", len(lines), len(names))
	}
	for i, line := range lines {
		if !strings.HasPrefix(line, names[i]+": ") {
			t.Errorf("axis line %q does not describe %q", line, names[i])
		}
	}
}
