// Package sweep expands parameter grids over the scenario presets and runs
// them on a bounded-parallel worker pool, producing the paper-style result
// curves (admission probability, throughput, outage swept over offered load,
// mobility, scheduler, ...) that single-point runs of cmd/jabasim cannot.
//
// A Grid anchors on a named preset (internal/scenario) and declares axes —
// named parameter dimensions with a list of values each. The cross product
// of the axes, deduplicated, is the grid's point list; every point is a
// complete sim.Config. The runner fans (point × replication) work items out
// over a worker pool and streams aggregated Point results in grid order as
// they complete. Seeds are derived from the point and replication indices
// only (the same scheme sim.RunReplications uses), so the output is
// byte-identical for a fixed base seed no matter how many workers run.
package sweep

import (
	"fmt"
	"strconv"
	"strings"

	"jabasd/internal/core"
	"jabasd/internal/fault"
	"jabasd/internal/scenario"
	"jabasd/internal/sim"
)

// Axis is one swept dimension: a registered parameter name and the values it
// takes. Values are strings in the axis's own syntax (see Axes).
type Axis struct {
	Name   string
	Values []string
}

// Grid is a parameter sweep: a base configuration anchoring every point
// plus the axes whose cross product forms the point list. The zero Axes
// grid has exactly one point — the base itself.
type Grid struct {
	// Name labels built-in grids (see Grids); empty for ad-hoc grids.
	Name string
	// Preset is the scenario preset every point starts from ("" = baseline).
	// Ignored when Base is set.
	Preset string
	// Base, when non-nil, anchors every point on this configuration instead
	// of a named preset — a sweep over a scenario loaded from JSON.
	Base *sim.Config
	Axes []Axis
}

// AxisValue records the value one axis took at a grid point.
type AxisValue struct {
	Axis, Value string
}

// Point is one expanded grid point: its position in grid order, the axis
// values that produced it and the complete configuration.
type Point struct {
	Index  int
	Values []AxisValue
	Config sim.Config
}

// Label renders the point's axis assignments, e.g. "datausers=8 scheduler=fcfs".
func (p Point) Label() string {
	if len(p.Values) == 0 {
		return "(preset)"
	}
	parts := make([]string, len(p.Values))
	for i, v := range p.Values {
		parts[i] = v.Axis + "=" + v.Value
	}
	return strings.Join(parts, " ")
}

// axisDef registers one sweepable parameter: how to parse a value string and
// apply it to a configuration.
type axisDef struct {
	name  string
	usage string
	apply func(cfg *sim.Config, value string) error
}

// axisDefs is the axis registry, in display order.
func axisDefs() []axisDef {
	return []axisDef{
		{
			name: "datausers", usage: "data users per cell (int >= 0), e.g. 4,8,12",
			apply: func(cfg *sim.Config, v string) error {
				n, err := parseNonNegInt(v)
				if err != nil {
					return err
				}
				cfg.DataUsersPerCell = n
				return nil
			},
		},
		{
			name: "voiceusers", usage: "voice users per cell (int >= 0)",
			apply: func(cfg *sim.Config, v string) error {
				n, err := parseNonNegInt(v)
				if err != nil {
					return err
				}
				cfg.VoiceUsersPerCell = n
				return nil
			},
		},
		{
			name: "speed", usage: "mobile speed in m/s: min:max (e.g. 1:14) or a single constant value",
			apply: func(cfg *sim.Config, v string) error {
				lo, hi, err := parseSpeed(v)
				if err != nil {
					return err
				}
				cfg.MinSpeed, cfg.MaxSpeed = lo, hi
				return nil
			},
		},
		{
			name: "direction", usage: "link direction: forward or reverse",
			apply: func(cfg *sim.Config, v string) error {
				switch v {
				case "forward":
					cfg.Direction = sim.Forward
				case "reverse":
					cfg.Direction = sim.Reverse
				default:
					return fmt.Errorf("want forward or reverse, got %q", v)
				}
				return nil
			},
		},
		{
			name: "scheduler", usage: "scheduler kind: jaba-sd, jaba-sd-greedy, fcfs, equal-share, random",
			apply: func(cfg *sim.Config, v string) error {
				kind := sim.SchedulerKind(v)
				if _, err := sim.NewScheduler(kind, 1); err != nil {
					return err
				}
				cfg.Scheduler = kind
				return nil
			},
		},
		{
			name: "framemode", usage: "frame admission mode: sequential or snapshot",
			apply: func(cfg *sim.Config, v string) error {
				switch sim.FrameMode(v) {
				case sim.FrameSequential, sim.FrameSnapshot:
					cfg.FrameMode = sim.FrameMode(v)
					return nil
				default:
					return fmt.Errorf("want sequential or snapshot, got %q", v)
				}
			},
		},
		{
			name: "faultprofile", usage: "fault schedule profile: " + strings.Join(fault.Profiles(), ", "),
			apply: func(cfg *sim.Config, v string) error {
				// Scaled to the point's own run length, so the axis composes
				// with a sim-time override or a preset's SimTime.
				cells := 1 + 3*cfg.Rings*(cfg.Rings+1)
				sched, err := fault.Profile(v, cells, cfg.SimTime, cfg.Data.MeanReadingTimeSec)
				if err != nil {
					return err
				}
				cfg.Faults = sched
				return nil
			},
		},
		{
			name: "objective", usage: "admission objective: j1 (throughput) or j2 (delay-aware)",
			apply: func(cfg *sim.Config, v string) error {
				switch v {
				case "j1", "throughput":
					cfg.Objective = core.Objective{Kind: core.ObjectiveThroughput}
				case "j2", "delay-aware":
					cfg.Objective = core.DefaultObjective()
				default:
					return fmt.Errorf("want j1 or j2, got %q", v)
				}
				return nil
			},
		},
	}
}

// Axes returns "name: usage" lines for every registered axis, in display order.
func Axes() []string {
	defs := axisDefs()
	out := make([]string, len(defs))
	for i, d := range defs {
		out[i] = d.name + ": " + d.usage
	}
	return out
}

// AxisNames returns the registered axis names in display order.
func AxisNames() []string {
	defs := axisDefs()
	out := make([]string, len(defs))
	for i, d := range defs {
		out[i] = d.name
	}
	return out
}

func lookupAxis(name string) (axisDef, bool) {
	for _, d := range axisDefs() {
		if d.name == name {
			return d, true
		}
	}
	return axisDef{}, false
}

// ParseAxis parses one "name=v1,v2,..." axis specification.
func ParseAxis(spec string) (Axis, error) {
	name, rest, ok := strings.Cut(spec, "=")
	name = strings.TrimSpace(name)
	if !ok || name == "" {
		return Axis{}, fmt.Errorf("sweep: axis spec %q: want name=v1,v2,...", spec)
	}
	if _, known := lookupAxis(name); !known {
		return Axis{}, fmt.Errorf("sweep: unknown axis %q (available: %s)",
			name, strings.Join(AxisNames(), ", "))
	}
	var values []string
	for _, raw := range strings.Split(rest, ",") {
		if v := strings.TrimSpace(raw); v != "" {
			values = append(values, v)
		}
	}
	if len(values) == 0 {
		return Axis{}, fmt.Errorf("sweep: axis %q has no values", name)
	}
	return Axis{Name: name, Values: values}, nil
}

// New builds an ad-hoc grid from a preset name and "name=v1,v2,..." axis
// specifications, validating every axis name and value against the registry.
func New(preset string, axisSpecs []string) (Grid, error) {
	g := Grid{Preset: preset}
	for _, spec := range axisSpecs {
		ax, err := ParseAxis(spec)
		if err != nil {
			return Grid{}, err
		}
		g.Axes = append(g.Axes, ax)
	}
	return g, nil
}

// Points expands the grid into its deduplicated point list in grid order:
// row-major over the axes as declared, last axis varying fastest. Duplicate
// points — axis value lists with repeats, or distinct value tuples that
// produce an identical configuration — keep only their first occurrence, so
// indices (and therefore seeds) are stable for a given grid. Every returned
// configuration is validated.
func (g Grid) Points() ([]Point, error) {
	var base sim.Config
	if g.Base != nil {
		base = *g.Base
	} else {
		var err error
		base, err = scenario.Lookup(g.Preset)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
	}
	defs := make([]axisDef, len(g.Axes))
	used := make(map[string]bool, len(g.Axes))
	total := 1
	for i, ax := range g.Axes {
		d, ok := lookupAxis(ax.Name)
		if !ok {
			return nil, fmt.Errorf("sweep: unknown axis %q (available: %s)",
				ax.Name, strings.Join(AxisNames(), ", "))
		}
		if used[ax.Name] {
			// A repeated axis would silently overwrite the earlier values in
			// every point; the user almost certainly meant one value list.
			return nil, fmt.Errorf("sweep: axis %q declared twice (merge the values into one -axis %s=... list)",
				ax.Name, ax.Name)
		}
		used[ax.Name] = true
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("sweep: axis %q has no values", ax.Name)
		}
		defs[i] = d
		total *= len(ax.Values)
	}

	var points []Point
	seen := make(map[string]bool, total)
	idx := make([]int, len(g.Axes))
	for n := 0; n < total; n++ {
		cfg := base
		values := make([]AxisValue, len(g.Axes))
		for i, ax := range g.Axes {
			v := ax.Values[idx[i]]
			if err := defs[i].apply(&cfg, v); err != nil {
				return nil, fmt.Errorf("sweep: axis %s value %q: %w", ax.Name, v, err)
			}
			values[i] = AxisValue{Axis: ax.Name, Value: v}
		}
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: point %s: %w", Point{Values: values}.Label(), err)
		}
		if key := configKey(cfg); !seen[key] {
			seen[key] = true
			points = append(points, Point{Index: len(points), Values: values, Config: cfg})
		}
		// Advance the odometer: last axis fastest.
		for i := len(idx) - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(g.Axes[i].Values) {
				break
			}
			idx[i] = 0
		}
	}
	return points, nil
}

// configKey canonicalises a configuration for point deduplication.
func configKey(cfg sim.Config) string {
	data, err := scenario.Encode(cfg)
	if err != nil {
		// Config is a plain data struct; encoding cannot fail in practice.
		panic(fmt.Sprintf("sweep: encode config: %v", err))
	}
	return string(data)
}

func parseNonNegInt(v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("want a non-negative integer, got %q", v)
	}
	return n, nil
}

// parseSpeed accepts "min:max" or a single constant speed, both in m/s.
func parseSpeed(v string) (lo, hi float64, err error) {
	loStr, hiStr, ranged := strings.Cut(v, ":")
	lo, err = strconv.ParseFloat(loStr, 64)
	if err == nil && ranged {
		hi, err = strconv.ParseFloat(hiStr, 64)
	} else if err == nil {
		hi = lo
	}
	if err != nil || lo < 0 || hi < lo {
		return 0, 0, fmt.Errorf("want min:max or a constant speed in m/s, got %q", v)
	}
	return lo, hi, nil
}
