package sweep

import (
	"context"
	"errors"
	"testing"
	"time"

	"jabasd/internal/scenario"
	"jabasd/internal/sim"
)

// TestStreamCancelledMidSweepStopsPromptly cancels the sweep from inside the
// emit callback after the first point and checks the contract documented on
// Stream: the call returns the context's error (not a wrapped point error),
// it returns promptly rather than finishing the remaining points, and the
// points emitted before the cancellation stay emitted.
func TestStreamCancelledMidSweepStopsPromptly(t *testing.T) {
	g, err := New(scenario.PresetSmoke, []string{"datausers=1,2,3,4,5,6"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Long enough that running the whole grid would dominate the test run
	// if cancellation failed to take, short enough for frame-boundary
	// cancellation checks to fire quickly.
	slow := func(cfg *sim.Config) {
		shrink(cfg)
		cfg.SimTime = 30
		cfg.WarmupTime = 0.5
	}

	var emitted int
	start := time.Now()
	err = Stream(ctx, g, Options{Parallel: 2, Mutate: slow}, func(r Result) error {
		emitted++
		cancel()
		return nil
	})
	elapsed := time.Since(start)

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if emitted < 1 || emitted >= 6 {
		t.Errorf("emitted %d points, want at least the first and not the whole grid", emitted)
	}
	// Generous bound: one point of this config takes well under a second, so
	// anything near the full six-point runtime means cancellation was ignored.
	if elapsed > 30*time.Second {
		t.Errorf("cancelled sweep took %v, did not stop promptly", elapsed)
	}
}

// TestStreamPreCancelledContext checks that a sweep handed an already
// cancelled context fails fast without running any point.
func TestStreamPreCancelledContext(t *testing.T) {
	g, err := New(scenario.PresetSmoke, []string{"datausers=2"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = Stream(ctx, g, Options{Mutate: shrink}, func(Result) error {
		t.Error("no point should be emitted under a pre-cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
