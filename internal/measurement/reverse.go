package measurement

import (
	"sort"

	"jabasd/internal/load"
)

// SCRMMaxPilots is the maximum number of forward pilot strength measurements
// a supplemental channel request message can carry (cdma2000 limit quoted in
// the paper's footnote 6).
const SCRMMaxPilots = 8

// SCRM is the supplemental channel request message a mobile sends with a
// reverse-link burst request: up to eight forward-link pilot strength
// measurements t_{j,k}^{FL} = (Ec/Io)_{j,k}, keyed by cell.
type SCRM struct {
	Pilots load.Vec
}

// NewSCRM builds an SCRM from a full pilot report, keeping only the
// SCRMMaxPilots strongest entries (ties broken towards the lower cell
// index). The result owns its storage. Hot-path callers that already hold
// their pilots strongest-first can fill an SCRM's Vec directly instead.
func NewSCRM(pilots load.Vec) SCRM {
	if pilots.Len() <= SCRMMaxPilots {
		return SCRM{Pilots: pilots.Clone()}
	}
	type kv struct {
		cell int
		v    float64
	}
	all := make([]kv, 0, pilots.Len())
	for i := 0; i < pilots.Len(); i++ {
		c, v := pilots.At(i)
		all = append(all, kv{c, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].cell < all[j].cell
	})
	out := load.MakeVec(SCRMMaxPilots)
	for i := 0; i < SCRMMaxPilots; i++ {
		out.Set(all[i].cell, all[i].v)
	}
	return SCRM{Pilots: out}
}

// ReverseRequest carries the measurements attached to one reverse-link burst
// request (paper equations 9-15).
type ReverseRequest struct {
	UserID int
	// HostCell is the cell that received the SCRM and will schedule the
	// burst; its reverse pilot measurement must be present.
	HostCell int
	// ReversePilot holds soft-handoff cell -> t_{j,k}^{RL}, the reverse-link
	// pilot strength (Ec/Io, linear) measured at that base station.
	ReversePilot load.Vec
	// SCRM carries the mobile's forward pilot report used to estimate the
	// relative path loss towards non-soft-handoff neighbour cells.
	SCRM SCRM
	// Zeta is ζ_j, the FCH-to-pilot transmit power ratio at the mobile.
	Zeta float64
	// Alpha is α_j^{RL}, the reduced-active-set power adjustment factor.
	Alpha float64
}

// ReverseState is the per-cell reverse-link state when the requests are
// evaluated.
type ReverseState struct {
	// TotalReceived[k] is L_k, the total received reverse-link power (own
	// cell + other cell + noise) at base station k.
	TotalReceived []float64
	// MaxReceived is L_max, the rise-over-thermal style cap on the total
	// received power of a cell.
	MaxReceived float64
	// GammaS is the SCH/FCH relative symbol energy requirement γ_s.
	GammaS float64
	// ShadowMargin is κ >= 1, the extra margin applied to projected
	// neighbour-cell interference to absorb shadowing estimation error
	// (equation 15).
	ShadowMargin float64
	// NeighbourCells optionally lists, per host cell, the neighbour cells to
	// protect (those for which projected interference rows are generated).
	// When nil, every cell with a forward pilot in the SCRM is protected.
	NeighbourCells map[int][]int
}

// fchReceivedPower returns X_{j,k}(FCH) = ζ_j * t_{j,k}^{RL} * L_k
// (equation 10): the reverse FCH power received at cell k from this mobile,
// reconstructed from the reverse pilot measurement.
func fchReceivedPower(req ReverseRequest, state ReverseState, k int) (float64, bool) {
	t, ok := req.ReversePilot.Get(k)
	if !ok {
		return 0, false
	}
	return req.Zeta * t * state.TotalReceived[k], true
}

// reverseVisit enumerates, for one request, every (cell, coefficient
// contribution) pair of equations (12) and (15), validating as it goes. The
// builder runs it twice: once to collect the constraint cells, once to fill
// the rows.
func reverseVisit(state ReverseState, req ReverseRequest, margin float64, visit func(cell int, contribution float64)) error {
	nCells := len(state.TotalReceived)
	if req.Zeta <= 0 || req.Alpha <= 0 {
		return ErrBadInput
	}
	if req.HostCell < 0 || req.HostCell >= nCells {
		return ErrBadInput
	}
	hostFCH, ok := fchReceivedPower(req, state, req.HostCell)
	if !ok {
		return ErrBadInput // host cell must have the reverse pilot
	}

	// Soft hand-off cells: direct measurement (equation 12).
	for i := 0; i < req.ReversePilot.Len(); i++ {
		k, _ := req.ReversePilot.At(i)
		if k < 0 || k >= nCells {
			return ErrBadInput
		}
		x, _ := fchReceivedPower(req, state, k)
		visit(k, state.GammaS*req.Alpha*x)
	}

	// Neighbour cells not in soft hand-off: project the host-cell
	// interference through the relative path loss (equations 13-15).
	hostForwardPilot, hostPilotOK := req.SCRM.Pilots.Get(req.HostCell)
	if !hostPilotOK || hostForwardPilot <= 0 {
		return nil // cannot project without the host forward pilot
	}
	project := func(k int) error {
		if k == req.HostCell {
			return nil
		}
		if _, isSHO := req.ReversePilot.Get(k); isSHO {
			return nil // already handled with the direct measurement
		}
		if k < 0 || k >= nCells {
			return ErrBadInput
		}
		fp, ok := req.SCRM.Pilots.Get(k)
		if !ok || fp <= 0 {
			return nil // no pilot report for this neighbour
		}
		relPathLoss := fp / hostForwardPilot // δP_{k,k'} of equation (14)
		visit(k, state.GammaS*req.Alpha*hostFCH*relPathLoss*margin)
		return nil
	}
	if neighbours := state.NeighbourCells[req.HostCell]; neighbours != nil {
		for _, k := range neighbours {
			if err := project(k); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < req.SCRM.Pilots.Len(); i++ {
		k, _ := req.SCRM.Pilots.At(i)
		if err := project(k); err != nil {
			return err
		}
	}
	return nil
}

// Reverse builds the reverse-link admissible region of equations (16)-(18)
// into the builder's reusable buffers: for every cell k (soft hand-off or
// protected neighbour),
//
//	Σ_j Y_{j,k}(m_j)  <=  L_max − L_k,
//
// where Y_{j,k} = m_j γ_s α_j X_{j,k}(FCH) for soft hand-off cells
// (equation 12) and the projected value scaled by the relative path loss
// estimated from the SCRM forward pilots times the shadow margin for
// neighbour cells not in soft hand-off (equation 15). The returned Region
// aliases the builder's storage and is valid until the next build.
func (b *RegionBuilder) Reverse(state ReverseState, requests []ReverseRequest) (Region, error) {
	if state.MaxReceived <= 0 || state.GammaS <= 0 {
		return Region{}, ErrBadInput
	}
	margin := state.ShadowMargin
	if margin < 1 {
		margin = 1
	}
	b.begin(len(state.TotalReceived))

	// Pass 1: validate and collect the constraint cells.
	for _, req := range requests {
		if err := reverseVisit(state, req, margin, func(cell int, _ float64) {
			b.touch(cell)
		}); err != nil {
			return Region{}, err
		}
	}
	b.finishCells(len(requests))

	// Pass 2: accumulate the coefficients (validation already passed).
	for j, req := range requests {
		row := func(cell int, contribution float64) {
			b.row(cell)[j] += contribution
		}
		if err := reverseVisit(state, req, margin, row); err != nil {
			return Region{}, err
		}
	}
	for i, k := range b.cells {
		b.bounds[i] = state.MaxReceived - state.TotalReceived[k]
	}
	return b.region(), nil
}

// ReverseRegion builds the reverse-link admissible region on a fresh
// builder; unlike RegionBuilder.Reverse the result owns its storage.
func ReverseRegion(state ReverseState, requests []ReverseRequest) (Region, error) {
	var b RegionBuilder
	return b.Reverse(state, requests)
}
