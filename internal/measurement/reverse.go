package measurement

import "sort"

// SCRMMaxPilots is the maximum number of forward pilot strength measurements
// a supplemental channel request message can carry (cdma2000 limit quoted in
// the paper's footnote 6).
const SCRMMaxPilots = 8

// SCRM is the supplemental channel request message a mobile sends with a
// reverse-link burst request: up to eight forward-link pilot strength
// measurements t_{j,k}^{FL} = (Ec/Io)_{j,k}, keyed by cell.
type SCRM struct {
	Pilots map[int]float64
}

// NewSCRM builds an SCRM from a full pilot report, keeping only the
// SCRMMaxPilots strongest entries.
func NewSCRM(pilots map[int]float64) SCRM {
	if len(pilots) <= SCRMMaxPilots {
		cp := make(map[int]float64, len(pilots))
		for k, v := range pilots {
			cp[k] = v
		}
		return SCRM{Pilots: cp}
	}
	type kv struct {
		cell int
		v    float64
	}
	all := make([]kv, 0, len(pilots))
	for k, v := range pilots {
		all = append(all, kv{k, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].cell < all[j].cell
	})
	out := make(map[int]float64, SCRMMaxPilots)
	for i := 0; i < SCRMMaxPilots; i++ {
		out[all[i].cell] = all[i].v
	}
	return SCRM{Pilots: out}
}

// ReverseRequest carries the measurements attached to one reverse-link burst
// request (paper equations 9-15).
type ReverseRequest struct {
	UserID int
	// HostCell is the cell that received the SCRM and will schedule the
	// burst; its reverse pilot measurement must be present.
	HostCell int
	// ReversePilot maps soft-handoff cell -> t_{j,k}^{RL}, the reverse-link
	// pilot strength (Ec/Io, linear) measured at that base station.
	ReversePilot map[int]float64
	// SCRM carries the mobile's forward pilot report used to estimate the
	// relative path loss towards non-soft-handoff neighbour cells.
	SCRM SCRM
	// Zeta is ζ_j, the FCH-to-pilot transmit power ratio at the mobile.
	Zeta float64
	// Alpha is α_j^{RL}, the reduced-active-set power adjustment factor.
	Alpha float64
}

// ReverseState is the per-cell reverse-link state when the requests are
// evaluated.
type ReverseState struct {
	// TotalReceived[k] is L_k, the total received reverse-link power (own
	// cell + other cell + noise) at base station k.
	TotalReceived []float64
	// MaxReceived is L_max, the rise-over-thermal style cap on the total
	// received power of a cell.
	MaxReceived float64
	// GammaS is the SCH/FCH relative symbol energy requirement γ_s.
	GammaS float64
	// ShadowMargin is κ >= 1, the extra margin applied to projected
	// neighbour-cell interference to absorb shadowing estimation error
	// (equation 15).
	ShadowMargin float64
	// NeighbourCells optionally lists, per host cell, the neighbour cells to
	// protect (those for which projected interference rows are generated).
	// When nil, every cell with a forward pilot in the SCRM is protected.
	NeighbourCells map[int][]int
}

// fchReceivedPower returns X_{j,k}(FCH) = ζ_j * t_{j,k}^{RL} * L_k
// (equation 10): the reverse FCH power received at cell k from this mobile,
// reconstructed from the reverse pilot measurement.
func fchReceivedPower(req ReverseRequest, state ReverseState, k int) (float64, bool) {
	t, ok := req.ReversePilot[k]
	if !ok {
		return 0, false
	}
	return req.Zeta * t * state.TotalReceived[k], true
}

// ReverseRegion builds the reverse-link admissible region of equations
// (16)-(18): for every cell k (soft hand-off or protected neighbour),
//
//	Σ_j Y_{j,k}(m_j)  <=  L_max − L_k,
//
// where Y_{j,k} = m_j γ_s α_j X_{j,k}(FCH) for soft hand-off cells
// (equation 12) and the projected value scaled by the relative path loss
// estimated from the SCRM forward pilots times the shadow margin for
// neighbour cells not in soft hand-off (equation 15).
func ReverseRegion(state ReverseState, requests []ReverseRequest) (Region, error) {
	if state.MaxReceived <= 0 || state.GammaS <= 0 {
		return Region{}, ErrBadInput
	}
	margin := state.ShadowMargin
	if margin < 1 {
		margin = 1
	}
	n := len(requests)

	// Determine the set of cells that need a constraint row and the per
	// (request, cell) interference coefficient.
	coeff := map[int][]float64{} // cell -> row
	ensureRow := func(k int) []float64 {
		if row, ok := coeff[k]; ok {
			return row
		}
		row := make([]float64, n)
		coeff[k] = row
		return row
	}

	for j, req := range requests {
		if req.Zeta <= 0 || req.Alpha <= 0 {
			return Region{}, ErrBadInput
		}
		if req.HostCell < 0 || req.HostCell >= len(state.TotalReceived) {
			return Region{}, ErrBadInput
		}
		hostFCH, ok := fchReceivedPower(req, state, req.HostCell)
		if !ok {
			return Region{}, ErrBadInput // host cell must have the reverse pilot
		}
		hostForwardPilot, hostPilotOK := req.SCRM.Pilots[req.HostCell]

		// Soft hand-off cells: direct measurement (equation 12).
		for k := range req.ReversePilot {
			if k < 0 || k >= len(state.TotalReceived) {
				return Region{}, ErrBadInput
			}
			x, _ := fchReceivedPower(req, state, k)
			row := ensureRow(k)
			row[j] += state.GammaS * req.Alpha * x
		}

		// Neighbour cells not in soft hand-off: project the host-cell
		// interference through the relative path loss (equations 13-15).
		if !hostPilotOK || hostForwardPilot <= 0 {
			continue // cannot project without the host forward pilot
		}
		neighbours := state.NeighbourCells[req.HostCell]
		if neighbours == nil {
			for k := range req.SCRM.Pilots {
				neighbours = append(neighbours, k)
			}
			sort.Ints(neighbours)
		}
		for _, k := range neighbours {
			if k == req.HostCell {
				continue
			}
			if _, isSHO := req.ReversePilot[k]; isSHO {
				continue // already handled with the direct measurement
			}
			if k < 0 || k >= len(state.TotalReceived) {
				return Region{}, ErrBadInput
			}
			fp, ok := req.SCRM.Pilots[k]
			if !ok || fp <= 0 {
				continue // no pilot report for this neighbour
			}
			relPathLoss := fp / hostForwardPilot // δP_{k,k'} of equation (14)
			row := ensureRow(k)
			row[j] += state.GammaS * req.Alpha * hostFCH * relPathLoss * margin
		}
	}

	cells := make([]int, 0, len(coeff))
	for k := range coeff {
		cells = append(cells, k)
	}
	sort.Ints(cells)
	region := Region{Cells: cells}
	for _, k := range cells {
		region.Coeff = append(region.Coeff, coeff[k])
		region.Bound = append(region.Bound, state.MaxReceived-state.TotalReceived[k])
	}
	return region, nil
}

// Merge combines two regions over the same request vector into one (the
// scheduling sub-layer optimises forward and reverse link assignments
// independently, but tests and tools sometimes want the joint region).
func Merge(a, b Region) Region {
	out := Region{}
	out.Coeff = append(out.Coeff, a.Coeff...)
	out.Coeff = append(out.Coeff, b.Coeff...)
	out.Bound = append(out.Bound, a.Bound...)
	out.Bound = append(out.Bound, b.Bound...)
	out.Cells = append(out.Cells, a.Cells...)
	out.Cells = append(out.Cells, b.Cells...)
	return out
}
