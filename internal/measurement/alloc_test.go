package measurement

import (
	"testing"

	"jabasd/internal/race"
)

// TestIncrementalSteadyStateAllocs gates both sides of the region cache's
// allocation contract: a cache hit only refreshes bounds in place, and a
// rebuild deep-copies into buffers that stop growing once they reach the
// working-set high-water mark — so in the steady state neither path
// allocates at all.
func TestIncrementalSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	const nCells, users = 7, 30
	w := newIncrementalWorld(77, nCells, users)
	ir := NewIncrementalRegions(nCells, 0)
	var rb RegionBuilder

	buildAll := func() {
		for k := 0; k < nCells; k++ {
			fwd, _, vers := w.gather(k)
			if len(fwd) == 0 {
				continue
			}
			fstate := ForwardState{CurrentLoad: w.loads, MaxLoad: 20, GammaS: 1.25}
			if _, _, err := ir.ForwardCell(k, &rb, fstate, fwd, vers); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm up: grow the builder's and the cache's buffers to the working set.
	for f := 0; f < 20; f++ {
		w.stepFrame()
		buildAll()
	}

	// Steady-state churn: measurements keep changing, so this loop exercises
	// the rebuild+store path (gather itself allocates its request slices and
	// is excluded — the engine reuses scratch for that).
	type cellReqs struct {
		fwd  []ForwardRequest
		vers []uint64
	}
	reqs := make([]cellReqs, nCells)
	snapshot := func() {
		for k := 0; k < nCells; k++ {
			reqs[k].fwd, _, reqs[k].vers = w.gather(k)
		}
	}
	fstate := ForwardState{CurrentLoad: w.loads, MaxLoad: 20, GammaS: 1.25}
	snapshot()
	if allocs := testing.AllocsPerRun(50, func() {
		for k := 0; k < nCells; k++ {
			if len(reqs[k].fwd) == 0 {
				continue
			}
			if _, _, err := ir.ForwardCell(k, &rb, fstate, reqs[k].fwd, reqs[k].vers); err != nil {
				t.Fatal(err)
			}
		}
	}); allocs != 0 {
		t.Errorf("steady-state ForwardCell allocated %v times per frame, want 0", allocs)
	}

	// The loop above served hits after the first rebuild (unchanged inputs);
	// force version churn to confirm the rebuild path itself is also clean.
	for u := 0; u < users; u++ {
		w.mutateUser(u)
	}
	snapshot()
	for k := 0; k < nCells; k++ { // one build at the new versions
		if len(reqs[k].fwd) == 0 {
			continue
		}
		if _, _, err := ir.ForwardCell(k, &rb, fstate, reqs[k].fwd, reqs[k].vers); err != nil {
			t.Fatal(err)
		}
	}
	ir.ForceFull = true // every call below rebuilds and stores
	if allocs := testing.AllocsPerRun(50, func() {
		for k := 0; k < nCells; k++ {
			if len(reqs[k].fwd) == 0 {
				continue
			}
			if _, _, err := ir.ForwardCell(k, &rb, fstate, reqs[k].fwd, reqs[k].vers); err != nil {
				t.Fatal(err)
			}
		}
	}); allocs != 0 {
		t.Errorf("steady-state rebuild+store allocated %v times per frame, want 0", allocs)
	}
}
