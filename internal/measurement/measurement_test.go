package measurement

import (
	"math"
	"testing"
	"testing/quick"

	"jabasd/internal/load"
)

func TestForwardRegionSingleCell(t *testing.T) {
	state := ForwardState{
		CurrentLoad: []float64{8},
		MaxLoad:     20,
		GammaS:      1.25,
	}
	reqs := []ForwardRequest{
		{UserID: 1, FCHPower: load.FromMap(map[int]float64{0: 0.5}), Alpha: 1},
		{UserID: 2, FCHPower: load.FromMap(map[int]float64{0: 1.0}), Alpha: 1.2},
	}
	region, err := ForwardRegion(state, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if region.NumConstraints() != 1 {
		t.Fatalf("constraints = %d, want 1", region.NumConstraints())
	}
	// a_{jk} = γs * P_jk * α_j.
	wantRow := []float64{1.25 * 0.5 * 1, 1.25 * 1.0 * 1.2}
	for j, w := range wantRow {
		if math.Abs(region.Coeff[0][j]-w) > 1e-12 {
			t.Errorf("coeff[%d] = %v, want %v", j, region.Coeff[0][j], w)
		}
	}
	if math.Abs(region.Bound[0]-12) > 1e-12 {
		t.Errorf("bound = %v, want 12", region.Bound[0])
	}
	if region.Cells[0] != 0 {
		t.Errorf("cell index = %d", region.Cells[0])
	}
}

func TestForwardRegionSoftHandoffTwoCells(t *testing.T) {
	// A user in soft hand-off consumes power in both reduced-active-set cells.
	state := ForwardState{CurrentLoad: []float64{5, 15}, MaxLoad: 20, GammaS: 1}
	reqs := []ForwardRequest{
		{UserID: 1, FCHPower: load.FromMap(map[int]float64{0: 1, 1: 2}), Alpha: 1},
	}
	region, err := ForwardRegion(state, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if region.NumConstraints() != 2 {
		t.Fatalf("constraints = %d, want 2", region.NumConstraints())
	}
	// Cell 1 has only 5 units of headroom: m <= 5/2.
	if !region.Feasible([]int{2}) {
		t.Error("m=2 should be feasible")
	}
	if region.Feasible([]int{3}) {
		t.Error("m=3 should violate cell 1's power budget")
	}
	head := region.Headroom([]int{2})
	if math.Abs(head[0]-13) > 1e-12 || math.Abs(head[1]-1) > 1e-12 {
		t.Errorf("headroom = %v", head)
	}
}

func TestForwardRegionOverloadedCell(t *testing.T) {
	state := ForwardState{CurrentLoad: []float64{25}, MaxLoad: 20, GammaS: 1}
	reqs := []ForwardRequest{{UserID: 1, FCHPower: load.FromMap(map[int]float64{0: 1}), Alpha: 1}}
	region, err := ForwardRegion(state, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if region.Bound[0] >= 0 {
		t.Error("overloaded cell should have negative bound")
	}
	if region.Feasible([]int{1}) {
		t.Error("any admission should be infeasible in an overloaded cell")
	}
	if !region.Feasible([]int{0}) {
		// The zero vector is "feasible" w.r.t. the matrix but the row bound is
		// negative, meaning even zero violates: document the behaviour —
		// Feasible(0) is false for negative bounds.
		t.Log("zero vector infeasible because the cell is already above P_max")
	}
}

func TestForwardRegionValidation(t *testing.T) {
	good := ForwardState{CurrentLoad: []float64{1}, MaxLoad: 10, GammaS: 1}
	cases := []struct {
		state ForwardState
		reqs  []ForwardRequest
	}{
		{ForwardState{CurrentLoad: []float64{1}, MaxLoad: 0, GammaS: 1}, nil},
		{ForwardState{CurrentLoad: []float64{1}, MaxLoad: 10, GammaS: 0}, nil},
		{good, []ForwardRequest{{FCHPower: load.FromMap(map[int]float64{0: 1}), Alpha: 0}}},
		{good, []ForwardRequest{{FCHPower: load.FromMap(map[int]float64{5: 1}), Alpha: 1}}},
		{good, []ForwardRequest{{FCHPower: load.FromMap(map[int]float64{-1: 1}), Alpha: 1}}},
		{good, []ForwardRequest{{FCHPower: load.FromMap(map[int]float64{0: -2}), Alpha: 1}}},
	}
	for i, c := range cases {
		if _, err := ForwardRegion(c.state, c.reqs); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestForwardRegionEmptyRequests(t *testing.T) {
	state := ForwardState{CurrentLoad: []float64{1, 2}, MaxLoad: 10, GammaS: 1}
	region, err := ForwardRegion(state, nil)
	if err != nil {
		t.Fatal(err)
	}
	if region.NumConstraints() != 0 {
		t.Error("no requests should produce no constraints")
	}
	if !region.Feasible(nil) {
		t.Error("empty region should be trivially feasible")
	}
}

func TestSCRMCapsAtEight(t *testing.T) {
	pilots := map[int]float64{}
	for i := 0; i < 15; i++ {
		pilots[i] = float64(i + 1) // cell 14 strongest
	}
	s := NewSCRM(load.FromMap(pilots))
	if s.Pilots.Len() != SCRMMaxPilots {
		t.Fatalf("SCRM carries %d pilots, want %d", s.Pilots.Len(), SCRMMaxPilots)
	}
	// It must keep the strongest eight: cells 7..14.
	for c := 7; c <= 14; c++ {
		if _, ok := s.Pilots.Get(c); !ok {
			t.Errorf("strong pilot for cell %d dropped", c)
		}
	}
	for c := 0; c <= 6; c++ {
		if _, ok := s.Pilots.Get(c); ok {
			t.Errorf("weak pilot for cell %d kept", c)
		}
	}
	// Small reports are kept as-is (copied).
	small := load.FromMap(map[int]float64{1: 0.1, 2: 0.2})
	s2 := NewSCRM(small)
	if s2.Pilots.Len() != 2 {
		t.Error("small SCRM should keep all pilots")
	}
	small.Set(1, 99)
	if v, _ := s2.Pilots.Get(1); v == 99 {
		t.Error("SCRM should copy the pilot report")
	}
}

func defaultReverseState() ReverseState {
	return ReverseState{
		TotalReceived: []float64{2.0, 1.5, 1.0},
		MaxReceived:   4.0,
		GammaS:        1.25,
		ShadowMargin:  1.5,
	}
}

func TestReverseRegionSoftHandoffCoefficients(t *testing.T) {
	state := defaultReverseState()
	req := ReverseRequest{
		UserID:       1,
		HostCell:     0,
		ReversePilot: load.FromMap(map[int]float64{0: 0.02, 1: 0.01}),
		SCRM:         NewSCRM(load.FromMap(map[int]float64{0: 0.05, 1: 0.03})),
		Zeta:         4,
		Alpha:        1,
	}
	region, err := ReverseRegion(state, []ReverseRequest{req})
	if err != nil {
		t.Fatal(err)
	}
	// Rows for cells 0 and 1 (both soft hand-off); no other cells involved.
	if region.NumConstraints() != 2 {
		t.Fatalf("constraints = %d, want 2", region.NumConstraints())
	}
	// Equation (12): b_{j,k} = γs * α * ζ * t^{RL}_{j,k} * L_k.
	want0 := 1.25 * 1 * 4 * 0.02 * 2.0
	want1 := 1.25 * 1 * 4 * 0.01 * 1.5
	if math.Abs(region.Coeff[0][0]-want0) > 1e-12 {
		t.Errorf("cell 0 coeff = %v, want %v", region.Coeff[0][0], want0)
	}
	if math.Abs(region.Coeff[1][0]-want1) > 1e-12 {
		t.Errorf("cell 1 coeff = %v, want %v", region.Coeff[1][0], want1)
	}
	if math.Abs(region.Bound[0]-2.0) > 1e-12 || math.Abs(region.Bound[1]-2.5) > 1e-12 {
		t.Errorf("bounds = %v", region.Bound)
	}
}

func TestReverseRegionNeighbourProjection(t *testing.T) {
	state := defaultReverseState()
	req := ReverseRequest{
		UserID:       1,
		HostCell:     0,
		ReversePilot: load.FromMap(map[int]float64{0: 0.02}),
		// Forward pilots: host 0.05, neighbour cell 2 at 0.01.
		SCRM:  NewSCRM(load.FromMap(map[int]float64{0: 0.05, 2: 0.01})),
		Zeta:  4,
		Alpha: 1,
	}
	region, err := ReverseRegion(state, []ReverseRequest{req})
	if err != nil {
		t.Fatal(err)
	}
	if region.NumConstraints() != 2 {
		t.Fatalf("constraints = %d (cells %v), want 2", region.NumConstraints(), region.Cells)
	}
	// Host-cell FCH received power: ζ t L = 4*0.02*2 = 0.16.
	// Neighbour projection (eq. 15): γs*α*X_host*(fp_k'/fp_host)*κ
	//   = 1.25*1*0.16*(0.01/0.05)*1.5 = 0.06.
	var neighbourRow []float64
	for i, c := range region.Cells {
		if c == 2 {
			neighbourRow = region.Coeff[i]
		}
	}
	if neighbourRow == nil {
		t.Fatal("no constraint generated for neighbour cell 2")
	}
	if math.Abs(neighbourRow[0]-0.06) > 1e-12 {
		t.Errorf("neighbour coeff = %v, want 0.06", neighbourRow[0])
	}
}

func TestReverseRegionExplicitNeighbourList(t *testing.T) {
	state := defaultReverseState()
	state.NeighbourCells = map[int][]int{0: {1}} // only protect cell 1
	req := ReverseRequest{
		UserID:       1,
		HostCell:     0,
		ReversePilot: load.FromMap(map[int]float64{0: 0.02}),
		SCRM:         NewSCRM(load.FromMap(map[int]float64{0: 0.05, 1: 0.02, 2: 0.01})),
		Zeta:         4,
		Alpha:        1,
	}
	region, err := ReverseRegion(state, []ReverseRequest{req})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range region.Cells {
		if c == 2 {
			t.Error("cell 2 should not be protected when an explicit neighbour list excludes it")
		}
	}
}

func TestReverseRegionShadowMarginIncreasesProtection(t *testing.T) {
	mk := func(margin float64) float64 {
		state := defaultReverseState()
		state.ShadowMargin = margin
		req := ReverseRequest{
			UserID:       1,
			HostCell:     0,
			ReversePilot: load.FromMap(map[int]float64{0: 0.02}),
			SCRM:         NewSCRM(load.FromMap(map[int]float64{0: 0.05, 2: 0.01})),
			Zeta:         4,
			Alpha:        1,
		}
		region, err := ReverseRegion(state, []ReverseRequest{req})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range region.Cells {
			if c == 2 {
				return region.Coeff[i][0]
			}
		}
		return 0
	}
	small := mk(1)
	big := mk(3)
	if big <= small {
		t.Errorf("larger shadow margin should project more interference: %v vs %v", big, small)
	}
	// Margin below 1 is clamped to 1.
	if mk(0.2) != small {
		t.Error("margins below 1 should clamp to 1")
	}
}

func TestReverseRegionValidation(t *testing.T) {
	good := defaultReverseState()
	base := ReverseRequest{
		HostCell:     0,
		ReversePilot: load.FromMap(map[int]float64{0: 0.02}),
		SCRM:         NewSCRM(load.FromMap(map[int]float64{0: 0.05})),
		Zeta:         4,
		Alpha:        1,
	}
	badZeta := base
	badZeta.Zeta = 0
	badAlpha := base
	badAlpha.Alpha = 0
	badHost := base
	badHost.HostCell = 9
	noHostPilot := base
	noHostPilot.ReversePilot = load.FromMap(map[int]float64{1: 0.02})
	badSHOCell := base
	badSHOCell.ReversePilot = load.FromMap(map[int]float64{0: 0.02, 9: 0.01})
	badNeighbour := base
	badNeighbour.SCRM = NewSCRM(load.FromMap(map[int]float64{0: 0.05, 9: 0.01}))

	cases := []struct {
		name  string
		state ReverseState
		req   ReverseRequest
	}{
		{"bad max", ReverseState{TotalReceived: []float64{1}, MaxReceived: 0, GammaS: 1}, base},
		{"bad gamma", ReverseState{TotalReceived: []float64{1}, MaxReceived: 2, GammaS: 0}, base},
		{"bad zeta", good, badZeta},
		{"bad alpha", good, badAlpha},
		{"bad host", good, badHost},
		{"no host pilot", good, noHostPilot},
		{"bad SHO cell", good, badSHOCell},
		{"bad neighbour cell", good, badNeighbour},
	}
	for _, c := range cases {
		if _, err := ReverseRegion(c.state, []ReverseRequest{c.req}); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestReverseRegionNoSCRMHostPilotSkipsProjection(t *testing.T) {
	state := defaultReverseState()
	req := ReverseRequest{
		HostCell:     0,
		ReversePilot: load.FromMap(map[int]float64{0: 0.02}),
		SCRM:         NewSCRM(load.FromMap(map[int]float64{2: 0.01})), // host pilot missing
		Zeta:         4,
		Alpha:        1,
	}
	region, err := ReverseRegion(state, []ReverseRequest{req})
	if err != nil {
		t.Fatal(err)
	}
	// Only the host soft hand-off row should exist; projection impossible.
	if region.NumConstraints() != 1 || region.Cells[0] != 0 {
		t.Errorf("expected only the host row, got cells %v", region.Cells)
	}
}

func TestRegionFeasibleMonotoneProperty(t *testing.T) {
	// Feasibility is monotone: reducing any assignment keeps it feasible
	// (all coefficients are non-negative by construction).
	state := defaultReverseState()
	reqs := []ReverseRequest{
		{
			HostCell:     0,
			ReversePilot: load.FromMap(map[int]float64{0: 0.01, 1: 0.008}),
			SCRM:         NewSCRM(load.FromMap(map[int]float64{0: 0.05, 1: 0.04, 2: 0.01})),
			Zeta:         4,
			Alpha:        1,
		},
		{
			HostCell:     1,
			ReversePilot: load.FromMap(map[int]float64{1: 0.012}),
			SCRM:         NewSCRM(load.FromMap(map[int]float64{1: 0.06, 2: 0.02})),
			Zeta:         4,
			Alpha:        1.2,
		},
	}
	region, err := ReverseRegion(state, reqs)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8) bool {
		m := []int{int(a % 8), int(b % 8)}
		if !region.Feasible(m) {
			return true
		}
		// Any componentwise-smaller vector stays feasible.
		for j := range m {
			if m[j] > 0 {
				smaller := append([]int(nil), m...)
				smaller[j]--
				if !region.Feasible(smaller) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMerge(t *testing.T) {
	a := Region{Coeff: [][]float64{{1}}, Bound: []float64{2}, Cells: []int{0}}
	b := Region{Coeff: [][]float64{{3}}, Bound: []float64{4}, Cells: []int{1}}
	m := Merge(a, b)
	if m.NumConstraints() != 2 || m.Bound[1] != 4 || m.Coeff[1][0] != 3 || m.Cells[1] != 1 {
		t.Errorf("Merge = %+v", m)
	}
}
