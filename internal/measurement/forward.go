// Package measurement implements the paper's measurement sub-layer
// (Section 3.1): it turns the per-cell load/interference measurements and
// the per-request pilot reports into the linear admissible regions
//
//	forward link:  A·m <= z   (power limited, equations 6-8)
//	reverse link:  B·m <= l   (interference limited, equations 9-18)
//
// that the scheduling sub-layer (package core) optimises over.
//
// Per-request cell-indexed quantities (FCH powers, pilot reports) travel as
// slice-backed load.Vec values rather than maps, so the simulator can hand
// its per-user ledgers straight to the region builders without copying.
package measurement

import (
	"errors"

	"jabasd/internal/load"
)

// ErrBadInput is returned when the measurement inputs are inconsistent.
var ErrBadInput = errors.New("measurement: inconsistent inputs")

// ForwardRequest carries the measurements attached to one forward-link burst
// request: the forward FCH loading P_{j,k} that each base station in the
// user's reduced active set currently spends on this user, and the reduced
// active set adjustment factor α_j^{FL}.
type ForwardRequest struct {
	UserID int
	// FCHPower holds cell -> P_{j,k}, the base-station transmit power
	// currently required by this user's fundamental channel. Cells outside
	// the reduced active set must be absent (P_{j,k} = 0).
	FCHPower load.Vec
	// Alpha is the adjustment factor α_j^{FL} accounting for the reduced
	// active set (1.0 when the user is served by a single cell).
	Alpha float64
}

// ForwardState is the per-cell forward-link state of the system at the
// moment the burst requests are evaluated.
type ForwardState struct {
	// CurrentLoad[k] is the existing forward-link transmit power P̄_k at
	// cell k (all channels already granted), in the same unit as MaxLoad.
	CurrentLoad []float64
	// MaxLoad is the maximum transmit power P_max of a cell.
	MaxLoad float64
	// GammaS is the SCH/FCH relative symbol energy requirement γ_s.
	GammaS float64
}

// Forward builds the forward-link admissible region of equation (7) into the
// builder's reusable buffers: for every cell k involved in at least one
// request's reduced active set,
//
//	γ_s Σ_j m_j P_{j,k} α_j^{FL}  <=  P_max − P̄_k.
//
// Cells whose existing load already exceeds P_max produce a row with a
// negative bound, which correctly forces m_j = 0 for every request that
// involves them. The returned Region aliases the builder's storage and is
// valid until the next build.
func (b *RegionBuilder) Forward(state ForwardState, requests []ForwardRequest) (Region, error) {
	if state.MaxLoad <= 0 || state.GammaS <= 0 {
		return Region{}, ErrBadInput
	}
	nCells := len(state.CurrentLoad)
	b.begin(nCells)

	// Pass 1: validate and collect the set of cells any request involves.
	for _, r := range requests {
		if r.Alpha <= 0 {
			return Region{}, ErrBadInput
		}
		for i := 0; i < r.FCHPower.Len(); i++ {
			k, p := r.FCHPower.At(i)
			if k < 0 || k >= nCells || p < 0 {
				return Region{}, ErrBadInput
			}
			b.touch(k)
		}
	}
	b.finishCells(len(requests))

	// Pass 2: fill the a_{jk} coefficients of equation (8) and the bounds.
	for j, r := range requests {
		for i := 0; i < r.FCHPower.Len(); i++ {
			k, p := r.FCHPower.At(i)
			b.row(k)[j] = state.GammaS * p * r.Alpha
		}
	}
	for i, k := range b.cells {
		b.bounds[i] = state.MaxLoad - state.CurrentLoad[k]
	}
	return b.region(), nil
}

// ForwardRegion builds the forward-link admissible region on a fresh
// builder; unlike RegionBuilder.Forward the result owns its storage.
func ForwardRegion(state ForwardState, requests []ForwardRequest) (Region, error) {
	var b RegionBuilder
	return b.Forward(state, requests)
}
