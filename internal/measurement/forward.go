// Package measurement implements the paper's measurement sub-layer
// (Section 3.1): it turns the per-cell load/interference measurements and
// the per-request pilot reports into the linear admissible regions
//
//	forward link:  A·m <= z   (power limited, equations 6-8)
//	reverse link:  B·m <= l   (interference limited, equations 9-18)
//
// that the scheduling sub-layer (package core) optimises over.
package measurement

import (
	"errors"
	"sort"
)

// ErrBadInput is returned when the measurement inputs are inconsistent.
var ErrBadInput = errors.New("measurement: inconsistent inputs")

// ForwardRequest carries the measurements attached to one forward-link burst
// request: the forward FCH loading P_{j,k} that each base station in the
// user's reduced active set currently spends on this user, and the reduced
// active set adjustment factor α_j^{FL}.
type ForwardRequest struct {
	UserID int
	// FCHPower maps cell index -> P_{j,k}, the base-station transmit power
	// currently required by this user's fundamental channel. Cells outside
	// the reduced active set must be absent (P_{j,k} = 0).
	FCHPower map[int]float64
	// Alpha is the adjustment factor α_j^{FL} accounting for the reduced
	// active set (1.0 when the user is served by a single cell).
	Alpha float64
}

// ForwardState is the per-cell forward-link state of the system at the
// moment the burst requests are evaluated.
type ForwardState struct {
	// CurrentLoad[k] is the existing forward-link transmit power P̄_k at
	// cell k (all channels already granted), in the same unit as MaxLoad.
	CurrentLoad []float64
	// MaxLoad is the maximum transmit power P_max of a cell.
	MaxLoad float64
	// GammaS is the SCH/FCH relative symbol energy requirement γ_s.
	GammaS float64
}

// Region is a linear admissible region  Coeff·m <= Bound  over the integer
// assignment vector m (one entry per request, in the order the requests were
// supplied). Rows with no involvement from any request are omitted.
type Region struct {
	Coeff [][]float64 // one row per binding resource (cell)
	Bound []float64
	Cells []int // which cell produced each row (useful for reporting)
}

// NumConstraints returns the number of rows in the region.
func (r Region) NumConstraints() int { return len(r.Coeff) }

// Feasible reports whether the integer assignment m satisfies the region.
func (r Region) Feasible(m []int) bool {
	for i, row := range r.Coeff {
		lhs := 0.0
		for j, a := range row {
			if j < len(m) {
				lhs += a * float64(m[j])
			}
		}
		if lhs > r.Bound[i]+1e-9 {
			return false
		}
	}
	return true
}

// Headroom returns, for each row, the remaining budget Bound - Coeff·m.
func (r Region) Headroom(m []int) []float64 {
	out := make([]float64, len(r.Coeff))
	for i, row := range r.Coeff {
		lhs := 0.0
		for j, a := range row {
			if j < len(m) {
				lhs += a * float64(m[j])
			}
		}
		out[i] = r.Bound[i] - lhs
	}
	return out
}

// ForwardRegion builds the forward-link admissible region of equation (7):
// for every cell k involved in at least one request's reduced active set,
//
//	γ_s Σ_j m_j P_{j,k} α_j^{FL}  <=  P_max − P̄_k.
//
// Cells whose existing load already exceeds P_max produce a row with a
// negative bound, which correctly forces m_j = 0 for every request that
// involves them.
func ForwardRegion(state ForwardState, requests []ForwardRequest) (Region, error) {
	if state.MaxLoad <= 0 || state.GammaS <= 0 {
		return Region{}, ErrBadInput
	}
	n := len(requests)
	// Collect the set of cells that appear in any request.
	cellSet := map[int]bool{}
	for _, r := range requests {
		if r.Alpha <= 0 {
			return Region{}, ErrBadInput
		}
		for k, p := range r.FCHPower {
			if k < 0 || k >= len(state.CurrentLoad) || p < 0 {
				return Region{}, ErrBadInput
			}
			cellSet[k] = true
		}
	}
	cells := make([]int, 0, len(cellSet))
	for k := range cellSet {
		cells = append(cells, k)
	}
	sort.Ints(cells)

	region := Region{Cells: cells}
	for _, k := range cells {
		row := make([]float64, n)
		for j, r := range requests {
			if p, ok := r.FCHPower[k]; ok {
				row[j] = state.GammaS * p * r.Alpha // a_{jk} of eq. (8)
			}
		}
		region.Coeff = append(region.Coeff, row)
		region.Bound = append(region.Bound, state.MaxLoad-state.CurrentLoad[k])
	}
	return region, nil
}
