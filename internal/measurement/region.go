package measurement

import "sort"

// Region is a linear admissible region  Coeff·m <= Bound  over the integer
// assignment vector m (one entry per request, in the order the requests were
// supplied). Rows with no involvement from any request are omitted.
type Region struct {
	Coeff [][]float64 // one row per binding resource (cell)
	Bound []float64
	Cells []int // which cell produced each row (useful for reporting)
}

// NumConstraints returns the number of rows in the region.
func (r Region) NumConstraints() int { return len(r.Coeff) }

// Feasible reports whether the integer assignment m satisfies the region.
func (r Region) Feasible(m []int) bool {
	for i, row := range r.Coeff {
		lhs := 0.0
		for j, a := range row {
			if j < len(m) {
				lhs += a * float64(m[j])
			}
		}
		if lhs > r.Bound[i]+1e-9 {
			return false
		}
	}
	return true
}

// Headroom returns, for each row, the remaining budget Bound - Coeff·m.
func (r Region) Headroom(m []int) []float64 {
	return r.HeadroomInto(nil, m)
}

// HeadroomInto is Headroom writing into dst, which is grown as needed and
// returned; the schedulers' steady-state loops use it to stay allocation
// free.
func (r Region) HeadroomInto(dst []float64, m []int) []float64 {
	if cap(dst) < len(r.Coeff) {
		dst = make([]float64, len(r.Coeff))
	}
	dst = dst[:len(r.Coeff)]
	for i, row := range r.Coeff {
		lhs := 0.0
		for j, a := range row {
			if j < len(m) {
				lhs += a * float64(m[j])
			}
		}
		dst[i] = r.Bound[i] - lhs
	}
	return dst
}

// Merge combines two regions over the same request vector into one (the
// scheduling sub-layer optimises forward and reverse link assignments
// independently, but tests and tools sometimes want the joint region).
func Merge(a, b Region) Region {
	out := Region{}
	out.Coeff = append(out.Coeff, a.Coeff...)
	out.Coeff = append(out.Coeff, b.Coeff...)
	out.Bound = append(out.Bound, a.Bound...)
	out.Bound = append(out.Bound, b.Bound...)
	out.Cells = append(out.Cells, a.Cells...)
	out.Cells = append(out.Cells, b.Cells...)
	return out
}

// RegionBuilder assembles admissible regions without allocating on the
// steady-state path: the per-cell row index, the constraint rows and the
// bounds all live in buffers that are reused from one frame to the next.
// The Region returned by Forward/Reverse shares the builder's storage and is
// valid until the next build on the same builder — exactly the lifetime the
// engine's admission loop needs (the region is consumed synchronously by the
// scheduler). Callers that retain regions should use the package-level
// ForwardRegion/ReverseRegion helpers instead, which build on a fresh
// builder every call.
type RegionBuilder struct {
	rowOf  []int // cell -> row index + 1 for the current build; 0 = absent
	cells  []int
	bounds []float64
	rows   [][]float64
	flat   []float64 // backing storage the rows are carved from
}

// begin resets the builder for a system of nCells cells, clearing the marks
// left by the previous build.
func (b *RegionBuilder) begin(nCells int) {
	for _, k := range b.cells {
		b.rowOf[k] = 0
	}
	if len(b.rowOf) < nCells {
		b.rowOf = append(b.rowOf, make([]int, nCells-len(b.rowOf))...)
	}
	b.cells = b.cells[:0]
	b.bounds = b.bounds[:0]
	b.rows = b.rows[:0]
}

// touch records that cell needs a constraint row. Cells must already be
// validated to lie in [0, nCells).
func (b *RegionBuilder) touch(cell int) {
	if b.rowOf[cell] == 0 {
		b.rowOf[cell] = 1 // placeholder; real row indices assigned in finishCells
		b.cells = append(b.cells, cell)
	}
}

// finishCells orders the touched cells, assigns their row indices and carves
// one zeroed row of width n per cell out of the flat buffer.
func (b *RegionBuilder) finishCells(n int) {
	sort.Ints(b.cells)
	need := len(b.cells) * n
	if cap(b.flat) < need {
		b.flat = make([]float64, need)
	} else {
		b.flat = b.flat[:need]
		for i := range b.flat {
			b.flat[i] = 0
		}
	}
	if cap(b.bounds) < len(b.cells) {
		b.bounds = make([]float64, len(b.cells))
	} else {
		b.bounds = b.bounds[:len(b.cells)]
	}
	for i, k := range b.cells {
		b.rowOf[k] = i + 1
		b.rows = append(b.rows, b.flat[i*n:(i+1)*n])
	}
}

// row returns the constraint row for a touched cell.
func (b *RegionBuilder) row(cell int) []float64 { return b.rows[b.rowOf[cell]-1] }

// region packages the built rows. The slices alias the builder's buffers.
func (b *RegionBuilder) region() Region {
	return Region{Coeff: b.rows, Bound: b.bounds, Cells: b.cells}
}
