package measurement

import (
	"math"
	"testing"

	"jabasd/internal/load"
	"jabasd/internal/rng"
)

// incrementalWorld is the randomized fixture for the incremental-vs-full
// differential property tests: a population of users whose measurements
// evolve over frames with request arrival/departure churn, driven through
// both the incremental cache and fresh full rebuilds.
type incrementalWorld struct {
	src    *rng.Source
	nCells int
	users  int

	fch  []load.Vec // per user, forward FCH ledger
	rev  []load.Vec // per user, reverse FCH received
	scrm []load.Vec
	host []int
	inQ  []bool
	ver  []uint64 // per-user measurement version, bumped on mutation

	loads []float64
}

func newIncrementalWorld(seed uint64, nCells, users int) *incrementalWorld {
	w := &incrementalWorld{
		src:    rng.New(seed),
		nCells: nCells,
		users:  users,
		fch:    make([]load.Vec, users),
		rev:    make([]load.Vec, users),
		scrm:   make([]load.Vec, users),
		host:   make([]int, users),
		inQ:    make([]bool, users),
		ver:    make([]uint64, users),
		loads:  make([]float64, nCells),
	}
	for u := 0; u < users; u++ {
		w.fch[u] = load.MakeVec(3)
		w.rev[u] = load.MakeVec(3)
		w.scrm[u] = load.MakeVec(SCRMMaxPilots)
		w.mutateUser(u)
	}
	for k := range w.loads {
		w.loads[k] = w.src.Uniform(1, 5)
	}
	return w
}

// mutateUser re-rolls user u's measurements: host cell, reduced set ledgers
// and SCRM pilots.
func (w *incrementalWorld) mutateUser(u int) {
	w.host[u] = w.src.Intn(w.nCells)
	second := (w.host[u] + 1 + w.src.Intn(w.nCells-1)) % w.nCells
	w.fch[u].Reset()
	w.fch[u].Set(w.host[u], w.src.Uniform(0.01, 1))
	w.fch[u].Set(second, w.src.Uniform(0.01, 1))
	w.rev[u].Reset()
	w.rev[u].Set(w.host[u], w.src.Uniform(0.001, 0.1))
	w.rev[u].Set(second, w.src.Uniform(0.001, 0.1))
	w.scrm[u].Reset()
	w.scrm[u].Set(w.host[u], w.src.Uniform(0.05, 0.5))
	for n := 0; n < 3; n++ {
		w.scrm[u].Set(w.src.Intn(w.nCells), w.src.Uniform(0.001, 0.1))
	}
	w.ver[u]++
}

// stepFrame applies one frame of churn: some users join/leave the queue,
// some users' measurements change, sometimes the ledger moves.
func (w *incrementalWorld) stepFrame() {
	for u := 0; u < w.users; u++ {
		r := w.src.Float64()
		switch {
		case r < 0.15:
			w.inQ[u] = !w.inQ[u] // arrival or departure
		case r < 0.35:
			w.mutateUser(u) // measurements changed
		}
	}
	if w.src.Float64() < 0.3 {
		k := w.src.Intn(w.nCells)
		w.loads[k] = w.src.Uniform(1, 5)
	}
}

// gather builds cell k's request lists (users whose host is k and queued).
func (w *incrementalWorld) gather(k int) (fwd []ForwardRequest, rev []ReverseRequest, vers []uint64) {
	for u := 0; u < w.users; u++ {
		if !w.inQ[u] || w.host[u] != k {
			continue
		}
		fwd = append(fwd, ForwardRequest{UserID: u, FCHPower: w.fch[u], Alpha: 1})
		rev = append(rev, ReverseRequest{
			UserID:       u,
			HostCell:     w.host[u],
			ReversePilot: w.rev[u],
			SCRM:         SCRM{Pilots: w.scrm[u]},
			Zeta:         4,
			Alpha:        1,
		})
		vers = append(vers, w.ver[u])
	}
	return
}

func regionsEqual(t *testing.T, frame, cell int, kind string, got, want Region) {
	t.Helper()
	if len(got.Coeff) != len(want.Coeff) || len(got.Bound) != len(want.Bound) || len(got.Cells) != len(want.Cells) {
		t.Fatalf("frame %d cell %d %s: shape (%d,%d,%d) != (%d,%d,%d)", frame, cell, kind,
			len(got.Coeff), len(got.Bound), len(got.Cells), len(want.Coeff), len(want.Bound), len(want.Cells))
	}
	for i := range want.Cells {
		if got.Cells[i] != want.Cells[i] {
			t.Fatalf("frame %d cell %d %s: row %d cell %d != %d", frame, cell, kind, i, got.Cells[i], want.Cells[i])
		}
		if got.Bound[i] != want.Bound[i] {
			t.Fatalf("frame %d cell %d %s: bound %d: %v != %v", frame, cell, kind, i, got.Bound[i], want.Bound[i])
		}
		for j := range want.Coeff[i] {
			if got.Coeff[i][j] != want.Coeff[i][j] {
				t.Fatalf("frame %d cell %d %s: coeff[%d][%d]: %v != %v", frame, cell, kind, i, j,
					got.Coeff[i][j], want.Coeff[i][j])
			}
		}
	}
}

// TestIncrementalMatchesFullRebuild is the property-style differential gate:
// over randomized frame sequences with request churn and measurement
// mutation, the incremental cache at epsilon 0 must produce regions
// identical to fresh full rebuilds, forward and reverse.
func TestIncrementalMatchesFullRebuild(t *testing.T) {
	const nCells, users, frames = 7, 30, 400
	w := newIncrementalWorld(123, nCells, users)
	ir := NewIncrementalRegions(nCells, 0)
	var incB, fullB RegionBuilder
	for f := 0; f < frames; f++ {
		w.stepFrame()
		for k := 0; k < nCells; k++ {
			fwd, _, vers := w.gather(k)
			if len(fwd) == 0 {
				continue
			}
			fstate := ForwardState{CurrentLoad: w.loads, MaxLoad: 20, GammaS: 1.25}
			got, _, err := ir.ForwardCell(k, &incB, fstate, fwd, vers)
			if err != nil {
				t.Fatalf("frame %d cell %d forward: %v", f, k, err)
			}
			want, err := fullB.Forward(fstate, fwd)
			if err != nil {
				t.Fatal(err)
			}
			regionsEqual(t, f, k, "forward", got, want)
		}
	}
	hits, misses := ir.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("degenerate run: hits=%d misses=%d (want both > 0)", hits, misses)
	}
}

// TestIncrementalReverseMatchesFullRebuild runs the same property for the
// reverse link, whose coefficients embed the ledger loads: load moves must
// force rebuilds at epsilon 0.
func TestIncrementalReverseMatchesFullRebuild(t *testing.T) {
	const nCells, users, frames = 7, 30, 400
	w := newIncrementalWorld(321, nCells, users)
	ir := NewIncrementalRegions(nCells, 0)
	var incB, fullB RegionBuilder
	for f := 0; f < frames; f++ {
		w.stepFrame()
		for k := 0; k < nCells; k++ {
			_, rev, vers := w.gather(k)
			if len(rev) == 0 {
				continue
			}
			rstate := ReverseState{TotalReceived: w.loads, MaxReceived: 10, GammaS: 1.25, ShadowMargin: 1.5}
			got, _, err := ir.ReverseCell(k, &incB, rstate, rev, vers)
			if err != nil {
				t.Fatalf("frame %d cell %d reverse: %v", f, k, err)
			}
			want, err := fullB.Reverse(rstate, rev)
			if err != nil {
				t.Fatal(err)
			}
			regionsEqual(t, f, k, "reverse", got, want)
		}
	}
	hits, misses := ir.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("degenerate run: hits=%d misses=%d (want both > 0)", hits, misses)
	}
}

// TestIncrementalForceFull checks the differential-test knob: with ForceFull
// every call is a miss.
func TestIncrementalForceFull(t *testing.T) {
	w := newIncrementalWorld(7, 5, 10)
	ir := NewIncrementalRegions(5, 0)
	ir.ForceFull = true
	var rb RegionBuilder
	for f := 0; f < 20; f++ {
		for k := 0; k < 5; k++ {
			fwd, _, vers := w.gather(k)
			if len(fwd) == 0 {
				continue
			}
			if _, reused, err := ir.ForwardCell(k, &rb, ForwardState{CurrentLoad: w.loads, MaxLoad: 20, GammaS: 1.25}, fwd, vers); err != nil {
				t.Fatal(err)
			} else if reused {
				t.Fatalf("ForceFull served a cached region")
			}
		}
	}
	if hits, _ := ir.Stats(); hits != 0 {
		t.Fatalf("ForceFull recorded %d hits", hits)
	}
}

// TestIncrementalEpsilonReuse checks the epsilon semantics on the reverse
// link: loads drifting within epsilon keep the cached rows (stale by at most
// epsilon) while the bounds still track the live ledger exactly.
func TestIncrementalEpsilonReuse(t *testing.T) {
	w := newIncrementalWorld(99, 5, 10)
	// Pin one queued user on cell 0 so the cache can hold.
	for u := range w.inQ {
		w.inQ[u] = false
	}
	w.inQ[0] = true
	w.host[0] = 0
	w.mutateUser(0)
	w.host[0] = 0
	w.fch[0].Reset()
	w.fch[0].Set(0, 0.5)
	w.rev[0].Reset()
	w.rev[0].Set(0, 0.01)
	w.scrm[0].Reset()
	w.scrm[0].Set(0, 0.2)

	ir := NewIncrementalRegions(5, 0.05)
	var rb RegionBuilder
	rstate := ReverseState{TotalReceived: w.loads, MaxReceived: 10, GammaS: 1.25, ShadowMargin: 1.5}
	_, rev, vers := w.gather(0)
	if _, reused, err := ir.ReverseCell(0, &rb, rstate, rev, vers); err != nil || reused {
		t.Fatalf("first build: reused=%v err=%v", reused, err)
	}
	// Drift the ledger by 1%: within epsilon, the rows are reused and the
	// bound reflects the new load exactly.
	w.loads[0] *= 1.01
	region, reused, err := ir.ReverseCell(0, &rb, rstate, rev, vers)
	if err != nil || !reused {
		t.Fatalf("within-epsilon drift: reused=%v err=%v", reused, err)
	}
	for i, k := range region.Cells {
		if want := rstate.MaxReceived - w.loads[k]; math.Abs(region.Bound[i]-want) > 0 {
			t.Fatalf("reused bound %d = %v, want exact %v", i, region.Bound[i], want)
		}
	}
	// A 50% move breaks epsilon and rebuilds.
	w.loads[0] *= 1.5
	if _, reused, err := ir.ReverseCell(0, &rb, rstate, rev, vers); err != nil || reused {
		t.Fatalf("beyond-epsilon drift: reused=%v err=%v", reused, err)
	}
}
