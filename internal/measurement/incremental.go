package measurement

// IncrementalRegions caches each cell's last-built admissible region so
// frames in which nothing affecting a cell's constraint rows changed reuse
// the cached rows instead of re-deriving them. A cached region is reused
// only when
//
//   - the cell gathers the same request users in the same order,
//   - every request's measurement version matches the version at build time
//     (the caller bumps a user's version whenever its measurements — gains,
//     and hence FCH ledgers and pilot reports — changed beyond the
//     configured epsilon, or its soft-handoff sets changed; versions are
//     monotonic, so a change is never forgotten even if the user spends
//     frames outside the request queue), and
//   - for the reverse link, every involved cell's ledger load matches the
//     load at build time within Epsilon (reverse coefficients embed the
//     loads; forward coefficients do not).
//
// Bounds are NOT cached: they are one subtraction per involved cell and
// depend on the live ledger, so they are recomputed from the current state
// on every reuse — a reused region is therefore exact in its bounds and
// epsilon-stale only in its coefficient rows. With a version discipline of
// "bump on any bitwise change" (the exact mode) reuse happens only when the
// inputs are bitwise unchanged, so the incremental path is output-identical
// to full rebuilds.
//
// Each cell's cache entry is touched only by the goroutine solving that
// cell, so the snapshot frame mode's workers can share one
// IncrementalRegions without synchronisation (cells are partitioned across
// workers per frame).
type IncrementalRegions struct {
	// Epsilon is the relative tolerance for the reverse-link load match; 0
	// requires bitwise equality. (Measurement drift is judged by the caller
	// when deciding whether to bump a user's version, against the same
	// epsilon by convention.)
	Epsilon float64
	// ForceFull disables reuse entirely — every call rebuilds. The
	// incremental-vs-full differential tests flip this.
	ForceFull bool

	cells []regionCache
}

// regionCache is one cell's cached region plus the inputs it was built from.
type regionCache struct {
	valid bool
	users []int    // request user IDs, gathered order
	vers  []uint64 // per-request measurement versions at build time
	// Deep copies of the built region (the builders' storage is reused
	// across cells, so the cache owns its own).
	cellIdx []int
	loads   []float64 // ledger values at the involved cells at build time
	rows    [][]float64
	flat    []float64
	bounds  []float64

	hits, misses uint64
}

// NewIncrementalRegions returns an incremental cache for nCells cells with
// the given reuse epsilon.
func NewIncrementalRegions(nCells int, epsilon float64) *IncrementalRegions {
	return &IncrementalRegions{Epsilon: epsilon, cells: make([]regionCache, nCells)}
}

// Stats sums the per-cell reuse counters: hits are frames a cached region
// was served, misses are full (re)builds.
func (ir *IncrementalRegions) Stats() (hits, misses uint64) {
	for i := range ir.cells {
		hits += ir.cells[i].hits
		misses += ir.cells[i].misses
	}
	return hits, misses
}

// Invalidate drops cell k's cache entry.
func (ir *IncrementalRegions) Invalidate(k int) { ir.cells[k].valid = false }

// reusable reports whether cell k's cache can serve the request set: same
// users in order, each at the same measurement version as at build time.
func (c *regionCache) reusable(userOf func(i int) (id int, ver uint64), n int) bool {
	if !c.valid || n != len(c.users) {
		return false
	}
	for i := 0; i < n; i++ {
		id, ver := userOf(i)
		if c.users[i] != id || c.vers[i] != ver {
			return false
		}
	}
	return true
}

// loadsMatch checks the involved cells' ledger values against the build-time
// snapshot within eps relative (eps = 0: bitwise).
func (c *regionCache) loadsMatch(current []float64, eps float64) bool {
	for i, k := range c.cellIdx {
		then, now := c.loads[i], current[k]
		diff := now - then
		if diff < 0 {
			diff = -diff
		}
		scale := then
		if scale < 0 {
			scale = -scale
		}
		if diff > eps*scale {
			return false
		}
	}
	return true
}

// store deep-copies the freshly built region and its inputs into the cache,
// reusing the cache's buffers so steady-state rebuilds stay allocation-free
// once the buffers have grown to their working size.
func (c *regionCache) store(userOf func(i int) (id int, ver uint64), n int, region Region, ledger []float64) {
	c.users = c.users[:0]
	c.vers = c.vers[:0]
	for i := 0; i < n; i++ {
		id, ver := userOf(i)
		c.users = append(c.users, id)
		c.vers = append(c.vers, ver)
	}
	c.cellIdx = append(c.cellIdx[:0], region.Cells...)
	c.bounds = append(c.bounds[:0], region.Bound...)
	c.loads = c.loads[:0]
	for _, k := range region.Cells {
		c.loads = append(c.loads, ledger[k])
	}
	need := len(region.Cells) * n
	if cap(c.flat) < need {
		c.flat = make([]float64, 0, need)
	}
	c.flat = c.flat[:0]
	c.rows = c.rows[:0]
	for _, row := range region.Coeff {
		c.flat = append(c.flat, row...)
	}
	for i := range region.Coeff {
		c.rows = append(c.rows, c.flat[i*n:(i+1)*n])
	}
	c.valid = true
}

// cached packages the cache entry as a Region with bounds refreshed from the
// live state: bound[i] = maxLoad - ledger[cellIdx[i]], the same formula the
// builders use.
func (c *regionCache) cached(maxLoad float64, ledger []float64) Region {
	for i, k := range c.cellIdx {
		c.bounds[i] = maxLoad - ledger[k]
	}
	return Region{Coeff: c.rows, Bound: c.bounds, Cells: c.cellIdx}
}

// ForwardCell returns cell k's forward-link admissible region, serving the
// cached rows when reusable (reported by the second return) and rebuilding
// through rb otherwise. vers[i] is requests[i]'s user's current measurement
// version. The returned region aliases either the cache or the builder and
// is valid until the next build touching the same storage.
func (ir *IncrementalRegions) ForwardCell(k int, rb *RegionBuilder, state ForwardState, requests []ForwardRequest, vers []uint64) (Region, bool, error) {
	c := &ir.cells[k]
	userOf := func(i int) (int, uint64) { return requests[i].UserID, vers[i] }
	if !ir.ForceFull && c.reusable(userOf, len(requests)) {
		c.hits++
		return c.cached(state.MaxLoad, state.CurrentLoad), true, nil
	}
	region, err := rb.Forward(state, requests)
	if err != nil {
		c.valid = false
		return Region{}, false, err
	}
	c.misses++
	c.store(userOf, len(requests), region, state.CurrentLoad)
	return region, false, nil
}

// ReverseCell is ForwardCell for the reverse link. Reuse additionally
// requires the involved cells' ledger loads to match the build-time values
// within Epsilon, because the reverse coefficients embed the loads.
func (ir *IncrementalRegions) ReverseCell(k int, rb *RegionBuilder, state ReverseState, requests []ReverseRequest, vers []uint64) (Region, bool, error) {
	c := &ir.cells[k]
	userOf := func(i int) (int, uint64) { return requests[i].UserID, vers[i] }
	if !ir.ForceFull && c.reusable(userOf, len(requests)) &&
		c.loadsMatch(state.TotalReceived, ir.Epsilon) {
		c.hits++
		return c.cached(state.MaxReceived, state.TotalReceived), true, nil
	}
	region, err := rb.Reverse(state, requests)
	if err != nil {
		c.valid = false
		return Region{}, false, err
	}
	c.misses++
	c.store(userOf, len(requests), region, state.TotalReceived)
	return region, false, nil
}
