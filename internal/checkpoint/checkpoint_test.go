package checkpoint_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"strings"
	"testing"

	. "jabasd/internal/checkpoint"
	"jabasd/internal/rng"
)

// encodeSample writes a two-section stream exercising every primitive.
func encodeSample(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section("alpha")
	w.U64(math.MaxUint64)
	w.I64(-42)
	w.Int(-7)
	w.F64(math.Pi)
	w.F64(math.Inf(-1))
	w.F64(math.NaN())
	w.Bool(true)
	w.Bool(false)
	w.Str("héllo")
	w.Bytes([]byte{0, 1, 2, 0xff})
	w.Section("beta")
	w.F64s([]float64{0x1p-1074, math.Copysign(0, -1), 2.5})
	w.Ints([]int{-1, 0, 1 << 40})
	w.I32s([]int32{-5, 5})
	w.U64s([]uint64{1, 2, 3})
	w.Bools([]bool{true, false, true})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func decodeSample(data []byte) error {
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return err
	}
	if err := r.Section("alpha"); err != nil {
		return err
	}
	r.U64()
	r.I64()
	r.Int()
	r.F64()
	r.F64()
	r.F64()
	r.Bool()
	r.Bool()
	r.Str()
	r.Bytes()
	if err := r.Section("beta"); err != nil {
		return err
	}
	r.F64s()
	r.Ints()
	var i32 [2]int32
	r.FillI32s(i32[:])
	r.U64s()
	var bs [3]bool
	r.FillBools(bs[:])
	if err := r.Close(); err != nil {
		return err
	}
	return r.Err()
}

func TestRoundTripAllPrimitives(t *testing.T) {
	data := encodeSample(t)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if err := r.Section("alpha"); err != nil {
		t.Fatalf("Section alpha: %v", err)
	}
	if got := r.U64(); got != math.MaxUint64 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != -7 {
		t.Errorf("Int = %d", got)
	}
	if got := r.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 inf = %v", got)
	}
	if got := math.Float64bits(r.F64()); got != math.Float64bits(math.NaN()) {
		t.Errorf("NaN bits = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := r.Str(); got != "héllo" {
		t.Errorf("Str = %q", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{0, 1, 2, 0xff}) {
		t.Errorf("Bytes = %v", got)
	}
	if err := r.Section("beta"); err != nil {
		t.Fatalf("Section beta: %v", err)
	}
	fs := r.F64s()
	if len(fs) != 3 || fs[0] != 0x1p-1074 || math.Float64bits(fs[1]) != math.Float64bits(math.Copysign(0, -1)) || fs[2] != 2.5 {
		t.Errorf("F64s = %v (negative-zero bits %#x)", fs, math.Float64bits(fs[1]))
	}
	is := r.Ints()
	if len(is) != 3 || is[0] != -1 || is[2] != 1<<40 {
		t.Errorf("Ints = %v", is)
	}
	var i32 [2]int32
	r.FillI32s(i32[:])
	if i32 != [2]int32{-5, 5} {
		t.Errorf("FillI32s = %v", i32)
	}
	us := r.U64s()
	if len(us) != 3 || us[2] != 3 {
		t.Errorf("U64s = %v", us)
	}
	var bs [3]bool
	r.FillBools(bs[:])
	if bs != [3]bool{true, false, true} {
		t.Errorf("FillBools = %v", bs)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestVersionBumpRefused(t *testing.T) {
	data := encodeSample(t)
	bumped := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(bumped[8:], Version+1)
	_, err := NewReader(bytes.NewReader(bumped))
	if err == nil {
		t.Fatal("bumped version accepted")
	}
	if !strings.Contains(err.Error(), "version") {
		t.Errorf("version error lacks detail: %v", err)
	}
}

func TestBadMagicRefused(t *testing.T) {
	data := encodeSample(t)
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if _, err := NewReader(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: got %v, want ErrCorrupt", err)
	}
}

// TestEveryTruncationErrors decodes every proper prefix of a valid stream:
// each must produce an error, never a panic or a silent success.
func TestEveryTruncationErrors(t *testing.T) {
	data := encodeSample(t)
	for n := 0; n < len(data); n++ {
		if err := decodeSample(data[:n]); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded without error", n, len(data))
		}
	}
	if err := decodeSample(data); err != nil {
		t.Fatalf("full stream failed: %v", err)
	}
}

// TestEveryByteFlipErrors flips each byte of a valid stream in turn (past
// the version field, which has its own test); CRC framing must catch every
// single-byte payload corruption and the frame fields must fail structurally.
func TestEveryByteFlipErrors(t *testing.T) {
	data := encodeSample(t)
	for i := 12; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x55
		if err := decodeSample(mut); err == nil {
			t.Fatalf("byte flip at offset %d decoded without error", i)
		}
	}
}

// TestRandomCorruptionNeverPanics hammers the decoder with random
// mutations — flips, truncations, insertions — asserting it always returns
// instead of panicking.
func TestRandomCorruptionNeverPanics(t *testing.T) {
	data := encodeSample(t)
	src := rng.New(99)
	for trial := 0; trial < 2000; trial++ {
		mut := append([]byte(nil), data...)
		switch src.Uint64() % 3 {
		case 0: // random flips
			for k := uint64(0); k <= src.Uint64()%4; k++ {
				mut[src.Uint64()%uint64(len(mut))] ^= byte(src.Uint64())
			}
		case 1: // truncate
			mut = mut[:src.Uint64()%uint64(len(mut))]
		case 2: // duplicate a chunk in the middle
			at := int(src.Uint64() % uint64(len(mut)))
			mut = append(mut[:at:at], append([]byte{byte(src.Uint64()), 0xEE}, mut[at:]...)...)
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("decoder panicked on corrupted input: %v", p)
				}
			}()
			decodeSample(mut)
		}()
	}
}

func TestSectionNameMismatch(t *testing.T) {
	data := encodeSample(t)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Section("gamma"); err == nil || !strings.Contains(err.Error(), `"alpha"`) {
		t.Fatalf("name mismatch error = %v", err)
	}
}

func TestUndecodedBytesDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section("s")
	w.U64(1)
	w.U64(2)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Section("s"); err != nil {
		t.Fatal(err)
	}
	r.U64() // leave one value unread
	if err := r.Close(); err == nil || !strings.Contains(err.Error(), "undecoded") {
		t.Fatalf("undecoded bytes not detected: %v", err)
	}
}

func TestFillLengthMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section("s")
	w.F64s([]float64{1, 2, 3})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Section("s"); err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 2)
	r.FillF64s(dst)
	if r.Err() == nil {
		t.Fatal("length mismatch not detected")
	}
}

func TestReadPastSectionEnd(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section("s")
	w.U64(7)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Section("s"); err != nil {
		t.Fatal(err)
	}
	r.U64()
	r.U64() // past the end
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("read past end: err = %v", r.Err())
	}
}
