// Package checkpoint is the versioned binary container the simulator's
// state-bearing packages serialize themselves through. A checkpoint is a
// fixed magic + format version header followed by named sections, each a
// length-prefixed payload protected by a CRC-32 checksum, closed by an end
// marker. The framing is deliberately dumb: every multi-byte value is
// little-endian, floats travel as their IEEE-754 bit patterns (so a decoded
// state is bit-identical to the encoded one, spares and all), and slices
// carry explicit element counts bounded by the section length.
//
// Writer and Reader are sticky-error: the first failure latches and every
// later call is a no-op, so state Encode/Decode methods chain primitive
// calls without per-call error checks and the caller inspects Err once per
// section. The Reader never panics on hostile input — truncated streams,
// flipped bytes and oversized counts all surface as errors, which the fuzz
// tests in this package and in internal/sim pin down.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Version is the checkpoint format version. Bump it whenever the section
// layout or any section's internal encoding changes incompatibly; readers
// refuse other versions with a precise error. Version 2 added the fault
// runtime state (load-event cursor, pending-retry marks) and the
// robustness counters to the sim engine's sections.
const Version = 2

// magic identifies a checkpoint stream. The trailing byte breaks accidental
// matches against text files.
var magic = [8]byte{'J', 'B', 'S', 'D', 'C', 'K', 'P', 0x1a}

// maxName bounds section names; real names are short identifiers.
const maxName = 255

// ErrCorrupt tags every structural decode failure (bad framing, checksum
// mismatch, truncation, oversized counts), so callers can distinguish a
// damaged file from an incompatible one with errors.Is.
var ErrCorrupt = errors.New("checkpoint: corrupt stream")

// endMarker terminates the section list (an impossible name length).
const endMarker = 0xFFFFFFFF

// Writer serializes a checkpoint stream section by section. Create one with
// NewWriter, open sections with Section, append values with the primitive
// methods and finish with Close. Errors are sticky; Close returns the first
// one.
type Writer struct {
	dst  io.Writer
	sect bytes.Buffer
	name string
	open bool
	err  error
}

// NewWriter starts a checkpoint stream on dst by writing the magic and
// format version.
func NewWriter(dst io.Writer) *Writer {
	w := &Writer{dst: dst}
	var hdr [12]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:], Version)
	if _, err := dst.Write(hdr[:]); err != nil {
		w.err = fmt.Errorf("checkpoint: write header: %w", err)
	}
	return w
}

// Section flushes any open section and begins a new one named name.
func (w *Writer) Section(name string) {
	if w.err != nil {
		return
	}
	if len(name) == 0 || len(name) > maxName {
		w.err = fmt.Errorf("checkpoint: invalid section name %q", name)
		return
	}
	w.flush()
	w.name = name
	w.open = true
	w.sect.Reset()
}

// flush writes the buffered section with its framing and checksum.
func (w *Writer) flush() {
	if w.err != nil || !w.open {
		return
	}
	payload := w.sect.Bytes()
	var pre [4]byte
	binary.LittleEndian.PutUint32(pre[:], uint32(len(w.name)))
	frame := make([]byte, 0, 4+len(w.name)+8+4)
	frame = append(frame, pre[:]...)
	frame = append(frame, w.name...)
	frame = binary.LittleEndian.AppendUint64(frame, uint64(len(payload)))
	if _, err := w.dst.Write(frame); err != nil {
		w.err = fmt.Errorf("checkpoint: write section %q: %w", w.name, err)
		return
	}
	if _, err := w.dst.Write(payload); err != nil {
		w.err = fmt.Errorf("checkpoint: write section %q: %w", w.name, err)
		return
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	if _, err := w.dst.Write(crc[:]); err != nil {
		w.err = fmt.Errorf("checkpoint: write section %q: %w", w.name, err)
		return
	}
	w.open = false
}

// Close flushes the last section and writes the end marker. It does not
// close the underlying writer.
func (w *Writer) Close() error {
	w.flush()
	if w.err != nil {
		return w.err
	}
	var end [4]byte
	binary.LittleEndian.PutUint32(end[:], endMarker)
	if _, err := w.dst.Write(end[:]); err != nil {
		w.err = fmt.Errorf("checkpoint: write end marker: %w", err)
	}
	return w.err
}

// Err returns the first error the writer hit, if any.
func (w *Writer) Err() error { return w.err }

// Fail latches an encoding error raised by a state Encode method (e.g. an
// impossible value it refuses to serialize).
func (w *Writer) Fail(format string, args ...any) {
	if w.err == nil {
		w.err = fmt.Errorf("checkpoint: "+format, args...)
	}
}

// U64 appends an unsigned 64-bit value.
func (w *Writer) U64(v uint64) {
	if w.err != nil {
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.sect.Write(b[:])
}

// I64 appends a signed 64-bit value.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int (as 64 bits, so the encoding is platform-independent).
func (w *Writer) Int(v int) { w.U64(uint64(int64(v))) }

// F64 appends a float64 as its IEEE-754 bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if w.err != nil {
		return
	}
	b := byte(0)
	if v {
		b = 1
	}
	w.sect.WriteByte(b)
}

// Str appends a count-prefixed UTF-8 string. (Named Str, not String, so the
// matching Reader getter does not accidentally implement fmt.Stringer.)
func (w *Writer) Str(s string) {
	w.count(len(s))
	if w.err != nil {
		return
	}
	w.sect.WriteString(s)
}

// Bytes appends a count-prefixed byte slice.
func (w *Writer) Bytes(b []byte) {
	w.count(len(b))
	if w.err != nil {
		return
	}
	w.sect.Write(b)
}

// count appends a slice element count.
func (w *Writer) count(n int) {
	if w.err != nil {
		return
	}
	if n < 0 || uint64(n) > math.MaxUint32 {
		w.err = fmt.Errorf("checkpoint: element count %d out of range", n)
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(n))
	w.sect.Write(b[:])
}

// F64s appends a count-prefixed float64 slice.
func (w *Writer) F64s(xs []float64) {
	w.count(len(xs))
	for _, x := range xs {
		w.F64(x)
	}
}

// Ints appends a count-prefixed int slice (64 bits per element).
func (w *Writer) Ints(xs []int) {
	w.count(len(xs))
	for _, x := range xs {
		w.Int(x)
	}
}

// I32s appends a count-prefixed int32 slice.
func (w *Writer) I32s(xs []int32) {
	w.count(len(xs))
	if w.err != nil {
		return
	}
	for _, x := range xs {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(x))
		w.sect.Write(b[:])
	}
}

// U64s appends a count-prefixed uint64 slice.
func (w *Writer) U64s(xs []uint64) {
	w.count(len(xs))
	for _, x := range xs {
		w.U64(x)
	}
}

// Bools appends a count-prefixed boolean slice (one byte per element).
func (w *Writer) Bools(xs []bool) {
	w.count(len(xs))
	for _, x := range xs {
		w.Bool(x)
	}
}

// Reader decodes a checkpoint stream written by Writer. Create one with
// NewReader (which validates the magic and version), advance with Section
// and read values with the primitive getters; every structural violation —
// wrong section name, checksum mismatch, reads past the section end,
// leftover bytes — latches an error retrievable with Err.
type Reader struct {
	src  io.Reader
	sect []byte
	name string
	pos  int
	done bool
	err  error
}

// NewReader opens a checkpoint stream, validating the magic and format
// version with precise errors.
func NewReader(src io.Reader) (*Reader, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(src, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if !bytes.Equal(hdr[:8], magic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q (not a checkpoint stream)", ErrCorrupt, hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != Version {
		return nil, fmt.Errorf("checkpoint: format version %d is not supported (this build reads version %d)", v, Version)
	}
	return &Reader{src: src}, nil
}

// Section advances to the next section, which must be named name. It errors
// if the previous section has undecoded bytes left — a mismatch between the
// encoder and decoder is corruption, not something to skip silently.
func (r *Reader) Section(name string) error {
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.sect) {
		r.err = fmt.Errorf("%w: section %q has %d undecoded bytes", ErrCorrupt, r.name, len(r.sect)-r.pos)
		return r.err
	}
	var pre [4]byte
	if _, err := io.ReadFull(r.src, pre[:]); err != nil {
		r.err = fmt.Errorf("%w: truncated before section %q: %v", ErrCorrupt, name, err)
		return r.err
	}
	nameLen := binary.LittleEndian.Uint32(pre[:])
	if nameLen == endMarker {
		r.err = fmt.Errorf("%w: stream ended before section %q", ErrCorrupt, name)
		return r.err
	}
	if nameLen == 0 || nameLen > maxName {
		r.err = fmt.Errorf("%w: section name length %d out of range", ErrCorrupt, nameLen)
		return r.err
	}
	buf := make([]byte, nameLen+8)
	if _, err := io.ReadFull(r.src, buf); err != nil {
		r.err = fmt.Errorf("%w: truncated section header: %v", ErrCorrupt, err)
		return r.err
	}
	got := string(buf[:nameLen])
	if got != name {
		r.err = fmt.Errorf("%w: section %q where %q was expected", ErrCorrupt, got, name)
		return r.err
	}
	payloadLen := binary.LittleEndian.Uint64(buf[nameLen:])
	// CopyN grows the buffer as data actually arrives, so a corrupted huge
	// length fails on truncation instead of attempting one giant allocation.
	var payload bytes.Buffer
	if _, err := io.CopyN(&payload, r.src, int64(payloadLen)); err != nil || payloadLen > math.MaxInt64 {
		r.err = fmt.Errorf("%w: truncated section %q payload: %v", ErrCorrupt, name, err)
		return r.err
	}
	var crc [4]byte
	if _, err := io.ReadFull(r.src, crc[:]); err != nil {
		r.err = fmt.Errorf("%w: truncated section %q checksum: %v", ErrCorrupt, name, err)
		return r.err
	}
	if want, gotCRC := binary.LittleEndian.Uint32(crc[:]), crc32.ChecksumIEEE(payload.Bytes()); want != gotCRC {
		r.err = fmt.Errorf("%w: section %q checksum mismatch", ErrCorrupt, name)
		return r.err
	}
	r.sect = payload.Bytes()
	r.name = name
	r.pos = 0
	return nil
}

// Close consumes the end marker, erroring if sections remain or the last
// section has undecoded bytes. It does not close the underlying reader.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.sect) {
		r.err = fmt.Errorf("%w: section %q has %d undecoded bytes", ErrCorrupt, r.name, len(r.sect)-r.pos)
		return r.err
	}
	var pre [4]byte
	if _, err := io.ReadFull(r.src, pre[:]); err != nil {
		r.err = fmt.Errorf("%w: truncated before end marker: %v", ErrCorrupt, err)
		return r.err
	}
	if binary.LittleEndian.Uint32(pre[:]) != endMarker {
		r.err = fmt.Errorf("%w: trailing sections after the last expected one", ErrCorrupt)
		return r.err
	}
	r.done = true
	return nil
}

// Err returns the first error the reader hit, if any.
func (r *Reader) Err() error { return r.err }

// Fail latches a semantic decode error raised by a state Decode method
// (e.g. a count that does not match the receiver's dimensions).
func (r *Reader) Fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("checkpoint: section %q: "+format, append([]any{r.name}, args...)...)
	}
}

// take returns the next n payload bytes, or latches a corruption error.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.sect)-r.pos {
		r.err = fmt.Errorf("%w: section %q: read past section end", ErrCorrupt, r.name)
		return nil
	}
	b := r.sect[r.pos : r.pos+n]
	r.pos += n
	return b
}

// U64 reads an unsigned 64-bit value.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a signed 64-bit value.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int written by Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads a float64 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a boolean byte; any value other than 0 or 1 is corruption.
func (r *Reader) Bool() bool {
	b := r.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		r.err = fmt.Errorf("%w: section %q: invalid boolean byte %d", ErrCorrupt, r.name, b[0])
		return false
	}
}

// Str reads a count-prefixed string.
func (r *Reader) Str() string {
	n := r.count(1)
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Bytes reads a count-prefixed byte slice (a copy of the payload bytes).
func (r *Reader) Bytes() []byte {
	n := r.count(1)
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// count reads a slice element count and verifies that count*elemSize bytes
// actually remain in the section, so a corrupted count cannot trigger a
// huge allocation or a partial decode.
func (r *Reader) count(elemSize int) int {
	b := r.take(4)
	if b == nil {
		return 0
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n*elemSize > len(r.sect)-r.pos {
		r.err = fmt.Errorf("%w: section %q: element count %d exceeds section size", ErrCorrupt, r.name, n)
		return 0
	}
	return n
}

// F64s reads a count-prefixed float64 slice into a new allocation.
func (r *Reader) F64s() []float64 {
	n := r.count(8)
	if r.err != nil {
		return nil
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.F64()
	}
	return xs
}

// FillF64s decodes a float64 slice into dst, which must have exactly the
// encoded length — state decoders use it to restore in place, preserving
// every alias into the destination array.
func (r *Reader) FillF64s(dst []float64) {
	n := r.count(8)
	if r.err != nil {
		return
	}
	if n != len(dst) {
		r.Fail("expected %d float64 elements, got %d", len(dst), n)
		return
	}
	for i := range dst {
		dst[i] = r.F64()
	}
}

// Ints reads a count-prefixed int slice into a new allocation.
func (r *Reader) Ints() []int {
	n := r.count(8)
	if r.err != nil {
		return nil
	}
	xs := make([]int, n)
	for i := range xs {
		xs[i] = r.Int()
	}
	return xs
}

// FillI32s decodes an int32 slice into dst, length-checked like FillF64s.
func (r *Reader) FillI32s(dst []int32) {
	n := r.count(4)
	if r.err != nil {
		return
	}
	if n != len(dst) {
		r.Fail("expected %d int32 elements, got %d", len(dst), n)
		return
	}
	for i := range dst {
		b := r.take(4)
		if b == nil {
			return
		}
		dst[i] = int32(binary.LittleEndian.Uint32(b))
	}
}

// U64s reads a count-prefixed uint64 slice into a new allocation.
func (r *Reader) U64s() []uint64 {
	n := r.count(8)
	if r.err != nil {
		return nil
	}
	xs := make([]uint64, n)
	for i := range xs {
		xs[i] = r.U64()
	}
	return xs
}

// FillBools decodes a boolean slice into dst, length-checked like FillF64s.
func (r *Reader) FillBools(dst []bool) {
	n := r.count(1)
	if r.err != nil {
		return
	}
	if n != len(dst) {
		r.Fail("expected %d boolean elements, got %d", len(dst), n)
		return
	}
	for i := range dst {
		dst[i] = r.Bool()
	}
}
