package traffic

import "jabasd/internal/checkpoint"

// EncodeState appends the voice source's mutable state: the on/off phase,
// its remaining duration and the draw stream. The mean durations are
// construction parameters, rebuilt from the scenario.
func (v *VoiceModel) EncodeState(w *checkpoint.Writer) {
	w.Bool(v.activityOn)
	w.F64(v.timeLeft)
	v.src.EncodeState(w)
}

// DecodeState restores the state written by EncodeState.
func (v *VoiceModel) DecodeState(rd *checkpoint.Reader) {
	v.activityOn = rd.Bool()
	v.timeLeft = rd.F64()
	v.src.DecodeState(rd)
}

// EncodeState appends the data source's mutable state: think phase, pending
// request (by value — the sharing with the engine's queues is re-established
// on restore), generation count, the one runtime-mutable config field
// (LoadStep rescales the mean reading time mid-run) and the draw stream.
func (d *DataModel) EncodeState(w *checkpoint.Writer) {
	w.Bool(d.thinking)
	w.F64(d.thinkLeft)
	w.I64(d.generated)
	w.F64(d.cfg.MeanReadingTimeSec)
	if d.pending != nil {
		w.Bool(true)
		w.F64(d.pending.SizeBits)
		w.F64(d.pending.ArrivalTime)
		w.F64(d.pending.Priority)
	} else {
		w.Bool(false)
	}
	d.src.EncodeState(w)
}

// DecodeState restores the state written by EncodeState. A present pending
// request is rebuilt as a fresh value carrying the model's own user id;
// Pending exposes it so the caller can re-link queue entries to it.
func (d *DataModel) DecodeState(rd *checkpoint.Reader) {
	d.thinking = rd.Bool()
	d.thinkLeft = rd.F64()
	d.generated = rd.I64()
	d.cfg.MeanReadingTimeSec = rd.F64()
	if rd.Bool() {
		d.pending = &BurstRequest{
			UserID:      d.userID,
			SizeBits:    rd.F64(),
			ArrivalTime: rd.F64(),
			Priority:    rd.F64(),
		}
	} else {
		d.pending = nil
	}
	d.src.DecodeState(rd)
}
