package traffic

import (
	"bytes"
	"math"
	"testing"

	"jabasd/internal/checkpoint"
	"jabasd/internal/rng"
)

// snapshot round-trips enc into dec through a one-section stream.
func snapshot(t *testing.T, enc func(*checkpoint.Writer), dec func(*checkpoint.Reader)) {
	t.Helper()
	var buf bytes.Buffer
	w := checkpoint.NewWriter(&buf)
	w.Section("traffic")
	enc(w)
	if err := w.Close(); err != nil {
		t.Fatalf("encode: %v", err)
	}
	r, err := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if err := r.Section("traffic"); err != nil {
		t.Fatal(err)
	}
	dec(r)
	if err := r.Close(); err != nil {
		t.Fatalf("decode: %v", err)
	}
}

// TestVoiceModelStateRoundTrip advances a voice source half-way, snapshots
// it and checks the restored copy reproduces the straight-through activity
// pattern exactly (the on/off phases ride the draw stream, so any state
// drift shows up within a few transitions).
func TestVoiceModelStateRoundTrip(t *testing.T) {
	orig := NewVoiceModel(rng.New(42), 1.0, 1.35)
	const dt = 0.02
	for i := 0; i < 500; i++ {
		orig.Advance(dt)
	}

	restored := NewVoiceModel(rng.New(7), 1.0, 1.35)
	snapshot(t, orig.EncodeState, restored.DecodeState)

	if orig.Active() != restored.Active() {
		t.Fatal("restored activity differs at the snapshot point")
	}
	for i := 0; i < 5000; i++ {
		a := orig.Advance(dt)
		b := restored.Advance(dt)
		if a != b || orig.Active() != restored.Active() {
			t.Fatalf("voice activity diverged at step %d", i)
		}
	}
}

// TestDataModelStateRoundTrip snapshots the browsing source in both of its
// phases — thinking (no pending request) and waiting on a pending burst —
// and checks the restored copy generates bit-identical future requests.
func TestDataModelStateRoundTrip(t *testing.T) {
	const dt = 0.02
	orig := NewDataModel(rng.New(1234), 17, DefaultDataModelConfig())
	now := 0.0
	// Advance until a request is outstanding, so the pending branch is
	// exercised first.
	for orig.Pending() == nil {
		orig.Advance(dt, now)
		now += dt
	}

	for phase := 0; phase < 2; phase++ {
		restored := NewDataModel(rng.New(999), 17, DefaultDataModelConfig())
		snapshot(t, orig.EncodeState, restored.DecodeState)

		if (orig.Pending() == nil) != (restored.Pending() == nil) {
			t.Fatalf("phase %d: pending presence diverged", phase)
		}
		if op, rp := orig.Pending(), restored.Pending(); op != nil {
			if rp.UserID != op.UserID ||
				math.Float64bits(rp.SizeBits) != math.Float64bits(op.SizeBits) ||
				math.Float64bits(rp.ArrivalTime) != math.Float64bits(op.ArrivalTime) ||
				math.Float64bits(rp.Priority) != math.Float64bits(op.Priority) {
				t.Fatalf("phase %d: pending request diverged: %+v vs %+v", phase, rp, op)
			}
		}
		if orig.Generated() != restored.Generated() {
			t.Fatalf("phase %d: generated count diverged", phase)
		}
		if orig.Pending() != nil {
			// Complete the outstanding burst so both sources go back to
			// thinking and the cycle loop below can make progress.
			orig.BurstDone()
			restored.BurstDone()
		}

		// Drive both sources through several burst cycles and compare every
		// emitted request bit for bit.
		bursts := 0
		for step := 0; bursts < 20 && step < 1_000_000; step++ {
			a := orig.Advance(dt, now)
			b := restored.Advance(dt, now)
			now += dt
			if (a == nil) != (b == nil) {
				t.Fatalf("phase %d: request emission diverged at t=%v", phase, now)
			}
			if a != nil {
				if math.Float64bits(a.SizeBits) != math.Float64bits(b.SizeBits) ||
					a.ArrivalTime != b.ArrivalTime || a.Priority != b.Priority {
					t.Fatalf("phase %d: emitted request diverged: %+v vs %+v", phase, b, a)
				}
				orig.BurstDone()
				restored.BurstDone()
				bursts++
			}
		}
		if bursts < 20 {
			t.Fatalf("phase %d: only %d bursts emitted", phase, bursts)
		}
		// Second pass snapshots while thinking (BurstDone just ran).
	}
}

// TestDataModelLoadStepSurvivesRoundTrip pins the one runtime-mutable config
// field: a stepped mean reading time must be part of the state.
func TestDataModelLoadStepSurvivesRoundTrip(t *testing.T) {
	orig := NewDataModel(rng.New(5), 3, DefaultDataModelConfig())
	orig.SetMeanReadingTime(2.5)
	restored := NewDataModel(rng.New(6), 3, DefaultDataModelConfig())
	snapshot(t, orig.EncodeState, restored.DecodeState)
	if restored.cfg.MeanReadingTimeSec != orig.cfg.MeanReadingTimeSec {
		t.Fatalf("mean reading time not restored: %v vs %v",
			restored.cfg.MeanReadingTimeSec, orig.cfg.MeanReadingTimeSec)
	}
}
