// Package traffic generates the offered load for the dynamic simulation:
// voice users with an on/off activity model (the background load whose
// statistical multiplexing CDMA handles natively) and packet data users that
// alternate between reading ("think") periods and heavy-tailed document
// downloads, the WWW browsing model used by the cdma2000 burst admission
// literature. Each data download becomes one burst request with a size Q_j
// (bits) handed to the burst admission layer.
package traffic

import (
	"math"

	"jabasd/internal/rng"
)

// VoiceModel is a two-state (talk spurt / silence) Markov on/off source.
type VoiceModel struct {
	src           *rng.Source
	activityOn    bool
	timeLeft      float64
	meanOnSec     float64
	meanOffSec    float64
	activityRatio float64
}

// NewVoiceModel creates a voice source with exponential talk spurts of mean
// meanOn seconds and silences of mean meanOff seconds (classic values: 1.0 s
// on, 1.35 s off, activity factor ≈ 0.42).
func NewVoiceModel(src *rng.Source, meanOn, meanOff float64) *VoiceModel {
	if meanOn <= 0 {
		meanOn = 1.0
	}
	if meanOff <= 0 {
		meanOff = 1.35
	}
	v := &VoiceModel{
		src:           src,
		meanOnSec:     meanOn,
		meanOffSec:    meanOff,
		activityRatio: meanOn / (meanOn + meanOff),
	}
	// Start in a random state according to the stationary distribution.
	v.activityOn = src.Bernoulli(v.activityRatio)
	v.scheduleNext()
	return v
}

func (v *VoiceModel) scheduleNext() {
	if v.activityOn {
		v.timeLeft = v.src.Exponential(v.meanOnSec)
	} else {
		v.timeLeft = v.src.Exponential(v.meanOffSec)
	}
}

// ActivityFactor returns the long-run fraction of time the source is on.
func (v *VoiceModel) ActivityFactor() float64 { return v.activityRatio }

// Active reports whether the source is currently in a talk spurt.
func (v *VoiceModel) Active() bool { return v.activityOn }

// Advance moves the source forward by dt seconds and returns whether the
// source is active at the end of the interval.
func (v *VoiceModel) Advance(dt float64) bool {
	for dt > 0 {
		if v.timeLeft > dt {
			v.timeLeft -= dt
			break
		}
		dt -= v.timeLeft
		v.activityOn = !v.activityOn
		v.scheduleNext()
	}
	return v.activityOn
}

// BurstRequest is one packet-data download that needs a supplemental channel
// burst assignment.
type BurstRequest struct {
	UserID      int
	SizeBits    float64 // Q_j
	ArrivalTime float64 // simulation time the request was issued
	Priority    float64 // Δ_j, the traffic-type priority in the objectives
}

// DataModelConfig parameterises the WWW browsing data source.
type DataModelConfig struct {
	MeanReadingTimeSec float64 // exponential think time between downloads
	ParetoAlpha        float64 // shape of the document size distribution
	MinSizeBits        float64 // minimum document size (Pareto x_m)
	MaxSizeBits        float64 // truncation cap
	Priority           float64 // Δ_j carried on every request from this user
}

// DefaultDataModelConfig returns a browsing profile with 12 s mean reading
// time and Pareto(1.2) documents from 16 kbit to 4 Mbit (mean ≈ 80 kbit).
func DefaultDataModelConfig() DataModelConfig {
	return DataModelConfig{
		MeanReadingTimeSec: 12,
		ParetoAlpha:        1.2,
		MinSizeBits:        16_000,
		MaxSizeBits:        4_000_000,
		Priority:           0,
	}
}

// DataModel is a packet data user: it thinks, then issues a burst request,
// and thinks again once the burst has been served (the caller signals
// completion with BurstDone).
type DataModel struct {
	cfg       DataModelConfig
	src       *rng.Source
	userID    int
	thinking  bool
	thinkLeft float64
	pending   *BurstRequest // issued but not yet completed
	generated int64
}

// NewDataModel creates a data source for the given user.
func NewDataModel(src *rng.Source, userID int, cfg DataModelConfig) *DataModel {
	if cfg.MeanReadingTimeSec <= 0 {
		cfg.MeanReadingTimeSec = DefaultDataModelConfig().MeanReadingTimeSec
	}
	if cfg.ParetoAlpha <= 0 {
		cfg.ParetoAlpha = DefaultDataModelConfig().ParetoAlpha
	}
	if cfg.MinSizeBits <= 0 {
		cfg.MinSizeBits = DefaultDataModelConfig().MinSizeBits
	}
	if cfg.MaxSizeBits < cfg.MinSizeBits {
		cfg.MaxSizeBits = cfg.MinSizeBits
	}
	d := &DataModel{cfg: cfg, src: src, userID: userID, thinking: true}
	d.thinkLeft = src.Exponential(cfg.MeanReadingTimeSec)
	return d
}

// UserID returns the owner of this source.
func (d *DataModel) UserID() int { return d.userID }

// Pending returns the outstanding burst request, or nil.
func (d *DataModel) Pending() *BurstRequest { return d.pending }

// Generated returns how many requests this source has issued.
func (d *DataModel) Generated() int64 { return d.generated }

// Advance moves the source forward by dt seconds ending at absolute time
// now. If a new burst request is issued during the interval it is returned,
// otherwise nil. While a request is pending (being served or queued) the
// source stays idle.
func (d *DataModel) Advance(dt float64, now float64) *BurstRequest {
	if d.pending != nil {
		return nil
	}
	if !d.thinking {
		return nil
	}
	if d.thinkLeft > dt {
		d.thinkLeft -= dt
		return nil
	}
	// Think time expired during the interval: issue a download.
	d.thinking = false
	size := d.src.BoundedPareto(d.cfg.ParetoAlpha, d.cfg.MinSizeBits, d.cfg.MaxSizeBits)
	req := &BurstRequest{
		UserID:      d.userID,
		SizeBits:    size,
		ArrivalTime: now,
		Priority:    d.cfg.Priority,
	}
	d.pending = req
	d.generated++
	return req
}

// SetMeanReadingTime changes the mean reading (think) time used for every
// future reading period — a mid-run offered-load step (sim.LoadStep). If
// the source is currently reading, the remaining think time is rescaled
// proportionally so the step changes the offered load immediately instead
// of one full think-time later; because the exponential distribution is
// closed under scaling, the rescaled remainder is statistically exactly a
// fresh draw at the new mean. Non-positive values are ignored.
func (d *DataModel) SetMeanReadingTime(sec float64) {
	if sec <= 0 || sec == d.cfg.MeanReadingTimeSec {
		return
	}
	if d.thinking && d.cfg.MeanReadingTimeSec > 0 {
		d.thinkLeft *= sec / d.cfg.MeanReadingTimeSec
	}
	d.cfg.MeanReadingTimeSec = sec
}

// BurstDone tells the source its outstanding request has been fully served;
// it returns to the reading state.
func (d *DataModel) BurstDone() {
	d.pending = nil
	d.thinking = true
	d.thinkLeft = d.src.Exponential(d.cfg.MeanReadingTimeSec)
}

// MeanDocumentBits returns the analytic mean of the (untruncated) Pareto
// document size, or the cap when the shape is <= 1 (infinite mean).
func (d *DataModel) MeanDocumentBits() float64 {
	a := d.cfg.ParetoAlpha
	if a <= 1 {
		return d.cfg.MaxSizeBits
	}
	return math.Min(a*d.cfg.MinSizeBits/(a-1), d.cfg.MaxSizeBits)
}
