package traffic

import (
	"math"
	"testing"

	"jabasd/internal/rng"
)

func TestVoiceActivityFactor(t *testing.T) {
	src := rng.New(1)
	v := NewVoiceModel(src, 1.0, 1.35)
	want := 1.0 / 2.35
	if math.Abs(v.ActivityFactor()-want) > 1e-12 {
		t.Errorf("ActivityFactor = %v, want %v", v.ActivityFactor(), want)
	}
	// Long-run fraction of active time should approach the activity factor.
	active := 0
	n := 200000
	for i := 0; i < n; i++ {
		if v.Advance(0.05) {
			active++
		}
	}
	frac := float64(active) / float64(n)
	if math.Abs(frac-want) > 0.03 {
		t.Errorf("observed activity %v, want ~%v", frac, want)
	}
}

func TestVoiceDefaults(t *testing.T) {
	v := NewVoiceModel(rng.New(2), 0, -1)
	if v.meanOnSec != 1.0 || v.meanOffSec != 1.35 {
		t.Errorf("defaults not applied: %v %v", v.meanOnSec, v.meanOffSec)
	}
}

func TestVoiceTogglesState(t *testing.T) {
	v := NewVoiceModel(rng.New(3), 0.5, 0.5)
	first := v.Active()
	toggled := false
	for i := 0; i < 1000; i++ {
		v.Advance(0.1)
		if v.Active() != first {
			toggled = true
			break
		}
	}
	if !toggled {
		t.Error("voice source never changed state")
	}
}

func TestDataModelIssuesRequests(t *testing.T) {
	src := rng.New(4)
	d := NewDataModel(src, 7, DefaultDataModelConfig())
	var req *BurstRequest
	now := 0.0
	for i := 0; i < 100000 && req == nil; i++ {
		now += 0.02
		req = d.Advance(0.02, now)
	}
	if req == nil {
		t.Fatal("data source never issued a request")
	}
	if req.UserID != 7 {
		t.Errorf("UserID = %d", req.UserID)
	}
	if req.SizeBits < 16_000 || req.SizeBits > 4_000_000 {
		t.Errorf("SizeBits = %v out of configured range", req.SizeBits)
	}
	if req.ArrivalTime != now {
		t.Errorf("ArrivalTime = %v, want %v", req.ArrivalTime, now)
	}
	if d.Pending() != req {
		t.Error("Pending should return the outstanding request")
	}
	if d.Generated() != 1 {
		t.Errorf("Generated = %d", d.Generated())
	}
	// While pending, no new requests are issued.
	for i := 0; i < 1000; i++ {
		now += 0.02
		if d.Advance(0.02, now) != nil {
			t.Fatal("source issued a request while one is pending")
		}
	}
	// After completion the source thinks again and eventually issues another.
	d.BurstDone()
	if d.Pending() != nil {
		t.Error("Pending should be nil after BurstDone")
	}
	var second *BurstRequest
	for i := 0; i < 100000 && second == nil; i++ {
		now += 0.02
		second = d.Advance(0.02, now)
	}
	if second == nil {
		t.Fatal("no second request after BurstDone")
	}
}

func TestDataModelInterRequestTime(t *testing.T) {
	// With instantaneous service the mean time between requests should be
	// close to the mean reading time.
	cfg := DefaultDataModelConfig()
	cfg.MeanReadingTimeSec = 5
	src := rng.New(5)
	d := NewDataModel(src, 0, cfg)
	now := 0.0
	last := 0.0
	var gaps []float64
	for len(gaps) < 2000 {
		now += 0.05
		if req := d.Advance(0.05, now); req != nil {
			gaps = append(gaps, now-last)
			last = now
			d.BurstDone()
		}
	}
	mean := 0.0
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	if math.Abs(mean-5) > 0.5 {
		t.Errorf("mean inter-request time = %v, want ~5", mean)
	}
}

func TestDataModelDefaults(t *testing.T) {
	d := NewDataModel(rng.New(6), 0, DataModelConfig{})
	def := DefaultDataModelConfig()
	if d.cfg.MeanReadingTimeSec != def.MeanReadingTimeSec ||
		d.cfg.ParetoAlpha != def.ParetoAlpha ||
		d.cfg.MinSizeBits != def.MinSizeBits {
		t.Errorf("defaults not applied: %+v", d.cfg)
	}
	if d.cfg.MaxSizeBits != d.cfg.MinSizeBits {
		t.Errorf("MaxSizeBits should clamp to MinSizeBits when smaller")
	}
}

func TestMeanDocumentBits(t *testing.T) {
	cfg := DefaultDataModelConfig()
	cfg.ParetoAlpha = 2
	cfg.MinSizeBits = 100
	cfg.MaxSizeBits = 1e9
	d := NewDataModel(rng.New(7), 0, cfg)
	if got := d.MeanDocumentBits(); math.Abs(got-200) > 1e-9 {
		t.Errorf("MeanDocumentBits = %v, want 200", got)
	}
	cfg.ParetoAlpha = 0.9
	cfg.MaxSizeBits = 5000
	d2 := NewDataModel(rng.New(8), 0, cfg)
	if got := d2.MeanDocumentBits(); got != 5000 {
		t.Errorf("heavy-tail mean should be capped, got %v", got)
	}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue()
	if q.Peek() != nil || q.Len() != 0 {
		t.Error("empty queue should have nil Peek and zero Len")
	}
	r1 := &BurstRequest{UserID: 1, ArrivalTime: 1}
	r2 := &BurstRequest{UserID: 2, ArrivalTime: 2}
	r3 := &BurstRequest{UserID: 3, ArrivalTime: 3}
	q.Push(r1)
	q.Push(r2)
	q.Push(r3)
	if q.Len() != 3 {
		t.Errorf("Len = %d", q.Len())
	}
	if q.Peek() != r1 {
		t.Error("Peek should return oldest")
	}
	items := q.Items()
	if items[0] != r1 || items[1] != r2 || items[2] != r3 {
		t.Error("Items not in arrival order")
	}
	if !q.Remove(r2) {
		t.Error("Remove existing returned false")
	}
	if q.Remove(r2) {
		t.Error("Remove twice returned true")
	}
	if q.Len() != 2 || q.Items()[1] != r3 {
		t.Error("queue after removal wrong")
	}
}

func TestQueueOutOfOrderInsertSorts(t *testing.T) {
	q := NewQueue()
	r2 := &BurstRequest{UserID: 2, ArrivalTime: 5}
	r1 := &BurstRequest{UserID: 1, ArrivalTime: 1}
	q.Push(r2)
	q.Push(r1)
	if q.Peek() != r1 {
		t.Error("queue should re-sort on out-of-order insert")
	}
}

func TestQueueWaitingTimes(t *testing.T) {
	q := NewQueue()
	q.Push(&BurstRequest{ArrivalTime: 1})
	q.Push(&BurstRequest{ArrivalTime: 4})
	w := q.WaitingTimes(10)
	if len(w) != 2 || w[0] != 9 || w[1] != 6 {
		t.Errorf("WaitingTimes = %v", w)
	}
}
