package traffic

import "sort"

// Queue holds the burst requests waiting for admission in one cell, ordered
// by arrival time (FIFO). The scheduling sub-layer reads the whole queue
// each frame; FCFS baselines serve it strictly in order.
type Queue struct {
	items []*BurstRequest
}

// NewQueue returns an empty queue.
func NewQueue() *Queue { return &Queue{} }

// Push appends a request, keeping arrival-time order.
func (q *Queue) Push(r *BurstRequest) {
	q.items = append(q.items, r)
	// Requests arrive in time order in the simulator, but keep the invariant
	// robust for out-of-order insertion in tests.
	if n := len(q.items); n > 1 && q.items[n-1].ArrivalTime < q.items[n-2].ArrivalTime {
		sort.SliceStable(q.items, func(i, j int) bool {
			return q.items[i].ArrivalTime < q.items[j].ArrivalTime
		})
	}
}

// Len returns the number of waiting requests.
func (q *Queue) Len() int { return len(q.items) }

// Items returns the waiting requests in arrival order. The returned slice is
// the queue's backing store and must not be modified; use Remove to take
// requests out.
func (q *Queue) Items() []*BurstRequest { return q.items }

// Peek returns the oldest request or nil.
func (q *Queue) Peek() *BurstRequest {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

// Remove deletes the given request (by pointer identity) from the queue and
// reports whether it was present.
func (q *Queue) Remove(r *BurstRequest) bool {
	for i, it := range q.items {
		if it == r {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return true
		}
	}
	return false
}

// WaitingTimes returns the waiting time of every queued request at time now.
func (q *Queue) WaitingTimes(now float64) []float64 {
	out := make([]float64, len(q.items))
	for i, it := range q.items {
		out[i] = now - it.ArrivalTime
	}
	return out
}
