package core

import (
	"testing"

	"jabasd/internal/mac"
	"jabasd/internal/measurement"
	"jabasd/internal/race"
	"jabasd/internal/rng"
)

// allocProblem builds an engine-shaped admission problem: several requests,
// multiple binding cells and an attached MAC configuration (the engine always
// passes one), so the gate exercises the same paths as the frame loop.
func allocProblem(nd, cells int, seed uint64) Problem {
	src := rng.New(seed)
	macCfg := mac.DefaultConfig()
	reqs := make([]Request, nd)
	coeff := make([][]float64, cells)
	bound := make([]float64, cells)
	cellIdx := make([]int, cells)
	for i := 0; i < cells; i++ {
		coeff[i] = make([]float64, nd)
		bound[i] = src.Uniform(5, 15)
		cellIdx[i] = i
	}
	for j := 0; j < nd; j++ {
		reqs[j] = Request{
			UserID:        j,
			SizeBits:      src.Uniform(1e5, 2e6),
			WaitingTime:   src.Uniform(0, 12),
			AvgThroughput: src.Uniform(0.05, 1),
			MaxRatio:      16,
		}
		coeff[src.Intn(cells)][j] = src.Uniform(0.1, 1)
		coeff[src.Intn(cells)][j] = src.Uniform(0.1, 1)
	}
	return Problem{
		Requests:  reqs,
		Region:    measurement.Region{Coeff: coeff, Bound: bound, Cells: cellIdx},
		MaxRatio:  16,
		Objective: DefaultObjective(),
		MAC:       &macCfg,
	}
}

// TestJABASDScheduleAllocs is the allocation-regression gate for the exact
// scheduler: with the owned ilp.Solver and scratch warm, the only permitted
// steady-state allocation is the returned Ratios slice (the assignment must
// outlive the scheduler's buffers). Runs in CI via `go test ./...`.
func TestJABASDScheduleAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	p := allocProblem(8, 3, 12345)
	s := NewJABASD()
	s.GreedyFallbackSize = 0 // force the exact branch-and-bound path
	schedule := func() {
		if _, err := s.Schedule(p); err != nil {
			t.Fatal(err)
		}
	}
	schedule() // grow solver arenas and scratch to the high-water mark
	if allocs := testing.AllocsPerRun(50, schedule); allocs > 1 {
		t.Errorf("JABASD.Schedule allocates %v times per frame in the steady state, want <= 1 (the returned Ratios)", allocs)
	}
}

// TestGreedyJABASDScheduleAllocs gates the greedy fallback the same way —
// it carries the heavy-load scenarios, so its allocation budget matters as
// much as the exact path's.
func TestGreedyJABASDScheduleAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	p := allocProblem(20, 4, 999)
	s := &GreedyJABASD{}
	schedule := func() {
		if _, err := s.Schedule(p); err != nil {
			t.Fatal(err)
		}
	}
	schedule()
	if allocs := testing.AllocsPerRun(50, schedule); allocs > 1 {
		t.Errorf("GreedyJABASD.Schedule allocates %v times per frame in the steady state, want <= 1 (the returned Ratios)", allocs)
	}
}
