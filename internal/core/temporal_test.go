package core

import (
	"testing"

	"jabasd/internal/measurement"
	"jabasd/internal/vtaoc"
)

func rateModel() func(int, float64) float64 {
	plan := vtaoc.DefaultRatePlan()
	return func(m int, bp float64) float64 { return plan.SCHBitRate(m, bp) }
}

func TestTemporalPlannerRequiresRateModel(t *testing.T) {
	tp := &TemporalPlanner{}
	if _, err := tp.Plan(smallProblem(ObjectiveThroughput)); err != ErrNoRateModel {
		t.Errorf("expected ErrNoRateModel, got %v", err)
	}
}

func TestTemporalPlannerRejectsInvalidProblem(t *testing.T) {
	tp := &TemporalPlanner{RateForRatio: rateModel()}
	bad := smallProblem(ObjectiveThroughput)
	bad.MaxRatio = 0
	if _, err := tp.Plan(bad); err == nil {
		t.Error("expected validation error")
	}
}

func TestTemporalPlannerAllFitNow(t *testing.T) {
	// Plenty of headroom: everything starts at offset zero, nothing deferred.
	region := measurement.Region{Coeff: [][]float64{{0.1, 0.1}}, Bound: []float64{100}, Cells: []int{0}}
	p := Problem{
		Requests: []Request{
			{UserID: 0, SizeBits: 1e5, AvgThroughput: 0.5, MaxRatio: 8},
			{UserID: 1, SizeBits: 2e5, AvgThroughput: 0.5, MaxRatio: 8},
		},
		Region:    region,
		MaxRatio:  8,
		Objective: Objective{Kind: ObjectiveThroughput},
	}
	tp := &TemporalPlanner{RateForRatio: rateModel()}
	plan, err := tp.Plan(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Now) != 2 || len(plan.Deferred) != 0 {
		t.Fatalf("plan = now %d deferred %d, want 2/0", len(plan.Now), len(plan.Deferred))
	}
	if plan.MaxStartOffset() != 0 {
		t.Errorf("MaxStartOffset = %v", plan.MaxStartOffset())
	}
	for _, b := range plan.Now {
		if b.Duration <= 0 {
			t.Errorf("planned duration must be positive, got %v", b.Duration)
		}
	}
}

func TestTemporalPlannerDefersWhenFull(t *testing.T) {
	// Two identical requests but the cell can only hold one at full ratio:
	// the second must be deferred to roughly the first one's finish time.
	region := measurement.Region{Coeff: [][]float64{{1, 1}}, Bound: []float64{4}, Cells: []int{0}}
	p := Problem{
		Requests: []Request{
			{UserID: 0, SizeBits: 5e5, WaitingTime: 3, AvgThroughput: 0.5, MaxRatio: 4},
			{UserID: 1, SizeBits: 5e5, WaitingTime: 0, AvgThroughput: 0.5, MaxRatio: 4},
		},
		Region:    region,
		MaxRatio:  4,
		Objective: Objective{Kind: ObjectiveThroughput},
	}
	tp := &TemporalPlanner{RateForRatio: rateModel(), Horizon: 1000}
	plan, err := tp.Plan(p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalPlanned() != 2 {
		t.Fatalf("planned %d of 2 requests", plan.TotalPlanned())
	}
	if len(plan.Now) != 1 || len(plan.Deferred) != 1 {
		t.Fatalf("plan = now %d deferred %d, want 1/1", len(plan.Now), len(plan.Deferred))
	}
	first := plan.Now[0]
	second := plan.Deferred[0]
	if second.StartOffset <= 0 {
		t.Error("deferred burst should start strictly later")
	}
	if second.StartOffset < first.Duration-1e-9 {
		t.Errorf("deferred start %v should not precede the first burst's finish %v",
			second.StartOffset, first.Duration)
	}
	if plan.MaxStartOffset() != second.StartOffset {
		t.Error("MaxStartOffset inconsistent")
	}
}

func TestTemporalPlannerHorizonBounds(t *testing.T) {
	// With a horizon shorter than the first burst, the second request cannot
	// be planned at all.
	region := measurement.Region{Coeff: [][]float64{{1, 1}}, Bound: []float64{4}, Cells: []int{0}}
	p := Problem{
		Requests: []Request{
			{UserID: 0, SizeBits: 5e6, AvgThroughput: 0.25, MaxRatio: 4},
			{UserID: 1, SizeBits: 5e6, AvgThroughput: 0.25, MaxRatio: 4},
		},
		Region:    region,
		MaxRatio:  4,
		Objective: Objective{Kind: ObjectiveThroughput},
	}
	tp := &TemporalPlanner{RateForRatio: rateModel(), Horizon: 0.5}
	plan, err := tp.Plan(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Now) != 1 {
		t.Fatalf("expected exactly one immediate burst, got %d", len(plan.Now))
	}
	if len(plan.Deferred) != 0 {
		t.Errorf("deferred bursts beyond the horizon should not be planned: %+v", plan.Deferred)
	}
}

func TestTemporalPlannerZeroCapacity(t *testing.T) {
	// No headroom at all: nothing can ever be planned; the planner must
	// terminate and return an empty plan.
	region := measurement.Region{Coeff: [][]float64{{1}}, Bound: []float64{0.5}, Cells: []int{0}}
	p := Problem{
		Requests:  []Request{{UserID: 0, SizeBits: 1e6, AvgThroughput: 0.5, MaxRatio: 4}},
		Region:    region,
		MaxRatio:  4,
		Objective: Objective{Kind: ObjectiveThroughput},
	}
	tp := &TemporalPlanner{RateForRatio: rateModel(), Horizon: 10, MaxSteps: 5}
	plan, err := tp.Plan(p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalPlanned() != 0 {
		t.Errorf("expected empty plan, got %+v", plan)
	}
}

func TestTemporalPlannerDefaultSpatialScheduler(t *testing.T) {
	region := measurement.Region{Coeff: [][]float64{{1}}, Bound: []float64{10}, Cells: []int{0}}
	p := Problem{
		Requests:  []Request{{UserID: 0, SizeBits: 1e5, AvgThroughput: 0.5, MaxRatio: 4}},
		Region:    region,
		MaxRatio:  4,
		Objective: Objective{Kind: ObjectiveThroughput},
	}
	tp := &TemporalPlanner{RateForRatio: rateModel()} // Spatial nil => JABA-SD
	plan, err := tp.Plan(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Now) != 1 || plan.Now[0].Ratio != 4 {
		t.Errorf("default spatial scheduler should grant the full ratio: %+v", plan.Now)
	}
}
