package core

import (
	"reflect"
	"testing"

	"jabasd/internal/measurement"
)

// fallbackProblem builds an admission problem contrived enough that the
// exact branch-and-bound needs more than one node.
func fallbackProblem() Problem {
	reqs := []Request{
		{UserID: 0, SizeBits: 8e5, WaitingTime: 0.1, AvgThroughput: 1.4e5, MaxRatio: 7},
		{UserID: 1, SizeBits: 6e5, WaitingTime: 0.4, AvgThroughput: 1.1e5, MaxRatio: 7},
		{UserID: 2, SizeBits: 9e5, WaitingTime: 0.2, AvgThroughput: 0.9e5, MaxRatio: 7},
		{UserID: 3, SizeBits: 3e5, WaitingTime: 0.8, AvgThroughput: 1.6e5, MaxRatio: 7},
	}
	region := measurement.Region{
		Coeff: [][]float64{
			{1.7, 2.3, 1.1, 2.9},
			{2.2, 1.3, 2.7, 1.2},
		},
		Bound: []float64{11.5, 10.3},
		Cells: []int{0, 1},
	}
	return Problem{
		Requests:  reqs,
		Region:    region,
		MaxRatio:  8,
		Objective: DefaultObjective(),
	}
}

// TestJABASDNodeBudgetFallback pins the exact→greedy degradation: a budget
// of one node forces the greedy fallback, the assignment is flagged, equals
// the greedy scheduler's own output, and the whole path is deterministic.
func TestJABASDNodeBudgetFallback(t *testing.T) {
	p := fallbackProblem()

	exact := NewJABASD()
	ref, err := exact.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Fallback {
		t.Fatal("unbudgeted solve must not report a fallback")
	}

	budgeted := NewJABASD()
	budgeted.NodeBudget = 1
	got, err := budgeted.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Fallback {
		t.Fatalf("budget 1 must degrade to greedy (exact solve took multiple nodes); got %+v", got)
	}
	if got.Scheduler != exact.Name() {
		t.Fatalf("fallback assignment reports scheduler %q, want %q", got.Scheduler, exact.Name())
	}

	var greedy GreedyJABASD
	want, err := greedy.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Ratios, want.Ratios) {
		t.Fatalf("fallback ratios %v differ from greedy's %v", got.Ratios, want.Ratios)
	}

	again, err := budgeted.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Ratios, again.Ratios) || !again.Fallback {
		t.Fatalf("budgeted schedule not deterministic: %v vs %v", got.Ratios, again.Ratios)
	}

	// A generous budget must reproduce the exact result, unflagged.
	roomy := NewJABASD()
	roomy.NodeBudget = 1 << 20
	res, err := roomy.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallback || !reflect.DeepEqual(res.Ratios, ref.Ratios) {
		t.Fatalf("roomy budget changed the result: %+v vs %+v", res, ref)
	}
}

// TestJABASDCloneCarriesNodeBudget keeps the snapshot frame mode honest:
// per-worker clones must degrade at exactly the same budget as the original
// or outputs would depend on which cells run through clones.
func TestJABASDCloneCarriesNodeBudget(t *testing.T) {
	s := NewJABASD()
	s.NodeBudget = 123
	c, ok := s.Clone().(*JABASD)
	if !ok {
		t.Fatalf("Clone returned %T", s.Clone())
	}
	if c.NodeBudget != 123 || c.GreedyFallbackSize != s.GreedyFallbackSize {
		t.Fatalf("clone dropped configuration: %+v", c)
	}
}
