package core

import (
	"math"
	"testing"
	"testing/quick"

	"jabasd/internal/mac"
	"jabasd/internal/measurement"
	"jabasd/internal/rng"
)

// smallProblem builds a 3-request, single-cell forward-link problem with a
// known optimum.
func smallProblem(kind ObjectiveKind) Problem {
	// Cell headroom 10 units; request costs per unit m: 2, 3, 5.
	region := measurement.Region{
		Coeff: [][]float64{{2, 3, 5}},
		Bound: []float64{10},
		Cells: []int{0},
	}
	obj := Objective{Kind: kind, Lambda: 0.05, RateScale: 16}
	return Problem{
		Requests: []Request{
			{UserID: 1, SizeBits: 1e6, WaitingTime: 0.5, AvgThroughput: 0.5, MaxRatio: 8},
			{UserID: 2, SizeBits: 1e6, WaitingTime: 4.0, AvgThroughput: 0.25, MaxRatio: 8},
			{UserID: 3, SizeBits: 1e6, WaitingTime: 12.0, AvgThroughput: 1.0, MaxRatio: 8},
		},
		Region:    region,
		MaxRatio:  8,
		Objective: obj,
	}
}

func TestRequestOverallDelay(t *testing.T) {
	r := Request{WaitingTime: 3, SetupDelay: 0.5}
	if r.OverallDelay() != 3.5 {
		t.Errorf("OverallDelay = %v", r.OverallDelay())
	}
}

func TestObjectiveKindString(t *testing.T) {
	if ObjectiveThroughput.String() != "J1-throughput" ||
		ObjectiveDelayAware.String() != "J2-delay-aware" ||
		ObjectiveKind(7).String() == "" {
		t.Error("ObjectiveKind.String broken")
	}
}

func TestObjectiveValidate(t *testing.T) {
	if (Objective{Kind: ObjectiveThroughput}).Validate() != nil {
		t.Error("J1 needs no parameters")
	}
	if (Objective{Kind: ObjectiveDelayAware, Lambda: -1, RateScale: 1}).Validate() == nil {
		t.Error("negative lambda should fail")
	}
	if (Objective{Kind: ObjectiveDelayAware, Lambda: 1, RateScale: 0}).Validate() == nil {
		t.Error("zero rate scale should fail")
	}
	if DefaultObjective().Validate() != nil {
		t.Error("default objective should validate")
	}
}

func TestObjectivePenalty(t *testing.T) {
	o := Objective{Kind: ObjectiveDelayAware, Lambda: 2, RateScale: 10}
	if got := o.Penalty(5, 0); got != 10 {
		t.Errorf("Penalty(5,0) = %v, want 10", got)
	}
	if got := o.Penalty(5, 10); got != 0 {
		t.Errorf("Penalty at full rate = %v, want 0", got)
	}
	if got := o.Penalty(5, 20); got != 0 {
		t.Errorf("Penalty above rate scale = %v, want 0 (clamped)", got)
	}
	if got := o.Penalty(5, 5); got != 5 {
		t.Errorf("Penalty(5,5) = %v, want 5", got)
	}
	j1 := Objective{Kind: ObjectiveThroughput}
	if j1.Penalty(100, 0) != 0 {
		t.Error("J1 penalty must be zero")
	}
}

func TestObjectiveValueJ1(t *testing.T) {
	o := Objective{Kind: ObjectiveThroughput}
	reqs := []Request{
		{AvgThroughput: 0.5, Priority: 0},
		{AvgThroughput: 0.25, Priority: 1}, // priority doubles its weight
	}
	got := o.Value(reqs, []int{2, 4})
	want := 2*0.5 + 4*0.25*2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("J1 = %v, want %v", got, want)
	}
	// Short assignment vectors treat missing entries as zero.
	if o.Value(reqs, []int{2}) != 1 {
		t.Error("missing assignments should count as zero")
	}
}

func TestProblemValidate(t *testing.T) {
	p := smallProblem(ObjectiveThroughput)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.MaxRatio = 0
	if bad.Validate() == nil {
		t.Error("MaxRatio 0 should fail")
	}
	bad2 := smallProblem(ObjectiveThroughput)
	bad2.Region.Coeff = [][]float64{{1, 2}}
	if bad2.Validate() == nil {
		t.Error("region width mismatch should fail")
	}
	bad3 := smallProblem(ObjectiveThroughput)
	bad3.Requests[0].AvgThroughput = -1
	if bad3.Validate() == nil {
		t.Error("negative throughput should fail")
	}
}

func TestProblemMACRecomputesSetupDelay(t *testing.T) {
	cfg := mac.DefaultConfig()
	p := smallProblem(ObjectiveDelayAware)
	p.MAC = &cfg
	reqs := p.effectiveRequests()
	// Request 2 waited 4 s -> Control-Hold penalty D1; request 3 waited 12 s -> D2.
	if reqs[0].SetupDelay != 0 || reqs[1].SetupDelay != cfg.D1 || reqs[2].SetupDelay != cfg.D2 {
		t.Errorf("setup delays = %v %v %v", reqs[0].SetupDelay, reqs[1].SetupDelay, reqs[2].SetupDelay)
	}
	// Without MAC config the provided values pass through.
	p.MAC = nil
	reqs = p.effectiveRequests()
	if reqs[1].SetupDelay != 0 {
		t.Error("without MAC the setup delay should be untouched")
	}
}

func TestUpperBoundsClamp(t *testing.T) {
	p := smallProblem(ObjectiveThroughput)
	p.Requests[0].MaxRatio = 50 // above the global M
	p.Requests[1].MaxRatio = -3 // nonsense, clamps to 0... but Validate rejects negatives
	p.Requests[1].MaxRatio = 2
	ub := p.upperBounds()
	if ub[0] != p.MaxRatio || ub[1] != 2 || ub[2] != 8 {
		t.Errorf("upperBounds = %v", ub)
	}
}

func allSchedulers() []Scheduler {
	return []Scheduler{NewJABASD(), &GreedyJABASD{}, &FCFS{}, &EqualShare{}, NewRandom(7)}
}

func TestAllSchedulersProduceAdmissibleAssignments(t *testing.T) {
	for _, kind := range []ObjectiveKind{ObjectiveThroughput, ObjectiveDelayAware} {
		p := smallProblem(kind)
		for _, s := range allSchedulers() {
			a, err := s.Schedule(p)
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			if len(a.Ratios) != len(p.Requests) {
				t.Fatalf("%s: wrong assignment length", s.Name())
			}
			if !p.Region.Feasible(a.Ratios) {
				t.Errorf("%s produced an inadmissible assignment %v", s.Name(), a.Ratios)
			}
			ub := p.upperBounds()
			for j, m := range a.Ratios {
				if m < 0 || m > ub[j] {
					t.Errorf("%s violated the ratio bounds: %v", s.Name(), a.Ratios)
				}
			}
			if a.Scheduler == "" {
				t.Errorf("%s did not label the assignment", s.Name())
			}
		}
	}
}

func TestJABASDIsOptimalOnSmallProblem(t *testing.T) {
	p := smallProblem(ObjectiveThroughput)
	// Utilities per unit m: 0.5, 0.25, 1.0; costs: 2, 3, 5.
	// Optimal J1: request 3 has utility/cost 0.2, request 1 has 0.25; the
	// exact optimum is m = [5,0,0] (J1 = 2.5) vs [0,0,2] (2.0) vs mixes.
	jaba := NewJABASD()
	a, err := jaba.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Objective-2.5) > 1e-9 {
		t.Errorf("JABA-SD objective = %v (%v), want 2.5", a.Objective, a.Ratios)
	}
	// And it must dominate every baseline on the objective it optimises.
	for _, s := range []Scheduler{&FCFS{}, &EqualShare{}, NewRandom(3)} {
		b, err := s.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		if b.Objective > a.Objective+1e-9 {
			t.Errorf("%s (%v) beat JABA-SD (%v)", s.Name(), b.Objective, a.Objective)
		}
	}
}

func TestDelayAwareObjectiveFavoursWaitingUser(t *testing.T) {
	// Two requests contending for headroom 5, identical cost 1 per unit.
	// Request A: great channel (bp=1.0), fresh (w=0). Request B: poor channel
	// (bp=0.4), has waited 30 s (beyond T3). With J1 all resource goes to A;
	// with a sufficiently aggressive J2 the scheduler serves B first.
	region := measurement.Region{Coeff: [][]float64{{1, 1}}, Bound: []float64{5}, Cells: []int{0}}
	mk := func(obj Objective) Problem {
		return Problem{
			Requests: []Request{
				{UserID: 1, SizeBits: 1e6, WaitingTime: 0, AvgThroughput: 1.0, MaxRatio: 5},
				{UserID: 2, SizeBits: 1e6, WaitingTime: 30, AvgThroughput: 0.4, MaxRatio: 5},
			},
			Region:    region,
			MaxRatio:  5,
			Objective: obj,
		}
	}
	jaba := NewJABASD()
	a1, err := jaba.Schedule(mk(Objective{Kind: ObjectiveThroughput}))
	if err != nil {
		t.Fatal(err)
	}
	if a1.Ratios[0] != 5 || a1.Ratios[1] != 0 {
		t.Errorf("J1 should give everything to the good channel, got %v", a1.Ratios)
	}
	a2, err := jaba.Schedule(mk(Objective{Kind: ObjectiveDelayAware, Lambda: 0.5, RateScale: 5}))
	if err != nil {
		t.Fatal(err)
	}
	if a2.Ratios[1] == 0 {
		t.Errorf("J2 with heavy delay weight should serve the waiting user, got %v", a2.Ratios)
	}
}

func TestEmptyProblem(t *testing.T) {
	p := Problem{MaxRatio: 4, Objective: DefaultObjective()}
	for _, s := range allSchedulers() {
		a, err := s.Schedule(p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(a.Ratios) != 0 || a.Served() != 0 || a.TotalRatio() != 0 {
			t.Errorf("%s: empty problem should give empty assignment", s.Name())
		}
	}
}

func TestOverloadedCellRejectsAll(t *testing.T) {
	p := smallProblem(ObjectiveThroughput)
	p.Region.Bound = []float64{-1} // cell already above its power budget
	for _, s := range allSchedulers() {
		a, err := s.Schedule(p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for _, m := range a.Ratios {
			if m != 0 {
				t.Errorf("%s admitted a burst into an overloaded cell: %v", s.Name(), a.Ratios)
			}
		}
	}
}

func TestEqualShareIsEqual(t *testing.T) {
	// Plenty of headroom: everyone should get min(level, own bound), and the
	// levels should be identical across requests with equal bounds.
	region := measurement.Region{Coeff: [][]float64{{1, 1, 1}}, Bound: []float64{100}, Cells: []int{0}}
	p := Problem{
		Requests: []Request{
			{UserID: 1, AvgThroughput: 0.9, MaxRatio: 8},
			{UserID: 2, AvgThroughput: 0.1, MaxRatio: 8},
			{UserID: 3, AvgThroughput: 0.5, MaxRatio: 4},
		},
		Region:    region,
		MaxRatio:  8,
		Objective: Objective{Kind: ObjectiveThroughput},
	}
	a, err := (&EqualShare{}).Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ratios[0] != 8 || a.Ratios[1] != 8 || a.Ratios[2] != 4 {
		t.Errorf("EqualShare = %v, want [8 8 4]", a.Ratios)
	}
}

func TestFCFSServesOldestFirst(t *testing.T) {
	// Headroom for only one full grant: the older request must win even
	// though the newer one has the better channel.
	region := measurement.Region{Coeff: [][]float64{{1, 1}}, Bound: []float64{4}, Cells: []int{0}}
	p := Problem{
		Requests: []Request{
			{UserID: 1, WaitingTime: 0.1, AvgThroughput: 1.0, MaxRatio: 4},
			{UserID: 2, WaitingTime: 9.0, AvgThroughput: 0.1, MaxRatio: 4},
		},
		Region:    region,
		MaxRatio:  4,
		Objective: Objective{Kind: ObjectiveThroughput},
	}
	a, err := (&FCFS{}).Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ratios[1] != 4 || a.Ratios[0] != 0 {
		t.Errorf("FCFS = %v, want [0 4]", a.Ratios)
	}
}

func TestGreedyMatchesOptimalOnSingleConstraintProperty(t *testing.T) {
	// With a single constraint row the greedy should equal the exact solver
	// almost always; we allow a small optimality gap (integer effects).
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(4)
		reqs := make([]Request, n)
		costs := make([]float64, n)
		for j := 0; j < n; j++ {
			reqs[j] = Request{
				UserID:        j,
				SizeBits:      1e6,
				WaitingTime:   src.Uniform(0, 20),
				AvgThroughput: src.Uniform(0.1, 1),
				MaxRatio:      1 + src.Intn(8),
			}
			costs[j] = src.Uniform(0.5, 3)
		}
		region := measurement.Region{Coeff: [][]float64{costs}, Bound: []float64{src.Uniform(2, 20)}, Cells: []int{0}}
		p := Problem{Requests: reqs, Region: region, MaxRatio: 8,
			Objective: Objective{Kind: ObjectiveThroughput}}
		exact, err1 := NewJABASD().Schedule(p)
		greedy, err2 := (&GreedyJABASD{}).Schedule(p)
		if err1 != nil || err2 != nil {
			return false
		}
		if exact.Objective <= 0 {
			return greedy.Objective >= -1e-9
		}
		// The greedy carries a 1/2-approximation guarantee on a single
		// constraint (density greedy + best-single-request fallback).
		return greedy.Objective >= 0.5*exact.Objective-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestJABASDGreedyFallbackOnLargeProblems(t *testing.T) {
	src := rng.New(99)
	n := 20
	reqs := make([]Request, n)
	costs := make([]float64, n)
	for j := 0; j < n; j++ {
		reqs[j] = Request{UserID: j, SizeBits: 1e6, AvgThroughput: src.Uniform(0.1, 1), MaxRatio: 8}
		costs[j] = src.Uniform(0.5, 3)
	}
	region := measurement.Region{Coeff: [][]float64{costs}, Bound: []float64{30}, Cells: []int{0}}
	p := Problem{Requests: reqs, Region: region, MaxRatio: 8, Objective: Objective{Kind: ObjectiveThroughput}}
	s := NewJABASD()
	a, err := s.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Region.Feasible(a.Ratios) {
		t.Error("fallback assignment infeasible")
	}
	if a.Scheduler != "JABA-SD" {
		t.Errorf("fallback should still be labelled JABA-SD, got %q", a.Scheduler)
	}
}

func TestSchedulersRejectInvalidProblem(t *testing.T) {
	bad := smallProblem(ObjectiveThroughput)
	bad.MaxRatio = 0
	for _, s := range allSchedulers() {
		if _, err := s.Schedule(bad); err == nil {
			t.Errorf("%s accepted an invalid problem", s.Name())
		}
	}
}

func TestAssignmentHelpers(t *testing.T) {
	a := Assignment{Ratios: []int{0, 3, 2, 0}}
	if a.Served() != 2 {
		t.Errorf("Served = %d", a.Served())
	}
	if a.TotalRatio() != 5 {
		t.Errorf("TotalRatio = %d", a.TotalRatio())
	}
}

func TestRandomSchedulerDefaultSource(t *testing.T) {
	s := &Random{}
	p := smallProblem(ObjectiveThroughput)
	if _, err := s.Schedule(p); err != nil {
		t.Fatal(err)
	}
	if s.Src == nil {
		t.Error("Random should lazily create a source")
	}
}

// TestAllSchedulersImplementCloner enforces the snapshot-frame-mode
// contract: every registered scheduler must be clonable into independent
// per-worker instances, and clones must behave identically to the original
// on the same problem (stateful ones after an identical SeedCell).
func TestAllSchedulersImplementCloner(t *testing.T) {
	p := smallProblem(ObjectiveDelayAware)
	scheds := []Scheduler{NewJABASD(), &GreedyJABASD{}, &FCFS{}, &EqualShare{}, NewRandom(7)}
	for _, s := range scheds {
		cl, ok := s.(Cloner)
		if !ok {
			t.Errorf("%s does not implement Cloner; the snapshot frame mode cannot use it", s.Name())
			continue
		}
		c := cl.Clone()
		if c == nil {
			t.Fatalf("%s.Clone returned nil", s.Name())
		}
		if c.Name() != s.Name() {
			t.Errorf("%s clone renamed itself to %s", s.Name(), c.Name())
		}
		if seeder, stateful := s.(CellSeeder); stateful {
			// Stateful schedulers: identical (frame, cell) seeds must yield
			// identical assignments on original and clone alike.
			cseeder := c.(CellSeeder)
			seeder.SeedCell(3, 5)
			cseeder.SeedCell(3, 5)
		}
		a, err := s.Schedule(p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		b, err := c.Schedule(p)
		if err != nil {
			t.Fatalf("%s clone: %v", s.Name(), err)
		}
		if len(a.Ratios) != len(b.Ratios) {
			t.Fatalf("%s clone returned a different assignment length", s.Name())
		}
		for j := range a.Ratios {
			if a.Ratios[j] != b.Ratios[j] {
				t.Errorf("%s clone diverged from the original at request %d: %d vs %d",
					s.Name(), j, b.Ratios[j], a.Ratios[j])
			}
		}
	}
}

// TestRandomSeedCellIsPureFunctionOfIndices: the Random scheduler's SeedCell
// must fully determine its draws — re-seeding with the same (frame, cell)
// replays the same permutation, different indices change it.
func TestRandomSeedCellIsPureFunctionOfIndices(t *testing.T) {
	p := smallProblem(ObjectiveDelayAware)
	r := NewRandom(42)
	r.SeedCell(1, 2)
	a, err := r.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	r.SeedCell(1, 2)
	b, err := r.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Ratios {
		if a.Ratios[j] != b.Ratios[j] {
			t.Fatal("same (frame, cell) seed replayed a different permutation")
		}
	}
	// Different cells must (for this problem) be able to produce different
	// orders at least somewhere over a handful of cells; identical output for
	// every cell would mean the seed is ignored.
	differs := false
	for cell := uint64(0); cell < 16 && !differs; cell++ {
		r.SeedCell(1, cell)
		c, err := r.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		for j := range a.Ratios {
			if c.Ratios[j] != a.Ratios[j] {
				differs = true
				break
			}
		}
	}
	if !differs {
		t.Error("SeedCell appears to ignore the cell index")
	}
}
