package core

import (
	"errors"
	"sort"

	"jabasd/internal/ilp"
	"jabasd/internal/rng"
)

// Scheduler is a scheduling sub-layer algorithm: given a frame's admission
// problem it returns an admissible assignment of spreading ratios.
//
// Schedule must not retain the problem or mutate anything outside the
// scheduler's own state: the simulation engine's snapshot frame mode solves
// many cells' problems concurrently, one scheduler instance per worker (see
// Cloner). A scheduler whose output depends on internal mutable state — a
// random stream, warm-started solver memory — must additionally implement
// CellSeeder so its draws are a pure function of (frame, cell) rather than
// of the order the workers happen to solve cells in.
type Scheduler interface {
	// Name identifies the scheduler in reports.
	Name() string
	// Schedule solves one frame. Implementations must return an assignment
	// that satisfies the problem's admissible region and upper bounds.
	Schedule(p Problem) (Assignment, error)
}

// Cloner is implemented by schedulers that can hand out independent
// instances of themselves, one per frame-admission worker. Stateless
// schedulers return a plain copy; stateful ones must return an instance
// whose state is disjoint from the receiver's. The engine refuses to run
// the snapshot frame mode with a scheduler that does not implement Cloner
// (enforced in sim.NewEngine and by TestAllSchedulersImplementCloner).
type Cloner interface {
	Scheduler
	// Clone returns an independent scheduler instance with the same
	// configuration.
	Clone() Scheduler
}

// CellSeeder is implemented by schedulers with internal randomness. Before
// solving cell k of frame f in snapshot mode, the engine calls
// SeedCell(f, k) on the worker's clone, making the scheduler's draws depend
// only on the (frame, cell) pair — and therefore the simulation output
// byte-identical for any worker count and any cell→worker assignment.
type CellSeeder interface {
	SeedCell(frame, cell uint64)
}

// ErrInvalidProblem wraps validation failures.
var ErrInvalidProblem = errors.New("core: invalid problem")

// ---------------------------------------------------------------------------
// JABA-SD (optimal): branch-and-bound solution of the integer programme.
// ---------------------------------------------------------------------------

// JABASD is the jointly adaptive burst admission — spatial dimension
// scheduler: it solves the frame's integer programme exactly (branch and
// bound over the LP relaxation). The "jointly adaptive" part is that the
// utility of every request already reflects the channel-adaptive physical
// layer through bp_j, so good-channel users are naturally favoured by J1
// while J2 folds the waiting time back in.
//
// A JABASD owns a warm ilp.Solver and the scratch buffers the programme is
// assembled into, so its steady-state Schedule performs a single allocation
// (the returned Ratios slice; pinned by TestJABASDScheduleAllocs). It is not
// safe for concurrent use — the snapshot frame mode gives each worker its
// own instance via Clone.
type JABASD struct {
	// GreedyFallbackSize is the request count above which the scheduler
	// switches to the greedy heuristic to bound per-frame work. Zero means
	// always exact.
	GreedyFallbackSize int
	// NodeBudget, when positive, bounds the branch-and-bound search at that
	// many nodes per solve (the deterministic analogue of a per-frame time
	// budget — node counts are a pure function of the problem, so outputs
	// stay byte-identical for any worker/tile count). A solve that hits the
	// budget is redone with the greedy heuristic and the returned assignment
	// carries Fallback = true, which the engine counts and traces. Zero
	// means unbudgeted (only the solver's global safety valve applies).
	NodeBudget int

	solver  ilp.Solver
	scratch ilpScratch
	greedy  GreedyJABASD // fallback instance, reused across frames
}

// NewJABASD returns the exact JABA-SD scheduler with a greedy fallback for
// frames with more than 12 concurrent requests.
func NewJABASD() *JABASD { return &JABASD{GreedyFallbackSize: 12} }

// Name implements Scheduler.
func (s *JABASD) Name() string { return "JABA-SD" }

// Clone implements Cloner. The clone carries the configuration but owns a
// fresh solver and scratch, so it shares no mutable state with the receiver.
func (s *JABASD) Clone() Scheduler {
	return &JABASD{GreedyFallbackSize: s.GreedyFallbackSize, NodeBudget: s.NodeBudget}
}

// Schedule implements Scheduler.
func (s *JABASD) Schedule(p Problem) (Assignment, error) {
	if err := p.Validate(); err != nil {
		return Assignment{}, err
	}
	if len(p.Requests) == 0 {
		return Assignment{Ratios: []int{}, Scheduler: s.Name()}, nil
	}
	if s.GreedyFallbackSize > 0 && len(p.Requests) > s.GreedyFallbackSize {
		a, err := s.greedy.Schedule(p)
		if err != nil {
			return Assignment{}, err
		}
		a.Scheduler = s.Name()
		return a, nil
	}
	prob, reqs := p.toILP(&s.scratch)
	s.solver.MaxNodes = s.NodeBudget
	res, err := s.solver.Solve(prob)
	if err != nil {
		return Assignment{}, err
	}
	if s.NodeBudget > 0 && res.Capped {
		// The exact search exhausted its per-solve node budget: degrade
		// deterministically to the greedy heuristic instead of returning an
		// unproven incumbent, and mark the assignment so the engine can
		// count and trace the fallback. (The size-based GreedyFallbackSize
		// shortcut above is a steady-state policy, not a degradation, and is
		// deliberately not flagged.)
		a, err := s.greedy.Schedule(p)
		if err != nil {
			return Assignment{}, err
		}
		a.Scheduler = s.Name()
		a.Fallback = true
		return a, nil
	}
	if !res.Feasible {
		// Even the all-zero assignment violates a constraint (a cell is
		// already over budget): reject everything.
		zero := make([]int, len(p.Requests))
		return Assignment{
			Ratios:    zero,
			Objective: p.Objective.Value(reqs, zero),
			Scheduler: s.Name(),
		}, nil
	}
	ratios := append([]int(nil), res.X...) // res.X aliases the solver's buffer
	return Assignment{
		Ratios:    ratios,
		Objective: p.Objective.Value(reqs, ratios),
		Scheduler: s.Name(),
	}, nil
}

// ---------------------------------------------------------------------------
// Greedy JABA-SD: marginal-utility ascent (scales to large request counts).
// ---------------------------------------------------------------------------

// GreedyJABASD is the scalable variant of JABA-SD: it repeatedly grants one
// unit of spreading ratio to the request with the highest utility coefficient
// whose increment keeps the assignment admissible, until no increment fits.
// Because the objective is linear and all constraint coefficients are
// non-negative, this is a classic greedy for a multi-dimensional knapsack;
// it is optimal when a single constraint binds and near-optimal otherwise
// (verified against the exact solver in the tests and benchmarks).
//
// The working vectors live in owned scratch buffers reused across frames, so
// the steady-state Schedule performs a single allocation (the returned
// Ratios slice). Not safe for concurrent use; Clone hands out independent
// instances.
type GreedyJABASD struct {
	scratch ilpScratch
	m       []int
	single  []int
	bestM   []int
	head    []float64
	headS   []float64
}

// Name implements Scheduler.
func (s *GreedyJABASD) Name() string { return "JABA-SD-greedy" }

// Clone implements Cloner. The clone owns fresh scratch.
func (s *GreedyJABASD) Clone() Scheduler { return &GreedyJABASD{} }

// resize readies the integer scratch vectors for n requests, zeroed.
func (s *GreedyJABASD) resize(n int) {
	grow := func(buf []int) []int {
		if cap(buf) < n {
			return make([]int, n)
		}
		buf = buf[:n]
		for i := range buf {
			buf[i] = 0
		}
		return buf
	}
	s.m = grow(s.m)
	s.single = grow(s.single)
	s.bestM = grow(s.bestM)
}

// Schedule implements Scheduler.
func (s *GreedyJABASD) Schedule(p Problem) (Assignment, error) {
	if err := p.Validate(); err != nil {
		return Assignment{}, err
	}
	n := len(p.Requests)
	if n == 0 {
		return Assignment{Ratios: []int{}, Scheduler: s.Name()}, nil
	}
	s.resize(n)
	m := s.m
	reqs := p.Requests
	if p.MAC != nil {
		s.scratch.reqs = p.effectiveRequestsInto(s.scratch.reqs)
		reqs = s.scratch.reqs
	}
	s.scratch.util = p.Objective.utilityCoefficientsInto(s.scratch.util, reqs)
	util := s.scratch.util
	s.scratch.ub = p.upperBoundsInto(s.scratch.ub)
	ub := s.scratch.ub

	// Per-request "cost" per unit of m in each constraint row is constant, so
	// rank candidates by utility per unit of (normalised) cost, refreshing
	// feasibility on every grant. Remaining headroom per constraint row:
	s.head = p.Region.HeadroomInto(s.head, m)
	head := s.head
	for {
		// Build the candidate list of requests that can still take one unit.
		best := -1
		bestScore := 0.0
		for j := 0; j < n; j++ {
			if m[j] >= ub[j] || util[j] <= 0 {
				continue
			}
			// Check one increment against every row and compute a congestion
			// aware score: utility divided by the max fractional row usage.
			feas := true
			maxUse := 0.0
			for i, row := range p.Region.Coeff {
				c := row[j]
				if c <= 0 {
					continue
				}
				if c > head[i]+1e-12 {
					feas = false
					break
				}
				if head[i] > 0 {
					use := c / head[i]
					if use > maxUse {
						maxUse = use
					}
				}
			}
			if !feas {
				continue
			}
			score := util[j]
			if maxUse > 0 {
				score = util[j] / maxUse
			} else {
				// Unconstrained increment: infinitely cheap, prefer highest utility.
				score = util[j] * 1e9
			}
			if best == -1 || score > bestScore {
				best, bestScore = j, score
			}
		}
		if best < 0 {
			break
		}
		m[best]++
		for i, row := range p.Region.Coeff {
			head[i] -= row[best]
		}
	}

	// Density-greedy alone can be arbitrarily bad when one lumpy request
	// blocks the budget; also evaluate the best "serve a single request as
	// hard as possible" assignment and keep whichever scores higher. This
	// gives the classic 1/2-approximation guarantee for the single-constraint
	// (knapsack) case and helps the multi-cell case too.
	copy(s.bestM, m)
	bestVal := p.Objective.Value(reqs, m)
	for j := 0; j < n; j++ {
		if util[j] <= 0 || ub[j] == 0 {
			continue
		}
		single := s.single
		for i := range single {
			single[i] = 0
		}
		h := p.Region.HeadroomInto(s.headS, single)
		s.headS = h
		for single[j] < ub[j] {
			feas := true
			for i, row := range p.Region.Coeff {
				if row[j] > h[i]+1e-12 {
					feas = false
					break
				}
			}
			if !feas {
				break
			}
			single[j]++
			for i, row := range p.Region.Coeff {
				h[i] -= row[j]
			}
		}
		if v := p.Objective.Value(reqs, single); v > bestVal {
			bestVal = v
			copy(s.bestM, single)
		}
	}
	return Assignment{
		Ratios:    append([]int(nil), s.bestM...),
		Objective: bestVal,
		Scheduler: s.Name(),
	}, nil
}

// ---------------------------------------------------------------------------
// FCFS (cdma2000 baseline).
// ---------------------------------------------------------------------------

// FCFS is the cdma2000-style baseline: burst requests are handled strictly
// first-come-first-served; the oldest request is granted the largest
// admissible spreading ratio, then the next oldest gets whatever is left,
// and so on. With a single request this coincides with the single-burst
// assignment of the cdma2000 literature.
type FCFS struct{}

// Name implements Scheduler.
func (s *FCFS) Name() string { return "FCFS" }

// Clone implements Cloner.
func (s *FCFS) Clone() Scheduler { return &FCFS{} }

// Schedule implements Scheduler.
func (s *FCFS) Schedule(p Problem) (Assignment, error) {
	if err := p.Validate(); err != nil {
		return Assignment{}, err
	}
	n := len(p.Requests)
	m := make([]int, n)
	reqs := p.effectiveRequests()
	ub := p.upperBounds()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Oldest first (largest waiting time).
	sort.SliceStable(order, func(a, b int) bool {
		return reqs[order[a]].WaitingTime > reqs[order[b]].WaitingTime
	})
	head := p.Region.Headroom(m)
	for _, j := range order {
		grant := 0
		for grant < ub[j] {
			feas := true
			for i, row := range p.Region.Coeff {
				if row[j] > head[i]+1e-12 {
					feas = false
					break
				}
			}
			if !feas {
				break
			}
			grant++
			for i, row := range p.Region.Coeff {
				head[i] -= row[j]
			}
		}
		m[j] = grant
	}
	return Assignment{
		Ratios:    m,
		Objective: p.Objective.Value(reqs, m),
		Scheduler: s.Name(),
	}, nil
}

// ---------------------------------------------------------------------------
// Equal share baseline.
// ---------------------------------------------------------------------------

// EqualShare is the empirical baseline of the paper's reference [8]: the
// available resource is shared equally between the pending requests — every
// request gets the same spreading ratio (capped by its own upper bound), the
// largest uniform value that remains admissible.
type EqualShare struct{}

// Name implements Scheduler.
func (s *EqualShare) Name() string { return "EqualShare" }

// Clone implements Cloner.
func (s *EqualShare) Clone() Scheduler { return &EqualShare{} }

// Schedule implements Scheduler.
func (s *EqualShare) Schedule(p Problem) (Assignment, error) {
	if err := p.Validate(); err != nil {
		return Assignment{}, err
	}
	n := len(p.Requests)
	reqs := p.effectiveRequests()
	ub := p.upperBounds()
	best := make([]int, n)
	for level := 1; level <= p.MaxRatio; level++ {
		trial := make([]int, n)
		for j := 0; j < n; j++ {
			v := level
			if v > ub[j] {
				v = ub[j]
			}
			trial[j] = v
		}
		if p.Region.Feasible(trial) {
			copy(best, trial)
		} else {
			break
		}
	}
	if !p.Region.Feasible(best) {
		// Even level 0 may be infeasible when a cell is over budget; report zeros.
		for j := range best {
			best[j] = 0
		}
	}
	return Assignment{
		Ratios:    best,
		Objective: p.Objective.Value(reqs, best),
		Scheduler: s.Name(),
	}, nil
}

// ---------------------------------------------------------------------------
// Random baseline.
// ---------------------------------------------------------------------------

// Random grants requests in a uniformly random order, each taking the
// largest admissible ratio; useful as a sanity floor in the experiments.
// In sequential frame admission it consumes one stream in cell order; under
// the snapshot frame mode the engine reseeds each clone per (frame, cell)
// via SeedCell, so the permutations do not depend on worker scheduling.
type Random struct {
	Src  *rng.Source
	seed uint64
}

// NewRandom creates a Random scheduler with its own stream.
func NewRandom(seed uint64) *Random { return &Random{Src: rng.New(seed), seed: seed} }

// Name implements Scheduler.
func (s *Random) Name() string { return "Random" }

// Clone implements Cloner. The clone starts from the same base seed but owns
// its stream; snapshot-mode workers always reseed it per cell before use.
func (s *Random) Clone() Scheduler { return NewRandom(s.seed) }

// SeedCell implements CellSeeder: the stream is re-derived in place from the
// base seed and the (frame, cell) pair, so the subsequent permutation is a
// pure function of those indices.
func (s *Random) SeedCell(frame, cell uint64) {
	if s.Src == nil {
		s.Src = rng.New(s.seed)
	}
	// Decorrelate the three inputs with distinct 64-bit odd multipliers
	// (splitmix64/Weyl constants) before handing them to the generator's
	// own seed expander.
	s.Src.Reseed(s.seed ^ (frame+1)*0x9e3779b97f4a7c15 ^ (cell+1)*0xbf58476d1ce4e5b9)
}

// Schedule implements Scheduler.
func (s *Random) Schedule(p Problem) (Assignment, error) {
	if err := p.Validate(); err != nil {
		return Assignment{}, err
	}
	n := len(p.Requests)
	m := make([]int, n)
	reqs := p.effectiveRequests()
	ub := p.upperBounds()
	src := s.Src
	if src == nil {
		src = rng.New(1)
		s.Src = src
	}
	order := src.Perm(n)
	head := p.Region.Headroom(m)
	for _, j := range order {
		grant := 0
		for grant < ub[j] {
			feas := true
			for i, row := range p.Region.Coeff {
				if row[j] > head[i]+1e-12 {
					feas = false
					break
				}
			}
			if !feas {
				break
			}
			grant++
			for i, row := range p.Region.Coeff {
				head[i] -= row[j]
			}
		}
		m[j] = grant
	}
	return Assignment{
		Ratios:    m,
		Objective: p.Objective.Value(reqs, m),
		Scheduler: s.Name(),
	}, nil
}

var (
	_ Cloner     = (*JABASD)(nil)
	_ Cloner     = (*GreedyJABASD)(nil)
	_ Cloner     = (*FCFS)(nil)
	_ Cloner     = (*EqualShare)(nil)
	_ Cloner     = (*Random)(nil)
	_ CellSeeder = (*Random)(nil)
)
