// Package core implements the paper's primary contribution: the scheduling
// sub-layer of the jointly adaptive burst admission algorithm (JABA-SD).
//
// Every frame, the Nd pending burst requests in a cell are assigned integer
// spreading-gain ratios m_j ∈ {0, ..., M} (m_j = 0 rejects the request for
// this frame). The admissible assignments are bounded by the forward-link
// power region and the reverse-link interference region produced by the
// measurement sub-layer (package measurement), plus the per-request upper
// bound from the minimum-useful-burst-duration constraint (equation 24).
// Among the admissible assignments the scheduler maximises one of the two
// objective functions of Section 3.2:
//
//	J1(m) = Σ_j m_j·bp_j·(1+Δ_j)                            (equation 19)
//	J2(m) = Σ_j [ m_j·bp_j·(1+Δ_j) − f(w_j, m_j·bp_j) ]     (equation 20)
//
// where bp_j is the Rayleigh-averaged VTAOC throughput at the user's local
// mean CSI (the channel-adaptive part of the joint design), Δ_j a traffic
// priority, w_j the overall request delay including the MAC set-up penalty
// (equations 22-23), and f the delay penalty function (equation 21),
// increasing in w_j and decreasing linearly in the served rate m_j·bp_j so
// that the whole programme stays an integer linear programme.
package core

import (
	"errors"
	"fmt"

	"jabasd/internal/ilp"
	"jabasd/internal/mac"
	"jabasd/internal/measurement"
)

// Request is one pending burst request as seen by the scheduling sub-layer.
type Request struct {
	UserID int
	// SizeBits is Q_j, the remaining burst size in bits.
	SizeBits float64
	// WaitingTime is t_w, how long the request has been queued (seconds).
	WaitingTime float64
	// SetupDelay is D_s, the MAC set-up delay penalty applicable if the
	// burst is granted now (equation 23); OverallDelay = WaitingTime + SetupDelay.
	SetupDelay float64
	// Priority is Δ_j, the relative priority of the request's traffic type.
	Priority float64
	// AvgThroughput is bp_j, the Rayleigh-averaged VTAOC throughput at the
	// user's current local-mean CSI (bits per modulation symbol).
	AvgThroughput float64
	// MaxRatio is the per-request upper bound on m_j: min{M, Q_j/(T_l·bp_j)}
	// from equation (24), already clamped by the caller (RatePlan.MaxUsefulRatio).
	MaxRatio int
}

// OverallDelay returns w_j = t_w + D_s (equation 22).
func (r Request) OverallDelay() float64 { return r.WaitingTime + r.SetupDelay }

// ObjectiveKind selects between the two objective functions of Section 3.2.
type ObjectiveKind int

const (
	// ObjectiveThroughput is J1: maximise the total weighted served rate.
	ObjectiveThroughput ObjectiveKind = iota
	// ObjectiveDelayAware is J2: throughput minus the delay penalty, trading
	// some utilisation for serving long-waiting (possibly poor-channel) users.
	ObjectiveDelayAware
)

// String names the objective.
func (k ObjectiveKind) String() string {
	switch k {
	case ObjectiveThroughput:
		return "J1-throughput"
	case ObjectiveDelayAware:
		return "J2-delay-aware"
	default:
		return fmt.Sprintf("ObjectiveKind(%d)", int(k))
	}
}

// MarshalJSON encodes the kind as the paper's short name, "j1" or "j2", so
// configuration files and API payloads read as prose rather than enum
// ordinals.
func (k ObjectiveKind) MarshalJSON() ([]byte, error) {
	switch k {
	case ObjectiveThroughput:
		return []byte(`"j1"`), nil
	case ObjectiveDelayAware:
		return []byte(`"j2"`), nil
	default:
		return nil, fmt.Errorf("core: cannot encode unknown ObjectiveKind(%d)", int(k))
	}
}

// UnmarshalJSON accepts the short names ("j1"/"j2"), the descriptive names
// ("throughput"/"delay-aware") and, for configuration files written before
// the string encoding, the raw ordinals 0 and 1.
func (k *ObjectiveKind) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"j1"`, `"throughput"`, `"J1-throughput"`, `0`:
		*k = ObjectiveThroughput
	case `"j2"`, `"delay-aware"`, `"J2-delay-aware"`, `1`:
		*k = ObjectiveDelayAware
	default:
		return fmt.Errorf("core: unknown objective kind %s (want \"j1\" or \"j2\")", data)
	}
	return nil
}

// Objective parameterises the delay penalty f(w, r) of equation (21):
//
//	f(w, r) = Lambda * w * max(0, 1 - r/RateScale),
//
// which increases with the overall delay w, decreases linearly in the served
// rate r = m·bp (so the programme stays linear in m) and vanishes once the
// request is served at the reference rate RateScale.
type Objective struct {
	Kind ObjectiveKind
	// Lambda is λ, the delay penalty scale (utility units per second of delay).
	Lambda float64
	// RateScale is the reference served rate (in m·bp units) at which the
	// delay penalty is fully compensated; typically M * max throughput.
	RateScale float64
}

// DefaultObjective returns the J2 objective with λ = 0.05 and a rate scale of
// 16 (M=16 at top throughput 1.0).
func DefaultObjective() Objective {
	return Objective{Kind: ObjectiveDelayAware, Lambda: 0.05, RateScale: 16}
}

// Validate reports whether the objective parameters are usable.
func (o Objective) Validate() error {
	if o.Kind == ObjectiveDelayAware {
		if o.Lambda < 0 {
			return errors.New("core: Lambda must be non-negative")
		}
		if o.RateScale <= 0 {
			return errors.New("core: RateScale must be positive")
		}
	}
	return nil
}

// Penalty evaluates f(w, r) for a request with overall delay w served at
// rate r (in m·bp units). It is zero for the pure-throughput objective.
func (o Objective) Penalty(w, r float64) float64 {
	if o.Kind != ObjectiveDelayAware {
		return 0
	}
	frac := 1 - r/o.RateScale
	if frac < 0 {
		frac = 0
	}
	return o.Lambda * w * frac
}

// Value evaluates the chosen objective for the given assignment.
func (o Objective) Value(requests []Request, m []int) float64 {
	total := 0.0
	for j, req := range requests {
		mj := 0
		if j < len(m) {
			mj = m[j]
		}
		r := float64(mj) * req.AvgThroughput
		total += r * (1 + req.Priority)
		if o.Kind == ObjectiveDelayAware {
			total -= o.Penalty(req.OverallDelay(), r)
		}
	}
	return total
}

// utilityCoefficients returns the per-request linear utility coefficient
// c_j such that the objective equals Σ_j c_j·m_j + constant. For J2 the
// delay penalty contributes +Lambda·w_j·bp_j/RateScale per unit of m_j (the
// linear part) and a constant −Σ Lambda·w_j that does not affect the argmax.
func (o Objective) utilityCoefficients(requests []Request) []float64 {
	return o.utilityCoefficientsInto(nil, requests)
}

// utilityCoefficientsInto is utilityCoefficients writing into dst, which is
// grown as needed and returned; the schedulers reuse their scratch through
// it so the per-frame solve does not allocate.
func (o Objective) utilityCoefficientsInto(dst []float64, requests []Request) []float64 {
	if cap(dst) < len(requests) {
		dst = make([]float64, len(requests))
	}
	dst = dst[:len(requests)]
	for j, req := range requests {
		dst[j] = req.AvgThroughput * (1 + req.Priority)
		if o.Kind == ObjectiveDelayAware && o.RateScale > 0 {
			dst[j] += o.Lambda * req.OverallDelay() * req.AvgThroughput / o.RateScale
		}
	}
	return dst
}

// Problem is one frame's multiple-burst admission problem for a cell: the
// pending requests, the admissible regions from the measurement sub-layer
// (forward and/or reverse link — the paper handles the links independently,
// so usually exactly one of the two is non-empty), the global spreading
// ratio cap M and the objective.
type Problem struct {
	Requests  []Request
	Region    measurement.Region
	MaxRatio  int // M
	Objective Objective
	// MAC, when non-nil, recomputes each request's SetupDelay from its
	// waiting time before scheduling (equation 23); when nil the SetupDelay
	// provided on the request is used as-is.
	MAC *mac.Config
}

// Validate checks the problem for consistency.
func (p Problem) Validate() error {
	if p.MaxRatio < 1 {
		return errors.New("core: MaxRatio must be >= 1")
	}
	if err := p.Objective.Validate(); err != nil {
		return err
	}
	for _, row := range p.Region.Coeff {
		if len(row) != len(p.Requests) {
			return errors.New("core: region width does not match request count")
		}
	}
	for _, r := range p.Requests {
		if r.AvgThroughput < 0 || r.SizeBits < 0 || r.MaxRatio < 0 {
			return errors.New("core: negative request fields")
		}
	}
	return nil
}

// effectiveRequests applies the MAC set-up delay recomputation when a MAC
// configuration is attached to the problem.
func (p Problem) effectiveRequests() []Request {
	if p.MAC == nil {
		return p.Requests
	}
	return p.effectiveRequestsInto(nil)
}

// effectiveRequestsInto is effectiveRequests writing the recomputed copy
// into buf (grown as needed). Like effectiveRequests it returns p.Requests
// itself when no MAC configuration is attached, so callers must not mutate
// the result.
func (p Problem) effectiveRequestsInto(buf []Request) []Request {
	if p.MAC == nil {
		return p.Requests
	}
	if cap(buf) < len(p.Requests) {
		buf = make([]Request, len(p.Requests))
	}
	buf = buf[:len(p.Requests)]
	copy(buf, p.Requests)
	for i := range buf {
		buf[i].SetupDelay = p.MAC.SetupDelay(buf[i].WaitingTime)
	}
	return buf
}

// upperBounds returns the per-request upper bound min{MaxRatio, request.MaxRatio}.
func (p Problem) upperBounds() []int {
	return p.upperBoundsInto(nil)
}

// upperBoundsInto is upperBounds writing into dst, grown as needed.
func (p Problem) upperBoundsInto(dst []int) []int {
	if cap(dst) < len(p.Requests) {
		dst = make([]int, len(p.Requests))
	}
	dst = dst[:len(p.Requests)]
	for j, r := range p.Requests {
		u := r.MaxRatio
		if u > p.MaxRatio {
			u = p.MaxRatio
		}
		if u < 0 {
			u = 0
		}
		dst[j] = u
	}
	return dst
}

// ilpScratch holds the buffers one scheduler instance reuses to assemble the
// frame's integer programme (and, for the greedy ascent, its working
// vectors) without allocating. Each scheduler owns its scratch; clones get a
// fresh one (see Cloner).
type ilpScratch struct {
	reqs []Request
	util []float64
	ub   []int
}

// toILP assembles the integer linear programme of Section 3.2 into the
// scratch buffers and returns it together with the effective (MAC-adjusted)
// requests. The returned problem's C and Upper alias the scratch; A and B
// alias the problem's region rows, which the solvers never mutate.
func (p Problem) toILP(sc *ilpScratch) (ilp.Problem, []Request) {
	reqs := p.Requests
	if p.MAC != nil {
		sc.reqs = p.effectiveRequestsInto(sc.reqs)
		reqs = sc.reqs
	}
	sc.util = p.Objective.utilityCoefficientsInto(sc.util, reqs)
	sc.ub = p.upperBoundsInto(sc.ub)
	return ilp.Problem{
		C:     sc.util,
		A:     p.Region.Coeff,
		B:     p.Region.Bound,
		Upper: sc.ub,
	}, reqs
}

// Assignment is the scheduler output: the spreading ratio granted to each
// request (0 = rejected this frame) and the achieved objective value.
type Assignment struct {
	Ratios    []int
	Objective float64
	Scheduler string
	// Fallback is true when an exact scheduler degraded to its greedy
	// heuristic because the solve exceeded its node budget (JABASD's
	// NodeBudget). The engine counts these as sim.Metrics.FallbackSolves
	// and traces them per cell-frame.
	Fallback bool
}

// Served reports how many requests received a non-zero grant.
func (a Assignment) Served() int {
	n := 0
	for _, m := range a.Ratios {
		if m > 0 {
			n++
		}
	}
	return n
}

// TotalRatio returns Σ m_j, a proxy for the amount of resource handed out.
func (a Assignment) TotalRatio() int {
	t := 0
	for _, m := range a.Ratios {
		t += m
	}
	return t
}
