package core

import (
	"errors"
	"sort"
)

// The paper notes (Section 3.2) that the full scheduling space has both a
// spatial dimension (which requests get which spreading ratio) and a temporal
// dimension (when each admitted burst starts), but JABA-SD restricts itself
// to the spatial dimension with every admitted burst starting at the next
// frame boundary. TemporalPlanner implements the temporal extension the
// paper leaves as future work: given the spatial assignment of the current
// frame it also plans start offsets for the requests that could not be
// admitted now, by simulating the release of the resources held by the
// bursts granted ahead of them.

// PlannedBurst is one entry of a temporal plan.
type PlannedBurst struct {
	RequestIndex int
	Ratio        int
	// StartOffset is the planned start time relative to the current frame
	// boundary, in seconds (0 = starts now).
	StartOffset float64
	// Duration is the expected burst duration Q_j / R_j at the planned ratio,
	// in seconds.
	Duration float64
}

// TemporalPlan is the output of the temporal planner: the bursts that start
// now (the spatial assignment) plus the deferred bursts with their planned
// start offsets.
type TemporalPlan struct {
	Now      []PlannedBurst
	Deferred []PlannedBurst
}

// TotalPlanned returns the number of requests with a non-zero planned ratio.
func (p TemporalPlan) TotalPlanned() int { return len(p.Now) + len(p.Deferred) }

// MaxStartOffset returns the largest planned start offset.
func (p TemporalPlan) MaxStartOffset() float64 {
	m := 0.0
	for _, b := range p.Deferred {
		if b.StartOffset > m {
			m = b.StartOffset
		}
	}
	return m
}

// TemporalPlanner augments a spatial Scheduler with start-time planning.
type TemporalPlanner struct {
	// Spatial is the scheduler used for the "start now" assignment and for
	// each re-planning step; defaults to JABA-SD.
	Spatial Scheduler
	// RateForRatio converts an assignment (ratio, average throughput) into a
	// served bit rate in bits/second; required to estimate burst durations.
	RateForRatio func(ratio int, avgThroughput float64) float64
	// Horizon bounds how far into the future (seconds) bursts may be planned.
	Horizon float64
	// MaxSteps bounds the number of planning iterations.
	MaxSteps int
}

// ErrNoRateModel is returned when the planner has no RateForRatio function.
var ErrNoRateModel = errors.New("core: TemporalPlanner requires RateForRatio")

// Plan computes a temporal plan for the problem. The spatial assignment of
// the first step starts immediately; requests rejected in that step are
// re-scheduled at the time the earliest-finishing planned burst releases its
// resources, repeatedly, until every request is planned, the horizon is
// reached, or MaxSteps planning steps have run.
func (tp *TemporalPlanner) Plan(p Problem) (TemporalPlan, error) {
	if tp.RateForRatio == nil {
		return TemporalPlan{}, ErrNoRateModel
	}
	spatial := tp.Spatial
	if spatial == nil {
		spatial = NewJABASD()
	}
	horizon := tp.Horizon
	if horizon <= 0 {
		horizon = 30
	}
	maxSteps := tp.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 16
	}
	if err := p.Validate(); err != nil {
		return TemporalPlan{}, err
	}

	type pending struct {
		origIndex int
		req       Request
	}
	pendingReqs := make([]pending, len(p.Requests))
	for i, r := range p.Requests {
		pendingReqs[i] = pending{origIndex: i, req: r}
	}

	// active holds planned bursts that are occupying resources, with their
	// per-row consumption and finish times.
	type activeBurst struct {
		finish float64
		usage  []float64 // per region row
	}
	var active []activeBurst
	plan := TemporalPlan{}
	now := 0.0

	baseBound := append([]float64(nil), p.Region.Bound...)

	for step := 0; step < maxSteps && len(pendingReqs) > 0 && now <= horizon; step++ {
		// Build the sub-problem for the still-pending requests with bounds
		// reduced by the resources of the bursts active at time `now`.
		bound := append([]float64(nil), baseBound...)
		for _, a := range active {
			if a.finish > now {
				for i := range bound {
					bound[i] -= a.usage[i]
				}
			}
		}
		sub := Problem{
			MaxRatio:  p.MaxRatio,
			Objective: p.Objective,
			MAC:       p.MAC,
		}
		sub.Requests = make([]Request, len(pendingReqs))
		for i, pr := range pendingReqs {
			sub.Requests[i] = pr.req
			// Account for the time already spent waiting in the plan.
			sub.Requests[i].WaitingTime += now
		}
		sub.Region.Bound = bound
		sub.Region.Cells = p.Region.Cells
		sub.Region.Coeff = make([][]float64, len(p.Region.Coeff))
		for i, row := range p.Region.Coeff {
			newRow := make([]float64, len(pendingReqs))
			for j, pr := range pendingReqs {
				newRow[j] = row[pr.origIndex]
			}
			sub.Region.Coeff[i] = newRow
		}

		assignment, err := spatial.Schedule(sub)
		if err != nil {
			return TemporalPlan{}, err
		}

		granted := false
		var stillPending []pending
		for j, pr := range pendingReqs {
			m := 0
			if j < len(assignment.Ratios) {
				m = assignment.Ratios[j]
			}
			if m <= 0 {
				stillPending = append(stillPending, pr)
				continue
			}
			granted = true
			rate := tp.RateForRatio(m, pr.req.AvgThroughput)
			dur := horizon
			if rate > 0 {
				dur = pr.req.SizeBits / rate
			}
			usage := make([]float64, len(p.Region.Coeff))
			for i, row := range p.Region.Coeff {
				usage[i] = row[pr.origIndex] * float64(m)
			}
			pb := PlannedBurst{RequestIndex: pr.origIndex, Ratio: m, StartOffset: now, Duration: dur}
			if now == 0 {
				plan.Now = append(plan.Now, pb)
			} else {
				plan.Deferred = append(plan.Deferred, pb)
			}
			active = append(active, activeBurst{finish: now + dur, usage: usage})
		}
		pendingReqs = stillPending
		if len(pendingReqs) == 0 {
			break
		}
		// Advance to the next resource-release instant.
		next := horizon + 1
		for _, a := range active {
			if a.finish > now && a.finish < next {
				next = a.finish
			}
		}
		if !granted && next > horizon {
			break // nothing admitted and nothing will free up: give up
		}
		if next <= now {
			next = now + 1e-3
		}
		now = next
	}

	sort.Slice(plan.Deferred, func(i, j int) bool {
		return plan.Deferred[i].StartOffset < plan.Deferred[j].StartOffset
	})
	return plan, nil
}
