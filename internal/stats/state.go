package stats

import "jabasd/internal/checkpoint"

// EncodeState appends the accumulator's complete state.
func (r *Running) EncodeState(w *checkpoint.Writer) {
	w.I64(r.n)
	w.F64(r.mean)
	w.F64(r.m2)
	w.F64(r.min)
	w.F64(r.max)
}

// DecodeState restores the state written by EncodeState.
func (r *Running) DecodeState(rd *checkpoint.Reader) {
	r.n = rd.I64()
	r.mean = rd.F64()
	r.m2 = rd.F64()
	r.min = rd.F64()
	r.max = rd.F64()
}

// EncodeState appends the sample's observations in insertion order plus the
// sorted flag. The order matters: Mean sums the values as they were added,
// so a reordered restore would change the rounding of downstream reports.
func (s *Sample) EncodeState(w *checkpoint.Writer) {
	w.F64s(s.xs)
	w.Bool(s.sorted)
}

// DecodeState restores the state written by EncodeState.
func (s *Sample) DecodeState(rd *checkpoint.Reader) {
	s.xs = rd.F64s()
	s.sorted = rd.Bool()
}

// EncodeState appends the integrator's complete state.
func (tw *TimeWeighted) EncodeState(w *checkpoint.Writer) {
	w.F64(tw.lastT)
	w.F64(tw.lastV)
	w.F64(tw.area)
	w.F64(tw.duration)
	w.Bool(tw.started)
}

// DecodeState restores the state written by EncodeState.
func (tw *TimeWeighted) DecodeState(rd *checkpoint.Reader) {
	tw.lastT = rd.F64()
	tw.lastV = rd.F64()
	tw.area = rd.F64()
	tw.duration = rd.F64()
	tw.started = rd.Bool()
}
