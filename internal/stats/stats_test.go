package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRunningMoments(t *testing.T) {
	var r Running
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		r.Add(x)
	}
	if r.Count() != 8 {
		t.Errorf("Count = %d", r.Count())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", r.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if math.Abs(r.Variance()-32.0/7.0) > 1e-9 {
		t.Errorf("Variance = %v, want %v", r.Variance(), 32.0/7.0)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", r.Min(), r.Max())
	}
	if r.String() == "" {
		t.Error("String empty")
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.Min() != 0 || r.Max() != 0 ||
		r.StdErr() != 0 || r.ConfidenceInterval95() != 0 {
		t.Error("empty Running should return zeros")
	}
}

func TestRunningMergeEquivalence(t *testing.T) {
	f := func(seedA, seedB uint64) bool {
		genVals := func(seed uint64, n int) []float64 {
			s := seed
			out := make([]float64, n)
			for i := range out {
				s = s*6364136223846793005 + 1442695040888963407
				out[i] = float64(s>>11) / (1 << 53) * 100
			}
			return out
		}
		a := genVals(seedA, 37)
		b := genVals(seedB, 53)
		var all, ra, rb Running
		for _, x := range a {
			all.Add(x)
			ra.Add(x)
		}
		for _, x := range b {
			all.Add(x)
			rb.Add(x)
		}
		ra.Merge(&rb)
		return math.Abs(all.Mean()-ra.Mean()) < 1e-9 &&
			math.Abs(all.Variance()-ra.Variance()) < 1e-6 &&
			all.Count() == ra.Count() &&
			all.Min() == ra.Min() && all.Max() == ra.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRunningMergeWithEmpty(t *testing.T) {
	var a, b Running
	a.Add(3)
	a.Merge(&b) // merging empty should not change a
	if a.Count() != 1 || a.Mean() != 3 {
		t.Error("merge with empty changed accumulator")
	}
	b.Merge(&a) // merging into empty copies
	if b.Count() != 1 || b.Mean() != 3 {
		t.Error("merge into empty did not copy")
	}
}

func TestAddN(t *testing.T) {
	var a, b Running
	a.AddN(5, 4)
	for i := 0; i < 4; i++ {
		b.Add(5)
	}
	if a.Count() != b.Count() || a.Mean() != b.Mean() {
		t.Error("AddN inconsistent with repeated Add")
	}
}

func TestConfidenceInterval(t *testing.T) {
	var r Running
	for i := 0; i < 10; i++ {
		r.Add(float64(i))
	}
	ci := r.ConfidenceInterval95()
	if ci <= 0 {
		t.Errorf("CI should be positive, got %v", ci)
	}
	// CI should be t_(9) * sd/sqrt(10).
	want := 2.262 * r.StdDev() / math.Sqrt(10)
	if math.Abs(ci-want) > 1e-9 {
		t.Errorf("CI = %v, want %v", ci, want)
	}
}

func TestTCritical(t *testing.T) {
	if !math.IsNaN(tCritical95(0)) {
		t.Error("df=0 should be NaN")
	}
	if tCritical95(1) != 12.706 {
		t.Error("df=1 wrong")
	}
	if tCritical95(100) != 1.96 {
		t.Error("large df should fall back to 1.96")
	}
}

func TestSampleQuantile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if s.Len() != 100 {
		t.Errorf("Len = %d", s.Len())
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Errorf("q1 = %v", got)
	}
	if got := s.Quantile(0.5); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("median = %v, want 50.5", got)
	}
	if got := s.Quantile(0.9); math.Abs(got-90.1) > 1e-9 {
		t.Errorf("p90 = %v, want 90.1", got)
	}
	if math.Abs(s.Mean()-50.5) > 1e-9 {
		t.Errorf("mean = %v", s.Mean())
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Len() != 0 {
		t.Error("empty sample should return zeros")
	}
}

func TestSampleQuantileMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := seed
		var sm Sample
		for i := 0; i < 50; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			sm.Add(float64(s>>11) / (1 << 53))
		}
		return sm.Quantile(0.25) <= sm.Quantile(0.5) &&
			sm.Quantile(0.5) <= sm.Quantile(0.75) &&
			sm.Quantile(0.75) <= sm.Quantile(0.99)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSampleValuesCopy(t *testing.T) {
	var s Sample
	s.Add(1)
	v := s.Values()
	v[0] = 42
	if s.Quantile(0) != 1 {
		t.Error("Values should return a copy")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(15)
	if h.Count() != 12 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Under != 1 || h.Over != 1 {
		t.Errorf("Under/Over = %d/%d", h.Under, h.Over)
	}
	for i := 0; i < 10; i++ {
		if h.Bins[i] != 1 {
			t.Errorf("bin %d = %d, want 1", i, h.Bins[i])
		}
		if math.Abs(h.Fraction(i)-0.1) > 1e-12 {
			t.Errorf("Fraction(%d) = %v", i, h.Fraction(i))
		}
	}
	if math.Abs(h.BinCenter(0)-0.5) > 1e-12 {
		t.Errorf("BinCenter(0) = %v", h.BinCenter(0))
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(0, 100, 4)
	h.Add(10)
	h.Add(30)
	if h.Mean() != 20 {
		t.Errorf("Mean = %v", h.Mean())
	}
	empty := NewHistogram(0, 1, 1)
	if empty.Mean() != 0 {
		t.Error("empty histogram mean should be 0")
	}
	if empty.Fraction(0) != 0 {
		t.Error("empty histogram fraction should be 0")
	}
}

func TestHistogramPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid params")
		}
	}()
	NewHistogram(5, 1, 3)
}

func TestTimeWeighted(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(0, 2)  // value 2 during [0, 10)
	tw.Observe(10, 4) // value 4 during [10, 20)
	tw.Finish(20)
	if math.Abs(tw.Mean()-3) > 1e-12 {
		t.Errorf("time-weighted mean = %v, want 3", tw.Mean())
	}
	if tw.Duration() != 20 {
		t.Errorf("Duration = %v", tw.Duration())
	}
}

func TestTimeWeightedEmpty(t *testing.T) {
	var tw TimeWeighted
	if tw.Mean() != 0 || tw.Duration() != 0 {
		t.Error("empty TimeWeighted should be zero")
	}
	tw.Finish(5) // finishing before observing should be a no-op
	if tw.Duration() != 0 {
		t.Error("Finish before Observe should not accumulate")
	}
}

func TestTimeWeightedOutOfOrderIgnored(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(10, 1)
	tw.Observe(5, 99) // goes "backwards": no area accumulated, value replaced
	tw.Finish(15)
	if math.Abs(tw.Mean()-99) > 1e-12 {
		t.Errorf("mean = %v, want 99 (only the final segment counts)", tw.Mean())
	}
}
