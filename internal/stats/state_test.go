package stats

import (
	"bytes"
	"reflect"
	"testing"

	"jabasd/internal/checkpoint"
)

// roundTrip encodes with enc and decodes with dec through a one-section
// stream, failing the test on any framing error.
func roundTrip(t *testing.T, enc func(*checkpoint.Writer), dec func(*checkpoint.Reader)) {
	t.Helper()
	var buf bytes.Buffer
	w := checkpoint.NewWriter(&buf)
	w.Section("stats")
	enc(w)
	if err := w.Close(); err != nil {
		t.Fatalf("encode: %v", err)
	}
	r, err := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if err := r.Section("stats"); err != nil {
		t.Fatal(err)
	}
	dec(r)
	if err := r.Close(); err != nil {
		t.Fatalf("decode: %v", err)
	}
}

func TestRunningStateRoundTrip(t *testing.T) {
	var orig Running
	for _, x := range []float64{3, -1, 0.5, 2.25, -7} {
		orig.Add(x)
	}
	var restored Running
	roundTrip(t, orig.EncodeState, restored.DecodeState)
	if !reflect.DeepEqual(orig, restored) {
		t.Fatalf("restored %+v != original %+v", restored, orig)
	}
	// Further observations must produce identical accumulator states.
	orig.Add(1.75)
	restored.Add(1.75)
	if !reflect.DeepEqual(orig, restored) {
		t.Fatalf("post-restore Add diverged: %+v vs %+v", restored, orig)
	}
}

// TestSampleStateRoundTrip pins the insertion order: Mean sums the xs in
// the order they were added, so the restored sample must preserve it (and
// the sorted flag) exactly.
func TestSampleStateRoundTrip(t *testing.T) {
	var orig Sample
	for _, x := range []float64{0.3, 0.1, 0.2, 1e-17, 1.0} {
		orig.Add(x)
	}
	for _, sorted := range []bool{false, true} {
		if sorted {
			orig.Quantile(0.5) // forces the sort
		}
		var restored Sample
		roundTrip(t, orig.EncodeState, restored.DecodeState)
		if !reflect.DeepEqual(orig, restored) {
			t.Fatalf("sorted=%v: restored %+v != original %+v", sorted, restored, orig)
		}
		if orig.Mean() != restored.Mean() {
			t.Fatalf("sorted=%v: Mean diverged", sorted)
		}
	}
}

func TestTimeWeightedStateRoundTrip(t *testing.T) {
	var orig TimeWeighted
	orig.Observe(1.0, 2)
	orig.Observe(1.5, 3)
	orig.Observe(4.25, 0)
	var restored TimeWeighted
	roundTrip(t, orig.EncodeState, restored.DecodeState)
	if !reflect.DeepEqual(orig, restored) {
		t.Fatalf("restored %+v != original %+v", restored, orig)
	}
	orig.Finish(10)
	restored.Finish(10)
	if !reflect.DeepEqual(orig, restored) {
		t.Fatalf("post-restore Finish diverged: %+v vs %+v", restored, orig)
	}
}
