// Package stats provides the streaming and batch statistics used to report
// simulation results: Welford running moments (Running), raw-sample
// quantiles (Sample), fixed-bin histograms, Student-t confidence
// intervals for the handful-of-replications case, and time-weighted
// averages of piecewise-constant signals (TimeWeighted).
//
// Zero values are ready to use, and every accessor is total: empty
// accumulators report 0 rather than NaN, because the simulator prints
// these values verbatim into tables and CSV files (see the edge-case
// tests in internal/sim). Accumulators are not safe for concurrent
// mutation; Running.Merge supports parallel reduction instead.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates streaming mean and variance with Welford's algorithm.
// The zero value is ready to use.
type Running struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.n++
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// AddN incorporates x as if it had been observed k times.
func (r *Running) AddN(x float64, k int64) {
	for i := int64(0); i < k; i++ {
		r.Add(x)
	}
}

// Merge combines another accumulator into r (parallel reduction).
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	n := r.n + o.n
	delta := o.mean - r.mean
	mean := r.mean + delta*float64(o.n)/float64(n)
	m2 := r.m2 + o.m2 + delta*delta*float64(r.n)*float64(o.n)/float64(n)
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n, r.mean, r.m2 = n, mean, m2
}

// Count returns the number of observations.
func (r *Running) Count() int64 { return r.n }

// Mean returns the sample mean (0 when empty).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance (0 with fewer than 2 samples).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation (0 when empty).
func (r *Running) Min() float64 {
	if r.n == 0 {
		return 0
	}
	return r.min
}

// Max returns the largest observation (0 when empty).
func (r *Running) Max() float64 {
	if r.n == 0 {
		return 0
	}
	return r.max
}

// StdErr returns the standard error of the mean.
func (r *Running) StdErr() float64 {
	if r.n < 2 {
		return 0
	}
	return r.StdDev() / math.Sqrt(float64(r.n))
}

// ConfidenceInterval95 returns the half-width of an approximate 95%
// confidence interval for the mean using the normal critical value. For the
// handful-of-replications case the Student-t value for n-1 degrees of freedom
// is used instead (table up to 30 df).
func (r *Running) ConfidenceInterval95() float64 {
	if r.n < 2 {
		return 0
	}
	return tCritical95(int(r.n-1)) * r.StdErr()
}

// tCritical95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom (falls back to 1.96 for df > 30).
func tCritical95(df int) float64 {
	table := []float64{
		0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
		2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
		2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df <= 0 {
		return math.NaN()
	}
	if df < len(table) {
		return table[df]
	}
	return 1.96
}

// String summarises the accumulator.
func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		r.n, r.Mean(), r.StdDev(), r.Min(), r.Max())
}

// Sample collects raw observations for quantile computation.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.xs) }

// Mean returns the sample mean (0 when empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range s.xs {
		t += x
	}
	return t / float64(len(s.xs))
}

// Quantile returns the q-th quantile (0 <= q <= 1) using linear
// interpolation between order statistics. Returns 0 when empty.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Values returns a copy of the collected observations.
func (s *Sample) Values() []float64 {
	return append([]float64(nil), s.xs...)
}

// Histogram is a fixed-width bin histogram over [Lo, Hi); observations
// outside the range are counted in the under/overflow bins.
type Histogram struct {
	Lo, Hi    float64
	Bins      []int64
	Under     int64
	Over      int64
	totalObs  int64
	sumValues float64
}

// NewHistogram creates a histogram with n bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.totalObs++
	h.sumValues += x
	if x < h.Lo {
		h.Under++
		return
	}
	if x >= h.Hi {
		h.Over++
		return
	}
	idx := int(float64(len(h.Bins)) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx >= len(h.Bins) {
		idx = len(h.Bins) - 1
	}
	h.Bins[idx]++
}

// Count returns the total number of observations including overflow.
func (h *Histogram) Count() int64 { return h.totalObs }

// Mean returns the mean of all observations (including out-of-range ones).
func (h *Histogram) Mean() float64 {
	if h.totalObs == 0 {
		return 0
	}
	return h.sumValues / float64(h.totalObs)
}

// BinCenter returns the centre of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	return h.Lo + w*(float64(i)+0.5)
}

// Fraction returns the fraction of in-range observations falling in bin i.
func (h *Histogram) Fraction(i int) float64 {
	inRange := h.totalObs - h.Under - h.Over
	if inRange == 0 {
		return 0
	}
	return float64(h.Bins[i]) / float64(inRange)
}

// TimeWeighted accumulates the time average of a piecewise-constant signal,
// e.g. the number of active bursts or the cell loading over simulated time.
type TimeWeighted struct {
	lastT    float64
	lastV    float64
	area     float64
	duration float64
	started  bool
}

// Observe records that the signal took value v starting at time t. The value
// is held until the next Observe or Finish call.
func (tw *TimeWeighted) Observe(t, v float64) {
	if tw.started && t > tw.lastT {
		dt := t - tw.lastT
		tw.area += tw.lastV * dt
		tw.duration += dt
	}
	tw.lastT = t
	tw.lastV = v
	tw.started = true
}

// Finish closes the signal at time t (holding the last observed value).
func (tw *TimeWeighted) Finish(t float64) {
	if tw.started && t > tw.lastT {
		dt := t - tw.lastT
		tw.area += tw.lastV * dt
		tw.duration += dt
		tw.lastT = t
	}
}

// Mean returns the time-weighted average observed so far.
func (tw *TimeWeighted) Mean() float64 {
	if tw.duration == 0 {
		return 0
	}
	return tw.area / tw.duration
}

// Duration returns the total observed duration.
func (tw *TimeWeighted) Duration() float64 { return tw.duration }
