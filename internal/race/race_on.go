//go:build race

// Package race reports whether the race detector is active, so
// allocation-regression tests can skip themselves under `go test -race`
// (the race runtime allocates on its own and would make
// testing.AllocsPerRun counts meaningless).
package race

// Enabled is true when the binary was built with -race.
const Enabled = true
