// Package mac implements the cdma2000 packet-data MAC state machine of the
// paper's Figure 3 and the set-up delay penalty of equations (22)-(23): a
// data user whose burst request waits too long falls from the Active state
// through Control-Hold into Suspended/Dormant, and re-establishing the
// dedicated channels from those states adds a fixed set-up delay (D1 or D2)
// to the burst's overall request delay w_j = t_w + D_s.
package mac

import (
	"errors"
	"fmt"
)

// State is a cdma2000 packet-data MAC state.
type State int

const (
	// Active: dedicated traffic and control channels are up; a burst can
	// start at the next frame boundary with no extra set-up delay.
	Active State = iota
	// ControlHold: the dedicated control channel is maintained but the
	// traffic channel has been released; resuming costs D1.
	ControlHold
	// Suspended: only the state information is kept; both channels must be
	// re-established, costing D2.
	Suspended
	// Dormant: everything has been torn down; a full origination is needed,
	// also costing D2 in the paper's two-level penalty model.
	Dormant
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Active:
		return "Active"
	case ControlHold:
		return "ControlHold"
	case Suspended:
		return "Suspended"
	case Dormant:
		return "Dormant"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Config holds the MAC timers and set-up penalties. T2 and T3 are the
// waiting-time thresholds of equation (23): a request that has waited less
// than T2 pays no set-up delay, one that has waited in [T2, T3) pays D1, and
// one that has waited at least T3 pays D2.
type Config struct {
	T2 float64 // seconds before falling out of Active (Control-Hold timer)
	T3 float64 // seconds before falling into Suspended/Dormant
	D1 float64 // set-up delay to resume from Control-Hold (seconds)
	D2 float64 // set-up delay to resume from Suspended/Dormant (seconds)
}

// DefaultConfig returns the timer values used in the experiments: 2 s to
// Control-Hold, 10 s to Suspended, 0.1 s and 1.0 s set-up penalties
// (representative cdma2000 channel set-up times).
func DefaultConfig() Config {
	return Config{T2: 2, T3: 10, D1: 0.1, D2: 1.0}
}

// Validate reports whether the configuration is consistent.
func (c Config) Validate() error {
	if c.T2 < 0 || c.T3 < c.T2 {
		return errors.New("mac: require 0 <= T2 <= T3")
	}
	if c.D1 < 0 || c.D2 < c.D1 {
		return errors.New("mac: require 0 <= D1 <= D2")
	}
	return nil
}

// SetupDelay returns the MAC set-up delay penalty D_s for a request that has
// been waiting for waitingTime seconds (equation 23).
func (c Config) SetupDelay(waitingTime float64) float64 {
	switch {
	case waitingTime < c.T2:
		return 0
	case waitingTime < c.T3:
		return c.D1
	default:
		return c.D2
	}
}

// OverallDelay returns the overall request delay w_j = t_w + D_s of
// equation (22).
func (c Config) OverallDelay(waitingTime float64) float64 {
	return waitingTime + c.SetupDelay(waitingTime)
}

// StateForWait returns the MAC state a data user has decayed to after
// waiting for waitingTime seconds without being served.
func (c Config) StateForWait(waitingTime float64) State {
	switch {
	case waitingTime < c.T2:
		return Active
	case waitingTime < c.T3:
		return ControlHold
	default:
		return Suspended
	}
}

// Machine tracks the MAC state of one data user over simulated time.
type Machine struct {
	cfg       Config
	state     State
	idleSince float64
	lastTime  float64
}

// NewMachine creates a machine in the Active state at time 0.
func NewMachine(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Machine{cfg: cfg, state: Active}, nil
}

// MustNewMachine is NewMachine but panics on configuration errors.
func MustNewMachine(cfg Config) *Machine {
	m, err := NewMachine(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// State returns the current MAC state.
func (m *Machine) State() State { return m.state }

// Touch records activity (data transmitted or burst granted) at time now:
// the user moves to (or stays in) Active and the idle timer restarts.
func (m *Machine) Touch(now float64) {
	m.state = Active
	m.idleSince = now
	m.lastTime = now
}

// AdvanceTo updates the state to reflect the idle time accumulated by time
// now and returns the resulting state.
func (m *Machine) AdvanceTo(now float64) State {
	if now < m.lastTime {
		return m.state // time cannot run backwards; ignore
	}
	m.lastTime = now
	idle := now - m.idleSince
	switch {
	case idle < m.cfg.T2:
		m.state = Active
	case idle < m.cfg.T3:
		m.state = ControlHold
	default:
		m.state = Suspended
	}
	return m.state
}

// SetupDelayNow returns the set-up delay a burst grant issued at time now
// would incur given the user's current idle time.
func (m *Machine) SetupDelayNow(now float64) float64 {
	if now < m.idleSince {
		return 0
	}
	return m.cfg.SetupDelay(now - m.idleSince)
}

// IdleTime returns how long the user has been idle at time now.
func (m *Machine) IdleTime(now float64) float64 {
	if now < m.idleSince {
		return 0
	}
	return now - m.idleSince
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }
