package mac

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"jabasd/internal/checkpoint"
)

// TestMachineStateRoundTrip drives a machine through its decay timeline,
// snapshots it mid-way and checks that the restored machine's state, set-up
// delays and touch behaviour match the straight-through machine exactly.
func TestMachineStateRoundTrip(t *testing.T) {
	for _, snapAt := range []float64{0.5, 3, 12} {
		m := MustNewMachine(DefaultConfig())
		m.Touch(0.25)
		m.AdvanceTo(snapAt)

		var buf bytes.Buffer
		w := checkpoint.NewWriter(&buf)
		w.Section("mac")
		m.EncodeState(w)
		if err := w.Close(); err != nil {
			t.Fatalf("encode: %v", err)
		}
		restored := MustNewMachine(DefaultConfig())
		r, err := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Section("mac"); err != nil {
			t.Fatal(err)
		}
		restored.DecodeState(r)
		if err := r.Close(); err != nil {
			t.Fatalf("decode: %v", err)
		}

		if !reflect.DeepEqual(m, restored) {
			t.Fatalf("snapAt=%v: restored %+v != original %+v", snapAt, restored, m)
		}
		for _, now := range []float64{snapAt + 0.1, snapAt + 2.5, snapAt + 11} {
			if a, b := m.AdvanceTo(now), restored.AdvanceTo(now); a != b {
				t.Fatalf("snapAt=%v: AdvanceTo(%v) diverged: %v vs %v", snapAt, now, a, b)
			}
			if a, b := m.SetupDelayNow(now), restored.SetupDelayNow(now); a != b {
				t.Fatalf("snapAt=%v: SetupDelayNow(%v) diverged: %v vs %v", snapAt, now, a, b)
			}
		}
		m.Touch(snapAt + 12)
		restored.Touch(snapAt + 12)
		if !reflect.DeepEqual(m, restored) {
			t.Fatalf("snapAt=%v: post-restore Touch diverged", snapAt)
		}
	}
}

func TestMachineDecodeRejectsInvalidState(t *testing.T) {
	var buf bytes.Buffer
	w := checkpoint.NewWriter(&buf)
	w.Section("mac")
	w.Int(99) // no such State
	w.F64(0)
	w.F64(0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Section("mac"); err != nil {
		t.Fatal(err)
	}
	m := MustNewMachine(DefaultConfig())
	m.DecodeState(r)
	if r.Err() == nil || !strings.Contains(r.Err().Error(), "invalid MAC state") {
		t.Fatalf("invalid state not rejected: %v", r.Err())
	}
}
