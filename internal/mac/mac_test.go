package mac

import (
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{T2: -1, T3: 5, D1: 0, D2: 1},
		{T2: 5, T3: 2, D1: 0, D2: 1},
		{T2: 1, T3: 5, D1: -1, D2: 1},
		{T2: 1, T3: 5, D1: 2, D2: 1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d should be invalid: %+v", i, c)
		}
	}
}

func TestSetupDelayThresholds(t *testing.T) {
	c := DefaultConfig() // T2=2, T3=10, D1=0.1, D2=1
	cases := []struct{ wait, want float64 }{
		{0, 0}, {1.99, 0}, {2, 0.1}, {5, 0.1}, {9.99, 0.1}, {10, 1}, {100, 1},
	}
	for _, tc := range cases {
		if got := c.SetupDelay(tc.wait); got != tc.want {
			t.Errorf("SetupDelay(%v) = %v, want %v", tc.wait, got, tc.want)
		}
	}
}

func TestOverallDelay(t *testing.T) {
	c := DefaultConfig()
	if got := c.OverallDelay(1); got != 1 {
		t.Errorf("OverallDelay(1) = %v", got)
	}
	if got := c.OverallDelay(3); got != 3.1 {
		t.Errorf("OverallDelay(3) = %v", got)
	}
	if got := c.OverallDelay(20); got != 21 {
		t.Errorf("OverallDelay(20) = %v", got)
	}
}

func TestOverallDelayMonotoneProperty(t *testing.T) {
	c := DefaultConfig()
	f := func(a, b float64) bool {
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		if a > b {
			a, b = b, a
		}
		return c.OverallDelay(a) <= c.OverallDelay(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStateForWait(t *testing.T) {
	c := DefaultConfig()
	if c.StateForWait(1) != Active {
		t.Error("short waits should stay Active")
	}
	if c.StateForWait(5) != ControlHold {
		t.Error("medium waits should be ControlHold")
	}
	if c.StateForWait(50) != Suspended {
		t.Error("long waits should be Suspended")
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{
		Active: "Active", ControlHold: "ControlHold", Suspended: "Suspended", Dormant: "Dormant",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("String(%d) = %q", s, s.String())
		}
	}
	if State(42).String() == "" {
		t.Error("unknown state should still stringify")
	}
}

func TestMachineLifecycle(t *testing.T) {
	m := MustNewMachine(DefaultConfig())
	if m.State() != Active {
		t.Error("new machine should be Active")
	}
	m.Touch(0)
	if got := m.AdvanceTo(1); got != Active {
		t.Errorf("state after 1 s idle = %v", got)
	}
	if got := m.AdvanceTo(3); got != ControlHold {
		t.Errorf("state after 3 s idle = %v", got)
	}
	if got := m.AdvanceTo(15); got != Suspended {
		t.Errorf("state after 15 s idle = %v", got)
	}
	if d := m.SetupDelayNow(15); d != 1.0 {
		t.Errorf("SetupDelayNow = %v, want 1.0", d)
	}
	if m.IdleTime(15) != 15 {
		t.Errorf("IdleTime = %v", m.IdleTime(15))
	}
	// Activity resets everything.
	m.Touch(20)
	if m.State() != Active || m.SetupDelayNow(20.5) != 0 || m.IdleTime(20.5) != 0.5 {
		t.Error("Touch should reset idle timer and state")
	}
	// Time running backwards is ignored.
	st := m.State()
	if got := m.AdvanceTo(19); got != st {
		t.Error("backwards time should not change state")
	}
	if m.IdleTime(10) != 0 {
		t.Error("IdleTime before idleSince should be 0")
	}
	if m.SetupDelayNow(10) != 0 {
		t.Error("SetupDelayNow before idleSince should be 0")
	}
	if m.Config() != DefaultConfig() {
		t.Error("Config not returned")
	}
}

func TestNewMachineRejectsBadConfig(t *testing.T) {
	if _, err := NewMachine(Config{T2: 5, T3: 1}); err == nil {
		t.Error("expected error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewMachine should panic on bad config")
		}
	}()
	MustNewMachine(Config{T2: 5, T3: 1})
}

func TestSetupDelayMatchesStateSemantics(t *testing.T) {
	// The set-up delay implied by the waiting time must agree with the state
	// the machine decays to: Active -> 0, ControlHold -> D1, Suspended -> D2.
	c := DefaultConfig()
	f := func(w float64) bool {
		if w < 0 {
			w = -w
		}
		d := c.SetupDelay(w)
		switch c.StateForWait(w) {
		case Active:
			return d == 0
		case ControlHold:
			return d == c.D1
		default:
			return d == c.D2
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
