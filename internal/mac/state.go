package mac

import "jabasd/internal/checkpoint"

// EncodeState appends the machine's mutable state (the configuration is
// rebuilt from the scenario, not serialized).
func (m *Machine) EncodeState(w *checkpoint.Writer) {
	w.Int(int(m.state))
	w.F64(m.idleSince)
	w.F64(m.lastTime)
}

// DecodeState restores the state written by EncodeState.
func (m *Machine) DecodeState(rd *checkpoint.Reader) {
	s := State(rd.Int())
	if s < Active || s > Dormant {
		rd.Fail("invalid MAC state %d", int(s))
		return
	}
	m.state = s
	m.idleSince = rd.F64()
	m.lastTime = rd.F64()
}
