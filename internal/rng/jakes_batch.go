package rng

import "math"

// JakesBatch is the structure-of-arrays form of Jakes: the oscillator phases
// and Doppler shifts of many users live in contiguous slices instead of one
// heap object per user, so the frame loop walks flat memory. Constructed
// with SeedUser from the same substream a per-user NewJakes would receive,
// the batch draws the oscillator parameters in the identical order and
// evaluates GainAt with the identical summation order, so its output is
// bit-for-bit the same as the scalar generator's.
type JakesBatch struct {
	users int
	n     int // oscillators per user
	fd    float64
	// Flattened users x n oscillator state; user u owns [u*n, (u+1)*n).
	phases    []float64
	dopplers  []float64
	phasesQ   []float64
	dopplersQ []float64
}

// NewJakesBatch allocates the batch for the given number of users, each with
// n oscillators (n < 1 is promoted to 8, matching NewJakes) and maximum
// Doppler frequency fd in Hz. Every user must be seeded with SeedUser before
// evaluation.
func NewJakesBatch(users, n int, fd float64) *JakesBatch {
	if n < 1 {
		n = 8
	}
	return &JakesBatch{
		users:     users,
		n:         n,
		fd:        fd,
		phases:    make([]float64, users*n),
		dopplers:  make([]float64, users*n),
		phasesQ:   make([]float64, users*n),
		dopplersQ: make([]float64, users*n),
	}
}

// Doppler returns the maximum Doppler frequency of the processes in Hz.
func (b *JakesBatch) Doppler() float64 { return b.fd }

// SeedUser draws user u's oscillator parameters from src in exactly the
// order NewJakes would, so a batch seeded from the same substreams
// reproduces the per-user generators bit for bit.
func (b *JakesBatch) SeedUser(u int, src *Source) {
	off := u * b.n
	for i := 0; i < b.n; i++ {
		alphaI := src.Uniform(0, 2*math.Pi)
		alphaQ := src.Uniform(0, 2*math.Pi)
		b.dopplers[off+i] = 2 * math.Pi * b.fd * math.Cos(alphaI)
		b.dopplersQ[off+i] = 2 * math.Pi * b.fd * math.Cos(alphaQ)
		b.phases[off+i] = src.Uniform(0, 2*math.Pi)
		b.phasesQ[off+i] = src.Uniform(0, 2*math.Pi)
	}
}

// GainAt returns user u's complex channel gain at time t seconds, summing
// the oscillators in the same order as Jakes.GainAt.
func (b *JakesBatch) GainAt(u int, t float64) (i, q float64) {
	off := u * b.n
	norm := math.Sqrt(1 / float64(b.n))
	for k := 0; k < b.n; k++ {
		i += math.Cos(b.dopplers[off+k]*t + b.phases[off+k])
		q += math.Cos(b.dopplersQ[off+k]*t + b.phasesQ[off+k])
	}
	return i * norm, q * norm
}

// PowerAt returns user u's instantaneous power gain |h(t)|^2 with unit mean.
func (b *JakesBatch) PowerAt(u int, t float64) float64 {
	i, q := b.GainAt(u, t)
	return i*i + q*q
}
