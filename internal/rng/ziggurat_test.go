package rng

import (
	"math"
	"testing"
)

// TestStdNormalFastMoments pins the first four moments of the ziggurat
// sampler against the standard normal's (0, 1, 0, 3) within Monte-Carlo
// tolerances for the sample size.
func TestStdNormalFastMoments(t *testing.T) {
	src := New(12345)
	const n = 2_000_000
	var s1, s2, s3, s4 float64
	for i := 0; i < n; i++ {
		x := src.StdNormalFast()
		s1 += x
		s2 += x * x
		s3 += x * x * x
		s4 += x * x * x * x
	}
	mean := s1 / n
	variance := s2/n - mean*mean
	skew := s3 / n
	kurt := s4 / n
	if math.Abs(mean) > 0.005 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.01 {
		t.Errorf("variance = %v, want ~1", variance)
	}
	if math.Abs(skew) > 0.02 {
		t.Errorf("third moment = %v, want ~0", skew)
	}
	if math.Abs(kurt-3) > 0.1 {
		t.Errorf("fourth moment = %v, want ~3", kurt)
	}
}

// TestStdNormalFastTail checks the tail algorithm fires and produces the
// right exceedance probability beyond the ziggurat tail start.
func TestStdNormalFastTail(t *testing.T) {
	src := New(999)
	const n = 4_000_000
	beyond := 0
	for i := 0; i < n; i++ {
		if math.Abs(src.StdNormalFast()) > zigR {
			beyond++
		}
	}
	// P(|X| > 3.4426...) = 2*Q(3.4426) = 5.758e-4.
	want := 5.758e-4
	got := float64(beyond) / n
	if got < want/1.5 || got > want*1.5 {
		t.Errorf("tail fraction beyond %.3f = %.3e, want ~%.3e", zigR, got, want)
	}
}

// TestStdNormalFastHistogram compares a coarse histogram of the sampler
// against the normal CDF: a cheap goodness-of-fit guard on the body of the
// distribution, where an indexing bug in the layer tables would show up.
func TestStdNormalFastHistogram(t *testing.T) {
	src := New(7)
	const n = 1_000_000
	edges := []float64{-2, -1, -0.5, 0, 0.5, 1, 2}
	counts := make([]int, len(edges)+1)
	for i := 0; i < n; i++ {
		x := src.StdNormalFast()
		j := 0
		for j < len(edges) && x > edges[j] {
			j++
		}
		counts[j]++
	}
	cdf := func(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }
	prev := 0.0
	for j := range counts {
		var p float64
		if j < len(edges) {
			p = cdf(edges[j]) - prev
			prev = cdf(edges[j])
		} else {
			p = 1 - prev
		}
		got := float64(counts[j]) / n
		if math.Abs(got-p) > 0.004 {
			t.Errorf("bin %d: frequency %.4f, want %.4f (normal)", j, got, p)
		}
	}
}

// TestStdNormalFastDeterministic pins that the sampler is reproducible for a
// fixed seed.
func TestStdNormalFastDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.StdNormalFast(), b.StdNormalFast(); x != y {
			t.Fatalf("draw %d: %v != %v for identical seeds", i, x, y)
		}
	}
}

func BenchmarkStdNormalFast(b *testing.B) {
	src := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += src.StdNormalFast()
	}
	_ = sink
}

func BenchmarkStdNormalBoxMuller(b *testing.B) {
	src := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += src.StdNormal()
	}
	_ = sink
}
