package rng

import (
	"testing"

	"jabasd/internal/race"
)

// TestJakesBatchMatchesScalar pins the SoA batch bit-for-bit against the
// per-user Jakes generators when both are seeded from identical substreams:
// the differential gate the engine's exact mode relies on.
func TestJakesBatchMatchesScalar(t *testing.T) {
	const users, n, fd = 9, 16, 55.0
	parent := New(77)
	scalars := make([]*Jakes, users)
	batch := NewJakesBatch(users, n, fd)
	for u := 0; u < users; u++ {
		src := parent.Split(uint64(u))
		scalars[u] = NewJakes(src, n, fd)
	}
	parent.Reseed(77)
	// Reconstruct the identical substreams for the batch. Split draws from
	// the parent, so the replay below must mirror the loop above exactly.
	for u := 0; u < users; u++ {
		src := parent.Split(uint64(u))
		batch.SeedUser(u, src)
	}
	for u := 0; u < users; u++ {
		for f := 0; f < 50; f++ {
			tt := float64(f) * 0.02
			si, sq := scalars[u].GainAt(tt)
			bi, bq := batch.GainAt(u, tt)
			if si != bi || sq != bq {
				t.Fatalf("user %d t=%v: batch gain (%v,%v) != scalar (%v,%v)", u, tt, bi, bq, si, sq)
			}
			if sp, bp := scalars[u].PowerAt(tt), batch.PowerAt(u, tt); sp != bp {
				t.Fatalf("user %d t=%v: batch power %v != scalar %v", u, tt, bp, sp)
			}
		}
	}
}

// TestJakesBatchOscillatorPromotion mirrors NewJakes' n < 1 -> 8 promotion.
func TestJakesBatchOscillatorPromotion(t *testing.T) {
	b := NewJakesBatch(2, 0, 10)
	if b.n != 8 {
		t.Fatalf("oscillators = %d, want 8", b.n)
	}
	if b.Doppler() != 10 {
		t.Fatalf("Doppler = %v, want 10", b.Doppler())
	}
}

// TestJakesBatchPowerAtAllocationFree gates the SoA fading kernel: PowerAt
// reads the per-user oscillator banks in place and must never allocate.
// Skips under -race, whose runtime allocates on its own.
func TestJakesBatchPowerAtAllocationFree(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	const users = 8
	parent := New(5)
	batch := NewJakesBatch(users, 16, 55)
	for u := 0; u < users; u++ {
		batch.SeedUser(u, parent.Split(uint64(u)))
	}
	if allocs := testing.AllocsPerRun(200, func() {
		for u := 0; u < users; u++ {
			batch.PowerAt(u, 1.25)
		}
	}); allocs != 0 {
		t.Errorf("JakesBatch.PowerAt allocated %v times per call set, want 0", allocs)
	}
}
