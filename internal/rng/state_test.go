package rng

import (
	"bytes"
	"math"
	"testing"

	"jabasd/internal/checkpoint"
)

// TestSourceStateRoundTrip checks that a decoded source continues its
// stream bit for bit — including the cached Box-Muller spare, so the parity
// of prior StdNormal calls is part of the state.
func TestSourceStateRoundTrip(t *testing.T) {
	for _, normals := range []int{0, 1, 2, 7} {
		src := New(12345)
		for i := 0; i < 50; i++ {
			src.Uint64()
		}
		for i := 0; i < normals; i++ {
			src.StdNormal()
		}

		var buf bytes.Buffer
		w := checkpoint.NewWriter(&buf)
		w.Section("rng")
		src.EncodeState(w)
		if err := w.Close(); err != nil {
			t.Fatalf("encode: %v", err)
		}

		restored := New(999) // deliberately different state, fully overwritten
		r, err := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("NewReader: %v", err)
		}
		if err := r.Section("rng"); err != nil {
			t.Fatal(err)
		}
		restored.DecodeState(r)
		if err := r.Close(); err != nil {
			t.Fatalf("decode: %v", err)
		}

		for i := 0; i < 100; i++ {
			if a, b := src.StdNormal(), restored.StdNormal(); math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("normals=%d: StdNormal diverged at draw %d: %v vs %v", normals, i, a, b)
			}
			if a, b := src.Uint64(), restored.Uint64(); a != b {
				t.Fatalf("normals=%d: Uint64 diverged at draw %d: %#x vs %#x", normals, i, a, b)
			}
		}
	}
}
