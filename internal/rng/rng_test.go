package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds agree too often: %d/100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split children agree too often: %d/100", same)
	}
}

func TestSplitReproducible(t *testing.T) {
	mk := func() *Source { return New(99).Split(5) }
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not reproducible")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestUniformRange(t *testing.T) {
	r := New(13)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-3, 9)
		if v < -3 || v >= 9 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(17)
	n := 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Normal(2, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Errorf("normal mean = %v, want ~2", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Errorf("normal variance = %v, want ~9", variance)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(19)
	n := 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exponential(4)
	}
	mean := sum / float64(n)
	if math.Abs(mean-4) > 0.1 {
		t.Errorf("exponential mean = %v, want ~4", mean)
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exponential(0) should panic")
		}
	}()
	New(1).Exponential(0)
}

func TestRayleighPowerUnitMean(t *testing.T) {
	r := New(23)
	n := 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.RayleighPower()
	}
	mean := sum / float64(n)
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("Rayleigh power mean = %v, want ~1", mean)
	}
}

func TestRayleighEnvelopeMoments(t *testing.T) {
	r := New(29)
	n := 200000
	sumsq := 0.0
	for i := 0; i < n; i++ {
		v := r.Rayleigh(1)
		sumsq += v * v
	}
	// E[X^2] = 2 sigma^2 = 2.
	meansq := sumsq / float64(n)
	if math.Abs(meansq-2) > 0.05 {
		t.Errorf("Rayleigh second moment = %v, want ~2", meansq)
	}
}

func TestLogNormalDBMedian(t *testing.T) {
	r := New(31)
	n := 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNormalDB(0, 8)
	}
	// Median of a 0-dB-mean lognormal is 1 in linear scale; test via counting.
	below := 0
	for _, v := range vals {
		if v < 1 {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("lognormal median fraction below 1 = %v, want ~0.5", frac)
	}
}

func TestParetoBounds(t *testing.T) {
	r := New(37)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(1.2, 100)
		if v < 100 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
}

func TestParetoMean(t *testing.T) {
	r := New(41)
	alpha, xm := 2.5, 10.0
	want := alpha * xm / (alpha - 1)
	n := 300000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Pareto(alpha, xm)
	}
	mean := sum / float64(n)
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("Pareto mean = %v, want ~%v", mean, want)
	}
}

func TestBoundedPareto(t *testing.T) {
	r := New(43)
	for i := 0; i < 10000; i++ {
		v := r.BoundedPareto(1.1, 10, 1000)
		if v < 10 || v > 1000 {
			t.Fatalf("BoundedPareto out of range: %v", v)
		}
	}
	if got := New(1).BoundedPareto(1.1, 10, 5); got != 10 {
		t.Errorf("BoundedPareto with cap < xm = %v, want xm", got)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(47)
	for _, mean := range []float64{0.5, 3, 20, 100} {
		n := 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean)/math.Max(mean, 1) > 0.05 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
	if New(1).Poisson(0) != 0 {
		t.Error("Poisson(0) should be 0")
	}
	if New(1).Poisson(-1) != 0 {
		t.Error("Poisson(-1) should be 0")
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(53)
	n := 100000
	count := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			count++
		}
	}
	frac := float64(count) / float64(n)
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency = %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(59)
	f := func(seed uint64) bool {
		p := New(seed).Perm(20)
		seen := make(map[int]bool)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(seen) == 20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
	_ = r
}

func TestFloat64OpenNeverZero(t *testing.T) {
	r := New(61)
	for i := 0; i < 100000; i++ {
		if r.Float64Open() == 0 {
			t.Fatal("Float64Open returned 0")
		}
	}
}

func TestJakesUnitMeanPower(t *testing.T) {
	src := New(71)
	j := NewJakes(src, 16, 30)
	n := 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += j.PowerAt(float64(i) * 0.01)
	}
	mean := sum / float64(n)
	if mean < 0.7 || mean > 1.3 {
		t.Errorf("Jakes mean power = %v, want ~1", mean)
	}
}

func TestJakesTemporalCorrelation(t *testing.T) {
	src := New(73)
	j := NewJakes(src, 16, 10) // 10 Hz Doppler => coherence ~ 40 ms
	// Samples 1 ms apart should be highly correlated; samples 1 s apart much less.
	p0 := j.PowerAt(0)
	pClose := j.PowerAt(0.0005)
	if math.Abs(p0-pClose) > 0.5*math.Max(p0, 1e-9)+0.2 {
		t.Errorf("Jakes power changed too fast over 0.5 ms: %v -> %v", p0, pClose)
	}
	// Envelope should vary substantially over many coherence times.
	min, max := math.Inf(1), math.Inf(-1)
	for i := 0; i < 1000; i++ {
		p := j.PowerAt(float64(i) * 0.05)
		if p < min {
			min = p
		}
		if p > max {
			max = p
		}
	}
	if max/math.Max(min, 1e-12) < 10 {
		t.Errorf("Jakes fading range too small: min=%v max=%v", min, max)
	}
}

func TestJakesDefaultOscillators(t *testing.T) {
	j := NewJakes(New(1), 0, 5)
	if len(j.phases) != 8 {
		t.Errorf("default oscillator count = %d, want 8", len(j.phases))
	}
	if j.Doppler() != 5 {
		t.Errorf("Doppler() = %v", j.Doppler())
	}
}

func TestParetoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pareto with bad params should panic")
		}
	}()
	New(1).Pareto(0, 1)
}
