package rng

import "math"

// Ziggurat sampler for the standard normal distribution (Marsaglia & Tsang,
// 2000), used by the simulator's fast shadowing kernel. One draw costs a
// single Uint64 plus a table lookup in ~98.9% of calls, versus Box-Muller's
// log/sqrt/sincos; the price is that StdNormalFast consumes the underlying
// uniform stream differently from StdNormal, so a given Source must stick to
// one of the two to stay reproducible. The engine's exact reference path
// (-exact-vtaoc) keeps Box-Muller; the fast path uses this sampler on its
// own dedicated shadowing substreams.

const zigLayers = 128

// zigR is the start of the tail region, chosen with the layer areas so the
// 128 rectangles cover the half-normal density exactly.
const zigR = 3.442619855899

var (
	// zigX[i] is the right edge of rectangle i; zigX[0] > zigR covers the
	// tail's area, zigX[zigLayers] = 0.
	zigX [zigLayers + 1]float64
	// zigF[i] = exp(-zigX[i]^2/2), the density at the rectangle edges.
	zigF [zigLayers + 1]float64
)

func init() {
	const v = 9.91256303526217e-3 // area of each rectangle (and of the tail)
	f := math.Exp(-0.5 * zigR * zigR)
	zigX[0] = v / f
	zigX[1] = zigR
	for i := 2; i < zigLayers; i++ {
		x := math.Sqrt(-2 * math.Log(v/zigX[i-1]+math.Exp(-0.5*zigX[i-1]*zigX[i-1])))
		zigX[i] = x
	}
	zigX[zigLayers] = 0
	for i := 0; i <= zigLayers; i++ {
		zigF[i] = math.Exp(-0.5 * zigX[i] * zigX[i])
	}
}

// StdNormalFast returns a standard Gaussian variate using the ziggurat
// method. It is distribution-equivalent to StdNormal but draws a different
// number of uniforms per variate, so do not mix the two on one Source when
// reproducibility matters.
func (r *Source) StdNormalFast() float64 {
	for {
		u := r.Uint64()
		i := int(u & (zigLayers - 1))
		// 53-bit uniform in [0, 1) from the remaining high bits.
		f := float64(u>>11) / (1 << 53)
		x := f * zigX[i]
		if x < zigX[i+1] {
			// Inside the next rectangle, accept without evaluating the
			// density: the common case. The sign bit (bit 7 of u) is
			// applied with an OR into the IEEE sign position rather than a
			// branch — it is a fair coin, so a branch here would mispredict
			// half the time in the frame loop's hottest call.
			return math.Float64frombits(math.Float64bits(x) | (u&zigLayers)<<56)
		}
		neg := u&zigLayers != 0
		if i == 0 {
			// Tail beyond zigR: Marsaglia's exact tail algorithm.
			for {
				x = -math.Log(r.Float64Open()) / zigR
				y := -math.Log(r.Float64Open())
				if y+y > x*x {
					x += zigR
					if neg {
						return -x
					}
					return x
				}
			}
		}
		// Wedge between the rectangles: accept against the true density.
		if zigF[i]+r.Float64()*(zigF[i+1]-zigF[i]) < math.Exp(-0.5*x*x) {
			if neg {
				return -x
			}
			return x
		}
	}
}

// NormalFast returns a Gaussian variate with the given mean and standard
// deviation using the ziggurat sampler.
func (r *Source) NormalFast(mean, stddev float64) float64 {
	return mean + stddev*r.StdNormalFast()
}
