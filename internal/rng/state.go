package rng

import "jabasd/internal/checkpoint"

// EncodeState appends the source's complete mutable state — the xoshiro
// words and the cached Box-Muller spare — so a decoded source continues the
// stream bit for bit.
func (r *Source) EncodeState(w *checkpoint.Writer) {
	for _, s := range r.s {
		w.U64(s)
	}
	w.F64(r.spare)
	w.Bool(r.hasSpare)
}

// DecodeState restores the state written by EncodeState.
func (r *Source) DecodeState(rd *checkpoint.Reader) {
	for i := range r.s {
		r.s[i] = rd.U64()
	}
	r.spare = rd.F64()
	r.hasSpare = rd.Bool()
}
