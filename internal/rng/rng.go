// Package rng provides a deterministic, splittable pseudo random number
// generator and the distributions required by the JABA-SD dynamic simulator:
// uniform, Gaussian, lognormal shadowing, exponential, Rayleigh fading
// envelopes, Pareto burst sizes and Poisson arrivals.
//
// The generator is xoshiro256** seeded via splitmix64. Each simulated entity
// (user, cell, traffic source) obtains its own independent substream through
// Split, so simulation results are reproducible for a given master seed
// regardless of goroutine scheduling.
//
// A Source value is NOT safe for concurrent use; split a child per goroutine.
package rng

import "math"

// Source is a deterministic xoshiro256** pseudo random number generator.
// The zero value is not usable; construct one with New or Split.
type Source struct {
	s [4]uint64
	// spare holds a cached second Gaussian variate from Box-Muller.
	spare    float64
	hasSpare bool
}

// splitmix64 advances the seed expander and returns the next 64-bit value.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded deterministically from seed.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed resets the source in place to exactly the state New(seed) produces,
// discarding any cached Gaussian spare. It lets long-lived sources (e.g. a
// per-worker scheduler stream) be re-derived per task without allocating.
func (r *Source) Reseed(seed uint64) {
	st := seed
	for i := range r.s {
		r.s[i] = splitmix64(&st)
	}
	// Avoid the (astronomically unlikely) all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	r.spare = 0
	r.hasSpare = false
}

// Split derives an independent child stream from the parent. The child's
// sequence is decorrelated from the parent's by hashing a fresh draw together
// with the stream index, so Split(i) and Split(j) differ for i != j and
// repeated Split calls with the same index after the same parent history are
// reproducible.
func (r *Source) Split(index uint64) *Source {
	mix := r.Uint64() ^ (index * 0x9e3779b97f4a7c15) ^ 0xd1b54a32d192ed03
	return New(mix)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 bits from the stream.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform variate in (0, 1), never exactly zero, which
// is convenient for logarithmic transforms.
func (r *Source) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform variate in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bernoulli returns true with probability p.
func (r *Source) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Normal returns a Gaussian variate with the given mean and standard
// deviation, generated with the Box-Muller transform.
func (r *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.StdNormal()
}

// StdNormal returns a standard Gaussian variate.
func (r *Source) StdNormal() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	u1 := r.Float64Open()
	u2 := r.Float64()
	mag := math.Sqrt(-2 * math.Log(u1))
	z0 := mag * math.Cos(2*math.Pi*u2)
	z1 := mag * math.Sin(2*math.Pi*u2)
	r.spare = z1
	r.hasSpare = true
	return z0
}

// LogNormalDB returns a lognormal shadowing gain (linear scale) whose
// decibel value is Gaussian with the given mean and standard deviation in dB.
// This is the standard model for long-term shadowing.
func (r *Source) LogNormalDB(meanDB, sigmaDB float64) float64 {
	return math.Pow(10, r.Normal(meanDB, sigmaDB)/10)
}

// Exponential returns an exponential variate with the given mean (> 0).
func (r *Source) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exponential with non-positive mean")
	}
	return -mean * math.Log(r.Float64Open())
}

// Rayleigh returns a Rayleigh-distributed envelope with scale sigma, i.e. the
// magnitude of a complex Gaussian with per-component standard deviation
// sigma. The mean power (second moment) is 2*sigma^2.
func (r *Source) Rayleigh(sigma float64) float64 {
	return sigma * math.Sqrt(-2*math.Log(r.Float64Open()))
}

// RayleighPower returns an exponentially distributed power gain with unit
// mean, i.e. the squared magnitude of a normalised Rayleigh fading channel.
func (r *Source) RayleighPower() float64 {
	return -math.Log(r.Float64Open())
}

// Pareto returns a Pareto variate with shape alpha (> 0) and minimum xm (> 0).
// Pareto burst sizes model the heavy-tailed WWW document sizes used by the
// packet data traffic model.
func (r *Source) Pareto(alpha, xm float64) float64 {
	if alpha <= 0 || xm <= 0 {
		panic("rng: Pareto requires positive alpha and xm")
	}
	return xm / math.Pow(r.Float64Open(), 1/alpha)
}

// BoundedPareto returns a Pareto variate truncated to [xm, cap] by rejection.
func (r *Source) BoundedPareto(alpha, xm, cap float64) float64 {
	if cap <= xm {
		return xm
	}
	for i := 0; i < 64; i++ {
		v := r.Pareto(alpha, xm)
		if v <= cap {
			return v
		}
	}
	return cap
}

// Poisson returns a Poisson variate with the given mean using Knuth's
// algorithm for small means and a normal approximation for large means.
func (r *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		v := r.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Shuffle permutes the first n indices in place via swap, using the
// Fisher-Yates algorithm.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
