package rng

import "math"

// Jakes is a sum-of-sinusoids Rayleigh fading process generator following the
// classic Jakes/Clarke model. It produces a temporally correlated complex
// channel gain whose envelope is Rayleigh distributed and whose Doppler
// spectrum has maximum frequency fd (Hz).
//
// The fast fading component X_f(t) of the paper's combined channel
// X(t) = X_l(t) * X_f(t) is generated from a Jakes process; the power gain
// returned by PowerAt has unit mean so it can multiply the long-term
// (path loss x shadowing) gain directly.
type Jakes struct {
	fd        float64 // maximum Doppler frequency in Hz
	phases    []float64
	dopplers  []float64
	phasesQ   []float64
	dopplersQ []float64
}

// NewJakes creates a Jakes fading generator with n oscillators (n >= 8 gives
// good Rayleigh statistics), maximum Doppler frequency fd in Hz, and random
// initial phases drawn from src.
func NewJakes(src *Source, n int, fd float64) *Jakes {
	if n < 1 {
		n = 8
	}
	j := &Jakes{
		fd:        fd,
		phases:    make([]float64, n),
		dopplers:  make([]float64, n),
		phasesQ:   make([]float64, n),
		dopplersQ: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		// Random arrival angles give independent Doppler shifts in [-fd, fd].
		alphaI := src.Uniform(0, 2*math.Pi)
		alphaQ := src.Uniform(0, 2*math.Pi)
		j.dopplers[i] = 2 * math.Pi * fd * math.Cos(alphaI)
		j.dopplersQ[i] = 2 * math.Pi * fd * math.Cos(alphaQ)
		j.phases[i] = src.Uniform(0, 2*math.Pi)
		j.phasesQ[i] = src.Uniform(0, 2*math.Pi)
	}
	return j
}

// Doppler returns the maximum Doppler frequency of the process in Hz.
func (j *Jakes) Doppler() float64 { return j.fd }

// GainAt returns the complex channel gain (in-phase, quadrature) at time t
// seconds. Each component is approximately Gaussian with variance 1/2 so the
// mean power is one.
func (j *Jakes) GainAt(t float64) (i, q float64) {
	n := len(j.phases)
	norm := math.Sqrt(1 / float64(n))
	for k := 0; k < n; k++ {
		i += math.Cos(j.dopplers[k]*t + j.phases[k])
		q += math.Cos(j.dopplersQ[k]*t + j.phasesQ[k])
	}
	return i * norm, q * norm
}

// PowerAt returns the instantaneous power gain |h(t)|^2 with unit mean.
func (j *Jakes) PowerAt(t float64) float64 {
	i, q := j.GainAt(t)
	return i*i + q*q
}

// EnvelopeAt returns |h(t)|, the Rayleigh-distributed envelope.
func (j *Jakes) EnvelopeAt(t float64) float64 {
	return math.Sqrt(j.PowerAt(t))
}
