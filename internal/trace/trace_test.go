package trace

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func sample(i int) Record {
	return Record{
		Frame: i, TimeS: float64(i) * 0.02, Cell: i % 3,
		Offered: 2, Admitted: 1, GrantedRatio: 4,
		Completed: 1, DelaySumS: 0.25,
		QueueLen: 1, ActiveBursts: 2, Load: 0.75, Solve: SolveOK,
	}
}

func TestRecorderBuffersAndFlushes(t *testing.T) {
	mem := &Memory{}
	r := NewRecorder(mem, 0)
	if r.Every() != 1 {
		t.Fatalf("every normalised to %d, want 1", r.Every())
	}
	n := ringCapacity + 7
	for i := 0; i < n; i++ {
		r.Emit(sample(i))
	}
	// The ring flushed exactly once (when full); the tail is still buffered.
	if len(mem.Records) != ringCapacity {
		t.Fatalf("before Flush: sink has %d records, want %d", len(mem.Records), ringCapacity)
	}
	if err := r.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if len(mem.Records) != n {
		t.Fatalf("after Flush: sink has %d records, want %d", len(mem.Records), n)
	}
	for i, rec := range mem.Records {
		if rec != sample(i) {
			t.Fatalf("record %d = %+v, want %+v", i, rec, sample(i))
		}
	}
}

func TestRecorderSampling(t *testing.T) {
	r := NewRecorder(&Memory{}, 25)
	for _, tc := range []struct {
		frame int
		want  bool
	}{{0, true}, {1, false}, {24, false}, {25, true}, {50, true}} {
		if got := r.Sampled(tc.frame); got != tc.want {
			t.Errorf("Sampled(%d) = %v, want %v", tc.frame, got, tc.want)
		}
	}
}

type failSink struct{ calls int }

func (f *failSink) Write([]Record) error {
	f.calls++
	return errors.New("disk full")
}

func TestRecorderStickyError(t *testing.T) {
	sink := &failSink{}
	r := NewRecorder(sink, 1)
	for i := 0; i < 3*ringCapacity; i++ {
		r.Emit(sample(i))
	}
	if err := r.Flush(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Flush error = %v, want the sink failure", err)
	}
	if sink.calls != 1 {
		t.Fatalf("sink written %d times after failure, want 1 (sticky error)", sink.calls)
	}
	// A second Flush reports the same error.
	if err := r.Flush(); err == nil {
		t.Fatal("second Flush lost the sticky error")
	}
}

func TestCSVSink(t *testing.T) {
	var sb strings.Builder
	s := NewCSV(&sb)
	if err := s.Write([]Record{sample(0)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Write([]Record{sample(1)}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 rows:\n%s", len(lines), sb.String())
	}
	wantHead := strings.Join(Columns(), ",")
	if lines[0] != wantHead {
		t.Fatalf("header = %q, want %q", lines[0], wantHead)
	}
	if lines[1] != "0,0,0,2,1,4,1,0.25,1,2,0.75,0,0,ok" {
		t.Fatalf("row = %q", lines[1])
	}
	if cols := strings.Split(lines[2], ","); len(cols) != len(Columns()) {
		t.Fatalf("row has %d columns, want %d", len(cols), len(Columns()))
	}
}

func TestJSONLSink(t *testing.T) {
	var sb strings.Builder
	if err := NewJSONL(&sb).Write([]Record{sample(3)}); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSuffix(sb.String(), "\n")
	var got map[string]any
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("invalid JSON %q: %v", line, err)
	}
	if len(got) != len(Columns()) {
		t.Fatalf("object has %d fields, want %d: %q", len(got), len(Columns()), line)
	}
	for _, tc := range []struct {
		key  string
		want any
	}{
		{"frame", 3.0}, {"time_s", 0.06}, {"cell", 0.0},
		{"delay_sum_s", 0.25}, {"solve", "ok"},
	} {
		if got[tc.key] != tc.want {
			t.Errorf("%s = %v, want %v", tc.key, got[tc.key], tc.want)
		}
	}
}

func TestAppendRowMatchesColumns(t *testing.T) {
	row := sample(0).AppendRow(nil)
	if len(row) != len(Columns()) {
		t.Fatalf("AppendRow produced %d cells for %d columns", len(row), len(Columns()))
	}
}
