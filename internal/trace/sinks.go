package trace

import (
	"io"
	"strconv"
	"strings"

	"jabasd/internal/report"
)

// Memory is an in-memory sink: it appends copies of every batch to Records.
// Tests and the transient experiments (E11/E12) consume it directly.
type Memory struct {
	Records []Record
}

// Write implements Sink.
func (m *Memory) Write(records []Record) error {
	m.Records = append(m.Records, records...)
	return nil
}

// CSVSink streams records as CSV rows (report.CSVLine quoting, Columns
// header emitted before the first record), so a trace file diffs cleanly
// against the golden copies under testdata/golden.
type CSVSink struct {
	w          io.Writer
	wroteHead  bool
	rowScratch []string
}

// NewCSV creates a CSV sink writing to w. The caller owns w (and closes it
// after the run flushes).
func NewCSV(w io.Writer) *CSVSink {
	return &CSVSink{w: w, rowScratch: make([]string, 0, len(Columns()))}
}

// Write implements Sink.
func (s *CSVSink) Write(records []Record) error {
	var sb strings.Builder
	if !s.wroteHead {
		sb.WriteString(report.CSVLine(Columns()))
		s.wroteHead = true
	}
	for _, rec := range records {
		s.rowScratch = rec.AppendRow(s.rowScratch[:0])
		sb.WriteString(report.CSVLine(s.rowScratch))
	}
	_, err := io.WriteString(s.w, sb.String())
	return err
}

// JSONLSink streams records as JSON Lines: one object per record with the
// Columns field names, values as JSON numbers/strings. Handy for piping
// into jq or a dataframe loader without a CSV parser.
type JSONLSink struct {
	w io.Writer
}

// NewJSONL creates a JSONL sink writing to w.
func NewJSONL(w io.Writer) *JSONLSink {
	return &JSONLSink{w: w}
}

// Write implements Sink.
func (s *JSONLSink) Write(records []Record) error {
	var sb strings.Builder
	for _, r := range records {
		sb.WriteString(`{"frame":`)
		sb.WriteString(itoa(r.Frame))
		sb.WriteString(`,"time_s":`)
		sb.WriteString(formatFloat(r.TimeS))
		sb.WriteString(`,"cell":`)
		sb.WriteString(itoa(r.Cell))
		sb.WriteString(`,"offered":`)
		sb.WriteString(itoa(r.Offered))
		sb.WriteString(`,"admitted":`)
		sb.WriteString(itoa(r.Admitted))
		sb.WriteString(`,"granted_ratio":`)
		sb.WriteString(itoa(r.GrantedRatio))
		sb.WriteString(`,"completed":`)
		sb.WriteString(itoa(r.Completed))
		sb.WriteString(`,"delay_sum_s":`)
		sb.WriteString(formatFloat(r.DelaySumS))
		sb.WriteString(`,"queue_len":`)
		sb.WriteString(itoa(r.QueueLen))
		sb.WriteString(`,"active_bursts":`)
		sb.WriteString(itoa(r.ActiveBursts))
		sb.WriteString(`,"load":`)
		sb.WriteString(formatFloat(r.Load))
		sb.WriteString(`,"down":`)
		sb.WriteString(itoa(r.Down))
		sb.WriteString(`,"spill":`)
		sb.WriteString(itoa(r.Spill))
		sb.WriteString(`,"solve":"`)
		sb.WriteString(r.Solve) // solve statuses never need JSON escaping
		sb.WriteString("\"}\n")
	}
	_, err := io.WriteString(s.w, sb.String())
	return err
}

func itoa(n int) string { return strconv.Itoa(n) }
