// Package trace is the frame-level telemetry layer of the simulator: a
// low-overhead per-frame, per-cell recorder for the time series the
// end-of-replication aggregates (sim.Metrics) throw away — offered vs
// admitted bursts, granted spreading ratios, cell load, queue length,
// admission solve status and burst-delay samples, frame by frame.
//
// The engine emits one Record per (sampled frame, cell) into a Recorder,
// which buffers them in a preallocated ring and hands full batches to a
// pluggable Sink: Memory for tests and the transient experiments
// (E11/E12), CSV and JSONL writers for the -trace flags of cmd/jabasim
// and cmd/jabasweep. The hot path (Recorder.Emit) is allocation-free —
// records are value structs copied into the ring — and all emission
// happens on the engine's sequential sections, so the stream is
// byte-identical regardless of the snapshot frame mode's worker count,
// like every other simulator output.
//
// Sampling is controlled by the recorder's every parameter (sim.Config's
// TraceEvery): frames whose index is not a multiple of it are not
// recorded at all — the per-frame counters are reset each frame, so a
// sampled row is that frame's activity, not an aggregate since the last
// sample.
package trace

import "strconv"

// Solve status values a cell's admission can end a frame with.
const (
	// SolveIdle means the cell had no live burst requests this frame, so the
	// measurement and scheduling sub-layers never ran.
	SolveIdle = "idle"
	// SolveOK means the cell built its admissible region and solved its
	// scheduling ILP (a solve that grants nothing is still "ok").
	SolveOK = "ok"
	// SolveSkipped means the region build or the scheduler failed and the
	// cell's admission was abandoned for this frame (counted in
	// sim.Metrics.SkippedCells); the queue keeps the requests, so the cell
	// is retried next frame.
	SolveSkipped = "skipped"
	// SolveFallback means the exact scheduler hit its node budget
	// (sim.Config.SolveNodeBudget) and this frame's grants came from the
	// deterministic greedy fallback (counted in sim.Metrics.FallbackSolves).
	SolveFallback = "fallback"
)

// Record is one cell's telemetry for one sampled frame.
type Record struct {
	// Frame is the 0-based frame index; TimeS is the frame's start time in
	// simulated seconds (Frame * FrameLength).
	Frame int
	TimeS float64
	// Cell is the cell index in the layout.
	Cell int
	// Offered is the number of live burst requests the admission layer
	// gathered from the cell's queue this frame (stale entries excluded).
	Offered int
	// Admitted is the number of requests granted a non-zero spreading ratio
	// this frame; GrantedRatio is the sum of those ratios (Σ m_j).
	Admitted     int
	GrantedRatio int
	// Completed counts bursts that finished in this cell this frame;
	// DelaySumS is the sum of their total burst delays in seconds (arrival
	// to last bit), so DelaySumS/Completed is the frame's mean. Unlike
	// sim.Metrics these include the warm-up period — transient analysis is
	// the point of the trace.
	Completed int
	DelaySumS float64
	// QueueLen is the cell's queue length after admission; ActiveBursts the
	// number of ongoing bursts whose request was queued in this cell.
	QueueLen     int
	ActiveBursts int
	// Load is the cell's end-of-frame resource usage as a fraction of its
	// budget (transmit power for the forward link, rise-over-thermal for the
	// reverse link). It can exceed 1 transiently in the snapshot frame mode.
	Load float64
	// Down is 1 while the cell is out of service under the fault schedule
	// (sim.Config.Faults), else 0. Spill counts burst requests migrated
	// INTO this cell's queue this frame from out-of-service cells.
	Down  int
	Spill int
	// Solve is the admission outcome: SolveIdle, SolveOK, SolveFallback or
	// SolveSkipped.
	Solve string
}

// Columns returns the trace schema in record order — the header of the CSV
// sink and the field names of the JSONL sink.
func Columns() []string {
	return []string{
		"frame", "time_s", "cell", "offered", "admitted", "granted_ratio",
		"completed", "delay_sum_s", "queue_len", "active_bursts", "load",
		"down", "spill", "solve",
	}
}

// AppendRow appends the record's fields, formatted, to dst in Columns order.
// Floats use the shortest exact representation so the stream round-trips
// and byte-for-byte determinism checks are meaningful.
func (r Record) AppendRow(dst []string) []string {
	return append(dst,
		strconv.Itoa(r.Frame),
		formatFloat(r.TimeS),
		strconv.Itoa(r.Cell),
		strconv.Itoa(r.Offered),
		strconv.Itoa(r.Admitted),
		strconv.Itoa(r.GrantedRatio),
		strconv.Itoa(r.Completed),
		formatFloat(r.DelaySumS),
		strconv.Itoa(r.QueueLen),
		strconv.Itoa(r.ActiveBursts),
		formatFloat(r.Load),
		strconv.Itoa(r.Down),
		strconv.Itoa(r.Spill),
		r.Solve,
	)
}

func formatFloat(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64)
}

// Sink consumes batches of records. Write is called with a reused buffer:
// implementations must not retain the slice (Memory copies it). A sink is
// only ever written to by one recorder at a time; sharing a sink between
// concurrently running engines is the caller's bug.
type Sink interface {
	Write(records []Record) error
}
