package trace

import "fmt"

// ringCapacity is the recorder's buffered record count. At the baseline
// scenario (19 cells) it holds ~27 frames of full-rate tracing, so the sink
// sees large batches while the buffer stays a few hundred KB.
const ringCapacity = 512

// Recorder buffers records in a fixed-capacity ring and flushes them to its
// sink whenever the ring fills (and on Flush). Emit never allocates: the
// ring is allocated once, records are value copies, and the flush hands the
// sink the filled prefix directly. Errors from the sink are sticky — once a
// write fails the recorder drops further records and Flush reports the
// first failure — so the hot loop never has to check errors per record.
//
// A Recorder is not safe for concurrent use; the engine only emits from its
// sequential sections (commit, collect), which is what makes the trace
// byte-identical for any snapshot-mode worker count.
type Recorder struct {
	sink  Sink
	every int
	ring  []Record
	n     int
	err   error
}

// NewRecorder wraps sink in a recorder that samples every N-th frame
// (every <= 1 records every frame).
func NewRecorder(sink Sink, every int) *Recorder {
	if every < 1 {
		every = 1
	}
	return &Recorder{
		sink:  sink,
		every: every,
		ring:  make([]Record, ringCapacity),
	}
}

// Every returns the sampling period in frames (>= 1).
func (r *Recorder) Every() int { return r.every }

// Sampled reports whether the given frame index should be recorded.
func (r *Recorder) Sampled(frame int) bool { return frame%r.every == 0 }

// Emit buffers one record, flushing to the sink when the ring is full.
func (r *Recorder) Emit(rec Record) {
	if r.err != nil {
		return
	}
	r.ring[r.n] = rec
	r.n++
	if r.n == len(r.ring) {
		r.flush()
	}
}

func (r *Recorder) flush() {
	if r.n == 0 || r.err != nil {
		r.n = 0
		return
	}
	if err := r.sink.Write(r.ring[:r.n]); err != nil {
		r.err = fmt.Errorf("trace: sink write: %w", err)
	}
	r.n = 0
}

// Flush drains the buffered records to the sink and returns the first sink
// error seen over the recorder's lifetime (including earlier ring-full
// flushes). The engine calls it once at the end of the replication.
func (r *Recorder) Flush() error {
	r.flush()
	return r.err
}
