// Package fault defines the deterministic fault-injection schedule the
// simulator can run under: piecewise cell events (full outages and
// transmit-power deratings with a recovery time) and piecewise load events
// (mean reading-time changes generalising the one-shot sim.LoadStep into
// day/night curves and flash crowds). A schedule is pure data — validated,
// JSON-serialisable, and evaluated frame by frame as a pure function of
// simulated time — so every consumer (the engine's admission paths, the
// checkpoint layer, the sweep axis, the experiments) sees exactly the same
// event timeline and the simulator's byte-identical determinism guarantees
// extend through outage frames unchanged.
package fault

import (
	"errors"
	"fmt"
	"sort"
)

// CellEvent is one cell-level fault: between StartSec (inclusive) and
// EndSec (exclusive) the cell is out of service (Derate == 0) or degraded
// to Derate x its forward power budget (0 < Derate < 1). An out-of-service
// cell issues no grants and is excluded from pilot/active-set search; a
// degraded cell keeps serving with the reduced budget.
type CellEvent struct {
	// Cell is the faulted cell's index in the layout.
	Cell int `json:"cell"`
	// StartSec/EndSec bound the fault in simulated seconds; the cell
	// recovers at EndSec. EndSec may exceed the run's SimTime (the fault
	// then lasts to the end), but StartSec must fall inside the run.
	StartSec float64 `json:"start_sec"`
	EndSec   float64 `json:"end_sec"`
	// Derate is the fraction of the forward power budget left to the cell
	// while the event is active: 0 (the default) means full outage, values
	// in (0, 1) mean degraded service.
	Derate float64 `json:"derate,omitempty"`
}

// Outage reports whether the event takes the cell fully out of service.
func (ev CellEvent) Outage() bool { return ev.Derate == 0 }

// active reports whether the event covers simulated time t.
func (ev CellEvent) active(t float64) bool { return t >= ev.StartSec && t < ev.EndSec }

// LoadEvent is one step of a piecewise offered-load curve: at AtSec every
// data source switches its mean reading (think) time to ReadingTimeSec,
// exactly like sim.LoadStep (the remaining think time is rescaled, so the
// step takes effect immediately). A descending sequence of reading times
// models a flash crowd building; an alternating one models a day/night
// curve.
type LoadEvent struct {
	AtSec          float64 `json:"at_sec"`
	ReadingTimeSec float64 `json:"reading_time_sec"`
}

// Schedule is a complete fault-injection timetable. The zero value (or nil)
// injects nothing.
type Schedule struct {
	// Cells holds the cell outage/derate events. Events on the same cell
	// must not overlap; events on different cells may.
	Cells []CellEvent `json:"cells,omitempty"`
	// Load holds the offered-load curve, in strictly ascending AtSec order.
	Load []LoadEvent `json:"load,omitempty"`
}

// Empty reports whether the schedule injects nothing.
func (s *Schedule) Empty() bool {
	return s == nil || (len(s.Cells) == 0 && len(s.Load) == 0)
}

// Validate checks the schedule against a layout of numCells cells and a run
// of simTimeSec simulated seconds. Every violation is reported, joined into
// one error, matching sim.Config.Validate's all-errors style.
func (s *Schedule) Validate(numCells int, simTimeSec float64) error {
	if s == nil {
		return nil
	}
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("fault: "+format, args...))
	}
	// Per-cell overlap detection wants events in start order without
	// mutating the caller's schedule.
	byCell := make(map[int][]CellEvent, len(s.Cells))
	for i, ev := range s.Cells {
		if ev.Cell < 0 || ev.Cell >= numCells {
			fail("cell event %d names unknown cell %d (layout has %d cells)", i, ev.Cell, numCells)
			continue
		}
		if ev.StartSec < 0 || ev.EndSec <= ev.StartSec {
			fail("cell event %d has invalid window [%g, %g) (want 0 <= start < end)", i, ev.StartSec, ev.EndSec)
			continue
		}
		if ev.StartSec >= simTimeSec {
			fail("cell event %d starts at %gs, past the run's SimTime %gs", i, ev.StartSec, simTimeSec)
			continue
		}
		if ev.Derate < 0 || ev.Derate >= 1 {
			fail("cell event %d has derate %g (want 0 for outage or (0,1) for degraded)", i, ev.Derate)
			continue
		}
		byCell[ev.Cell] = append(byCell[ev.Cell], ev)
	}
	for cell, evs := range byCell {
		sort.Slice(evs, func(a, b int) bool { return evs[a].StartSec < evs[b].StartSec })
		for i := 1; i < len(evs); i++ {
			if evs[i].StartSec < evs[i-1].EndSec {
				fail("cell %d has overlapping events: [%g, %g) and [%g, %g)",
					cell, evs[i-1].StartSec, evs[i-1].EndSec, evs[i].StartSec, evs[i].EndSec)
			}
		}
	}
	for i, le := range s.Load {
		if le.AtSec < 0 || le.AtSec >= simTimeSec {
			fail("load event %d applies at %gs, outside [0, SimTime=%gs)", i, le.AtSec, simTimeSec)
		}
		if le.ReadingTimeSec <= 0 {
			fail("load event %d has non-positive reading time %gs", i, le.ReadingTimeSec)
		}
		if i > 0 && le.AtSec <= s.Load[i-1].AtSec {
			fail("load events must be in strictly ascending AtSec order (event %d at %gs after %gs)",
				i, le.AtSec, s.Load[i-1].AtSec)
		}
	}
	return errors.Join(errs...)
}

// State evaluates a schedule frame by frame: Advance recomputes the
// per-cell Down/Derate view for a simulated time and reports mask changes,
// and NextLoad hands out due load events exactly once each. The per-cell
// view is a pure function of time; only the load-event cursor is stateful
// (applying a reading-time change rescales live traffic-source state, so it
// must happen exactly once — the cursor is what a checkpoint carries, see
// LoadCursor/SetLoadCursor).
type State struct {
	sched *Schedule

	// Down[k] is true while cell k is fully out of service; Derate[k] is
	// the fraction of its forward power budget available (1 when healthy, 0
	// while down). Valid after the first Advance.
	Down   []bool
	Derate []float64

	prevDown []bool
	loadIdx  int
}

// NewState returns an evaluator for the schedule over numCells cells. The
// schedule may be nil/empty; Advance then never reports a change.
func NewState(s *Schedule, numCells int) *State {
	st := &State{
		sched:    s,
		Down:     make([]bool, numCells),
		Derate:   make([]float64, numCells),
		prevDown: make([]bool, numCells),
	}
	for k := range st.Derate {
		st.Derate[k] = 1
	}
	return st
}

// Advance recomputes Down/Derate for simulated time now and reports whether
// the down-mask changed since the previous Advance (the engine uses the
// change signal to force paused users to re-measure). The first Advance
// reports a change only if some cell starts down.
func (st *State) Advance(now float64) (changed bool) {
	copy(st.prevDown, st.Down)
	for k := range st.Down {
		st.Down[k] = false
		st.Derate[k] = 1
	}
	if st.sched != nil {
		for _, ev := range st.sched.Cells {
			if !ev.active(now) {
				continue
			}
			if ev.Outage() {
				st.Down[ev.Cell] = true
				st.Derate[ev.Cell] = 0
			} else {
				st.Derate[ev.Cell] = ev.Derate
			}
		}
	}
	for k := range st.Down {
		if st.Down[k] != st.prevDown[k] {
			return true
		}
	}
	return false
}

// AnyDown reports whether any cell is out of service at the last Advance.
func (st *State) AnyDown() bool {
	for _, d := range st.Down {
		if d {
			return true
		}
	}
	return false
}

// AnyDerated reports whether any cell is degraded (0 < Derate < 1) at the
// last Advance.
func (st *State) AnyDerated() bool {
	for _, d := range st.Derate {
		if d != 1 && d != 0 {
			return true
		}
	}
	return false
}

// NextLoad returns the next unapplied load event due at or before now and
// advances the cursor past it; ok is false when none is due. Call in a loop
// to drain multiple events falling into one frame.
func (st *State) NextLoad(now float64) (ev LoadEvent, ok bool) {
	if st.sched == nil || st.loadIdx >= len(st.sched.Load) {
		return LoadEvent{}, false
	}
	next := st.sched.Load[st.loadIdx]
	if now < next.AtSec {
		return LoadEvent{}, false
	}
	st.loadIdx++
	return next, true
}

// LoadCursor returns the number of load events already applied — the one
// piece of State a checkpoint must carry (re-applying an event would rescale
// restored traffic-source state a second time).
func (st *State) LoadCursor() int { return st.loadIdx }

// SetLoadCursor restores the load-event cursor from a checkpoint. Out-of-
// range values are rejected so a corrupt checkpoint cannot fast-forward the
// curve.
func (st *State) SetLoadCursor(idx int) error {
	n := 0
	if st.sched != nil {
		n = len(st.sched.Load)
	}
	if idx < 0 || idx > n {
		return fmt.Errorf("fault: load cursor %d outside schedule's 0..%d", idx, n)
	}
	st.loadIdx = idx
	return nil
}
