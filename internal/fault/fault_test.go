package fault

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestValidateAcceptsSaneSchedule(t *testing.T) {
	s := &Schedule{
		Cells: []CellEvent{
			{Cell: 0, StartSec: 10, EndSec: 20},
			{Cell: 0, StartSec: 20, EndSec: 30, Derate: 0.5}, // back-to-back is not overlap
			{Cell: 3, StartSec: 5, EndSec: 120},              // end past SimTime is fine
		},
		Load: []LoadEvent{
			{AtSec: 10, ReadingTimeSec: 3},
			{AtSec: 40, ReadingTimeSec: 12},
		},
	}
	if err := s.Validate(19, 60); err != nil {
		t.Fatalf("Validate rejected a sane schedule: %v", err)
	}
	if (*Schedule)(nil).Validate(19, 60) != nil {
		t.Fatalf("nil schedule must validate")
	}
}

func TestValidateEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		s    Schedule
		want string
	}{
		{"unknown cell", Schedule{Cells: []CellEvent{{Cell: 19, StartSec: 1, EndSec: 2}}}, "unknown cell"},
		{"negative cell", Schedule{Cells: []CellEvent{{Cell: -1, StartSec: 1, EndSec: 2}}}, "unknown cell"},
		{"inverted window", Schedule{Cells: []CellEvent{{Cell: 0, StartSec: 5, EndSec: 5}}}, "invalid window"},
		{"negative start", Schedule{Cells: []CellEvent{{Cell: 0, StartSec: -1, EndSec: 2}}}, "invalid window"},
		{"past simtime", Schedule{Cells: []CellEvent{{Cell: 0, StartSec: 60, EndSec: 70}}}, "past the run's SimTime"},
		{"bad derate", Schedule{Cells: []CellEvent{{Cell: 0, StartSec: 1, EndSec: 2, Derate: 1.5}}}, "derate"},
		{"overlap", Schedule{Cells: []CellEvent{
			{Cell: 2, StartSec: 10, EndSec: 30},
			{Cell: 2, StartSec: 20, EndSec: 40},
		}}, "overlapping"},
		{"load past simtime", Schedule{Load: []LoadEvent{{AtSec: 60, ReadingTimeSec: 5}}}, "outside"},
		{"load bad reading time", Schedule{Load: []LoadEvent{{AtSec: 10, ReadingTimeSec: 0}}}, "non-positive reading time"},
		{"load out of order", Schedule{Load: []LoadEvent{
			{AtSec: 20, ReadingTimeSec: 5},
			{AtSec: 10, ReadingTimeSec: 8},
		}}, "ascending"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.s.Validate(19, 60)
			if err == nil {
				t.Fatalf("Validate accepted %+v", tc.s)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateReportsAllViolations(t *testing.T) {
	s := Schedule{
		Cells: []CellEvent{
			{Cell: 99, StartSec: 1, EndSec: 2},
			{Cell: 0, StartSec: 61, EndSec: 70},
		},
		Load: []LoadEvent{{AtSec: 5, ReadingTimeSec: -1}},
	}
	err := s.Validate(19, 60)
	if err == nil {
		t.Fatal("expected errors")
	}
	for _, want := range []string{"unknown cell", "past the run's SimTime", "non-positive reading time"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q misses %q", err, want)
		}
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := &Schedule{
		Cells: []CellEvent{
			{Cell: 4, StartSec: 10, EndSec: 20},
			{Cell: 7, StartSec: 15, EndSec: 25, Derate: 0.25},
		},
		Load: []LoadEvent{{AtSec: 12, ReadingTimeSec: 3}},
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*s, back) {
		t.Fatalf("round trip changed the schedule:\n  in  %+v\n  out %+v", *s, back)
	}
	// An outage's zero derate must stay implicit: the JSON schema documents
	// "absent derate = full outage".
	if strings.Contains(string(b), `"derate":0,`) || strings.Contains(string(b), `"derate":0}`) {
		t.Fatalf("zero derate serialised explicitly: %s", b)
	}
}

func TestStateAdvance(t *testing.T) {
	s := &Schedule{Cells: []CellEvent{
		{Cell: 1, StartSec: 10, EndSec: 20},
		{Cell: 2, StartSec: 15, EndSec: 25, Derate: 0.5},
	}}
	st := NewState(s, 4)
	if changed := st.Advance(0); changed {
		t.Fatal("no cell is down at t=0")
	}
	if st.AnyDown() || st.AnyDerated() {
		t.Fatal("healthy state reported faults at t=0")
	}
	if changed := st.Advance(10); !changed {
		t.Fatal("outage start must report a mask change")
	}
	if !st.Down[1] || st.Derate[1] != 0 {
		t.Fatalf("cell 1 should be down: Down=%v Derate=%v", st.Down, st.Derate)
	}
	if changed := st.Advance(15); changed {
		t.Fatal("a derate alone must not change the down-mask")
	}
	if st.Down[2] || st.Derate[2] != 0.5 {
		t.Fatalf("cell 2 should be derated to 0.5: Down=%v Derate=%v", st.Down, st.Derate)
	}
	if !st.AnyDerated() {
		t.Fatal("AnyDerated missed the derated cell")
	}
	if changed := st.Advance(20); !changed {
		t.Fatal("recovery must report a mask change")
	}
	if st.Down[1] || st.Derate[1] != 1 {
		t.Fatalf("cell 1 should have recovered: Down=%v Derate=%v", st.Down, st.Derate)
	}
	// Evaluation is a pure function of time: jumping back reproduces the
	// outage view exactly (this is what makes checkpoint resume trivial).
	st.Advance(12)
	if !st.Down[1] || st.Down[2] {
		t.Fatalf("re-evaluating t=12 diverged: Down=%v", st.Down)
	}
}

func TestStateNextLoadAndCursor(t *testing.T) {
	s := &Schedule{Load: []LoadEvent{
		{AtSec: 5, ReadingTimeSec: 3},
		{AtSec: 6, ReadingTimeSec: 2},
		{AtSec: 30, ReadingTimeSec: 12},
	}}
	st := NewState(s, 1)
	if _, ok := st.NextLoad(4.99); ok {
		t.Fatal("event handed out early")
	}
	// Two events fall into one frame: both drain, in order, exactly once.
	ev1, ok1 := st.NextLoad(6)
	ev2, ok2 := st.NextLoad(6)
	_, ok3 := st.NextLoad(6)
	if !ok1 || !ok2 || ok3 || ev1.ReadingTimeSec != 3 || ev2.ReadingTimeSec != 2 {
		t.Fatalf("drain order wrong: %v/%v %v/%v %v", ev1, ok1, ev2, ok2, ok3)
	}
	if st.LoadCursor() != 2 {
		t.Fatalf("cursor = %d, want 2", st.LoadCursor())
	}
	if err := st.SetLoadCursor(3); err != nil {
		t.Fatalf("in-range cursor rejected: %v", err)
	}
	if _, ok := st.NextLoad(1000); ok {
		t.Fatal("cursor restore did not skip applied events")
	}
	if err := st.SetLoadCursor(4); err == nil {
		t.Fatal("out-of-range cursor accepted")
	}
	if err := st.SetLoadCursor(-1); err == nil {
		t.Fatal("negative cursor accepted")
	}
}

func TestProfiles(t *testing.T) {
	for _, name := range Profiles() {
		s, err := Profile(name, 19, 60, 12)
		if err != nil {
			t.Fatalf("Profile(%q): %v", name, err)
		}
		if name == ProfileNone {
			if s != nil {
				t.Fatal("none must return a nil schedule")
			}
			continue
		}
		if s.Empty() {
			t.Fatalf("profile %q is empty", name)
		}
		if err := s.Validate(19, 60); err != nil {
			t.Fatalf("profile %q does not validate: %v", name, err)
		}
	}
	if _, err := Profile("bogus", 19, 60, 12); err == nil {
		t.Fatal("unknown profile accepted")
	}
}
