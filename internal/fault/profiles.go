package fault

import (
	"fmt"
	"sort"
	"strings"
)

// Named profiles build ready-made schedules scaled to a scenario's run
// length, so the sweep axis, the experiments and the CLI flags can inject
// canonical fault patterns without hand-written JSON. All windows are
// fractions of SimTime, making a profile meaningful for any preset.
const (
	// ProfileNone is the empty schedule (the axis' baseline point).
	ProfileNone = "none"
	// ProfileOutage takes the centre cell (index 0) out of service for the
	// middle fifth of the run: outage at 0.4 SimTime, recovery at 0.6.
	ProfileOutage = "outage"
	// ProfileDegrade derates the centre cell to half its forward power
	// budget over the same middle-fifth window.
	ProfileDegrade = "degrade"
	// ProfileFlashCrowd quarters the mean reading time at 0.35 SimTime (a
	// flash crowd arriving) and restores it at 0.7 SimTime.
	ProfileFlashCrowd = "flashcrowd"
	// ProfileRushHour is a two-step day/night curve: load doubles at 0.25
	// SimTime, doubles again at 0.5, and falls back to baseline at 0.75.
	ProfileRushHour = "rushhour"
)

// Profiles lists the named profiles in stable order.
func Profiles() []string {
	return []string{ProfileNone, ProfileOutage, ProfileDegrade, ProfileFlashCrowd, ProfileRushHour}
}

// Profile builds the named schedule for a run of simTimeSec over numCells
// cells whose baseline mean reading time is baseReadingSec. ProfileNone
// returns nil (no schedule). Unknown names list the alternatives.
func Profile(name string, numCells int, simTimeSec, baseReadingSec float64) (*Schedule, error) {
	switch name {
	case ProfileNone, "":
		return nil, nil
	case ProfileOutage:
		return &Schedule{Cells: []CellEvent{
			{Cell: 0, StartSec: 0.4 * simTimeSec, EndSec: 0.6 * simTimeSec},
		}}, nil
	case ProfileDegrade:
		return &Schedule{Cells: []CellEvent{
			{Cell: 0, StartSec: 0.4 * simTimeSec, EndSec: 0.6 * simTimeSec, Derate: 0.5},
		}}, nil
	case ProfileFlashCrowd:
		return &Schedule{Load: []LoadEvent{
			{AtSec: 0.35 * simTimeSec, ReadingTimeSec: baseReadingSec / 4},
			{AtSec: 0.7 * simTimeSec, ReadingTimeSec: baseReadingSec},
		}}, nil
	case ProfileRushHour:
		return &Schedule{Load: []LoadEvent{
			{AtSec: 0.25 * simTimeSec, ReadingTimeSec: baseReadingSec / 2},
			{AtSec: 0.5 * simTimeSec, ReadingTimeSec: baseReadingSec / 4},
			{AtSec: 0.75 * simTimeSec, ReadingTimeSec: baseReadingSec},
		}}, nil
	default:
		known := Profiles()
		sort.Strings(known)
		return nil, fmt.Errorf("fault: unknown profile %q (want one of %s)", name, strings.Join(known, ", "))
	}
}
