// Package jobspec is the shared, JSON-first description of the work the
// tools run: a single simulation (RunSpec), a parameter sweep (SweepSpec)
// or the experiment suite (ExperimentsSpec). The four commands (jabasim,
// jabasweep, jabaexp, jabaserve) all translate their inputs — CLI flags or
// HTTP request bodies — into these specs and resolve them through the same
// code, so a scenario that runs one way from the shell runs exactly the
// same way through the server.
//
// Every spec resolves with full conflict detection (a named grid excludes
// ad-hoc axes, a preset excludes an inline config, an override excludes an
// axis sweeping the same parameter) and full validation via
// sim.Config.Validate, which reports every violation at once.
package jobspec

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"jabasd/internal/experiments"
	"jabasd/internal/fault"
	"jabasd/internal/scenario"
	"jabasd/internal/sim"
	"jabasd/internal/sweep"
)

// Scenario selects the base configuration: a named preset or an inline
// sim.Config JSON object — at most one of the two. Neither set means the
// baseline preset.
type Scenario struct {
	// Preset is a named scenario (see scenario.Names).
	Preset string `json:"preset,omitempty"`
	// Config is an inline sim.Config JSON object; unspecified fields keep
	// their defaults, exactly as a -config file does.
	Config json.RawMessage `json:"config,omitempty"`
}

// Resolve returns the selected base configuration (not yet validated —
// overrides may still apply on top; RunSpec.Resolve validates the final
// result).
func (s Scenario) Resolve() (sim.Config, error) {
	if s.Preset != "" && len(s.Config) > 0 {
		return sim.Config{}, errors.New("jobspec: preset and config are exclusive; drop one")
	}
	if len(s.Config) > 0 {
		cfg := sim.DefaultConfig()
		if err := json.Unmarshal(s.Config, &cfg); err != nil {
			return sim.Config{}, fmt.Errorf("jobspec: decode config: %w", err)
		}
		return cfg, nil
	}
	return scenario.Lookup(s.Preset)
}

// Overrides layers the flag-style adjustments every tool offers on top of a
// resolved base configuration. Zero values mean "keep the base's"; the
// pointer fields distinguish "unset" from a legitimate zero.
type Overrides struct {
	Scheduler     string   `json:"scheduler,omitempty"`
	Direction     string   `json:"direction,omitempty"`
	DataUsers     *int     `json:"data_users,omitempty"`
	SimTime       float64  `json:"sim_time,omitempty"`
	WarmupTime    *float64 `json:"warmup_time,omitempty"`
	Seed          uint64   `json:"seed,omitempty"`
	FrameMode     string   `json:"frame_mode,omitempty"`
	FrameParallel *int     `json:"frame_parallel,omitempty"`
	Tiles         *int     `json:"tiles,omitempty"`
	ExactPHY      bool     `json:"exact_phy,omitempty"`
	// FaultProfile replaces the scenario's fault schedule with a named
	// profile (see fault.Profiles) scaled to the resolved run length;
	// "none" clears it.
	FaultProfile string `json:"fault_profile,omitempty"`
	// Faults replaces the scenario's fault schedule with an explicit one
	// (cell outages/derates and load events); exclusive with FaultProfile.
	Faults *fault.Schedule `json:"faults,omitempty"`
	// NodeBudget caps the exact solver's branch-and-bound nodes per
	// cell-frame (sim.Config.SolveNodeBudget); 0 removes the cap.
	NodeBudget *int `json:"node_budget,omitempty"`
}

// Apply layers the set overrides onto cfg. Enum-valued overrides are
// checked here (all at once); numeric ranges are left to cfg.Validate.
func (o Overrides) Apply(cfg *sim.Config) error {
	var errs []error
	if o.Scheduler != "" {
		kind := sim.SchedulerKind(o.Scheduler)
		if _, err := sim.NewScheduler(kind, 1); err != nil {
			errs = append(errs, err)
		} else {
			cfg.Scheduler = kind
		}
	}
	switch o.Direction {
	case "":
	case "forward":
		cfg.Direction = sim.Forward
	case "reverse":
		cfg.Direction = sim.Reverse
	default:
		errs = append(errs, fmt.Errorf("jobspec: unknown direction %q (want forward or reverse)", o.Direction))
	}
	if o.DataUsers != nil {
		cfg.DataUsersPerCell = *o.DataUsers
	}
	if o.SimTime != 0 {
		cfg.SimTime = o.SimTime
	}
	if o.WarmupTime != nil {
		cfg.WarmupTime = *o.WarmupTime
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	switch sim.FrameMode(o.FrameMode) {
	case "", sim.FrameSequential, sim.FrameSnapshot:
		if o.FrameMode != "" {
			cfg.FrameMode = sim.FrameMode(o.FrameMode)
		}
	default:
		errs = append(errs, fmt.Errorf("jobspec: unknown frame mode %q (want %s or %s)",
			o.FrameMode, sim.FrameSequential, sim.FrameSnapshot))
	}
	if o.FrameParallel != nil {
		cfg.FrameParallel = *o.FrameParallel
	}
	if o.Tiles != nil {
		cfg.Tiles = *o.Tiles
	}
	if o.ExactPHY {
		cfg.ExactPHY = true
	}
	switch {
	case o.FaultProfile != "" && o.Faults != nil:
		errs = append(errs, errors.New("jobspec: fault_profile and faults are exclusive; drop one"))
	case o.FaultProfile != "":
		// The profile scales to the configuration as overridden so far, so
		// a sim_time override and a fault profile compose correctly.
		cells := 1 + 3*cfg.Rings*(cfg.Rings+1)
		sched, err := fault.Profile(o.FaultProfile, cells, cfg.SimTime, cfg.Data.MeanReadingTimeSec)
		if err != nil {
			errs = append(errs, err)
		} else {
			cfg.Faults = sched
		}
	case o.Faults != nil:
		cfg.Faults = o.Faults
	}
	if o.NodeBudget != nil {
		cfg.SolveNodeBudget = *o.NodeBudget
	}
	return errors.Join(errs...)
}

// axisConflicts maps each override to the sweep axis that sets the same
// parameter; sweeping an axis and overriding it at once would silently
// mislabel every row, so SweepSpec.Resolve rejects the combination.
func (o Overrides) axisConflicts() map[string]bool {
	c := map[string]bool{}
	if o.Scheduler != "" {
		c["scheduler"] = true
	}
	if o.Direction != "" {
		c["direction"] = true
	}
	if o.DataUsers != nil {
		c["datausers"] = true
	}
	if o.FrameMode != "" {
		c["framemode"] = true
	}
	if o.FaultProfile != "" || o.Faults != nil {
		c["faultprofile"] = true
	}
	return c
}

// CheckpointSpec adds checkpoint/resume behaviour to a run: write a
// versioned snapshot of the engine state to Path every Every frames
// (atomically — a crash never leaves a torn file), and/or start the run
// from the snapshot at Resume instead of frame 0. A checkpoint captures
// exactly one engine, so a spec carrying one requires Reps <= 1; a resumed
// scenario comes from the checkpoint itself, so Resume excludes Preset and
// Config. Overrides still apply on resume, but only the non-semantic
// execution knobs pass the checkpoint's config-hash check — a semantic
// change is refused at resolution time.
type CheckpointSpec struct {
	// Path is the checkpoint file to write; requires Every > 0.
	Path string `json:"path,omitempty"`
	// Every is the checkpoint cadence in frames.
	Every int `json:"every,omitempty"`
	// Resume is a checkpoint file to start from.
	Resume string `json:"resume,omitempty"`
}

func (c *CheckpointSpec) validate(reps int) error {
	var errs []error
	if c.Path == "" && c.Resume == "" {
		errs = append(errs, errors.New("jobspec: checkpoint spec needs a path to write and/or a checkpoint to resume"))
	}
	if (c.Path != "") != (c.Every > 0) {
		errs = append(errs, errors.New("jobspec: checkpoint path and a positive cadence (every) go together"))
	}
	if reps > 1 {
		errs = append(errs, fmt.Errorf("jobspec: a checkpoint captures one engine; it cannot describe %d replications", reps))
	}
	return errors.Join(errs...)
}

// RunSpec describes one simulation: a base scenario, overrides, a
// replication count and optional checkpoint/resume behaviour.
type RunSpec struct {
	Scenario
	Overrides Overrides `json:"overrides"`
	// Reps is the number of independent replications (0 and 1 both mean a
	// single run).
	Reps int `json:"reps,omitempty"`
	// Checkpoint, when set, makes the run checkpointable and/or resumed.
	Checkpoint *CheckpointSpec `json:"checkpoint,omitempty"`
}

// Resolve produces the validated configuration and replication count. For a
// resuming spec the base scenario is the checkpoint's own stored config and
// the compatibility of the overridden result is checked here, so a bad
// resume fails at submission rather than inside a worker; the (single-shot)
// checkpoint file is read again by Start.
func (s RunSpec) Resolve() (sim.Config, int, error) {
	reps := s.Reps
	if reps <= 0 {
		reps = 1
	}
	var cfg sim.Config
	if s.Checkpoint != nil {
		if err := s.Checkpoint.validate(reps); err != nil {
			return sim.Config{}, 0, err
		}
	}
	if s.Checkpoint != nil && s.Checkpoint.Resume != "" {
		if s.Preset != "" || len(s.Config) > 0 {
			return sim.Config{}, 0, errors.New("jobspec: a resumed run takes its scenario from the checkpoint; drop preset/config")
		}
		ck, err := sim.ReadCheckpointFile(s.Checkpoint.Resume)
		if err != nil {
			return sim.Config{}, 0, err
		}
		cfg = ck.Config()
		if err := s.Overrides.Apply(&cfg); err != nil {
			return sim.Config{}, 0, err
		}
		if err := ck.Compatible(cfg); err != nil {
			return sim.Config{}, 0, err
		}
	} else {
		var err error
		cfg, err = s.Scenario.Resolve()
		if err != nil {
			return sim.Config{}, 0, err
		}
		if err := s.Overrides.Apply(&cfg); err != nil {
			return sim.Config{}, 0, err
		}
	}
	if s.Checkpoint != nil && s.Checkpoint.Path != "" {
		cfg.CheckpointEvery = s.Checkpoint.Every
		cfg.CheckpointSink = sim.FileCheckpointSink(s.Checkpoint.Path)
	}
	if err := cfg.Validate(); err != nil {
		return sim.Config{}, 0, err
	}
	return cfg, reps, nil
}

// Start builds the engine for a resolved single run: resumed from the
// spec's checkpoint when one is named, fresh otherwise. cfg must be the
// Resolve result, possibly with trace sinks attached — attaching a sink
// never changes the semantic hash the resume is checked against.
func (s RunSpec) Start(cfg sim.Config) (*sim.Engine, error) {
	if s.Checkpoint != nil && s.Checkpoint.Resume != "" {
		ck, err := sim.ReadCheckpointFile(s.Checkpoint.Resume)
		if err != nil {
			return nil, err
		}
		return ck.Resume(cfg)
	}
	return sim.NewEngine(cfg)
}

// SweepSpec describes a parameter sweep: a named grid, or a base scenario
// plus ad-hoc axes.
type SweepSpec struct {
	// Grid is a built-in named grid (see sweep.Grids). It carries its own
	// preset and axes, so it excludes Preset, Config and Axes.
	Grid string `json:"grid,omitempty"`
	Scenario
	// Axes are "name=v1,v2,..." axis specifications (see sweep.Axes).
	Axes []string `json:"axes,omitempty"`
	// Reps is the number of independent replications per grid point.
	Reps int `json:"reps,omitempty"`
	// Parallel bounds concurrent (point × replication) work items
	// (0 = GOMAXPROCS).
	Parallel int `json:"parallel,omitempty"`
	// Overrides apply to every grid point, after the axis values. An
	// override of a swept parameter is a conflict. Overrides.Seed becomes
	// the sweep's base seed.
	Overrides Overrides `json:"overrides"`
}

// Resolve produces the expanded grid and runner options, rejecting
// grid/scenario/axis/override conflicts.
func (s SweepSpec) Resolve() (sweep.Grid, sweep.Options, error) {
	var g sweep.Grid
	if s.Grid != "" {
		if s.Preset != "" || len(s.Config) > 0 || len(s.Axes) > 0 {
			return sweep.Grid{}, sweep.Options{},
				errors.New("jobspec: a named grid carries its own preset and axes; drop preset/config/axes")
		}
		var err error
		g, err = sweep.LookupGrid(s.Grid)
		if err != nil {
			return sweep.Grid{}, sweep.Options{}, err
		}
	} else {
		base, err := s.Scenario.Resolve()
		if err != nil {
			return sweep.Grid{}, sweep.Options{}, err
		}
		g, err = sweep.New(s.Preset, s.Axes)
		if err != nil {
			return sweep.Grid{}, sweep.Options{}, err
		}
		if len(s.Config) > 0 {
			g.Base = &base
		}
	}

	if conflicts := s.Overrides.axisConflicts(); len(conflicts) > 0 {
		for _, ax := range g.Axes {
			if conflicts[ax.Name] {
				return sweep.Grid{}, sweep.Options{},
					fmt.Errorf("jobspec: override conflicts with the %s axis; drop one", ax.Name)
			}
		}
	}

	opts := sweep.Options{Reps: s.Reps, Parallel: s.Parallel, BaseSeed: s.Overrides.Seed}
	// The remaining overrides mutate every point after its axis values are
	// baked in. Seed is carried by BaseSeed (the sweep derives per-point
	// seeds from it), so it must not also be forced onto each config.
	mut := s.Overrides
	mut.Seed = 0
	if mut != (Overrides{}) {
		// Surface enum errors now rather than from inside the runner.
		probe := sim.DefaultConfig()
		if err := mut.Apply(&probe); err != nil {
			return sweep.Grid{}, sweep.Options{}, err
		}
		opts.Mutate = func(c *sim.Config) { mut.Apply(c) }
	}
	return g, opts, nil
}

// ExperimentsSpec describes an experiment-suite run.
type ExperimentsSpec struct {
	// Only lists experiment ids to run (e.g. ["E1","E5"]); empty means the
	// whole registry, in suite order.
	Only []string `json:"only,omitempty"`
	// Scale is "quick" (default) or "full".
	Scale string `json:"scale,omitempty"`
	// Parallel bounds concurrently running experiments (0 = GOMAXPROCS).
	Parallel int `json:"parallel,omitempty"`
	// ExactPHY runs the dynamic experiments on the bit-exact reference
	// physics.
	ExactPHY bool `json:"exact_phy,omitempty"`
}

// Resolve selects the experiments and scale.
func (s ExperimentsSpec) Resolve() ([]experiments.Experiment, experiments.Scale, error) {
	var scale experiments.Scale
	switch s.Scale {
	case "", "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		return nil, experiments.Scale{}, fmt.Errorf("jobspec: unknown scale %q (want quick or full)", s.Scale)
	}
	scale.ExactPHY = s.ExactPHY

	defs, err := SelectExperiments(s.Only)
	if err != nil {
		return nil, experiments.Scale{}, err
	}
	return defs, scale, nil
}

// SelectExperiments resolves a list of experiment ids against the registry,
// keeping suite order; ids are case-insensitive and unknown ids are an
// error, not a silent no-op. An empty list selects the whole registry.
func SelectExperiments(ids []string) ([]experiments.Experiment, error) {
	if len(ids) == 0 {
		return experiments.Registry(), nil
	}
	wanted := map[string]bool{}
	for _, raw := range ids {
		id := strings.ToUpper(strings.TrimSpace(raw))
		if id == "" {
			continue
		}
		if _, ok := experiments.ByID(id); !ok {
			return nil, fmt.Errorf("jobspec: unknown experiment id %q (valid ids: %s)",
				raw, strings.Join(experiments.IDs(), ", "))
		}
		wanted[id] = true
	}
	if len(wanted) == 0 {
		return nil, fmt.Errorf("jobspec: no experiments selected (valid ids: %s)",
			strings.Join(experiments.IDs(), ", "))
	}
	var defs []experiments.Experiment
	for _, d := range experiments.Registry() {
		if wanted[d.ID] {
			defs = append(defs, d)
		}
	}
	return defs, nil
}
