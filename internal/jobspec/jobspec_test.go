package jobspec

import (
	"context"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"jabasd/internal/scenario"
	"jabasd/internal/sim"
)

func TestScenarioPresetAndConfigConflict(t *testing.T) {
	s := Scenario{Preset: "smoke", Config: json.RawMessage(`{}`)}
	if _, err := s.Resolve(); err == nil || !strings.Contains(err.Error(), "exclusive") {
		t.Errorf("preset+config should conflict, got %v", err)
	}
}

func TestScenarioDefaultsToBaseline(t *testing.T) {
	cfg, err := Scenario{}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := scenario.Lookup("")
	if cfg.DataUsersPerCell != want.DataUsersPerCell {
		t.Errorf("empty scenario = %d data users, want baseline's %d",
			cfg.DataUsersPerCell, want.DataUsersPerCell)
	}
}

func TestScenarioInlineConfigKeepsDefaults(t *testing.T) {
	cfg, err := Scenario{Config: json.RawMessage(`{"DataUsersPerCell": 3, "Direction": "reverse"}`)}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DataUsersPerCell != 3 || cfg.Direction != sim.Reverse {
		t.Errorf("inline fields not applied: %d %v", cfg.DataUsersPerCell, cfg.Direction)
	}
	if cfg.MaxCellPowerW != sim.DefaultConfig().MaxCellPowerW {
		t.Error("unspecified fields should keep their defaults")
	}
}

func TestRunSpecResolveAppliesOverrides(t *testing.T) {
	users := 5
	spec := RunSpec{
		Scenario: Scenario{Preset: "smoke"},
		Overrides: Overrides{
			Scheduler: "fcfs",
			Direction: "reverse",
			DataUsers: &users,
			SimTime:   7,
			Seed:      99,
			FrameMode: "snapshot",
			ExactPHY:  true,
		},
		Reps: 3,
	}
	cfg, reps, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if reps != 3 {
		t.Errorf("reps = %d", reps)
	}
	if cfg.Scheduler != sim.SchedulerFCFS || cfg.Direction != sim.Reverse ||
		cfg.DataUsersPerCell != 5 || cfg.SimTime != 7 || cfg.Seed != 99 ||
		cfg.FrameMode != sim.FrameSnapshot || !cfg.ExactPHY {
		t.Errorf("overrides not applied: %+v", cfg)
	}
}

func TestOverridesReportAllEnumErrorsAtOnce(t *testing.T) {
	cfg := sim.DefaultConfig()
	err := Overrides{Scheduler: "nope", Direction: "up", FrameMode: "wat"}.Apply(&cfg)
	if err == nil {
		t.Fatal("expected errors")
	}
	for _, want := range []string{"nope", "direction", "frame mode"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error should mention %q: %v", want, err)
		}
	}
}

func TestSweepSpecNamedGridExcludesAdHocParts(t *testing.T) {
	for _, s := range []SweepSpec{
		{Grid: "paper-load-sweep", Scenario: Scenario{Preset: "smoke"}},
		{Grid: "paper-load-sweep", Axes: []string{"datausers=2"}},
		{Grid: "paper-load-sweep", Scenario: Scenario{Config: json.RawMessage(`{}`)}},
	} {
		if _, _, err := s.Resolve(); err == nil {
			t.Errorf("spec %+v should conflict", s)
		}
	}
}

func TestSweepSpecOverrideVsAxisConflict(t *testing.T) {
	users := 4
	for _, s := range []SweepSpec{
		{Scenario: Scenario{Preset: "smoke"}, Axes: []string{"datausers=2,4"}, Overrides: Overrides{DataUsers: &users}},
		{Scenario: Scenario{Preset: "smoke"}, Axes: []string{"framemode=sequential,snapshot"}, Overrides: Overrides{FrameMode: "snapshot"}},
		{Scenario: Scenario{Preset: "smoke"}, Axes: []string{"scheduler=fcfs,jaba-sd"}, Overrides: Overrides{Scheduler: "fcfs"}},
	} {
		if _, _, err := s.Resolve(); err == nil || !strings.Contains(err.Error(), "axis") {
			t.Errorf("spec %+v should report an axis conflict, got %v", s, err)
		}
	}
}

func TestSweepSpecInlineConfigAnchorsGrid(t *testing.T) {
	spec := SweepSpec{
		Scenario: Scenario{Config: json.RawMessage(`{"Rings": 1, "SimTime": 5, "WarmupTime": 1}`)},
		Axes:     []string{"datausers=2,4"},
	}
	g, _, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if g.Base == nil || g.Base.Rings != 1 || g.Base.SimTime != 5 {
		t.Fatalf("grid base not anchored on the inline config: %+v", g.Base)
	}
	points, err := g.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[1].Config.DataUsersPerCell != 4 || points[1].Config.Rings != 1 {
		t.Errorf("points not expanded from the inline base: %+v", points)
	}
}

func TestSweepSpecSeedAndMutate(t *testing.T) {
	spec := SweepSpec{
		Scenario:  Scenario{Preset: "smoke"},
		Axes:      []string{"datausers=2"},
		Reps:      2,
		Parallel:  4,
		Overrides: Overrides{Seed: 7, ExactPHY: true},
	}
	_, opts, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if opts.BaseSeed != 7 || opts.Reps != 2 || opts.Parallel != 4 {
		t.Errorf("options = %+v", opts)
	}
	if opts.Mutate == nil {
		t.Fatal("ExactPHY override should install a mutator")
	}
	cfg := sim.DefaultConfig()
	opts.Mutate(&cfg)
	if !cfg.ExactPHY {
		t.Error("mutator should set ExactPHY")
	}
	if cfg.Seed != sim.DefaultConfig().Seed {
		t.Error("seed must ride on BaseSeed, not the per-point mutator")
	}
}

func TestExperimentsSpecResolve(t *testing.T) {
	defs, scale, err := ExperimentsSpec{Only: []string{"e1", "E3"}, Scale: "full", ExactPHY: true}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) != 2 || defs[0].ID != "E1" || defs[1].ID != "E3" {
		t.Errorf("defs = %+v", defs)
	}
	if scale.Name != "full" || !scale.ExactPHY {
		t.Errorf("scale = %+v", scale)
	}
	if _, _, err := (ExperimentsSpec{Scale: "huge"}).Resolve(); err == nil {
		t.Error("unknown scale should fail")
	}
	if _, _, err := (ExperimentsSpec{Only: []string{"E99"}}).Resolve(); err == nil {
		t.Error("unknown experiment id should fail")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	in := `{"preset":"smoke","overrides":{"scheduler":"fcfs","seed":5},"reps":2}`
	var spec RunSpec
	if err := json.Unmarshal([]byte(in), &spec); err != nil {
		t.Fatal(err)
	}
	cfg, reps, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scheduler != sim.SchedulerFCFS || cfg.Seed != 5 || reps != 2 {
		t.Errorf("resolved %+v reps=%d", cfg, reps)
	}
}

func TestRunSpecCheckpointResolve(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "state.ckpt")

	// A writing spec attaches the cadence and the file sink.
	spec := RunSpec{
		Scenario:   Scenario{Preset: "smoke"},
		Overrides:  Overrides{SimTime: 3},
		Checkpoint: &CheckpointSpec{Path: ck, Every: 25},
	}
	cfg, reps, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if reps != 1 || cfg.CheckpointEvery != 25 || cfg.CheckpointSink == nil {
		t.Fatalf("resolved reps=%d every=%d sink=%v", reps, cfg.CheckpointEvery, cfg.CheckpointSink != nil)
	}

	// Produce a real checkpoint, then resolve a resuming spec against it.
	e, err := spec.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	res := RunSpec{Checkpoint: &CheckpointSpec{Resume: ck}}
	rcfg, _, err := res.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if rcfg.SimTime != cfg.SimTime {
		t.Fatalf("resumed config lost the scenario: SimTime %v, want %v", rcfg.SimTime, cfg.SimTime)
	}
	re, err := res.Start(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if re.Frame() == 0 {
		t.Fatal("resumed engine starts at frame 0")
	}
	if _, err := re.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	bad := map[string]RunSpec{
		"empty-spec":      {Scenario: Scenario{Preset: "smoke"}, Checkpoint: &CheckpointSpec{}},
		"path-sans-every": {Scenario: Scenario{Preset: "smoke"}, Checkpoint: &CheckpointSpec{Path: ck}},
		"every-sans-path": {Scenario: Scenario{Preset: "smoke"}, Checkpoint: &CheckpointSpec{Every: 10}},
		"reps":            {Scenario: Scenario{Preset: "smoke"}, Reps: 2, Checkpoint: &CheckpointSpec{Path: ck, Every: 10}},
		"resume+preset":   {Scenario: Scenario{Preset: "smoke"}, Checkpoint: &CheckpointSpec{Resume: ck}},
		"semantic-override": {
			Overrides:  Overrides{Seed: 99},
			Checkpoint: &CheckpointSpec{Resume: ck},
		},
		"missing-file": {Checkpoint: &CheckpointSpec{Resume: filepath.Join(dir, "missing.ckpt")}},
	}
	for name, s := range bad {
		if _, _, err := s.Resolve(); err == nil {
			t.Errorf("%s: should fail to resolve", name)
		}
	}
}
