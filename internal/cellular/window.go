package cellular

import "math"

// Windowed variants of the geometry and pilot kernels: instead of scanning
// every base station they operate on an explicit candidate subset — the
// cells of a user's measurement window, as produced per bucket by
// internal/spatial. The candidate slice carries GLOBAL cell indices, sorted
// ascending, and the parallel gain/distance slices are SLOT-indexed
// (gains[i] belongs to cells[i]). The arithmetic per candidate is identical
// to the full-scan kernels'; only the set of cells entering the Io total is
// restricted to the window, which is the windowed physics' modelling
// approximation (cells beyond the window contribute negligible pilot
// power by construction).

// DistanceSq returns the SQUARED distance from p to base station k, with
// exactly the arithmetic of DistancesSqInto (abs-diff fold, no square
// root), so selections made on it match the batched fast path bit for bit.
func (l *Layout) DistanceSq(p Point, k int) float64 {
	b := l.Cells[k].Position
	if !l.WrapAround {
		dx, dy := p.X-b.X, p.Y-b.Y
		return dx*dx + dy*dy
	}
	dx, dy := math.Abs(p.X-b.X), math.Abs(p.Y-b.Y)
	if dx > l.width/2 {
		dx = l.width - dx
	}
	if dy > l.height/2 {
		dy = l.height - dy
	}
	return dx*dx + dy*dy
}

// DistancesForInto fills dst[i] with the metre distance from p to candidate
// cell cells[i], identically to per-cell Distance calls.
func (l *Layout) DistancesForInto(p Point, cells []int32, dst []float64) {
	for i, k := range cells {
		dst[i] = l.Distance(p, int(k))
	}
}

// DistancesSqForInto fills dst[i] with the SQUARED distance from p to
// candidate cell cells[i], identically to DistancesSqInto restricted to the
// subset.
func (l *Layout) DistancesSqForInto(p Point, cells []int32, dst []float64) {
	for i, k := range cells {
		dst[i] = l.DistanceSq(p, int(k))
	}
}

// FindCell returns the slot of a global cell index within an ascending
// candidate list, or -1 when the cell is outside the window. Binary search:
// candidate windows are small but this runs per (user, reduced-set cell)
// per frame.
func FindCell(cells []int32, cell int32) int {
	lo, hi := 0, len(cells)
	for lo < hi {
		mid := (lo + hi) / 2
		if cells[mid] < cell {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(cells) && cells[lo] == cell {
		return lo
	}
	return -1
}

// PilotSetCellsInto is PilotSetInto restricted to a candidate window: the
// Io total sums the window's cells only, each measurement carries the
// GLOBAL cell index from cells[i], and the result is sorted by decreasing
// Ec/Io with the same insertion sort. Used by the exact (dB-domain)
// windowed physics path.
func PilotSetCellsInto(dst []PilotMeasurement, cells []int32, gains []float64, pilotFraction, txPower, noise float64) []PilotMeasurement {
	total := noise
	for _, g := range gains {
		total += txPower * g
	}
	dst = dst[:0]
	for i, g := range gains {
		ec := pilotFraction * txPower * g
		ecio := ec / total
		dst = append(dst, PilotMeasurement{
			Cell:   int(cells[i]),
			EcIo:   ecio,
			EcIoDB: 10 * math.Log10(math.Max(ecio, 1e-30)),
			GainDB: 10 * math.Log10(math.Max(g, 1e-30)),
		})
	}
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0 && dst[j-1].EcIo < dst[j].EcIo; j-- {
			dst[j-1], dst[j] = dst[j], dst[j-1]
		}
	}
	return dst
}

// PilotSetCellsLinearInto is PilotSetLinearInto restricted to a candidate
// window (linear domain, EcIoDB/GainDB left zero). Like the full-scan
// version it is frame-coherent: when dst already holds one entry per
// candidate the new Ec/Io values are written into last frame's order (the
// slot of each retained entry found by binary search over the ascending
// candidate list) and the insertion sort only repairs one frame of drift.
// After a retarget the caller must reslice dst to length zero — the stale
// entries may name cells no longer in the window; a stale entry is detected
// and triggers a full rebuild, so results stay correct either way.
func PilotSetCellsLinearInto(dst []PilotMeasurement, cells []int32, gains []float64, pilotFraction, txPower, noise float64) []PilotMeasurement {
	total := noise
	for _, g := range gains {
		total += txPower * g
	}
	scale := pilotFraction * txPower / total
	if len(dst) == len(cells) {
		ok := true
		for i := range dst {
			s := FindCell(cells, int32(dst[i].Cell))
			if s < 0 {
				ok = false
				break
			}
			dst[i].EcIo = scale * gains[s]
		}
		if ok {
			for i := 1; i < len(dst); i++ {
				for j := i; j > 0 && dst[j-1].EcIo < dst[j].EcIo; j-- {
					dst[j-1], dst[j] = dst[j], dst[j-1]
				}
			}
			return dst
		}
	}
	dst = dst[:0]
	for i, g := range gains {
		dst = append(dst, PilotMeasurement{Cell: int(cells[i]), EcIo: scale * g})
	}
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0 && dst[j-1].EcIo < dst[j].EcIo; j-- {
			dst[j-1], dst[j] = dst[j], dst[j-1]
		}
	}
	return dst
}
