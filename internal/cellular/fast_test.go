package cellular

import (
	"math"
	"testing"

	"jabasd/internal/rng"
)

// TestDistancesIntoMatchesDistance pins the batched distance kernels to the
// scalar Distance, with and without wrap-around.
func TestDistancesIntoMatchesDistance(t *testing.T) {
	for _, wrap := range []bool{true, false} {
		l := NewHexLayout(3, 600, wrap)
		src := rng.New(4)
		d := make([]float64, l.NumCells())
		d2 := make([]float64, l.NumCells())
		w, h := l.Bounds()
		for trial := 0; trial < 200; trial++ {
			p := Point{X: src.Uniform(0, w), Y: src.Uniform(0, h)}
			l.DistancesInto(p, d)
			l.DistancesSqInto(p, d2)
			for k := 0; k < l.NumCells(); k++ {
				want := l.Distance(p, k)
				if d[k] != want {
					t.Fatalf("wrap=%v cell %d: DistancesInto %v != Distance %v", wrap, k, d[k], want)
				}
				if rel := math.Abs(d2[k]-want*want) / math.Max(want*want, 1); rel > 1e-12 {
					t.Fatalf("wrap=%v cell %d: DistancesSqInto off by %.3e", wrap, k, rel)
				}
			}
		}
	}
}

// TestLinearPilotPathMatchesDBPath runs the linear-domain pilot + active-set
// kernels against the dB-domain reference over many random gain vectors and
// requires identical decisions: the linear comparisons are algebraically the
// same rules, so they may differ only for pilots within an ulp of a
// threshold, which random draws do not hit.
func TestLinearPilotPathMatchesDBPath(t *testing.T) {
	const (
		cells         = 19
		pilotFraction = 0.2
		txPower       = 20.0
		noise         = 4e-15
		addDB         = 5.0
		minEcIoDB     = -16.0
	)
	addFactor := math.Pow(10, -addDB/10)
	minEcIo := math.Pow(10, minEcIoDB/10)
	src := rng.New(21)
	gains := make([]float64, cells)
	var pilotsDB, pilotsLin []PilotMeasurement
	var activeDB, activeLin, reducedDB, reducedLin []int
	for trial := 0; trial < 2000; trial++ {
		for k := range gains {
			// Long-term gains around -150..-80 dB, the simulator's range.
			gains[k] = math.Pow(10, src.Uniform(-15, -8))
		}
		pilotsDB = PilotSetInto(pilotsDB, gains, pilotFraction, txPower, noise)
		pilotsLin = PilotSetLinearInto(pilotsLin, gains, pilotFraction, txPower, noise)
		for i := range pilotsDB {
			if pilotsDB[i].Cell != pilotsLin[i].Cell {
				t.Fatalf("trial %d: pilot order differs at %d: %d vs %d", trial, i, pilotsDB[i].Cell, pilotsLin[i].Cell)
			}
			if rel := math.Abs(pilotsDB[i].EcIo-pilotsLin[i].EcIo) / pilotsDB[i].EcIo; rel > 1e-12 {
				t.Fatalf("trial %d: EcIo differs by %.3e", trial, rel)
			}
		}
		activeDB = ActiveSetInto(activeDB, pilotsDB, addDB, minEcIoDB, 3)
		activeLin = ActiveSetLinearInto(activeLin, pilotsLin, addFactor, minEcIo, 3)
		if len(activeDB) != len(activeLin) {
			t.Fatalf("trial %d: active set size %d vs %d", trial, len(activeDB), len(activeLin))
		}
		for i := range activeDB {
			if activeDB[i] != activeLin[i] {
				t.Fatalf("trial %d: active set differs at %d: %d vs %d", trial, i, activeDB[i], activeLin[i])
			}
		}
		reducedDB = ReducedActiveSetInto(reducedDB, pilotsDB, activeDB)
		reducedLin = ReducedActiveSetInto(reducedLin, pilotsLin, activeLin)
		if len(reducedDB) != len(reducedLin) {
			t.Fatalf("trial %d: reduced set size differs", trial)
		}
		for i := range reducedDB {
			if reducedDB[i] != reducedLin[i] {
				t.Fatalf("trial %d: reduced set differs at %d", trial, i)
			}
		}
	}
}

// TestNearestCellSqMatchesNearestCell pins the squared-distance serving-cell
// scan to the metre-domain reference over random positions, with and without
// wrap-around. The two can disagree only when sqrt rounds two distinct
// squared distances to the same float64, which random draws do not hit.
func TestNearestCellSqMatchesNearestCell(t *testing.T) {
	for _, wrap := range []bool{true, false} {
		l := NewHexLayout(3, 600, wrap)
		src := rng.New(21)
		w, h := l.Bounds()
		for trial := 0; trial < 500; trial++ {
			p := Point{X: src.Uniform(0, w), Y: src.Uniform(0, h)}
			if got, want := l.NearestCellSq(p), l.NearestCell(p); got != want {
				t.Fatalf("wrap=%v trial %d: NearestCellSq %d != NearestCell %d at %+v",
					wrap, trial, got, want, p)
			}
		}
	}
}
