// Package cellular models the multi-cell wideband CDMA network geometry:
// a hexagonal grid of base stations with wrap-around, forward-link pilot
// strength (Ec/Io) computation, and the active-set / reduced-active-set
// bookkeeping that drives soft hand-off and the paper's burst admission
// measurements (Section 3.1). The reduced active set for the high-speed SCH
// is the set of the two base stations with the strongest pilots, as in
// cdma2000.
package cellular

import (
	"fmt"
	"math"
)

// Point is a position in metres on the simulation plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Norm returns the Euclidean norm of p.
func (p Point) Norm() float64 { return math.Sqrt(p.X*p.X + p.Y*p.Y) }

// BaseStation is one cell site.
type BaseStation struct {
	ID       int
	Position Point
}

// Layout is a set of base stations arranged on a hexagonal grid. When
// WrapAround is true, distances are computed on a torus spanned by the grid's
// bounding box so edge cells see the same interference environment as centre
// cells (the standard trick for removing boundary effects in cellular
// simulation).
type Layout struct {
	Cells      []BaseStation
	CellRadius float64 // hexagon circumradius in metres
	WrapAround bool
	width      float64
	height     float64
}

// NewHexLayout builds a hexagonal layout with the given number of rings
// around a centre cell (rings = 0 gives 1 cell, 1 gives 7, 2 gives 19, ...).
func NewHexLayout(rings int, cellRadius float64, wrapAround bool) *Layout {
	if rings < 0 {
		rings = 0
	}
	if cellRadius <= 0 {
		cellRadius = 1000
	}
	l := &Layout{CellRadius: cellRadius, WrapAround: wrapAround}
	// Axial hex coordinates -> cartesian, pointy-top orientation with
	// inter-site distance sqrt(3)*R.
	d := math.Sqrt(3) * cellRadius
	id := 0
	for q := -rings; q <= rings; q++ {
		for r := -rings; r <= rings; r++ {
			s := -q - r
			if abs(q) > rings || abs(r) > rings || abs(s) > rings {
				continue
			}
			x := d * (float64(q) + float64(r)/2)
			y := d * (math.Sqrt(3) / 2) * float64(r)
			l.Cells = append(l.Cells, BaseStation{ID: id, Position: Point{x, y}})
			id++
		}
	}
	// Bounding box for wrap-around; pad by one inter-site distance.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, c := range l.Cells {
		minX = math.Min(minX, c.Position.X)
		maxX = math.Max(maxX, c.Position.X)
		minY = math.Min(minY, c.Position.Y)
		maxY = math.Max(maxY, c.Position.Y)
	}
	l.width = maxX - minX + d
	l.height = maxY - minY + d
	return l
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// NumCells returns the number of base stations.
func (l *Layout) NumCells() int { return len(l.Cells) }

// Bounds returns the width and height of the service area used for mobility
// and wrap-around.
func (l *Layout) Bounds() (width, height float64) { return l.width, l.height }

// Distance returns the distance from position p to base station k, honouring
// wrap-around when enabled.
func (l *Layout) Distance(p Point, k int) float64 {
	b := l.Cells[k].Position
	if !l.WrapAround {
		return p.Dist(b)
	}
	dx := math.Abs(p.X - b.X)
	dy := math.Abs(p.Y - b.Y)
	if dx > l.width/2 {
		dx = l.width - dx
	}
	if dy > l.height/2 {
		dy = l.height - dy
	}
	return math.Sqrt(dx*dx + dy*dy)
}

// NearestCell returns the index of the base station closest to p.
func (l *Layout) NearestCell(p Point) int {
	best, bestD := -1, math.Inf(1)
	for k := range l.Cells {
		if d := l.Distance(p, k); d < bestD {
			best, bestD = k, d
		}
	}
	return best
}

// String describes the layout.
func (l *Layout) String() string {
	return fmt.Sprintf("Layout(%d cells, R=%.0f m, wrap=%v)", len(l.Cells), l.CellRadius, l.WrapAround)
}

// PilotMeasurement is the strength of one cell's pilot as seen by a mobile.
type PilotMeasurement struct {
	Cell   int
	EcIo   float64 // linear Ec/Io (pilot chip energy over total received density)
	EcIoDB float64
	GainDB float64 // link gain (path loss + shadowing) used to form the pilot
}

// PilotSet computes the pilot Ec/Io of every cell at a mobile whose link
// gains (linear, combining path loss and shadowing, but NOT fast fading —
// pilots are measured over many symbols) are given per cell. pilotFraction is
// the fraction of each cell's transmit power devoted to the pilot, txPower is
// the common cell transmit power and noise the thermal noise power at the
// mobile. The result is sorted by decreasing Ec/Io.
func PilotSet(gains []float64, pilotFraction, txPower, noise float64) []PilotMeasurement {
	return PilotSetInto(make([]PilotMeasurement, 0, len(gains)), gains, pilotFraction, txPower, noise)
}

// PilotSetInto is PilotSet writing into dst (reused, resliced to length
// zero), so a caller that keeps a per-mobile buffer pays no allocation per
// frame. The sort is an insertion sort: the set is small and nearly sorted
// from one frame to the next, and it avoids sort.Slice's reflection-based
// swapper showing up in the frame loop.
func PilotSetInto(dst []PilotMeasurement, gains []float64, pilotFraction, txPower, noise float64) []PilotMeasurement {
	total := noise
	for _, g := range gains {
		total += txPower * g
	}
	dst = dst[:0]
	for k, g := range gains {
		ec := pilotFraction * txPower * g
		ecio := ec / total
		dst = append(dst, PilotMeasurement{
			Cell:   k,
			EcIo:   ecio,
			EcIoDB: 10 * math.Log10(math.Max(ecio, 1e-30)),
			GainDB: 10 * math.Log10(math.Max(g, 1e-30)),
		})
	}
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0 && dst[j-1].EcIo < dst[j].EcIo; j-- {
			dst[j-1], dst[j] = dst[j], dst[j-1]
		}
	}
	return dst
}

// ActiveSet returns the cells whose pilot is within addThresholdDB of the
// strongest pilot and above the absolute minimum minEcIoDB, capped at
// maxSize. This models the FCH soft hand-off active set.
func ActiveSet(pilots []PilotMeasurement, addThresholdDB, minEcIoDB float64, maxSize int) []int {
	if len(pilots) == 0 || maxSize <= 0 {
		return nil
	}
	return ActiveSetInto([]int{}, pilots, addThresholdDB, minEcIoDB, maxSize)
}

// ActiveSetInto is ActiveSet writing into dst (reused, resliced to length
// zero).
func ActiveSetInto(dst []int, pilots []PilotMeasurement, addThresholdDB, minEcIoDB float64, maxSize int) []int {
	dst = dst[:0]
	if len(pilots) == 0 || maxSize <= 0 {
		return dst
	}
	best := pilots[0].EcIoDB
	for _, p := range pilots {
		if len(dst) >= maxSize {
			break
		}
		if p.EcIoDB < minEcIoDB {
			continue
		}
		if best-p.EcIoDB <= addThresholdDB {
			dst = append(dst, p.Cell)
		}
	}
	return dst
}

// ReducedActiveSet returns the reduced active set used for the high-speed
// supplemental channel: the (at most) two strongest pilots of the FCH active
// set, as assumed by the paper (footnote 4).
func ReducedActiveSet(pilots []PilotMeasurement, activeSet []int) []int {
	if len(activeSet) == 0 {
		return nil
	}
	return ReducedActiveSetInto([]int{}, pilots, activeSet)
}

// ReducedActiveSetInto is ReducedActiveSet writing into dst (reused,
// resliced to length zero). The active set is at most a handful of cells, so
// membership is a linear scan rather than a per-frame map.
func ReducedActiveSetInto(dst []int, pilots []PilotMeasurement, activeSet []int) []int {
	dst = dst[:0]
	for _, p := range pilots { // pilots already sorted by strength
		for _, c := range activeSet {
			if c == p.Cell {
				dst = append(dst, p.Cell)
				break
			}
		}
		if len(dst) == 2 {
			break
		}
	}
	return dst
}
