package cellular

import "math"

// Batched / linear-domain variants of the geometry and pilot kernels for the
// simulator's fast physics path. The dB-domain PilotSetInto spends two
// log10 calls per (user, cell) pair on EcIoDB/GainDB values whose only hot
// consumer — the active-set rules — compares differences of logs, which is
// exactly a ratio comparison in the linear domain. PilotSetLinearInto skips
// the logs (leaving the dB fields zero) and ActiveSetLinearInto applies the
// identical add/drop rules on linear thresholds the caller precomputes once:
//
//	minEcIo      = 10^(minEcIoDB/10)
//	addFactor    = 10^(-addThresholdDB/10)
//
// so `p.EcIoDB >= best - addThresholdDB` becomes `p.EcIo >= best*addFactor`.
// Decisions can differ from the dB path only when a pilot sits within a few
// ulps of a threshold; the engine's exact reference mode keeps the dB path.

// DistancesInto fills dst[k] with the distance from p to base station k
// (honouring wrap-around), identically to per-cell Distance calls.
func (l *Layout) DistancesInto(p Point, dst []float64) {
	for k := range l.Cells {
		dst[k] = l.Distance(p, k)
	}
}

// DistancesSqInto fills dst[k] with the SQUARED distance from p to base
// station k, saving the square root for callers — like the fast path-loss
// kernel — that only need log10(d) = log10(d^2)/2.
func (l *Layout) DistancesSqInto(p Point, dst []float64) {
	if !l.WrapAround {
		for k := range l.Cells {
			b := l.Cells[k].Position
			dx, dy := p.X-b.X, p.Y-b.Y
			dst[k] = dx*dx + dy*dy
		}
		return
	}
	halfW, halfH := l.width/2, l.height/2
	for k := range l.Cells {
		b := l.Cells[k].Position
		// math.Abs compiles to a sign-bit clear; the sign of p-b is a coin
		// flip per cell, so an if/neg pair here mispredicts constantly. The
		// wrap tests below stay as branches — whether a given (user, cell)
		// pair wraps is stable across frames, so they predict well.
		dx, dy := math.Abs(p.X-b.X), math.Abs(p.Y-b.Y)
		if dx > halfW {
			dx = l.width - dx
		}
		if dy > halfH {
			dy = l.height - dy
		}
		dst[k] = dx*dx + dy*dy
	}
}

// NearestCellSq returns the index of the base station closest to p by
// scanning SQUARED distances — no square roots, same wrap-around handling
// as DistancesSqInto. Because sqrt is monotonic the winner matches
// NearestCell except when two true distances round to the same float64 after
// sqrt while their squares differ (NearestCell then keeps the earlier index,
// NearestCellSq the truly closer one); the engine's exact reference path
// keeps NearestCell so golden outputs cannot shift on that measure-zero edge.
func (l *Layout) NearestCellSq(p Point) int {
	best, bestD2 := -1, math.Inf(1)
	if !l.WrapAround {
		for k := range l.Cells {
			b := l.Cells[k].Position
			dx, dy := p.X-b.X, p.Y-b.Y
			if d2 := dx*dx + dy*dy; d2 < bestD2 {
				best, bestD2 = k, d2
			}
		}
		return best
	}
	halfW, halfH := l.width/2, l.height/2
	for k := range l.Cells {
		b := l.Cells[k].Position
		dx, dy := math.Abs(p.X-b.X), math.Abs(p.Y-b.Y)
		if dx > halfW {
			dx = l.width - dx
		}
		if dy > halfH {
			dy = l.height - dy
		}
		if d2 := dx*dx + dy*dy; d2 < bestD2 {
			best, bestD2 = k, d2
		}
	}
	return best
}

// PilotSetLinearInto is PilotSetInto without the per-cell dB conversions:
// EcIo is computed and sorted exactly as in the dB version, while EcIoDB and
// GainDB are left zero. Use with ActiveSetLinearInto.
//
// Unlike PilotSetInto it is frame-coherent: when dst already holds one entry
// per cell (the steady state of a per-mobile buffer), the new EcIo values
// are written into LAST frame's order and the insertion sort only repairs
// the few rank inversions one frame of channel drift produces — O(n) instead
// of the O(n^2) moves a from-scratch sort of n cells costs. The sorted
// result is identical as long as EcIo values are distinct (exact ties may
// order by history rather than by cell index); callers must therefore give
// each mobile its own buffer.
func PilotSetLinearInto(dst []PilotMeasurement, gains []float64, pilotFraction, txPower, noise float64) []PilotMeasurement {
	total := noise
	for _, g := range gains {
		total += txPower * g
	}
	scale := pilotFraction * txPower / total
	if len(dst) == len(gains) {
		for i := range dst {
			dst[i].EcIo = scale * gains[dst[i].Cell]
		}
	} else {
		dst = dst[:0]
		for k, g := range gains {
			dst = append(dst, PilotMeasurement{Cell: k, EcIo: scale * g})
		}
	}
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0 && dst[j-1].EcIo < dst[j].EcIo; j-- {
			dst[j-1], dst[j] = dst[j], dst[j-1]
		}
	}
	return dst
}

// ActiveSetLinearInto applies the ActiveSetInto add rules in the linear
// domain: minEcIo and addFactor are the precomputed linear forms of the dB
// thresholds (see the package comment above).
func ActiveSetLinearInto(dst []int, pilots []PilotMeasurement, addFactor, minEcIo float64, maxSize int) []int {
	dst = dst[:0]
	if len(pilots) == 0 || maxSize <= 0 {
		return dst
	}
	threshold := pilots[0].EcIo * addFactor
	for _, p := range pilots {
		if len(dst) >= maxSize {
			break
		}
		if p.EcIo < minEcIo {
			continue
		}
		if p.EcIo >= threshold {
			dst = append(dst, p.Cell)
		}
	}
	return dst
}
