package cellular

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHexLayoutCellCounts(t *testing.T) {
	cases := []struct{ rings, want int }{
		{0, 1}, {1, 7}, {2, 19}, {3, 37},
	}
	for _, c := range cases {
		l := NewHexLayout(c.rings, 1000, false)
		if l.NumCells() != c.want {
			t.Errorf("rings=%d: %d cells, want %d", c.rings, l.NumCells(), c.want)
		}
	}
	if NewHexLayout(-1, 1000, false).NumCells() != 1 {
		t.Error("negative rings should clamp to 0")
	}
}

func TestHexLayoutSpacing(t *testing.T) {
	l := NewHexLayout(1, 1000, false)
	// Every outer cell should be exactly sqrt(3)*R from the centre cell.
	centre := -1
	for i, c := range l.Cells {
		if c.Position.X == 0 && c.Position.Y == 0 {
			centre = i
			break
		}
	}
	if centre < 0 {
		t.Fatal("no centre cell at origin")
	}
	want := math.Sqrt(3) * 1000
	for i, c := range l.Cells {
		if i == centre {
			continue
		}
		d := c.Position.Dist(l.Cells[centre].Position)
		if math.Abs(d-want) > 1e-6 {
			t.Errorf("cell %d at distance %v, want %v", i, d, want)
		}
	}
}

func TestHexLayoutDefaultRadius(t *testing.T) {
	l := NewHexLayout(1, 0, false)
	if l.CellRadius != 1000 {
		t.Errorf("default radius = %v", l.CellRadius)
	}
	if l.String() == "" {
		t.Error("String empty")
	}
}

func TestWrapAroundDistance(t *testing.T) {
	l := NewHexLayout(2, 1000, true)
	w, h := l.Bounds()
	if w <= 0 || h <= 0 {
		t.Fatal("bounds must be positive")
	}
	// Wrap-around distance can never exceed half the diagonal of the torus.
	maxPossible := math.Sqrt((w/2)*(w/2)+(h/2)*(h/2)) + 1e-9
	f := func(x, y float64) bool {
		p := Point{math.Mod(math.Abs(x), w), math.Mod(math.Abs(y), h)}
		for k := range l.Cells {
			if l.Distance(p, k) > maxPossible {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWrapVsNoWrap(t *testing.T) {
	lw := NewHexLayout(2, 1000, true)
	ln := NewHexLayout(2, 1000, false)
	// For a point near a corner, wrap-around distance to a far cell must not
	// exceed the planar distance.
	p := Point{5000, 5000}
	for k := range ln.Cells {
		if lw.Distance(p, k) > ln.Distance(p, k)+1e-9 {
			t.Errorf("wrap distance to cell %d exceeds planar distance", k)
		}
	}
}

func TestNearestCell(t *testing.T) {
	l := NewHexLayout(2, 1000, false)
	for k, c := range l.Cells {
		if got := l.NearestCell(c.Position); got != k {
			t.Errorf("nearest cell to site %d = %d", k, got)
		}
	}
}

func TestPointOps(t *testing.T) {
	p := Point{3, 4}
	if p.Norm() != 5 {
		t.Errorf("Norm = %v", p.Norm())
	}
	if q := p.Add(Point{1, 1}); q.X != 4 || q.Y != 5 {
		t.Errorf("Add = %v", q)
	}
	if q := p.Sub(Point{1, 1}); q.X != 2 || q.Y != 3 {
		t.Errorf("Sub = %v", q)
	}
	if q := p.Scale(2); q.X != 6 || q.Y != 8 {
		t.Errorf("Scale = %v", q)
	}
	if d := p.Dist(Point{0, 0}); d != 5 {
		t.Errorf("Dist = %v", d)
	}
}

func TestPilotSetSortedAndBounded(t *testing.T) {
	gains := []float64{1e-10, 5e-10, 2e-10}
	pilots := PilotSet(gains, 0.2, 10, 1e-13)
	if len(pilots) != 3 {
		t.Fatalf("pilot count = %d", len(pilots))
	}
	// Sorted descending.
	for i := 1; i < len(pilots); i++ {
		if pilots[i].EcIo > pilots[i-1].EcIo {
			t.Error("pilots not sorted by Ec/Io")
		}
	}
	// Strongest pilot should come from the strongest gain (index 1).
	if pilots[0].Cell != 1 {
		t.Errorf("strongest pilot from cell %d, want 1", pilots[0].Cell)
	}
	// Ec/Io is a fraction of total received power: always < pilotFraction.
	for _, p := range pilots {
		if p.EcIo <= 0 || p.EcIo >= 0.2 {
			t.Errorf("pilot Ec/Io out of range: %v", p.EcIo)
		}
	}
}

func TestPilotSetSumBelowPilotFraction(t *testing.T) {
	f := func(a, b, c float64) bool {
		// Map arbitrary floats into a physically sensible gain range
		// (-160 dB .. 0 dB) to avoid floating point overflow in the test.
		toGain := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0.5
			}
			frac := math.Abs(x) - math.Floor(math.Abs(x)) // [0,1)
			return math.Pow(10, -16*frac)                 // 1 .. 1e-16
		}
		gains := []float64{toGain(a), toGain(b), toGain(c)}
		pilots := PilotSet(gains, 0.2, 10, 1e-13)
		sum := 0.0
		for _, p := range pilots {
			sum += p.EcIo
		}
		return sum < 0.2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestActiveSet(t *testing.T) {
	pilots := []PilotMeasurement{
		{Cell: 2, EcIoDB: -6},
		{Cell: 0, EcIoDB: -8},
		{Cell: 1, EcIoDB: -13},
		{Cell: 3, EcIoDB: -20},
	}
	// 5 dB add threshold, -15 dB minimum, max 3.
	got := ActiveSet(pilots, 5, -15, 3)
	if len(got) != 2 || got[0] != 2 || got[1] != 0 {
		t.Errorf("ActiveSet = %v, want [2 0]", got)
	}
	// Wider threshold admits cell 1 too.
	got = ActiveSet(pilots, 8, -15, 3)
	if len(got) != 3 {
		t.Errorf("ActiveSet with wide threshold = %v", got)
	}
	// Cap at 1.
	got = ActiveSet(pilots, 8, -15, 1)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("capped ActiveSet = %v", got)
	}
	if ActiveSet(nil, 5, -15, 3) != nil {
		t.Error("empty pilots should give nil")
	}
	if ActiveSet(pilots, 5, -15, 0) != nil {
		t.Error("maxSize 0 should give nil")
	}
}

func TestReducedActiveSet(t *testing.T) {
	pilots := []PilotMeasurement{
		{Cell: 2, EcIoDB: -6},
		{Cell: 0, EcIoDB: -8},
		{Cell: 1, EcIoDB: -9},
	}
	active := []int{2, 0, 1}
	got := ReducedActiveSet(pilots, active)
	if len(got) != 2 || got[0] != 2 || got[1] != 0 {
		t.Errorf("ReducedActiveSet = %v, want [2 0]", got)
	}
	// A cell not in the active set cannot appear even if its pilot is strong.
	got = ReducedActiveSet(pilots, []int{0, 1})
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("ReducedActiveSet = %v, want [0 1]", got)
	}
	if ReducedActiveSet(pilots, nil) != nil {
		t.Error("empty active set should give nil")
	}
	// Single-cell active set.
	got = ReducedActiveSet(pilots, []int{1})
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("single-cell reduced set = %v", got)
	}
}
