package spatial

import (
	"testing"

	"jabasd/internal/cellular"
	"jabasd/internal/rng"
)

// layouts under test: degenerate single cell up to a mid-size map, with and
// without wrap-around.
func testLayouts() []*cellular.Layout {
	var ls []*cellular.Layout
	for _, rings := range []int{0, 1, 2, 4} {
		for _, wrap := range []bool{true, false} {
			ls = append(ls, cellular.NewHexLayout(rings, 750, wrap))
		}
	}
	return ls
}

// testPoints yields deterministic query positions inside the service area
// plus adversarial ones: cell sites themselves, bucket-ish boundaries and
// exact midpoints between adjacent sites (distance ties).
func testPoints(l *cellular.Layout, src *rng.Source) []cellular.Point {
	w, h := l.Bounds()
	pts := []cellular.Point{
		{X: 0, Y: 0},
		{X: w / 2, Y: h / 2},
		{X: w - 1e-9, Y: h - 1e-9},
	}
	for _, c := range l.Cells {
		pts = append(pts, c.Position)
	}
	if len(l.Cells) > 1 {
		a, b := l.Cells[0].Position, l.Cells[1].Position
		pts = append(pts, cellular.Point{X: (a.X + b.X) / 2, Y: (a.Y + b.Y) / 2})
	}
	for i := 0; i < 300; i++ {
		pts = append(pts, cellular.Point{X: src.Uniform(0, w), Y: src.Uniform(0, h)})
	}
	return pts
}

func TestNearestMatchesLinearScan(t *testing.T) {
	src := rng.New(7)
	for _, l := range testLayouts() {
		ix := New(l, 7)
		for _, p := range testPoints(l, src) {
			if got, want := ix.NearestCell(p), l.NearestCell(p); got != want {
				t.Fatalf("%s: NearestCell(%v) = %d, linear scan = %d", l, p, got, want)
			}
			if got, want := ix.NearestCellSq(p), l.NearestCellSq(p); got != want {
				t.Fatalf("%s: NearestCellSq(%v) = %d, linear scan = %d", l, p, got, want)
			}
		}
	}
}

func TestDistanceSqMatchesBatch(t *testing.T) {
	src := rng.New(9)
	for _, l := range testLayouts() {
		n := l.NumCells()
		batch := make([]float64, n)
		for _, p := range testPoints(l, src) {
			l.DistancesSqInto(p, batch)
			for k := 0; k < n; k++ {
				if got := l.DistanceSq(p, k); got != batch[k] {
					t.Fatalf("%s: DistanceSq(%v, %d) = %v, DistancesSqInto = %v", l, p, k, got, batch[k])
				}
			}
		}
	}
}

func TestCandidates(t *testing.T) {
	for _, l := range testLayouts() {
		for _, window := range []int{1, 3, 7, 1000} {
			ix := New(l, window)
			want := window
			if want > l.NumCells() {
				want = l.NumCells()
			}
			if ix.Window() != want {
				t.Fatalf("%s window=%d: Window() = %d, want %d", l, window, ix.Window(), want)
			}
			for b := 0; b < ix.NumBuckets(); b++ {
				cand := ix.Candidates(b)
				if len(cand) != want {
					t.Fatalf("%s: bucket %d has %d candidates, want %d", l, b, len(cand), want)
				}
				for i, c := range cand {
					if c < 0 || int(c) >= l.NumCells() {
						t.Fatalf("%s: bucket %d candidate %d out of range", l, b, c)
					}
					if i > 0 && cand[i-1] >= c {
						t.Fatalf("%s: bucket %d candidates not strictly ascending: %v", l, b, cand)
					}
				}
			}
		}
	}
}

// TestCandidatesContainNearest: the candidate window of a point's bucket
// must contain the point's true nearest cell whenever the window is at
// least a one-ring neighbourhood — that is the property the windowed
// physics path relies on to pick host cells.
func TestCandidatesContainNearest(t *testing.T) {
	src := rng.New(11)
	for _, l := range testLayouts() {
		window := 9
		if window > l.NumCells() {
			window = l.NumCells()
		}
		ix := New(l, window)
		for _, p := range testPoints(l, src) {
			nearest := int32(l.NearestCell(p))
			cand := ix.Candidates(ix.BucketOf(p))
			found := false
			for _, c := range cand {
				if c == nearest {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s: nearest cell %d of %v missing from bucket candidates %v", l, nearest, p, cand)
			}
		}
	}
}

func TestCandidateRadiusBounds(t *testing.T) {
	l := cellular.NewHexLayout(3, 800, true)
	ix := New(l, 12)
	// Every candidate of a point's bucket lies within CandidateRadius of the
	// bucket centre, hence within CandidateRadius + BucketDiagonal of the
	// point itself — the bound the tile halo sizing relies on.
	w, h := l.Bounds()
	maxD := 0.0
	src := rng.New(3)
	for i := 0; i < 500; i++ {
		p := cellular.Point{X: src.Uniform(0, w), Y: src.Uniform(0, h)}
		for _, c := range ix.Candidates(ix.BucketOf(p)) {
			d := l.Distance(p, int(c))
			if d > maxD {
				maxD = d
			}
			if d > ix.CandidateRadius()+ix.BucketDiagonal()+1e-9 {
				t.Fatalf("candidate %d at %.1f m from %v exceeds CandidateRadius %.1f + BucketDiagonal %.1f",
					c, d, p, ix.CandidateRadius(), ix.BucketDiagonal())
			}
		}
	}
	if maxD == 0 {
		t.Fatal("no candidate distances probed")
	}
}
