// Package spatial provides a grid-bucketed spatial index over a hexagonal
// cell layout, so that the per-user geometry queries of a city-size map —
// nearest serving cell, candidate pilot cells — stop scanning all O(cells)
// base stations. The service area is divided into uniform rectangular
// buckets roughly one inter-site distance wide; each bucket knows the cells
// whose sites fall inside it and a precomputed list of the K nearest cells
// to its centre (the pilot candidate window). Nearest-cell queries expand
// bucket rings outward from the query point and terminate with an exact
// distance bound, so NearestCell and NearestCellSq return exactly the cell
// the corresponding cellular.Layout linear scans would, including the
// lowest-index winner on distance ties. On a wrap-around layout the bucket
// grid lives on the same torus the layout's distances use.
package spatial

import (
	"math"
	"sort"

	"jabasd/internal/cellular"
)

// Index is the grid-bucketed cell index for one layout. It is immutable
// after New and therefore safe to share across goroutines.
type Index struct {
	layout *cellular.Layout
	wrap   bool

	// Bucket-grid geometry: the box [ox, ox+ew) x [oy, oy+eh) split into
	// nx x ny buckets of bw x bh metres. With wrap-around the box is the
	// layout's torus period; without it the box additionally covers the
	// cell sites (which are centred on the origin while mobility positions
	// live in [0, width) x [0, height)).
	ox, oy float64
	ew, eh float64
	nx, ny int
	bw, bh float64

	// members lists the cells whose site falls in each bucket, in CSR form:
	// bucket b owns members[memberStart[b]:memberStart[b+1]], ascending.
	memberStart []int32
	members     []int32

	// cand holds each bucket's candidate window: the `window` cells nearest
	// to the bucket centre (ties broken toward the lower cell index),
	// sorted ascending by cell index. Bucket b owns
	// cand[b*window : (b+1)*window].
	window int
	cand   []int32

	// candRadius is the maximum distance from any bucket centre to any of
	// its candidate cells — the geometric reach of the candidate windows,
	// used to size interference halos.
	candRadius float64
}

// New builds the index for a layout with per-bucket candidate windows of
// the given size (clamped to the cell count; values < 1 mean every cell).
// Construction is O(buckets x cells) and is meant to run once at engine
// start-up.
func New(l *cellular.Layout, window int) *Index {
	cells := l.NumCells()
	if window < 1 || window > cells {
		window = cells
	}
	w, h := l.Bounds()
	ix := &Index{layout: l, wrap: l.WrapAround, window: window}
	if ix.wrap {
		ix.ox, ix.oy = 0, 0
		ix.ew, ix.eh = w, h
	} else {
		// Cover both the mobility box [0,w) x [0,h) and the cell sites.
		minX, maxX, minY, maxY := 0.0, w, 0.0, h
		for _, c := range l.Cells {
			minX = math.Min(minX, c.Position.X)
			maxX = math.Max(maxX, c.Position.X)
			minY = math.Min(minY, c.Position.Y)
			maxY = math.Max(maxY, c.Position.Y)
		}
		ix.ox, ix.oy = minX, minY
		ix.ew, ix.eh = maxX-minX, maxY-minY
	}
	// Bucket size ~ one inter-site distance: a ring-1 neighbourhood of
	// buckets then covers a cell's immediate interferers.
	target := math.Sqrt(3) * l.CellRadius
	ix.nx = gridDim(ix.ew, target)
	ix.ny = gridDim(ix.eh, target)
	ix.bw = ix.ew / float64(ix.nx)
	ix.bh = ix.eh / float64(ix.ny)

	ix.buildMembers()
	ix.buildCandidates()
	return ix
}

// gridDim splits an extent into buckets of roughly the target size.
func gridDim(extent, target float64) int {
	n := int(extent / target)
	if n < 1 {
		n = 1
	}
	return n
}

// buildMembers buckets every cell site by position (CSR layout).
func (ix *Index) buildMembers() {
	n := ix.nx * ix.ny
	counts := make([]int32, n+1)
	bucketOf := make([]int32, len(ix.layout.Cells))
	for k, c := range ix.layout.Cells {
		bx, by := ix.bucketXY(c.Position)
		b := int32(by*ix.nx + bx)
		bucketOf[k] = b
		counts[b+1]++
	}
	for b := 0; b < n; b++ {
		counts[b+1] += counts[b]
	}
	ix.memberStart = counts
	ix.members = make([]int32, len(ix.layout.Cells))
	fill := make([]int32, n)
	for k := range ix.layout.Cells {
		b := bucketOf[k]
		ix.members[ix.memberStart[b]+fill[b]] = int32(k)
		fill[b]++
	}
}

// buildCandidates precomputes each bucket's window of nearest cells.
func (ix *Index) buildCandidates() {
	n := ix.nx * ix.ny
	cells := ix.layout.NumCells()
	ix.cand = make([]int32, n*ix.window)
	type distCell struct {
		d float64
		k int32
	}
	scratch := make([]distCell, cells)
	for b := 0; b < n; b++ {
		cx := ix.ox + (float64(b%ix.nx)+0.5)*ix.bw
		cy := ix.oy + (float64(b/ix.nx)+0.5)*ix.bh
		centre := cellular.Point{X: cx, Y: cy}
		for k := 0; k < cells; k++ {
			scratch[k] = distCell{d: ix.layout.Distance(centre, k), k: int32(k)}
		}
		sort.Slice(scratch, func(i, j int) bool {
			if scratch[i].d != scratch[j].d {
				return scratch[i].d < scratch[j].d
			}
			return scratch[i].k < scratch[j].k
		})
		row := ix.cand[b*ix.window : (b+1)*ix.window]
		for i := range row {
			row[i] = scratch[i].k
			if scratch[i].d > ix.candRadius {
				ix.candRadius = scratch[i].d
			}
		}
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
	}
}

// Window returns the candidate window size (cells per bucket).
func (ix *Index) Window() int { return ix.window }

// NumBuckets returns the number of grid buckets.
func (ix *Index) NumBuckets() int { return ix.nx * ix.ny }

// CandidateRadius returns the maximum distance from a bucket centre to any
// of its candidate cells. Every cell a bucket's users can measure lies
// within this radius of the bucket centre, which bounds the interference
// halo a grid tile needs (see internal/shard).
func (ix *Index) CandidateRadius() float64 { return ix.candRadius }

// BucketDiagonal returns half the bucket diagonal: the maximum distance
// from a point to the centre of its own bucket.
func (ix *Index) BucketDiagonal() float64 {
	return math.Sqrt(ix.bw*ix.bw+ix.bh*ix.bh) / 2
}

// bucketXY maps a point to grid coordinates: modulo the torus period under
// wrap-around, clamped to the box otherwise.
func (ix *Index) bucketXY(p cellular.Point) (int, int) {
	x, y := p.X-ix.ox, p.Y-ix.oy
	if ix.wrap {
		x = math.Mod(x, ix.ew)
		if x < 0 {
			x += ix.ew
		}
		y = math.Mod(y, ix.eh)
		if y < 0 {
			y += ix.eh
		}
	}
	bx := int(x / ix.bw)
	if bx < 0 {
		bx = 0
	} else if bx >= ix.nx {
		bx = ix.nx - 1
	}
	by := int(y / ix.bh)
	if by < 0 {
		by = 0
	} else if by >= ix.ny {
		by = ix.ny - 1
	}
	return bx, by
}

// BucketOf returns the bucket index of a position. Positions are expected
// within one torus period of the service area (as mobility produces them).
func (ix *Index) BucketOf(p cellular.Point) int {
	bx, by := ix.bucketXY(p)
	return by*ix.nx + bx
}

// Candidates returns the bucket's candidate cell window, sorted ascending
// by cell index. The slice aliases the index's storage; callers must not
// modify it.
func (ix *Index) Candidates(bucket int) []int32 {
	return ix.cand[bucket*ix.window : (bucket+1)*ix.window]
}

// NearestCell returns the cell nearest to p by metre distances, identical
// to cellular.Layout.NearestCell (including its lowest-index tie-break) but
// via the expanding bucket-ring search.
func (ix *Index) NearestCell(p cellular.Point) int {
	return ix.nearest(p, false)
}

// NearestCellSq returns the cell nearest to p by squared distances,
// identical to cellular.Layout.NearestCellSq.
func (ix *Index) NearestCellSq(p cellular.Point) int {
	return ix.nearest(p, true)
}

// nearest runs the expanding ring search. Cells in a bucket at Chebyshev
// ring r from the query's bucket are at least (r-1)*min(bw,bh) metres away
// (the query point may sit anywhere inside its own bucket, hence the -1),
// so once the best distance drops strictly below that bound no farther ring
// can improve on it — nor tie it with a lower index, because the bound is
// compared strictly.
func (ix *Index) nearest(p cellular.Point, sq bool) int {
	bx, by := ix.bucketXY(p)
	best, bestD := -1, math.Inf(1)
	scan := func(b int32) {
		for _, k := range ix.members[ix.memberStart[b]:ix.memberStart[b+1]] {
			var d float64
			if sq {
				d = ix.layout.DistanceSq(p, int(k))
			} else {
				d = ix.layout.Distance(p, int(k))
			}
			if d < bestD || (d == bestD && int(k) < best) {
				best, bestD = int(k), d
			}
		}
	}
	minb := math.Min(ix.bw, ix.bh)
	rMax := ix.nx
	if ix.ny > rMax {
		rMax = ix.ny
	}
	for r := 0; r <= rMax; r++ {
		if best >= 0 && r >= 1 {
			bound := float64(r-1) * minb
			if sq {
				bound *= bound
			}
			if bestD < bound {
				break
			}
		}
		ix.scanRing(bx, by, r, scan)
	}
	return best
}

// scanRing visits every bucket on the Chebyshev ring of radius r around
// (bx, by): the full square for r = 0, its perimeter otherwise. Ring
// coordinates wrap on a torus grid and are skipped outside a bounded grid.
// On a torus narrower than the ring some buckets are visited more than
// once, which is wasteful but harmless — the scan callback is idempotent.
func (ix *Index) scanRing(bx, by, r int, scan func(bucket int32)) {
	visit := func(x, y int) {
		if ix.wrap {
			x = wrapIdx(x, ix.nx)
			y = wrapIdx(y, ix.ny)
		} else if x < 0 || x >= ix.nx || y < 0 || y >= ix.ny {
			return
		}
		scan(int32(y*ix.nx + x))
	}
	if r == 0 {
		visit(bx, by)
		return
	}
	for dx := -r; dx <= r; dx++ {
		visit(bx+dx, by-r)
		visit(bx+dx, by+r)
	}
	for dy := -r + 1; dy <= r-1; dy++ {
		visit(bx-r, by+dy)
		visit(bx+r, by+dy)
	}
}

// wrapIdx wraps a grid index into [0, n).
func wrapIdx(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}
