// Package scenario provides named simulation presets and JSON round-tripping
// of sim.Config, so the command-line tools can load and store complete
// scenario descriptions.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"jabasd/internal/core"
	"jabasd/internal/sim"
)

// Preset names accepted by Lookup.
const (
	PresetBaseline   = "baseline"    // 19 cells, 10 data users/cell, forward link
	PresetLight      = "light-load"  // 4 data users per cell
	PresetHeavy      = "heavy-load"  // 20 data users per cell
	PresetReverse    = "reverse"     // reverse-link bursts
	PresetPedestrian = "pedestrian"  // 3 km/h users, low Doppler
	PresetVehicular  = "vehicular"   // 50-100 km/h users, high Doppler
	PresetThroughput = "j1-max-tput" // pure throughput objective J1
	PresetSmoke      = "smoke"       // tiny fast scenario for CI / demos
)

// Names returns the available preset names in sorted order.
func Names() []string {
	out := []string{
		PresetBaseline, PresetLight, PresetHeavy, PresetReverse,
		PresetPedestrian, PresetVehicular, PresetThroughput, PresetSmoke,
	}
	sort.Strings(out)
	return out
}

// Lookup returns the configuration for a named preset.
func Lookup(name string) (sim.Config, error) {
	cfg := sim.DefaultConfig()
	switch name {
	case PresetBaseline, "":
		return cfg, nil
	case PresetLight:
		cfg.DataUsersPerCell = 4
	case PresetHeavy:
		cfg.DataUsersPerCell = 20
	case PresetReverse:
		cfg.Direction = sim.Reverse
	case PresetPedestrian:
		cfg.MinSpeed, cfg.MaxSpeed = 0.5, 1.5
		cfg.DopplerHz = 6
	case PresetVehicular:
		cfg.MinSpeed, cfg.MaxSpeed = 14, 28
		cfg.DopplerHz = 180
	case PresetThroughput:
		cfg.Objective = core.Objective{Kind: core.ObjectiveThroughput}
	case PresetSmoke:
		cfg.Rings = 1
		cfg.SimTime = 10
		cfg.WarmupTime = 2
		cfg.DataUsersPerCell = 4
		cfg.VoiceUsersPerCell = 4
		cfg.Data.MeanReadingTimeSec = 4
	default:
		return sim.Config{}, fmt.Errorf("scenario: unknown preset %q (available: %v)", name, Names())
	}
	return cfg, nil
}

// Save writes a configuration as indented JSON to path.
func Save(path string, cfg sim.Config) error {
	data, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return fmt.Errorf("scenario: encode: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("scenario: write %s: %w", path, err)
	}
	return nil
}

// Load reads a configuration from a JSON file and validates it.
func Load(path string) (sim.Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return sim.Config{}, fmt.Errorf("scenario: read %s: %w", path, err)
	}
	return Decode(data)
}

// Decode parses a configuration from JSON bytes and validates it.
func Decode(data []byte) (sim.Config, error) {
	cfg := sim.DefaultConfig() // unspecified fields keep their defaults
	if err := json.Unmarshal(data, &cfg); err != nil {
		return sim.Config{}, fmt.Errorf("scenario: decode: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return sim.Config{}, fmt.Errorf("scenario: invalid config: %w", err)
	}
	return cfg, nil
}

// Encode renders a configuration as indented JSON.
func Encode(cfg sim.Config) ([]byte, error) {
	return json.MarshalIndent(cfg, "", "  ")
}
