// Package scenario provides the named simulation presets shared by the
// command-line tools (cmd/jabasim, cmd/jabasweep) and JSON round-tripping
// of sim.Config, so complete scenario descriptions can be saved, edited
// and loaded back.
//
// All presets derive from one table (the presets map), which Names,
// Describe and Lookup read, so the three can never drift apart; every
// preset is a mutation of sim.DefaultConfig, and decoding a JSON file
// starts from the same defaults so unspecified fields keep their baseline
// values. Every decoded or looked-up configuration is validated before it
// is returned.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"jabasd/internal/core"
	"jabasd/internal/fault"
	"jabasd/internal/sim"
)

// Preset names accepted by Lookup.
const (
	PresetBaseline   = "baseline"
	PresetLight      = "light-load"
	PresetHeavy      = "heavy-load"
	PresetReverse    = "reverse"
	PresetPedestrian = "pedestrian"
	PresetVehicular  = "vehicular"
	PresetThroughput = "j1-max-tput"
	PresetSmoke      = "smoke"
	PresetMetro      = "metro"
	PresetMetroChaos = "metro-outage"
	PresetCity       = "city"
	PresetCityDense  = "city-dense"
)

// preset couples a one-line description with the mutation it applies to the
// default configuration.
type preset struct {
	desc  string
	apply func(*sim.Config)
}

// presets is the single source of truth behind Names, Describe and Lookup,
// so the three can never drift apart.
var presets = map[string]preset{
	PresetBaseline: {"19 wrap-around cells, 10 data users/cell, forward link",
		func(*sim.Config) {}},
	PresetLight: {"4 data users per cell",
		func(c *sim.Config) { c.DataUsersPerCell = 4 }},
	PresetHeavy: {"20 data users per cell",
		func(c *sim.Config) { c.DataUsersPerCell = 20 }},
	PresetReverse: {"reverse-link bursts",
		func(c *sim.Config) { c.Direction = sim.Reverse }},
	PresetPedestrian: {"~3 km/h users, low Doppler",
		func(c *sim.Config) {
			c.MinSpeed, c.MaxSpeed = 0.5, 1.5
			c.DopplerHz = 6
		}},
	PresetVehicular: {"50-100 km/h users, high Doppler",
		func(c *sim.Config) {
			c.MinSpeed, c.MaxSpeed = 14, 28
			c.DopplerHz = 180
		}},
	PresetThroughput: {"pure throughput objective J1",
		func(c *sim.Config) { c.Objective = core.Objective{Kind: core.ObjectiveThroughput} }},
	PresetMetro: {"37 wrap-around cells, 30 data users/cell, snapshot-parallel frames",
		applyMetro},
	PresetMetroChaos: {"metro with a mid-run centre-cell outage and a flash-crowd load surge",
		func(c *sim.Config) {
			// The chaos demo behind experiments E13/E14 and the CI chaos
			// job: the metro deployment loses its centre cell for the
			// middle fifth of the run while a flash crowd quarters the
			// mean reading time, then both recover. Everything else —
			// and therefore the no-fault frames — matches the metro
			// preset exactly.
			applyMetro(c)
			c.Faults = &fault.Schedule{
				Cells: []fault.CellEvent{
					{Cell: 0, StartSec: 0.4 * c.SimTime, EndSec: 0.6 * c.SimTime},
				},
				Load: []fault.LoadEvent{
					{AtSec: 0.35 * c.SimTime, ReadingTimeSec: c.Data.MeanReadingTimeSec / 4},
					{AtSec: 0.7 * c.SimTime, ReadingTimeSec: c.Data.MeanReadingTimeSec},
				},
			}
		}},
	PresetCity: {"1027 wrap-around cells, 100 data users/cell, tiled snapshot frames",
		func(c *sim.Config) { applyCity(c, 100, 20) }},
	PresetCityDense: {"1027 wrap-around cells, 250 data users/cell, tiled snapshot frames",
		func(c *sim.Config) { applyCity(c, 250, 40) }},
	PresetSmoke: {"tiny fast scenario for CI / demos",
		func(c *sim.Config) {
			c.Rings = 1
			c.SimTime = 10
			c.WarmupTime = 2
			c.DataUsersPerCell = 4
			c.VoiceUsersPerCell = 4
			c.Data.MeanReadingTimeSec = 4
		}},
}

// applyMetro mutates the default configuration into a metropolitan
// deployment: 3 hexagonal rings (37 cells) at urban density. Only tractable
// with the snapshot frame mode, where the 37 per-cell ILP solves of every
// frame fan out over the worker pool instead of running back to back.
func applyMetro(c *sim.Config) {
	c.Rings = 3
	c.CellRadius = 600
	c.DataUsersPerCell = 30
	c.VoiceUsersPerCell = 12
	c.FrameMode = sim.FrameSnapshot
}

// applyCity mutates the default configuration into the city-scale family:
// an 18-ring wrap-around grid (1027 cells) of 500 m microcells with the
// city-scale machinery switched on — windowed per-user physics (a 24-cell
// measurement window via the spatial bucket index, so channel state is
// O(users x window) instead of O(users x cells)) and the tiled snapshot
// frame mode (8 tiles; results are byte-identical for any tile count, so
// -tiles only changes wall-clock). SimTime is short because a single city
// frame covers >100k data users; sweeps scale it as needed.
func applyCity(c *sim.Config, dataPerCell, voicePerCell int) {
	c.Rings = 18
	c.CellRadius = 500
	c.DataUsersPerCell = dataPerCell
	c.VoiceUsersPerCell = voicePerCell
	c.FrameMode = sim.FrameSnapshot
	c.Tiles = 8
	c.PilotCells = 24
	c.SimTime = 20
	c.WarmupTime = 0.5
}

// Names returns the available preset names in sorted order.
func Names() []string {
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Describe returns the one-line description of a preset, or "" if the name
// is unknown.
func Describe(name string) string {
	if name == "" {
		name = PresetBaseline
	}
	return presets[name].desc
}

// Lookup returns the configuration for a named preset ("" = baseline).
func Lookup(name string) (sim.Config, error) {
	if name == "" {
		name = PresetBaseline
	}
	p, ok := presets[name]
	if !ok {
		return sim.Config{}, fmt.Errorf("scenario: unknown preset %q (available: %v)", name, Names())
	}
	cfg := sim.DefaultConfig()
	p.apply(&cfg)
	return cfg, nil
}

// Save writes a configuration as indented JSON to path.
func Save(path string, cfg sim.Config) error {
	data, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return fmt.Errorf("scenario: encode: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("scenario: write %s: %w", path, err)
	}
	return nil
}

// Load reads a configuration from a JSON file and validates it.
func Load(path string) (sim.Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return sim.Config{}, fmt.Errorf("scenario: read %s: %w", path, err)
	}
	return Decode(data)
}

// Decode parses a configuration from JSON bytes and validates it.
func Decode(data []byte) (sim.Config, error) {
	cfg := sim.DefaultConfig() // unspecified fields keep their defaults
	if err := json.Unmarshal(data, &cfg); err != nil {
		return sim.Config{}, fmt.Errorf("scenario: decode: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return sim.Config{}, fmt.Errorf("scenario: invalid config: %w", err)
	}
	return cfg, nil
}

// Encode renders a configuration as indented JSON.
func Encode(cfg sim.Config) ([]byte, error) {
	return json.MarshalIndent(cfg, "", "  ")
}
