package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jabasd/internal/sim"
)

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != 12 {
		t.Fatalf("expected 12 presets, got %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Error("names not sorted")
		}
	}
}

// TestNamesLookupDescribeShareOneMap asserts the derivation invariant: every
// name Names() returns resolves via Lookup to a configuration that
// validates, and carries a description — all three views read the same
// preset map, so none can drift.
func TestNamesLookupDescribeShareOneMap(t *testing.T) {
	seen := map[string]bool{}
	for _, name := range Names() {
		if seen[name] {
			t.Errorf("duplicate preset name %q", name)
		}
		seen[name] = true
		cfg, err := Lookup(name)
		if err != nil {
			t.Fatalf("Names() lists %q but Lookup rejects it: %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %q does not validate: %v", name, err)
		}
		if Describe(name) == "" {
			t.Errorf("preset %q has no description", name)
		}
	}
	if Describe("") != Describe(PresetBaseline) {
		t.Error("empty name should describe the baseline")
	}
	if Describe("no-such-preset") != "" {
		t.Error("unknown preset should have no description")
	}
}

func TestLookupAllPresetsValid(t *testing.T) {
	for _, name := range Names() {
		cfg, err := Lookup(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s produced an invalid config: %v", name, err)
		}
	}
	if _, err := Lookup(""); err != nil {
		t.Error("empty name should be the baseline preset")
	}
	if _, err := Lookup("no-such-preset"); err == nil {
		t.Error("unknown preset should fail")
	}
}

func TestPresetDifferences(t *testing.T) {
	base, _ := Lookup(PresetBaseline)
	light, _ := Lookup(PresetLight)
	heavy, _ := Lookup(PresetHeavy)
	rev, _ := Lookup(PresetReverse)
	if light.DataUsersPerCell >= base.DataUsersPerCell {
		t.Error("light preset should have fewer users")
	}
	if heavy.DataUsersPerCell <= base.DataUsersPerCell {
		t.Error("heavy preset should have more users")
	}
	if rev.Direction != sim.Reverse {
		t.Error("reverse preset should set reverse direction")
	}
	metro, _ := Lookup(PresetMetro)
	if metro.Rings != 3 {
		t.Errorf("metro preset rings = %d, want 3 (37 cells)", metro.Rings)
	}
	if metro.DataUsersPerCell < 30 {
		t.Errorf("metro preset data users = %d, want >= 30", metro.DataUsersPerCell)
	}
	if metro.FrameMode != sim.FrameSnapshot {
		t.Error("metro preset should use the snapshot frame mode")
	}
	if !metro.WrapAround {
		t.Error("metro preset should wrap around")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	cfg, _ := Lookup(PresetSmoke)
	cfg.Seed = 12345
	if err := Save(path, cfg); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Seed != 12345 || loaded.Rings != cfg.Rings || loaded.DataUsersPerCell != cfg.DataUsersPerCell {
		t.Errorf("round trip mismatch: %+v vs %+v", loaded.Seed, cfg.Seed)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestDecodeInvalidJSON(t *testing.T) {
	if _, err := Decode([]byte("{not json")); err == nil {
		t.Error("invalid JSON should fail")
	}
}

func TestDecodeInvalidConfig(t *testing.T) {
	if _, err := Decode([]byte(`{"SimTime": -5}`)); err == nil {
		t.Error("invalid config values should fail validation")
	}
}

func TestDecodePartialKeepsDefaults(t *testing.T) {
	cfg, err := Decode([]byte(`{"DataUsersPerCell": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	def := sim.DefaultConfig()
	if cfg.DataUsersPerCell != 3 {
		t.Error("override not applied")
	}
	if cfg.Rings != def.Rings || cfg.MaxCellPowerW != def.MaxCellPowerW {
		t.Error("unspecified fields should keep defaults")
	}
}

func TestEncodeContainsFields(t *testing.T) {
	cfg, _ := Lookup(PresetSmoke)
	data, err := Encode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, "DataUsersPerCell") || !strings.Contains(s, "Scheduler") {
		t.Error("encoded JSON missing expected fields")
	}
}

func TestSaveToBadPath(t *testing.T) {
	cfg, _ := Lookup(PresetSmoke)
	if err := Save(string(os.PathSeparator)+"no-such-dir-hopefully/x.json", cfg); err == nil {
		t.Error("saving to an unwritable path should fail")
	}
}
