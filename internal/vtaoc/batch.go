package vtaoc

// AverageThroughputBatch fills dst[i] with AverageThroughput(csi[i]) for
// every entry and returns dst, grown as needed. The engine's gather phase
// evaluates the whole cell's local-mean CSI vector in one call so the
// per-request work stays a tight loop over the (tabulated) ladder instead of
// an interface call per request; each element is exactly AverageThroughput
// of the corresponding input, LUT or exact depending on Tabulate.
func (c *Coder) AverageThroughputBatch(dst, csi []float64) []float64 {
	if cap(dst) < len(csi) {
		dst = make([]float64, len(csi))
	}
	dst = dst[:len(csi)]
	for i, v := range csi {
		dst[i] = c.AverageThroughput(v)
	}
	return dst
}
