package vtaoc

import (
	"math"
	"testing"
	"testing/quick"

	"jabasd/internal/mathx"
)

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{NumModes: 0, TargetBER: 1e-3, BaseThroughput: 0.1},
		{NumModes: 6, TargetBER: 0, BaseThroughput: 0.1},
		{NumModes: 6, TargetBER: 0.7, BaseThroughput: 0.1},
		{NumModes: 6, TargetBER: 1e-3, BaseThroughput: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("default config should be valid: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with invalid config should panic")
		}
	}()
	MustNew(Config{})
}

func TestModeTableShape(t *testing.T) {
	c := MustNew(DefaultConfig())
	modes := c.Modes()
	if len(modes) != 6 {
		t.Fatalf("mode count = %d", len(modes))
	}
	// Throughput ladder 1/32 .. 1 and strictly increasing thresholds.
	for i, m := range modes {
		wantTp := math.Pow(2, float64(i)) / 32
		if math.Abs(m.Throughput-wantTp) > 1e-12 {
			t.Errorf("mode %d throughput = %v, want %v", m.Index, m.Throughput, wantTp)
		}
		if i > 0 && m.MinCSIDB <= modes[i-1].MinCSIDB {
			t.Errorf("thresholds not strictly increasing at mode %d", m.Index)
		}
	}
	// Threshold spacing should be ~3 dB (factor-2 SNR per mode).
	for i := 1; i < len(modes); i++ {
		gap := modes[i].MinCSIDB - modes[i-1].MinCSIDB
		if math.Abs(gap-3.0103) > 0.01 {
			t.Errorf("threshold gap %d = %v, want ~3.01 dB", i, gap)
		}
	}
	if c.NumModes() != 6 || len(c.Thresholds()) != 6 {
		t.Error("NumModes/Thresholds inconsistent")
	}
	if c.String() == "" {
		t.Error("String empty")
	}
}

func TestConstantBERAtThresholds(t *testing.T) {
	cfg := DefaultConfig()
	c := MustNew(cfg)
	for _, m := range c.Modes() {
		gamma := mathx.Linear(m.MinCSIDB)
		ber := BER(m.Index, gamma)
		if math.Abs(ber-cfg.TargetBER)/cfg.TargetBER > 1e-9 {
			t.Errorf("mode %d BER at threshold = %v, want %v", m.Index, ber, cfg.TargetBER)
		}
		// Above the threshold the BER must be below target (constant-BER mode
		// guarantees the error level over the whole mode region).
		if b := BER(m.Index, gamma*2); b >= cfg.TargetBER {
			t.Errorf("mode %d BER above threshold = %v, should be < target", m.Index, b)
		}
	}
	if BER(1, 0) != 0.5 || BER(1, -5) != 0.5 {
		t.Error("BER at non-positive SNR should be 0.5")
	}
}

func TestSelectModeBoundaries(t *testing.T) {
	c := MustNew(DefaultConfig())
	modes := c.Modes()
	if got := c.SelectMode(modes[0].MinCSIDB - 1); got != 0 {
		t.Errorf("below first threshold: mode %d, want 0", got)
	}
	for _, m := range modes {
		if got := c.SelectMode(m.MinCSIDB); got != m.Index {
			t.Errorf("at threshold of mode %d: got %d", m.Index, got)
		}
		if got := c.SelectMode(m.MinCSIDB + 0.1); got != m.Index {
			t.Errorf("just above threshold of mode %d: got %d", m.Index, got)
		}
	}
	if got := c.SelectMode(1000); got != len(modes) {
		t.Errorf("huge CSI should select highest mode, got %d", got)
	}
}

func TestSelectModeMonotoneProperty(t *testing.T) {
	c := MustNew(DefaultConfig())
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		a = math.Mod(a, 60)
		b = math.Mod(b, 60)
		if a > b {
			a, b = b, a
		}
		return c.SelectMode(a) <= c.SelectMode(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThroughput(t *testing.T) {
	c := MustNew(DefaultConfig())
	if c.Throughput(-100) != 0 {
		t.Error("throughput at terrible CSI should be 0")
	}
	if c.Throughput(100) != 1 {
		t.Errorf("throughput at excellent CSI = %v, want 1", c.Throughput(100))
	}
	if c.ModeThroughput(0) != 0 || c.ModeThroughput(7) != 0 {
		t.Error("ModeThroughput out of range should be 0")
	}
	if c.ModeThroughput(6) != 1 {
		t.Errorf("ModeThroughput(6) = %v", c.ModeThroughput(6))
	}
}

func TestAverageThroughputMonotone(t *testing.T) {
	c := MustNew(DefaultConfig())
	prev := -1.0
	for csi := -10.0; csi <= 40; csi += 1 {
		v := c.AverageThroughput(csi)
		if v < prev-1e-12 {
			t.Fatalf("average throughput decreased at %v dB: %v < %v", csi, v, prev)
		}
		if v < 0 || v > 1 {
			t.Fatalf("average throughput out of [0,1]: %v", v)
		}
		prev = v
	}
	// At very high CSI the average approaches the top-mode throughput.
	if got := c.AverageThroughput(60); got < 0.95 {
		t.Errorf("average throughput at 60 dB = %v, want near 1", got)
	}
	// At hopeless CSI it approaches 0.
	if got := c.AverageThroughput(-30); got > 0.02 {
		t.Errorf("average throughput at -30 dB = %v, want near 0", got)
	}
}

func TestModeDistributionSumsToOne(t *testing.T) {
	c := MustNew(DefaultConfig())
	for _, csi := range []float64{-10, 0, 5, 10, 20, 30} {
		d := c.ModeDistribution(csi)
		if len(d) != 7 {
			t.Fatalf("distribution length = %d", len(d))
		}
		sum := 0.0
		for _, p := range d {
			if p < -1e-12 {
				t.Fatalf("negative probability %v at csi %v", p, csi)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("mode distribution at %v dB sums to %v", csi, sum)
		}
	}
}

func TestModeDistributionConsistentWithAverage(t *testing.T) {
	c := MustNew(DefaultConfig())
	for _, csi := range []float64{0, 8, 15, 25} {
		d := c.ModeDistribution(csi)
		exp := 0.0
		for q := 1; q <= c.NumModes(); q++ {
			exp += d[q] * c.ModeThroughput(q)
		}
		if math.Abs(exp-c.AverageThroughput(csi)) > 1e-9 {
			t.Errorf("E[tp] from distribution %v != AverageThroughput %v at %v dB",
				exp, c.AverageThroughput(csi), csi)
		}
	}
}

func TestOutageProbability(t *testing.T) {
	c := MustNew(DefaultConfig())
	if got := c.OutageProbability(-40); got < 0.9 {
		t.Errorf("outage at -40 dB = %v, want near 1", got)
	}
	if got := c.OutageProbability(40); got > 0.01 {
		t.Errorf("outage at 40 dB = %v, want near 0", got)
	}
	prev := 2.0
	for csi := -10.0; csi <= 30; csi += 2 {
		v := c.OutageProbability(csi)
		if v > prev {
			t.Fatalf("outage probability should not increase with CSI")
		}
		prev = v
	}
}

func TestFixedRate(t *testing.T) {
	c := MustNew(DefaultConfig())
	fr, err := NewFixedRate(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := c.Modes()[2]
	if fr.Throughput(m.MinCSIDB-1) != 0 {
		t.Error("fixed rate below threshold should be 0")
	}
	if fr.Throughput(m.MinCSIDB+1) != m.Throughput {
		t.Error("fixed rate above threshold should equal mode throughput")
	}
	// Fixed-rate average throughput is never above the adaptive coder's for
	// the same mean CSI... at high CSI the adaptive one uses higher modes.
	if fr.AverageThroughput(30) > c.AverageThroughput(30) {
		t.Error("adaptive coder should beat fixed mode 3 at high CSI")
	}
	if fr.AverageThroughput(-40) > 0.01 {
		t.Error("fixed-rate average at terrible CSI should be ~0")
	}
	if _, err := NewFixedRate(c, 0); err == nil {
		t.Error("mode 0 should be rejected")
	}
	if _, err := NewFixedRate(c, 7); err == nil {
		t.Error("mode 7 should be rejected")
	}
}

func TestAdaptiveBeatsFixedEverywhere(t *testing.T) {
	// The headline claim of adaptive coding: for every mean CSI the adaptive
	// coder's average throughput is at least that of any single fixed mode.
	c := MustNew(DefaultConfig())
	for q := 1; q <= c.NumModes(); q++ {
		fr, _ := NewFixedRate(c, q)
		for csi := -10.0; csi <= 35; csi += 2.5 {
			if fr.AverageThroughput(csi) > c.AverageThroughput(csi)+1e-9 {
				t.Errorf("fixed mode %d beats adaptive at %v dB", q, csi)
			}
		}
	}
}

func TestTabulateAccuracy(t *testing.T) {
	exact := MustNew(DefaultConfig())
	tab := MustNew(DefaultConfig())
	if tab.Tabulated() {
		t.Fatal("fresh coder should not be tabulated")
	}
	tab.Tabulate()
	tab.Tabulate() // idempotent
	if !tab.Tabulated() {
		t.Fatal("Tabulate did not activate the table")
	}
	// Dense off-grid sweep across the table: interpolation error must stay
	// below the documented bound.
	worst := 0.0
	for csi := TableMinCSIDB; csi <= TableMaxCSIDB; csi += 0.0137 {
		e := math.Abs(tab.AverageThroughput(csi) - exact.AverageThroughput(csi))
		if e > worst {
			worst = e
		}
	}
	if worst > 5e-7 {
		t.Errorf("interpolation error %.3g exceeds 5e-7 bits/symbol", worst)
	}
	// On-grid samples are exact by construction.
	for i := 0; i < 10; i++ {
		csi := TableMinCSIDB + float64(i*97)*TableStepDB
		if tab.AverageThroughput(csi) != exact.AverageThroughput(csi) {
			t.Errorf("grid point %v dB should be bit-exact", csi)
		}
	}
}

func TestTabulateFallsBackOutsideGrid(t *testing.T) {
	exact := MustNew(DefaultConfig())
	tab := MustNew(DefaultConfig())
	tab.Tabulate()
	for _, csi := range []float64{TableMinCSIDB - 0.5, TableMaxCSIDB + 0.5, -120, 90} {
		if got, want := tab.AverageThroughput(csi), exact.AverageThroughput(csi); got != want {
			t.Errorf("out-of-grid %v dB: got %v, want exact %v", csi, got, want)
		}
	}
	// The table upper edge itself is served from the table and must equal
	// the exact sample there.
	if tab.AverageThroughput(TableMaxCSIDB) != exact.AverageThroughput(TableMaxCSIDB) {
		t.Error("table upper edge should be bit-exact")
	}
}
