package vtaoc

import (
	"math"
	"testing"
)

func TestDefaultRatePlanValid(t *testing.T) {
	p := DefaultRatePlan()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRatePlanValidation(t *testing.T) {
	bad := []RatePlan{
		{BandwidthHz: 0, FCHSpreadingGain: 256, FCHThroughput: 0.25, GammaS: 1, MaxSpreadingRatio: 4},
		{BandwidthHz: 1e6, FCHSpreadingGain: 0, FCHThroughput: 0.25, GammaS: 1, MaxSpreadingRatio: 4},
		{BandwidthHz: 1e6, FCHSpreadingGain: 256, FCHThroughput: 0, GammaS: 1, MaxSpreadingRatio: 4},
		{BandwidthHz: 1e6, FCHSpreadingGain: 256, FCHThroughput: 0.25, GammaS: 0, MaxSpreadingRatio: 4},
		{BandwidthHz: 1e6, FCHSpreadingGain: 256, FCHThroughput: 0.25, GammaS: 1, MaxSpreadingRatio: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestFCHBitRate(t *testing.T) {
	p := DefaultRatePlan()
	// 3.75 MHz * 0.25 / 256 ≈ 3662 bps... the plan's FCH is a low-rate channel.
	want := 3_750_000.0 * 0.25 / 256
	if math.Abs(p.FCHBitRate()-want) > 1e-9 {
		t.Errorf("FCHBitRate = %v, want %v", p.FCHBitRate(), want)
	}
}

func TestSCHBitRateScaling(t *testing.T) {
	p := DefaultRatePlan()
	bp := 0.5
	r1 := p.SCHBitRate(1, bp)
	r4 := p.SCHBitRate(4, bp)
	if math.Abs(r4-4*r1) > 1e-9 {
		t.Errorf("SCH rate should scale linearly with m: %v vs 4*%v", r4, r1)
	}
	r2bp := p.SCHBitRate(2, 2*bp)
	if math.Abs(r2bp-4*r1) > 1e-9 {
		t.Errorf("SCH rate should scale linearly with bp")
	}
	if p.SCHBitRate(0, bp) != 0 || p.SCHBitRate(2, 0) != 0 {
		t.Error("zero assignments should give zero rate")
	}
}

func TestRelativeBitRate(t *testing.T) {
	p := DefaultRatePlan()
	// δRb = m * bp / bp_f; with m=4, bp=0.5, bp_f=0.25 => 8.
	if got := p.RelativeBitRate(4, 0.5); math.Abs(got-8) > 1e-12 {
		t.Errorf("RelativeBitRate = %v, want 8", got)
	}
	if p.RelativeBitRate(0, 0.5) != 0 {
		t.Error("m=0 should give 0")
	}
	// Consistency with absolute rates.
	if math.Abs(p.SCHBitRate(4, 0.5)/p.FCHBitRate()-p.RelativeBitRate(4, 0.5)) > 1e-9 {
		t.Error("RelativeBitRate inconsistent with SCHBitRate/FCHBitRate")
	}
}

func TestPowerRatio(t *testing.T) {
	p := DefaultRatePlan()
	if got := p.PowerRatio(4); math.Abs(got-5) > 1e-12 { // 1.25 * 4
		t.Errorf("PowerRatio(4) = %v, want 5", got)
	}
	if p.PowerRatio(0) != 0 || p.PowerRatio(-1) != 0 {
		t.Error("non-positive m should give 0 power")
	}
	// Power grows linearly with m (higher rate needs proportionally more power).
	if p.PowerRatio(8) != 2*p.PowerRatio(4) {
		t.Error("power should scale linearly with m")
	}
}

func TestBurstDuration(t *testing.T) {
	p := DefaultRatePlan()
	bits := 100_000.0
	d := p.BurstDuration(bits, 4, 0.5)
	want := bits / p.SCHBitRate(4, 0.5)
	if math.Abs(d-want) > 1e-9 {
		t.Errorf("BurstDuration = %v, want %v", d, want)
	}
	if !math.IsInf(p.BurstDuration(bits, 0, 0.5), 1) {
		t.Error("zero assignment should give infinite duration")
	}
	// Doubling the assignment halves the duration.
	if math.Abs(p.BurstDuration(bits, 8, 0.5)-d/2) > 1e-9 {
		t.Error("duration should halve when m doubles")
	}
}

func TestMaxUsefulRatio(t *testing.T) {
	p := DefaultRatePlan()
	bp := 0.5
	minDur := 0.1 // 100 ms minimum burst
	m := p.MaxUsefulRatio(1_000_000, bp, minDur)
	if m <= 0 || m > p.MaxSpreadingRatio {
		t.Fatalf("MaxUsefulRatio = %d out of range", m)
	}
	// At the returned m the burst must last at least minDur; at m+1 (if it
	// were allowed) it would be shorter than minDur (unless clamped at M).
	if d := p.BurstDuration(1_000_000, m, bp); d < minDur-1e-9 {
		t.Errorf("duration at MaxUsefulRatio = %v < min %v", d, minDur)
	}
	if m < p.MaxSpreadingRatio {
		if d := p.BurstDuration(1_000_000, m+1, bp); d >= minDur {
			t.Errorf("m+1 still satisfies the minimum duration; bound not tight")
		}
	}
	// A huge burst is limited by M only.
	if got := p.MaxUsefulRatio(1e12, bp, minDur); got != p.MaxSpreadingRatio {
		t.Errorf("huge burst should allow M, got %d", got)
	}
	// A tiny burst is not worth a burst assignment at all.
	if got := p.MaxUsefulRatio(10, bp, minDur); got != 0 {
		t.Errorf("tiny burst should give 0, got %d", got)
	}
	if p.MaxUsefulRatio(0, bp, minDur) != 0 || p.MaxUsefulRatio(1000, 0, minDur) != 0 {
		t.Error("degenerate inputs should give 0")
	}
	if got := p.MaxUsefulRatio(1000, bp, 0); got != p.MaxSpreadingRatio {
		t.Errorf("no minimum duration should allow M, got %d", got)
	}
}
