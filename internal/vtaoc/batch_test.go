package vtaoc

import (
	"math"
	"testing"

	"jabasd/internal/race"
)

// TestAverageThroughputBatchMatchesScalar pins the batch evaluator
// element-for-element to the scalar call, both before (exact) and after
// (LUT) tabulation.
func TestAverageThroughputBatchMatchesScalar(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	csi := make([]float64, 0, 400)
	for v := -25.0; v <= 50.0; v += 0.19 {
		csi = append(csi, v)
	}
	for _, tabulated := range []bool{false, true} {
		if tabulated {
			c.Tabulate()
		}
		got := c.AverageThroughputBatch(nil, csi)
		if len(got) != len(csi) {
			t.Fatalf("tabulated=%v: got %d results for %d inputs", tabulated, len(got), len(csi))
		}
		for i, v := range csi {
			if want := c.AverageThroughput(v); got[i] != want {
				t.Fatalf("tabulated=%v csi=%v: batch %v != scalar %v", tabulated, v, got[i], want)
			}
		}
	}
}

// TestAverageThroughputBatchReuse checks the destination buffer is reused
// when capacity allows.
func TestAverageThroughputBatchReuse(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 8)
	out := c.AverageThroughputBatch(buf, []float64{1, 2, 3})
	if &out[0] != &buf[0] {
		t.Fatalf("batch did not reuse the destination buffer")
	}
	if len(out) != 3 {
		t.Fatalf("len = %d, want 3", len(out))
	}
}

// TestLUTWithinDocumentedTolerance re-asserts, at the batch API level, the
// PR 5 guarantee the fast path leans on: tabulated results stay within 5e-7
// absolute of the exact integral across the whole grid.
func TestLUTWithinDocumentedTolerance(t *testing.T) {
	exact, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	lut, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	lut.Tabulate()
	csi := make([]float64, 0, 2000)
	for v := TableMinCSIDB; v <= TableMaxCSIDB; v += 0.037 {
		csi = append(csi, v)
	}
	ex := exact.AverageThroughputBatch(nil, csi)
	lu := lut.AverageThroughputBatch(nil, csi)
	for i := range csi {
		if diff := math.Abs(ex[i] - lu[i]); diff > 5e-7 {
			t.Fatalf("csi=%v: |LUT - exact| = %.3e, want <= 5e-7", csi[i], diff)
		}
	}
}

// TestAverageThroughputBatchAllocationFree gates the gather phase's batched
// PHY evaluation: with a pre-grown destination slice and a tabulated coder,
// the whole cell evaluates without a single allocation. Skips under -race,
// whose runtime allocates on its own.
func TestAverageThroughputBatchAllocationFree(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Tabulate()
	csi := make([]float64, 64)
	for i := range csi {
		csi[i] = -5 + float64(i)*0.3
	}
	dst := make([]float64, 0, len(csi))
	if allocs := testing.AllocsPerRun(200, func() {
		dst = c.AverageThroughputBatch(dst[:0], csi)
	}); allocs != 0 {
		t.Errorf("AverageThroughputBatch allocated %v times per cell, want 0", allocs)
	}
}
