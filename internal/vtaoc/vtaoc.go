// Package vtaoc implements the paper's adaptive physical layer (Section 2.2):
// a 6-mode Variable Throughput Adaptive Orthogonal Coding and modulation
// scheme (VTAOC) operated in constant-BER mode. The transmitter selects
// transmission mode q whenever the fed-back channel state information (CSI)
// falls inside the adaptation thresholds (ξ_{q-1}, ξ_q); higher modes carry
// more information bits per orthogonal symbol at the cost of a higher
// required symbol energy-to-interference ratio.
//
// The exact per-mode BER curves of the original VTAOC papers ([3],[7] in the
// paper) are not reproducible from the workshop text; we use the standard
// orthogonal-signalling exponential BER approximation
//
//	BER_q(γ) ≈ 0.5 * exp(-γ / (2 * 2^(q-1)))
//
// which preserves the two properties the admission layer relies on: the BER
// is monotone decreasing in the symbol SNR γ and higher-throughput modes need
// proportionally (≈3 dB per mode) more SNR to hold a target BER. The
// adaptation thresholds for constant-BER operation follow by inverting this
// expression, exactly as the paper's "thresholds are set optimally to
// maintain a target transmission error level" prescription.
package vtaoc

import (
	"errors"
	"fmt"
	"math"

	"jabasd/internal/mathx"
)

// Mode describes one VTAOC transmission mode.
type Mode struct {
	Index      int     // 1-based mode number (mode 0 means "no transmission")
	Throughput float64 // information bits per orthogonal modulation symbol
	MinCSIDB   float64 // adaptation threshold ξ_{q-1}: minimum CSI for this mode
}

// Config parameterises the adaptive coder.
type Config struct {
	NumModes  int     // number of transmission modes (paper: 6)
	TargetBER float64 // constant-BER operating point (e.g. 1e-3)
	// BaseThroughput is the throughput of mode 1 in bits/symbol; mode q has
	// BaseThroughput * 2^(q-1). With the default 1/32, the 6 modes span
	// 1/32 ... 1 bits per symbol, the "1/2^5 ... 1/2^0" ladder of the paper.
	BaseThroughput float64
}

// DefaultConfig returns the 6-mode, BER 1e-3 configuration used by the
// experiments.
func DefaultConfig() Config {
	return Config{NumModes: 6, TargetBER: 1e-3, BaseThroughput: 1.0 / 32.0}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.NumModes < 1 {
		return errors.New("vtaoc: NumModes must be >= 1")
	}
	if c.TargetBER <= 0 || c.TargetBER >= 0.5 {
		return errors.New("vtaoc: TargetBER must be in (0, 0.5)")
	}
	if c.BaseThroughput <= 0 {
		return errors.New("vtaoc: BaseThroughput must be positive")
	}
	return nil
}

// Coder is an adaptive coder with precomputed constant-BER thresholds.
// A Coder is immutable after construction and safe for concurrent use;
// the only exception is the opt-in Tabulate, which must complete before the
// coder is shared across goroutines.
type Coder struct {
	cfg   Config
	modes []Mode    // modes[q-1] is mode q
	table []float64 // optional AverageThroughput samples on the Table* grid
}

// New builds a Coder for the configuration, computing the adaptation
// thresholds that hold the target BER for every mode.
func New(cfg Config) (*Coder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Coder{cfg: cfg, modes: make([]Mode, cfg.NumModes)}
	for q := 1; q <= cfg.NumModes; q++ {
		c.modes[q-1] = Mode{
			Index:      q,
			Throughput: cfg.BaseThroughput * math.Pow(2, float64(q-1)),
			MinCSIDB:   mathx.DB(requiredSNR(q, cfg.TargetBER)),
		}
	}
	return c, nil
}

// MustNew is New but panics on configuration errors; convenient in examples
// and tests with known-good configurations.
func MustNew(cfg Config) *Coder {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// requiredSNR returns the linear symbol SNR at which mode q meets the target
// BER under the exponential BER approximation.
func requiredSNR(q int, targetBER float64) float64 {
	return -2 * math.Pow(2, float64(q-1)) * math.Log(2*targetBER)
}

// BER returns the bit error rate of mode q at linear symbol SNR gamma.
func BER(q int, gamma float64) float64 {
	if gamma <= 0 {
		return 0.5
	}
	return 0.5 * math.Exp(-gamma/(2*math.Pow(2, float64(q-1))))
}

// Config returns the coder configuration.
func (c *Coder) Config() Config { return c.cfg }

// Modes returns a copy of the mode table (ascending thresholds).
func (c *Coder) Modes() []Mode {
	return append([]Mode(nil), c.modes...)
}

// NumModes returns the number of transmission modes.
func (c *Coder) NumModes() int { return len(c.modes) }

// Thresholds returns the adaptation thresholds {ξ_0, ξ_1, ..., ξ_{Q-1}} in dB:
// CSI below ξ_0 means no transmission, CSI in [ξ_{q-1}, ξ_q) selects mode q.
func (c *Coder) Thresholds() []float64 {
	out := make([]float64, len(c.modes))
	for i, m := range c.modes {
		out[i] = m.MinCSIDB
	}
	return out
}

// SelectMode returns the transmission mode index chosen for the given CSI
// (symbol energy-to-interference ratio) in dB. It returns 0 when the channel
// is too poor for even the most protected mode (transmission suspended).
func (c *Coder) SelectMode(csiDB float64) int {
	mode := 0
	for _, m := range c.modes {
		if csiDB >= m.MinCSIDB {
			mode = m.Index
		} else {
			break
		}
	}
	return mode
}

// Throughput returns the instantaneous throughput (information bits per
// modulation symbol) offered at the given CSI. Zero when no mode is usable.
func (c *Coder) Throughput(csiDB float64) float64 {
	q := c.SelectMode(csiDB)
	if q == 0 {
		return 0
	}
	return c.modes[q-1].Throughput
}

// ModeThroughput returns the throughput of mode q (1-based); 0 for q == 0.
func (c *Coder) ModeThroughput(q int) float64 {
	if q <= 0 || q > len(c.modes) {
		return 0
	}
	return c.modes[q-1].Throughput
}

// The opt-in AverageThroughput lookup table (Tabulate) samples the exact
// Rayleigh average on this fixed CSI grid; queries inside the grid are
// answered by linear interpolation between neighbouring samples, queries
// outside fall back to the exact computation. The 1/64 dB resolution keeps
// the interpolation error below 5e-7 bits/symbol on the default 6-mode
// ladder (pinned by TestTabulateAccuracy) while the whole table stays under
// 33 KiB.
const (
	// TableMinCSIDB is the lowest mean CSI covered by the lookup table.
	TableMinCSIDB = -20.0
	// TableMaxCSIDB is the highest mean CSI covered by the lookup table.
	TableMaxCSIDB = 45.0
	// TableStepDB is the grid resolution of the lookup table.
	TableStepDB = 0.015625
)

// AverageThroughput returns the expected throughput E[bp] when the short-term
// average symbol SNR is meanCSIDB and the instantaneous SNR is exponentially
// distributed around it (Rayleigh fading), i.e. the quantity the paper calls
// the "relative average throughput" as a function of the local mean CSI ε_s.
//
// By default the value is computed exactly (a handful of exponentials per
// mode). After an opt-in Tabulate call, in-grid queries are served from the
// lookup table by linear interpolation instead; interpolated values differ
// from the exact ones in the low-order bits, which is why tabulation is
// opt-in — the golden-gated simulation paths stay on the exact computation.
func (c *Coder) AverageThroughput(meanCSIDB float64) float64 {
	if c.table != nil && meanCSIDB >= TableMinCSIDB && meanCSIDB <= TableMaxCSIDB {
		pos := (meanCSIDB - TableMinCSIDB) / TableStepDB
		i := int(pos)
		if i >= len(c.table)-1 {
			return c.table[len(c.table)-1]
		}
		return c.table[i] + (pos-float64(i))*(c.table[i+1]-c.table[i])
	}
	return c.averageThroughputExact(meanCSIDB)
}

// averageThroughputExact evaluates the Rayleigh-averaged throughput from the
// mode ladder directly.
func (c *Coder) averageThroughputExact(meanCSIDB float64) float64 {
	gammaBar := mathx.Linear(meanCSIDB)
	if gammaBar <= 0 {
		return 0
	}
	total := 0.0
	for i, m := range c.modes {
		lo := mathx.Linear(m.MinCSIDB)
		var hi float64
		if i+1 < len(c.modes) {
			hi = mathx.Linear(c.modes[i+1].MinCSIDB)
		} else {
			hi = math.Inf(1)
		}
		// P(mode q) = P(lo <= gamma < hi) with gamma ~ Exp(mean = gammaBar).
		p := math.Exp(-lo/gammaBar) - math.Exp(-hi/gammaBar)
		total += p * m.Throughput
	}
	return total
}

// Tabulate precomputes the AverageThroughput lookup table on the documented
// [TableMinCSIDB, TableMaxCSIDB] grid at TableStepDB resolution. Subsequent
// in-grid AverageThroughput queries interpolate linearly between the samples
// (two orders of magnitude faster than the exact path — see
// BenchmarkVTAOCAverageThroughputTabulated); out-of-grid queries keep the
// exact computation. Tabulation is idempotent and must complete before the
// coder is shared across goroutines.
func (c *Coder) Tabulate() {
	if c.table != nil {
		return
	}
	steps := int(math.Round((TableMaxCSIDB-TableMinCSIDB)/TableStepDB)) + 1
	table := make([]float64, steps)
	for i := range table {
		table[i] = c.averageThroughputExact(TableMinCSIDB + float64(i)*TableStepDB)
	}
	c.table = table
}

// Tabulated reports whether the AverageThroughput lookup table is active.
func (c *Coder) Tabulated() bool { return c.table != nil }

// OutageProbability returns the probability that no mode can be used
// (transmission suspended) when the mean symbol SNR is meanCSIDB under
// Rayleigh fading.
func (c *Coder) OutageProbability(meanCSIDB float64) float64 {
	gammaBar := mathx.Linear(meanCSIDB)
	if gammaBar <= 0 {
		return 1
	}
	lo := mathx.Linear(c.modes[0].MinCSIDB)
	return 1 - math.Exp(-lo/gammaBar)
}

// ModeDistribution returns the probability of each mode (index 0 =
// suspended, index q = mode q) under Rayleigh fading with the given mean CSI.
func (c *Coder) ModeDistribution(meanCSIDB float64) []float64 {
	out := make([]float64, len(c.modes)+1)
	gammaBar := mathx.Linear(meanCSIDB)
	if gammaBar <= 0 {
		out[0] = 1
		return out
	}
	out[0] = c.OutageProbability(meanCSIDB)
	for i := range c.modes {
		lo := mathx.Linear(c.modes[i].MinCSIDB)
		hi := math.Inf(1)
		if i+1 < len(c.modes) {
			hi = mathx.Linear(c.modes[i+1].MinCSIDB)
		}
		out[i+1] = math.Exp(-lo/gammaBar) - math.Exp(-hi/gammaBar)
	}
	return out
}

// String describes the coder.
func (c *Coder) String() string {
	return fmt.Sprintf("VTAOC(%d modes, target BER %.1e)", len(c.modes), c.cfg.TargetBER)
}

// FixedRate is the non-adaptive baseline physical layer used for the joint
// design ablation (experiment E8): it always uses a single mode q and offers
// its throughput only while the CSI is above that mode's constant-BER
// threshold (otherwise the frame is in outage).
type FixedRate struct {
	ModeIndex  int
	throughput float64
	minCSIDB   float64
}

// NewFixedRate builds a fixed-rate layer equivalent to mode q of the coder.
func NewFixedRate(c *Coder, q int) (*FixedRate, error) {
	if q < 1 || q > c.NumModes() {
		return nil, fmt.Errorf("vtaoc: fixed-rate mode %d out of range 1..%d", q, c.NumModes())
	}
	m := c.modes[q-1]
	return &FixedRate{ModeIndex: q, throughput: m.Throughput, minCSIDB: m.MinCSIDB}, nil
}

// Throughput returns the offered throughput at the given CSI (0 in outage).
func (f *FixedRate) Throughput(csiDB float64) float64 {
	if csiDB < f.minCSIDB {
		return 0
	}
	return f.throughput
}

// AverageThroughput returns the Rayleigh-averaged throughput of the fixed
// mode at the given mean CSI.
func (f *FixedRate) AverageThroughput(meanCSIDB float64) float64 {
	gammaBar := mathx.Linear(meanCSIDB)
	if gammaBar <= 0 {
		return 0
	}
	p := math.Exp(-mathx.Linear(f.minCSIDB) / gammaBar)
	return p * f.throughput
}

// ThroughputProvider is the interface shared by the adaptive coder and the
// fixed-rate baseline that the MAC/admission layer consumes: it needs only
// the Rayleigh-averaged throughput at the local-mean CSI (the paper's bp_j).
type ThroughputProvider interface {
	AverageThroughput(meanCSIDB float64) float64
}

var (
	_ ThroughputProvider = (*Coder)(nil)
	_ ThroughputProvider = (*FixedRate)(nil)
)
