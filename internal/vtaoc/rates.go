package vtaoc

import (
	"errors"
	"math"
)

// RatePlan captures the spreading-stage relations of the paper's Section 2.2
// (equations 2, 4 and 5): how the overall processing gain, the supplemental
// channel (SCH) bit rate and the required transmit power relate to the
// spreading-gain ratio m and the VTAOC throughput bp.
type RatePlan struct {
	// BandwidthHz is the chip-rate bandwidth W of the wideband CDMA carrier.
	BandwidthHz float64
	// FCHSpreadingGain is the spreading-stage processing gain g_f of the
	// fundamental channel.
	FCHSpreadingGain float64
	// FCHThroughput is the fixed throughput bp_f of the fundamental channel
	// in bits/symbol.
	FCHThroughput float64
	// GammaS is the relative symbol energy-to-interference ratio γ_s between
	// the SCH and the FCH needed to support their respective error targets;
	// the paper notes it depends only on the target error levels, not on the
	// channel, so it is a plan constant.
	GammaS float64
	// MaxSpreadingRatio is M, the largest allowed ratio of FCH to SCH
	// spreading gain (the largest value of m_j the scheduler may assign).
	MaxSpreadingRatio int
}

// DefaultRatePlan returns a cdma2000-like 3.75 MHz wideband carrier plan:
// FCH at 9.6 kbps with spreading gain 256, SCH spreading-gain ratios up to
// 16x, and γ_s = 1.25.
func DefaultRatePlan() RatePlan {
	return RatePlan{
		BandwidthHz:       3_750_000,
		FCHSpreadingGain:  256,
		FCHThroughput:     0.25,
		GammaS:            1.25,
		MaxSpreadingRatio: 16,
	}
}

// Validate reports whether the plan is usable.
func (p RatePlan) Validate() error {
	if p.BandwidthHz <= 0 || p.FCHSpreadingGain <= 0 || p.FCHThroughput <= 0 {
		return errors.New("vtaoc: rate plan requires positive bandwidth, spreading gain and throughput")
	}
	if p.GammaS <= 0 {
		return errors.New("vtaoc: rate plan requires positive GammaS")
	}
	if p.MaxSpreadingRatio < 1 {
		return errors.New("vtaoc: rate plan requires MaxSpreadingRatio >= 1")
	}
	return nil
}

// FCHBitRate returns the fundamental channel bit rate R_f = W * bp_f / g_f
// (equation 2 rearranged).
func (p RatePlan) FCHBitRate() float64 {
	return p.BandwidthHz * p.FCHThroughput / p.FCHSpreadingGain
}

// SCHBitRate returns the supplemental channel bit rate for spreading-gain
// ratio m and VTAOC average throughput bp (equation 4):
//
//	R_s = m * (bp / bp_f) * R_f = W * m * bp / g_f.
func (p RatePlan) SCHBitRate(m int, bp float64) float64 {
	if m <= 0 || bp <= 0 {
		return 0
	}
	return p.BandwidthHz * float64(m) * bp / p.FCHSpreadingGain
}

// RelativeBitRate returns δR_b = R_s / R_f = m * bp / bp_f (equation 4).
func (p RatePlan) RelativeBitRate(m int, bp float64) float64 {
	if m <= 0 || bp <= 0 {
		return 0
	}
	return float64(m) * bp / p.FCHThroughput
}

// PowerRatio returns X_s / X_f, the ratio of the SCH transmit power to the
// FCH transmit power for spreading-gain ratio m (equation 5): the SCH needs
// γ_s times the FCH symbol energy and transmits m times faster, so
//
//	X_s / X_f = γ_s * m.
func (p RatePlan) PowerRatio(m int) float64 {
	if m <= 0 {
		return 0
	}
	return p.GammaS * float64(m)
}

// BurstDuration returns the time (seconds) needed to drain a burst of
// sizeBits at spreading ratio m and average throughput bp; +Inf when the
// assignment carries no data. This is the paper's Q_j / (m_j * bp_j) assigned
// burst duration (Section 3.2) expressed in seconds through the bit rate.
func (p RatePlan) BurstDuration(sizeBits float64, m int, bp float64) float64 {
	r := p.SCHBitRate(m, bp)
	if r <= 0 {
		return math.Inf(1)
	}
	return sizeBits / r
}

// MaxUsefulRatio returns the largest spreading ratio worth assigning to a
// burst of sizeBits given the minimum burst duration T_l (seconds): assigning
// more than this would finish the burst in less than T_l and waste signalling
// overhead (equation 24). The result is clamped to [0, MaxSpreadingRatio].
func (p RatePlan) MaxUsefulRatio(sizeBits float64, bp float64, minDuration float64) int {
	if bp <= 0 || sizeBits <= 0 {
		return 0
	}
	if minDuration <= 0 {
		return p.MaxSpreadingRatio
	}
	// Largest m with BurstDuration(sizeBits, m, bp) >= minDuration.
	perRatioRate := p.BandwidthHz * bp / p.FCHSpreadingGain // bits/s at m = 1
	m := int(sizeBits / (perRatioRate * minDuration))
	if m < 0 {
		m = 0
	}
	if m > p.MaxSpreadingRatio {
		m = p.MaxSpreadingRatio
	}
	return m
}
