// Package mathx provides small numeric helpers shared across the JABA-SD
// simulator: decibel conversions, Gaussian tail functions, safe clamping and
// tolerant floating point comparison.
//
// All functions are pure and safe for concurrent use.
package mathx

import "math"

// DB converts a linear power ratio to decibels. DB(0) returns -Inf.
func DB(linear float64) float64 {
	return 10 * math.Log10(linear)
}

// Linear converts a decibel value to a linear power ratio.
func Linear(db float64) float64 {
	return math.Pow(10, db/10)
}

// QFunc is the Gaussian tail probability Q(x) = P(N(0,1) > x).
func QFunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// QInv is the inverse of QFunc computed by bisection on [-40, 40].
// It returns +Inf for p <= 0 and -Inf for p >= 1.
func QInv(p float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	if p >= 1 {
		return math.Inf(-1)
	}
	lo, hi := -40.0, 40.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if QFunc(mid) > p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Clamp restricts v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampInt restricts v to the closed interval [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// AlmostEqual reports whether a and b are equal within both an absolute and a
// relative tolerance of tol. It treats NaN as never equal and infinities as
// equal only when identical.
func AlmostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

// MeanFloat returns the arithmetic mean of xs, or 0 for an empty slice.
func MeanFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// SumFloat returns the sum of xs.
func SumFloat(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// MaxFloat returns the maximum of xs, or -Inf for an empty slice.
func MaxFloat(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// MinFloat returns the minimum of xs, or +Inf for an empty slice.
func MinFloat(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// MaxInt returns the larger of a and b.
func MaxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MinInt returns the smaller of a and b.
func MinInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Lerp linearly interpolates between a and b with parameter t in [0,1].
func Lerp(a, b, t float64) float64 {
	return a + (b-a)*t
}

// Sq returns x squared.
func Sq(x float64) float64 { return x * x }
