package mathx

import (
	"math"
	"testing"
)

// TestFastExp10Accuracy sweeps the exponent range the channel kernels
// actually use (long-term gains live around 10^-15..10^2) plus a wide guard
// band and pins the relative error against math.Pow.
func TestFastExp10Accuracy(t *testing.T) {
	worst := 0.0
	for x := -300.0; x <= 300.0; x += 0.0037 {
		got := FastExp10(x)
		want := math.Pow(10, x)
		rel := math.Abs(got-want) / want
		if rel > worst {
			worst = rel
		}
	}
	if worst > 1e-12 {
		t.Fatalf("FastExp10 worst relative error %.3e, want <= 1e-12", worst)
	}
}

// TestFastExp10Fallback checks the extreme inputs route through math.Pow.
func TestFastExp10Fallback(t *testing.T) {
	cases := []float64{-400, 400, math.Inf(1), math.Inf(-1), math.NaN()}
	for _, x := range cases {
		got, want := FastExp10(x), math.Pow(10, x)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("FastExp10(%v) = %v, want %v", x, got, want)
		}
	}
}

// TestFastLog10Accuracy sweeps the distance-ratio range of the path loss
// model (squared distances over the reference give 1e-6..1e3) and beyond.
func TestFastLog10Accuracy(t *testing.T) {
	worst := 0.0
	for lg := -30.0; lg <= 30.0; lg += 0.0041 {
		x := math.Pow(10, lg)
		got := FastLog10(x)
		want := math.Log10(x)
		err := math.Abs(got - want)
		if want != 0 {
			if rel := err / math.Abs(want); rel < err {
				err = rel
			}
		}
		if err > worst {
			worst = err
		}
	}
	if worst > 1e-12 {
		t.Fatalf("FastLog10 worst error %.3e, want <= 1e-12", worst)
	}
	// Near-1 inputs exercise the cancellation-prone branch.
	for x := 0.9; x <= 1.1; x += 1e-4 {
		if err := math.Abs(FastLog10(x) - math.Log10(x)); err > 1e-13 {
			t.Fatalf("FastLog10(%v) absolute error %.3e, want <= 1e-13", x, err)
		}
	}
}

// TestFastLog10Fallback checks the degenerate inputs route through
// math.Log10.
func TestFastLog10Fallback(t *testing.T) {
	cases := []float64{0, -1, math.Inf(1), math.NaN()}
	for _, x := range cases {
		got, want := FastLog10(x), math.Log10(x)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("FastLog10(%v) = %v, want %v", x, got, want)
		}
	}
}

// TestFastDBLinearRoundTrip sanity-checks the dB helpers against the exact
// ones.
func TestFastDBLinearRoundTrip(t *testing.T) {
	for db := -160.0; db <= 60.0; db += 0.37 {
		lin := FastLinear(db)
		if rel := math.Abs(lin-Linear(db)) / Linear(db); rel > 1e-12 {
			t.Fatalf("FastLinear(%v) off by %.3e", db, rel)
		}
		if err := math.Abs(FastDB(lin) - db); err > 1e-10 {
			t.Fatalf("FastDB(FastLinear(%v)) off by %.3e", db, err)
		}
	}
}

func BenchmarkFastExp10(b *testing.B) {
	x := -12.7
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += FastExp10(x)
	}
	_ = sink
}

func BenchmarkPow10(b *testing.B) {
	x := -12.7
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += math.Pow(10, x)
	}
	_ = sink
}

func BenchmarkFastLog10(b *testing.B) {
	x := 0.3721
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += FastLog10(x)
	}
	_ = sink
}

// TestGainRowFastAccuracy pins the fused row kernel to the libm composition
// 10^((shadow-refDB)/10) * (d2*invRefM2)^(-halfExp) across the simulator's
// operating range of shadowing values and distances.
func TestGainRowFastAccuracy(t *testing.T) {
	const refDB, halfExp, refM, minD = 28.6, 1.88, 1.0, 10.0
	invRefM2 := 1 / (refM * refM)
	n := 0
	var shadow, d2, gain []float64
	for s := -30.0; s <= 30; s += 2.5 {
		for d := 1.0; d < 6000; d *= 1.37 {
			shadow = append(shadow, s)
			d2 = append(d2, d*d)
			gain = append(gain, 0)
			n++
		}
	}
	GainRowFast(gain, shadow, d2, refDB, halfExp, invRefM2, minD*minD)
	worst := 0.0
	for i := 0; i < n; i++ {
		d := math.Max(math.Sqrt(d2[i]), minD)
		want := math.Pow(10, (shadow[i]-refDB)/10) * math.Pow(d*d*invRefM2, -halfExp)
		if rel := math.Abs(gain[i]-want) / want; rel > worst {
			worst = rel
		}
	}
	if worst > 1e-12 {
		t.Fatalf("GainRowFast worst relative error %.3e, want <= 1e-12", worst)
	}
}

// TestGainRowFastFallback drives the non-normal input and out-of-range
// exponent branches: a zero distance with no clamp, an inf distance, and a
// shadowing value large enough to overflow the fast exponent assembly.
func TestGainRowFastFallback(t *testing.T) {
	shadow := []float64{0, 0, 4000}
	d2 := []float64{0, math.Inf(1), 100}
	gain := make([]float64, 3)
	GainRowFast(gain, shadow, d2, 0, 2, 1, 0)
	if !math.IsInf(gain[0], 1) {
		t.Errorf("zero distance with zero clamp: gain = %v, want +Inf", gain[0])
	}
	if gain[1] != 0 {
		t.Errorf("infinite distance: gain = %v, want 0", gain[1])
	}
	want := math.Pow(10, 4000.0/10) * math.Pow(100, -2)
	if rel := math.Abs(gain[2]-want) / want; rel > 1e-9 {
		t.Errorf("overflow-range exponent off by %.3e relative", rel)
	}
}
