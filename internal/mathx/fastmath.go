package mathx

import "math"

// Fast transcendental kernels for the simulator's batched physics path.
//
// The frame loop evaluates 10^x and log10(x) once per (user, cell) pair per
// frame — tens of thousands of calls — and the libm Pow/Log10 routines
// dominate the CPU profile. FastExp10 and FastLog10 trade the last few bits
// of precision for a 3-5x speedup: both stay within ~1e-12 relative error
// over the simulator's operating range, far below the physical modelling
// error, but they are NOT bit-identical to math.Pow/math.Log10. The engine
// therefore uses them only on the default fast path; the -exact-vtaoc
// reference path keeps the libm calls so golden outputs stay byte-identical.

const (
	log2Of10 = 3.3219280948873623478703194294894 // log2(10)
	ln2Hi    = 6.93147180369123816490e-01        // high bits of ln(2)
	ln2Lo    = 1.90821492927058770002e-10        // ln(2) - ln2Hi
	invLn10  = 4.34294481903251816668e-01        // 1/ln(10)
	invLn2   = 1.44269504088896340736e+00        // 1/ln(2) = log2(e)
	rndShift = 6755399441055744.0                // 1.5 * 2^52, round-to-nearest shifter
	sqrt2    = 1.41421356237309504880168872421
)

// FastExp10 returns 10^x with ~1e-13 relative error for |x| <= 300. Inputs
// outside the safely representable range fall back to math.Pow.
func FastExp10(x float64) float64 {
	y := x * log2Of10 // 10^x = 2^y
	if y != y || y > 1020 || y < -1020 {
		return math.Pow(10, x)
	}
	// Split y = n + f with n integral and |f| <= 0.5, then evaluate
	// 2^f = exp(f*ln2) by a degree-10 Taylor polynomial (|f*ln2| <= 0.347,
	// truncation error below 3e-13 relative) and assemble 2^n exactly from
	// the exponent bits.
	n := math.Round(y)
	t := (y - n) * ln2
	// Horner evaluation of exp(t) = sum t^k/k!, k = 0..10.
	p := 1.0 / 3628800
	p = p*t + 1.0/362880
	p = p*t + 1.0/40320
	p = p*t + 1.0/5040
	p = p*t + 1.0/720
	p = p*t + 1.0/120
	p = p*t + 1.0/24
	p = p*t + 1.0/6
	p = p*t + 0.5
	p = p*t + 1
	p = p*t + 1
	// 2^n for n in [-1022, 1023] straight from the IEEE-754 exponent field.
	bits := uint64(int64(n)+1023) << 52
	return p * math.Float64frombits(bits)
}

const ln2 = ln2Hi + ln2Lo

// FastLog10 returns log10(x) for finite x > 0 with ~1e-14 absolute and
// ~1e-13 relative error. Non-positive, NaN and infinite inputs fall back to
// math.Log10.
func FastLog10(x float64) float64 {
	if !(x > 0) || math.IsInf(x, 1) {
		return math.Log10(x)
	}
	// x = m * 2^e with m in [0.5, 1); renormalise m into [1/sqrt2, sqrt2)
	// so the atanh series argument stays small.
	m, e := math.Frexp(x)
	if m < sqrt2/2 {
		m *= 2
		e--
	}
	// ln(m) = 2*atanh(s) with s = (m-1)/(m+1), |s| <= 0.1716; the s^15 term
	// is below 3e-13 so a 7-term odd series suffices.
	s := (m - 1) / (m + 1)
	s2 := s * s
	series := 1.0 / 13
	series = series*s2 + 1.0/11
	series = series*s2 + 1.0/9
	series = series*s2 + 1.0/7
	series = series*s2 + 1.0/5
	series = series*s2 + 1.0/3
	series = series*s2 + 1
	lnM := 2 * s * series
	return (lnM + float64(e)*ln2) * invLn10
}

// GainRowFast fills gain[k] with the linear long-term channel gain
//
//	10^((shadow[k] - refDB)/10) * (max(d2[k], minD2) * invRefM2)^(-halfExp)
//
// for a whole row of cells at once, where d2 holds SQUARED distances. It is
// the fusion of the per-cell FastLog10 + FastExp10 chain the channel batch
// kernel evaluates, with the same series degrees and therefore the same
// ~1e-12 relative accuracy — but roughly twice the throughput, for two
// reasons. First, the arithmetic stays in base 2 end to end: the distance
// log feeds the exponent bit assembly directly, skipping the log2->log10->
// log2 round trip of the composed calls. Second, both polynomial cores use
// Estrin's scheme instead of Horner's: the frame loop's cost is bounded by
// the serial multiply-add dependency chain, not arithmetic throughput, and
// the shorter Estrin trees let the CPU overlap adjacent cells. Non-normal
// inputs (subnormal, zero, inf, NaN) and out-of-range exponents fall back
// to the scalar fast kernels, which in turn fall back to libm.
func GainRowFast(gain, shadow, d2 []float64, refDB, halfExp, invRefM2, minD2 float64) {
	const c = log2Of10 / 10 // dB -> log2
	_ = shadow[len(gain)-1]
	_ = d2[len(gain)-1]
	for k := range gain {
		v := d2[k]
		if v < minD2 {
			v = minD2
		}
		v *= invRefM2
		bits := math.Float64bits(v)
		expField := int64(bits>>52) & 0x7FF
		var y float64
		if expField == 0 || expField == 0x7FF {
			y = (shadow[k]-refDB)*c - halfExp*log2Of10*FastLog10(v)
		} else {
			// v = m * 2^e with m in [0.5, 1), renormalised into
			// [1/sqrt2, sqrt2) exactly as in FastLog10.
			m := math.Float64frombits((bits &^ (0x7FF << 52)) | (1022 << 52))
			e := expField - 1022
			if m < sqrt2/2 {
				m *= 2
				e--
			}
			// log2(m) = 2*atanh(s)/ln2, 7-term odd series in s, Estrin form.
			s := (m - 1) / (m + 1)
			w := s * s
			w2 := w * w
			series := (1 + w*(1.0/3)) + w2*(1.0/5+w*(1.0/7)) +
				(w2*w2)*((1.0/9+w*(1.0/11))+w2*(1.0/13))
			log2m := (2 * invLn2) * s * series
			y = (shadow[k]-refDB)*c - halfExp*(float64(e)+log2m)
		}
		// gain = 2^y, assembled as in FastExp10 but with the degree-10
		// exp(t) Taylor core in Estrin form.
		if y != y || y > 1020 || y < -1020 {
			gain[k] = FastExp10(y / log2Of10)
			continue
		}
		// Round to nearest via the 1.5*2^52 shift trick (round-half-even
		// where math.Round is half-away — they differ only on exact
		// half-integers, and |y - n| <= 0.5 either way).
		shifted := y + rndShift
		n := shifted - rndShift
		t := (y - n) * ln2
		t2 := t * t
		t4 := t2 * t2
		p := (1 + t) + t2*(0.5+t*(1.0/6)) +
			t4*((1.0/24+t*(1.0/120))+t2*(1.0/720+t*(1.0/5040))) +
			(t4*t4)*((1.0/40320+t*(1.0/362880))+t2*(1.0/3628800))
		gain[k] = p * math.Float64frombits(uint64(int64(n)+1023)<<52)
	}
}

// FastDB converts a linear power ratio to decibels using FastLog10.
func FastDB(linear float64) float64 {
	return 10 * FastLog10(linear)
}

// FastLinear converts a decibel value to a linear power ratio using
// FastExp10.
func FastLinear(db float64) float64 {
	return FastExp10(db / 10)
}
