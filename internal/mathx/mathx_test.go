package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDBLinearRoundTrip(t *testing.T) {
	for _, db := range []float64{-30, -10, -3, 0, 3, 10, 20, 40} {
		got := DB(Linear(db))
		if !AlmostEqual(got, db, 1e-9) {
			t.Errorf("DB(Linear(%v)) = %v, want %v", db, got, db)
		}
	}
}

func TestDBKnownValues(t *testing.T) {
	if !AlmostEqual(DB(1), 0, 1e-12) {
		t.Errorf("DB(1) = %v, want 0", DB(1))
	}
	if !AlmostEqual(DB(10), 10, 1e-12) {
		t.Errorf("DB(10) = %v, want 10", DB(10))
	}
	if !AlmostEqual(Linear(3), 1.9952623149688795, 1e-9) {
		t.Errorf("Linear(3) = %v", Linear(3))
	}
	if !math.IsInf(DB(0), -1) {
		t.Errorf("DB(0) = %v, want -Inf", DB(0))
	}
}

func TestQFuncKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.15865525393145707},
		{2, 0.022750131948179195},
		{3, 0.0013498980316300933},
		{-1, 0.8413447460685429},
	}
	for _, c := range cases {
		if got := QFunc(c.x); !AlmostEqual(got, c.want, 1e-9) {
			t.Errorf("QFunc(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestQInvRoundTrip(t *testing.T) {
	for _, p := range []float64{0.4, 0.1, 0.01, 1e-3, 1e-6} {
		x := QInv(p)
		if got := QFunc(x); !AlmostEqual(got, p, 1e-6) {
			t.Errorf("QFunc(QInv(%v)) = %v", p, got)
		}
	}
	if !math.IsInf(QInv(0), 1) {
		t.Errorf("QInv(0) should be +Inf")
	}
	if !math.IsInf(QInv(1), -1) {
		t.Errorf("QInv(1) should be -Inf")
	}
}

func TestQFuncMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(math.Abs(a), 10)
		b = math.Mod(math.Abs(b), 10)
		if a > b {
			a, b = b, a
		}
		return QFunc(a) >= QFunc(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 3); got != 3 {
		t.Errorf("Clamp(5,0,3) = %v", got)
	}
	if got := Clamp(-1, 0, 3); got != 0 {
		t.Errorf("Clamp(-1,0,3) = %v", got)
	}
	if got := Clamp(2, 0, 3); got != 2 {
		t.Errorf("Clamp(2,0,3) = %v", got)
	}
	if got := ClampInt(7, 1, 5); got != 5 {
		t.Errorf("ClampInt(7,1,5) = %v", got)
	}
	if got := ClampInt(-7, 1, 5); got != 1 {
		t.Errorf("ClampInt(-7,1,5) = %v", got)
	}
	if got := ClampInt(3, 1, 5); got != 3 {
		t.Errorf("ClampInt(3,1,5) = %v", got)
	}
}

func TestClampProperty(t *testing.T) {
	f := func(v, a, b float64) bool {
		lo, hi := math.Min(a, b), math.Max(a, b)
		got := Clamp(v, lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1.0, 1.0+1e-12, 1e-9) {
		t.Error("expected near-equal values to compare equal")
	}
	if AlmostEqual(1.0, 1.1, 1e-9) {
		t.Error("expected distinct values to compare unequal")
	}
	if AlmostEqual(math.NaN(), math.NaN(), 1) {
		t.Error("NaN should not be AlmostEqual to anything")
	}
	if !AlmostEqual(math.Inf(1), math.Inf(1), 1e-9) {
		t.Error("equal infinities should compare equal")
	}
	if AlmostEqual(math.Inf(1), math.Inf(-1), 1e-9) {
		t.Error("opposite infinities should not compare equal")
	}
	if !AlmostEqual(1e12, 1e12+1, 1e-9) {
		t.Error("relative tolerance should admit large near-equal values")
	}
}

func TestMeanSumMinMax(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := MeanFloat(xs); got != 2.5 {
		t.Errorf("MeanFloat = %v", got)
	}
	if got := SumFloat(xs); got != 10 {
		t.Errorf("SumFloat = %v", got)
	}
	if got := MaxFloat(xs); got != 4 {
		t.Errorf("MaxFloat = %v", got)
	}
	if got := MinFloat(xs); got != 1 {
		t.Errorf("MinFloat = %v", got)
	}
	if got := MeanFloat(nil); got != 0 {
		t.Errorf("MeanFloat(nil) = %v", got)
	}
	if !math.IsInf(MaxFloat(nil), -1) {
		t.Errorf("MaxFloat(nil) should be -Inf")
	}
	if !math.IsInf(MinFloat(nil), 1) {
		t.Errorf("MinFloat(nil) should be +Inf")
	}
}

func TestMinMaxInt(t *testing.T) {
	if MaxInt(2, 3) != 3 || MaxInt(3, 2) != 3 {
		t.Error("MaxInt broken")
	}
	if MinInt(2, 3) != 2 || MinInt(3, 2) != 2 {
		t.Error("MinInt broken")
	}
}

func TestLerp(t *testing.T) {
	if got := Lerp(0, 10, 0.5); got != 5 {
		t.Errorf("Lerp = %v", got)
	}
	if got := Lerp(2, 2, 0.7); got != 2 {
		t.Errorf("Lerp same endpoints = %v", got)
	}
	if got := Lerp(1, 3, 0); got != 1 {
		t.Errorf("Lerp t=0 = %v", got)
	}
	if got := Lerp(1, 3, 1); got != 3 {
		t.Errorf("Lerp t=1 = %v", got)
	}
}

func TestSq(t *testing.T) {
	if Sq(3) != 9 {
		t.Error("Sq broken")
	}
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		return Sq(x) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
