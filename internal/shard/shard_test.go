package shard

import (
	"math"
	"testing"

	"jabasd/internal/cellular"
)

func TestNewPlanPartition(t *testing.T) {
	for _, tc := range []struct{ cells, tiles, wantTiles int }{
		{19, 1, 1},
		{19, 4, 4},
		{19, 19, 19},
		{19, 40, 19}, // clamped to one cell per tile
		{19, 0, 1},   // clamped up
		{19, -3, 1},
		{1027, 8, 8},
	} {
		p := NewPlan(tc.cells, tc.tiles)
		if p.Tiles() != tc.wantTiles {
			t.Fatalf("NewPlan(%d, %d): %d tiles, want %d", tc.cells, tc.tiles, p.Tiles(), tc.wantTiles)
		}
		// Spans are contiguous, ascending, cover [0, cells) exactly, and are
		// balanced to within one cell.
		next := 0
		minLen, maxLen := math.MaxInt, 0
		for _, s := range p.Spans {
			if s.Lo != next {
				t.Fatalf("NewPlan(%d, %d): span %+v does not start at %d", tc.cells, tc.tiles, s, next)
			}
			if s.Len() < 1 {
				t.Fatalf("NewPlan(%d, %d): empty span %+v", tc.cells, tc.tiles, s)
			}
			minLen = min(minLen, s.Len())
			maxLen = max(maxLen, s.Len())
			next = s.Hi
		}
		if next != tc.cells {
			t.Fatalf("NewPlan(%d, %d): spans end at %d, want %d", tc.cells, tc.tiles, next, tc.cells)
		}
		if maxLen-minLen > 1 {
			t.Fatalf("NewPlan(%d, %d): unbalanced spans (min %d, max %d)", tc.cells, tc.tiles, minLen, maxLen)
		}
		for k := 0; k < tc.cells; k++ {
			if ti := p.TileOf(k); !p.Span(ti).Contains(k) {
				t.Fatalf("NewPlan(%d, %d): TileOf(%d) = %d, span %+v does not contain it",
					tc.cells, tc.tiles, k, ti, p.Span(ti))
			}
		}
	}
}

func TestNewPlanEmpty(t *testing.T) {
	if p := NewPlan(0, 4); p.Tiles() != 0 {
		t.Fatalf("NewPlan(0, 4) = %+v, want empty", p)
	}
}

func TestHalo(t *testing.T) {
	l := cellular.NewHexLayout(2, 1000, true)
	interSite := math.Sqrt(3) * l.CellRadius
	radius := 1.1 * interSite
	p := NewPlan(l.NumCells(), 3)
	halos := Halo(p, l, radius)
	if len(halos) != p.Tiles() {
		t.Fatalf("Halo returned %d tiles, want %d", len(halos), p.Tiles())
	}
	for t2, halo := range halos {
		span := p.Span(t2)
		seen := map[int]bool{}
		for i, k := range halo {
			if span.Contains(k) {
				t.Fatalf("tile %d halo contains own cell %d", t2, k)
			}
			if seen[k] {
				t.Fatalf("tile %d halo repeats cell %d", t2, k)
			}
			seen[k] = true
			if i > 0 && halo[i-1] >= k {
				t.Fatalf("tile %d halo not ascending: %v", t2, halo)
			}
		}
		// Brute-force definition check: outside cell within radius of some
		// span cell <=> in the halo.
		for k := 0; k < p.Cells; k++ {
			if span.Contains(k) {
				continue
			}
			want := false
			for j := span.Lo; j < span.Hi; j++ {
				if l.Distance(l.Cells[k].Position, j) <= radius {
					want = true
					break
				}
			}
			if want != seen[k] {
				t.Fatalf("tile %d: cell %d halo membership = %v, want %v", t2, k, seen[k], want)
			}
		}
		if len(halo) == 0 {
			t.Fatalf("tile %d: expected a non-empty halo at radius %.0f m", t2, radius)
		}
	}
	// A single tile owns everything: nothing to import.
	whole := Halo(NewPlan(l.NumCells(), 1), l, radius)
	if len(whole) != 1 || len(whole[0]) != 0 {
		t.Fatalf("single-tile halo = %v, want one empty set", whole)
	}
}
