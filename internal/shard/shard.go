// Package shard partitions the hexagonal cell grid into contiguous tiles
// for the city-scale frame loop: each tile owns a contiguous span of cell
// indices — and with them those cells' admission queues, warm solver
// clones, measurement-region caches and grant buffers — so the per-frame
// measure+solve phase fans the tiles over a worker pool with no shared
// mutable state. Because the engine creates users cell by cell in index
// order, a contiguous cell span also owns a contiguous user-id range.
//
// Tiles are not isolated: a cell's admissible region reads the frame-start
// interference ledger of its users' reduced-active-set and SCRM-reported
// neighbour cells, some of which belong to adjacent tiles. Halo computes
// exactly that import set per tile — the cells outside the tile within the
// interference radius of any of its cells — which is the only cross-tile
// state a tile consumes, and it consumes it read-only from the immutable
// frame-start snapshot; grants are committed sequentially in global cell
// order at the frame boundary (the "halo exchange").
package shard

import "jabasd/internal/cellular"

// Span is a half-open range of cell indices [Lo, Hi) owned by one tile.
type Span struct {
	Lo, Hi int
}

// Len returns the number of cells in the span.
func (s Span) Len() int { return s.Hi - s.Lo }

// Contains reports whether the span owns cell k.
func (s Span) Contains(k int) bool { return k >= s.Lo && k < s.Hi }

// Plan is a partition of cells [0, Cells) into contiguous, balanced tile
// spans. The zero value is an empty plan.
type Plan struct {
	// Cells is the total cell count being partitioned.
	Cells int
	// Spans are the tile spans in ascending cell order; span i is tile i.
	Spans []Span
}

// NewPlan partitions cells into the requested number of contiguous tiles,
// clamped to [1, cells]: span sizes differ by at most one (the first
// cells%tiles tiles take the extra cell). Iterating the spans in order
// visits every cell exactly once in ascending index order, which is what
// keeps tiled per-frame output byte-identical to the untiled loop.
func NewPlan(cells, tiles int) Plan {
	if cells < 1 {
		return Plan{}
	}
	if tiles < 1 {
		tiles = 1
	}
	if tiles > cells {
		tiles = cells
	}
	base, rem := cells/tiles, cells%tiles
	p := Plan{Cells: cells, Spans: make([]Span, tiles)}
	lo := 0
	for t := range p.Spans {
		size := base
		if t < rem {
			size++
		}
		p.Spans[t] = Span{Lo: lo, Hi: lo + size}
		lo += size
	}
	return p
}

// Tiles returns the number of tiles in the plan.
func (p Plan) Tiles() int { return len(p.Spans) }

// Span returns tile t's cell span.
func (p Plan) Span(t int) Span { return p.Spans[t] }

// TileOf returns the tile owning cell k (constant time, using the balanced
// span sizes NewPlan produces).
func (p Plan) TileOf(k int) int {
	tiles := len(p.Spans)
	base, rem := p.Cells/tiles, p.Cells%tiles
	big := rem * (base + 1)
	if k < big {
		return k / (base + 1)
	}
	return rem + (k-big)/base
}

// Halo returns, for each tile, the ascending list of cells OUTSIDE the tile
// whose site lies within radius metres of any of the tile's cell sites
// (site-to-site distance, honouring the layout's wrap-around). With radius
// set to the reach of the users' measurement windows (candidate radius plus
// slack for the user's offset inside its bucket), a tile's solves read the
// frame-start ledger only at its own cells and its halo — the cross-tile
// interference import the tiled frame loop exchanges at frame boundaries.
func Halo(p Plan, l *cellular.Layout, radius float64) [][]int {
	halos := make([][]int, p.Tiles())
	for t, span := range p.Spans {
		var halo []int
		for k := 0; k < p.Cells; k++ {
			if span.Contains(k) {
				continue
			}
			pos := l.Cells[k].Position
			for j := span.Lo; j < span.Hi; j++ {
				if l.Distance(pos, j) <= radius {
					halo = append(halo, k)
					break
				}
			}
		}
		halos[t] = halo
	}
	return halos
}
