// Package replay records and re-solves the admission layer's scheduling
// problems. The engine can stream every (frame, cell) problem it solves —
// the gathered requests, the admissible region and the ratios the
// scheduler assigned — into a JSON-Lines solve trace. The trace is a
// complete, physics-free description of the admission decisions: replaying
// it under a different scheduler or objective answers "what would the
// other policy have granted against the exact same offered load and radio
// conditions?" without re-simulating mobility, fading or power control.
//
// The counterfactual is one-sided by construction: the recorded regions
// embed the loads the ORIGINAL policy's grants produced, so a replayed
// policy's decisions do not feed back into later frames. That is exactly
// the paper's per-frame comparison setting — each frame's admissible
// region is a measurement input, and two schedulers are compared on the
// same measurements.
package replay

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"jabasd/internal/core"
	"jabasd/internal/mac"
	"jabasd/internal/measurement"
	"jabasd/internal/report"
)

// Format identifies the solve-trace encoding: a header line with this
// format tag, then one Problem object per line.
const Format = "jabasd-solve-trace/v1"

// Header is the trace's first line: the scheduling context every recorded
// problem was solved under, so a replay can reproduce the original
// assignments exactly (same scheduler, objective, ratio cap and MAC
// timers) or deliberately vary one axis.
type Header struct {
	Format       string         `json:"format"`
	Scheduler    string         `json:"scheduler"`
	Objective    core.Objective `json:"objective"`
	MaxRatio     int            `json:"max_ratio"`
	MAC          mac.Config     `json:"mac"`
	FrameLengthS float64        `json:"frame_length_s"`
	Seed         uint64         `json:"seed"`
}

// Problem is one recorded (frame, cell) scheduling problem plus the ratios
// the recording run's scheduler assigned (aligned with Requests; zero means
// not granted).
type Problem struct {
	Frame    int                `json:"frame"`
	TimeS    float64            `json:"time_s"`
	Cell     int                `json:"cell"`
	Requests []core.Request     `json:"requests"`
	Region   measurement.Region `json:"region"`
	Ratios   []int              `json:"ratios"`
}

// CopyProblem deep-copies a problem out of the engine's reused per-frame
// scratch (request slices, region rows and assignment buffers are all
// recycled across cells), so the recorder can hold it past the solve.
func CopyProblem(frame int, timeS float64, cell int, reqs []core.Request, region measurement.Region, ratios []int) *Problem {
	p := &Problem{
		Frame:    frame,
		TimeS:    timeS,
		Cell:     cell,
		Requests: append([]core.Request(nil), reqs...),
		Ratios:   append([]int{}, ratios...),
		Region: measurement.Region{
			Coeff: make([][]float64, len(region.Coeff)),
			Bound: append([]float64(nil), region.Bound...),
			Cells: append([]int(nil), region.Cells...),
		},
	}
	for i, row := range region.Coeff {
		p.Region.Coeff[i] = append([]float64(nil), row...)
	}
	return p
}

// Recorder streams a solve trace: the header on creation, then one line
// per emitted problem. Emission errors are sticky and surfaced by Err, so
// the hot solve path never has to check a return value.
type Recorder struct {
	w    io.Writer
	err  error
	head bool
	hdr  Header
}

// NewRecorder creates a recorder writing to w. The header is written
// lazily, before the first problem, so constructing a recorder that never
// records costs nothing.
func NewRecorder(w io.Writer, hdr Header) *Recorder {
	hdr.Format = Format
	return &Recorder{w: w, hdr: hdr}
}

// Emit appends one problem line.
func (r *Recorder) Emit(p *Problem) {
	if r.err != nil {
		return
	}
	if !r.head {
		r.head = true
		if r.err = r.writeJSONLine(r.hdr); r.err != nil {
			return
		}
	}
	r.err = r.writeJSONLine(p)
}

func (r *Recorder) writeJSONLine(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("replay: encoding solve trace: %w", err)
	}
	b = append(b, '\n')
	if _, err := r.w.Write(b); err != nil {
		return fmt.Errorf("replay: writing solve trace: %w", err)
	}
	return nil
}

// Err returns the first emission error, if any.
func (r *Recorder) Err() error { return r.err }

// ReadTrace parses a solve trace: the header line, then every problem in
// recorded order.
func ReadTrace(rd io.Reader) (Header, []*Problem, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<16), 64<<20) // region rows scale with cells
	var hdr Header
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return hdr, nil, fmt.Errorf("replay: reading solve trace: %w", err)
		}
		return hdr, nil, fmt.Errorf("replay: solve trace is empty")
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return hdr, nil, fmt.Errorf("replay: solve trace header does not parse: %w", err)
	}
	if hdr.Format != Format {
		return hdr, nil, fmt.Errorf("replay: unsupported solve-trace format %q (this build reads %q)", hdr.Format, Format)
	}
	var problems []*Problem
	for line := 2; sc.Scan(); line++ {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		p := &Problem{}
		if err := json.Unmarshal(sc.Bytes(), p); err != nil {
			return hdr, nil, fmt.Errorf("replay: solve trace line %d does not parse: %w", line, err)
		}
		if len(p.Ratios) != len(p.Requests) {
			return hdr, nil, fmt.Errorf("replay: solve trace line %d: %d ratios for %d requests", line, len(p.Ratios), len(p.Requests))
		}
		problems = append(problems, p)
	}
	if err := sc.Err(); err != nil {
		return hdr, nil, fmt.Errorf("replay: reading solve trace: %w", err)
	}
	return hdr, problems, nil
}

// Resolve re-solves every recorded problem with the given scheduler and
// objective, against the recorded regions and requests. Stateful schedulers
// are reseeded per (frame, cell) exactly like the engine's snapshot mode,
// so a replay is deterministic regardless of problem order. The returned
// assignments align with problems.
func Resolve(hdr Header, problems []*Problem, sched core.Scheduler, obj core.Objective) ([]core.Assignment, error) {
	out := make([]core.Assignment, len(problems))
	for i, p := range problems {
		if cs, ok := sched.(core.CellSeeder); ok {
			cs.SeedCell(uint64(p.Frame), uint64(p.Cell))
		}
		a, err := sched.Schedule(core.Problem{
			Requests:  p.Requests,
			Region:    p.Region,
			MaxRatio:  hdr.MaxRatio,
			Objective: obj,
			MAC:       &hdr.MAC,
		})
		if err != nil {
			return nil, fmt.Errorf("replay: frame %d cell %d: %w", p.Frame, p.Cell, err)
		}
		out[i] = a
	}
	return out, nil
}

// WriteGrantsCSV writes one row per recorded request with the ratio the
// given assignments grant it — zero rows included, so two replays of the
// same trace produce line-aligned, directly diffable files.
func WriteGrantsCSV(w io.Writer, problems []*Problem, assignments []core.Assignment) error {
	if len(assignments) != len(problems) {
		return fmt.Errorf("replay: %d assignments for %d problems", len(assignments), len(problems))
	}
	var sb bytes.Buffer
	sb.WriteString(report.CSVLine([]string{"frame", "cell", "user", "ratio"}))
	row := make([]string, 4)
	for i, p := range problems {
		ratios := assignments[i].Ratios
		for j, req := range p.Requests {
			m := 0
			if j < len(ratios) {
				m = ratios[j]
			}
			row[0] = strconv.Itoa(p.Frame)
			row[1] = strconv.Itoa(p.Cell)
			row[2] = strconv.Itoa(req.UserID)
			row[3] = strconv.Itoa(m)
			sb.WriteString(report.CSVLine(row))
		}
	}
	_, err := w.Write(sb.Bytes())
	return err
}

// RecordedAssignments converts the ratios stored in the trace back into
// assignments, for diffing a replay against the original decisions with
// the same WriteGrantsCSV shape.
func RecordedAssignments(problems []*Problem) []core.Assignment {
	out := make([]core.Assignment, len(problems))
	for i, p := range problems {
		out[i] = core.Assignment{Ratios: p.Ratios}
	}
	return out
}
