// Package lp implements a small dense two-phase primal simplex solver for
// linear programs in the inequality form
//
//	maximise    c'x
//	subject to  A x <= b
//	            0 <= x
//
// which is exactly the shape of the LP relaxation of the paper's burst
// admission integer program (eq. 7 and 17 plus the burst-duration upper
// bounds expressed as extra rows). The solver is deterministic and uses
// Bland's rule to avoid cycling.
//
// Two entry points are provided: the package-level Solve for one-shot
// convenience, and the reusable Solver whose tableau, basis and objective
// rows are arenas reused across calls — the branch-and-bound search in
// package ilp solves one LP per node, and a warm Solver makes that loop
// allocation-free in the steady state.
package lp

import (
	"errors"
	"math"
)

// Status describes the outcome of a solve.
type Status int

const (
	// Optimal means an optimal bounded solution was found.
	Optimal Status = iota
	// Infeasible means the constraint set is empty.
	Infeasible
	// Unbounded means the objective can grow without limit.
	Unbounded
)

// String returns a human readable status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return "unknown"
	}
}

// ErrBadShape is returned when the problem dimensions are inconsistent.
var ErrBadShape = errors.New("lp: inconsistent problem dimensions")

// Problem is a linear program in the form maximise c'x s.t. A x <= b, x >= 0.
type Problem struct {
	C []float64   // objective coefficients, length n
	A [][]float64 // constraint matrix, m rows of length n
	B []float64   // right-hand side, length m (may be negative)
}

// Result holds the outcome of solving a Problem.
type Result struct {
	Status    Status
	X         []float64 // primal solution (valid when Status == Optimal)
	Objective float64   // c'X (valid when Status == Optimal)
}

const eps = 1e-9

// Solve runs the two-phase simplex method on p using a throwaway Solver.
// Callers solving many problems should hold a Solver and reuse it.
func Solve(p Problem) (Result, error) {
	var s Solver
	return s.Solve(p)
}

// Solver is a reusable two-phase simplex solver. Its tableau (one flat slab
// carved into rows with spare capacity for the phase-1 artificial columns),
// basis, objective row and solution vector are buffers that grow to the
// high-water problem size and are then reused, so steady-state Solve calls
// do not allocate. The zero value is ready to use.
//
// Result.X returned by Solve aliases the Solver's solution buffer and is
// only valid until the next Solve call; it must not be mutated. A Solver is
// not safe for concurrent use — give each goroutine its own.
type Solver struct {
	n, m, nTot int
	// rows holds the m tableau rows, each of length nTot+1 (last column is
	// the rhs) with capacity for up to m phase-1 artificial columns; the
	// backing storage is the slab.
	slab  []float64
	rows  [][]float64
	obj   []float64 // objective row (maximisation, reduced costs)
	basis []int     // basis[i] = variable index basic in row i
	origC []float64
	x     []float64
	art   []int // phase-1 scratch: rows that received an artificial variable
}

// Solve runs the two-phase simplex method on p, reusing the solver's
// buffers. See the Solver doc comment for the Result.X aliasing contract.
func (s *Solver) Solve(p Problem) (Result, error) {
	n := len(p.C)
	m := len(p.A)
	if len(p.B) != m {
		return Result{}, ErrBadShape
	}
	for _, row := range p.A {
		if len(row) != n {
			return Result{}, ErrBadShape
		}
	}
	if n == 0 {
		// Trivial: x is empty; feasible iff b >= 0.
		for _, b := range p.B {
			if b < -eps {
				return Result{Status: Infeasible}, nil
			}
		}
		return Result{Status: Optimal, X: []float64{}, Objective: 0}, nil
	}

	s.reset(p)
	// Phase 1 only needed if some b < 0 (slack basis infeasible).
	if s.needsPhase1() {
		if !s.phase1() {
			return Result{Status: Infeasible}, nil
		}
	}
	status := s.phase2()
	if status == Unbounded {
		return Result{Status: Unbounded}, nil
	}
	x := s.extract()
	obj := 0.0
	for i, c := range p.C {
		obj += c * x[i]
	}
	return Result{Status: Optimal, X: x, Objective: obj}, nil
}

// reset loads p into the solver's arena: structural variables 0..n-1, slack
// variables n..n+m-1 and (during phase 1) artificial variables beyond that.
func (s *Solver) reset(p Problem) {
	n, m := len(p.C), len(p.A)
	s.n, s.m, s.nTot = n, m, n+m
	// Row stride reserves one column per possible artificial variable (at
	// most one per row) so phase 1 can widen rows in place.
	stride := s.nTot + 1 + m
	if cap(s.slab) < m*stride {
		s.slab = make([]float64, m*stride)
	}
	slab := s.slab[:m*stride]
	if cap(s.rows) < m {
		s.rows = make([][]float64, m)
	}
	s.rows = s.rows[:m]
	if cap(s.basis) < m {
		s.basis = make([]int, m)
	}
	s.basis = s.basis[:m]
	if cap(s.obj) < stride {
		s.obj = make([]float64, stride)
	}
	if cap(s.x) < n {
		s.x = make([]float64, n)
	}
	s.x = s.x[:n]
	s.origC = append(s.origC[:0], p.C...)
	for i := 0; i < m; i++ {
		row := slab[i*stride : i*stride+s.nTot+1 : (i+1)*stride]
		copy(row, p.A[i])
		for j := n; j < s.nTot; j++ {
			row[j] = 0
		}
		row[n+i] = 1 // slack
		row[s.nTot] = p.B[i]
		s.rows[i] = row
		s.basis[i] = n + i
	}
}

func (s *Solver) needsPhase1() bool {
	for i := 0; i < s.m; i++ {
		if s.rows[i][s.nTot] < -eps {
			return true
		}
	}
	return false
}

// phase1 restores feasibility by adding one artificial variable per negative
// row and minimising their sum. Returns false if the LP is infeasible.
func (s *Solver) phase1() bool {
	// Add artificial variables for rows with negative rhs (after negating).
	artRows := s.art[:0]
	for i := 0; i < s.m; i++ {
		if s.rows[i][s.nTot] < -eps {
			// Negate row so rhs >= 0; slack coefficient flips sign.
			for j := range s.rows[i] {
				s.rows[i][j] = -s.rows[i][j]
			}
			artRows = append(artRows, i)
		}
	}
	s.art = artRows
	if len(artRows) == 0 {
		return true
	}
	oldTot := s.nTot
	s.nTot += len(artRows)
	for i := range s.rows {
		// Widen the row in place (capacity reserved in reset): zero the new
		// artificial columns and move the rhs to the last column.
		row := s.rows[i]
		rhs := row[oldTot]
		row = row[:s.nTot+1]
		for j := oldTot; j <= s.nTot; j++ {
			row[j] = 0
		}
		row[s.nTot] = rhs
		s.rows[i] = row
	}
	for k, ri := range artRows {
		s.rows[ri][oldTot+k] = 1
		s.basis[ri] = oldTot + k
	}
	// Phase-1 objective: maximise -(sum of artificials).
	s.obj = s.obj[:s.nTot+1]
	for j := range s.obj {
		s.obj[j] = 0
	}
	for k := range artRows {
		s.obj[oldTot+k] = -1
	}
	// Price out basic artificials.
	for _, ri := range artRows {
		for j := 0; j <= s.nTot; j++ {
			s.obj[j] += s.rows[ri][j]
		}
	}
	s.iterate()
	if s.obj[s.nTot] > eps {
		return false // artificials cannot be driven to zero
	}
	// Pivot any artificial still in the basis (at zero level) out if possible.
	for i := 0; i < s.m; i++ {
		if s.basis[i] >= oldTot {
			pivoted := false
			for j := 0; j < oldTot; j++ {
				if math.Abs(s.rows[i][j]) > eps {
					s.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; leave the artificial basic at value 0.
				continue
			}
		}
	}
	// Drop artificial columns.
	for i := range s.rows {
		rhs := s.rows[i][s.nTot]
		row := s.rows[i][:oldTot+1]
		row[oldTot] = rhs
		s.rows[i] = row
	}
	s.nTot = oldTot
	return true
}

// phase2 optimises the true objective from the current feasible basis. When
// phase 1 ran, the basis is a warm start: the feasible basis it found is
// re-priced rather than rebuilt.
func (s *Solver) phase2() Status {
	s.obj = s.obj[:s.nTot+1]
	for j := range s.obj {
		s.obj[j] = 0
	}
	for j := 0; j < s.n; j++ {
		s.obj[j] = s.origC[j]
	}
	// Price out basic variables with nonzero objective coefficients.
	for i, b := range s.basis {
		if b < s.nTot && s.obj[b] != 0 {
			coef := s.obj[b]
			for j := 0; j <= s.nTot; j++ {
				s.obj[j] -= coef * s.rows[i][j]
			}
		}
	}
	return s.iterate()
}

// iterate runs primal simplex pivots until optimality or unboundedness.
func (s *Solver) iterate() Status {
	maxIter := 200 * (s.m + s.nTot + 10)
	for iter := 0; iter < maxIter; iter++ {
		// Entering variable: Bland's rule (smallest index with positive
		// reduced cost) for guaranteed termination.
		col := -1
		for j := 0; j < s.nTot; j++ {
			if s.obj[j] > eps {
				col = j
				break
			}
		}
		if col < 0 {
			return Optimal
		}
		// Ratio test.
		row := -1
		best := math.Inf(1)
		for i := 0; i < s.m; i++ {
			a := s.rows[i][col]
			if a > eps {
				ratio := s.rows[i][s.nTot] / a
				if ratio < best-eps || (math.Abs(ratio-best) <= eps && (row < 0 || s.basis[i] < s.basis[row])) {
					best = ratio
					row = i
				}
			}
		}
		if row < 0 {
			return Unbounded
		}
		s.pivot(row, col)
	}
	return Optimal
}

// pivot makes variable col basic in row.
func (s *Solver) pivot(row, col int) {
	p := s.rows[row][col]
	inv := 1 / p
	for j := 0; j <= s.nTot; j++ {
		s.rows[row][j] *= inv
	}
	for i := 0; i < s.m; i++ {
		if i == row {
			continue
		}
		f := s.rows[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j <= s.nTot; j++ {
			s.rows[i][j] -= f * s.rows[row][j]
		}
	}
	if s.obj != nil {
		f := s.obj[col]
		if f != 0 {
			for j := 0; j <= s.nTot; j++ {
				s.obj[j] -= f * s.rows[row][j]
			}
		}
	}
	s.basis[row] = col
}

// extract reads the structural variable values out of the tableau.
func (s *Solver) extract() []float64 {
	x := s.x
	for j := range x {
		x[j] = 0
	}
	for i, b := range s.basis {
		if b < s.n {
			v := s.rows[i][s.nTot]
			if v < 0 && v > -1e-7 {
				v = 0
			}
			x[b] = v
		}
	}
	return x
}
