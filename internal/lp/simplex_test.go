package lp

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSimple2D(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0.
	// Optimum at (4, 0) with value 12.
	res, err := Solve(Problem{
		C: []float64{3, 2},
		A: [][]float64{{1, 1}, {1, 3}},
		B: []float64{4, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !approx(res.Objective, 12, 1e-6) {
		t.Errorf("objective = %v, want 12", res.Objective)
	}
	if !approx(res.X[0], 4, 1e-6) || !approx(res.X[1], 0, 1e-6) {
		t.Errorf("x = %v, want [4 0]", res.X)
	}
}

func TestClassicProblem(t *testing.T) {
	// max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6. Optimum (3, 1.5), value 21.
	res, err := Solve(Problem{
		C: []float64{5, 4},
		A: [][]float64{{6, 4}, {1, 2}},
		B: []float64{24, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Objective, 21, 1e-6) {
		t.Errorf("objective = %v, want 21", res.Objective)
	}
	if !approx(res.X[0], 3, 1e-6) || !approx(res.X[1], 1.5, 1e-6) {
		t.Errorf("x = %v, want [3 1.5]", res.X)
	}
}

func TestUnbounded(t *testing.T) {
	// max x with only x - y <= 1: x can grow with y.
	res, err := Solve(Problem{
		C: []float64{1, 0},
		A: [][]float64{{1, -1}},
		B: []float64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unbounded {
		t.Errorf("status = %v, want Unbounded", res.Status)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= -1 with x >= 0 is infeasible.
	res, err := Solve(Problem{
		C: []float64{1},
		A: [][]float64{{1}, {-1}},
		B: []float64{-2, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Errorf("status = %v, want Infeasible", res.Status)
	}
}

func TestNegativeRHSFeasible(t *testing.T) {
	// Constraint -x <= -2 means x >= 2; with x <= 5, max x = 5.
	res, err := Solve(Problem{
		C: []float64{1},
		A: [][]float64{{-1}, {1}},
		B: []float64{-2, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !approx(res.X[0], 5, 1e-6) {
		t.Errorf("x = %v, want 5", res.X[0])
	}
}

func TestPhase1RequiredOptimum(t *testing.T) {
	// min-cost-like: maximise -x-y with x + y >= 3 (i.e. -x -y <= -3), x,y <= 4.
	res, err := Solve(Problem{
		C: []float64{-1, -1},
		A: [][]float64{{-1, -1}, {1, 0}, {0, 1}},
		B: []float64{-3, 4, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !approx(res.Objective, -3, 1e-6) {
		t.Errorf("objective = %v, want -3", res.Objective)
	}
}

func TestZeroVariables(t *testing.T) {
	res, err := Solve(Problem{C: nil, A: [][]float64{}, B: []float64{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || res.Objective != 0 {
		t.Errorf("empty problem: %+v", res)
	}
}

func TestBadShape(t *testing.T) {
	_, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}})
	if err != ErrBadShape {
		t.Errorf("expected ErrBadShape, got %v", err)
	}
	_, err = Solve(Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}})
	if err != ErrBadShape {
		t.Errorf("expected ErrBadShape, got %v", err)
	}
}

func TestDegenerateProblem(t *testing.T) {
	// Degenerate vertex should not cycle thanks to Bland's rule.
	res, err := Solve(Problem{
		C: []float64{10, -57, -9, -24},
		A: [][]float64{
			{0.5, -5.5, -2.5, 9},
			{0.5, -1.5, -0.5, 1},
			{1, 0, 0, 0},
		},
		B: []float64{0, 0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if !approx(res.Objective, 1, 1e-6) {
		t.Errorf("objective = %v, want 1", res.Objective)
	}
}

func TestSolutionFeasibilityProperty(t *testing.T) {
	// Random box-constrained problems: optimal solutions must be feasible and
	// the objective must meet or exceed the all-zeros solution (which is
	// always feasible when b >= 0).
	f := func(seed int64) bool {
		s := uint64(seed)
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>11) / (1 << 53)
		}
		n, m := 4, 5
		p := Problem{C: make([]float64, n), A: make([][]float64, m), B: make([]float64, m)}
		for j := 0; j < n; j++ {
			p.C[j] = next()*4 - 1
		}
		for i := 0; i < m; i++ {
			p.A[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				p.A[i][j] = next() // nonnegative => bounded with b >= 0 and box rows
			}
			p.B[i] = next() * 10
		}
		res, err := Solve(p)
		if err != nil || res.Status != Optimal {
			return false
		}
		if res.Objective < -1e-7 {
			return false
		}
		for i := 0; i < m; i++ {
			lhs := 0.0
			for j := 0; j < n; j++ {
				lhs += p.A[i][j] * res.X[j]
			}
			if lhs > p.B[i]+1e-6 {
				return false
			}
		}
		for j := 0; j < n; j++ {
			if res.X[j] < -1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || Status(99).String() != "unknown" {
		t.Error("Status.String broken")
	}
}
