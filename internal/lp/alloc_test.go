package lp

import (
	"testing"

	"jabasd/internal/race"
)

// TestSolverSteadyStateAllocs is the allocation-regression gate for the
// reusable simplex: once its arenas have grown to the problem size, Solve
// must not allocate at all. It runs in CI via the ordinary `go test ./...`
// job (and skips itself under -race, whose runtime allocates on its own).
func TestSolverSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	n, m := 12, 10
	p := Problem{C: make([]float64, n), A: make([][]float64, m), B: make([]float64, m)}
	s := uint64(42)
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>11) / (1 << 53)
	}
	for j := 0; j < n; j++ {
		p.C[j] = next() * 2
	}
	for i := 0; i < m; i++ {
		p.A[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			p.A[i][j] = next()
		}
		p.B[i] = 3 + next()*7
	}
	// Negate one row's rhs so the phase-1 path (artificial columns) is part
	// of the gated loop too.
	p.B[m-1] = -p.B[m-1] * 0.01
	for j := 0; j < n; j++ {
		p.A[m-1][j] = -p.A[m-1][j]
	}

	var solver Solver
	solve := func() {
		if _, err := solver.Solve(p); err != nil {
			t.Fatal(err)
		}
	}
	solve() // grow the arenas to the high-water mark
	if allocs := testing.AllocsPerRun(100, solve); allocs != 0 {
		t.Errorf("lp.Solver.Solve allocates %v times per solve in the steady state, want 0", allocs)
	}
}
