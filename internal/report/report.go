// Package report renders experiment results as aligned ASCII tables, CSV
// and JSON — the formats the experiment harness (cmd/jabaexp,
// bench_test.go), the sweep harness (cmd/jabasweep) and the telemetry
// sinks (internal/trace) emit.
//
// The Table type is deliberately string-typed: every cell is formatted
// exactly once (formatCell), and the ASCII, CSV and JSON writers render
// those same strings, so the three formats can never disagree about a
// value and byte-for-byte determinism checks can diff any of them.
// CSVLine is exported for callers that stream rows incrementally and need
// each row identical to what a whole-table WriteCSV would have produced.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple column-oriented results table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted with %v semantics, floats with
// four significant digits.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		row[i] = formatCell(v)
	}
	t.Rows = append(t.Rows, row)
}

func formatCell(v interface{}) string {
	switch x := v.(type) {
	case float64:
		return strconv.FormatFloat(x, 'g', 4, 64)
	case float32:
		return strconv.FormatFloat(float64(x), 'g', 4, 64)
	case string:
		return x
	default:
		return fmt.Sprintf("%v", v)
	}
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.Rows) }

// WriteASCII renders the table with aligned columns.
func (t *Table) WriteASCII(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString("# " + t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// CSVLine renders one CSV record with a trailing newline; cells containing
// commas, quotes or newlines are quoted. It is exported so callers that
// stream results row by row (cmd/jabasweep) emit exactly what WriteCSV would.
func CSVLine(cells []string) string {
	var sb strings.Builder
	for i, c := range cells {
		if i > 0 {
			sb.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		sb.WriteString(c)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// WriteCSV renders the table as comma-separated values with a header row.
// Cells containing commas or quotes are quoted.
func (t *Table) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString(CSVLine(t.Columns))
	for _, row := range t.Rows {
		sb.WriteString(CSVLine(row))
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteJSON renders the table as a JSON document:
//
//	{"title": ..., "columns": [...], "rows": [{"col": "cell", ...}, ...]}
//
// Row objects keep the column order of the table (encoding/json would sort
// map keys, so the objects are written by hand); cell values stay the
// formatted strings the other writers emit, which keeps the three formats —
// and therefore determinism checks that diff them — consistent.
func (t *Table) WriteJSON(w io.Writer) error {
	var sb strings.Builder
	writeString := func(s string) error {
		data, err := json.Marshal(s)
		if err != nil {
			return err
		}
		sb.Write(data)
		return nil
	}
	sb.WriteString("{\n  \"title\": ")
	if err := writeString(t.Title); err != nil {
		return err
	}
	sb.WriteString(",\n  \"columns\": [")
	for i, c := range t.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		if err := writeString(c); err != nil {
			return err
		}
	}
	sb.WriteString("],\n  \"rows\": [")
	for r, row := range t.Rows {
		if r > 0 {
			sb.WriteString(",")
		}
		sb.WriteString("\n    {")
		for i, c := range t.Columns {
			if i > 0 {
				sb.WriteString(", ")
			}
			if err := writeString(c); err != nil {
				return err
			}
			sb.WriteString(": ")
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if err := writeString(cell); err != nil {
				return err
			}
		}
		sb.WriteString("}")
	}
	if len(t.Rows) > 0 {
		sb.WriteString("\n  ")
	}
	sb.WriteString("]\n}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the ASCII form.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.WriteASCII(&sb)
	return sb.String()
}
