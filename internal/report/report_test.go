package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteJSONRoundTrip(t *testing.T) {
	tbl := NewTable("curve", "x", "y")
	tbl.AddRow("a,b", 1.5)
	tbl.AddRow("q\"uote", 2)
	var sb strings.Builder
	if err := tbl.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title   string              `json:"title"`
		Columns []string            `json:"columns"`
		Rows    []map[string]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("WriteJSON emitted invalid JSON: %v\n%s", err, sb.String())
	}
	if doc.Title != "curve" || len(doc.Columns) != 2 || len(doc.Rows) != 2 {
		t.Errorf("round trip lost structure: %+v", doc)
	}
	if doc.Rows[0]["x"] != "a,b" || doc.Rows[0]["y"] != "1.5" {
		t.Errorf("row 0 = %v", doc.Rows[0])
	}
	if doc.Rows[1]["x"] != "q\"uote" {
		t.Errorf("quote not escaped: %v", doc.Rows[1])
	}
	// Row objects must keep column order (encoding/json cannot check that).
	raw := sb.String()
	if x, y := strings.Index(raw, `"x": "a,b"`), strings.Index(raw, `"y": "1.5"`); x < 0 || y < 0 || x > y {
		t.Errorf("row object lost column order:\n%s", raw)
	}
}

func TestWriteJSONEmptyTable(t *testing.T) {
	tbl := NewTable("empty", "only")
	var sb strings.Builder
	if err := tbl.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(sb.String())) {
		t.Fatalf("empty table JSON invalid:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), `"rows": []`) {
		t.Errorf("empty table should have an empty rows array:\n%s", sb.String())
	}
}

func TestTableASCII(t *testing.T) {
	tb := NewTable("Demo", "scheduler", "delay", "coverage")
	tb.AddRow("JABA-SD", 0.123456, 0.97)
	tb.AddRow("FCFS", 1.5, 0.80)
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	out := tb.String()
	if !strings.Contains(out, "# Demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "JABA-SD") || !strings.Contains(out, "FCFS") {
		t.Error("rows missing")
	}
	if !strings.Contains(out, "scheduler") || !strings.Contains(out, "coverage") {
		t.Error("headers missing")
	}
	if !strings.Contains(out, "0.1235") {
		t.Errorf("float not formatted to 4 significant digits: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title + header + separator + 2 rows
		t.Errorf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow(1)
	if strings.Contains(tb.String(), "#") {
		t.Error("untitled table should not emit a title line")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "name", "value")
	tb.AddRow("plain", 1)
	tb.AddRow("with,comma", 2.5)
	tb.AddRow(`with"quote`, 3)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 CSV lines, got %d", len(lines))
	}
	if lines[0] != "name,value" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(out, `"with,comma"`) {
		t.Error("comma cell not quoted")
	}
	if !strings.Contains(out, `"with""quote"`) {
		t.Error("quote cell not escaped")
	}
}

func TestFormatCellTypes(t *testing.T) {
	if formatCell(float32(2.5)) != "2.5" {
		t.Error("float32 formatting broken")
	}
	if formatCell(42) != "42" {
		t.Error("int formatting broken")
	}
	if formatCell("s") != "s" {
		t.Error("string formatting broken")
	}
}
