package jabasd_bench

import (
	"os/exec"
	"testing"
)

// TestExamplesBuild keeps the runnable examples from rotting: they are main
// packages nobody imports, so a plain `go test ./...` would never notice a
// compile error in them if `go build ./...` is skipped. Building multiple
// main packages at once makes the go tool discard the binaries, so this
// writes no artifacts.
func TestExamplesBuild(t *testing.T) {
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	out, err := exec.Command(gobin, "build", "./examples/...").CombinedOutput()
	if err != nil {
		t.Fatalf("examples failed to build: %v\n%s", err, out)
	}
	out, err = exec.Command(gobin, "vet", "./examples/...").CombinedOutput()
	if err != nil {
		t.Fatalf("go vet ./examples/... failed: %v\n%s", err, out)
	}
}
