// Command jabasim runs one burst-admission simulation scenario and prints
// the resulting metrics.
//
// Usage:
//
//	jabasim -preset smoke -scheduler jaba-sd -reps 2
//	jabasim -config scenario.json
//	jabasim -preset baseline -dump-config > scenario.json
//	jabasim -preset smoke -trace trace.csv -trace-every 10
//	jabasim -preset smoke -checkpoint state.ckpt -checkpoint-every 50
//	jabasim -resume state.ckpt
//	jabasim -preset smoke -solve-trace solves.jsonl
//	jabasim -replay solves.jsonl -scheduler jaba-sd-greedy -replay-out grants.csv
//
// The -preset flag selects a named scenario (see -list-presets); -config
// loads a JSON file produced by -dump-config. Individual flags override the
// chosen base configuration. -trace streams per-frame, per-cell telemetry
// (see internal/trace) to a file — CSV by default, JSON Lines when the path
// ends in .jsonl; with -reps > 1 only replication 0 is traced.
//
// -cpuprofile and -memprofile write standard runtime/pprof profiles covering
// the simulation (the scenario set-up and report printing are excluded from
// the CPU profile); inspect them with `go tool pprof`.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"jabasd/internal/fault"
	"jabasd/internal/jobspec"
	"jabasd/internal/replay"
	"jabasd/internal/scenario"
	"jabasd/internal/sim"
	"jabasd/internal/trace"
)

func main() {
	// SIGINT/SIGTERM cancel the context: in-flight replications stop at
	// their next frame and the command exits with the cancellation error
	// instead of dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jabasim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("jabasim", flag.ContinueOnError)
	var (
		preset      = fs.String("preset", scenario.PresetSmoke, "named scenario preset")
		configPath  = fs.String("config", "", "JSON scenario file (overrides -preset)")
		listPresets = fs.Bool("list-presets", false, "list available presets and exit")
		dumpConfig  = fs.Bool("dump-config", false, "print the effective config as JSON and exit")
		scheduler   = fs.String("scheduler", "", "scheduler: jaba-sd, jaba-sd-greedy, fcfs, equal-share, random")
		direction   = fs.String("direction", "", "link direction: forward or reverse")
		users       = fs.Int("data-users", -1, "data users per cell (override)")
		simTime     = fs.Float64("sim-time", -1, "simulated seconds (override)")
		seed        = fs.Uint64("seed", 0, "base random seed (override when non-zero)")
		reps        = fs.Int("reps", 1, "independent replications (parallel)")
		frameMode   = fs.String("framemode", "", "frame admission mode: sequential or snapshot (default: scenario's)")
		framePar    = fs.Int("frameparallel", -1, "snapshot-mode solve workers: 0 = auto (GOMAXPROCS, but inline under a parallel reps/sweep fan-out), 1 = inline, -1 keeps the scenario's")
		tiles       = fs.Int("tiles", -1, "snapshot-mode tile count (cell-span ownership for the solve fan-out): 0 = untiled, -1 keeps the scenario's; results are byte-identical for any value")
		tracePath   = fs.String("trace", "", "write per-frame per-cell telemetry to this file (CSV, or JSONL when the path ends in .jsonl); replication 0 only when -reps > 1")
		traceEvery  = fs.Int("trace-every", 1, "sample every Nth frame into the -trace output")
		exactVTAOC  = fs.Bool("exact-vtaoc", false, "bit-exact reference physics: exact VTAOC integral, scalar-equivalent channel kernels, full region rebuilds (golden-output mode; default is the fast SoA path)")
		faultsPath  = fs.String("faults", "", "JSON fault schedule file: cell outages/derates and load events (see internal/fault); exclusive with -fault-profile")
		faultProf   = fs.String("fault-profile", "", "named fault profile scaled to the scenario's sim time: none, outage, degrade, flashcrowd, rushhour")
		nodeBudget  = fs.Int("node-budget", -1, "cap the exact solver's branch-and-bound nodes per cell-frame; an over-budget solve falls back to the greedy policy (0 = unbounded, -1 keeps the scenario's)")
		cpuProfile  = fs.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
		memProfile  = fs.String("memprofile", "", "write a heap profile (allocation attribution) to this file when the simulation finishes")
		ckptPath    = fs.String("checkpoint", "", "write a versioned engine-state checkpoint to this file (atomically) every -checkpoint-every frames; requires -reps 1")
		ckptEvery   = fs.Int("checkpoint-every", 0, "checkpoint cadence in frames (required with -checkpoint)")
		resumePath  = fs.String("resume", "", "resume from this checkpoint file; the scenario comes from the checkpoint, so -preset/-config must be unset (execution knobs like -frameparallel still apply)")
		solveTrace  = fs.String("solve-trace", "", "record every (frame, cell) scheduling problem and its grants to this JSONL file for later -replay; requires -reps 1")
		replayPath  = fs.String("replay", "", "re-solve a recorded solve trace instead of simulating: grants go to -replay-out; -scheduler overrides the recorded policy for a counterfactual")
		replayOut   = fs.String("replay-out", "", "grants CSV file for -replay (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *replayPath != "" {
		if *resumePath != "" || *ckptPath != "" {
			return fmt.Errorf("-replay re-solves a recorded trace; it cannot combine with -checkpoint/-resume")
		}
		return runReplay(*replayPath, *scheduler, *replayOut)
	}
	if *listPresets {
		for _, n := range scenario.Names() {
			fmt.Printf("%-12s %s\n", n, scenario.Describe(n))
		}
		return nil
	}

	// The flags translate into the shared jobspec.RunSpec, so this CLI, the
	// other tools and the jabaserve HTTP API all resolve scenarios through
	// the same layering and conflict rules.
	spec := jobspec.RunSpec{Reps: *reps}
	presetSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "preset" {
			presetSet = true
		}
	})
	switch {
	case *resumePath != "":
		// The checkpoint itself is the scenario.
		if presetSet || *configPath != "" {
			return fmt.Errorf("-resume takes its scenario from the checkpoint; drop -preset/-config")
		}
	case *configPath != "":
		if presetSet {
			return fmt.Errorf("-preset and -config are exclusive; drop one")
		}
		data, err := os.ReadFile(*configPath)
		if err != nil {
			return err
		}
		spec.Config = data
	default:
		spec.Preset = *preset
	}
	if *ckptPath != "" || *ckptEvery != 0 || *resumePath != "" {
		spec.Checkpoint = &jobspec.CheckpointSpec{Path: *ckptPath, Every: *ckptEvery, Resume: *resumePath}
	}
	spec.Overrides = jobspec.Overrides{
		Scheduler:    *scheduler,
		Direction:    *direction,
		Seed:         *seed,
		FrameMode:    *frameMode,
		ExactPHY:     *exactVTAOC,
		FaultProfile: *faultProf,
	}
	if *faultsPath != "" {
		data, err := os.ReadFile(*faultsPath)
		if err != nil {
			return err
		}
		var sched fault.Schedule
		if err := json.Unmarshal(data, &sched); err != nil {
			return fmt.Errorf("decode %s: %w", *faultsPath, err)
		}
		spec.Overrides.Faults = &sched
	}
	if *nodeBudget != -1 {
		if *nodeBudget < 0 {
			return fmt.Errorf("-node-budget must be >= 0 (or -1 to keep the scenario's), got %d", *nodeBudget)
		}
		spec.Overrides.NodeBudget = nodeBudget
	}
	if *users >= 0 {
		spec.Overrides.DataUsers = users
	}
	if *simTime > 0 {
		spec.Overrides.SimTime = *simTime
	}
	if *framePar != -1 {
		if *framePar < 0 {
			return fmt.Errorf("-frameparallel must be >= 0 (or -1 to keep the scenario's), got %d", *framePar)
		}
		spec.Overrides.FrameParallel = framePar
	}
	if *tiles != -1 {
		if *tiles < 0 {
			return fmt.Errorf("-tiles must be >= 0 (or -1 to keep the scenario's), got %d", *tiles)
		}
		spec.Overrides.Tiles = tiles
	}
	if *traceEvery < 0 {
		return fmt.Errorf("-trace-every must be >= 0, got %d", *traceEvery)
	}
	cfg, nreps, err := spec.Resolve()
	if err != nil {
		return err
	}

	if *dumpConfig {
		data, err := scenario.Encode(cfg)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}

	if *cpuProfile != "" {
		if workers := profileWorkers(cfg, *reps); workers > 1 {
			fmt.Fprintf(os.Stderr, "jabasim: warning: -cpuprofile with %d snapshot solve workers spreads frame-loop samples across pool goroutines; rerun with -frameparallel 1 for a flat single-stack profile\n", workers)
		}
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	// finishProfiles runs after the simulation so the CPU profile covers the
	// frame loop but not the report printing. The heap profile is written
	// after the run (and a forced GC), so its value is the cumulative
	// allocation attribution (alloc_space/alloc_objects), not the live set —
	// the engine is already unreachable by then.
	finishProfiles := func() error {
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
			fmt.Fprintf(os.Stderr, "cpu profile written to %s\n", *cpuProfile)
		}
		if *memProfile == "" {
			return nil
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // settle the heap statistics before snapshotting
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "heap profile written to %s\n", *memProfile)
		return nil
	}

	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		// The deferred close backs failure paths only; success closes
		// explicitly below so a full disk surfaces as an error.
		defer f.Close()
		traceFile = f
		if strings.HasSuffix(*tracePath, ".jsonl") {
			cfg.Trace = trace.NewJSONL(f)
		} else {
			cfg.Trace = trace.NewCSV(f)
		}
		cfg.TraceEvery = *traceEvery
	}
	closeTrace := func() error {
		if traceFile == nil {
			return nil
		}
		if err := traceFile.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *tracePath)
		return nil
	}

	if *solveTrace != "" && nreps > 1 {
		return fmt.Errorf("-solve-trace records one engine; use -reps 1")
	}
	var solveFile *os.File
	var solveBuf *bufio.Writer
	if *solveTrace != "" {
		f, err := os.Create(*solveTrace)
		if err != nil {
			return err
		}
		defer f.Close()
		solveFile = f
		solveBuf = bufio.NewWriter(f)
		cfg.SolveTrace = solveBuf
	}
	closeSolveTrace := func() error {
		if solveFile == nil {
			return nil
		}
		if err := solveBuf.Flush(); err != nil {
			return err
		}
		if err := solveFile.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "solve trace written to %s\n", *solveTrace)
		return nil
	}

	if nreps <= 1 {
		// Start (rather than sim.Run) honours the checkpoint spec: a fresh
		// engine normally, the restored one when resuming.
		e, err := spec.Start(cfg)
		if err != nil {
			return err
		}
		if f := e.Frame(); f > 0 {
			fmt.Fprintf(os.Stderr, "resumed at frame %d\n", f)
		}
		m, err := e.Run(ctx)
		if err != nil {
			return err
		}
		if err := finishProfiles(); err != nil {
			return err
		}
		if err := closeTrace(); err != nil {
			return err
		}
		if err := closeSolveTrace(); err != nil {
			return err
		}
		printMetrics(m)
		return nil
	}
	agg, err := sim.RunReplications(ctx, cfg, nreps)
	if err != nil {
		return err
	}
	if err := finishProfiles(); err != nil {
		return err
	}
	if err := closeTrace(); err != nil {
		return err
	}
	fmt.Println(agg.String())
	fmt.Printf("  mean delay        : %.3f s (95%% CI ±%.3f)\n", agg.MeanDelay.Mean(), agg.MeanDelay.ConfidenceInterval95())
	fmt.Printf("  p90 delay         : %.3f s\n", agg.P90Delay.Mean())
	fmt.Printf("  throughput / cell : %.0f bit/s\n", agg.Throughput.Mean())
	fmt.Printf("  coverage          : %.3f\n", agg.Coverage.Mean())
	fmt.Printf("  mean cell load    : %.3f\n", agg.CellLoad.Mean())
	fmt.Printf("  completion ratio  : %.3f\n", agg.CompletionRate.Mean())
	printSkippedCells(agg.SkippedCells.Mean())
	printFallbackSolves(agg.FallbackSolves.Mean())
	return nil
}

// runReplay re-solves a recorded solve trace without simulating: each
// recorded (frame, cell) problem is scheduled against its recorded requests
// and admissible region, under the recorded policy or — for a
// counterfactual — the -scheduler override, and the grants go out as a CSV
// that diffs row-for-row against any other replay of the same trace.
func runReplay(path, scheduler, outPath string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	hdr, problems, err := replay.ReadTrace(bufio.NewReader(f))
	if err != nil {
		return err
	}
	kind := hdr.Scheduler
	if scheduler != "" {
		kind = scheduler
	}
	sched, err := sim.NewScheduler(sim.SchedulerKind(kind), hdr.Seed)
	if err != nil {
		return err
	}
	assignments, err := replay.Resolve(hdr, problems, sched, hdr.Objective)
	if err != nil {
		return err
	}

	out := os.Stdout
	if outPath != "" {
		g, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer g.Close()
		out = g
	}
	w := bufio.NewWriter(out)
	if err := replay.WriteGrantsCSV(w, problems, assignments); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if outPath != "" {
		if err := out.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "replayed %d problems under %s (recorded under %s)\n",
		len(problems), kind, hdr.Scheduler)
	return nil
}

// profileWorkers returns the number of snapshot-mode solve workers the run
// will actually use, so -cpuprofile can warn when the profile will be spread
// over a worker pool: 0 in sequential mode, the resolved pool size in
// snapshot mode (FrameParallel 0 = auto resolves to GOMAXPROCS unless an
// outer replication fan-out forces it inline).
func profileWorkers(cfg sim.Config, reps int) int {
	if cfg.FrameMode != sim.FrameSnapshot {
		return 0
	}
	workers := sim.ResolveFrameParallel(cfg, reps)
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return workers
}

// printSkippedCells surfaces the abandoned cell-frame count (mean across
// replications for aggregates); non-zero means the scenario is feeding the
// admission layer inconsistent measurements, which deserves a loud flag.
func printSkippedCells(count float64) {
	fmt.Printf("  skipped cell-frames: %g\n", count)
	if count > 0 {
		fmt.Println("  WARNING: admission skipped cells; the scenario is feeding the admission layer inconsistent measurements")
	}
}

// printFallbackSolves surfaces the count of cell-frames where the exact
// solver hit its node budget and the greedy policy answered instead — the
// run completed, but those grants are heuristic, not optimal.
func printFallbackSolves(count float64) {
	if count == 0 {
		return
	}
	fmt.Printf("  fallback solves   : %g\n", count)
	fmt.Println("  WARNING: the exact solver hit its node budget; over-budget cell-frames were granted by the greedy fallback")
}

func printMetrics(m *sim.Metrics) {
	fmt.Println(m.String())
	fmt.Printf("  bursts generated  : %d\n", m.BurstsGenerated)
	fmt.Printf("  bursts completed  : %d\n", m.BurstsCompleted)
	fmt.Printf("  mean delay        : %.3f s\n", m.MeanBurstDelay())
	fmt.Printf("  p90 delay         : %.3f s\n", m.P90BurstDelay())
	fmt.Printf("  mean admission wait: %.3f s\n", m.AdmissionWait.Mean())
	fmt.Printf("  throughput / cell : %.0f bit/s\n", m.ThroughputPerCell())
	fmt.Printf("  coverage          : %.3f\n", m.Coverage())
	fmt.Printf("  mean cell load    : %.3f\n", m.CellLoad.Mean())
	fmt.Printf("  mean queue length : %.2f\n", m.QueueLength.Mean())
	fmt.Printf("  mean granted ratio: %.2f\n", m.AssignedRatio.Mean())
	if m.OutageCellFrames > 0 || m.SpilloverHandoffs > 0 {
		fmt.Printf("  outage cell-frames: %d\n", m.OutageCellFrames)
		fmt.Printf("  spillover handoffs: %d\n", m.SpilloverHandoffs)
	}
	if m.SolveRetries > 0 {
		fmt.Printf("  solve retries     : %d\n", m.SolveRetries)
	}
	printSkippedCells(float64(m.SkippedCells))
	printFallbackSolves(float64(m.FallbackSolves))
}
