package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunListPresets(t *testing.T) {
	if err := run(context.Background(), []string{"-list-presets"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDumpConfig(t *testing.T) {
	if err := run(context.Background(), []string{"-preset", "smoke", "-dump-config"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSmokeSingleReplication(t *testing.T) {
	if err := run(context.Background(), []string{"-preset", "smoke", "-sim-time", "4", "-data-users", "3", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSmokeMultiReplication(t *testing.T) {
	if err := run(context.Background(), []string{"-preset", "smoke", "-sim-time", "3", "-data-users", "2", "-reps", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunReverseDirectionOverride(t *testing.T) {
	if err := run(context.Background(), []string{"-preset", "smoke", "-sim-time", "3", "-data-users", "2", "-direction", "reverse"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-preset", "smoke", "-sim-time", "3", "-data-users", "2", "-direction", "forward"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSchedulerOverride(t *testing.T) {
	if err := run(context.Background(), []string{"-preset", "smoke", "-sim-time", "3", "-data-users", "2", "-scheduler", "fcfs"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-preset", "no-such-preset"},
		{"-direction", "sideways"},
		{"-preset", "smoke", "-scheduler", "bogus"},
		{"-config", filepath.Join(t.TempDir(), "missing.json")},
		{"-preset", "smoke", "-config", "anything.json"}, // exclusive pair
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestRunFromConfigFile(t *testing.T) {
	// Produce a config file via -dump-config equivalent path: write a small
	// JSON override and load it back.
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	content := []byte(`{"Rings": 1, "SimTime": 3, "WarmupTime": 1, "DataUsersPerCell": 2, "VoiceUsersPerCell": 2}`)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-config", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFrameModeOverride(t *testing.T) {
	args := []string{"-preset", "smoke", "-sim-time", "3", "-data-users", "2"}
	if err := run(context.Background(), append(args, "-framemode", "snapshot", "-frameparallel", "2")); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), append(args, "-framemode", "sequential")); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-preset", "metro", "-dump-config"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), append(args, "-framemode", "warp")); err == nil {
		t.Error("unknown frame mode should fail")
	}
	if err := run(context.Background(), append(args, "-framemode", "snapshot", "-frameparallel", "-2")); err == nil {
		// -2 passes the flag's "keep scenario" sentinel of -1, so it must
		// reach Validate and be rejected there.
		t.Error("negative FrameParallel should fail validation")
	}
}

func TestRunTraceCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	args := []string{"-preset", "smoke", "-sim-time", "3", "-data-users", "3", "-trace", path, "-trace-every", "25"}
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if !strings.HasPrefix(lines[0], "frame,time_s,cell,") {
		t.Fatalf("unexpected trace header %q", lines[0])
	}
	// 3 s / 20 ms = 150 frames, every 25th sampled, 7 cells (1 ring).
	if want := 1 + 6*7; len(lines) != want {
		t.Fatalf("trace has %d lines, want %d", len(lines), want)
	}
}

func TestRunTraceJSONLAndMultiRep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	args := []string{"-preset", "smoke", "-sim-time", "3", "-data-users", "2", "-reps", "2", "-trace", path, "-trace-every", "50"}
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[0] != '{' {
		t.Fatalf("expected JSONL output, got %q", string(data[:min(len(data), 40)]))
	}
}

func TestRunTraceErrors(t *testing.T) {
	if err := run(context.Background(), []string{"-preset", "smoke", "-trace-every", "-1"}); err == nil {
		t.Error("negative -trace-every should fail")
	}
	missingDir := filepath.Join(t.TempDir(), "no", "such", "dir", "t.csv")
	if err := run(context.Background(), []string{"-preset", "smoke", "-sim-time", "3", "-trace", missingDir}); err == nil {
		t.Error("unwritable -trace path should fail")
	}
}

func TestRunCheckpointAndResume(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "state.ckpt")
	base := []string{"-preset", "smoke", "-sim-time", "3", "-data-users", "2", "-seed", "5"}
	// 3 s / 20 ms = 150 frames; every 50 leaves the final checkpoint at 150.
	if err := run(context.Background(), append(base, "-checkpoint", ck, "-checkpoint-every", "50")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}
	// The scenario comes from the checkpoint; no -preset needed (or allowed).
	if err := run(context.Background(), []string{"-resume", ck}); err != nil {
		t.Fatal(err)
	}
	// Execution knobs may still change across a resume.
	if err := run(context.Background(), []string{"-resume", ck, "-frameparallel", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCheckpointErrors(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "state.ckpt")
	cases := [][]string{
		{"-preset", "smoke", "-checkpoint", ck},         // missing cadence
		{"-preset", "smoke", "-checkpoint-every", "50"}, // missing path
		{"-preset", "smoke", "-reps", "2", "-checkpoint", ck, "-checkpoint-every", "10"},
		{"-resume", filepath.Join(dir, "missing.ckpt")},
		{"-preset", "smoke", "-resume", ck}, // resume excludes an explicit scenario
	}
	for _, args := range cases {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestRunSolveTraceAndReplay(t *testing.T) {
	dir := t.TempDir()
	solves := filepath.Join(dir, "solves.jsonl")
	args := []string{"-preset", "smoke", "-sim-time", "3", "-data-users", "3", "-seed", "9", "-solve-trace", solves}
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(solves)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[0] != '{' {
		t.Fatalf("expected a JSONL solve trace, got %q", string(data[:min(len(data), 40)]))
	}

	// Replaying under the recorded policy and under a counterfactual one
	// produces line-aligned grants files.
	recorded := filepath.Join(dir, "recorded.csv")
	if err := run(context.Background(), []string{"-replay", solves, "-replay-out", recorded}); err != nil {
		t.Fatal(err)
	}
	counter := filepath.Join(dir, "greedy.csv")
	if err := run(context.Background(), []string{"-replay", solves, "-scheduler", "jaba-sd-greedy", "-replay-out", counter}); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(recorded)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(counter)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(a), "frame,cell,user,ratio\n") {
		t.Fatalf("unexpected grants header %q", strings.SplitN(string(a), "\n", 2)[0])
	}
	if la, lb := strings.Count(string(a), "\n"), strings.Count(string(b), "\n"); la != lb {
		t.Fatalf("grants files are not line-aligned: %d vs %d rows", la, lb)
	}
}

func TestRunSolveTraceAndReplayErrors(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{"-preset", "smoke", "-reps", "2", "-solve-trace", filepath.Join(dir, "s.jsonl")},
		{"-replay", filepath.Join(dir, "missing.jsonl")},
		{"-replay", filepath.Join(dir, "missing.jsonl"), "-resume", filepath.Join(dir, "x.ckpt")},
		{"-replay", filepath.Join(dir, "missing.jsonl"), "-checkpoint", filepath.Join(dir, "x.ckpt")},
	}
	for _, args := range cases {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
	// A replay with an unknown scheduler fails even on a valid trace.
	solves := filepath.Join(dir, "solves.jsonl")
	if err := run(context.Background(), []string{"-preset", "smoke", "-sim-time", "3", "-data-users", "2", "-solve-trace", solves}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-replay", solves, "-scheduler", "bogus"}); err == nil {
		t.Error("replay with unknown scheduler should fail")
	}
}
