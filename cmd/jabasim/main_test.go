package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunListPresets(t *testing.T) {
	if err := run([]string{"-list-presets"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDumpConfig(t *testing.T) {
	if err := run([]string{"-preset", "smoke", "-dump-config"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSmokeSingleReplication(t *testing.T) {
	if err := run([]string{"-preset", "smoke", "-sim-time", "4", "-data-users", "3", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSmokeMultiReplication(t *testing.T) {
	if err := run([]string{"-preset", "smoke", "-sim-time", "3", "-data-users", "2", "-reps", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunReverseDirectionOverride(t *testing.T) {
	if err := run([]string{"-preset", "smoke", "-sim-time", "3", "-data-users", "2", "-direction", "reverse"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-preset", "smoke", "-sim-time", "3", "-data-users", "2", "-direction", "forward"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSchedulerOverride(t *testing.T) {
	if err := run([]string{"-preset", "smoke", "-sim-time", "3", "-data-users", "2", "-scheduler", "fcfs"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-preset", "no-such-preset"},
		{"-direction", "sideways"},
		{"-preset", "smoke", "-scheduler", "bogus"},
		{"-config", filepath.Join(t.TempDir(), "missing.json")},
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestRunFromConfigFile(t *testing.T) {
	// Produce a config file via -dump-config equivalent path: write a small
	// JSON override and load it back.
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	content := []byte(`{"Rings": 1, "SimTime": 3, "WarmupTime": 1, "DataUsersPerCell": 2, "VoiceUsersPerCell": 2}`)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFrameModeOverride(t *testing.T) {
	args := []string{"-preset", "smoke", "-sim-time", "3", "-data-users", "2"}
	if err := run(append(args, "-framemode", "snapshot", "-frameparallel", "2")); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-framemode", "sequential")); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-preset", "metro", "-dump-config"}); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-framemode", "warp")); err == nil {
		t.Error("unknown frame mode should fail")
	}
	if err := run(append(args, "-framemode", "snapshot", "-frameparallel", "-2")); err == nil {
		// -2 passes the flag's "keep scenario" sentinel of -1, so it must
		// reach Validate and be rejected there.
		t.Error("negative FrameParallel should fail validation")
	}
}
