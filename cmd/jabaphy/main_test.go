package main

import "testing"

func TestRunDefault(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithTrace(t *testing.T) {
	if err := run([]string{"-trace", "0.1", "-csi", "18", "-doppler", "30"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCustomOperatingPoint(t *testing.T) {
	if err := run([]string{"-ber", "1e-4", "-modes", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunInvalidConfig(t *testing.T) {
	if err := run([]string{"-modes", "0"}); err == nil {
		t.Error("zero modes should fail")
	}
	if err := run([]string{"-ber", "0.9"}); err == nil {
		t.Error("BER above 0.5 should fail")
	}
	if err := run([]string{"-unknown"}); err == nil {
		t.Error("bad flag should fail")
	}
}
