// Command jabaphy explores the adaptive physical layer on its own: it prints
// the VTAOC mode table (constant-BER adaptation thresholds), the Rayleigh
// averaged throughput across a CSI sweep, and optionally a time trace of the
// mode selection over a simulated fading channel.
//
// Usage:
//
//	jabaphy                       # mode table + throughput sweep
//	jabaphy -ber 1e-4 -modes 6    # different operating point
//	jabaphy -trace 2 -csi 18      # 2-second mode trace at 18 dB mean CSI
package main

import (
	"flag"
	"fmt"
	"os"

	"jabasd/internal/mathx"
	"jabasd/internal/report"
	"jabasd/internal/rng"
	"jabasd/internal/vtaoc"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jabaphy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jabaphy", flag.ContinueOnError)
	var (
		ber     = fs.Float64("ber", 1e-3, "target bit error rate (constant-BER operation)")
		modes   = fs.Int("modes", 6, "number of VTAOC transmission modes")
		trace   = fs.Float64("trace", 0, "seconds of fading trace to print (0 = none)")
		csi     = fs.Float64("csi", 15, "mean CSI in dB for the fading trace")
		doppler = fs.Float64("doppler", 55, "Doppler frequency in Hz for the fading trace")
		seed    = fs.Uint64("seed", 1, "random seed for the fading trace")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := vtaoc.DefaultConfig()
	cfg.TargetBER = *ber
	cfg.NumModes = *modes
	coder, err := vtaoc.New(cfg)
	if err != nil {
		return err
	}

	modeTable := report.NewTable(fmt.Sprintf("VTAOC mode table (%d modes, target BER %.1e)", *modes, *ber),
		"mode", "bits_per_symbol", "min_CSI_dB")
	for _, m := range coder.Modes() {
		modeTable.AddRow(m.Index, m.Throughput, m.MinCSIDB)
	}
	if err := modeTable.WriteASCII(os.Stdout); err != nil {
		return err
	}

	sweep := report.NewTable("Average throughput vs mean CSI (Rayleigh fading)",
		"mean_CSI_dB", "avg_bits_per_symbol", "outage_prob")
	for c := -5.0; c <= 30; c += 2.5 {
		sweep.AddRow(c, coder.AverageThroughput(c), coder.OutageProbability(c))
	}
	fmt.Println()
	if err := sweep.WriteASCII(os.Stdout); err != nil {
		return err
	}

	if *trace > 0 {
		fmt.Println()
		src := rng.New(*seed)
		jakes := rng.NewJakes(src, 16, *doppler)
		tr := report.NewTable(fmt.Sprintf("Mode trace at %.1f dB mean CSI, %.0f Hz Doppler", *csi, *doppler),
			"t_ms", "inst_CSI_dB", "mode", "bits_per_symbol")
		step := 0.005
		for t := 0.0; t < *trace; t += step {
			p := jakes.PowerAt(t)
			if p < 1e-12 {
				p = 1e-12
			}
			instCSI := *csi + mathx.DB(p)
			mode := coder.SelectMode(instCSI)
			tr.AddRow(t*1000, instCSI, mode, coder.ModeThroughput(mode))
		}
		if err := tr.WriteASCII(os.Stdout); err != nil {
			return err
		}
	}

	// Show the rate plan implied SCH bit rates for context.
	plan := vtaoc.DefaultRatePlan()
	fmt.Println()
	rates := report.NewTable("SCH bit rate (kbit/s) vs spreading ratio m and average throughput",
		"m", "bp=0.125", "bp=0.25", "bp=0.5", "bp=1.0")
	for m := 1; m <= plan.MaxSpreadingRatio; m *= 2 {
		rates.AddRow(m,
			plan.SCHBitRate(m, 0.125)/1000,
			plan.SCHBitRate(m, 0.25)/1000,
			plan.SCHBitRate(m, 0.5)/1000,
			plan.SCHBitRate(m, 1.0)/1000)
	}
	return rates.WriteASCII(os.Stdout)
}
