// Command jabaserve runs the memory-resident JABA-SD admission/sweep
// service: an HTTP/JSON API over the same engine the CLIs drive, with a
// bounded job queue for runs/sweeps/experiments, streamed sweep progress
// (CSV/NDJSON/SSE) and an admission-oracle endpoint backed by resident warm
// per-frame ILP solvers.
//
// Usage:
//
//	jabaserve -addr :8080
//	curl localhost:8080/v1/healthz
//	curl -X POST localhost:8080/v1/jobs -d '{"kind":"sweep","sweep":{"preset":"smoke","axes":["datausers=2,4"],"reps":2}}'
//	curl localhost:8080/v1/jobs/job-1/stream
//
// With -journal DIR every accepted job spec is persisted until the job
// settles, and a restarted server re-submits whatever specs are still
// there — queued and in-flight work survives a crash or redeploy.
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, in-flight
// jobs are cancelled at their next frame, and the process exits once the
// workers settle. Jobs cancelled by the drain keep their journal entries.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jabasd/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jabaserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("jabaserve", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8080", "listen address")
		queueDepth    = fs.Int("queue-depth", 16, "queued jobs beyond the running ones before submissions get 429")
		workers       = fs.Int("workers", 2, "jobs run concurrently; each job's fan-out defaults to GOMAXPROCS/workers")
		oracleWorkers = fs.Int("oracle-workers", 2, "resident warm JABA-SD solver instances (bounds concurrent oracle solves)")
		journalDir    = fs.String("journal", "", "directory persisting accepted job specs until they settle; on start, unsettled jobs found there are re-submitted")
		enableChaos   = fs.Bool("chaos", false, "accept job specs carrying a chaos clause (injected worker panics/hangs) for resilience drills; never enable on a production queue")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *journalDir != "" {
		if err := os.MkdirAll(*journalDir, 0o755); err != nil {
			return err
		}
	}

	srv := serve.New(serve.Options{
		QueueDepth:    *queueDepth,
		Workers:       *workers,
		OracleWorkers: *oracleWorkers,
		JournalDir:    *journalDir,
		EnableChaos:   *enableChaos,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "jabaserve: listening on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful drain: cancel every job first so long-lived stream responses
	// observe a terminal state and finish, then stop accepting and wait for
	// the in-flight responses to flush.
	fmt.Fprintln(os.Stderr, "jabaserve: shutting down")
	srv.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
