// Command jabasweep runs parameter sweeps over the scenario presets and
// renders paper-style curve tables: one row per grid point with admission
// probability, throughput and outage plus across-replication confidence
// intervals. The grid is the cross product of repeatable -axis flags
// anchored on a -preset, or one of the built-in named grids (-grid).
// (point × replication) work items fan out over a worker pool; output is
// identical for a fixed seed no matter what -parallel is.
//
// Usage:
//
//	jabasweep -preset smoke -axis datausers=2,4 -reps 2          # 2-point load curve
//	jabasweep -preset baseline -axis datausers=4,12,24 -axis scheduler=jaba-sd,fcfs
//	jabasweep -grid paper-load-sweep -reps 4 -o curves.csv       # the paper's load axis
//	jabasweep -preset smoke -axis speed=1:5,14:28 -format json
//	jabasweep -grid paper-load-sweep -points                     # dry run: list the points
//	jabasweep -preset smoke -axis datausers=2,4 -trace trace.csv # per-point telemetry
//	jabasweep -list-grids                                        # built-in named grids
//	jabasweep -list-axes                                         # axis syntax reference
//
// -trace additionally writes one frame-level telemetry CSV covering every
// grid point: each point's replication 0 is traced (see internal/trace)
// and its rows appear in grid order, prefixed with the point index and
// label, so transient behaviour can be compared across the swept axis.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"jabasd/internal/jobspec"
	"jabasd/internal/report"
	"jabasd/internal/scenario"
	"jabasd/internal/sweep"
	"jabasd/internal/trace"
)

func main() {
	// SIGINT/SIGTERM cancel the sweep: completed points stay written (CSV
	// streams row by row), queued work never starts.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "jabasweep:", err)
		os.Exit(1)
	}
}

// axisFlags collects repeated -axis specifications.
type axisFlags []string

func (a *axisFlags) String() string { return strings.Join(*a, " ") }

func (a *axisFlags) Set(v string) error {
	*a = append(*a, v)
	return nil
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("jabasweep", flag.ContinueOnError)
	var axes axisFlags
	fs.Var(&axes, "axis", "axis spec name=v1,v2,... (repeatable; see -list-axes)")
	var (
		presetName = fs.String("preset", scenario.PresetSmoke, "scenario preset anchoring every grid point")
		configPath = fs.String("config", "", "JSON scenario file anchoring every grid point (excludes -preset/-grid)")
		gridName   = fs.String("grid", "", "built-in named grid (see -list-grids; excludes -preset/-axis)")
		reps       = fs.Int("reps", 1, "independent replications per grid point")
		parallel   = fs.Int("parallel", 0, "max concurrent (point x replication) work items (0 = GOMAXPROCS)")
		seed       = fs.Uint64("seed", 0, "base random seed (0 keeps the preset's)")
		frameMode  = fs.String("framemode", "", "frame admission mode override for every point: sequential or snapshot")
		framePar   = fs.Int("frameparallel", -1, "per-run snapshot solve workers override: 0 = auto (GOMAXPROCS, but inline under a parallel reps/sweep fan-out), 1 = inline, -1 keeps each point's")
		tiles      = fs.Int("tiles", -1, "per-run snapshot tile count override: 0 = untiled, -1 keeps each point's; results are byte-identical for any value")
		format     = fs.String("format", "csv", "output format: csv or json")
		outPath    = fs.String("o", "", "output file (default stdout)")
		tracePath  = fs.String("trace", "", "write per-frame per-cell telemetry of every point's replication 0 to this CSV file")
		traceEvery = fs.Int("trace-every", 1, "sample every Nth frame into the -trace output")
		exactVTAOC = fs.Bool("exact-vtaoc", false, "bit-exact reference physics for every point: exact VTAOC integral, scalar-equivalent channel kernels, full region rebuilds (golden-output mode)")
		dryRun     = fs.Bool("points", false, "list the expanded grid points and exit (dry run)")
		listGrids  = fs.Bool("list-grids", false, "list the built-in named grids and exit")
		listAxes   = fs.Bool("list-axes", false, "list the sweepable axes and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "csv" && *format != "json" {
		return fmt.Errorf("unknown format %q (want csv or json)", *format)
	}
	if *framePar < -1 {
		return fmt.Errorf("-frameparallel must be >= 0 (or -1 to keep each point's), got %d", *framePar)
	}
	if *tiles < -1 {
		return fmt.Errorf("-tiles must be >= 0 (or -1 to keep each point's), got %d", *tiles)
	}
	if *traceEvery < 0 {
		return fmt.Errorf("-trace-every must be >= 0, got %d", *traceEvery)
	}

	if *listAxes {
		for _, line := range sweep.Axes() {
			fmt.Fprintln(stdout, line)
		}
		return nil
	}
	if *listGrids {
		for _, g := range sweep.Grids() {
			points, err := g.Points()
			if err != nil {
				return err
			}
			axisNames := make([]string, len(g.Axes))
			for i, ax := range g.Axes {
				axisNames[i] = fmt.Sprintf("%s(%d)", ax.Name, len(ax.Values))
			}
			fmt.Fprintf(stdout, "%-18s preset=%s axes=%s points=%d\n",
				g.Name, g.Preset, strings.Join(axisNames, "x"), len(points))
		}
		return nil
	}

	// The flags translate into the shared jobspec.SweepSpec, so the
	// grid/preset/config/axis/override conflict rules and the point
	// expansion are exactly the ones the jabaserve HTTP API applies.
	spec := jobspec.SweepSpec{
		Grid:     *gridName,
		Axes:     axes,
		Reps:     *reps,
		Parallel: *parallel,
		Overrides: jobspec.Overrides{
			Seed:      *seed,
			FrameMode: *frameMode,
			ExactPHY:  *exactVTAOC,
		},
	}
	if *framePar >= 0 {
		spec.Overrides.FrameParallel = framePar
	}
	if *tiles >= 0 {
		spec.Overrides.Tiles = tiles
	}
	presetSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "preset" {
			presetSet = true
		}
	})
	switch {
	case *configPath != "":
		if presetSet {
			return fmt.Errorf("-preset and -config are exclusive; drop one")
		}
		data, err := os.ReadFile(*configPath)
		if err != nil {
			return err
		}
		spec.Scenario.Config = data
	case presetSet || *gridName == "":
		// The preset default only applies when no named grid (which carries
		// its own preset) was chosen; an explicit -preset next to -grid is
		// the conflict Resolve rejects.
		spec.Preset = *presetName
	}
	grid, opts, err := spec.Resolve()
	if err != nil {
		return err
	}

	if *dryRun {
		points, err := grid.Points()
		if err != nil {
			return err
		}
		for _, p := range points {
			fmt.Fprintf(stdout, "%3d  %s\n", p.Index, p.Label())
		}
		fmt.Fprintf(stdout, "%d points x %d reps = %d runs\n", len(points), *reps, len(points)**reps)
		return nil
	}

	w := stdout
	var outFile *os.File
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		// Close errors matter (a full disk surfaces at the final flush), so
		// close explicitly on success; the deferred close only backs failure
		// paths, where the write error already wins.
		defer f.Close()
		outFile = f
		w = f
	}

	// CSV streams: the header goes out up front and each row as soon as its
	// point (and every earlier point) completes, so a failure late in a long
	// sweep keeps every finished row. JSON needs the closing brackets, so it
	// is rendered only once the whole sweep succeeds.
	tbl := sweep.NewCurveTable(grid)
	if *format == "csv" {
		if _, err := io.WriteString(w, report.CSVLine(tbl.Columns)); err != nil {
			return err
		}
	}
	// Per-point telemetry: each point's replication 0 records into its own
	// in-memory sink (points run concurrently; a sink is single-writer),
	// and the rows stream to the trace file in grid order as each point
	// emits, prefixed with the point index and label.
	var traceFile *os.File
	var traceSinks []*trace.Memory
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		traceFile = f
		if _, err := io.WriteString(f, report.CSVLine(append([]string{"point", "label"}, trace.Columns()...))); err != nil {
			return err
		}
		opts.TraceEvery = *traceEvery
		opts.Trace = func(p sweep.Point) trace.Sink {
			for len(traceSinks) <= p.Index {
				traceSinks = append(traceSinks, &trace.Memory{})
			}
			return traceSinks[p.Index]
		}
	}
	writePointTrace := func(r sweep.Result) error {
		if traceFile == nil {
			return nil
		}
		prefix := []string{strconv.Itoa(r.Index), r.Label()}
		row := make([]string, 0, len(prefix)+len(trace.Columns()))
		var sb strings.Builder
		for _, rec := range traceSinks[r.Index].Records {
			row = rec.AppendRow(append(row[:0], prefix...))
			sb.WriteString(report.CSVLine(row))
		}
		// Release the point's records through the shared sink: the sweep
		// runner holds the same *trace.Memory until the sweep finishes, so
		// only clearing the slice inside it actually frees the memory.
		traceSinks[r.Index].Records = nil
		traceSinks[r.Index] = nil
		_, err := io.WriteString(traceFile, sb.String())
		return err
	}

	var skippedPts, fallbackPts int
	err = sweep.Stream(ctx, grid, opts, func(r sweep.Result) error {
		fmt.Fprintf(os.Stderr, "point %d/%s done (%d reps)\n", r.Index, r.Label(), r.Agg.Replications)
		if r.Agg.SkippedCells.Mean() > 0 {
			skippedPts++
		}
		if r.Agg.FallbackSolves.Mean() > 0 {
			fallbackPts++
		}
		if err := writePointTrace(r); err != nil {
			return err
		}
		row := sweep.AppendCurveRow(tbl, r)
		if *format == "csv" {
			_, err := io.WriteString(w, report.CSVLine(row))
			return err
		}
		return nil
	})
	if err != nil {
		if *format == "csv" && tbl.NumRows() > 0 {
			fmt.Fprintf(os.Stderr, "kept %d completed rows\n", tbl.NumRows())
		}
		return err
	}
	if skippedPts > 0 {
		fmt.Fprintf(os.Stderr, "WARNING: %d grid points skipped admission cells; those scenarios are feeding the admission layer inconsistent measurements\n", skippedPts)
	}
	if fallbackPts > 0 {
		fmt.Fprintf(os.Stderr, "WARNING: %d grid points hit the solve node budget; their over-budget cell-frames were granted by the greedy fallback\n", fallbackPts)
	}
	if *format == "json" {
		if err := tbl.WriteJSON(w); err != nil {
			return err
		}
	}
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d rows to %s\n", tbl.NumRows(), *outPath)
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *tracePath)
	}
	return nil
}
